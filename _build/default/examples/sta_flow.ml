(* Static timing analysis over a multi-stage path: a decoder driving a
   Manchester carry chain through buffering gates. Each stage is evaluated
   with QWM using the upstream stage's output slew to shape its switching
   input (waveform-based propagation), and the worst path is reported.

   Also demonstrates channel-connected-component extraction: the same
   structure described as a flat transistor netlist partitions into the
   expected logic stages.

   Run with: dune exec examples/sta_flow.exe *)

open Tqwm_device
open Tqwm_circuit
module Timing_graph = Tqwm_sta.Timing_graph
module Arrival = Tqwm_sta.Arrival
module Report = Tqwm_sta.Report

let () =
  let tech = Tech.cmosp35 in
  let table = Models.table tech in

  (* stage-level timing graph *)
  let graph = Timing_graph.create () in
  let dec = Timing_graph.add_stage graph (Scenario.decoder ~levels:2 tech) in
  let buf1 = Timing_graph.add_stage graph (Scenario.inverter_falling ~load:15e-15 tech) in
  let nand = Timing_graph.add_stage graph (Scenario.nand_falling ~n:2 ~load:12e-15 tech) in
  let chain = Timing_graph.add_stage graph (Scenario.manchester ~bits:4 tech) in
  let side = Timing_graph.add_stage graph (Scenario.nor_rising ~n:2 ~load:8e-15 tech) in
  Timing_graph.connect graph ~from_stage:dec ~to_stage:buf1 ~input:"a1";
  Timing_graph.connect graph ~from_stage:buf1 ~to_stage:nand ~input:"a1";
  Timing_graph.connect graph ~from_stage:nand ~to_stage:chain ~input:"g0";
  Timing_graph.connect graph ~from_stage:buf1 ~to_stage:side ~input:"a1";

  let analysis = Arrival.propagate ~model:table graph in
  Report.print Format.std_formatter graph analysis;

  (* required times and slack against a 300 ps cycle *)
  let clock_period = 300e-12 in
  let slack = Arrival.slacks graph analysis ~clock_period in
  Printf.printf "\nslack at %.0f ps clock:\n" (clock_period *. 1e12);
  Array.iteri
    (fun id t ->
      Printf.printf "  %-14s required %7.2f ps  slack %+7.2f ps%s\n"
        (Timing_graph.scenario graph id).Scenario.name
        (slack.Arrival.required.(id) *. 1e12)
        (slack.Arrival.slack.(id) *. 1e12)
        (if slack.Arrival.slack.(id) < 0.0 then "  << VIOLATION" else "");
      ignore t)
    analysis.Arrival.timings;
  Printf.printf "worst slack: %+.2f ps\n" (slack.Arrival.worst_slack *. 1e12);

  (* channel-connected components of a two-inverter netlist *)
  let b = Netlist.create () in
  let a = Netlist.add_node b "a" in
  let x = Netlist.add_node b "x" in
  let y = Netlist.add_node b "y" in
  let wn = tech.Tech.w_min and wp = 2.0 *. tech.Tech.w_min in
  Netlist.add_transistor b (Device.nmos ~w:wn tech) ~gate:a ~src:x ~snk:(Netlist.ground b);
  Netlist.add_transistor b (Device.pmos ~w:wp tech) ~gate:a ~src:(Netlist.supply b) ~snk:x;
  Netlist.add_transistor b (Device.nmos ~w:wn tech) ~gate:x ~src:y ~snk:(Netlist.ground b);
  Netlist.add_transistor b (Device.pmos ~w:wp tech) ~gate:x ~src:(Netlist.supply b) ~snk:y;
  Netlist.mark_primary_input b a;
  Netlist.mark_primary_output b y;
  let net = Netlist.finish b in
  let extraction = Ccc.extract ~gate_load:(fun d -> Capacitance.gate tech ~w:d.Device.w ~l:d.Device.l) net in
  Printf.printf "\nnetlist partition: %d channel-connected components\n"
    (Array.length extraction.Ccc.instances);
  Array.iter
    (fun inst ->
      Printf.printf "  component %d: %d edges, inputs {%s}\n" inst.Ccc.component
        (Array.length inst.Ccc.stage.Stage.edges)
        (String.concat ", " (List.map fst inst.Ccc.input_nets)))
    extraction.Ccc.instances
