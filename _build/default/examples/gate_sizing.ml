(* Transistor sizing with QWM in the optimization loop: find the smallest
   NAND3 pull-down width meeting a falling-delay target under a heavy
   load. Each candidate costs one QWM evaluation (microseconds) instead
   of a transient simulation (milliseconds) — the kind of inner-loop use
   the paper's speed-up enables.

   Run with: dune exec examples/gate_sizing.exe *)

open Tqwm_device
open Tqwm_circuit

let () =
  let tech = Tech.cmosp35 in
  let table = Models.table tech in
  let load = 60e-15 in
  let target = 120e-12 in
  let evaluations = ref 0 in

  let delay_of wn =
    incr evaluations;
    let stage = Builders.nand ~n:3 ~wn ~load tech in
    let base = Scenario.nand_falling ~n:3 ~load tech in
    (* rebuild the scenario around the resized stage *)
    let scenario =
      {
        base with
        Scenario.stage;
        output = Builders.output_exn stage;
        initial =
          Array.init stage.Stage.num_nodes (fun n ->
              if n = stage.Stage.ground then 0.0
              else if n = stage.Stage.supply then tech.Tech.vdd
              else if n = Builders.output_exn stage then tech.Tech.vdd
              else Scenario.precharge_voltage tech);
      }
    in
    match (Tqwm_core.Qwm.run ~model:table scenario).Tqwm_core.Qwm.delay with
    | Some d -> d
    | None -> infinity
  in

  let t0 = Unix.gettimeofday () in
  (* bisection on width: delay decreases monotonically with drive *)
  let rec bisect lo hi n =
    if n = 0 then hi
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if delay_of mid <= target then bisect lo mid (n - 1) else bisect mid hi (n - 1)
    end
  in
  let w_min = tech.Tech.w_min and w_max = 12.0 *. tech.Tech.w_min in
  if delay_of w_max > target then
    Printf.printf "target %.0f ps unreachable below %.1f um\n" (target *. 1e12)
      (w_max *. 1e6)
  else begin
    let w = bisect w_min w_max 20 in
    let elapsed = Unix.gettimeofday () -. t0 in
    Printf.printf "NAND3 driving %.0f fF, falling-delay target %.0f ps\n"
      (load *. 1e15) (target *. 1e12);
    Printf.printf "  smallest width: %.3f um  (delay %.2f ps)\n" (w *. 1e6)
      (delay_of w *. 1e12);
    Printf.printf "  %d QWM evaluations in %.1f ms (%.0f us each)\n" !evaluations
      (elapsed *. 1e3)
      (elapsed /. float_of_int !evaluations *. 1e6)
  end;

  (* characterize the sized cell like a library flow would *)
  let make ~load = Scenario.nand_falling ~n:3 ~load tech in
  let tbl = Tqwm_sta.Characterize.characterize ~model:table make in
  Format.printf "@\nNAND3 delay table (input slew x output load):@\n%a"
    Tqwm_sta.Characterize.pp tbl;
  Printf.printf "interpolated: slew 35ps, load 18fF -> %.2f ps\n"
    (Tqwm_sta.Characterize.delay_at tbl ~slew:35e-12 ~load:18e-15 *. 1e12)
