(* Characterize a small standard-cell library with QWM: delay and output
   slew per gate across output loads and input slews -- the kind of
   on-the-fly stage evaluation the paper motivates (cells whose outputs
   are not gate inputs cannot be pre-characterized; §I).

   Run with: dune exec examples/gate_library.exe *)

open Tqwm_device
open Tqwm_circuit

let () =
  let tech = Tech.cmosp35 in
  let table = Models.table tech in
  let ps = 1e12 in
  let gates =
    [
      ("inv", fun load -> Scenario.inverter_falling ~load tech);
      ("nand2", fun load -> Scenario.nand_falling ~n:2 ~load tech);
      ("nand3", fun load -> Scenario.nand_falling ~n:3 ~load tech);
      ("nand4", fun load -> Scenario.nand_falling ~n:4 ~load tech);
      ("nor2", fun load -> Scenario.nor_rising ~n:2 ~load tech);
      ("nor3", fun load -> Scenario.nor_rising ~n:3 ~load tech);
    ]
  in
  let loads = [ 5e-15; 10e-15; 20e-15; 40e-15 ] in
  let slews = [ None; Some 30e-12; Some 80e-12 ] in
  (* process-corner spread first: the same gate at fast/typical/slow *)
  Printf.printf "corner spread (nand3, 10 fF, step input):\n";
  List.iter
    (fun corner ->
      let tech' = Tech.corner tech corner in
      let model = Models.table tech' in
      let report = Tqwm_core.Qwm.run ~model (Scenario.nand_falling ~n:3 tech') in
      match report.Tqwm_core.Qwm.delay with
      | Some d -> Printf.printf "  %-8s %8.2f ps\n" (Tech.corner_name corner) (d *. ps)
      | None -> Printf.printf "  %-8s (no crossing)\n" (Tech.corner_name corner))
    [ Tech.Fast; Tech.Typical; Tech.Slow ];
  print_newline ();
  Printf.printf "%-7s %-9s %-10s %10s %10s %9s\n" "gate" "load(fF)" "input" "delay(ps)"
    "slew(ps)" "regions";
  List.iter
    (fun (name, make) ->
      List.iter
        (fun load ->
          List.iter
            (fun slew ->
              let scenario = make load in
              let scenario, input_desc =
                match slew with
                | None -> (scenario, "step")
                | Some rise_time ->
                  ( Scenario.with_ramp_input ~rise_time scenario,
                    Printf.sprintf "%.0fps ramp" (rise_time *. ps) )
              in
              let report = Tqwm_core.Qwm.run ~model:table scenario in
              let show = function
                | Some x -> Printf.sprintf "%10.2f" (x *. ps)
                | None -> "      none"
              in
              Printf.printf "%-7s %-9.1f %-10s %s %s %9d\n" name (load *. 1e15)
                input_desc
                (show report.Tqwm_core.Qwm.delay)
                (show report.Tqwm_core.Qwm.slew)
                report.Tqwm_core.Qwm.stats.Tqwm_core.Qwm_solver.regions)
            slews)
        loads)
    gates
