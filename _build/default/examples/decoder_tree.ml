(* Memory decoder tree (paper Example 3 / Fig. 10): pass transistors
   separated by wires whose length doubles at each tree level. QWM reduces
   each wire to an O'Brien-Savarino pi macromodel (the paper builds the
   same macromodels "using the AWE approach") while the reference engine
   simulates the full distributed RC ladders.

   Run with: dune exec examples/decoder_tree.exe *)

open Tqwm_device
open Tqwm_circuit
module Pi_model = Tqwm_interconnect.Pi_model
module Awe = Tqwm_interconnect.Awe
module Rc_tree = Tqwm_interconnect.Rc_tree

let () =
  let tech = Tech.cmosp35 in
  let levels = 3 in
  let scenario = Scenario.decoder ~levels tech in

  (* the interconnect substrate on its own: the last (longest) wire *)
  let wire_l = 50e-6 *. (2.0 ** float_of_int (levels - 1)) in
  let r = Capacitance.wire_resistance tech ~w:0.6e-6 ~l:wire_l in
  let c = Capacitance.wire_total tech ~w:0.6e-6 ~l:wire_l in
  let ladder = Rc_tree.of_ladder ~r_total:r ~c_total:c ~segments:16 in
  let far = Rc_tree.num_nodes ladder - 1 in
  let pi = Pi_model.of_tree ladder in
  let awe = Awe.of_tree ladder ~node:far in
  Printf.printf "longest wire (%.0f um): R=%.1f ohm, C=%.1f fF\n" (wire_l *. 1e6) r
    (c *. 1e15);
  Printf.printf "  Elmore delay %.2f ps, AWE 50%% delay %.2f ps\n"
    (Rc_tree.elmore ladder far *. 1e12)
    (Awe.delay_to awe ~level:0.5 *. 1e12);
  Printf.printf "  pi model: C_near=%.2f fF, R=%.1f ohm, C_far=%.2f fF\n"
    (pi.Pi_model.c_near *. 1e15) pi.Pi_model.r (pi.Pi_model.c_far *. 1e15);

  (* full path: QWM-with-pi-models vs SPICE-with-ladders *)
  let golden = Models.golden tech in
  let table = Models.table tech in
  let spice = Tqwm_spice.Engine.run ~model:golden scenario in
  let qwm = Tqwm_core.Qwm.run ~model:table scenario in
  let chain = qwm.Tqwm_core.Qwm.lowering.Path.chain in
  Printf.printf "\ndecoder path: %d stage edges -> %d chain edges after pi reduction\n"
    (Array.length scenario.Scenario.stage.Stage.edges)
    (Chain.length chain);
  (match (spice.Tqwm_spice.Engine.delay, qwm.Tqwm_core.Qwm.delay) with
  | Some a, Some b ->
    Printf.printf "delay: spice %.2f ps, qwm %.2f ps (%.2f%% error, %.1fx speed-up)\n"
      (a *. 1e12) (b *. 1e12)
      (100.0 *. Float.abs (b -. a) /. a)
      (spice.Tqwm_spice.Engine.runtime_seconds /. qwm.Tqwm_core.Qwm.runtime_seconds)
  | (Some _ | None), _ -> print_endline "delay measurement missing");

  (* the closely-spaced waveform pairs of Fig. 10: both ends of each wire *)
  Printf.printf "\n%8s" "t(ps)";
  List.iter (fun (name, _) -> Printf.printf "  %6s" name) qwm.Tqwm_core.Qwm.node_quadratics;
  print_newline ();
  List.iter
    (fun t_ps ->
      Printf.printf "%8.0f" t_ps;
      List.iter
        (fun (_, q) ->
          Printf.printf "  %6.2f"
            (Tqwm_wave.Waveform.quadratic_value_at q (t_ps *. 1e-12)))
        qwm.Tqwm_core.Qwm.node_quadratics;
      print_newline ())
    [ 0.0; 25.0; 50.0; 100.0; 150.0; 250.0; 400.0 ]
