examples/manchester_chain.mli:
