examples/gate_library.ml: List Models Printf Scenario Tech Tqwm_circuit Tqwm_core Tqwm_device
