examples/manchester_chain.ml: Float List Models Printf Scenario String Tech Tqwm_circuit Tqwm_core Tqwm_device Tqwm_spice Tqwm_wave
