examples/quickstart.ml: Float List Models Printf Scenario Tech Tqwm_circuit Tqwm_core Tqwm_device Tqwm_spice Tqwm_wave
