examples/sta_flow.mli:
