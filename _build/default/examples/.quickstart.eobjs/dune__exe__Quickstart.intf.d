examples/quickstart.mli:
