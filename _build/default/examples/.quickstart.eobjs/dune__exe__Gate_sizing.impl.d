examples/gate_sizing.ml: Array Builders Format Models Printf Scenario Stage Tech Tqwm_circuit Tqwm_core Tqwm_device Tqwm_sta Unix
