examples/gate_library.mli:
