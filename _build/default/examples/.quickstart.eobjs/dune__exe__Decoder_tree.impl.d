examples/decoder_tree.ml: Array Capacitance Chain Float List Models Path Printf Scenario Stage Tech Tqwm_circuit Tqwm_core Tqwm_device Tqwm_interconnect Tqwm_spice Tqwm_wave
