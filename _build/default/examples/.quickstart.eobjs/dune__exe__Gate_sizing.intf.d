examples/gate_sizing.mli:
