examples/decoder_tree.mli:
