examples/sta_flow.ml: Array Capacitance Ccc Device Format List Models Netlist Printf Scenario Stage String Tech Tqwm_circuit Tqwm_device Tqwm_sta
