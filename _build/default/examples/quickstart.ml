(* Quickstart: evaluate the falling transition of a 3-input NAND with QWM
   and compare it against the SPICE-like reference engine.

   Run with: dune exec examples/quickstart.exe *)

open Tqwm_device
open Tqwm_circuit

let () =
  let tech = Tech.cmosp35 in

  (* 1. Device models: the analytic "golden" physics for the reference
     engine, and the tabular model QWM uses (characterized from the golden
     one, paper §V-A). *)
  let golden = Models.golden tech in
  let table = Models.table tech in

  (* 2. A workload: worst-case falling transition of a NAND3 (all inputs
     high, the bottom input switching at t = 0). *)
  let scenario = Scenario.nand_falling ~n:3 tech in

  (* 3. Reference: transient simulation with 1 ps steps. *)
  let spice = Tqwm_spice.Engine.run ~model:golden scenario in

  (* 4. QWM: a handful of algebraic solves at the critical points. *)
  let qwm = Tqwm_core.Qwm.run ~model:table scenario in

  let ps = 1e12 in
  let show = function Some d -> Printf.sprintf "%.2f ps" (d *. ps) | None -> "none" in
  Printf.printf "NAND3 falling-output delay\n";
  Printf.printf "  spice : %s   (%d time steps, %.4f s)\n"
    (show spice.Tqwm_spice.Engine.delay)
    spice.Tqwm_spice.Engine.result.Tqwm_spice.Transient.stats.Tqwm_spice.Transient.steps
    spice.Tqwm_spice.Engine.runtime_seconds;
  Printf.printf "  qwm   : %s   (%d regions, %.5f s)\n"
    (show qwm.Tqwm_core.Qwm.delay)
    qwm.Tqwm_core.Qwm.stats.Tqwm_core.Qwm_solver.regions
    qwm.Tqwm_core.Qwm.runtime_seconds;
  (match (spice.Tqwm_spice.Engine.delay, qwm.Tqwm_core.Qwm.delay) with
  | Some a, Some b ->
    Printf.printf "  delay error %.2f%%, speed-up %.1fx\n"
      (100.0 *. Float.abs (b -. a) /. a)
      (spice.Tqwm_spice.Engine.runtime_seconds /. qwm.Tqwm_core.Qwm.runtime_seconds)
  | (Some _ | None), _ -> ());

  (* 5. Waveforms are first-class: sample QWM's piecewise-quadratic output
     next to the SPICE trace. *)
  Printf.printf "\n  t(ps)   spice(V)  qwm(V)\n";
  let qwm_wave = Tqwm_core.Qwm.output_waveform qwm ~dt:1e-12 in
  List.iter
    (fun t_ps ->
      let t = t_ps *. 1e-12 in
      Printf.printf "  %5.0f   %7.3f  %7.3f\n" t_ps
        (Tqwm_wave.Waveform.value_at spice.Tqwm_spice.Engine.output t)
        (Tqwm_wave.Waveform.value_at qwm_wave t))
    [ 0.0; 20.0; 40.0; 60.0; 80.0; 120.0; 160.0 ]
