(* Manchester carry chain (paper Example 2 / Fig. 9): the carry nodes are
   precharged; the first pull-down switches and the discharge cascades
   through the pass-transistor chain. This is the 6-NMOS-stack workload
   whose node waveforms the paper plots.

   Run with: dune exec examples/manchester_chain.exe *)

open Tqwm_device
open Tqwm_circuit

let () =
  let tech = Tech.cmosp35 in
  let bits = 5 in
  let scenario = Scenario.manchester ~bits tech in
  let golden = Models.golden tech in
  let table = Models.table tech in

  let spice = Tqwm_spice.Engine.run ~model:golden scenario in
  let qwm = Tqwm_core.Qwm.run ~model:table scenario in

  let ps = 1e12 in
  Printf.printf "Manchester carry chain, %d bit slices (a %d-transistor stack)\n" bits
    (bits + 1);
  Printf.printf "critical points (turn-on cascade): %s ps\n"
    (String.concat ", "
       (List.map (fun t -> Printf.sprintf "%.1f" (t *. ps)) qwm.Tqwm_core.Qwm.critical_times));

  (* carry-node waveforms: QWM quadratic pieces vs the SPICE trace *)
  Printf.printf "\n%8s" "t(ps)";
  List.iter (fun (name, _) -> Printf.printf "  %7s" name) qwm.Tqwm_core.Qwm.node_quadratics;
  Printf.printf "  (QWM; SPICE carry-out in last column)\n";
  List.iter
    (fun t_ps ->
      let t = t_ps *. 1e-12 in
      Printf.printf "%8.0f" t_ps;
      List.iter
        (fun (_, q) ->
          Printf.printf "  %7.3f" (Tqwm_wave.Waveform.quadratic_value_at q t))
        qwm.Tqwm_core.Qwm.node_quadratics;
      Printf.printf "  %7.3f\n"
        (Tqwm_wave.Waveform.value_at spice.Tqwm_spice.Engine.output t))
    [ 0.0; 10.0; 25.0; 50.0; 75.0; 100.0; 150.0; 200.0; 300.0 ];

  match (spice.Tqwm_spice.Engine.delay, qwm.Tqwm_core.Qwm.delay) with
  | Some a, Some b ->
    Printf.printf "\ncarry-out delay: spice %.2f ps, qwm %.2f ps (%.2f%% error)\n"
      (a *. ps) (b *. ps)
      (100.0 *. Float.abs (b -. a) /. a)
  | (Some _ | None), _ -> print_endline "\ndelay measurement missing"
