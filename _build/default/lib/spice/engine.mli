(** High-level SPICE-engine API: run a scenario, return waveforms and
    timing metrics plus the wall-clock cost used in the speed-up tables. *)

open Tqwm_circuit
open Tqwm_wave

type report = {
  scenario : Scenario.t;
  result : Transient.result;
  output : Waveform.t;
  delay : float option;  (** 50% input-to-output delay *)
  slew : float option;  (** 10-90% output transition time *)
  runtime_seconds : float;  (** transient wall-clock time *)
}

val run :
  model:Tqwm_device.Device_model.t ->
  ?config:Transient.config ->
  Scenario.t ->
  report

val node_waveforms : report -> (string * Waveform.t) list
(** All internal node waveforms keyed by node name. *)
