(** DC operating-point analysis.

    Newton–Raphson on the static nodal equations with a small [gmin]
    conductance to ground regularizing floating (all-off) nodes. *)

open Tqwm_circuit

type result = {
  voltages : float array;  (** per stage node *)
  iterations : int;
  converged : bool;
}

val solve :
  model:Tqwm_device.Device_model.t ->
  ?time:float ->
  ?gmin:float ->
  Scenario.t ->
  result
(** Operating point with gate drives evaluated at [time] (default: the
    scenario's [t_end], i.e. settled inputs); initial guess from the
    scenario's initial voltages. [gmin] defaults to 1e-12 S. *)
