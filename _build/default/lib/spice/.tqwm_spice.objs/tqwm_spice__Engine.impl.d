lib/spice/engine.ml: List Measure Scenario Stage Tqwm_circuit Tqwm_device Tqwm_wave Transient Unix Waveform
