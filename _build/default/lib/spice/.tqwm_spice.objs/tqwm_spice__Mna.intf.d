lib/spice/mna.mli: Scenario Stage Tqwm_circuit Tqwm_device Tqwm_num
