lib/spice/engine.mli: Scenario Tqwm_circuit Tqwm_device Tqwm_wave Transient Waveform
