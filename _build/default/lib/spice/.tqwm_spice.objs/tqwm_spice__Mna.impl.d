lib/spice/mna.ml: Array Scenario Stage Tqwm_circuit Tqwm_device Tqwm_num
