lib/spice/dc.mli: Scenario Tqwm_circuit Tqwm_device
