lib/spice/transient.ml: Array Float List Mna Scenario Stage Tqwm_circuit Tqwm_device Tqwm_num Tqwm_wave
