lib/spice/dc.ml: Array Mna Option Scenario Tqwm_circuit Tqwm_num
