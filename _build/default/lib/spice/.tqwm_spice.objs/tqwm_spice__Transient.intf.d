lib/spice/transient.mli: Scenario Stage Tqwm_circuit Tqwm_device Tqwm_wave
