(** Nodal-analysis stamping shared by the DC and transient solvers.

    Unknowns are the internal nodes of a stage; supply and ground are
    pinned to the scenario's initial values. *)

open Tqwm_circuit

type index = {
  unknowns : Stage.node array;  (** unknown i <-> stage node unknowns.(i) *)
  of_node : int array;  (** stage node -> unknown index, or -1 if pinned *)
}

val index_of_stage : Stage.t -> index

val dimension : index -> int

type context = {
  model : Tqwm_device.Device_model.t;
  scenario : Scenario.t;
  index : index;
}

val make_context : model:Tqwm_device.Device_model.t -> Scenario.t -> context

val full_voltages : context -> Tqwm_num.Vec.t -> float array
(** Expand the unknown vector to per-stage-node voltages (pinned nodes at
    their rail values). *)

val out_currents : context -> time:float -> Tqwm_num.Vec.t -> Tqwm_num.Vec.t
(** [out_currents ctx ~time x] is, per unknown node, the net current
    {e leaving} the node through its incident elements with gate drives
    evaluated at [time]. *)

val conductance : context -> time:float -> Tqwm_num.Vec.t -> Tqwm_num.Mat.t
(** Jacobian of {!out_currents} with respect to the unknown voltages. *)

val capacitances : ?at:(Stage.node -> float) -> context -> Tqwm_num.Vec.t
(** Per-unknown node capacitance (paper Eq. (1)), evaluated at bias
    [at node] (default: the scenario's initial voltages). *)

val edge_current : context -> time:float -> float array -> Stage.edge -> float
(** Current src -> snk through one edge, given full node voltages. *)
