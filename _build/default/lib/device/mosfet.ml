type polarity = N | P

let clamp_low x lo = if x < lo then lo else x

let threshold (tech : Tech.t) polarity ~vsb =
  let vt0, gamma = match polarity with
    | N -> (tech.vt0_n, tech.gamma_n)
    | P -> (tech.vt0_p, tech.gamma_p)
  in
  (* clamp the forward-bias excursion so the sqrt stays real *)
  let vsb = clamp_low vsb (-.tech.phi /. 2.0) in
  vt0 +. (gamma *. (sqrt (tech.phi +. vsb) -. sqrt tech.phi))

let saturation_voltage tech polarity ~vgs ~vsb =
  clamp_low (Float.abs vgs -. threshold tech polarity ~vsb) 0.0

(* Square-law current for a device already normalized to "NMOS pull-down"
   coordinates: overdrive [vod], positive [vds], transconductance [beta],
   channel-length modulation [lambda]. *)
let square_law ~beta ~lambda ~vod ~vds =
  if vod <= 0.0 || vds <= 0.0 then 0.0
  else if vds < vod then beta *. ((vod -. (vds /. 2.0)) *. vds)
  else 0.5 *. beta *. vod *. vod *. (1.0 +. (lambda *. (vds -. vod)))

let ids (tech : Tech.t) polarity ~w ~l ~vg ~vd ~vs =
  match polarity with
  | N ->
    let vsb = vs in
    let vod = (vg -. vs) -. threshold tech N ~vsb in
    square_law ~beta:(tech.kp_n *. (w /. l)) ~lambda:tech.lambda_n ~vod ~vds:(vd -. vs)
  | P ->
    (* mirror to pull-down coordinates about VDD; bulk at VDD *)
    let vsb = tech.vdd -. vs in
    let vod = (vs -. vg) -. threshold tech P ~vsb in
    square_law ~beta:(tech.kp_p *. (w /. l)) ~lambda:tech.lambda_p ~vod ~vds:(vs -. vd)

let channel_current tech polarity ~w ~l ~vg ~va ~vb =
  match polarity with
  | N ->
    (* NMOS source is the lower-potential terminal *)
    if va >= vb then ids tech N ~w ~l ~vg ~vd:va ~vs:vb
    else -.ids tech N ~w ~l ~vg ~vd:vb ~vs:va
  | P ->
    (* PMOS source is the higher-potential terminal *)
    if va >= vb then ids tech P ~w ~l ~vg ~vd:vb ~vs:va
    else -.ids tech P ~w ~l ~vg ~vd:va ~vs:vb

let channel_current_derivatives tech polarity ~w ~l ~vg ~va ~vb =
  let h = 1e-6 in
  let i = channel_current tech polarity ~w ~l ~vg in
  let da = (i ~va:(va +. h) ~vb -. i ~va:(va -. h) ~vb) /. (2.0 *. h) in
  let db = (i ~va ~vb:(vb +. h) -. i ~va ~vb:(vb -. h)) /. (2.0 *. h) in
  (da, db)
