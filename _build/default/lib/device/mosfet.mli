(** Analytic MOSFET I/V model.

    A level-1 (Shichman–Hodges) square-law model extended with body
    effect and channel-length modulation, parameterized by {!Tech.t}. The
    channel-length-modulation term is referenced to the saturation voltage
    so the triode/saturation boundary is current-continuous. This is the
    "golden" physics both engines share (the paper used BSIM3 via Hspice;
    see DESIGN.md). *)

type polarity = N | P

val threshold : Tech.t -> polarity -> vsb:float -> float
(** Body-effect threshold magnitude. [vsb] is the source-to-bulk voltage
    for NMOS and bulk-to-source for PMOS (>= 0 in normal operation;
    clamped for robustness). Always positive. *)

val saturation_voltage : Tech.t -> polarity -> vgs:float -> vsb:float -> float
(** Overdrive [|vgs| - vth], clamped at zero. *)

val ids : Tech.t -> polarity -> w:float -> l:float -> vg:float -> vd:float -> vs:float -> float
(** Drain current with explicit drain/source roles ([vd >= vs] assumed for
    NMOS saturation/triode classification; callers should use
    {!channel_current} unless they know terminal roles). NMOS bulk at 0,
    PMOS bulk at VDD. *)

val channel_current :
  Tech.t -> polarity -> w:float -> l:float -> vg:float -> va:float -> vb:float -> float
(** Current flowing from channel terminal [a] to terminal [b], resolving
    which acts as source/drain from the potentials (MOSFETs are
    symmetric). Positive when conventional current flows a -> b. *)

val channel_current_derivatives :
  Tech.t -> polarity -> w:float -> l:float -> vg:float -> va:float -> vb:float -> float * float
(** [(dI/dva, dI/dvb)] by central finite differences on
    {!channel_current}; adequate for Newton Jacobians. *)
