let golden ?miller_factor tech = Device_model.analytic ?miller_factor tech

let table ?miller_factor ?grid_step ?vd_samples tech =
  let nmos = Table_model.of_analytic ?grid_step ?vd_samples tech Mosfet.N in
  let pmos = Table_model.of_analytic ?grid_step ?vd_samples tech Mosfet.P in
  Table_model.to_device_model ?miller_factor tech ~nmos ~pmos
