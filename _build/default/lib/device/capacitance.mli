(** Parasitic capacitance models (paper Definition 2: [srccap], [snkcap],
    [inputcap]; §III-B notes junction capacitances depend on terminal
    voltages and that Miller capacitances are included). *)

val gate : Tech.t -> w:float -> l:float -> float
(** Intrinsic gate capacitance plus both overlap capacitances. *)

val junction_zero_bias : Tech.t -> w:float -> float
(** Source/drain junction capacitance at zero bias: area term over the
    diffusion region plus the sidewall perimeter term. *)

val junction : Tech.t -> w:float -> v:float -> float
(** Reverse-bias-dependent junction capacitance
    [Cj0 / (1 + v/pb)^mj]; [v] is the reverse bias (node voltage for an
    n+ junction in a grounded p-substrate), clamped to avoid the
    forward-bias singularity. *)

val overlap : Tech.t -> w:float -> float
(** Gate-to-diffusion overlap capacitance of one terminal. *)

val terminal : ?miller_factor:float -> Tech.t -> Device.t -> v:float -> float
(** Total capacitance contributed by one channel terminal of [device] to
    its node: junction at bias [v] plus the overlap capacitance amplified
    by [miller_factor] (default 1.0; use 2.0 for a switching gate per the
    Miller approximation). Wires contribute half their total capacitance
    to each end. *)

val wire_total : Tech.t -> w:float -> l:float -> float
(** Total distributed capacitance of a wire segment (area + fringe). *)

val wire_resistance : Tech.t -> w:float -> l:float -> float
(** End-to-end resistance of a wire segment. *)
