type kind = Nmos | Pmos | Wire

type t = { kind : kind; w : float; l : float }

let check_geometry w l =
  if w <= 0.0 || l <= 0.0 then invalid_arg "Device: non-positive geometry"

let nmos ?l ~w (tech : Tech.t) =
  let l = Option.value l ~default:tech.Tech.l_min in
  check_geometry w l;
  { kind = Nmos; w; l }

let pmos ?l ~w (tech : Tech.t) =
  let l = Option.value l ~default:tech.Tech.l_min in
  check_geometry w l;
  { kind = Pmos; w; l }

let wire ~w ~l =
  check_geometry w l;
  { kind = Wire; w; l }

let kind_to_string = function Nmos -> "nmos" | Pmos -> "pmos" | Wire -> "wire"

let pp fmt d =
  Format.fprintf fmt "%s(w=%.3gum, l=%.3gum)" (kind_to_string d.kind) (d.w *. 1e6)
    (d.l *. 1e6)
