type t = {
  name : string;
  vdd : float;
  l_min : float;
  w_min : float;
  cox : float;
  kp_n : float;
  kp_p : float;
  vt0_n : float;
  vt0_p : float;
  gamma_n : float;
  gamma_p : float;
  phi : float;
  lambda_n : float;
  lambda_p : float;
  l_diffusion : float;
  cj : float;
  cjsw : float;
  pb : float;
  mj : float;
  c_overlap : float;
  r_sheet_wire : float;
  c_wire_area : float;
  c_wire_fringe : float;
}

let cmosp35 =
  {
    name = "cmosp35";
    vdd = 3.3;
    l_min = 0.35e-6;
    w_min = 0.8e-6;
    cox = 4.5e-3;
    kp_n = 1.8e-4;
    kp_p = 6.0e-5;
    vt0_n = 0.55;
    vt0_p = 0.70;
    gamma_n = 0.45;
    gamma_p = 0.40;
    phi = 0.70;
    lambda_n = 0.06;
    lambda_p = 0.08;
    l_diffusion = 0.8e-6;
    cj = 9.0e-4;
    cjsw = 2.8e-10;
    pb = 0.9;
    mj = 0.36;
    c_overlap = 1.2e-10;
    r_sheet_wire = 0.08;
    c_wire_area = 3.0e-5;
    c_wire_fringe = 8.0e-11;
  }

let scale_supply t vdd = { t with vdd }

type corner = Typical | Fast | Slow

let corner t = function
  | Typical -> t
  | Fast ->
    {
      t with
      name = t.name ^ "-fast";
      kp_n = t.kp_n *. 1.15;
      kp_p = t.kp_p *. 1.15;
      vt0_n = t.vt0_n *. 0.90;
      vt0_p = t.vt0_p *. 0.90;
      cj = t.cj *. 0.92;
      cjsw = t.cjsw *. 0.92;
    }
  | Slow ->
    {
      t with
      name = t.name ^ "-slow";
      kp_n = t.kp_n *. 0.85;
      kp_p = t.kp_p *. 0.85;
      vt0_n = t.vt0_n *. 1.10;
      vt0_p = t.vt0_p *. 1.10;
      cj = t.cj *. 1.08;
      cjsw = t.cjsw *. 1.08;
    }

let corner_name = function Typical -> "typical" | Fast -> "fast" | Slow -> "slow"
