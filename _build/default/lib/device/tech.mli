(** Process technology parameters.

    The defaults model a 0.35 um / 3.3 V process in the spirit of the
    paper's CMOSP35 characterization (the exact foundry deck is
    proprietary; see DESIGN.md for the substitution note). All quantities
    are SI: volts, amps, farads, meters. *)

type t = {
  name : string;
  vdd : float;  (** supply voltage *)
  l_min : float;  (** minimum drawn channel length *)
  w_min : float;  (** minimum transistor width *)
  cox : float;  (** gate-oxide capacitance per area, F/m^2 *)
  kp_n : float;  (** NMOS transconductance parameter (mu_n * Cox), A/V^2 *)
  kp_p : float;  (** PMOS transconductance parameter, A/V^2 *)
  vt0_n : float;  (** NMOS zero-bias threshold, > 0 *)
  vt0_p : float;  (** PMOS zero-bias threshold magnitude, > 0 *)
  gamma_n : float;  (** NMOS body-effect coefficient, sqrt(V) *)
  gamma_p : float;
  phi : float;  (** surface potential 2*phi_F, V *)
  lambda_n : float;  (** NMOS channel-length modulation, 1/V *)
  lambda_p : float;
  l_diffusion : float;  (** source/drain diffusion extent, m *)
  cj : float;  (** zero-bias junction capacitance per area, F/m^2 *)
  cjsw : float;  (** zero-bias sidewall capacitance per perimeter, F/m *)
  pb : float;  (** junction built-in potential, V *)
  mj : float;  (** junction grading coefficient *)
  c_overlap : float;  (** gate-drain/source overlap capacitance per width, F/m *)
  r_sheet_wire : float;  (** wire sheet resistance, ohm/square *)
  c_wire_area : float;  (** wire capacitance per area, F/m^2 *)
  c_wire_fringe : float;  (** wire fringe capacitance per length, F/m *)
}

val cmosp35 : t
(** Default 0.35 um, 3.3 V technology. *)

val scale_supply : t -> float -> t
(** [scale_supply tech vdd] re-targets the supply (for low-voltage
    experiments); thresholds are kept. *)

type corner = Typical | Fast | Slow

val corner : t -> corner -> t
(** Process-corner derating: [Fast] raises transconductance and lowers
    thresholds and junction capacitance; [Slow] the opposite. The spreads
    (±15 % kp, ∓10 % Vth, ∓8 % Cj) are typical foundry corner magnitudes
    for the era's processes. *)

val corner_name : corner -> string
