(** The paper's [DeviceModel] interface (Definition 2).

    A device model maps geometry and a terminal-voltage configuration to
    the current flowing from the edge's [src] node to its [snk] node, and
    exposes the threshold and parasitic-capacitance relations the QWM and
    SPICE engines need. Two implementations exist: the analytic model
    below (the golden physics) and {!Table_model} (the compressed tabular
    fit QWM uses, mirroring the paper's Hspice characterization). *)

type terminal_voltages = {
  input : float;  (** gate voltage; meaningless for wires *)
  src : float;  (** voltage of the supply-side terminal of the edge *)
  snk : float;  (** voltage of the ground-side terminal *)
}

type t = {
  name : string;
  iv : Device.t -> terminal_voltages -> float;
      (** current src -> snk; positive when conducting "downhill" *)
  iv_derivatives : Device.t -> terminal_voltages -> float * float;
      (** [(dI/dVsrc, dI/dVsnk)] *)
  threshold : Device.t -> terminal_voltages -> float;
      (** turn-on threshold (positive magnitude, body-corrected): an NMOS
          conducts when [input - snk > threshold], a PMOS when
          [src - input > threshold], wires always (threshold 0) *)
  src_cap : Device.t -> v:float -> float;
      (** capacitance contribution of the src terminal at node bias [v] *)
  snk_cap : Device.t -> v:float -> float;
  input_cap : Device.t -> float;
}

val analytic : ?miller_factor:float -> Tech.t -> t
(** Model backed by {!Mosfet} physics and {!Capacitance}. NMOS and PMOS
    body terminals are tied to ground and VDD respectively. *)

val finite_difference_derivatives :
  (Device.t -> terminal_voltages -> float) -> Device.t -> terminal_voltages -> float * float
(** Central-difference [iv_derivatives] for models that lack analytic
    ones. *)
