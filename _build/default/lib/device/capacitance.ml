let gate (tech : Tech.t) ~w ~l = (tech.cox *. w *. l) +. (2.0 *. tech.c_overlap *. w)

let junction_zero_bias (tech : Tech.t) ~w =
  let area = w *. tech.l_diffusion in
  let perimeter = (2.0 *. tech.l_diffusion) +. w in
  (tech.cj *. area) +. (tech.cjsw *. perimeter)

let junction (tech : Tech.t) ~w ~v =
  let c0 = junction_zero_bias tech ~w in
  let v = Float.max v (-0.5 *. tech.pb) in
  c0 /. ((1.0 +. (v /. tech.pb)) ** tech.mj)

let overlap (tech : Tech.t) ~w = tech.c_overlap *. w

let wire_total (tech : Tech.t) ~w ~l =
  (tech.c_wire_area *. w *. l) +. (2.0 *. tech.c_wire_fringe *. l)

let wire_resistance (tech : Tech.t) ~w ~l = tech.r_sheet_wire *. l /. w

let terminal ?(miller_factor = 1.0) tech (device : Device.t) ~v =
  match device.kind with
  | Device.Nmos | Device.Pmos ->
    junction tech ~w:device.w ~v +. (miller_factor *. overlap tech ~w:device.w)
  | Device.Wire -> 0.5 *. wire_total tech ~w:device.w ~l:device.l
