lib/device/capacitance.mli: Device Tech
