lib/device/models.mli: Device_model Tech
