lib/device/capacitance.ml: Device Float Tech
