lib/device/device.ml: Format Option Tech
