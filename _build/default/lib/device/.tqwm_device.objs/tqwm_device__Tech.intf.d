lib/device/tech.mli:
