lib/device/mosfet.ml: Float Tech
