lib/device/device_model.mli: Device Tech
