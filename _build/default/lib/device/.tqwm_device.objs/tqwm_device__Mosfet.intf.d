lib/device/mosfet.mli: Tech
