lib/device/table_model.ml: Array Buffer Device Device_model Float List Mosfet Printf String Tech Tqwm_num
