lib/device/device.mli: Format Tech
