lib/device/models.ml: Device_model Mosfet Table_model
