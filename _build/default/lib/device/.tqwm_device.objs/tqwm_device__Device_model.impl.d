lib/device/device_model.ml: Capacitance Device Mosfet Tech
