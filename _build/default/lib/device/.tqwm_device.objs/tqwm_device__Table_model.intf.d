lib/device/table_model.mli: Device_model Mosfet Tech Tqwm_num
