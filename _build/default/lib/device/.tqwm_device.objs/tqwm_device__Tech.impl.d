lib/device/tech.ml:
