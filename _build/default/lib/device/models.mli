(** Convenience constructors for the two standard device-model stacks:
    the analytic "golden" model (playing the role of Hspice/BSIM3) and
    the tabular model QWM consumes (characterized from the golden one,
    as the paper characterizes its tables from Hspice sweeps). *)

val golden : ?miller_factor:float -> Tech.t -> Device_model.t

val table :
  ?miller_factor:float ->
  ?grid_step:float ->
  ?vd_samples:int ->
  Tech.t ->
  Device_model.t
(** Characterizes both polarities; ~0.1 s of one-time work at the default
    0.1 V grid. *)
