(** Circuit elements (paper Definition 1).

    A logic-stage edge is an NMOS transistor, a PMOS transistor, or a wire
    segment, characterized by its geometric parameters; electrical
    properties are derived from geometry by the device models. *)

type kind = Nmos | Pmos | Wire

type t = {
  kind : kind;
  w : float;  (** transistor width / wire width, m *)
  l : float;  (** transistor length / wire length, m *)
}

val nmos : ?l:float -> w:float -> Tech.t -> t
(** NMOS with default minimum channel length. *)

val pmos : ?l:float -> w:float -> Tech.t -> t

val wire : w:float -> l:float -> t

val kind_to_string : kind -> string

val pp : Format.formatter -> t -> unit
