(** Voltage waveforms.

    Two representations: sampled piecewise-linear traces (what the SPICE
    engine emits) and analytic piecewise-quadratic traces (what QWM emits —
    each region contributes one quadratic piece; the paper plots QWM
    results as segments connecting the critical points). *)

type t
(** A sampled waveform: strictly increasing times with linear
    interpolation between samples and constant extension outside. *)

val of_samples : (float * float) array -> t
(** @raise Invalid_argument on empty input or non-increasing times. *)

val samples : t -> (float * float) array

val start_time : t -> float

val end_time : t -> float

val value_at : t -> float -> float

val map_values : (float -> float) -> t -> t

val crossings : t -> level:float -> (float * [ `Rising | `Falling ]) list
(** All level crossings in time order (linear interpolation inside
    segments); samples exactly on the level resolve by the segment
    direction. *)

val first_crossing :
  t -> level:float -> direction:[ `Rising | `Falling | `Any ] -> float option

(** {2 Piecewise-quadratic waveforms} *)

type piece = {
  t0 : float;  (** piece start time *)
  dt : float;  (** piece duration, > 0 *)
  v0 : float;  (** value at [t0] *)
  dv : float;  (** first derivative at [t0] *)
  ddv : float;  (** constant second derivative over the piece *)
}
(** On [t0, t0+dt]: [v(t) = v0 + dv*(t-t0) + ddv/2*(t-t0)^2]. *)

type quadratic
(** Contiguous sequence of quadratic pieces. *)

val quadratic_of_pieces : piece list -> quadratic
(** @raise Invalid_argument if pieces are empty, non-contiguous (ends and
    starts differing by more than 1e-15 s) or have non-positive
    durations. *)

val quadratic_pieces : quadratic -> piece list

val quadratic_value_at : quadratic -> float -> float
(** Constant extension outside the covered span. *)

val quadratic_end_value : quadratic -> float

val quadratic_first_crossing :
  quadratic -> level:float -> direction:[ `Rising | `Falling | `Any ] -> float option
(** Analytic crossing search using the quadratic roots of each piece. *)

val sample_quadratic : quadratic -> dt:float -> t
(** Densify for plotting/comparison; includes the final instant.
    @raise Invalid_argument if [dt <= 0]. *)
