(** Timing metrics extracted from waveforms. *)

type edge = Rising | Falling

val delay :
  vdd:float ->
  input:Waveform.t ->
  output:Waveform.t ->
  output_edge:edge ->
  float option
(** 50 %-to-50 % propagation delay: time between the input's first 50 %
    crossing (any direction) and the output's first 50 % crossing in the
    given direction. [None] when either crossing is missing. *)

val delay_from : t0:float -> vdd:float -> output:Waveform.t -> output_edge:edge -> float option
(** Delay measured from a known input switching instant [t0] (ideal step
    inputs). *)

val slew : vdd:float -> Waveform.t -> edge -> float option
(** 10 %-to-90 % transition time of the first transition in the given
    direction. *)

val quadratic_delay_from :
  t0:float -> vdd:float -> Waveform.quadratic -> output_edge:edge -> float option
(** Analytic 50 % delay of a piecewise-quadratic waveform. *)

val swing : Waveform.t -> float * float
(** (min, max) values. *)
