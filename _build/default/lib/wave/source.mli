(** Input (gate-drive) waveforms.

    Analytic time functions with the derivative available — the QWM region
    solver needs dG/dt for ramp inputs in its Jacobian. *)

type t

val step : ?t0:float -> low:float -> high:float -> unit -> t
(** Ideal step from [low] to [high] at [t0] (default 0). *)

val ramp : ?t0:float -> low:float -> high:float -> rise_time:float -> unit -> t
(** Linear transition starting at [t0] over [rise_time].
    @raise Invalid_argument if [rise_time <= 0]. *)

val constant : float -> t

val falling_step : ?t0:float -> high:float -> low:float -> unit -> t

val value : t -> float -> float

val derivative : t -> float -> float

val is_step : t -> bool

val transition_time : t -> float option
(** Start of the transition, if any. *)

val to_waveform : t -> t_end:float -> dt:float -> Waveform.t
