type edge = Rising | Falling

let direction_of_edge = function Rising -> `Rising | Falling -> `Falling

let delay ~vdd ~input ~output ~output_edge =
  let level = vdd /. 2.0 in
  match Waveform.first_crossing input ~level ~direction:`Any with
  | None -> None
  | Some t_in ->
    Waveform.first_crossing output ~level ~direction:(direction_of_edge output_edge)
    |> Option.map (fun t_out -> t_out -. t_in)

let delay_from ~t0 ~vdd ~output ~output_edge =
  Waveform.first_crossing output ~level:(vdd /. 2.0)
    ~direction:(direction_of_edge output_edge)
  |> Option.map (fun t -> t -. t0)

let slew ~vdd w edge =
  let lo = 0.1 *. vdd and hi = 0.9 *. vdd in
  match edge with
  | Rising ->
    (match
       ( Waveform.first_crossing w ~level:lo ~direction:`Rising,
         Waveform.first_crossing w ~level:hi ~direction:`Rising )
     with
    | Some t1, Some t2 when t2 >= t1 -> Some (t2 -. t1)
    | _ -> None)
  | Falling ->
    (match
       ( Waveform.first_crossing w ~level:hi ~direction:`Falling,
         Waveform.first_crossing w ~level:lo ~direction:`Falling )
     with
    | Some t1, Some t2 when t2 >= t1 -> Some (t2 -. t1)
    | _ -> None)

let quadratic_delay_from ~t0 ~vdd q ~output_edge =
  Waveform.quadratic_first_crossing q ~level:(vdd /. 2.0)
    ~direction:(direction_of_edge output_edge)
  |> Option.map (fun t -> t -. t0)

let swing w =
  Array.fold_left
    (fun (lo, hi) (_, v) -> (Float.min lo v, Float.max hi v))
    (infinity, neg_infinity) (Waveform.samples w)
