lib/wave/compare.ml: Array Float Waveform
