lib/wave/source.mli: Waveform
