lib/wave/measure.mli: Waveform
