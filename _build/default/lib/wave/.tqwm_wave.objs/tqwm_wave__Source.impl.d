lib/wave/source.ml: Array Float Waveform
