lib/wave/compare.mli: Waveform
