lib/wave/measure.ml: Array Float Option Waveform
