lib/wave/waveform.mli:
