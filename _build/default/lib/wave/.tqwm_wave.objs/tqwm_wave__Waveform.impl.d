lib/wave/waveform.ml: Array Float List Option Seq Tqwm_num
