type shape =
  | Constant of float
  | Step of { t0 : float; low : float; high : float }
  | Ramp of { t0 : float; low : float; high : float; rise_time : float }

type t = shape

let step ?(t0 = 0.0) ~low ~high () = Step { t0; low; high }

let ramp ?(t0 = 0.0) ~low ~high ~rise_time () =
  if rise_time <= 0.0 then invalid_arg "Source.ramp: rise_time <= 0";
  Ramp { t0; low; high; rise_time }

let constant v = Constant v

let falling_step ?(t0 = 0.0) ~high ~low () = Step { t0; low = high; high = low }

let value s t =
  match s with
  | Constant v -> v
  | Step { t0; low; high } -> if t < t0 then low else high
  | Ramp { t0; low; high; rise_time } ->
    if t <= t0 then low
    else if t >= t0 +. rise_time then high
    else low +. ((high -. low) *. (t -. t0) /. rise_time)

let derivative s t =
  match s with
  | Constant _ | Step _ -> 0.0
  | Ramp { t0; low; high; rise_time } ->
    if t <= t0 || t >= t0 +. rise_time then 0.0 else (high -. low) /. rise_time

let is_step = function Step _ -> true | Constant _ | Ramp _ -> false

let transition_time = function
  | Constant _ -> None
  | Step { t0; _ } | Ramp { t0; _ } -> Some t0

let to_waveform s ~t_end ~dt =
  if dt <= 0.0 || t_end <= 0.0 then invalid_arg "Source.to_waveform: bad range";
  let steps = int_of_float (Float.ceil (t_end /. dt)) in
  Waveform.of_samples
    (Array.init (steps + 1) (fun i ->
         let t = float_of_int i *. dt in
         (t, value s t)))
