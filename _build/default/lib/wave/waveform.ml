module Quad = Tqwm_num.Quad

type t = { times : float array; values : float array }

let of_samples pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Waveform.of_samples: empty";
  let times = Array.map fst pts and values = Array.map snd pts in
  for i = 1 to n - 1 do
    if times.(i) <= times.(i - 1) then
      invalid_arg "Waveform.of_samples: times must be strictly increasing"
  done;
  { times; values }

let samples w = Array.map2 (fun t v -> (t, v)) w.times w.values

let start_time w = w.times.(0)

let end_time w = w.times.(Array.length w.times - 1)

(* index of the last sample with time <= t, or -1 *)
let locate w t =
  let n = Array.length w.times in
  if t < w.times.(0) then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if w.times.(mid) <= t then lo := mid else hi := mid
    done;
    if w.times.(!hi) <= t then !hi else !lo
  end

let value_at w t =
  let n = Array.length w.times in
  let i = locate w t in
  if i < 0 then w.values.(0)
  else if i >= n - 1 then w.values.(n - 1)
  else begin
    let t0 = w.times.(i) and t1 = w.times.(i + 1) in
    let frac = (t -. t0) /. (t1 -. t0) in
    w.values.(i) +. (frac *. (w.values.(i + 1) -. w.values.(i)))
  end

let map_values f w = { w with values = Array.map f w.values }

let crossings w ~level =
  let acc = ref [] in
  for i = 0 to Array.length w.times - 2 do
    let v0 = w.values.(i) -. level and v1 = w.values.(i + 1) -. level in
    if (v0 < 0.0 && v1 >= 0.0) || (v0 >= 0.0 && v1 < 0.0) then begin
      let frac = if v1 = v0 then 0.0 else -.v0 /. (v1 -. v0) in
      let t = w.times.(i) +. (frac *. (w.times.(i + 1) -. w.times.(i))) in
      let dir = if v1 > v0 then `Rising else `Falling in
      acc := (t, dir) :: !acc
    end
  done;
  List.rev !acc

let first_crossing w ~level ~direction =
  let matches (_, dir) =
    match direction with
    | `Any -> true
    | (`Rising | `Falling) as d -> d = dir
  in
  crossings w ~level |> List.find_opt matches |> Option.map fst

type piece = { t0 : float; dt : float; v0 : float; dv : float; ddv : float }

type quadratic = piece array

let piece_value p t =
  let x = t -. p.t0 in
  p.v0 +. (p.dv *. x) +. (0.5 *. p.ddv *. x *. x)

let quadratic_of_pieces pieces =
  if pieces = [] then invalid_arg "Waveform.quadratic_of_pieces: empty";
  let arr = Array.of_list pieces in
  Array.iteri
    (fun i p ->
      if p.dt <= 0.0 then invalid_arg "Waveform.quadratic_of_pieces: non-positive dt";
      if i > 0 then begin
        let prev = arr.(i - 1) in
        if Float.abs (prev.t0 +. prev.dt -. p.t0) > 1e-15 then
          invalid_arg "Waveform.quadratic_of_pieces: non-contiguous pieces"
      end)
    arr;
  arr

let quadratic_pieces q = Array.to_list q

let quadratic_value_at q t =
  let n = Array.length q in
  if t <= q.(0).t0 then q.(0).v0
  else begin
    let last = q.(n - 1) in
    if t >= last.t0 +. last.dt then piece_value last (last.t0 +. last.dt)
    else begin
      (* pieces are few (one per region); linear scan is fine *)
      let rec find i =
        let p = q.(i) in
        if t <= p.t0 +. p.dt || i = n - 1 then piece_value p t else find (i + 1)
      in
      find 0
    end
  end

let quadratic_end_value q =
  let last = q.(Array.length q - 1) in
  piece_value last (last.t0 +. last.dt)

let quadratic_first_crossing q ~level ~direction =
  let piece_crossing p =
    (* roots of v0 + dv x + ddv/2 x^2 = level within [0, dt] *)
    let roots = Quad.roots ~a:(0.5 *. p.ddv) ~b:p.dv ~c:(p.v0 -. level) in
    let ok x =
      if x < -1e-18 || x > p.dt +. 1e-18 then None
      else begin
        let slope = p.dv +. (p.ddv *. x) in
        let dir_ok =
          match direction with
          | `Any -> true
          | `Rising -> slope > 0.0
          | `Falling -> slope < 0.0
        in
        if dir_ok then Some (p.t0 +. Float.max x 0.0) else None
      end
    in
    List.filter_map ok roots |> function [] -> None | t :: _ -> Some t
  in
  Array.to_seq q |> Seq.filter_map piece_crossing |> Seq.uncons |> Option.map fst

let sample_quadratic q ~dt =
  if dt <= 0.0 then invalid_arg "Waveform.sample_quadratic: dt <= 0";
  let t_start = q.(0).t0 in
  let last = q.(Array.length q - 1) in
  let t_end = last.t0 +. last.dt in
  let steps = int_of_float (Float.ceil ((t_end -. t_start) /. dt)) in
  let pts =
    Array.init (steps + 1) (fun i ->
        let t = Float.min (t_start +. (float_of_int i *. dt)) t_end in
        (t, quadratic_value_at q t))
  in
  (* guard against a duplicated final sample when the span divides evenly *)
  let n = Array.length pts in
  let pts =
    if n >= 2 && fst pts.(n - 1) <= fst pts.(n - 2) then Array.sub pts 0 (n - 1) else pts
  in
  of_samples pts
