lib/core/qwm.mli: Config Path Qwm_solver Scenario Tqwm_circuit Tqwm_device Tqwm_wave Waveform
