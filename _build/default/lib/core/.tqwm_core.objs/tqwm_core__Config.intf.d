lib/core/config.mli:
