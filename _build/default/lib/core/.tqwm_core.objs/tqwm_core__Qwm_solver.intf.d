lib/core/qwm_solver.mli: Chain Config Scenario Tqwm_circuit Tqwm_device Tqwm_wave
