lib/core/qwm.ml: Array Chain Config Float List Measure Path Qwm_solver Scenario Stage String Tqwm_circuit Tqwm_device Tqwm_interconnect Tqwm_wave Unix Waveform
