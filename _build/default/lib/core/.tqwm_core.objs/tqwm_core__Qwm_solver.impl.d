lib/core/qwm_solver.ml: Array Chain Config Float List Option Printf Scenario String Tqwm_circuit Tqwm_device Tqwm_num Tqwm_wave
