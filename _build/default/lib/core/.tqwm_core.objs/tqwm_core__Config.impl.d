lib/core/config.ml:
