(** QWM engine configuration. *)

type linear_solver =
  | Bordered  (** O(K) block elimination on the bordered tridiagonal system *)
  | Sherman_morrison
      (** the paper's formulation: tridiagonal core plus a rank-1 update for
          the region-length column (§IV-B) *)
  | Dense_lu  (** O(K^3) dense solve — the ablation baseline *)

type waveform_model =
  | Quadratic
      (** the paper's model: per-region linear current, quadratic voltage,
          one [alpha] parameter per node (§IV-A) *)
  | Linear
      (** simpler alternative (the conclusion's "suitability of other
          waveforms"): per-region constant current, linear voltage; the
          unknowns are the region currents themselves. Cheaper but loses
          slope continuity — the accuracy ablation quantifies the cost *)

type t = {
  levels : float list;
      (** output-ladder matching points (fractions of VDD, descending) used
          after the last transistor has turned on; each contributes one
          quadratic region *)
  end_fraction : float;
      (** stop once the output transition has covered this remaining
          fraction of the swing *)
  max_iterations : int;  (** per-region Newton cap *)
  current_tolerance : float;  (** residual tolerance on current matches, A *)
  voltage_tolerance : float;  (** residual tolerance on the end condition, V *)
  damping : float;  (** Newton damping in (0, 1] *)
  bisect_depth : int;  (** fallback target-bisection depth *)
  max_regions : int;  (** hard cap on region count *)
  linear_solver : linear_solver;
  waveform_model : waveform_model;
  reduce_wires : bool;
      (** collapse wire runs in the chain into O'Brien–Savarino pi macros
          (the paper's treatment of the decoder-tree wires) *)
  wire_segments : int;  (** ladder resolution used when reducing wire runs *)
}

val default : t
