type linear_solver = Bordered | Sherman_morrison | Dense_lu

type waveform_model = Quadratic | Linear

type t = {
  levels : float list;
  end_fraction : float;
  max_iterations : int;
  current_tolerance : float;
  voltage_tolerance : float;
  damping : float;
  bisect_depth : int;
  max_regions : int;
  linear_solver : linear_solver;
  waveform_model : waveform_model;
  reduce_wires : bool;
  wire_segments : int;
}

let default =
  {
    levels = [ 0.85; 0.72; 0.6; 0.5; 0.4; 0.3; 0.2; 0.12; 0.06 ];
    end_fraction = 0.05;
    max_iterations = 60;
    current_tolerance = 5e-9;
    voltage_tolerance = 1e-6;
    damping = 1.0;
    bisect_depth = 6;
    max_regions = 400;
    linear_solver = Bordered;
    waveform_model = Quadratic;
    reduce_wires = true;
    wire_segments = 8;
  }
