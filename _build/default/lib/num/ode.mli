(** Reference ODE integration (classic RK4, fixed step).

    Not used by the production engines — kept as an independent oracle for
    testing the transient simulator on small systems. *)

val rk4 :
  f:(float -> Vec.t -> Vec.t) ->
  t0:float ->
  x0:Vec.t ->
  t1:float ->
  steps:int ->
  (float * Vec.t) array
(** [rk4 ~f ~t0 ~x0 ~t1 ~steps] integrates [x' = f t x] and returns the
    trajectory including both endpoints ([steps + 1] samples).
    @raise Invalid_argument if [steps < 1] or [t1 <= t0]. *)
