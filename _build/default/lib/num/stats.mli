(** Small statistics helpers for the experiment harness. *)

val mean : float list -> float
(** @raise Invalid_argument on the empty list. *)

val geometric_mean : float list -> float
(** @raise Invalid_argument on the empty list or non-positive entries. *)

val max_abs : float list -> float
(** 0 on the empty list. *)

val rms : float list -> float
(** Root-mean-square; @raise Invalid_argument on the empty list. *)

val relative_error : reference:float -> float -> float
(** |x - reference| / |reference|; @raise Invalid_argument when the
    reference is zero. *)

val percent : float -> float
(** Fraction to percent. *)
