type t = { lower : Vec.t; diag : Vec.t; upper : Vec.t }

exception Singular of int

let make ~lower ~diag ~upper =
  let n = Array.length diag in
  if Array.length lower <> n || Array.length upper <> n then
    invalid_arg "Tridiag.make: band length mismatch";
  { lower; diag; upper }

let dim t = Array.length t.diag

let of_mat m =
  let n, cols = Mat.dims m in
  if n <> cols then invalid_arg "Tridiag.of_mat: non-square matrix";
  let lower = Vec.create n and diag = Vec.create n and upper = Vec.create n in
  for i = 0 to n - 1 do
    if i > 0 then lower.(i) <- Mat.get m i (i - 1);
    diag.(i) <- Mat.get m i i;
    if i < n - 1 then upper.(i) <- Mat.get m i (i + 1)
  done;
  { lower; diag; upper }

let to_mat t =
  let n = dim t in
  Mat.init n n (fun i j ->
      if j = i - 1 then t.lower.(i)
      else if j = i then t.diag.(i)
      else if j = i + 1 then t.upper.(i)
      else 0.0)

let solve t b =
  let n = dim t in
  if Array.length b <> n then invalid_arg "Tridiag.solve: dimension mismatch";
  if n = 0 then [||]
  else begin
    (* forward sweep storing modified coefficients *)
    let c' = Vec.create n and d' = Vec.create n in
    if Float.abs t.diag.(0) < 1e-300 then raise (Singular 0);
    c'.(0) <- t.upper.(0) /. t.diag.(0);
    d'.(0) <- b.(0) /. t.diag.(0);
    for i = 1 to n - 1 do
      let denom = t.diag.(i) -. (t.lower.(i) *. c'.(i - 1)) in
      if Float.abs denom < 1e-300 then raise (Singular i);
      if i < n - 1 then c'.(i) <- t.upper.(i) /. denom;
      d'.(i) <- (b.(i) -. (t.lower.(i) *. d'.(i - 1))) /. denom
    done;
    let x = Vec.create n in
    x.(n - 1) <- d'.(n - 1);
    for i = n - 2 downto 0 do
      x.(i) <- d'.(i) -. (c'.(i) *. x.(i + 1))
    done;
    x
  end

let mul_vec t x =
  let n = dim t in
  if Array.length x <> n then invalid_arg "Tridiag.mul_vec: dimension mismatch";
  Array.init n (fun i ->
      let s = ref (t.diag.(i) *. x.(i)) in
      if i > 0 then s := !s +. (t.lower.(i) *. x.(i - 1));
      if i < n - 1 then s := !s +. (t.upper.(i) *. x.(i + 1));
      !s)
