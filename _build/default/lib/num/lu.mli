(** LU decomposition with partial pivoting, and direct dense solves. *)

exception Singular of int
(** Raised when elimination meets a (near-)zero pivot; the payload is the
    offending column. *)

type factor
(** A factored matrix (P*A = L*U), reusable for multiple right-hand sides. *)

val factorize : Mat.t -> factor
(** @raise Singular if the matrix is numerically singular.
    @raise Invalid_argument on a non-square matrix. *)

val solve_factored : factor -> Vec.t -> Vec.t

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b]. *)

val det : Mat.t -> float
(** Determinant via LU; 0 for singular matrices. *)

val inverse : Mat.t -> Mat.t
