(** Dense floating-point vectors.

    Thin wrappers over [float array] used throughout the numeric kernels.
    All functions are total unless stated otherwise; dimension mismatches
    raise [Invalid_argument]. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val of_list : float list -> t

val to_list : t -> float list

val fill : t -> float -> unit

val add : t -> t -> t
(** Elementwise sum. *)

val sub : t -> t -> t
(** Elementwise difference. *)

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a*x + y] in place. *)

val dot : t -> t -> float

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max absolute entry; 0 for the empty vector. *)

val max_abs_diff : t -> t -> float
(** [max_abs_diff x y] is [norm_inf (sub x y)]. *)

val map2 : (float -> float -> float) -> t -> t -> t

val pp : Format.formatter -> t -> unit
