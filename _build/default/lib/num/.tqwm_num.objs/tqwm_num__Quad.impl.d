lib/num/quad.ml: List
