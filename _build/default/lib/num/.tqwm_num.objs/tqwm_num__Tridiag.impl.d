lib/num/tridiag.ml: Array Float Mat Vec
