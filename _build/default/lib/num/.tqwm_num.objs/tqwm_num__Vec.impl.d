lib/num/vec.ml: Array Float Format Printf
