lib/num/polyfit.ml: Array Float Lu Mat Vec
