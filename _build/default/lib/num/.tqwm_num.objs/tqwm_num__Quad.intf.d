lib/num/quad.mli:
