lib/num/stats.mli:
