lib/num/interp.mli: Mat Vec
