lib/num/lu.mli: Mat Vec
