lib/num/vec.mli: Format
