lib/num/polyfit.mli:
