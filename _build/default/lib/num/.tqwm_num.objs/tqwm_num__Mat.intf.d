lib/num/mat.mli: Format Vec
