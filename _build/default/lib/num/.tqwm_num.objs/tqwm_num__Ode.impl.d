lib/num/ode.ml: Array Vec
