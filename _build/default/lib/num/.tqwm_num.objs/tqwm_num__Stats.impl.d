lib/num/stats.ml: Float List
