lib/num/sherman_morrison.mli: Tridiag Vec
