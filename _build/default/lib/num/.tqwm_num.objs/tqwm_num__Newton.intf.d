lib/num/newton.mli: Vec
