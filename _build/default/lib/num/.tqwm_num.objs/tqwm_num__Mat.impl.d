lib/num/mat.ml: Array Float Format Printf
