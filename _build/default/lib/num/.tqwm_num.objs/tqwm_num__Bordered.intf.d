lib/num/bordered.mli: Mat Tridiag Vec
