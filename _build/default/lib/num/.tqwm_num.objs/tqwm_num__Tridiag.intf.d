lib/num/tridiag.mli: Mat Vec
