lib/num/newton.ml: Array Vec
