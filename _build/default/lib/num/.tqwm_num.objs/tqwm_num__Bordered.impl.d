lib/num/bordered.ml: Array Float Mat Tridiag Vec
