lib/num/interp.ml: Array Float Mat
