lib/num/lu.ml: Array Float Mat Vec
