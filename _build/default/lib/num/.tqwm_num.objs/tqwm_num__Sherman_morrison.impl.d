lib/num/sherman_morrison.ml: Array Float Tridiag Vec
