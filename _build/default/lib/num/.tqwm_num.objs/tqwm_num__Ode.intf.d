lib/num/ode.mli: Vec
