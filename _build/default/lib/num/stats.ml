let mean = function
  | [] -> invalid_arg "Stats.mean: empty"
  | xs -> List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs)

let geometric_mean = function
  | [] -> invalid_arg "Stats.geometric_mean: empty"
  | xs ->
    let log_sum =
      List.fold_left
        (fun acc x ->
          if x <= 0.0 then invalid_arg "Stats.geometric_mean: non-positive entry";
          acc +. log x)
        0.0 xs
    in
    exp (log_sum /. float_of_int (List.length xs))

let max_abs xs = List.fold_left (fun acc x -> Float.max acc (Float.abs x)) 0.0 xs

let rms = function
  | [] -> invalid_arg "Stats.rms: empty"
  | xs ->
    sqrt (List.fold_left (fun acc x -> acc +. (x *. x)) 0.0 xs
          /. float_of_int (List.length xs))

let relative_error ~reference x =
  if reference = 0.0 then invalid_arg "Stats.relative_error: zero reference";
  Float.abs (x -. reference) /. Float.abs reference

let percent x = 100.0 *. x
