(** Least-squares polynomial fitting.

    The device characterization (paper §V-A, Fig. 8) fits the channel
    current against the drain voltage with a linear function in the
    saturation region and a quadratic in the triode region. *)

val fit : degree:int -> (float * float) array -> float array
(** [fit ~degree pts] returns coefficients [c] (lowest power first,
    length [degree+1]) minimizing sum of squared residuals of
    [c0 + c1 x + ... ] over [pts].
    @raise Invalid_argument when there are fewer points than coefficients.
    @raise Lu.Singular when the normal equations are degenerate. *)

val eval : float array -> float -> float
(** Horner evaluation, lowest power first. *)

val eval_deriv : float array -> float -> float
(** Derivative of the fitted polynomial at a point. *)

val linear : (float * float) array -> float * float
(** [(intercept, slope)] convenience wrapper around degree-1 [fit]. *)

val quadratic : (float * float) array -> float * float * float
(** [(c0, c1, c2)] convenience wrapper around degree-2 [fit]. *)

val max_residual : float array -> (float * float) array -> float
(** Largest absolute fit error over the sample points. *)
