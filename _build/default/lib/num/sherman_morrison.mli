(** Sherman–Morrison rank-1 update solves.

    The QWM Jacobian is a tridiagonal matrix plus a rank-1 correction
    [u vT] contributed by the region-length column (paper §IV-B). Given a
    fast solver for the base matrix [A], the update

    {[ (A + u vT)^-1 b = y - (vT y / (1 + vT z)) z ]}

    with [A y = b] and [A z = u] costs two base solves. *)

exception Singular
(** Raised when [1 + vT z] vanishes, i.e. the updated matrix is singular. *)

val solve : base_solve:(Vec.t -> Vec.t) -> u:Vec.t -> v:Vec.t -> Vec.t -> Vec.t
(** [solve ~base_solve ~u ~v b] solves [(A + u vT) x = b] where
    [base_solve] solves systems in [A]. *)

val solve_tridiag : Tridiag.t -> u:Vec.t -> v:Vec.t -> Vec.t -> Vec.t
(** Specialisation with a tridiagonal base matrix, the paper's exact use. *)
