exception Singular

type t = { core : Tridiag.t; last_col : Vec.t; last_row : Vec.t; corner : float }

let dim t = Tridiag.dim t.core + 1

let to_mat t =
  let n = Tridiag.dim t.core in
  let m = Mat.create (n + 1) (n + 1) in
  let core = Tridiag.to_mat t.core in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set m i j (Mat.get core i j)
    done;
    Mat.set m i n t.last_col.(i);
    Mat.set m n i t.last_row.(i)
  done;
  Mat.set m n n t.corner;
  m

let solve t b =
  let n = Tridiag.dim t.core in
  if Array.length b <> n + 1 then invalid_arg "Bordered.solve: dimension mismatch";
  if Array.length t.last_col <> n || Array.length t.last_row <> n then
    invalid_arg "Bordered.solve: border length mismatch";
  if n = 0 then begin
    if Float.abs t.corner < 1e-300 then raise Singular;
    [| b.(0) /. t.corner |]
  end
  else begin
    let f = Array.sub b 0 n in
    let g = b.(n) in
    let y = Tridiag.solve t.core f in
    let z = Tridiag.solve t.core t.last_col in
    let schur = t.corner -. Vec.dot t.last_row z in
    if Float.abs schur < 1e-300 then raise Singular;
    let xd = (g -. Vec.dot t.last_row y) /. schur in
    let xa = Array.init n (fun i -> y.(i) -. (z.(i) *. xd)) in
    Array.append xa [| xd |]
  end
