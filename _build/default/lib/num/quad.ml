let eval ~a ~b ~c x = (a *. x *. x) +. (b *. x) +. c

let roots ~a ~b ~c =
  if a = 0.0 then
    if b = 0.0 then []
    else [ -.c /. b ]
  else begin
    let disc = (b *. b) -. (4.0 *. a *. c) in
    if disc < 0.0 then []
    else if disc = 0.0 then [ -.b /. (2.0 *. a) ]
    else begin
      (* stable form: pick the root expression that avoids cancellation *)
      let sq = sqrt disc in
      let q = -0.5 *. (b +. (if b >= 0.0 then sq else -.sq)) in
      let r1 = q /. a and r2 = c /. q in
      if r1 <= r2 then [ r1; r2 ] else [ r2; r1 ]
    end
  end

let smallest_positive_root ~a ~b ~c =
  roots ~a ~b ~c |> List.find_opt (fun r -> r > 0.0)
