(** Quadratic-polynomial utilities for piecewise-quadratic waveforms. *)

val roots : a:float -> b:float -> c:float -> float list
(** Real roots of [a x^2 + b x + c], ascending; degenerate cases (a = 0,
    and a = b = 0) handled. A double root is reported once. *)

val smallest_positive_root : a:float -> b:float -> c:float -> float option
(** First strictly-positive real root, if any; the "time until the
    quadratic piece reaches a level" query. *)

val eval : a:float -> b:float -> c:float -> float -> float
