exception Singular

let solve ~base_solve ~u ~v b =
  let y = base_solve b in
  let z = base_solve u in
  let denom = 1.0 +. Vec.dot v z in
  if Float.abs denom < 1e-300 then raise Singular;
  let coeff = Vec.dot v y /. denom in
  Array.init (Array.length y) (fun i -> y.(i) -. (coeff *. z.(i)))

let solve_tridiag t ~u ~v b = solve ~base_solve:(Tridiag.solve t) ~u ~v b
