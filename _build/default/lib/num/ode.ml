let rk4 ~f ~t0 ~x0 ~t1 ~steps =
  if steps < 1 then invalid_arg "Ode.rk4: steps < 1";
  if t1 <= t0 then invalid_arg "Ode.rk4: empty interval";
  let h = (t1 -. t0) /. float_of_int steps in
  let out = Array.make (steps + 1) (t0, Vec.copy x0) in
  let x = ref (Vec.copy x0) in
  for i = 1 to steps do
    let t = t0 +. (float_of_int (i - 1) *. h) in
    let k1 = f t !x in
    let k2 = f (t +. (h /. 2.0)) (Vec.add !x (Vec.scale (h /. 2.0) k1)) in
    let k3 = f (t +. (h /. 2.0)) (Vec.add !x (Vec.scale (h /. 2.0) k2)) in
    let k4 = f (t +. h) (Vec.add !x (Vec.scale h k3)) in
    let incr =
      Vec.scale (h /. 6.0)
        (Vec.add (Vec.add k1 (Vec.scale 2.0 k2)) (Vec.add (Vec.scale 2.0 k3) k4))
    in
    x := Vec.add !x incr;
    out.(i) <- (t +. h, Vec.copy !x)
  done;
  out
