(** Lowering a logic stage to the charge/discharge chain along its worst
    path (paper §III-C: "only charging/discharging along the longest paths
    needs to be considered"). *)

type lowering = {
  chain : Chain.t;
  stage_nodes : Stage.node array;
      (** [stage_nodes.(k-1)] is the stage node backing chain node [k] *)
}

val to_chain :
  model:Tqwm_device.Device_model.t ->
  rail:Chain.rail ->
  output:Stage.node ->
  ?conducting:(Stage.edge -> bool) ->
  bias:(Stage.node -> float) ->
  Stage.t ->
  lowering
(** Extract the path from the rail (ground for [Pull_down], supply for
    [Pull_up]) to [output]. Only edges with [conducting edge] (default:
    all) are traversable. Node capacitances
    sum the terminal contributions of {e every} incident stage element at
    the node's [bias] voltage, plus external loads — side branches load
    the path even though they are not traversed.
    @raise Not_found when no path exists. *)
