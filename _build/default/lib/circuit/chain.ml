module Device = Tqwm_device.Device

type rail = Pull_down | Pull_up

type edge = { device : Device.t; gate : string option }

type t = { rail : rail; edges : edge array; caps : float array }

let make ~rail ~edges ~caps =
  let edges = Array.of_list edges and caps = Array.of_list caps in
  if Array.length edges = 0 then invalid_arg "Chain.make: empty chain";
  if Array.length edges <> Array.length caps then
    invalid_arg "Chain.make: edge/capacitance count mismatch";
  Array.iter
    (fun c -> if c <= 0.0 then invalid_arg "Chain.make: non-positive capacitance")
    caps;
  Array.iter
    (fun e ->
      match (e.device.Device.kind, e.gate) with
      | (Device.Nmos | Device.Pmos), None ->
        invalid_arg "Chain.make: transistor edge without gate"
      | Device.Wire, Some _ -> invalid_arg "Chain.make: wire edge with gate"
      | (Device.Nmos | Device.Pmos), Some _ | Device.Wire, None -> ())
    edges;
  { rail; edges; caps }

let length t = Array.length t.edges

let output_node t = length t

let is_transistor e =
  match e.device.Device.kind with
  | Device.Nmos | Device.Pmos -> true
  | Device.Wire -> false

let transistor_positions t =
  Array.to_list t.edges
  |> List.mapi (fun i e -> (i + 1, e))
  |> List.filter_map (fun (i, e) -> if is_transistor e then Some i else None)

let pp fmt t =
  Format.fprintf fmt "chain (%s, %d edges):@\n"
    (match t.rail with Pull_down -> "pull-down" | Pull_up -> "pull-up")
    (length t);
  Array.iteri
    (fun i e ->
      Format.fprintf fmt "  edge %d: %a%s  (node %d cap %.3g fF)@\n" (i + 1)
        Device.pp e.device
        (match e.gate with Some g -> " gate=" ^ g | None -> "")
        (i + 1)
        (t.caps.(i) *. 1e15))
    t.edges
