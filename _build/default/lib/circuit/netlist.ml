module Device = Tqwm_device.Device

type node = int

type element = { device : Device.t; gate : node option; src : node; snk : node }

type t = {
  num_nodes : int;
  supply : node;
  ground : node;
  elements : element array;
  primary_inputs : node list;
  primary_outputs : node list;
  loads : float array;
  node_names : string array;
}

type builder = {
  mutable names : string list;
  mutable count : int;
  mutable b_elements : element list;
  mutable b_inputs : node list;
  mutable b_outputs : node list;
  mutable b_loads : (node * float) list;
  b_supply : node;
  b_ground : node;
}

let add_node b name =
  let id = b.count in
  b.count <- id + 1;
  b.names <- name :: b.names;
  id

let create () =
  let b =
    {
      names = [];
      count = 0;
      b_elements = [];
      b_inputs = [];
      b_outputs = [];
      b_loads = [];
      b_supply = 0;
      b_ground = 1;
    }
  in
  let (_ : node) = add_node b "vdd" in
  let (_ : node) = add_node b "gnd" in
  b

let supply b = b.b_supply

let ground b = b.b_ground

let check_node b n ctx = if n < 0 || n >= b.count then invalid_arg ("Netlist: unknown node in " ^ ctx)

let add_transistor b device ~gate ~src ~snk =
  (match device.Device.kind with
  | Device.Wire -> invalid_arg "Netlist.add_transistor: wire device"
  | Device.Nmos | Device.Pmos -> ());
  check_node b gate "add_transistor";
  check_node b src "add_transistor";
  check_node b snk "add_transistor";
  b.b_elements <- { device; gate = Some gate; src; snk } :: b.b_elements

let add_wire b device ~src ~snk =
  (match device.Device.kind with
  | Device.Wire -> ()
  | Device.Nmos | Device.Pmos -> invalid_arg "Netlist.add_wire: transistor device");
  check_node b src "add_wire";
  check_node b snk "add_wire";
  b.b_elements <- { device; gate = None; src; snk } :: b.b_elements

let add_load b n c =
  check_node b n "add_load";
  b.b_loads <- (n, c) :: b.b_loads

let mark_primary_input b n =
  check_node b n "mark_primary_input";
  if not (List.mem n b.b_inputs) then b.b_inputs <- n :: b.b_inputs

let mark_primary_output b n =
  check_node b n "mark_primary_output";
  if not (List.mem n b.b_outputs) then b.b_outputs <- n :: b.b_outputs

let finish b =
  let loads = Array.make b.count 0.0 in
  List.iter (fun (n, c) -> loads.(n) <- loads.(n) +. c) b.b_loads;
  {
    num_nodes = b.count;
    supply = b.b_supply;
    ground = b.b_ground;
    elements = Array.of_list (List.rev b.b_elements);
    primary_inputs = List.rev b.b_inputs;
    primary_outputs = List.rev b.b_outputs;
    loads;
    node_names = Array.of_list (List.rev b.names);
  }

let node_name t n = t.node_names.(n)

let find_node t name =
  let rec search i =
    if i >= t.num_nodes then raise Not_found
    else if String.equal t.node_names.(i) name then i
    else search (i + 1)
  in
  search 0
