(** Constructors for the circuit families of the paper's evaluation:
    standard gates (Table I), NMOS stacks (Table II, Figs. 7/9), the
    Manchester carry chain (Example 2) and the memory decoder tree
    (Example 3, Fig. 10).

    Input naming conventions: gate inputs are ["a1"], ["a2"], ... from the
    ground side up; stacks use ["g1"].. ["gK"]; the Manchester chain uses
    ["g0"] (first pull-down), ["p1"].. ["pN"] (pass gates) and ["phi"]
    (precharge); the decoder uses ["en"] and ["s1"].. ["sL"]. *)

open Tqwm_device

val inverter : ?wn:float -> ?wp:float -> ?load:float -> Tech.t -> Stage.t
(** Minimum-size inverter by default; input ["a1"], output node named
    ["out"]. [load] is the external capacitance at the output (default
    10 fF). *)

val nand : n:int -> ?wn:float -> ?wp:float -> ?load:float -> Tech.t -> Stage.t
(** [n]-input NAND: [n] series NMOS (["a1"] at the bottom), [n] parallel
    PMOS. @raise Invalid_argument if [n < 1]. *)

val nor : n:int -> ?wn:float -> ?wp:float -> ?load:float -> Tech.t -> Stage.t
(** [n]-input NOR: [n] series PMOS (["a1"] next to VDD), [n] parallel
    NMOS. *)

val aoi21 : ?wn:float -> ?wp:float -> ?load:float -> Tech.t -> Stage.t
(** AND-OR-INVERT: [out = not (a AND b OR c)]. The pull-down network has
    two parallel branches — the series pair ["a"]/["b"] and the single
    ["c"] — so worst-case path extraction must pick the conducting
    branch. Inputs ["a"], ["b"], ["c"]. *)

val oai21 : ?wn:float -> ?wp:float -> ?load:float -> Tech.t -> Stage.t
(** OR-AND-INVERT: [out = not ((a OR b) AND c)] — the dual structure with
    the series pair in the pull-up network. *)

val nand_pass : n:int -> ?wn:float -> ?wp:float -> ?wire_length:float -> ?load:float -> Tech.t -> Stage.t
(** The paper's Example 1 / Fig. 1 structure: an [n]-input NAND whose
    output drives a pass transistor (gate ["en"], held high) and a wire
    segment to the stage output ["far"] — a cell output that is not a
    gate input, so the whole assembly forms one logic stage that must be
    evaluated on the fly. *)

val nmos_stack : widths:float array -> ?load:float -> Tech.t -> Stage.t
(** Pure pull-down stack of [Array.length widths] NMOS transistors,
    inputs ["g1"] (bottom) .. ["gK"], output at the top with [load]. *)

val manchester : bits:int -> ?w:float -> ?load:float -> Tech.t -> Stage.t
(** Manchester carry chain discharge structure: one pull-down NMOS
    (["g0"]) followed by [bits] pass transistors (["p1"]..), PMOS
    precharge (["phi"]) on every carry node. The longest path is a
    [bits+1]-transistor stack. *)

val decoder_path :
  levels:int ->
  ?w:float ->
  ?base_wire_length:float ->
  ?wire_width:float ->
  ?wire_segments:int ->
  ?load:float ->
  Tech.t ->
  Stage.t
(** Worst-case discharge path of a memory decoder tree: an enable NMOS
    (["en"]) followed, per level [i], by a wire whose length doubles each
    level (modelled as [wire_segments] lumped RC sections) and a pass
    transistor (["s<i>"]). Side-branch junction capacitance is added at
    each level's branching node. Output is the far end with [load]. *)

val find_node : Stage.t -> string -> Stage.node
(** Look a node up by name. @raise Not_found. *)

val output_exn : Stage.t -> Stage.node
(** The unique marked output. @raise Invalid_argument otherwise. *)
