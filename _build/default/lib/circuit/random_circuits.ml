let uniform state lo hi = lo +. ((hi -. lo) *. Random.State.float state 1.0)

let widths (tech : Tqwm_device.Tech.t) ~len ~seed =
  if len < 1 then invalid_arg "Random_circuits.widths: len < 1";
  let state = Random.State.make [| seed; len |] in
  Array.init len (fun _ -> uniform state tech.w_min (6.0 *. tech.w_min))

let stack_scenario (tech : Tqwm_device.Tech.t) ~len ~seed =
  let ws = widths tech ~len ~seed in
  let state = Random.State.make [| seed; len; 7919 |] in
  let load = uniform state 5e-15 25e-15 in
  Scenario.stack_falling ~name:(Printf.sprintf "ckt%d_%d" len seed) ~widths:ws ~load tech

let table2_suite tech =
  List.concat_map
    (fun len -> List.map (fun seed -> stack_scenario tech ~len ~seed) [ 1; 2; 3 ])
    [ 5; 6; 7; 8; 9; 10 ]
