open Tqwm_device
open Tqwm_wave

type t = {
  name : string;
  tech : Tech.t;
  stage : Stage.t;
  sources : (string * Source.t) list;
  output : Stage.node;
  output_edge : Measure.edge;
  rail : Chain.rail;
  t_end : float;
  initial : float array;
}

let fixed_point ~start f =
  let rec go v i = if i = 0 then v else go (f v) (i - 1) in
  go start 50

let precharge_voltage (tech : Tech.t) =
  fixed_point ~start:tech.vdd (fun v -> tech.vdd -. Mosfet.threshold tech Mosfet.N ~vsb:v)

let predischarge_voltage (tech : Tech.t) =
  fixed_point ~start:0.0 (fun v -> Mosfet.threshold tech Mosfet.P ~vsb:(tech.vdd -. v))

let source t name =
  match List.assoc_opt name t.sources with
  | Some s -> s
  | None -> raise Not_found

let gate_value t name time = Source.value (source t name) time

let conducting t (edge : Stage.edge) =
  match edge.gate with
  | None -> true
  | Some g ->
    let v = gate_value t g t.t_end in
    let half = t.tech.Tech.vdd /. 2.0 in
    (match edge.device.Device.kind with
    | Device.Nmos -> v > half
    | Device.Pmos -> v < half
    | Device.Wire -> true)

let lower ~model t =
  Path.to_chain ~model ~rail:t.rail ~output:t.output ~conducting:(conducting t)
    ~bias:(fun n -> t.initial.(n)) t.stage

(* Build the initial-voltage array: supply/ground pinned, everything else
   from [assign] (defaulting to VDD). *)
let initial_voltages (tech : Tech.t) (stage : Stage.t) assign =
  Array.init stage.Stage.num_nodes (fun n ->
      if n = stage.Stage.supply then tech.vdd
      else if n = stage.Stage.ground then 0.0
      else match assign n with Some v -> v | None -> tech.vdd)

let rising_step (tech : Tech.t) = Source.step ~low:0.0 ~high:tech.vdd ()

let falling_step (tech : Tech.t) = Source.step ~low:tech.vdd ~high:0.0 ()

let high (tech : Tech.t) = Source.constant tech.vdd

let low = Source.constant 0.0

let inverter_falling ?load (tech : Tech.t) =
  let stage = Builders.inverter ?load tech in
  let output = Builders.output_exn stage in
  {
    name = "inv";
    tech;
    stage;
    sources = [ ("a1", rising_step tech) ];
    output;
    output_edge = Measure.Falling;
    rail = Chain.Pull_down;
    t_end = 400e-12;
    initial = initial_voltages tech stage (fun _ -> None);
  }

let nand_falling ~n ?load (tech : Tech.t) =
  let stage = Builders.nand ~n ?load tech in
  let output = Builders.output_exn stage in
  let vp = precharge_voltage tech in
  let sources =
    List.init n (fun i ->
        let name = Printf.sprintf "a%d" (i + 1) in
        (name, if i = 0 then rising_step tech else high tech))
  in
  let internal n' = if n' = output then None else Some vp in
  {
    name = Printf.sprintf "nand%d" n;
    tech;
    stage;
    sources;
    output;
    output_edge = Measure.Falling;
    rail = Chain.Pull_down;
    t_end = 400e-12 +. (float_of_int n *. 100e-12);
    initial = initial_voltages tech stage internal;
  }

let nor_rising ~n ?load (tech : Tech.t) =
  let stage = Builders.nor ~n ?load tech in
  let output = Builders.output_exn stage in
  let vp = predischarge_voltage tech in
  let sources =
    List.init n (fun i ->
        let name = Printf.sprintf "a%d" (i + 1) in
        (name, if i = 0 then falling_step tech else low))
  in
  let internal n' = if n' = output then Some 0.0 else Some vp in
  {
    name = Printf.sprintf "nor%d" n;
    tech;
    stage;
    sources;
    output;
    output_edge = Measure.Rising;
    rail = Chain.Pull_up;
    t_end = 500e-12 +. (float_of_int n *. 150e-12);
    initial = initial_voltages tech stage internal;
  }

let nand_pass_falling ~n ?load (tech : Tech.t) =
  let stage = Builders.nand_pass ~n ?load tech in
  let output = Builders.output_exn stage in
  let vp = precharge_voltage tech in
  let nand_out = Builders.find_node stage "out" in
  let sources =
    ("en", high tech)
    :: List.init n (fun i ->
           let name = Printf.sprintf "a%d" (i + 1) in
           (name, if i = 0 then rising_step tech else high tech))
  in
  (* NAND output rail-precharged by its on PMOS; everything past the pass
     transistor sits a threshold below *)
  let internal n' = if n' = nand_out then None else Some vp in
  {
    name = Printf.sprintf "nandpass%d" n;
    tech;
    stage;
    sources;
    output;
    output_edge = Measure.Falling;
    rail = Chain.Pull_down;
    t_end = 600e-12 +. (float_of_int n *. 100e-12);
    initial = initial_voltages tech stage internal;
  }

let aoi21_falling ?load (tech : Tech.t) =
  let stage = Builders.aoi21 ?load tech in
  let output = Builders.output_exn stage in
  let x = Builders.find_node stage "x" and y = Builders.find_node stage "y" in
  let internal n' =
    if n' = x then Some 0.0  (* held at ground through the on b-transistor *)
    else if n' = y then None  (* precharged by the on a-PMOS *)
    else None
  in
  {
    name = "aoi21";
    tech;
    stage;
    sources = [ ("a", rising_step tech); ("b", high tech); ("c", low) ];
    output;
    output_edge = Measure.Falling;
    rail = Chain.Pull_down;
    t_end = 500e-12;
    initial = initial_voltages tech stage internal;
  }

let oai21_rising ?load (tech : Tech.t) =
  let stage = Builders.oai21 ?load tech in
  let output = Builders.output_exn stage in
  let x = Builders.find_node stage "x" and y = Builders.find_node stage "y" in
  let vp = predischarge_voltage tech in
  let internal n' =
    if n' = output || n' = x then Some 0.0
    else if n' = y then Some vp  (* discharged through the on b-PMOS *)
    else None
  in
  {
    name = "oai21";
    tech;
    stage;
    sources = [ ("a", falling_step tech); ("b", low); ("c", high tech) ];
    output;
    output_edge = Measure.Rising;
    rail = Chain.Pull_up;
    t_end = 600e-12;
    initial = initial_voltages tech stage internal;
  }

let stack_falling ?name ~widths ?load (tech : Tech.t) =
  let k = Array.length widths in
  let stage = Builders.nmos_stack ~widths ?load tech in
  let output = Builders.output_exn stage in
  let sources =
    List.init k (fun i ->
        let input = Printf.sprintf "g%d" (i + 1) in
        (input, if i = 0 then rising_step tech else high tech))
  in
  (* all nodes precharged to full VDD (the paper's stacks come from
     precharged structures such as the Manchester carry chain), giving the
     staggered turn-on cascade of Fig. 7 *)
  let internal _ = None in
  {
    name = Option.value name ~default:(Printf.sprintf "stack%d" k);
    tech;
    stage;
    sources;
    output;
    output_edge = Measure.Falling;
    rail = Chain.Pull_down;
    t_end = 400e-12 +. (float_of_int k *. 120e-12);
    initial = initial_voltages tech stage internal;
  }

let manchester ~bits ?load (tech : Tech.t) =
  let stage = Builders.manchester ~bits ?load tech in
  let output = Builders.output_exn stage in
  let sources =
    (("g0", rising_step tech) :: ("phi", high tech)
    :: List.init bits (fun i -> (Printf.sprintf "p%d" (i + 1), high tech)))
  in
  {
    name = Printf.sprintf "manchester%d" bits;
    tech;
    stage;
    sources;
    output;
    output_edge = Measure.Falling;
    rail = Chain.Pull_down;
    t_end = 400e-12 +. (float_of_int bits *. 120e-12);
    initial = initial_voltages tech stage (fun _ -> None);
  }

let decoder ~levels ?wire_segments ?load (tech : Tech.t) =
  let stage = Builders.decoder_path ~levels ?wire_segments ?load tech in
  let output = Builders.output_exn stage in
  let sources =
    ("en", rising_step tech)
    :: List.init levels (fun i -> (Printf.sprintf "s%d" (i + 1), high tech))
  in
  {
    name = Printf.sprintf "decoder%d" levels;
    tech;
    stage;
    sources;
    output;
    output_edge = Measure.Falling;
    rail = Chain.Pull_down;
    t_end = 1.5e-9 +. (float_of_int levels *. 1.0e-9);
    initial = initial_voltages tech stage (fun _ -> None);
  }

let with_ramp_input ~rise_time t =
  let replace (name, src) =
    if Source.is_step src then begin
      let t0 = Option.value (Source.transition_time src) ~default:0.0 in
      let low = Source.value src (t0 -. 1.0) and high = Source.value src (t0 +. 1e3) in
      (name, Source.ramp ~t0 ~low ~high ~rise_time ())
    end
    else (name, src)
  in
  { t with sources = List.map replace t.sources; name = t.name ^ "+ramp" }
