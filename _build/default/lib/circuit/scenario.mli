(** Worst-case switching scenarios — a stage plus everything the engines
    need to run it: gate drives, initial node voltages, the observed
    output and its expected transition direction.

    These encode the paper's experiments: static timing analysis only
    simulates the worst-case charge/discharge of each stage (§III-C). *)

open Tqwm_device
open Tqwm_wave

type t = {
  name : string;
  tech : Tech.t;
  stage : Stage.t;
  sources : (string * Source.t) list;  (** one entry per stage input *)
  output : Stage.node;
  output_edge : Measure.edge;
  rail : Chain.rail;  (** which network drives the transition *)
  t_end : float;  (** simulation window *)
  initial : float array;  (** initial voltage per stage node *)
}

val precharge_voltage : Tech.t -> float
(** Fixed point of [v = VDD - Vth_n(vsb = v)]: the voltage an internal
    node reaches when charged through an NMOS whose gate is at VDD. *)

val predischarge_voltage : Tech.t -> float
(** Dual fixed point for nodes discharged through a PMOS passing 0. *)

val source : t -> string -> Source.t
(** @raise Not_found for an unknown input. *)

val conducting : t -> Stage.edge -> bool
(** Whether an edge conducts once all inputs settle (evaluated at
    [t_end]); used to pick the worst-case path. *)

val lower : model:Device_model.t -> t -> Path.lowering
(** Lower the scenario's stage to its charge/discharge chain, with node
    capacitances evaluated at the initial node biases. *)

val gate_value : t -> string -> float -> float
(** Gate-drive voltage of an input at a time. *)

(** {2 Constructors for the paper's workloads} *)

val inverter_falling : ?load:float -> Tech.t -> t

val nand_falling : n:int -> ?load:float -> Tech.t -> t
(** All inputs high, the bottom input switching 0 -> VDD at t = 0; output
    falls (Table I workload). *)

val nor_rising : n:int -> ?load:float -> Tech.t -> t
(** All inputs low, the input next to VDD switching VDD -> 0; output rises
    through the PMOS chain (exercises the pull-up mirror path). *)

val aoi21_falling : ?load:float -> Tech.t -> t
(** AOI21 with ["a"] switching high, ["b"] high and ["c"] low: the output
    falls through the series a-b branch while the parallel c branch stays
    off — exercising conducting-branch selection in a branching
    pull-down network. *)

val oai21_rising : ?load:float -> Tech.t -> t
(** OAI21 with ["a"] switching low, ["b"] low and ["c"] high: the output
    rises through the series PMOS pair. *)

val nand_pass_falling : n:int -> ?load:float -> Tech.t -> t
(** The paper's Example 1 / Fig. 1 stage: NAND -> pass transistor -> wire.
    All NAND inputs high with the bottom one switching; ["en"] held high;
    the far wire end falls. The pass transistor contributes a genuine
    mid-transient critical point (it only turns on once the NAND output
    has fallen a threshold below its gate). *)

val stack_falling : ?name:string -> widths:float array -> ?load:float -> Tech.t -> t
(** Pure NMOS stack, bottom gate switching (Table II / Figs. 7 and 9). *)

val manchester : bits:int -> ?load:float -> Tech.t -> t
(** Carry-chain discharge: precharged carry nodes, ["g0"] switching. *)

val decoder : levels:int -> ?wire_segments:int -> ?load:float -> Tech.t -> t
(** Decoder-tree discharge with long wires (Fig. 10 workload). *)

val with_ramp_input : rise_time:float -> t -> t
(** Replace the switching (step) input by a ramp of the given rise time. *)
