lib/circuit/chain.ml: Array Format List Tqwm_device
