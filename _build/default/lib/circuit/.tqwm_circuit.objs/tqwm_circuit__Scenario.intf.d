lib/circuit/scenario.mli: Chain Device_model Measure Path Source Stage Tech Tqwm_device Tqwm_wave
