lib/circuit/netlist_parser.mli: Netlist Tqwm_device
