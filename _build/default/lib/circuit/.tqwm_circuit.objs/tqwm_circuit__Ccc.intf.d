lib/circuit/ccc.mli: Netlist Stage Tqwm_device
