lib/circuit/random_circuits.mli: Scenario Tqwm_device
