lib/circuit/path.ml: Array Chain List Stage Tqwm_device
