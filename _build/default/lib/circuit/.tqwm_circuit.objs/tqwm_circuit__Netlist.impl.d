lib/circuit/netlist.ml: Array List String Tqwm_device
