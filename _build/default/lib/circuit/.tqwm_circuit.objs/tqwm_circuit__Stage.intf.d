lib/circuit/stage.mli: Format Tqwm_device
