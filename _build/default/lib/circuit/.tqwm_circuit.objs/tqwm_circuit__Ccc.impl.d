lib/circuit/ccc.ml: Array Fun Hashtbl List Netlist Option Stage
