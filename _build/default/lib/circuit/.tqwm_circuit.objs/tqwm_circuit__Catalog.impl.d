lib/circuit/catalog.ml: Array Random_circuits Scenario String Tqwm_device
