lib/circuit/stage.ml: Array Format Fun Hashtbl List Tqwm_device
