lib/circuit/builders.mli: Stage Tech Tqwm_device
