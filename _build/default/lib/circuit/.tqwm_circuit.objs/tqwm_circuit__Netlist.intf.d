lib/circuit/netlist.mli: Tqwm_device
