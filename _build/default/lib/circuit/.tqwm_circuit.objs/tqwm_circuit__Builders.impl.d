lib/circuit/builders.ml: Array Capacitance Device List Option Printf Stage String Tech Tqwm_device
