lib/circuit/scenario.ml: Array Builders Chain Device List Measure Mosfet Option Path Printf Source Stage Tech Tqwm_device Tqwm_wave
