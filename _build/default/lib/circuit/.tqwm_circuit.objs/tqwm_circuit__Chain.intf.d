lib/circuit/chain.mli: Format Tqwm_device
