lib/circuit/catalog.mli: Scenario Tqwm_device
