lib/circuit/netlist_parser.ml: Hashtbl List Netlist Option Printf String Tqwm_device
