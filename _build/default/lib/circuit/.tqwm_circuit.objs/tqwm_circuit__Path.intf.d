lib/circuit/path.mli: Chain Stage Tqwm_device
