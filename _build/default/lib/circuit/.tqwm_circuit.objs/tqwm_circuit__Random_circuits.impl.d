lib/circuit/random_circuits.ml: Array List Printf Random Scenario Tqwm_device
