let parse_suffix ~prefix name =
  let pl = String.length prefix in
  if String.length name > pl && String.sub name 0 pl = prefix then
    int_of_string_opt (String.sub name pl (String.length name - pl))
  else None

let parse_ckt name =
  match String.index_opt name '_' with
  | Some i when String.length name > 3 && String.sub name 0 3 = "ckt" ->
    let len = int_of_string_opt (String.sub name 3 (i - 3)) in
    let seed = int_of_string_opt (String.sub name (i + 1) (String.length name - i - 1)) in
    (match (len, seed) with Some l, Some s -> Some (l, s) | _, _ -> None)
  | Some _ | None -> None

let scenario (tech : Tqwm_device.Tech.t) name =
  if String.equal name "inv" then Scenario.inverter_falling tech
  else if String.equal name "aoi21" then Scenario.aoi21_falling tech
  else if String.equal name "oai21" then Scenario.oai21_rising tech
  else
    match parse_suffix ~prefix:"nandpass" name with
    | Some n -> Scenario.nand_pass_falling ~n tech
    | None ->
    match parse_suffix ~prefix:"nand" name with
    | Some n -> Scenario.nand_falling ~n tech
    | None ->
      match parse_suffix ~prefix:"nor" name with
      | Some n -> Scenario.nor_rising ~n tech
      | None ->
        match parse_suffix ~prefix:"stack" name with
        | Some k ->
          Scenario.stack_falling ~widths:(Array.make k (2.0 *. tech.w_min)) tech
        | None ->
          match parse_suffix ~prefix:"manchester" name with
          | Some bits -> Scenario.manchester ~bits tech
          | None ->
            match parse_suffix ~prefix:"decoder" name with
            | Some levels -> Scenario.decoder ~levels tech
            | None ->
              match parse_ckt name with
              | Some (len, seed) -> Random_circuits.stack_scenario tech ~len ~seed
              | None -> raise Not_found

let examples =
  [ "inv"; "nand3"; "nor2"; "aoi21"; "oai21"; "stack6"; "manchester5"; "decoder3"; "ckt7_2" ]
