module Device = Tqwm_device.Device

type lowering = { chain : Chain.t; stage_nodes : Stage.node array }

(* DFS over traversable edges, treating the stage graph as undirected. *)
let find_path stage ~from ~target ~traversable =
  let visited = Array.make stage.Stage.num_nodes false in
  let rec dfs node =
    if node = target then Some []
    else begin
      visited.(node) <- true;
      let step edge =
        let other = if edge.Stage.src = node then edge.Stage.snk else edge.Stage.src in
        if visited.(other) then None
        else
          match dfs other with
          | Some rest -> Some (edge :: rest)
          | None -> None
      in
      Stage.incident stage node
      |> List.filter traversable
      |> List.find_map step
    end
  in
  dfs from

let to_chain ~model ~rail ~output ?(conducting = fun _ -> true) ~bias stage =
  let rail_node =
    match rail with
    | Chain.Pull_down -> stage.Stage.ground
    | Chain.Pull_up -> stage.Stage.supply
  in
  let traversable = conducting in
  let path =
    match find_path stage ~from:rail_node ~target:output ~traversable with
    | Some p -> p
    | None -> raise Not_found
  in
  (* walk the path recording the far node of each edge *)
  let nodes =
    List.fold_left
      (fun acc (e : Stage.edge) ->
        let here = match acc with [] -> rail_node | n :: _ -> n in
        let far = if e.src = here then e.snk else e.src in
        far :: acc)
      [] path
    |> List.rev
  in
  let edges =
    List.map (fun (e : Stage.edge) -> { Chain.device = e.device; gate = e.gate }) path
  in
  (* Conducting side branches (e.g. an on pass/feedback transistor hanging
     off a path node) slave their subtree's capacitance to the path node:
     the branch has no other discharge path, so its charge must move
     through the node. Fold that capacitance in, as a SPICE simulation of
     the full stage would implicitly do. *)
  let on_path = Array.make stage.Stage.num_nodes false in
  List.iter (fun n -> on_path.(n) <- true) nodes;
  on_path.(stage.Stage.supply) <- true;
  on_path.(stage.Stage.ground) <- true;
  let side_branch_cap start =
    let visited = Array.make stage.Stage.num_nodes false in
    let rec explore node acc =
      Stage.incident stage node
      |> List.filter traversable
      |> List.fold_left
           (fun acc (e : Stage.edge) ->
             let other = if e.src = node then e.snk else e.src in
             if on_path.(other) || visited.(other) then acc
             else begin
               visited.(other) <- true;
               explore other
                 (acc +. Stage.node_capacitance model stage other ~v:(bias other))
             end)
           acc
    in
    explore start 0.0
  in
  let caps =
    List.map
      (fun n -> Stage.node_capacitance model stage n ~v:(bias n) +. side_branch_cap n)
      nodes
  in
  {
    chain = Chain.make ~rail ~edges ~caps;
    stage_nodes = Array.of_list nodes;
  }
