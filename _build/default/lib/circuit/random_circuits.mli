(** Seeded random stage generation for the Table II experiment
    ("transistor stacks of lengths ranging from 5 to 10, with randomly
    chosen transistor widths"). Deterministic for a given seed. *)

val widths : Tqwm_device.Tech.t -> len:int -> seed:int -> float array
(** [len] transistor widths uniform in [1x, 6x] minimum width. *)

val stack_scenario : Tqwm_device.Tech.t -> len:int -> seed:int -> Scenario.t
(** A random stack scenario named ["ckt<len>_<seed>"] with a random load
    in [5 fF, 25 fF]. *)

val table2_suite : Tqwm_device.Tech.t -> Scenario.t list
(** The paper's Table II population: lengths 5..10, three width
    configurations each. *)
