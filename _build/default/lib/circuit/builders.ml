open Tqwm_device

let default_load = 10e-15

let min_widths (tech : Tech.t) = (tech.w_min, 2.0 *. tech.w_min)

let inverter ?wn ?wp ?(load = default_load) (tech : Tech.t) =
  let wn_min, wp_min = min_widths tech in
  let wn = Option.value wn ~default:wn_min and wp = Option.value wp ~default:wp_min in
  let b = Stage.create () in
  let out = Stage.add_node b "out" in
  Stage.add_edge b ~gate:"a1" (Device.nmos ~w:wn tech) ~src:out ~snk:(Stage.ground b);
  Stage.add_edge b ~gate:"a1" (Device.pmos ~w:wp tech) ~src:(Stage.supply b) ~snk:out;
  Stage.add_load b out load;
  Stage.mark_output b out;
  Stage.finish b

let series_pull_down b tech ~w ~n ~top ~input_name =
  (* n series NMOS from ground up to [top]; returns internal nodes bottom-up *)
  let rec build below i acc =
    if i > n then List.rev acc
    else begin
      let above = if i = n then top else Stage.add_node b (Printf.sprintf "x%d" i) in
      Stage.add_edge b ~gate:(input_name i) (Device.nmos ~w tech) ~src:above ~snk:below;
      build above (i + 1) (if i = n then acc else above :: acc)
    end
  in
  build (Stage.ground b) 1 []

let nand ~n ?wn ?wp ?(load = default_load) (tech : Tech.t) =
  if n < 1 then invalid_arg "Builders.nand: n < 1";
  let wn_min, wp_min = min_widths tech in
  let wn = Option.value wn ~default:wn_min and wp = Option.value wp ~default:wp_min in
  let b = Stage.create () in
  let out = Stage.add_node b "out" in
  let input i = Printf.sprintf "a%d" i in
  let (_ : Stage.node list) =
    series_pull_down b tech ~w:wn ~n ~top:out ~input_name:input
  in
  for i = 1 to n do
    Stage.add_edge b ~gate:(input i) (Device.pmos ~w:wp tech) ~src:(Stage.supply b)
      ~snk:out
  done;
  Stage.add_load b out load;
  Stage.mark_output b out;
  Stage.finish b

let nor ~n ?wn ?wp ?(load = default_load) (tech : Tech.t) =
  if n < 1 then invalid_arg "Builders.nor: n < 1";
  let wn_min, wp_min = min_widths tech in
  let wn = Option.value wn ~default:wn_min and wp = Option.value wp ~default:wp_min in
  let b = Stage.create () in
  let out = Stage.add_node b "out" in
  let input i = Printf.sprintf "a%d" i in
  (* series PMOS from the supply down to the output; a1 next to VDD *)
  let rec build above i =
    if i > n then ()
    else begin
      let below = if i = n then out else Stage.add_node b (Printf.sprintf "y%d" i) in
      Stage.add_edge b ~gate:(input i) (Device.pmos ~w:wp tech) ~src:above ~snk:below;
      build below (i + 1)
    end
  in
  build (Stage.supply b) 1;
  for i = 1 to n do
    Stage.add_edge b ~gate:(input i) (Device.nmos ~w:wn tech) ~src:out
      ~snk:(Stage.ground b)
  done;
  Stage.add_load b out load;
  Stage.mark_output b out;
  Stage.finish b

let nand_pass ~n ?wn ?wp ?(wire_length = 30e-6) ?(load = default_load) (tech : Tech.t) =
  if n < 1 then invalid_arg "Builders.nand_pass: n < 1";
  let wn_min, wp_min = min_widths tech in
  let wn = Option.value wn ~default:wn_min and wp = Option.value wp ~default:wp_min in
  let b = Stage.create () in
  let out = Stage.add_node b "out" in
  let mid = Stage.add_node b "mid" in
  let far = Stage.add_node b "far" in
  let input i = Printf.sprintf "a%d" i in
  let (_ : Stage.node list) =
    series_pull_down b tech ~w:wn ~n ~top:out ~input_name:input
  in
  for i = 1 to n do
    Stage.add_edge b ~gate:(input i) (Device.pmos ~w:wp tech) ~src:(Stage.supply b)
      ~snk:out
  done;
  (* the pass transistor and wire of Fig. 1: channel-connected, so part of
     this stage rather than a separately characterizable cell *)
  Stage.add_edge b ~gate:"en" (Device.nmos ~w:(2.0 *. wn) tech) ~src:mid ~snk:out;
  Stage.add_edge b (Device.wire ~w:0.6e-6 ~l:wire_length) ~src:far ~snk:mid;
  Stage.add_load b far load;
  Stage.mark_output b far;
  Stage.finish b

let aoi21 ?wn ?wp ?(load = default_load) (tech : Tech.t) =
  let wn_min, wp_min = min_widths tech in
  let wn = Option.value wn ~default:(2.0 *. wn_min)
  and wp = Option.value wp ~default:(2.0 *. wp_min) in
  let b = Stage.create () in
  let out = Stage.add_node b "out" in
  let x = Stage.add_node b "x" in
  let y = Stage.add_node b "y" in
  (* pull-down: (a series b) parallel c *)
  Stage.add_edge b ~gate:"b" (Device.nmos ~w:wn tech) ~src:x ~snk:(Stage.ground b);
  Stage.add_edge b ~gate:"a" (Device.nmos ~w:wn tech) ~src:out ~snk:x;
  Stage.add_edge b ~gate:"c" (Device.nmos ~w:wn tech) ~src:out ~snk:(Stage.ground b);
  (* pull-up: (a parallel b) series c *)
  Stage.add_edge b ~gate:"a" (Device.pmos ~w:wp tech) ~src:(Stage.supply b) ~snk:y;
  Stage.add_edge b ~gate:"b" (Device.pmos ~w:wp tech) ~src:(Stage.supply b) ~snk:y;
  Stage.add_edge b ~gate:"c" (Device.pmos ~w:wp tech) ~src:y ~snk:out;
  Stage.add_load b out load;
  Stage.mark_output b out;
  Stage.finish b

let oai21 ?wn ?wp ?(load = default_load) (tech : Tech.t) =
  let wn_min, wp_min = min_widths tech in
  let wn = Option.value wn ~default:(2.0 *. wn_min)
  and wp = Option.value wp ~default:(2.0 *. wp_min) in
  let b = Stage.create () in
  let out = Stage.add_node b "out" in
  let x = Stage.add_node b "x" in
  let y = Stage.add_node b "y" in
  (* pull-up: (a series b... a parallel b) in series with c is the AOI
     dual: here (a OR b) AND c -> pull-up = (a series b) parallel? no:
     out = not ((a or b) and c): pull-up conducts when (a or b) and c is
     false: (!a and !b) or !c -> series pair a,b parallel with c *)
  Stage.add_edge b ~gate:"a" (Device.pmos ~w:wp tech) ~src:(Stage.supply b) ~snk:y;
  Stage.add_edge b ~gate:"b" (Device.pmos ~w:wp tech) ~src:y ~snk:out;
  Stage.add_edge b ~gate:"c" (Device.pmos ~w:wp tech) ~src:(Stage.supply b) ~snk:out;
  (* pull-down: (a parallel b) series c *)
  Stage.add_edge b ~gate:"a" (Device.nmos ~w:wn tech) ~src:x ~snk:(Stage.ground b);
  Stage.add_edge b ~gate:"b" (Device.nmos ~w:wn tech) ~src:x ~snk:(Stage.ground b);
  Stage.add_edge b ~gate:"c" (Device.nmos ~w:wn tech) ~src:out ~snk:x;
  Stage.add_load b out load;
  Stage.mark_output b out;
  Stage.finish b

let nmos_stack ~widths ?(load = default_load) (tech : Tech.t) =
  let n = Array.length widths in
  if n < 1 then invalid_arg "Builders.nmos_stack: empty widths";
  let b = Stage.create () in
  let out = Stage.add_node b "out" in
  let rec build below i =
    if i > n then ()
    else begin
      let above = if i = n then out else Stage.add_node b (Printf.sprintf "x%d" i) in
      Stage.add_edge b
        ~gate:(Printf.sprintf "g%d" i)
        (Device.nmos ~w:widths.(i - 1) tech)
        ~src:above ~snk:below;
      build above (i + 1)
    end
  in
  build (Stage.ground b) 1;
  Stage.add_load b out load;
  Stage.mark_output b out;
  Stage.finish b

let manchester ~bits ?w ?(load = default_load) (tech : Tech.t) =
  if bits < 1 then invalid_arg "Builders.manchester: bits < 1";
  let w = Option.value w ~default:(2.0 *. tech.w_min) in
  let wp = 2.0 *. tech.w_min in
  let b = Stage.create () in
  let carry = Array.init (bits + 1) (fun i -> Stage.add_node b (Printf.sprintf "c%d" i)) in
  Stage.add_edge b ~gate:"g0" (Device.nmos ~w tech) ~src:carry.(0) ~snk:(Stage.ground b);
  for i = 1 to bits do
    Stage.add_edge b
      ~gate:(Printf.sprintf "p%d" i)
      (Device.nmos ~w tech) ~src:carry.(i)
      ~snk:carry.(i - 1)
  done;
  Array.iter
    (fun node ->
      Stage.add_edge b ~gate:"phi" (Device.pmos ~w:wp tech) ~src:(Stage.supply b)
        ~snk:node)
    carry;
  Stage.add_load b carry.(bits) load;
  Stage.mark_output b carry.(bits);
  Stage.finish b

let decoder_path ~levels ?w ?(base_wire_length = 50e-6) ?(wire_width = 0.6e-6)
    ?(wire_segments = 4) ?(load = default_load) (tech : Tech.t) =
  if levels < 1 then invalid_arg "Builders.decoder_path: levels < 1";
  if wire_segments < 1 then invalid_arg "Builders.decoder_path: wire_segments < 1";
  let w = Option.value w ~default:(3.0 *. tech.w_min) in
  let b = Stage.create () in
  let first = Stage.add_node b "d0" in
  Stage.add_edge b ~gate:"en" (Device.nmos ~w tech) ~src:first ~snk:(Stage.ground b);
  let add_wire below ~level ~length =
    let seg_l = length /. float_of_int wire_segments in
    let rec segments below s =
      if s > wire_segments then below
      else begin
        let above = Stage.add_node b (Printf.sprintf "w%d_%d" level s) in
        Stage.add_edge b (Device.wire ~w:wire_width ~l:seg_l) ~src:above ~snk:below;
        segments above (s + 1)
      end
    in
    segments below 1
  in
  let rec build below level =
    if level > levels then below
    else begin
      let length = base_wire_length *. (2.0 ** float_of_int (level - 1)) in
      let wire_top = add_wire below ~level ~length in
      (* the sibling branch of the tree loads this junction with an off
         transistor's diffusion capacitance *)
      Stage.add_load b wire_top (Capacitance.junction_zero_bias tech ~w);
      let above = Stage.add_node b (Printf.sprintf "d%d" level) in
      Stage.add_edge b
        ~gate:(Printf.sprintf "s%d" level)
        (Device.nmos ~w tech) ~src:above ~snk:wire_top;
      build above (level + 1)
    end
  in
  let out = build first 1 in
  Stage.add_load b out load;
  Stage.mark_output b out;
  Stage.finish b

let find_node (stage : Stage.t) name =
  let rec search i =
    if i >= stage.Stage.num_nodes then raise Not_found
    else if String.equal stage.Stage.node_names.(i) name then i
    else search (i + 1)
  in
  search 0

let output_exn (stage : Stage.t) =
  match stage.Stage.outputs with
  | [ out ] -> out
  | _ -> invalid_arg "Builders.output_exn: stage does not have a unique output"
