(** Flat transistor netlists.

    Unlike a {!Stage}, whose inputs are abstract names, a netlist connects
    transistor gates to circuit nodes, so stage boundaries are implicit.
    {!Ccc} partitions a netlist into logic stages (channel-connected
    components), the structure static timing analysis operates on. *)

type node = int

type element = {
  device : Tqwm_device.Device.t;
  gate : node option;  (** gate net for transistors; [None] for wires *)
  src : node;  (** supply-side terminal *)
  snk : node;  (** ground-side terminal *)
}

type t = private {
  num_nodes : int;
  supply : node;
  ground : node;
  elements : element array;
  primary_inputs : node list;
  primary_outputs : node list;
  loads : float array;
  node_names : string array;
}

type builder

val create : unit -> builder

val supply : builder -> node

val ground : builder -> node

val add_node : builder -> string -> node

val add_transistor :
  builder -> Tqwm_device.Device.t -> gate:node -> src:node -> snk:node -> unit
(** @raise Invalid_argument when the device is a wire. *)

val add_wire : builder -> Tqwm_device.Device.t -> src:node -> snk:node -> unit

val add_load : builder -> node -> float -> unit

val mark_primary_input : builder -> node -> unit

val mark_primary_output : builder -> node -> unit

val finish : builder -> t

val node_name : t -> node -> string

val find_node : t -> string -> node
(** @raise Not_found. *)
