(** Channel-connected-component extraction.

    Partition a flat transistor netlist into logic stages: nodes connected
    through transistor channels or wires (excluding the rails) belong to
    one stage; gate terminals form the stage boundary (paper §I: "a logic
    stage is a set of channel-connected transistors and wire segments").
    Stage inputs are named after the driving net; the driver map records
    which component produces each net, giving the stage-level connectivity
    a static timing analyzer walks. *)

type instance = {
  component : int;  (** component id, dense from 0 *)
  stage : Stage.t;
  stage_node_of : Netlist.node -> Stage.node option;
      (** netlist node -> node inside this stage *)
  input_nets : (string * Netlist.node) list;
      (** stage input name -> driving netlist net *)
}

type extraction = {
  instances : instance array;
  component_of : Netlist.node -> int option;
      (** component containing (and hence driving) a non-rail netlist
          node; [None] for rails and primary-input nets *)
}

val extract : ?gate_load:(Tqwm_device.Device.t -> float) -> Netlist.t -> extraction
(** Partition the netlist. [gate_load] gives the input capacitance a
    fanout transistor presents to its driving net (default: none); it is
    added as load on the driving stage's node. Primary outputs and all
    gate-driving nets are marked as stage outputs.
    @raise Invalid_argument for an element with both terminals on rails. *)
