type instance = {
  component : int;
  stage : Stage.t;
  stage_node_of : Netlist.node -> Stage.node option;
  input_nets : (string * Netlist.node) list;
}

type extraction = {
  instances : instance array;
  component_of : Netlist.node -> int option;
}

(* union-find with path compression *)
let find parent n =
  let rec go n = if parent.(n) = n then n else go parent.(n) in
  let root = go n in
  let rec compress n =
    if parent.(n) <> root then begin
      let next = parent.(n) in
      parent.(n) <- root;
      compress next
    end
  in
  compress n;
  root

let union parent a b =
  let ra = find parent a and rb = find parent b in
  if ra <> rb then parent.(ra) <- rb

let extract ?(gate_load = fun _ -> 0.0) (net : Netlist.t) =
  let is_rail n = n = net.Netlist.supply || n = net.Netlist.ground in
  let parent = Array.init net.Netlist.num_nodes Fun.id in
  Array.iter
    (fun (e : Netlist.element) ->
      if is_rail e.src && is_rail e.snk then
        invalid_arg "Ccc.extract: element with both terminals on rails";
      if (not (is_rail e.src)) && not (is_rail e.snk) then union parent e.src e.snk)
    net.Netlist.elements;
  (* dense component ids over non-rail nodes that touch at least one element *)
  let touched = Array.make net.Netlist.num_nodes false in
  Array.iter
    (fun (e : Netlist.element) ->
      if not (is_rail e.src) then touched.(e.src) <- true;
      if not (is_rail e.snk) then touched.(e.snk) <- true)
    net.Netlist.elements;
  let component_id = Hashtbl.create 16 in
  let next = ref 0 in
  for n = 0 to net.Netlist.num_nodes - 1 do
    if touched.(n) && not (is_rail n) then begin
      let root = find parent n in
      if not (Hashtbl.mem component_id root) then begin
        Hashtbl.add component_id root !next;
        incr next
      end
    end
  done;
  let num_components = !next in
  let component_of_node n =
    if is_rail n || not touched.(n) then None
    else Hashtbl.find_opt component_id (find parent n)
  in
  let element_component (e : Netlist.element) =
    let anchor = if is_rail e.src then e.snk else e.src in
    match component_of_node anchor with
    | Some c -> c
    | None -> assert false
  in
  (* nets that drive gates, with the total gate load they carry *)
  let fanout_load = Array.make net.Netlist.num_nodes 0.0 in
  let drives_gate = Array.make net.Netlist.num_nodes false in
  Array.iter
    (fun (e : Netlist.element) ->
      match e.gate with
      | None -> ()
      | Some g ->
        drives_gate.(g) <- true;
        fanout_load.(g) <- fanout_load.(g) +. gate_load e.device)
    net.Netlist.elements;
  let build component =
    let b = Stage.create () in
    let mapping = Hashtbl.create 8 in
    let stage_node n =
      if n = net.Netlist.supply then Stage.supply b
      else if n = net.Netlist.ground then Stage.ground b
      else
        match Hashtbl.find_opt mapping n with
        | Some s -> s
        | None ->
          let s = Stage.add_node b (Netlist.node_name net n) in
          Hashtbl.add mapping n s;
          (* external load plus fanout gate capacitance *)
          let extra = net.Netlist.loads.(n) +. fanout_load.(n) in
          if extra > 0.0 then Stage.add_load b s extra;
          if drives_gate.(n) || List.mem n net.Netlist.primary_outputs then
            Stage.mark_output b s;
          s
    in
    let inputs = Hashtbl.create 8 in
    Array.iter
      (fun (e : Netlist.element) ->
        if element_component e = component then begin
          let gate =
            Option.map
              (fun g ->
                let name = Netlist.node_name net g in
                if not (Hashtbl.mem inputs name) then Hashtbl.add inputs name g;
                name)
              e.gate
          in
          Stage.add_edge b ?gate e.device ~src:(stage_node e.src) ~snk:(stage_node e.snk)
        end)
      net.Netlist.elements;
    {
      component;
      stage = Stage.finish b;
      stage_node_of = (fun n -> Hashtbl.find_opt mapping n);
      input_nets = Hashtbl.fold (fun name g acc -> (name, g) :: acc) inputs [];
    }
  in
  {
    instances = Array.init num_components build;
    component_of = component_of_node;
  }
