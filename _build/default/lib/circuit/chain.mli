(** Charge/discharge chains — the series path QWM solves (paper Fig. 6).

    A chain is an ordered run of edges from a rail (ground for a
    discharging pull-down path, VDD for a charging pull-up path) to the
    stage output. Node [0] is the rail; edge [k] (0-based index [k-1])
    connects node [k-1] to node [k]; node [K] is the output. Each internal
    node carries its total capacitance to ground (paper Eq. (1)). *)

type rail = Pull_down | Pull_up

type edge = {
  device : Tqwm_device.Device.t;
  gate : string option;  (** input name; [None] for wire/resistor edges *)
}

type t = private {
  rail : rail;
  edges : edge array;
  caps : float array;  (** [caps.(k)] is the capacitance of node [k+1] *)
}

val make : rail:rail -> edges:edge list -> caps:float list -> t
(** @raise Invalid_argument on length mismatch, empty chains, or
    non-positive capacitances. *)

val length : t -> int
(** Number of edges = index of the output node. *)

val output_node : t -> int

val transistor_positions : t -> int list
(** 1-based edge indices of transistor edges, ascending — the candidate
    critical points. *)

val is_transistor : edge -> bool

val pp : Format.formatter -> t -> unit
