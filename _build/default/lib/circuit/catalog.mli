(** Named scenario catalog used by the CLI and the benchmark harness.

    Recognized names: ["inv"], ["nand<k>"], ["nor<k>"], ["aoi21"],
    ["oai21"], ["stack<k>"] (uniform stack), ["manchester<bits>"],
    ["decoder<levels>"], and ["ckt<len>_<seed>"] (Table II random
    stacks). *)

val scenario : Tqwm_device.Tech.t -> string -> Scenario.t
(** @raise Not_found for an unrecognized name. *)

val examples : string list
(** A representative sample of valid names (for help messages). *)
