lib/sta/timing_graph.ml: Array List Queue Tqwm_circuit
