lib/sta/arrival.ml: Array Float List Option Printf Scenario String Timing_graph Tqwm_circuit Tqwm_core Tqwm_wave
