lib/sta/report.ml: Array Arrival Format List Scenario String Timing_graph Tqwm_circuit
