lib/sta/timing_graph.mli: Tqwm_circuit
