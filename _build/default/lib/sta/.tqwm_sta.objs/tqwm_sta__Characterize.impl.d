lib/sta/characterize.ml: Array Float Format Printf Scenario Tqwm_circuit Tqwm_core Tqwm_num
