lib/sta/characterize.mli: Format Tqwm_circuit Tqwm_core Tqwm_device Tqwm_num
