lib/sta/arrival.mli: Timing_graph Tqwm_core Tqwm_device
