lib/sta/report.mli: Arrival Format Timing_graph
