open Tqwm_circuit

let ps x = x *. 1e12

let print fmt graph analysis =
  Format.fprintf fmt "%-16s %12s %12s %12s %12s@\n" "stage" "arrival_in" "delay" "slew"
    "arrival_out";
  Array.iter
    (fun (t : Arrival.stage_timing) ->
      let name = (Timing_graph.scenario graph t.Arrival.id).Scenario.name in
      Format.fprintf fmt "%-16s %10.2fps %10.2fps %10.2fps %10.2fps@\n" name
        (ps t.Arrival.arrival_in) (ps t.Arrival.delay) (ps t.Arrival.slew)
        (ps t.Arrival.arrival_out))
    analysis.Arrival.timings;
  Format.fprintf fmt "critical path: %s@\n"
    (String.concat " -> "
       (List.map
          (fun id -> (Timing_graph.scenario graph id).Scenario.name)
          analysis.Arrival.critical_path));
  Format.fprintf fmt "worst arrival: %.2f ps@\n" (ps analysis.Arrival.worst_arrival)

let critical_path_string graph analysis =
  String.concat " -> "
    (List.map
       (fun id -> (Timing_graph.scenario graph id).Scenario.name)
       analysis.Arrival.critical_path)
