type stage_id = int

type connection = { from_stage : stage_id; to_stage : stage_id; input : string }

type t = {
  mutable stages : Tqwm_circuit.Scenario.t list;  (** reversed *)
  mutable count : int;
  mutable connections : connection list;
}

let create () = { stages = []; count = 0; connections = [] }

let add_stage t scenario =
  let id = t.count in
  t.count <- id + 1;
  t.stages <- scenario :: t.stages;
  id

let num_stages t = t.count

let scenario t id =
  if id < 0 || id >= t.count then invalid_arg "Timing_graph.scenario: unknown stage";
  List.nth t.stages (t.count - 1 - id)

let fanin t id = List.filter (fun c -> c.to_stage = id) t.connections

let fanout t id = List.filter (fun c -> c.from_stage = id) t.connections

let topological_order t =
  let indegree = Array.make t.count 0 in
  List.iter (fun c -> indegree.(c.to_stage) <- indegree.(c.to_stage) + 1) t.connections;
  let ready = Queue.create () in
  Array.iteri (fun id d -> if d = 0 then Queue.add id ready) indegree;
  let rec drain acc =
    if Queue.is_empty ready then List.rev acc
    else begin
      let id = Queue.pop ready in
      List.iter
        (fun c ->
          if c.from_stage = id then begin
            indegree.(c.to_stage) <- indegree.(c.to_stage) - 1;
            if indegree.(c.to_stage) = 0 then Queue.add c.to_stage ready
          end)
        t.connections;
      drain (id :: acc)
    end
  in
  let order = drain [] in
  if List.length order <> t.count then
    invalid_arg "Timing_graph.topological_order: cycle detected";
  order

let connect t ~from_stage ~to_stage ~input =
  if from_stage < 0 || from_stage >= t.count || to_stage < 0 || to_stage >= t.count then
    invalid_arg "Timing_graph.connect: unknown stage";
  let target = scenario t to_stage in
  if not (List.mem_assoc input target.Tqwm_circuit.Scenario.sources) then
    invalid_arg "Timing_graph.connect: unknown input";
  let edge = { from_stage; to_stage; input } in
  t.connections <- edge :: t.connections;
  match topological_order t with
  | (_ : stage_id list) -> ()
  | exception Invalid_argument _ ->
    t.connections <- List.filter (fun c -> c <> edge) t.connections;
    invalid_arg "Timing_graph.connect: cycle detected"
