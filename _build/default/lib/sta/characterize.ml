module Mat = Tqwm_num.Mat
module Interp = Tqwm_num.Interp
open Tqwm_circuit

type table = {
  slews : float array;
  loads : float array;
  delay : Mat.t;
  output_slew : Mat.t;
}

let default_slews = [| 5e-12; 20e-12; 50e-12; 120e-12 |]

let default_loads = [| 2e-15; 5e-15; 10e-15; 25e-15; 60e-15 |]

let characterize ~model ?(config = Tqwm_core.Config.default)
    ?(slews = default_slews) ?(loads = default_loads) make =
  let ns = Array.length slews and nl = Array.length loads in
  if ns < 2 || nl < 2 then invalid_arg "Characterize: need at least 2x2 grid";
  let delay = Mat.create ns nl and output_slew = Mat.create ns nl in
  for i = 0 to ns - 1 do
    for j = 0 to nl - 1 do
      let scenario =
        Scenario.with_ramp_input ~rise_time:slews.(i) (make ~load:loads.(j))
      in
      let report = Tqwm_core.Qwm.run ~model ~config scenario in
      (* stage delay is referenced to the ramp's own 50% crossing *)
      (match report.Tqwm_core.Qwm.delay with
      | Some d -> Mat.set delay i j (Float.max (d -. (slews.(i) /. 2.0)) 0.0)
      | None ->
        failwith
          (Printf.sprintf "Characterize: no 50%% crossing at slew %.3g, load %.3g"
             slews.(i) loads.(j)));
      match report.Tqwm_core.Qwm.slew with
      | Some s -> Mat.set output_slew i j s
      | None -> failwith "Characterize: output slew unavailable"
    done
  done;
  { slews; loads; delay; output_slew }

let delay_at table ~slew ~load =
  Interp.table_lookup ~xs:table.slews ~ys:table.loads table.delay slew load

let slew_at table ~slew ~load =
  Interp.table_lookup ~xs:table.slews ~ys:table.loads table.output_slew slew load

let pp fmt table =
  let ps x = x *. 1e12 in
  Format.fprintf fmt "%12s" "slew\\load";
  Array.iter (fun l -> Format.fprintf fmt " %8.1ffF" (l *. 1e15)) table.loads;
  Format.fprintf fmt "@\n";
  Array.iteri
    (fun i s ->
      Format.fprintf fmt "%10.1fps" (ps s);
      Array.iteri
        (fun j _ -> Format.fprintf fmt " %8.2fps" (ps (Mat.get table.delay i j)))
        table.loads;
      Format.fprintf fmt "@\n")
    table.slews
