(** NLDM-style cell characterization with QWM as the evaluation engine.

    The paper's motivating use case: cells whose outputs do not land on
    gate inputs cannot be pre-characterized once and for all — the stage
    must be evaluated on the fly, so the evaluator must be fast. This
    module sweeps a stage's worst-case scenario over an (input slew x
    output load) grid and builds the delay and output-slew lookup tables
    a library flow consumes, with bilinear interpolated queries. *)

type table = {
  slews : float array;  (** input-slew breakpoints, seconds, ascending *)
  loads : float array;  (** load breakpoints, farads, ascending *)
  delay : Tqwm_num.Mat.t;  (** [delay.(slew_index).(load_index)] *)
  output_slew : Tqwm_num.Mat.t;
}

val default_slews : float array
(** 5, 20, 50, 120 ps. *)

val default_loads : float array
(** 2, 5, 10, 25, 60 fF. *)

val characterize :
  model:Tqwm_device.Device_model.t ->
  ?config:Tqwm_core.Config.t ->
  ?slews:float array ->
  ?loads:float array ->
  (load:float -> Tqwm_circuit.Scenario.t) ->
  table
(** [characterize ~model make] runs QWM at every grid point; [make ~load]
    builds the scenario at a given output load (e.g.
    [fun ~load -> Scenario.nand_falling ~n:3 ~load tech]), and the input
    slew is applied with {!Tqwm_circuit.Scenario.with_ramp_input}.
    @raise Failure when a grid point's output never crosses 50 %. *)

val delay_at : table -> slew:float -> load:float -> float
(** Bilinear interpolated delay; clamped extrapolation outside the grid. *)

val slew_at : table -> slew:float -> load:float -> float

val pp : Format.formatter -> table -> unit
(** Render as a liberty-flavoured text table. *)
