(** Stage-level timing graphs.

    Vertices are switching scenarios (a logic stage with its worst-case
    input configuration); a directed edge records that the source stage's
    output drives one named input of the target stage. Static timing
    analysis propagates arrival times and slews topologically through
    this graph, evaluating each stage with QWM. *)

type stage_id = int

type connection = {
  from_stage : stage_id;
  to_stage : stage_id;
  input : string;  (** which input of [to_stage] the source output drives *)
}

type t

val create : unit -> t

val add_stage : t -> Tqwm_circuit.Scenario.t -> stage_id

val connect : t -> from_stage:stage_id -> to_stage:stage_id -> input:string -> unit
(** @raise Invalid_argument on unknown stages, an unknown input name, or
    when the edge would create a combinational cycle. *)

val num_stages : t -> int

val scenario : t -> stage_id -> Tqwm_circuit.Scenario.t

val fanin : t -> stage_id -> connection list

val fanout : t -> stage_id -> connection list

val topological_order : t -> stage_id list
(** Primary-input stages first. *)
