(** Human-readable timing reports. *)

val print : Format.formatter -> Timing_graph.t -> Arrival.analysis -> unit
(** Per-stage table (arrival, delay, slew) followed by the critical path
    and the worst arrival time. *)

val critical_path_string : Timing_graph.t -> Arrival.analysis -> string
(** "stageA -> stageB -> ..." *)
