lib/interconnect/awe.ml: Array Float Rc_tree Tqwm_num
