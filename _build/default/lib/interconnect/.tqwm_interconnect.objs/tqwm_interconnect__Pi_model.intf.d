lib/interconnect/pi_model.mli: Rc_tree Tqwm_device
