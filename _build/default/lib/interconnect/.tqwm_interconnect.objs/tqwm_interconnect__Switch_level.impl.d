lib/interconnect/switch_level.ml: Array Chain Rc_tree Tqwm_circuit Tqwm_device
