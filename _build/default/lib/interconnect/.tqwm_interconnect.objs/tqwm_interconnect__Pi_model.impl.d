lib/interconnect/pi_model.ml: Float Rc_tree Tqwm_device
