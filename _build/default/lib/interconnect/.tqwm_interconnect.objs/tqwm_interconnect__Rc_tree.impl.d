lib/interconnect/rc_tree.ml: Array List
