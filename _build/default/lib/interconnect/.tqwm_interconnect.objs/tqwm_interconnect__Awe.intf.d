lib/interconnect/awe.mli: Rc_tree
