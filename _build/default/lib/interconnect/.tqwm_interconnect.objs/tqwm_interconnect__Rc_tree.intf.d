lib/interconnect/rc_tree.mli:
