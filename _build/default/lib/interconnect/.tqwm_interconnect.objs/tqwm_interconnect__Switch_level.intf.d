lib/interconnect/switch_level.mli: Chain Rc_tree Tqwm_circuit Tqwm_device
