(** O'Brien–Savarino pi-model reduction.

    Reduce a distributed RC load to a 3-element pi (near capacitance,
    resistance, far capacitance) matching the first three moments of the
    driving-point admittance. The paper builds exactly such "macro pi
    models" for the decoder-tree wires before running QWM. *)

type t = {
  c_near : float;  (** capacitance at the driven end *)
  r : float;
  c_far : float;  (** capacitance at the far end *)
}

val of_admittance_moments : y1:float -> y2:float -> y3:float -> t
(** [c_far = y2^2 / y3], [r = -(y3^2) / y2^3], [c_near = y1 - c_far].
    @raise Invalid_argument on degenerate moments (e.g. zero [y3]). *)

val of_tree : Rc_tree.t -> t

val of_wire : Tqwm_device.Tech.t -> w:float -> l:float -> segments:int -> t
(** Pi reduction of a uniform wire discretized as an RC ladder. *)

val total_cap : t -> float
