open Tqwm_circuit
module Device = Tqwm_device.Device
module Mosfet = Tqwm_device.Mosfet
module Capacitance = Tqwm_device.Capacitance

let effective_resistance (tech : Tqwm_device.Tech.t) (device : Device.t) =
  match device.Device.kind with
  | Device.Wire -> Capacitance.wire_resistance tech ~w:device.w ~l:device.l
  | Device.Nmos ->
    let idsat =
      Mosfet.ids tech Mosfet.N ~w:device.w ~l:device.l ~vg:tech.vdd ~vd:tech.vdd ~vs:0.0
    in
    if idsat <= 0.0 then invalid_arg "Switch_level: non-conducting device";
    tech.vdd /. (2.0 *. idsat)
  | Device.Pmos ->
    let idsat =
      Mosfet.ids tech Mosfet.P ~w:device.w ~l:device.l ~vg:0.0 ~vd:0.0 ~vs:tech.vdd
    in
    if idsat <= 0.0 then invalid_arg "Switch_level: non-conducting device";
    tech.vdd /. (2.0 *. idsat)

let chain_rc tech (chain : Chain.t) =
  let k = Chain.length chain in
  let parent = Array.init (k + 1) (fun i -> i - 1) in
  let resistance =
    Array.init (k + 1) (fun i ->
        if i = 0 then 0.0
        else effective_resistance tech chain.Chain.edges.(i - 1).Chain.device)
  in
  let cap = Array.init (k + 1) (fun i -> if i = 0 then 0.0 else chain.Chain.caps.(i - 1)) in
  Rc_tree.make ~parent ~resistance ~cap

let elmore_delay tech chain =
  let rc = chain_rc tech chain in
  Rc_tree.elmore rc (Chain.length chain)

let delay_estimate tech chain = log 2.0 *. elmore_delay tech chain
