type t = { parent : int array; resistance : float array; cap : float array }

let make ~parent ~resistance ~cap =
  let n = Array.length parent in
  if Array.length resistance <> n || Array.length cap <> n then
    invalid_arg "Rc_tree.make: length mismatch";
  if n = 0 then invalid_arg "Rc_tree.make: empty tree";
  if parent.(0) <> -1 then invalid_arg "Rc_tree.make: node 0 must be the root";
  Array.iteri
    (fun i p ->
      if i > 0 && (p < 0 || p >= i) then
        (* parents must precede children: guarantees acyclicity *)
        invalid_arg "Rc_tree.make: parents must precede children")
    parent;
  Array.iter (fun r -> if r < 0.0 then invalid_arg "Rc_tree.make: negative R") resistance;
  Array.iter (fun c -> if c < 0.0 then invalid_arg "Rc_tree.make: negative C") cap;
  { parent; resistance; cap }

let num_nodes t = Array.length t.parent

let of_ladder ~r_total ~c_total ~segments =
  if segments < 1 then invalid_arg "Rc_tree.of_ladder: segments < 1";
  if r_total < 0.0 || c_total <= 0.0 then invalid_arg "Rc_tree.of_ladder: bad R/C";
  let n = segments + 1 in
  let r_seg = r_total /. float_of_int segments in
  let c_seg = c_total /. float_of_int segments in
  make
    ~parent:(Array.init n (fun i -> i - 1))
    ~resistance:(Array.init n (fun i -> if i = 0 then 0.0 else r_seg))
    ~cap:
      (Array.init n (fun i ->
           if i = 0 then c_seg /. 2.0
           else if i = segments then c_seg /. 2.0
           else c_seg))

let downstream_caps t =
  let n = num_nodes t in
  let acc = Array.copy t.cap in
  (* children have larger indices, so one reverse sweep suffices *)
  for i = n - 1 downto 1 do
    acc.(t.parent.(i)) <- acc.(t.parent.(i)) +. acc.(i)
  done;
  acc

let path_to_root t node =
  let rec go acc n = if n < 0 then acc else go (n :: acc) t.parent.(n) in
  go [] node

let shared_resistance t a b =
  let on_path_a = Array.make (num_nodes t) false in
  List.iter (fun n -> on_path_a.(n) <- true) (path_to_root t a);
  List.fold_left
    (fun acc n -> if n > 0 && on_path_a.(n) then acc +. t.resistance.(n) else acc)
    0.0 (path_to_root t b)

let elmore t node =
  let n = num_nodes t in
  let acc = ref 0.0 in
  for k = 0 to n - 1 do
    acc := !acc +. (shared_resistance t node k *. t.cap.(k))
  done;
  !acc

let moments t ~order =
  if order < 0 then invalid_arg "Rc_tree.moments: negative order";
  let n = num_nodes t in
  let m = Array.make_matrix (order + 1) n 0.0 in
  Array.fill m.(0) 0 n 1.0;
  for j = 1 to order do
    for node = 0 to n - 1 do
      let acc = ref 0.0 in
      for k = 0 to n - 1 do
        acc := !acc +. (shared_resistance t node k *. t.cap.(k) *. m.(j - 1).(k))
      done;
      m.(j).(node) <- -. !acc
    done
  done;
  m

let admittance_moments t =
  let m = moments t ~order:2 in
  let n = num_nodes t in
  let y1 = ref 0.0 and y2 = ref 0.0 and y3 = ref 0.0 in
  for k = 0 to n - 1 do
    y1 := !y1 +. t.cap.(k);
    y2 := !y2 +. (t.cap.(k) *. m.(1).(k));
    y3 := !y3 +. (t.cap.(k) *. m.(2).(k))
  done;
  (!y1, !y2, !y3)

let total_cap t = Array.fold_left ( +. ) 0.0 t.cap

let total_resistance_to t node =
  List.fold_left
    (fun acc n -> if n > 0 then acc +. t.resistance.(n) else acc)
    0.0 (path_to_root t node)
