type t = { c_near : float; r : float; c_far : float }

let of_admittance_moments ~y1 ~y2 ~y3 =
  if y3 = 0.0 || y2 = 0.0 then invalid_arg "Pi_model: degenerate admittance moments";
  let c_far = y2 *. y2 /. y3 in
  let r = -.(y3 *. y3) /. (y2 *. y2 *. y2) in
  let c_near = y1 -. c_far in
  if c_far <= 0.0 || r < 0.0 then invalid_arg "Pi_model: non-realizable reduction";
  { c_near = Float.max c_near 0.0; r; c_far }

let of_tree tree =
  let y1, y2, y3 = Rc_tree.admittance_moments tree in
  of_admittance_moments ~y1 ~y2 ~y3

let of_wire tech ~w ~l ~segments =
  let r_total = Tqwm_device.Capacitance.wire_resistance tech ~w ~l in
  let c_total = Tqwm_device.Capacitance.wire_total tech ~w ~l in
  of_tree (Rc_tree.of_ladder ~r_total ~c_total ~segments)

let total_cap t = t.c_near +. t.c_far
