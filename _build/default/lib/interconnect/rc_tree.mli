(** RC trees: the linear-interconnect substrate (Elmore delay and circuit
    moments, the inputs to AWE and the pi-model reduction). *)

type t = {
  parent : int array;  (** parent node index; -1 for the root (the driver) *)
  resistance : float array;  (** resistance from parent to node; unused at root *)
  cap : float array;  (** grounded capacitance at each node *)
}

val make : parent:int array -> resistance:float array -> cap:float array -> t
(** @raise Invalid_argument on length mismatch, cycles, bad parents, or
    negative element values. Node 0 must be the root. *)

val num_nodes : t -> int

val of_ladder : r_total:float -> c_total:float -> segments:int -> t
(** Uniform RC ladder discretizing a distributed wire: [segments] sections
    of R/n and C/n (node 0 is the driven end; capacitance is split per
    section at the far node of each section). *)

val downstream_caps : t -> float array
(** Total capacitance in the subtree rooted at each node. *)

val shared_resistance : t -> int -> int -> float
(** Resistance of the common path from the root to the two nodes' paths —
    the kernel of the Elmore/moment formulas. *)

val elmore : t -> int -> float
(** Elmore delay from the root to a node:
    [sum_k R_shared(node, k) * C_k]. *)

val moments : t -> order:int -> float array array
(** [moments tree ~order] returns [m] with [m.(j).(k)] the j-th circuit
    moment of the voltage transfer to node [k] ([m.(0)] all ones,
    [m.(1).(k) = -elmore k], ...). Computed by the standard recursive
    path-tracing recurrence. *)

val admittance_moments : t -> float * float * float
(** First three moments (y1, y2, y3) of the driving-point admittance seen
    from the root: [Y(s) = y1 s + y2 s^2 + y3 s^3 + ...]. *)

val total_cap : t -> float

val total_resistance_to : t -> int -> float
(** Sum of resistances on the root-to-node path. *)
