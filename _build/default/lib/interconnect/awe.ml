type two_pole = { poles : float * float; residues : float * float }

exception Unstable

(* exact or near single-pole response: p = 1/m1 for H = 1/(1 - m1 s) *)
let single_pole m1 =
  if m1 >= 0.0 then raise Unstable;
  let p = 1.0 /. m1 in
  { poles = (p, p *. 1e6); residues = (-1.0, 0.0) }

(* H(s) = (a0 + a1 s)/(1 + b1 s + b2 s^2) with a0 = 1 (unit DC gain).
   Matching the series H(s) = 1 + m1 s + m2 s^2 + m3 s^3 + ... gives
     s^2:  m2 + b1 m1 + b2 = 0
     s^3:  m3 + b1 m2 + b2 m1 = 0
   so b1 = (m3 - m1 m2) / (m1^2 - m2), b2 = (m2^2 - m1 m3) / (m1^2 - m2),
   and a1 = m1 + b1. *)
let fit ~m1 ~m2 ~m3 =
  let det = (m1 *. m1) -. m2 in
  let scale = (m1 *. m1) +. Float.abs m2 in
  if Float.abs det <= 1e-9 *. scale then single_pole m1
  else begin
    let b1 = (m3 -. (m1 *. m2)) /. det in
    let b2 = ((m2 *. m2) -. (m1 *. m3)) /. det in
    if Float.abs b2 <= 1e-12 *. b1 *. b1 then single_pole m1
    else begin
      let a1 = m1 +. b1 in
      (* poles: roots of b2 s^2 + b1 s + 1 = 0 *)
      match Tqwm_num.Quad.roots ~a:b2 ~b:b1 ~c:1.0 with
      | [ p1; p2 ] when p1 < 0.0 && p2 < 0.0 ->
        (* residues of H(s)/s = 1/s + k1/(s-p1) + k2/(s-p2) *)
        let k1 = (1.0 +. (a1 *. p1)) /. (b2 *. p1 *. (p1 -. p2)) in
        let k2 = (1.0 +. (a1 *. p2)) /. (b2 *. p2 *. (p2 -. p1)) in
        { poles = (p1, p2); residues = (k1, k2) }
      | [ _; _ ] | [ _ ] | [] -> raise Unstable
      | _ :: _ :: _ :: _ -> assert false
    end
  end

let of_tree tree ~node =
  let m = Rc_tree.moments tree ~order:3 in
  fit ~m1:m.(1).(node) ~m2:m.(2).(node) ~m3:m.(3).(node)

let step_response { poles = p1, p2; residues = k1, k2 } t =
  if t < 0.0 then 0.0
  else 1.0 +. (k1 *. exp (p1 *. t)) +. (k2 *. exp (p2 *. t))

let dominant_time_constant { poles = p1, p2; _ } = -1.0 /. Float.max p1 p2

let delay_to tp ~level =
  if level <= 0.0 || level >= 1.0 then invalid_arg "Awe.delay_to: level out of (0,1)";
  let tau = dominant_time_constant tp in
  (* bracket the crossing, then bisect *)
  let rec grow hi n =
    if n = 0 then hi
    else if step_response tp hi >= level then hi
    else grow (2.0 *. hi) (n - 1)
  in
  let hi = grow tau 60 in
  let rec bisect lo hi n =
    if n = 0 then (lo +. hi) /. 2.0
    else begin
      let mid = (lo +. hi) /. 2.0 in
      if step_response tp mid >= level then bisect lo mid (n - 1)
      else bisect mid hi (n - 1)
    end
  in
  bisect 0.0 hi 80
