(** Switch-level timing baseline (Crystal / IRSIM methodology): model each
    conducting transistor as a resistor, reduce the stage to an RC tree
    and report the Elmore delay. Fast and crude — the related-work
    baseline QWM is positioned against. *)

open Tqwm_circuit

val effective_resistance : Tqwm_device.Tech.t -> Tqwm_device.Device.t -> float
(** Switched-resistor value for a transistor: VDD / (2 * Idsat) at full
    gate drive; wire segments use their physical resistance.
    @raise Invalid_argument for non-conducting geometry. *)

val chain_rc : Tqwm_device.Tech.t -> Chain.t -> Rc_tree.t
(** RC ladder of a charge/discharge chain: node 0 is the rail; chain node
    k keeps its capacitance and gets the effective resistance of edge k. *)

val elmore_delay : Tqwm_device.Tech.t -> Chain.t -> float
(** Elmore delay from the rail to the chain output. *)

val delay_estimate : Tqwm_device.Tech.t -> Chain.t -> float
(** 50 % switch-level delay estimate: [ln 2] times the Elmore delay (the
    single-pole approximation). *)
