(** Asymptotic waveform evaluation: two-pole Padé approximation of an RC
    transfer function from its first three circuit moments (Pillage &
    Rohrer). Used to evaluate wire responses and to sanity-check the
    pi-model reduction (the paper builds its wire macromodels "using the
    AWE approach"). *)

type two_pole = {
  poles : float * float;  (** both negative for a stable RC fit *)
  residues : float * float;  (** step-response residues *)
}

exception Unstable
(** Raised when the fitted poles are not negative real (moment data not
    RC-realizable at this order). *)

val fit : m1:float -> m2:float -> m3:float -> two_pole
(** Fit [H(s) = (a0 + a1 s) / (1 + b1 s + b2 s^2)] matching moments
    1, m1, m2, m3, then factor into poles/residues. *)

val of_tree : Rc_tree.t -> node:int -> two_pole
(** Fit the transfer to one node of an RC tree. *)

val step_response : two_pole -> float -> float
(** Unit-step response at time [t >= 0]:
    [1 + k1 e^(p1 t) + k2 e^(p2 t)]. *)

val delay_to : two_pole -> level:float -> float
(** First time the step response crosses [level] in (0, 1), by bisection.
    @raise Invalid_argument for levels outside (0, 1). *)

val dominant_time_constant : two_pole -> float
(** [-1 / max(p1, p2)], the slowest time constant. *)
