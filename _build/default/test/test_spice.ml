(* Tests for the SPICE-like reference engine: MNA stamping, DC operating
   points and the transient integrator against analytic solutions. *)

open Tqwm_device
open Tqwm_circuit
module Transient = Tqwm_spice.Transient
module Engine = Tqwm_spice.Engine
module Dc = Tqwm_spice.Dc
module Waveform = Tqwm_wave.Waveform

let tech = Tech.cmosp35

let golden = Models.golden tech

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* A linear RC scenario: one wire from a precharged node to ground. The
   transient must follow v(t) = v0 exp(-t / RC) exactly (up to the
   integration error), giving an analytic oracle for the engine. *)
let rc_scenario ?(load = 20e-15) () =
  let b = Stage.create () in
  let n = Stage.add_node b "n" in
  let wire = Device.wire ~w:1e-6 ~l:200e-6 in
  Stage.add_edge b wire ~src:n ~snk:(Stage.ground b);
  Stage.add_load b n load;
  Stage.mark_output b n;
  let stage = Stage.finish b in
  ignore load;
  let r = Capacitance.wire_resistance tech ~w:1e-6 ~l:200e-6 in
  let c = Stage.node_capacitance golden stage n ~v:0.0 in
  let tau = r *. c in
  let scenario =
    {
      Scenario.name = "rc";
      tech;
      stage;
      sources = [];
      output = n;
      output_edge = Tqwm_wave.Measure.Falling;
      rail = Chain.Pull_down;
      t_end = 5.0 *. tau;
      initial =
        Array.init stage.Stage.num_nodes (fun i ->
            if i = stage.Stage.supply then tech.Tech.vdd
            else if i = stage.Stage.ground then 0.0
            else tech.Tech.vdd);
    }
  in
  (scenario, tau)

let test_rc_discharge_matches_exponential () =
  let scenario, tau = rc_scenario () in
  let config = { Transient.default_config with Transient.dt = tau /. 500.0 } in
  let result = Transient.simulate ~model:golden ~config scenario in
  let w = Transient.node_waveform result scenario.Scenario.output in
  List.iter
    (fun frac ->
      let t = frac *. tau in
      check_close ~eps:5e-3 "exponential decay"
        (tech.Tech.vdd *. exp (-.frac))
        (Waveform.value_at w t))
    [ 0.5; 1.0; 2.0; 3.0 ]

let test_trapezoidal_more_accurate_than_be () =
  let scenario, tau = rc_scenario () in
  let run integration =
    let config =
      { Transient.default_config with Transient.dt = tau /. 20.0; integration }
    in
    let result = Transient.simulate ~model:golden ~config scenario in
    let w = Transient.node_waveform result scenario.Scenario.output in
    Float.abs (Waveform.value_at w tau -. (tech.Tech.vdd *. exp (-1.0)))
  in
  let err_be = run Transient.Backward_euler in
  let err_trap = run Transient.Trapezoidal in
  Alcotest.(check bool) "trapezoidal beats backward Euler" true (err_trap < err_be)

let test_inverter_full_swing () =
  let scenario = Scenario.inverter_falling tech in
  let report = Engine.run ~model:golden scenario in
  let lo, hi = Tqwm_wave.Measure.swing report.Engine.output in
  check_close ~eps:1e-2 "discharges to 0" 0.0 lo;
  check_close ~eps:1e-6 "starts at vdd" tech.Tech.vdd hi;
  Alcotest.(check bool) "delay measured" true (report.Engine.delay <> None);
  Alcotest.(check bool) "converged" true
    report.Engine.result.Transient.stats.Transient.converged

let test_nor_rises_to_vdd () =
  let report = Engine.run ~model:golden (Scenario.nor_rising ~n:2 tech) in
  let _, hi = Tqwm_wave.Measure.swing report.Engine.output in
  check_close ~eps:1e-2 "charges to vdd" tech.Tech.vdd hi

let test_step_sizes_agree () =
  let scenario = Scenario.nand_falling ~n:3 tech in
  let run dt =
    let config = { Transient.default_config with Transient.dt } in
    (Engine.run ~model:golden ~config scenario).Engine.delay
  in
  match (run 1e-12, run 10e-12) with
  | Some d1, Some d10 ->
    Alcotest.(check bool) "within 5%" true (Float.abs (d10 -. d1) /. d1 < 0.05)
  | _ -> Alcotest.fail "delays expected"

let test_solvers_agree () =
  let scenario = Scenario.nand_falling ~n:2 tech in
  let run solver max_iterations =
    let config = { Transient.default_config with Transient.solver; max_iterations } in
    (Engine.run ~model:golden ~config scenario).Engine.delay
  in
  match (run Transient.Newton_raphson 50, run Transient.Successive_chord 400) with
  | Some nr, Some sc ->
    Alcotest.(check bool) "NR and successive-chord agree" true
      (Float.abs (sc -. nr) /. nr < 0.02)
  | _ -> Alcotest.fail "delays expected"

let test_voltage_dependent_caps_slower () =
  (* junction caps grow at low reverse bias: discharging gets a larger
     effective load, so the voltage-dependent run must be slower *)
  let scenario = Scenario.nand_falling ~n:2 tech in
  let run voltage_dependent_caps =
    let config = { Transient.default_config with Transient.voltage_dependent_caps } in
    (Engine.run ~model:golden ~config scenario).Engine.delay
  in
  match (run false, run true) with
  | Some fixed, Some varying ->
    Alcotest.(check bool) "voltage-dependent caps increase delay" true (varying > fixed)
  | _ -> Alcotest.fail "delays expected"

let test_record_currents () =
  let scenario = Scenario.inverter_falling tech in
  let config = { Transient.default_config with Transient.record_currents = true } in
  let result = Transient.simulate ~model:golden ~config scenario in
  let w = Transient.edge_current_waveform result 0 in
  let _, peak = Tqwm_wave.Measure.swing w in
  Alcotest.(check bool) "nmos discharge current flows" true (peak > 1e-5);
  let no_currents = Transient.simulate ~model:golden ~config:Transient.default_config scenario in
  Alcotest.check_raises "currents not recorded"
    (Invalid_argument "Transient.edge_current_waveform: currents not recorded")
    (fun () -> ignore (Transient.edge_current_waveform no_currents 0))

let test_stack_cascade_order () =
  (* nodes closer to ground discharge earlier: x1 hits 50% before out *)
  let scenario = Scenario.stack_falling ~widths:(Array.make 4 1.6e-6) tech in
  let result = Transient.simulate ~model:golden ~config:Transient.default_config scenario in
  let crossing name =
    let node = Builders.find_node scenario.Scenario.stage name in
    Waveform.first_crossing
      (Transient.node_waveform result node)
      ~level:(tech.Tech.vdd /. 2.0) ~direction:`Falling
  in
  match (crossing "x1", crossing "out") with
  | Some t1, Some t_out -> Alcotest.(check bool) "bottom first" true (t1 < t_out)
  | _ -> Alcotest.fail "crossings expected"

let test_adaptive_matches_fixed () =
  let scenario = Scenario.stack_falling ~widths:(Array.make 5 1.6e-6) tech in
  let fixed = Engine.run ~model:golden scenario in
  let adaptive = Engine.run ~model:golden ~config:(Transient.adaptive_config ()) scenario in
  (match (fixed.Engine.delay, adaptive.Engine.delay) with
  | Some a, Some b ->
    Alcotest.(check bool) "delays agree within 2%" true (Float.abs (b -. a) /. a < 0.02)
  | _ -> Alcotest.fail "delays expected");
  let s = adaptive.Engine.result.Transient.stats in
  Alcotest.(check bool) "fewer steps than fixed 1ps" true
    (s.Transient.steps < fixed.Engine.result.Transient.stats.Transient.steps);
  Alcotest.(check bool) "converged" true s.Transient.converged

let test_adaptive_tolerance_controls_steps () =
  let scenario = Scenario.nand_falling ~n:2 tech in
  let steps lte_tolerance =
    let config = Transient.adaptive_config ~lte_tolerance () in
    (Transient.simulate ~model:golden ~config scenario).Transient.stats.Transient.steps
  in
  Alcotest.(check bool) "tighter tolerance, more steps" true (steps 0.2e-3 > steps 5e-3)

let test_adaptive_times_monotone () =
  let scenario = Scenario.inverter_falling tech in
  let result =
    Transient.simulate ~model:golden ~config:(Transient.adaptive_config ()) scenario
  in
  let ok = ref true in
  for i = 1 to Array.length result.Transient.times - 1 do
    if result.Transient.times.(i) <= result.Transient.times.(i - 1) then ok := false
  done;
  Alcotest.(check bool) "strictly increasing sample times" true !ok;
  let last = result.Transient.times.(Array.length result.Transient.times - 1) in
  Alcotest.(check bool) "covers the window" true
    (last >= scenario.Scenario.t_end -. 1e-15)

let test_dc_nand_all_on () =
  let scenario = Scenario.nand_falling ~n:3 tech in
  let dc = Dc.solve ~model:golden scenario in
  Alcotest.(check bool) "converged" true dc.Dc.converged;
  (* with all NMOS on and PMOS off, every internal node settles to 0 *)
  List.iter
    (fun node ->
      check_close ~eps:1e-3 "node discharged" 0.0 dc.Dc.voltages.(node))
    (Stage.internal_nodes scenario.Scenario.stage)

let test_dc_inverter_input_low () =
  (* input low at time 0-: output held at vdd by the PMOS *)
  let scenario = Scenario.inverter_falling tech in
  let dc = Dc.solve ~model:golden ~time:(-1.0) scenario in
  Alcotest.(check bool) "converged" true dc.Dc.converged;
  check_close ~eps:1e-3 "output at vdd" tech.Tech.vdd
    dc.Dc.voltages.(scenario.Scenario.output)

let test_simulate_validation () =
  let scenario = Scenario.inverter_falling tech in
  Alcotest.check_raises "dt" (Invalid_argument "Transient.simulate: dt <= 0") (fun () ->
      ignore
        (Transient.simulate ~model:golden
           ~config:{ Transient.default_config with Transient.dt = 0.0 }
           scenario))

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "tqwm_spice"
    [
      ( "linear oracle",
        [
          quick "RC discharge" test_rc_discharge_matches_exponential;
          quick "trapezoidal accuracy" test_trapezoidal_more_accurate_than_be;
        ] );
      ( "transient",
        [
          quick "inverter full swing" test_inverter_full_swing;
          quick "nor rises" test_nor_rises_to_vdd;
          slow "step sizes agree" test_step_sizes_agree;
          slow "solvers agree" test_solvers_agree;
          quick "voltage-dependent caps" test_voltage_dependent_caps_slower;
          quick "record currents" test_record_currents;
          quick "cascade order" test_stack_cascade_order;
        ] );
      ( "adaptive",
        [
          slow "matches fixed" test_adaptive_matches_fixed;
          quick "tolerance controls steps" test_adaptive_tolerance_controls_steps;
          quick "times monotone" test_adaptive_times_monotone;
        ] );
      ( "dc",
        [
          quick "nand all on" test_dc_nand_all_on;
          quick "inverter input low" test_dc_inverter_input_low;
        ] );
      ("validation", [ quick "simulate" test_simulate_validation ]);
    ]
