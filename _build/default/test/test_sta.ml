(* Tests for the static-timing-analysis layer. *)

open Tqwm_device
open Tqwm_circuit
module Timing_graph = Tqwm_sta.Timing_graph
module Arrival = Tqwm_sta.Arrival
module Report = Tqwm_sta.Report

let tech = Tech.cmosp35

let table = lazy (Models.table tech)

let inverter_pair () =
  let graph = Timing_graph.create () in
  let a = Timing_graph.add_stage graph (Scenario.inverter_falling ~load:8e-15 tech) in
  let b = Timing_graph.add_stage graph (Scenario.nor_rising ~n:2 ~load:8e-15 tech) in
  Timing_graph.connect graph ~from_stage:a ~to_stage:b ~input:"a1";
  (graph, a, b)

let test_topological_order () =
  let graph, a, b = inverter_pair () in
  Alcotest.(check (list int)) "driver first" [ a; b ] (Timing_graph.topological_order graph)

let test_connect_validation () =
  let graph = Timing_graph.create () in
  let a = Timing_graph.add_stage graph (Scenario.inverter_falling tech) in
  Alcotest.check_raises "unknown input"
    (Invalid_argument "Timing_graph.connect: unknown input") (fun () ->
      Timing_graph.connect graph ~from_stage:a ~to_stage:a ~input:"nope");
  Alcotest.check_raises "self cycle"
    (Invalid_argument "Timing_graph.connect: cycle detected") (fun () ->
      Timing_graph.connect graph ~from_stage:a ~to_stage:a ~input:"a1")

let test_cycle_rejected () =
  let graph, a, b = inverter_pair () in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Timing_graph.connect: cycle detected") (fun () ->
      Timing_graph.connect graph ~from_stage:b ~to_stage:a ~input:"a1")

let test_fan_queries () =
  let graph, a, b = inverter_pair () in
  Alcotest.(check int) "fanout of a" 1 (List.length (Timing_graph.fanout graph a));
  Alcotest.(check int) "fanin of b" 1 (List.length (Timing_graph.fanin graph b));
  Alcotest.(check int) "fanin of a" 0 (List.length (Timing_graph.fanin graph a))

let test_propagate_accumulates () =
  let graph, a, b = inverter_pair () in
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let ta = analysis.Arrival.timings.(a) and tb = analysis.Arrival.timings.(b) in
  Alcotest.(check (float 1e-15)) "primary input arrival 0" 0.0 ta.Arrival.arrival_in;
  Alcotest.(check bool) "positive stage delays" true
    (ta.Arrival.delay > 0.0 && tb.Arrival.delay > 0.0);
  Alcotest.(check (float 1e-15)) "arrival chains" ta.Arrival.arrival_out
    tb.Arrival.arrival_in;
  Alcotest.(check (float 1e-15)) "worst = sink arrival" tb.Arrival.arrival_out
    analysis.Arrival.worst_arrival;
  Alcotest.(check (list int)) "critical path" [ a; b ] analysis.Arrival.critical_path

let test_critical_fanin_selection () =
  (* two drivers into one nand2: the slower one must define the arrival *)
  let graph = Timing_graph.create () in
  let fast = Timing_graph.add_stage graph (Scenario.inverter_falling ~load:4e-15 tech) in
  let slow = Timing_graph.add_stage graph (Scenario.nand_falling ~n:4 ~load:40e-15 tech) in
  let sink = Timing_graph.add_stage graph (Scenario.nand_falling ~n:2 ~load:10e-15 tech) in
  Timing_graph.connect graph ~from_stage:fast ~to_stage:sink ~input:"a2";
  Timing_graph.connect graph ~from_stage:slow ~to_stage:sink ~input:"a1";
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let t_sink = analysis.Arrival.timings.(sink) in
  Alcotest.(check (option int)) "slower driver wins" (Some slow)
    t_sink.Arrival.critical_fanin;
  Alcotest.(check (float 1e-15)) "arrival from slow driver"
    analysis.Arrival.timings.(slow).Arrival.arrival_out t_sink.Arrival.arrival_in

let test_slew_shapes_downstream_delay () =
  (* the same sink driven by a slow (large-load) driver must see a larger
     stage delay than when driven by a fast driver: slews propagate *)
  let run load =
    let graph = Timing_graph.create () in
    let drv = Timing_graph.add_stage graph (Scenario.inverter_falling ~load tech) in
    let sink = Timing_graph.add_stage graph (Scenario.nand_falling ~n:2 tech) in
    Timing_graph.connect graph ~from_stage:drv ~to_stage:sink ~input:"a1";
    let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
    analysis.Arrival.timings.(sink).Arrival.delay
  in
  let fast = run 4e-15 and slow = run 60e-15 in
  Alcotest.(check bool) "slower input slew -> larger stage delay" true (slow > fast)

let test_slack_computation () =
  let graph, a, b = inverter_pair () in
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let clock_period = 1e-9 in
  let report = Arrival.slacks graph analysis ~clock_period in
  (* sink: required = clock period *)
  Alcotest.(check (float 1e-18)) "sink required" clock_period report.Arrival.required.(b);
  (* driver: required shrinks by the sink's stage delay *)
  Alcotest.(check (float 1e-15)) "driver required"
    (clock_period -. analysis.Arrival.timings.(b).Arrival.delay)
    report.Arrival.required.(a);
  (* slack identity and consistency: both stages on one path share slack *)
  Alcotest.(check (float 1e-15)) "slack identity"
    (report.Arrival.required.(b) -. analysis.Arrival.timings.(b).Arrival.arrival_out)
    report.Arrival.slack.(b);
  Alcotest.(check (float 1e-12)) "single path: equal slacks"
    report.Arrival.slack.(a) report.Arrival.slack.(b);
  Alcotest.(check (float 1e-12)) "worst slack" report.Arrival.slack.(b)
    report.Arrival.worst_slack;
  (* a tight clock must go negative *)
  let tight = Arrival.slacks graph analysis ~clock_period:1e-12 in
  Alcotest.(check bool) "violation detected" true (tight.Arrival.worst_slack < 0.0)

let test_report_rendering () =
  let graph, _, _ = inverter_pair () in
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let s = Report.critical_path_string graph analysis in
  Alcotest.(check bool) "mentions both stages" true
    (String.length s > 0
    && String.split_on_char '>' s |> List.length = 2);
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Report.print fmt graph analysis;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "report mentions worst arrival" true
    (Buffer.contents buf
    |> String.split_on_char '\n'
    |> List.exists (fun line ->
           String.length line >= 13 && String.sub line 0 13 = "worst arrival"))

(* ---------- cell characterization ---------- *)

module Characterize = Tqwm_sta.Characterize

let nand2_table =
  lazy
    (Characterize.characterize ~model:(Lazy.force table)
       ~slews:[| 10e-12; 40e-12; 100e-12 |]
       ~loads:[| 4e-15; 12e-15; 30e-15 |]
       (fun ~load -> Scenario.nand_falling ~n:2 ~load tech))

let test_characterize_monotone_in_load () =
  let t = Lazy.force nand2_table in
  for i = 0 to Array.length t.Characterize.slews - 1 do
    for j = 1 to Array.length t.Characterize.loads - 1 do
      let prev = Tqwm_num.Mat.get t.Characterize.delay i (j - 1) in
      let here = Tqwm_num.Mat.get t.Characterize.delay i j in
      if here <= prev then
        Alcotest.failf "delay not increasing in load at (%d, %d)" i j
    done
  done

let test_characterize_grid_exact () =
  let t = Lazy.force nand2_table in
  (* querying exactly on a grid point returns the stored value *)
  let stored = Tqwm_num.Mat.get t.Characterize.delay 1 1 in
  Alcotest.(check (float 1e-18)) "grid point exact" stored
    (Characterize.delay_at t ~slew:40e-12 ~load:12e-15)

let test_characterize_interpolation_bounded () =
  let t = Lazy.force nand2_table in
  let d = Characterize.delay_at t ~slew:25e-12 ~load:8e-15 in
  let lo = Tqwm_num.Mat.get t.Characterize.delay 0 0 in
  let hi = Tqwm_num.Mat.get t.Characterize.delay 2 2 in
  Alcotest.(check bool) "between corner values" true (d > Float.min lo hi /. 2.0 && d < hi);
  let s = Characterize.slew_at t ~slew:25e-12 ~load:8e-15 in
  Alcotest.(check bool) "output slew positive" true (s > 0.0)

let test_characterize_validation () =
  match
    Characterize.characterize ~model:(Lazy.force table) ~slews:[| 1e-12 |]
      (fun ~load -> Scenario.nand_falling ~n:2 ~load tech)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for 1-point axis"

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "tqwm_sta"
    [
      ( "graph",
        [
          quick "topological order" test_topological_order;
          quick "connect validation" test_connect_validation;
          quick "cycle rejected" test_cycle_rejected;
          quick "fan queries" test_fan_queries;
        ] );
      ( "arrival",
        [
          slow "accumulates" test_propagate_accumulates;
          slow "critical fanin" test_critical_fanin_selection;
          slow "slew propagation" test_slew_shapes_downstream_delay;
          slow "slack computation" test_slack_computation;
        ] );
      ("report", [ slow "rendering" test_report_rendering ]);
      ( "characterize",
        [
          slow "monotone in load" test_characterize_monotone_in_load;
          slow "grid exact" test_characterize_grid_exact;
          slow "interpolation bounded" test_characterize_interpolation_bounded;
          quick "validation" test_characterize_validation;
        ] );
    ]
