test/test_sta.ml: Alcotest Array Buffer Float Format Lazy List Models Scenario String Tech Tqwm_circuit Tqwm_device Tqwm_num Tqwm_sta
