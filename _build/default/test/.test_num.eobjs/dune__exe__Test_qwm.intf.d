test/test_qwm.mli:
