test/test_device.ml: Alcotest Capacitance Device Device_model Filename Float Fun Lazy List Models Mosfet Printf QCheck2 QCheck_alcotest Sys Table_model Tech Tqwm_device Tqwm_num
