test/test_wave.mli:
