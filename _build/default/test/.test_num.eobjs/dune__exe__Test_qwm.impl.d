test/test_qwm.ml: Alcotest Array Builders Chain Device Float Lazy List Models Path Printf Random Random_circuits Scenario Stage Tech Tqwm_circuit Tqwm_core Tqwm_device Tqwm_spice Tqwm_wave
