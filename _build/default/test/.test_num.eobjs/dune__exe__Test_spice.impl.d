test/test_spice.ml: Alcotest Array Builders Capacitance Chain Device Float List Models Scenario Stage Tech Tqwm_circuit Tqwm_device Tqwm_spice Tqwm_wave
