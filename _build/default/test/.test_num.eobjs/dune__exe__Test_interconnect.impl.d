test/test_interconnect.ml: Alcotest Array Awe Float List Pi_model QCheck2 QCheck_alcotest Random Rc_tree Switch_level Tqwm_circuit Tqwm_device Tqwm_interconnect
