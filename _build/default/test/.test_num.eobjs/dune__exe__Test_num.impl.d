test/test_num.ml: Alcotest Array Bordered Float Interp List Lu Mat Newton Ode Polyfit QCheck2 QCheck_alcotest Quad Random Sherman_morrison Stats Tqwm_num Tridiag Vec
