test/test_wave.ml: Alcotest Compare Float Measure QCheck2 QCheck_alcotest Source Tqwm_wave Waveform
