(* Tests for the device layer: analytic MOSFET physics, capacitances and
   the tabular characterization. *)

open Tqwm_device

let tech = Tech.cmosp35

let golden = Models.golden tech

let table_n = lazy (Table_model.of_analytic tech Mosfet.N)

let table_p = lazy (Table_model.of_analytic tech Mosfet.P)

let table_model = lazy (Table_model.to_device_model tech ~nmos:(Lazy.force table_n) ~pmos:(Lazy.force table_p))

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- thresholds ---------- *)

let test_threshold_zero_bias () =
  check_close "nmos vt0" tech.Tech.vt0_n (Mosfet.threshold tech Mosfet.N ~vsb:0.0);
  check_close "pmos vt0" tech.Tech.vt0_p (Mosfet.threshold tech Mosfet.P ~vsb:0.0)

let prop_threshold_monotone =
  QCheck2.Test.make ~name:"threshold increases with body bias" ~count:100
    QCheck2.Gen.(pair (float_range 0.0 3.0) (float_range 0.001 0.3))
    (fun (vsb, dv) ->
      Mosfet.threshold tech Mosfet.N ~vsb:(vsb +. dv) > Mosfet.threshold tech Mosfet.N ~vsb)

(* ---------- analytic I/V ---------- *)

let test_ids_cutoff () =
  check_close "below threshold" 0.0
    (Mosfet.ids tech Mosfet.N ~w:1e-6 ~l:0.35e-6 ~vg:0.3 ~vd:3.3 ~vs:0.0);
  check_close "zero vds" 0.0
    (Mosfet.ids tech Mosfet.N ~w:1e-6 ~l:0.35e-6 ~vg:3.3 ~vd:1.0 ~vs:1.0)

let test_ids_saturation_value () =
  (* 0.5 * kp * w/l * vod^2 at vds = vdsat *)
  let w = 1e-6 and l = 0.35e-6 in
  let vod = 3.3 -. tech.Tech.vt0_n in
  let expected = 0.5 *. tech.Tech.kp_n *. (w /. l) *. vod *. vod in
  check_close ~eps:1e-6 "idsat"
    expected
    (Mosfet.ids tech Mosfet.N ~w ~l ~vg:3.3 ~vd:vod ~vs:0.0)

let prop_ids_continuous_at_vdsat =
  QCheck2.Test.make ~name:"current continuous across the triode/saturation boundary"
    ~count:100
    QCheck2.Gen.(pair (float_range 1.0 3.3) (float_range 0.0 1.0))
    (fun (vg, vs) ->
      let vod = Mosfet.saturation_voltage tech Mosfet.N ~vgs:(vg -. vs) ~vsb:vs in
      if vod <= 0.01 then true
      else begin
        let eps = 1e-6 in
        let i_lo =
          Mosfet.ids tech Mosfet.N ~w:1e-6 ~l:0.35e-6 ~vg ~vd:(vs +. vod -. eps) ~vs
        in
        let i_hi =
          Mosfet.ids tech Mosfet.N ~w:1e-6 ~l:0.35e-6 ~vg ~vd:(vs +. vod +. eps) ~vs
        in
        Float.abs (i_hi -. i_lo) < 1e-7
      end)

let prop_ids_monotone_vd =
  QCheck2.Test.make ~name:"current non-decreasing in drain voltage" ~count:100
    QCheck2.Gen.(triple (float_range 1.0 3.3) (float_range 0.0 2.0) (float_range 0.0 3.0))
    (fun (vg, vs, vd_base) ->
      let vd1 = vs +. vd_base and vd2 = vs +. vd_base +. 0.05 in
      Mosfet.ids tech Mosfet.N ~w:1e-6 ~l:0.35e-6 ~vg ~vd:vd2 ~vs
      >= Mosfet.ids tech Mosfet.N ~w:1e-6 ~l:0.35e-6 ~vg ~vd:vd1 ~vs -. 1e-12)

let prop_channel_antisymmetric =
  QCheck2.Test.make ~name:"channel current is antisymmetric under terminal swap"
    ~count:100
    QCheck2.Gen.(triple (float_range 0.0 3.3) (float_range 0.0 3.3) (float_range 0.0 3.3))
    (fun (vg, va, vb) ->
      let f pol =
        let i_ab = Mosfet.channel_current tech pol ~w:1e-6 ~l:0.35e-6 ~vg ~va ~vb in
        let i_ba = Mosfet.channel_current tech pol ~w:1e-6 ~l:0.35e-6 ~vg ~va:vb ~vb:va in
        Float.abs (i_ab +. i_ba) < 1e-12
      in
      f Mosfet.N && f Mosfet.P)

let test_pmos_conducts_when_gate_low () =
  let i = Mosfet.channel_current tech Mosfet.P ~w:2e-6 ~l:0.35e-6 ~vg:0.0 ~va:3.3 ~vb:1.0 in
  Alcotest.(check bool) "pull-up current positive" true (i > 1e-5);
  let off = Mosfet.channel_current tech Mosfet.P ~w:2e-6 ~l:0.35e-6 ~vg:3.3 ~va:3.3 ~vb:1.0 in
  check_close "off" 0.0 off

let test_derivatives_match_fd () =
  let da, db =
    Mosfet.channel_current_derivatives tech Mosfet.N ~w:1e-6 ~l:0.35e-6 ~vg:3.3 ~va:2.0
      ~vb:0.5
  in
  Alcotest.(check bool) "dI/dva >= 0" true (da >= 0.0);
  Alcotest.(check bool) "dI/dvb <= 0" true (db <= 0.0)

(* ---------- capacitances ---------- *)

let test_junction_bias_dependence () =
  let c0 = Capacitance.junction tech ~w:1e-6 ~v:0.0 in
  let c_rev = Capacitance.junction tech ~w:1e-6 ~v:3.3 in
  check_close "zero-bias value" (Capacitance.junction_zero_bias tech ~w:1e-6) c0;
  Alcotest.(check bool) "reverse bias shrinks junction cap" true (c_rev < c0)

let test_wire_caps () =
  let w = 1e-6 and l = 100e-6 in
  let total = Capacitance.wire_total tech ~w ~l in
  let half = Capacitance.terminal tech (Device.wire ~w ~l) ~v:0.0 in
  check_close "wire splits half per end" (total /. 2.0) half;
  Alcotest.(check bool) "wire resistance positive" true
    (Capacitance.wire_resistance tech ~w ~l > 0.0)

let test_miller_factor () =
  let d = Device.nmos ~w:2e-6 tech in
  let c1 = Capacitance.terminal tech d ~v:1.0 in
  let c2 = Capacitance.terminal ~miller_factor:2.0 tech d ~v:1.0 in
  check_close "miller adds one overlap" (Capacitance.overlap tech ~w:2e-6) (c2 -. c1)

let test_device_constructors () =
  Alcotest.check_raises "bad width" (Invalid_argument "Device: non-positive geometry")
    (fun () -> ignore (Device.nmos ~w:0.0 tech));
  let d = Device.nmos ~w:1e-6 tech in
  check_close "default length" tech.Tech.l_min d.Device.l

(* ---------- table model ---------- *)

let idsat_scale = Mosfet.ids tech Mosfet.N ~w:1e-6 ~l:0.35e-6 ~vg:3.3 ~vd:3.3 ~vs:0.0

let prop_table_matches_golden =
  QCheck2.Test.make ~name:"table model tracks the analytic model within 0.5% of Idsat"
    ~count:200
    QCheck2.Gen.(triple (float_range 0.0 3.3) (float_range 0.0 3.3) (float_range 0.0 3.3))
    (fun (vg, vs, vd) ->
      let t = Lazy.force table_n in
      if vd < vs then true
      else begin
        let approx = Table_model.lookup t ~vg ~vs ~vd in
        let exact = Mosfet.ids tech Mosfet.N ~w:1e-6 ~l:0.35e-6 ~vg ~vd ~vs in
        Float.abs (approx -. exact) < 0.005 *. idsat_scale
      end)

let prop_table_dvd_matches_fd =
  QCheck2.Test.make ~name:"table dIds/dVd matches finite differences" ~count:100
    QCheck2.Gen.(triple (float_range 0.5 3.2) (float_range 0.0 1.5) (float_range 0.0 1.5))
    (fun (vg, vs, dvd) ->
      let t = Lazy.force table_n in
      let vd = vs +. 0.05 +. dvd in
      let h = 1e-4 in
      let fd =
        (Table_model.lookup t ~vg ~vs ~vd:(vd +. h)
        -. Table_model.lookup t ~vg ~vs ~vd:(vd -. h))
        /. (2.0 *. h)
      in
      let an = Table_model.lookup_dvd t ~vg ~vs ~vd in
      (* fits are piecewise polynomials: allow slack at segment joints *)
      Float.abs (fd -. an) < 0.02 *. ((Float.abs fd +. Float.abs an) +. 1e-4))

let prop_table_analytic_derivs_match_fd =
  (* the one-pass analytic derivatives must agree with central differences
     on the interpolated surface for every polarity and terminal order *)
  QCheck2.Test.make ~name:"table iv_derivatives match finite differences" ~count:200
    QCheck2.Gen.(
      quad (oneofl [ Device.Nmos; Device.Pmos ]) (float_range 0.0 3.3)
        (float_range 0.05 3.25) (float_range 0.05 3.25))
    (fun (kind, vg, v_src, v_snk) ->
      let model = Lazy.force table_model in
      let dev = { Device.kind; w = 2e-6; l = 0.35e-6 } in
      let tv = { Device_model.input = vg; src = v_src; snk = v_snk } in
      (* keep away from grid knots where the surface kinks *)
      let near_knot x = Float.abs (Float.rem x 0.1) < 0.005 in
      if near_knot v_src || near_knot v_snk || Float.abs (v_src -. v_snk) < 0.02 then true
      else begin
        let da, db = model.Device_model.iv_derivatives dev tv in
        let fa, fb =
          Device_model.finite_difference_derivatives model.Device_model.iv dev tv
        in
        let tol = 0.02 *. (Float.abs fa +. Float.abs fb +. 1e-5) in
        Float.abs (da -. fa) < tol && Float.abs (db -. fb) < tol
      end)

let test_lookup_with_derivs_consistent () =
  let t = Lazy.force table_n in
  let v, dvd, dvs = Table_model.lookup_with_derivs t ~vg:3.3 ~vs:0.42 ~vd:2.17 in
  check_close ~eps:1e-12 "value matches lookup" (Table_model.lookup t ~vg:3.3 ~vs:0.42 ~vd:2.17) v;
  check_close ~eps:1e-12 "dvd matches lookup_dvd"
    (Table_model.lookup_dvd t ~vg:3.3 ~vs:0.42 ~vd:2.17) dvd;
  Alcotest.(check bool) "dvs negative (raising source reduces current)" true (dvs < 0.0)

let test_table_threshold_interpolation () =
  let t = Lazy.force table_n in
  List.iter
    (fun vs ->
      check_close ~eps:1e-3 "vth interp"
        (Mosfet.threshold tech Mosfet.N ~vsb:vs)
        (Table_model.threshold t ~vs))
    [ 0.0; 0.05; 0.55; 1.23; 2.0 ]

let test_table_fit_parameters () =
  (* at Vg = VDD, Vs = 0 the triode fit must reproduce the square law *)
  let t = Lazy.force table_n in
  let vg_axis, _ = Table_model.grid t in
  let last = vg_axis.Tqwm_num.Interp.count - 1 in
  let fit = Table_model.fit_at t last 0 in
  let beta = tech.Tech.kp_n *. (1e-6 /. 0.35e-6) in
  let vod = 3.3 -. tech.Tech.vt0_n in
  check_close ~eps:1e-3 "t1 = beta * vod" (beta *. vod) fit.Table_model.t1;
  check_close ~eps:1e-3 "t2 = -beta/2" (-.beta /. 2.0) fit.Table_model.t2;
  check_close ~eps:1e-6 "vth stored" tech.Tech.vt0_n fit.Table_model.vth;
  check_close ~eps:1e-6 "vdsat stored" vod fit.Table_model.vdsat

let test_table_geometry_scaling () =
  (* current scales exactly with w/l in the underlying physics *)
  let model = Lazy.force table_model in
  let tv = { Device_model.input = 3.3; src = 2.0; snk = 0.0 } in
  let i1 = model.Device_model.iv (Device.nmos ~w:1e-6 tech) tv in
  let i3 = model.Device_model.iv (Device.nmos ~w:3e-6 tech) tv in
  check_close ~eps:1e-9 "3x width -> 3x current" (3.0 *. i1) i3

let test_table_model_pmos_and_reverse () =
  let model = Lazy.force table_model in
  let dev = Device.pmos ~w:2e-6 tech in
  let tv = { Device_model.input = 0.0; src = 3.3; snk = 1.5 } in
  let approx = model.Device_model.iv dev tv in
  let exact = golden.Device_model.iv dev tv in
  check_close ~eps:5e-3 "pmos forward" exact approx;
  (* reverse conduction via terminal symmetry *)
  let tv_rev = { Device_model.input = 3.3; src = 0.5; snk = 2.0 } in
  let dev_n = Device.nmos ~w:2e-6 tech in
  let approx_r = model.Device_model.iv dev_n tv_rev in
  let exact_r = golden.Device_model.iv dev_n tv_rev in
  Alcotest.(check bool) "reverse current negative" true (approx_r < 0.0);
  check_close ~eps:5e-3 "reverse matches" exact_r approx_r

let test_table_wire_passthrough () =
  let model = Lazy.force table_model in
  let dev = Device.wire ~w:1e-6 ~l:50e-6 in
  let tv = { Device_model.input = 0.0; src = 2.0; snk = 1.0 } in
  check_close "wire iv identical" (golden.Device_model.iv dev tv)
    (model.Device_model.iv dev tv)

let test_characterize_validation () =
  Alcotest.check_raises "bad grid"
    (Invalid_argument "Table_model.characterize: grid_step <= 0") (fun () ->
      ignore (Table_model.of_analytic ~grid_step:0.0 tech Mosfet.N))

let test_table_serialization_roundtrip () =
  let t = Lazy.force table_n in
  let t' = Table_model.of_string tech (Table_model.to_string t) in
  (* interpolated queries must be bit-identical after the roundtrip *)
  List.iter
    (fun (vg, vs, vd) ->
      Alcotest.(check (float 0.0))
        (Printf.sprintf "lookup %g %g %g" vg vs vd)
        (Table_model.lookup t ~vg ~vs ~vd)
        (Table_model.lookup t' ~vg ~vs ~vd))
    [ (3.3, 0.0, 3.3); (2.17, 0.42, 1.9); (1.0, 0.9, 1.1); (0.3, 0.0, 2.0) ];
  Alcotest.(check (float 0.0)) "threshold roundtrip"
    (Table_model.threshold t ~vs:1.234)
    (Table_model.threshold t' ~vs:1.234)

let test_table_serialization_errors () =
  (match Table_model.of_string tech "garbage" with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on garbage");
  let other = Tech.scale_supply tech 2.5 in
  let payload = Table_model.to_string (Lazy.force table_n) in
  match Table_model.of_string other payload with
  | exception Failure _ -> ()
  | _ -> Alcotest.fail "expected Failure on supply mismatch"

let test_table_file_roundtrip () =
  let t = Lazy.force table_p in
  let path = Filename.temp_file "tqwm_table" ".txt" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      Table_model.save t ~path;
      let t' = Table_model.load tech ~path in
      Alcotest.(check (float 0.0)) "file roundtrip"
        (Table_model.lookup t ~vg:3.0 ~vs:0.2 ~vd:1.7)
        (Table_model.lookup t' ~vg:3.0 ~vs:0.2 ~vd:1.7))

(* ---------- corners ---------- *)

let test_corners_order_current () =
  let ids tech' =
    Mosfet.ids tech' Mosfet.N ~w:1e-6 ~l:0.35e-6 ~vg:3.3 ~vd:3.3 ~vs:0.0
  in
  let fast = ids (Tech.corner tech Tech.Fast) in
  let typ = ids (Tech.corner tech Tech.Typical) in
  let slow = ids (Tech.corner tech Tech.Slow) in
  Alcotest.(check bool) "fast > typical > slow" true (fast > typ && typ > slow);
  Alcotest.(check string) "typical unchanged" tech.Tech.name
    (Tech.corner tech Tech.Typical).Tech.name

(* ---------- device model record ---------- *)

let test_analytic_model_wire () =
  let dev = Device.wire ~w:1e-6 ~l:10e-6 in
  let r = Capacitance.wire_resistance tech ~w:1e-6 ~l:10e-6 in
  let tv = { Device_model.input = 0.0; src = 1.0; snk = 0.0 } in
  check_close "ohm's law" (1.0 /. r) (golden.Device_model.iv dev tv);
  let dsrc, dsnk = golden.Device_model.iv_derivatives dev tv in
  check_close "g" (1.0 /. r) dsrc;
  check_close "-g" (-1.0 /. r) dsnk;
  check_close "wire threshold" 0.0 (golden.Device_model.threshold dev tv)

let test_model_threshold_polarity () =
  let tv = { Device_model.input = 3.3; src = 3.3; snk = 1.0 } in
  check_close "nmos threshold uses snk"
    (Mosfet.threshold tech Mosfet.N ~vsb:1.0)
    (golden.Device_model.threshold (Device.nmos ~w:1e-6 tech) tv);
  check_close "pmos threshold uses src"
    (Mosfet.threshold tech Mosfet.P ~vsb:0.0)
    (golden.Device_model.threshold (Device.pmos ~w:1e-6 tech) tv)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop p = QCheck_alcotest.to_alcotest p in
  Alcotest.run "tqwm_device"
    [
      ( "threshold",
        [ quick "zero bias" test_threshold_zero_bias; prop prop_threshold_monotone ] );
      ( "mosfet",
        [
          quick "cutoff" test_ids_cutoff;
          quick "saturation value" test_ids_saturation_value;
          prop prop_ids_continuous_at_vdsat;
          prop prop_ids_monotone_vd;
          prop prop_channel_antisymmetric;
          quick "pmos polarity" test_pmos_conducts_when_gate_low;
          quick "derivative signs" test_derivatives_match_fd;
        ] );
      ( "capacitance",
        [
          quick "junction bias" test_junction_bias_dependence;
          quick "wire split" test_wire_caps;
          quick "miller" test_miller_factor;
          quick "device constructors" test_device_constructors;
        ] );
      ( "table",
        [
          prop prop_table_matches_golden;
          prop prop_table_dvd_matches_fd;
          prop prop_table_analytic_derivs_match_fd;
          quick "with_derivs consistent" test_lookup_with_derivs_consistent;
          quick "threshold interpolation" test_table_threshold_interpolation;
          quick "fit parameters" test_table_fit_parameters;
          quick "geometry scaling" test_table_geometry_scaling;
          quick "pmos and reverse" test_table_model_pmos_and_reverse;
          quick "wire passthrough" test_table_wire_passthrough;
          quick "validation" test_characterize_validation;
          quick "serialization roundtrip" test_table_serialization_roundtrip;
          quick "serialization errors" test_table_serialization_errors;
          quick "file roundtrip" test_table_file_roundtrip;
        ] );
      ("corners", [ quick "current ordering" test_corners_order_current ]);
      ( "device model",
        [
          quick "wire analytic" test_analytic_model_wire;
          quick "threshold polarity" test_model_threshold_polarity;
        ] );
    ]
