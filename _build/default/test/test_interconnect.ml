(* Tests for the interconnect substrate: RC trees, moments, Elmore, AWE
   and the O'Brien-Savarino pi reduction. *)

open Tqwm_interconnect
module Rc = Rc_tree

let tech = Tqwm_device.Tech.cmosp35

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- RC trees ---------- *)

let test_tree_validation () =
  Alcotest.check_raises "bad root" (Invalid_argument "Rc_tree.make: node 0 must be the root")
    (fun () -> ignore (Rc.make ~parent:[| 0 |] ~resistance:[| 0.0 |] ~cap:[| 1.0 |]));
  Alcotest.check_raises "forward parent"
    (Invalid_argument "Rc_tree.make: parents must precede children") (fun () ->
      ignore (Rc.make ~parent:[| -1; 2; 1 |] ~resistance:[| 0.0; 1.0; 1.0 |] ~cap:[| 0.0; 1.0; 1.0 |]))

let test_ladder_totals () =
  let lad = Rc.of_ladder ~r_total:100.0 ~c_total:1e-12 ~segments:10 in
  Alcotest.(check int) "nodes" 11 (Rc.num_nodes lad);
  check_close "cap conserved" 1e-12 (Rc.total_cap lad);
  check_close "resistance to far end" 100.0 (Rc.total_resistance_to lad 10)

let test_downstream_caps () =
  (* Y-shaped tree: root - a - (b, c) *)
  let t =
    Rc.make ~parent:[| -1; 0; 1; 1 |] ~resistance:[| 0.0; 1.0; 2.0; 3.0 |]
      ~cap:[| 1.0; 2.0; 4.0; 8.0 |]
  in
  let d = Rc.downstream_caps t in
  check_close "leaf" 8.0 d.(3);
  check_close "internal" 14.0 d.(1);
  check_close "root" 15.0 d.(0)

let test_shared_resistance () =
  let t =
    Rc.make ~parent:[| -1; 0; 1; 1 |] ~resistance:[| 0.0; 1.0; 2.0; 3.0 |]
      ~cap:[| 0.0; 1.0; 1.0; 1.0 |]
  in
  check_close "siblings share the trunk" 1.0 (Rc.shared_resistance t 2 3);
  check_close "self shares full path" 3.0 (Rc.shared_resistance t 2 2);
  check_close "symmetric" (Rc.shared_resistance t 3 2) (Rc.shared_resistance t 2 3)

let test_elmore_single_rc () =
  let t = Rc.make ~parent:[| -1; 0 |] ~resistance:[| 0.0; 1e3 |] ~cap:[| 0.0; 1e-12 |] in
  check_close "RC" 1e-9 (Rc.elmore t 1)

let prop_elmore_is_first_moment =
  QCheck2.Test.make ~name:"Elmore delay equals -m1 on random trees" ~count:100
    QCheck2.Gen.(pair (int_range 2 12) (int_bound 100000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 7 |] in
      let gen lo hi = lo +. ((hi -. lo) *. Random.State.float rng 1.0) in
      let t =
        Rc.make
          ~parent:(Array.init n (fun i -> if i = 0 then -1 else Random.State.int rng i))
          ~resistance:(Array.init n (fun i -> if i = 0 then 0.0 else gen 1.0 100.0))
          ~cap:(Array.init n (fun _ -> gen 1e-15 1e-13))
      in
      let m = Rc.moments t ~order:1 in
      let ok = ref true in
      for node = 0 to n - 1 do
        let elm = Rc.elmore t node in
        if Float.abs (elm +. m.(1).(node)) > 1e-9 *. (elm +. 1e-15) then ok := false
      done;
      !ok)

let test_moments_zeroth () =
  let t = Rc.of_ladder ~r_total:10.0 ~c_total:1e-13 ~segments:4 in
  let m = Rc.moments t ~order:0 in
  Array.iter (fun x -> check_close "m0 = 1" 1.0 x) m.(0)

(* ---------- AWE ---------- *)

let test_awe_single_pole_exact () =
  let r = 1e3 and c = 1e-12 in
  let t = Rc.make ~parent:[| -1; 1 - 1 |] ~resistance:[| 0.0; r |] ~cap:[| 0.0; c |] in
  let tp = Awe.of_tree t ~node:1 in
  (* step response must match 1 - exp(-t/RC) *)
  List.iter
    (fun time ->
      check_close ~eps:1e-6 "exp response"
        (1.0 -. exp (-.time /. (r *. c)))
        (Awe.step_response tp time))
    [ 0.1e-9; 0.5e-9; 1e-9; 3e-9 ];
  check_close ~eps:1e-6 "50% delay" (r *. c *. log 2.0) (Awe.delay_to tp ~level:0.5)

let test_awe_ladder_stable_and_sane () =
  let lad = Rc.of_ladder ~r_total:500.0 ~c_total:2e-12 ~segments:12 in
  let far = Rc.num_nodes lad - 1 in
  let tp = Awe.of_tree lad ~node:far in
  let p1, p2 = tp.Awe.poles in
  Alcotest.(check bool) "poles negative" true (p1 < 0.0 && p2 < 0.0);
  let elmore = Rc.elmore lad far in
  let d50 = Awe.delay_to tp ~level:0.5 in
  (* 2-pole delay should land near ln2 * Elmore for a uniform line *)
  Alcotest.(check bool) "delay near ln2*elmore" true
    (d50 > 0.3 *. elmore && d50 < 1.2 *. elmore);
  check_close ~eps:1e-6 "monotone start" 0.0 (Awe.step_response tp 0.0)

let prop_awe_random_ladders_stable =
  QCheck2.Test.make ~name:"AWE stable on random RC ladders" ~count:100
    QCheck2.Gen.(triple (float_range 10.0 5000.0) (float_range 1e-14 1e-11) (int_range 2 20))
    (fun (r, c, segments) ->
      let lad = Rc.of_ladder ~r_total:r ~c_total:c ~segments in
      let far = Rc.num_nodes lad - 1 in
      match Awe.of_tree lad ~node:far with
      | tp ->
        let p1, p2 = tp.Awe.poles in
        p1 < 0.0 && p2 < 0.0
      | exception Awe.Unstable -> false)

let test_awe_unstable_raises () =
  (match Awe.fit ~m1:1.0 ~m2:(-1.0) ~m3:1.0 with
  | exception Awe.Unstable -> ()
  | _ -> Alcotest.fail "expected Unstable")

let test_awe_delay_validation () =
  let tp = Awe.fit ~m1:(-1e-9) ~m2:1e-18 ~m3:(-1e-27) in
  Alcotest.check_raises "level range" (Invalid_argument "Awe.delay_to: level out of (0,1)")
    (fun () -> ignore (Awe.delay_to tp ~level:1.5))

(* ---------- pi model ---------- *)

let test_pi_single_rc_exact () =
  let t = Rc.make ~parent:[| -1; 0 |] ~resistance:[| 0.0; 1e3 |] ~cap:[| 0.0; 1e-12 |] in
  let pi = Pi_model.of_tree t in
  check_close ~eps:1e-9 "r" 1e3 pi.Pi_model.r;
  check_close ~eps:1e-9 "c_far" 1e-12 pi.Pi_model.c_far;
  check_close ~eps:1e-9 "c_near" 0.0 pi.Pi_model.c_near

let prop_pi_conserves_total_cap =
  QCheck2.Test.make ~name:"pi reduction conserves total capacitance" ~count:100
    QCheck2.Gen.(triple (float_range 10.0 2000.0) (float_range 1e-14 1e-11) (int_range 2 16))
    (fun (r, c, segments) ->
      let lad = Rc.of_ladder ~r_total:r ~c_total:c ~segments in
      let pi = Pi_model.of_tree lad in
      Float.abs (Pi_model.total_cap pi -. c) < 1e-9 *. c)

let test_pi_of_wire () =
  let pi = Pi_model.of_wire tech ~w:0.6e-6 ~l:100e-6 ~segments:8 in
  let c_total = Tqwm_device.Capacitance.wire_total tech ~w:0.6e-6 ~l:100e-6 in
  check_close ~eps:1e-9 "wire cap conserved" c_total (Pi_model.total_cap pi);
  Alcotest.(check bool) "resistance positive" true (pi.Pi_model.r > 0.0)

let test_pi_validation () =
  Alcotest.check_raises "degenerate"
    (Invalid_argument "Pi_model: degenerate admittance moments") (fun () ->
      ignore (Pi_model.of_admittance_moments ~y1:1e-12 ~y2:0.0 ~y3:0.0))

(* ---------- switch level ---------- *)

let test_effective_resistance () =
  let r1 = Switch_level.effective_resistance tech (Tqwm_device.Device.nmos ~w:1e-6 tech) in
  let r2 = Switch_level.effective_resistance tech (Tqwm_device.Device.nmos ~w:2e-6 tech) in
  Alcotest.(check bool) "positive" true (r1 > 0.0);
  check_close ~eps:1e-9 "halves with double width" (r1 /. 2.0) r2;
  let rp = Switch_level.effective_resistance tech (Tqwm_device.Device.pmos ~w:1e-6 tech) in
  Alcotest.(check bool) "pmos weaker" true (rp > r1)

let test_switch_level_chain_delay () =
  let scenario = Tqwm_circuit.Scenario.stack_falling ~widths:(Array.make 6 1.6e-6) tech in
  let model = Tqwm_device.Models.golden tech in
  let lowering = Tqwm_circuit.Scenario.lower ~model scenario in
  let d = Switch_level.delay_estimate tech lowering.Tqwm_circuit.Path.chain in
  (* SPICE says ~80 ps; switch-level should land within 4x *)
  Alcotest.(check bool) "order of magnitude" true (d > 20e-12 && d < 320e-12)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop p = QCheck_alcotest.to_alcotest p in
  Alcotest.run "tqwm_interconnect"
    [
      ( "rc_tree",
        [
          quick "validation" test_tree_validation;
          quick "ladder totals" test_ladder_totals;
          quick "downstream caps" test_downstream_caps;
          quick "shared resistance" test_shared_resistance;
          quick "elmore single RC" test_elmore_single_rc;
          prop prop_elmore_is_first_moment;
          quick "zeroth moments" test_moments_zeroth;
        ] );
      ( "awe",
        [
          quick "single pole exact" test_awe_single_pole_exact;
          quick "ladder" test_awe_ladder_stable_and_sane;
          prop prop_awe_random_ladders_stable;
          quick "unstable raises" test_awe_unstable_raises;
          quick "level validation" test_awe_delay_validation;
        ] );
      ( "pi_model",
        [
          quick "single RC exact" test_pi_single_rc_exact;
          prop prop_pi_conserves_total_cap;
          quick "of_wire" test_pi_of_wire;
          quick "validation" test_pi_validation;
        ] );
      ( "switch_level",
        [
          quick "effective resistance" test_effective_resistance;
          quick "chain delay" test_switch_level_chain_delay;
        ] );
    ]
