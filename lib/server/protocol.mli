(** The timing-server wire protocol: newline-delimited JSON over a
    stream socket.

    Each request is one line — a JSON object with a [verb] member
    (string), an optional [id] member (echoed verbatim in the response,
    any JSON value) and verb-specific argument members. Each response is
    one line: [{"id": ..., "ok": true, "result": ...}] on success,
    [{"id": ..., "ok": false, "error": {"code": ..., "message": ...}}]
    on failure. Lines are capped at {!max_line_bytes}; an overlong line
    is discarded up to its terminating newline and answered with an
    [oversized_line] error, leaving the connection usable. *)

module Json = Tqwm_obs.Json

val max_line_bytes : int
(** Longest accepted request line (1 MiB), newline excluded. *)

(** {2 Addresses} *)

type address =
  | Unix_sock of string  (** filesystem socket path *)
  | Tcp of Unix.inet_addr * int

val parse_address : string -> address
(** ["unix:PATH"] or ["HOST:PORT"] (numeric or resolvable host; port 0
    asks the kernel for a free port).
    @raise Invalid_argument on a malformed or unresolvable address. *)

val sockaddr_of_address : address -> Unix.sockaddr

val string_of_sockaddr : Unix.sockaddr -> string
(** Back to the [parse_address] syntax, with the {e actual} port — the
    form a server prints after binding port 0. *)

(** {2 Reading frames} *)

type reader

val reader : Unix.file_descr -> reader
(** A buffered line reader owning no resources beyond its buffer; close
    the descriptor yourself. *)

type frame =
  | Line of string  (** one request line, newline stripped *)
  | Oversized
      (** a line exceeded {!max_line_bytes}; it was discarded through
          its terminating newline and the reader is re-synchronized *)
  | Eof  (** peer closed (a trailing unterminated line is dropped) *)

val read_frame : reader -> frame
(** Blocks for the next frame. Connection-reset errors read as {!Eof};
    other [Unix.Unix_error]s propagate. *)

val write_line : Unix.file_descr -> Json.t -> int
(** One compact JSON line, newline-terminated, fully written; returns
    the number of bytes put on the wire (newline included), which the
    server's access log records as [bytes_out]. With [SIGPIPE] ignored,
    writing to a hung-up peer raises [Unix.Unix_error (EPIPE, _, _)]. *)

(** {2 Requests and responses} *)

type request = {
  id : Json.t;  (** [Null] when absent *)
  verb : string;
  body : Json.t;  (** the whole request object, for argument lookup *)
}

val request_of_line : string -> (request, string) result
(** Parse one line: must be a JSON object with a string [verb]. *)

val arg : request -> string -> Json.t option

val ok : id:Json.t -> Json.t -> Json.t

val error : id:Json.t -> code:string -> string -> Json.t
(** Structured failure; [code] is one of the protocol's stable error
    codes ([parse_error], [unknown_verb], [bad_request], [script_error],
    [oversized_line], [server_full], [internal]). *)
