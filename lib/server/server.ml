module Json = Tqwm_obs.Json
module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Series = Tqwm_obs.Series
module Log = Tqwm_obs.Log
module Models = Tqwm_device.Models
module Timing_graph = Tqwm_sta.Timing_graph
module Stage_cache = Tqwm_sta.Stage_cache
module Arrival = Tqwm_sta.Arrival
module Path_enum = Tqwm_sta.Path_enum
module Report = Tqwm_sta.Report
module Session = Tqwm_incr.Session
module Script = Tqwm_incr.Script

let ps = 1e12

(* ---- telemetry ---- *)

let c_requests = Metrics.counter "server.requests"
let c_errors = Metrics.counter "server.errors"
let c_connections = Metrics.counter "server.connections"
let c_slow = Metrics.counter "server.slow_requests"
let g_sessions = Metrics.gauge "server.sessions"

(* synonym kept in lockstep with [server.sessions] under the
   conventional serving-stack name *)
let g_sessions_active = Metrics.gauge "server.sessions_active"
let g_queue_depth = Metrics.gauge "server.queue_depth"
let g_uptime = Metrics.gauge "server.uptime_seconds"

let set_sessions n =
  let v = float_of_int n in
  Metrics.set g_sessions v;
  Metrics.set g_sessions_active v

(* Lower edge extends to 2 µs: introspection verbs (health, document,
   metrics, stats) answer in single-digit microseconds on a warm server,
   and with 50 µs as the first bound every one of them landed in bucket
   0 — p50 and p99 both degenerated to the first bound. Sub-50 µs verbs
   now spread over five buckets, so the [stats] quantiles resolve. *)
let latency_bounds =
  [|
    0.002; 0.005; 0.01; 0.02; 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0;
    50.0; 100.0; 250.0;
  |]

(* per-verb latency histograms, pre-registered so an unknown verb never
   mints a metric name *)
let verbs =
  [
    "load"; "edit"; "script"; "report"; "query"; "timing"; "slack"; "explain";
    "document"; "metrics"; "health"; "stats"; "trace"; "close";
  ]

let latency =
  List.map
    (fun v -> (v, Metrics.histogram ("server.latency_ms." ^ v) ~bounds:latency_bounds))
    verbs

(* ---- server state ---- *)

type t = {
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  tech : Tqwm_device.Tech.t;
  model : Tqwm_device.Device_model.t;
  cache : Stage_cache.t;  (** shared solve table; sessions hold forks *)
  baseline : Session.t option;
  session_domains : int;
  epsilon : float;
  max_sessions : int;
  queue : Unix.file_descr Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  stopping : bool Atomic.t;
  open_conns : int Atomic.t;  (** accepted and not yet torn down *)
  started : float;  (** wall clock at [start], for uptime *)
  series : Series.t;  (** rolling metric samples behind [stats] *)
  sample_period : float;
  access_log : Log.t option;
  slow_threshold : float;  (** seconds; at or above emits a trace instant *)
  session_counter : int Atomic.t;  (** mints session ids *)
  request_counter : int Atomic.t;  (** mints request ids *)
  workers : int;
  mutable acceptor : unit Domain.t option;
  mutable sampler : unit Domain.t option;
  mutable worker_domains : unit Domain.t list;
  mutable stopped : bool;
}

(* ---- per-connection session ---- *)

type conn = {
  sid : string;  (** session id, unique per accepted connection *)
  mutable interp : Script.Interp.t option;
  outbuf : Buffer.t;
  fmt : Format.formatter;
}

let take_output conn =
  Format.pp_print_flush conn.fmt ();
  let s = Buffer.contents conn.outbuf in
  Buffer.clear conn.outbuf;
  s

let the_interp conn =
  match conn.interp with
  | Some i -> i
  | None -> invalid_arg "no session: send a \"load\" request first"

let int_member req name =
  match Protocol.arg req name with
  | Some (Json.Int v) -> Some v
  | Some _ -> invalid_arg (Printf.sprintf "%S must be an integer" name)
  | None -> None

let float_member req name =
  match Protocol.arg req name with
  | Some (Json.Float v) -> Some v
  | Some (Json.Int v) -> Some (float_of_int v)
  | Some _ -> invalid_arg (Printf.sprintf "%S must be a number" name)
  | None -> None

let string_member req name =
  match Protocol.arg req name with
  | Some (Json.String v) -> Some v
  | Some _ -> invalid_arg (Printf.sprintf "%S must be a string" name)
  | None -> None

(* the clock the session's timing verbs run under when the script never
   set one: the critical path sets the clock (zero-slack normalization),
   1 ns on degenerate graphs — the rule every offline report applies *)
let effective_clock interp session =
  match Script.Interp.clock_period interp with
  | Some cp -> cp
  | None ->
    let wa = (Session.analysis session).Arrival.worst_arrival in
    if wa > 0.0 then wa else 1e-9

let do_load t conn req =
  let make_fresh () =
    Script.Interp.create ~tech:t.tech ~model:t.model
      ~cache:(Stage_cache.fork t.cache) ~domains:t.session_domains
      ~epsilon:t.epsilon ~out:conn.fmt ()
  in
  let interp, baseline =
    match string_member req "graph" with
    | Some "" -> (make_fresh (), false)
    | Some spec ->
      let i = make_fresh () in
      Script.Interp.feed i ("graph " ^ spec);
      (i, false)
    | None -> (
      match t.baseline with
      | None ->
        invalid_arg
          "no baseline graph (server started without --graph); pass \"graph\""
      | Some b ->
        let session = Session.fork ~domains:t.session_domains b in
        ( Script.Interp.create ~tech:t.tech ~model:t.model
            ~domains:t.session_domains ~epsilon:t.epsilon ~out:conn.fmt ~session (),
          true ))
  in
  conn.interp <- Some interp;
  let stages, connections =
    if Script.Interp.has_session interp then
      let g = Session.graph (Script.Interp.session interp) in
      (Timing_graph.num_stages g, Timing_graph.num_connections g)
    else (0, 0)
  in
  Json.Obj
    [
      ("stages", Json.Int stages);
      ("connections", Json.Int connections);
      ("baseline", Json.Bool baseline);
      ("output", Json.String (take_output conn));
    ]

let do_line conn req =
  let line =
    match string_member req "line" with
    | Some l -> l
    | None -> invalid_arg "missing \"line\" (a script command)"
  in
  Script.Interp.feed (the_interp conn) line;
  Json.Obj [ ("output", Json.String (take_output conn)) ]

let do_report conn =
  Script.Interp.feed (the_interp conn) "report";
  Json.Obj [ ("output", Json.String (take_output conn)) ]

let do_query conn req =
  let get name =
    match int_member req name with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "missing %S (a stage id)" name)
  in
  let from_stage = get "from" and to_stage = get "to" in
  let s = Script.Interp.session (the_interp conn) in
  match Session.query s ~from_stage ~to_stage with
  | None -> Json.Obj [ ("found", Json.Bool false) ]
  | Some q ->
    Json.Obj
      [
        ("found", Json.Bool true);
        ("arrival_ps", Json.Float (q.Session.arrival *. ps));
        ("stages", Json.List (List.map (fun i -> Json.Int i) q.Session.stages));
      ]

let do_timing conn req =
  let k = Option.value (int_member req "k") ~default:1 in
  let interp = the_interp conn in
  Script.timing_json
    ?clock_period:(Script.Interp.clock_period interp)
    ~k
    (Script.Interp.session interp)

let do_slack conn req =
  let interp = the_interp conn in
  let s = Script.Interp.session interp in
  let clock_period =
    match float_member req "clock_period_ps" with
    | Some p when Float.is_finite p && p > 0.0 -> p *. 1e-12
    | Some _ -> invalid_arg "\"clock_period_ps\" must be finite and > 0"
    | None -> effective_clock interp s
  in
  let r = Session.required s ~clock_period in
  Json.Obj
    [
      ("clock_period_ps", Json.Float (clock_period *. ps));
      ("wns_ps", Json.Float (r.Arrival.wns *. ps));
      ("tns_ps", Json.Float (r.Arrival.tns *. ps));
      ("worst_slack_ps", Json.Float (r.Arrival.req_worst_slack *. ps));
      ("endpoints", Json.Int (Array.length r.Arrival.endpoints));
    ]

(* the critical cone into one pin, reported as a single-path
   [tqwm-report/1] document: walk the critical-fanin chain backward from
   the pin, then attribute it stage by stage through the session's own
   cached solves *)
let do_explain conn req =
  let pin =
    match int_member req "pin" with
    | Some p -> p
    | None -> invalid_arg "missing \"pin\" (a stage id)"
  in
  let interp = the_interp conn in
  let s = Script.Interp.session interp in
  let graph = Session.graph s in
  let analysis = Session.analysis s in
  let n = Array.length analysis.Arrival.timings in
  if pin < 0 || pin >= n then
    invalid_arg (Printf.sprintf "\"pin\" %d out of range (graph has %d stages)" pin n);
  let rec walk acc id =
    match analysis.Arrival.timings.(id).Arrival.critical_fanin with
    | None -> id :: acc
    | Some driver -> walk (id :: acc) driver
  in
  let stages = walk [] pin in
  let clock_period = effective_clock interp s in
  let arrival = analysis.Arrival.timings.(pin).Arrival.arrival_out in
  let path = { Path_enum.stages; arrival; slack = clock_period -. arrival } in
  let explained = Session.explain s path in
  let required = Session.required s ~clock_period in
  Report.timing_to_json graph analysis required [ explained ]

(* ---- live telemetry (health / stats / trace verbs) ---- *)

(* One rolling-window sample: every registered instrument, plus — when
   [gc] — the GC's cumulative statistics, which live outside the
   registry. OCaml 5 GC counters are per-domain, so the raw [gc.*]
   extras only cover the sampler domain; the process-wide view lives in
   the [qwm.alloc.domains_*] registry counters, which every sample
   captures automatically once each domain flushes its growth
   ({!Tqwm_obs.Alloc.flush_domain} — connection handlers after every
   request, STA workers on retirement, and this sampler before it
   reads). *)
let sample_now ?(gc = false) t =
  let now = Unix.gettimeofday () in
  Metrics.set g_uptime (now -. t.started);
  Tqwm_obs.Alloc.flush_domain ();
  let extra_counters, extra_gauges =
    if gc then
      let q = Gc.quick_stat () in
      ( [
          ("gc.minor_collections", q.Gc.minor_collections);
          ("gc.major_collections", q.Gc.major_collections);
        ],
        [ ("gc.minor_words", Gc.minor_words ()) ] )
    else ([], [])
  in
  Series.record t.series (Series.capture ~extra_counters ~extra_gauges ~now ())

let do_health t =
  let now = Unix.gettimeofday () in
  Metrics.set g_uptime (now -. t.started);
  Json.Obj
    [
      ("ready", Json.Bool (not (Atomic.get t.stopping)));
      ("uptime_s", Json.Float (now -. t.started));
      ("sessions", Json.Int (Atomic.get t.open_conns));
      ("max_sessions", Json.Int t.max_sessions);
      ("workers", Json.Int t.workers);
      ("session_domains", Json.Int t.session_domains);
      ("tracing", Json.Bool (Trace.enabled ()));
      ("access_log", Json.Bool (t.access_log <> None));
    ]

let do_stats t req =
  let seconds = Option.value (float_member req "window_s") ~default:60.0 in
  if not (Float.is_finite seconds && seconds > 0.0) then
    invalid_arg "\"window_s\" must be finite and > 0";
  (* close the window at "now" so rates cover traffic since the last
     periodic sample too *)
  sample_now t;
  let rate name =
    Option.value (Series.counter_rate t.series ~seconds name) ~default:0.0
  in
  let verb_stats =
    List.filter_map
      (fun v ->
        match
          Series.histogram_delta t.series ~seconds ("server.latency_ms." ^ v)
        with
        | None -> None
        | Some d ->
          let total = Array.fold_left ( + ) 0 d.Series.counts in
          if total = 0 then None
          else
            let quantile p =
              match Series.quantile ~bounds:d.Series.bounds ~counts:d.Series.counts p with
              | Some v -> Json.Float v
              | None -> Json.Null
            in
            Some
              ( v,
                Json.Obj
                  [
                    ("count", Json.Int total);
                    ("p50_ms", quantile 0.5);
                    ("p99_ms", quantile 0.99);
                  ] ))
      verbs
  in
  let gc =
    [
      ( "minor_words_per_s",
        Option.value (Series.gauge_rate t.series ~seconds "gc.minor_words") ~default:0.0 );
      ("minor_collections_per_s", rate "gc.minor_collections");
      ("major_collections_per_s", rate "gc.major_collections");
      (* all-domain totals (each domain flushes its own GC growth into
         the registry), vs the sampler-domain-only [gc.*] keys above *)
      ("domains_minor_words_per_s", rate "qwm.alloc.domains_minor_words");
      ("domains_major_words_per_s", rate "qwm.alloc.domains_major_words");
      ("domains_minor_collections_per_s", rate "qwm.alloc.domains_minor_collections");
    ]
    |> List.map (fun (k, v) -> (k, Json.Float v))
  in
  Json.Obj
    [
      ("window_s", Json.Float seconds);
      ("samples", Json.Int (List.length (Series.window t.series ~seconds)));
      ("qps", Json.Float (rate "server.requests"));
      ("errors_per_s", Json.Float (rate "server.errors"));
      ("sessions", Json.Int (Atomic.get t.open_conns));
      ("uptime_s", Json.Float (Unix.gettimeofday () -. t.started));
      ("verbs", Json.Obj verb_stats);
      ("gc", Json.Obj gc);
    ]

let dispatch t conn req =
  match req.Protocol.verb with
  | "load" -> `Reply (do_load t conn req)
  | "edit" | "script" -> `Reply (do_line conn req)
  | "report" -> `Reply (do_report conn)
  | "query" -> `Reply (do_query conn req)
  | "timing" -> `Reply (do_timing conn req)
  | "slack" -> `Reply (do_slack conn req)
  | "explain" -> `Reply (do_explain conn req)
  | "document" -> `Reply (Script.Interp.document (the_interp conn))
  | "metrics" -> `Reply (Metrics.snapshot ())
  | "health" -> `Reply (do_health t)
  | "stats" -> `Reply (do_stats t req)
  | "trace" -> `Reply (Trace.to_json ())
  | "close" -> `Close (Json.Obj [ ("closed", Json.Bool true) ])
  | verb -> `Unknown verb

let mint_rid t sid =
  Printf.sprintf "%s.r%d" sid (Atomic.fetch_and_add t.request_counter 1 + 1)

let access t ~t0 ~rid ~sid ~verb ~outcome ~bytes_in ~bytes_out ~latency_s =
  match t.access_log with
  | None -> ()
  | Some log ->
    Log.write log
      [
        ("ts", Json.Float t0);
        ("request", Json.String rid);
        ("session", Json.String sid);
        ("verb", Json.String verb);
        ("outcome", Json.String outcome);
        ("bytes_in", Json.Int bytes_in);
        ("bytes_out", Json.Int bytes_out);
        ("latency_us", Json.Float (latency_s *. 1e6));
      ]

let handle_request t conn fd req ~bytes_in =
  let id = req.Protocol.id in
  let t0 = Unix.gettimeofday () in
  (* request ids are only minted when something will record them, so the
     all-telemetry-off request path stays allocation-identical to PR 8 *)
  let observed = Trace.enabled () || t.access_log <> None in
  let rid = if observed then mint_rid t conn.sid else "" in
  let ctx =
    if Trace.enabled () then
      [ ("request", Json.String rid); ("session", Json.String conn.sid) ]
    else []
  in
  Trace.with_context ctx @@ fun () ->
  let response, closing, outcome =
    Trace.with_span ~name:"server.request" ~cat:"server"
      ~args:[ ("verb", Json.String req.Protocol.verb) ]
    @@ fun () ->
    match dispatch t conn req with
    | `Reply result -> (Protocol.ok ~id result, false, "ok")
    | `Close result -> (Protocol.ok ~id result, true, "ok")
    | `Unknown verb ->
      Metrics.incr c_errors;
      ( Protocol.error ~id ~code:"unknown_verb"
          (Printf.sprintf "unknown verb %S" verb),
        false,
        "unknown_verb" )
    | exception Script.Script_error { line = _; message } ->
      (* the command failed; the session survives *)
      Metrics.incr c_errors;
      (Protocol.error ~id ~code:"script_error" message, false, "script_error")
    | exception Invalid_argument message ->
      Metrics.incr c_errors;
      (Protocol.error ~id ~code:"bad_request" message, false, "bad_request")
    | exception ((Unix.Unix_error _ | Sys_error _) as e) ->
      (* transport trouble: let the connection loop tear down *)
      raise e
    | exception e ->
      Metrics.incr c_errors;
      (Protocol.error ~id ~code:"internal" (Printexc.to_string e), false, "internal")
  in
  Metrics.incr c_requests;
  (* handler domains are long-lived but only the sampler domain's GC
     counters are visible to it: fold this domain's growth into the
     shared counters while the request is still the hot context *)
  Tqwm_obs.Alloc.flush_domain ();
  let bytes_out = Protocol.write_line fd response in
  let dt = Unix.gettimeofday () -. t0 in
  (match List.assoc_opt req.Protocol.verb latency with
  | Some h -> Metrics.observe h (dt *. 1e3)
  | None -> ());
  if dt >= t.slow_threshold then begin
    Metrics.incr c_slow;
    Trace.instant ~name:"server.slow_request" ~cat:"server"
      ~args:
        [
          ("verb", Json.String req.Protocol.verb);
          ("latency_ms", Json.Float (dt *. 1e3));
        ]
      ()
  end;
  if observed then
    access t ~t0 ~rid ~sid:conn.sid ~verb:req.Protocol.verb ~outcome ~bytes_in
      ~bytes_out ~latency_s:dt;
  if closing then `Close else `Continue

let serve_connection t fd =
  Metrics.incr c_connections;
  set_sessions (Atomic.get t.open_conns);
  let finally () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Atomic.decr t.open_conns;
    set_sessions (Atomic.get t.open_conns)
  in
  Fun.protect ~finally @@ fun () ->
  let sid =
    Printf.sprintf "s%d" (Atomic.fetch_and_add t.session_counter 1 + 1)
  in
  let outbuf = Buffer.create 256 in
  let conn =
    { sid; interp = None; outbuf; fmt = Format.formatter_of_buffer outbuf }
  in
  let reader = Protocol.reader fd in
  (* frames that never became requests still get an access-log line
     (verb "-"); [bytes_in] is what the frame put on the wire, 0 when
     the oversized line was discarded unmeasured *)
  let reject ~code ~bytes_in message =
    Metrics.incr c_errors;
    let t0 = Unix.gettimeofday () in
    let rid = if t.access_log <> None then mint_rid t sid else "" in
    let bytes_out =
      Protocol.write_line fd (Protocol.error ~id:Json.Null ~code message)
    in
    access t ~t0 ~rid ~sid ~verb:"-" ~outcome:code ~bytes_in ~bytes_out
      ~latency_s:(Unix.gettimeofday () -. t0)
  in
  let rec loop () =
    match Protocol.read_frame reader with
    | Protocol.Eof -> ()
    | Protocol.Oversized ->
      reject ~code:"oversized_line" ~bytes_in:0
        (Printf.sprintf "request line exceeds %d bytes" Protocol.max_line_bytes);
      loop ()
    | Protocol.Line "" -> loop ()
    | Protocol.Line line -> (
      let bytes_in = String.length line + 1 in
      match Protocol.request_of_line line with
      | Error message ->
        reject ~code:"parse_error" ~bytes_in message;
        loop ()
      | Ok req -> (
        match handle_request t conn fd req ~bytes_in with
        | `Continue -> loop ()
        | `Close -> ()))
  in
  (* a vanished client is a normal way for a session to end *)
  try loop () with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ()

(* ---- accept / worker loops ---- *)

let enqueue t fd =
  Mutex.lock t.qlock;
  Queue.push fd t.queue;
  Metrics.set g_queue_depth (float_of_int (Queue.length t.queue));
  Condition.signal t.qcond;
  Mutex.unlock t.qlock

let dequeue t =
  Mutex.lock t.qlock;
  let rec wait () =
    match Queue.take_opt t.queue with
    | Some fd ->
      Metrics.set g_queue_depth (float_of_int (Queue.length t.queue));
      Some fd
    | None ->
      if Atomic.get t.stopping then None
      else begin
        Condition.wait t.qcond t.qlock;
        wait ()
      end
  in
  let r = wait () in
  Mutex.unlock t.qlock;
  r

(* poll-accept: closing a descriptor does not wake a sibling domain
   blocked in accept(2), so the acceptor must never block indefinitely —
   it selects with a timeout and rechecks the stop flag each lap *)
let rec accept_loop t =
  if Atomic.get t.stopping then ()
  else
    match Unix.select [ t.listen_fd ] [] [] 0.05 with
    | [], _, _ -> accept_loop t
    | exception Unix.Unix_error (EINTR, _, _) -> accept_loop t
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
    | _ -> accept_ready t

and accept_ready t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) ->
    accept_loop t
  | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
    if Atomic.get t.stopping then () else accept_loop t
  | fd, _ ->
    if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
    else begin
      let n = Atomic.fetch_and_add t.open_conns 1 in
      if n >= t.max_sessions then begin
        Atomic.decr t.open_conns;
        Metrics.incr c_errors;
        (try
           ignore
             (Protocol.write_line fd
                (Protocol.error ~id:Json.Null ~code:"server_full"
                   (Printf.sprintf "session limit %d reached" t.max_sessions)))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else enqueue t fd;
      accept_loop t
    end

let worker_loop t =
  let rec loop () =
    match dequeue t with
    | None -> ()
    | Some fd ->
      serve_connection t fd;
      loop ()
  in
  loop ()

(* periodic Series feed; sleeps in short laps so [stop] is prompt *)
let sampler_loop t =
  let rec nap left =
    if left > 0.0 && not (Atomic.get t.stopping) then begin
      Unix.sleepf (Float.min 0.05 left);
      nap (left -. 0.05)
    end
  in
  while not (Atomic.get t.stopping) do
    sample_now ~gc:true t;
    nap t.sample_period
  done

let start ~tech ?graph ?(workers = 1) ?(session_domains = 1) ?(epsilon = 0.0)
    ?(max_sessions = 64) ?access_log ?(slow_threshold = 0.25)
    ?(sample_period = 1.0) address =
  if workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if max_sessions < 1 then invalid_arg "Server.start: max_sessions must be >= 1";
  if not (Float.is_finite sample_period && sample_period > 0.0) then
    invalid_arg "Server.start: sample_period must be finite and > 0";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let model = Models.table tech in
  let cache = Stage_cache.create () in
  let baseline =
    Option.map
      (fun g ->
        let s = Session.create ~model ~cache ~domains:session_domains ~epsilon g in
        (* warm once: forks start from computed arrivals and a full table *)
        ignore (Session.analysis s);
        s)
      graph
  in
  let domain, sockaddr =
    match address with
    | Protocol.Unix_sock _ as a -> (Unix.PF_UNIX, Protocol.sockaddr_of_address a)
    | Protocol.Tcp _ as a -> (Unix.PF_INET, Protocol.sockaddr_of_address a)
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     if domain = Unix.PF_INET then Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd sockaddr;
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      listen_fd;
      bound = Unix.getsockname listen_fd;
      tech;
      model;
      cache;
      baseline;
      session_domains;
      epsilon;
      max_sessions;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stopping = Atomic.make false;
      open_conns = Atomic.make 0;
      started = Unix.gettimeofday ();
      series = Series.create ();
      sample_period;
      access_log = Option.map Log.open_file access_log;
      slow_threshold;
      session_counter = Atomic.make 0;
      request_counter = Atomic.make 0;
      workers;
      acceptor = None;
      sampler = None;
      worker_domains = [];
      stopped = false;
    }
  in
  (* an initial sample so [stats] has an anchor before the first tick *)
  sample_now t;
  t.worker_domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.sampler <- Some (Domain.spawn (fun () -> sampler_loop t));
  t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let address t = Protocol.string_of_sockaddr t.bound

let active_sessions t = Atomic.get t.open_conns

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Mutex.lock t.qlock;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qlock;
    (match t.acceptor with Some d -> Domain.join d | None -> ());
    (match t.sampler with Some d -> Domain.join d | None -> ());
    List.iter Domain.join t.worker_domains;
    Option.iter Log.close t.access_log;
    (* connections accepted but never picked up *)
    Mutex.lock t.qlock;
    Queue.iter
      (fun fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Atomic.decr t.open_conns)
      t.queue;
    Queue.clear t.queue;
    Metrics.set g_queue_depth 0.0;
    Mutex.unlock t.qlock;
    match t.bound with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Unix.ADDR_INET _ -> ()
  end
