module Json = Tqwm_obs.Json
module Metrics = Tqwm_obs.Metrics
module Models = Tqwm_device.Models
module Timing_graph = Tqwm_sta.Timing_graph
module Stage_cache = Tqwm_sta.Stage_cache
module Arrival = Tqwm_sta.Arrival
module Path_enum = Tqwm_sta.Path_enum
module Report = Tqwm_sta.Report
module Session = Tqwm_incr.Session
module Script = Tqwm_incr.Script

let ps = 1e12

(* ---- telemetry ---- *)

let c_requests = Metrics.counter "server.requests"
let c_errors = Metrics.counter "server.errors"
let c_connections = Metrics.counter "server.connections"
let g_sessions = Metrics.gauge "server.sessions"
let g_queue_depth = Metrics.gauge "server.queue_depth"

let latency_bounds =
  [| 0.05; 0.1; 0.25; 0.5; 1.0; 2.5; 5.0; 10.0; 25.0; 50.0; 100.0; 250.0 |]

(* per-verb latency histograms, pre-registered so an unknown verb never
   mints a metric name *)
let verbs =
  [
    "load"; "edit"; "script"; "report"; "query"; "timing"; "slack"; "explain";
    "document"; "metrics"; "close";
  ]

let latency =
  List.map
    (fun v -> (v, Metrics.histogram ("server.latency_ms." ^ v) ~bounds:latency_bounds))
    verbs

(* ---- server state ---- *)

type t = {
  listen_fd : Unix.file_descr;
  bound : Unix.sockaddr;
  tech : Tqwm_device.Tech.t;
  model : Tqwm_device.Device_model.t;
  cache : Stage_cache.t;  (** shared solve table; sessions hold forks *)
  baseline : Session.t option;
  session_domains : int;
  epsilon : float;
  max_sessions : int;
  queue : Unix.file_descr Queue.t;
  qlock : Mutex.t;
  qcond : Condition.t;
  stopping : bool Atomic.t;
  open_conns : int Atomic.t;  (** accepted and not yet torn down *)
  mutable acceptor : unit Domain.t option;
  mutable worker_domains : unit Domain.t list;
  mutable stopped : bool;
}

(* ---- per-connection session ---- *)

type conn = {
  mutable interp : Script.Interp.t option;
  outbuf : Buffer.t;
  fmt : Format.formatter;
}

let take_output conn =
  Format.pp_print_flush conn.fmt ();
  let s = Buffer.contents conn.outbuf in
  Buffer.clear conn.outbuf;
  s

let the_interp conn =
  match conn.interp with
  | Some i -> i
  | None -> invalid_arg "no session: send a \"load\" request first"

let int_member req name =
  match Protocol.arg req name with
  | Some (Json.Int v) -> Some v
  | Some _ -> invalid_arg (Printf.sprintf "%S must be an integer" name)
  | None -> None

let float_member req name =
  match Protocol.arg req name with
  | Some (Json.Float v) -> Some v
  | Some (Json.Int v) -> Some (float_of_int v)
  | Some _ -> invalid_arg (Printf.sprintf "%S must be a number" name)
  | None -> None

let string_member req name =
  match Protocol.arg req name with
  | Some (Json.String v) -> Some v
  | Some _ -> invalid_arg (Printf.sprintf "%S must be a string" name)
  | None -> None

(* the clock the session's timing verbs run under when the script never
   set one: the critical path sets the clock (zero-slack normalization),
   1 ns on degenerate graphs — the rule every offline report applies *)
let effective_clock interp session =
  match Script.Interp.clock_period interp with
  | Some cp -> cp
  | None ->
    let wa = (Session.analysis session).Arrival.worst_arrival in
    if wa > 0.0 then wa else 1e-9

let do_load t conn req =
  let make_fresh () =
    Script.Interp.create ~tech:t.tech ~model:t.model
      ~cache:(Stage_cache.fork t.cache) ~domains:t.session_domains
      ~epsilon:t.epsilon ~out:conn.fmt ()
  in
  let interp, baseline =
    match string_member req "graph" with
    | Some "" -> (make_fresh (), false)
    | Some spec ->
      let i = make_fresh () in
      Script.Interp.feed i ("graph " ^ spec);
      (i, false)
    | None -> (
      match t.baseline with
      | None ->
        invalid_arg
          "no baseline graph (server started without --graph); pass \"graph\""
      | Some b ->
        let session = Session.fork ~domains:t.session_domains b in
        ( Script.Interp.create ~tech:t.tech ~model:t.model
            ~domains:t.session_domains ~epsilon:t.epsilon ~out:conn.fmt ~session (),
          true ))
  in
  conn.interp <- Some interp;
  let stages, connections =
    if Script.Interp.has_session interp then
      let g = Session.graph (Script.Interp.session interp) in
      (Timing_graph.num_stages g, Timing_graph.num_connections g)
    else (0, 0)
  in
  Json.Obj
    [
      ("stages", Json.Int stages);
      ("connections", Json.Int connections);
      ("baseline", Json.Bool baseline);
      ("output", Json.String (take_output conn));
    ]

let do_line conn req =
  let line =
    match string_member req "line" with
    | Some l -> l
    | None -> invalid_arg "missing \"line\" (a script command)"
  in
  Script.Interp.feed (the_interp conn) line;
  Json.Obj [ ("output", Json.String (take_output conn)) ]

let do_report conn =
  Script.Interp.feed (the_interp conn) "report";
  Json.Obj [ ("output", Json.String (take_output conn)) ]

let do_query conn req =
  let get name =
    match int_member req name with
    | Some v -> v
    | None -> invalid_arg (Printf.sprintf "missing %S (a stage id)" name)
  in
  let from_stage = get "from" and to_stage = get "to" in
  let s = Script.Interp.session (the_interp conn) in
  match Session.query s ~from_stage ~to_stage with
  | None -> Json.Obj [ ("found", Json.Bool false) ]
  | Some q ->
    Json.Obj
      [
        ("found", Json.Bool true);
        ("arrival_ps", Json.Float (q.Session.arrival *. ps));
        ("stages", Json.List (List.map (fun i -> Json.Int i) q.Session.stages));
      ]

let do_timing conn req =
  let k = Option.value (int_member req "k") ~default:1 in
  let interp = the_interp conn in
  Script.timing_json
    ?clock_period:(Script.Interp.clock_period interp)
    ~k
    (Script.Interp.session interp)

let do_slack conn req =
  let interp = the_interp conn in
  let s = Script.Interp.session interp in
  let clock_period =
    match float_member req "clock_period_ps" with
    | Some p when Float.is_finite p && p > 0.0 -> p *. 1e-12
    | Some _ -> invalid_arg "\"clock_period_ps\" must be finite and > 0"
    | None -> effective_clock interp s
  in
  let r = Session.required s ~clock_period in
  Json.Obj
    [
      ("clock_period_ps", Json.Float (clock_period *. ps));
      ("wns_ps", Json.Float (r.Arrival.wns *. ps));
      ("tns_ps", Json.Float (r.Arrival.tns *. ps));
      ("worst_slack_ps", Json.Float (r.Arrival.req_worst_slack *. ps));
      ("endpoints", Json.Int (Array.length r.Arrival.endpoints));
    ]

(* the critical cone into one pin, reported as a single-path
   [tqwm-report/1] document: walk the critical-fanin chain backward from
   the pin, then attribute it stage by stage through the session's own
   cached solves *)
let do_explain conn req =
  let pin =
    match int_member req "pin" with
    | Some p -> p
    | None -> invalid_arg "missing \"pin\" (a stage id)"
  in
  let interp = the_interp conn in
  let s = Script.Interp.session interp in
  let graph = Session.graph s in
  let analysis = Session.analysis s in
  let n = Array.length analysis.Arrival.timings in
  if pin < 0 || pin >= n then
    invalid_arg (Printf.sprintf "\"pin\" %d out of range (graph has %d stages)" pin n);
  let rec walk acc id =
    match analysis.Arrival.timings.(id).Arrival.critical_fanin with
    | None -> id :: acc
    | Some driver -> walk (id :: acc) driver
  in
  let stages = walk [] pin in
  let clock_period = effective_clock interp s in
  let arrival = analysis.Arrival.timings.(pin).Arrival.arrival_out in
  let path = { Path_enum.stages; arrival; slack = clock_period -. arrival } in
  let explained = Session.explain s path in
  let required = Session.required s ~clock_period in
  Report.timing_to_json graph analysis required [ explained ]

let dispatch t conn req =
  match req.Protocol.verb with
  | "load" -> `Reply (do_load t conn req)
  | "edit" | "script" -> `Reply (do_line conn req)
  | "report" -> `Reply (do_report conn)
  | "query" -> `Reply (do_query conn req)
  | "timing" -> `Reply (do_timing conn req)
  | "slack" -> `Reply (do_slack conn req)
  | "explain" -> `Reply (do_explain conn req)
  | "document" -> `Reply (Script.Interp.document (the_interp conn))
  | "metrics" -> `Reply (Metrics.snapshot ())
  | "close" -> `Close (Json.Obj [ ("closed", Json.Bool true) ])
  | verb -> `Unknown verb

let handle_request t conn fd req =
  let id = req.Protocol.id in
  let t0 = Unix.gettimeofday () in
  let response, closing =
    match dispatch t conn req with
    | `Reply result -> (Protocol.ok ~id result, false)
    | `Close result -> (Protocol.ok ~id result, true)
    | `Unknown verb ->
      Metrics.incr c_errors;
      ( Protocol.error ~id ~code:"unknown_verb"
          (Printf.sprintf "unknown verb %S" verb),
        false )
    | exception Script.Script_error { line = _; message } ->
      (* the command failed; the session survives *)
      Metrics.incr c_errors;
      (Protocol.error ~id ~code:"script_error" message, false)
    | exception Invalid_argument message ->
      Metrics.incr c_errors;
      (Protocol.error ~id ~code:"bad_request" message, false)
    | exception ((Unix.Unix_error _ | Sys_error _) as e) ->
      (* transport trouble: let the connection loop tear down *)
      raise e
    | exception e ->
      Metrics.incr c_errors;
      (Protocol.error ~id ~code:"internal" (Printexc.to_string e), false)
  in
  Metrics.incr c_requests;
  (match List.assoc_opt req.Protocol.verb latency with
  | Some h -> Metrics.observe h ((Unix.gettimeofday () -. t0) *. 1e3)
  | None -> ());
  Protocol.write_line fd response;
  if closing then `Close else `Continue

let serve_connection t fd =
  Metrics.incr c_connections;
  Metrics.set g_sessions (float_of_int (Atomic.get t.open_conns));
  let finally () =
    (try Unix.close fd with Unix.Unix_error _ -> ());
    Atomic.decr t.open_conns;
    Metrics.set g_sessions (float_of_int (Atomic.get t.open_conns))
  in
  Fun.protect ~finally @@ fun () ->
  let outbuf = Buffer.create 256 in
  let conn = { interp = None; outbuf; fmt = Format.formatter_of_buffer outbuf } in
  let reader = Protocol.reader fd in
  let rec loop () =
    match Protocol.read_frame reader with
    | Protocol.Eof -> ()
    | Protocol.Oversized ->
      Metrics.incr c_errors;
      Protocol.write_line fd
        (Protocol.error ~id:Json.Null ~code:"oversized_line"
           (Printf.sprintf "request line exceeds %d bytes" Protocol.max_line_bytes));
      loop ()
    | Protocol.Line "" -> loop ()
    | Protocol.Line line -> (
      match Protocol.request_of_line line with
      | Error message ->
        Metrics.incr c_errors;
        Protocol.write_line fd (Protocol.error ~id:Json.Null ~code:"parse_error" message);
        loop ()
      | Ok req -> (
        match handle_request t conn fd req with
        | `Continue -> loop ()
        | `Close -> ()))
  in
  (* a vanished client is a normal way for a session to end *)
  try loop () with Unix.Unix_error ((EPIPE | ECONNRESET), _, _) -> ()

(* ---- accept / worker loops ---- *)

let enqueue t fd =
  Mutex.lock t.qlock;
  Queue.push fd t.queue;
  Metrics.set g_queue_depth (float_of_int (Queue.length t.queue));
  Condition.signal t.qcond;
  Mutex.unlock t.qlock

let dequeue t =
  Mutex.lock t.qlock;
  let rec wait () =
    match Queue.take_opt t.queue with
    | Some fd ->
      Metrics.set g_queue_depth (float_of_int (Queue.length t.queue));
      Some fd
    | None ->
      if Atomic.get t.stopping then None
      else begin
        Condition.wait t.qcond t.qlock;
        wait ()
      end
  in
  let r = wait () in
  Mutex.unlock t.qlock;
  r

(* poll-accept: closing a descriptor does not wake a sibling domain
   blocked in accept(2), so the acceptor must never block indefinitely —
   it selects with a timeout and rechecks the stop flag each lap *)
let rec accept_loop t =
  if Atomic.get t.stopping then ()
  else
    match Unix.select [ t.listen_fd ] [] [] 0.05 with
    | [], _, _ -> accept_loop t
    | exception Unix.Unix_error (EINTR, _, _) -> accept_loop t
    | exception Unix.Unix_error ((EBADF | EINVAL), _, _) -> ()
    | _ -> accept_ready t

and accept_ready t =
  match Unix.accept ~cloexec:true t.listen_fd with
  | exception Unix.Unix_error ((EINTR | EAGAIN | EWOULDBLOCK), _, _) ->
    accept_loop t
  | exception Unix.Unix_error ((EBADF | EINVAL | ECONNABORTED), _, _) ->
    if Atomic.get t.stopping then () else accept_loop t
  | fd, _ ->
    if Atomic.get t.stopping then (try Unix.close fd with Unix.Unix_error _ -> ())
    else begin
      let n = Atomic.fetch_and_add t.open_conns 1 in
      if n >= t.max_sessions then begin
        Atomic.decr t.open_conns;
        Metrics.incr c_errors;
        (try
           Protocol.write_line fd
             (Protocol.error ~id:Json.Null ~code:"server_full"
                (Printf.sprintf "session limit %d reached" t.max_sessions))
         with Unix.Unix_error _ -> ());
        try Unix.close fd with Unix.Unix_error _ -> ()
      end
      else enqueue t fd;
      accept_loop t
    end

let worker_loop t =
  let rec loop () =
    match dequeue t with
    | None -> ()
    | Some fd ->
      serve_connection t fd;
      loop ()
  in
  loop ()

let start ~tech ?graph ?(workers = 1) ?(session_domains = 1) ?(epsilon = 0.0)
    ?(max_sessions = 64) address =
  if workers < 1 then invalid_arg "Server.start: workers must be >= 1";
  if max_sessions < 1 then invalid_arg "Server.start: max_sessions must be >= 1";
  Sys.set_signal Sys.sigpipe Sys.Signal_ignore;
  let model = Models.table tech in
  let cache = Stage_cache.create () in
  let baseline =
    Option.map
      (fun g ->
        let s = Session.create ~model ~cache ~domains:session_domains ~epsilon g in
        (* warm once: forks start from computed arrivals and a full table *)
        ignore (Session.analysis s);
        s)
      graph
  in
  let domain, sockaddr =
    match address with
    | Protocol.Unix_sock _ as a -> (Unix.PF_UNIX, Protocol.sockaddr_of_address a)
    | Protocol.Tcp _ as a -> (Unix.PF_INET, Protocol.sockaddr_of_address a)
  in
  let listen_fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try
     if domain = Unix.PF_INET then Unix.setsockopt listen_fd Unix.SO_REUSEADDR true;
     Unix.bind listen_fd sockaddr;
     Unix.listen listen_fd 64
   with e ->
     (try Unix.close listen_fd with Unix.Unix_error _ -> ());
     raise e);
  let t =
    {
      listen_fd;
      bound = Unix.getsockname listen_fd;
      tech;
      model;
      cache;
      baseline;
      session_domains;
      epsilon;
      max_sessions;
      queue = Queue.create ();
      qlock = Mutex.create ();
      qcond = Condition.create ();
      stopping = Atomic.make false;
      open_conns = Atomic.make 0;
      acceptor = None;
      worker_domains = [];
      stopped = false;
    }
  in
  t.worker_domains <- List.init workers (fun _ -> Domain.spawn (fun () -> worker_loop t));
  t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t));
  t

let address t = Protocol.string_of_sockaddr t.bound

let active_sessions t = Atomic.get t.open_conns

let stop t =
  if not t.stopped then begin
    t.stopped <- true;
    Atomic.set t.stopping true;
    (try Unix.close t.listen_fd with Unix.Unix_error _ -> ());
    Mutex.lock t.qlock;
    Condition.broadcast t.qcond;
    Mutex.unlock t.qlock;
    (match t.acceptor with Some d -> Domain.join d | None -> ());
    List.iter Domain.join t.worker_domains;
    (* connections accepted but never picked up *)
    Mutex.lock t.qlock;
    Queue.iter
      (fun fd ->
        (try Unix.close fd with Unix.Unix_error _ -> ());
        Atomic.decr t.open_conns)
      t.queue;
    Queue.clear t.queue;
    Metrics.set g_queue_depth 0.0;
    Mutex.unlock t.qlock;
    match t.bound with
    | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ())
    | Unix.ADDR_INET _ -> ()
  end
