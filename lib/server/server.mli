(** The timing daemon: one frozen baseline timing graph, its schedule
    and stage cache loaded once and shared read-only, N worker domains
    serving M concurrent client connections, each connection holding its
    own copy-on-write {!Tqwm_incr.Session} overlay (edits, clock period,
    cutoff epsilon) — sessions fully isolated from each other while the
    immutable graph, level schedule and memoized QWM solves are shared.

    One connection = one session. The per-connection interpreter is
    {e literally} {!Tqwm_incr.Script.Interp} — the same code path as an
    offline [qwm_sim --incr] run — so the [tqwm-incr-report/1] and
    [tqwm-report/1] documents a server session returns are byte-identical
    to an offline replay of the same command sequence, across worker
    counts and client interleavings.

    {2 Protocol verbs}

    Over {!Protocol}'s newline-delimited JSON:

    - [load] — open the session. [{"graph": "decoder 3 2"}] seeds a
      fresh workload; [{"graph": ""}] opens an empty session (script
      replay: the first [script] line may then be a [graph] command);
      with no [graph] member the session is a {!Tqwm_incr.Session.fork}
      of the server's baseline (error when the server has none).
    - [edit] / [script] — [{"line": "resize 3 0 1.5"}]: run one script
      command ({!Tqwm_incr.Script} grammar: [stage], [connect],
      [resize], [load], [swap], [retime], [clock], [report], ...);
      the command's progress text returns as [output].
    - [report] — shorthand for [script {"line": "report"}].
    - [query] — [{"from": 0, "to": 7}]: worst path between two stages.
    - [timing] — [{"k": 3}]: the [tqwm-report/1] timing document
      ({!Tqwm_incr.Script.timing_json}) under the session's clock.
    - [slack] — [{"clock_period_ps": 800}] (optional): WNS/TNS summary.
    - [explain] — [{"pin": 7}]: the critical cone into one stage as a
      single-path [tqwm-report/1] document.
    - [document] — the session's [tqwm-incr-report/1] document.
    - [metrics] — the server process's {!Tqwm_obs.Metrics.snapshot}.
    - [close] — end the session (equivalently: just disconnect).

    Malformed JSON, unknown verbs, oversized lines and failing commands
    produce structured [{"ok": false, "error": ...}] responses and leave
    both the connection (where possible) and the daemon serving; a
    mid-request disconnect tears the session down and frees its slot.

    {2 Telemetry}

    [server.requests] / [server.errors] / [server.connections] counters,
    [server.sessions] (live connections) and [server.queue_depth]
    (accepted, not yet picked up by a worker) gauges, and per-verb
    [server.latency_ms.<verb>] histograms. *)

type t

val start :
  tech:Tqwm_device.Tech.t ->
  ?graph:Tqwm_sta.Timing_graph.t ->
  ?workers:int ->
  ?session_domains:int ->
  ?epsilon:float ->
  ?max_sessions:int ->
  Protocol.address ->
  t
(** Bind, warm the baseline and start serving. [graph] is the shared
    baseline: its full analysis runs once here, so every [load]ed fork
    starts from computed arrivals and a warm cache. [workers] (default 1)
    is the serving domain count; [session_domains] (default 1) is the
    [domains] each session's own recomputes use; [epsilon] (seconds,
    default 0) is the sessions' cutoff tolerance; [max_sessions]
    (default 64) bounds concurrently open connections — beyond it new
    connections are answered with a [server_full] error and closed.
    Ignores [SIGPIPE] process-wide (hung-up clients must read as
    [EPIPE], not kill the daemon).
    @raise Unix.Unix_error when binding fails (address in use, ...). *)

val address : t -> string
(** The bound address in {!Protocol.parse_address} syntax, with the
    actual port when TCP port 0 was requested. *)

val active_sessions : t -> int
(** Connections currently open (served or awaiting a worker). *)

val stop : t -> unit
(** Stop accepting, wait for in-flight connections to finish, join all
    domains, close and (for Unix sockets) unlink. Clients must
    disconnect for [stop] to return. Idempotent. *)
