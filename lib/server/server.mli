(** The timing daemon: one frozen baseline timing graph, its schedule
    and stage cache loaded once and shared read-only, N worker domains
    serving M concurrent client connections, each connection holding its
    own copy-on-write {!Tqwm_incr.Session} overlay (edits, clock period,
    cutoff epsilon) — sessions fully isolated from each other while the
    immutable graph, level schedule and memoized QWM solves are shared.

    One connection = one session. The per-connection interpreter is
    {e literally} {!Tqwm_incr.Script.Interp} — the same code path as an
    offline [qwm_sim --incr] run — so the [tqwm-incr-report/1] and
    [tqwm-report/1] documents a server session returns are byte-identical
    to an offline replay of the same command sequence, across worker
    counts and client interleavings.

    {2 Protocol verbs}

    Over {!Protocol}'s newline-delimited JSON:

    - [load] — open the session. [{"graph": "decoder 3 2"}] seeds a
      fresh workload; [{"graph": ""}] opens an empty session (script
      replay: the first [script] line may then be a [graph] command);
      with no [graph] member the session is a {!Tqwm_incr.Session.fork}
      of the server's baseline (error when the server has none).
    - [edit] / [script] — [{"line": "resize 3 0 1.5"}]: run one script
      command ({!Tqwm_incr.Script} grammar: [stage], [connect],
      [resize], [load], [swap], [retime], [clock], [report], ...);
      the command's progress text returns as [output].
    - [report] — shorthand for [script {"line": "report"}].
    - [query] — [{"from": 0, "to": 7}]: worst path between two stages.
    - [timing] — [{"k": 3}]: the [tqwm-report/1] timing document
      ({!Tqwm_incr.Script.timing_json}) under the session's clock.
    - [slack] — [{"clock_period_ps": 800}] (optional): WNS/TNS summary.
    - [explain] — [{"pin": 7}]: the critical cone into one stage as a
      single-path [tqwm-report/1] document.
    - [document] — the session's [tqwm-incr-report/1] document.
    - [metrics] — the server {e process}'s {!Tqwm_obs.Metrics.snapshot}.
      The registry is process-global: counters, gauges and histograms
      are shared across every session and worker domain, so the numbers
      are daemon-wide totals, {e not} per-session figures.
    - [health] — liveness summary: [ready], [uptime_s], [sessions] /
      [max_sessions], [workers], [session_domains], [tracing],
      [access_log].
    - [stats] — [{"window_s": 60}] (optional): rates over the rolling
      {!Tqwm_obs.Series} window — [qps], [errors_per_s], per-verb
      request counts with p50/p99 latency estimates, session occupancy
      and GC rates.
    - [trace] — snapshot of the in-memory trace buffer as a Chrome
      trace document (empty unless the daemon runs with tracing
      enabled).
    - [close] — end the session (equivalently: just disconnect).

    Malformed JSON, unknown verbs, oversized lines and failing commands
    produce structured [{"ok": false, "error": ...}] responses and leave
    both the connection (where possible) and the daemon serving; a
    mid-request disconnect tears the session down and frees its slot.

    {2 Request-scoped observability}

    Every accepted connection is assigned a session id ([s7]) and every
    request a request id ([s7.r42]). When tracing is enabled, both ride
    as ambient {!Tqwm_obs.Trace.with_context} args on every span the
    request produces — from the [server.request] dispatch span through
    [script.command] and [incr.recompute] down to individual
    [sta.stage] solves, across the session's worker domains — so a
    multi-domain daemon exports one merged Chrome trace attributable
    request by request. When an access log is configured, each request
    additionally appends one JSONL record: [ts], [request], [session],
    [verb], [outcome] ("ok" or the error code), [bytes_in],
    [bytes_out], [latency_us]. Requests at or above the slow-request
    threshold also emit a [server.slow_request] trace instant and bump
    [server.slow_requests].

    {2 Telemetry}

    All instruments live in the process-global registry:
    [server.requests] / [server.errors] / [server.connections] /
    [server.slow_requests] counters, [server.sessions] and its synonym
    [server.sessions_active] (live connections), [server.queue_depth]
    (accepted, not yet picked up by a worker) and
    [server.uptime_seconds] gauges, and per-verb
    [server.latency_ms.<verb>] histograms. A sampler domain snapshots
    the registry into the rolling window every [sample_period] seconds;
    the same registry renders to Prometheus text format via
    {!Tqwm_obs.Prometheus}. *)

type t

val start :
  tech:Tqwm_device.Tech.t ->
  ?graph:Tqwm_sta.Timing_graph.t ->
  ?workers:int ->
  ?session_domains:int ->
  ?epsilon:float ->
  ?max_sessions:int ->
  ?access_log:string ->
  ?slow_threshold:float ->
  ?sample_period:float ->
  Protocol.address ->
  t
(** Bind, warm the baseline and start serving. [graph] is the shared
    baseline: its full analysis runs once here, so every [load]ed fork
    starts from computed arrivals and a warm cache. [workers] (default 1)
    is the serving domain count; [session_domains] (default 1) is the
    [domains] each session's own recomputes use; [epsilon] (seconds,
    default 0) is the sessions' cutoff tolerance; [max_sessions]
    (default 64) bounds concurrently open connections — beyond it new
    connections are answered with a [server_full] error and closed.
    [access_log] appends one JSONL record per request to the given path
    (created if missing); [slow_threshold] (seconds, default 0.25) is
    the latency at which a request counts as slow; [sample_period]
    (seconds, default 1) is the rolling-window sampling interval behind
    the [stats] verb. Ignores [SIGPIPE] process-wide (hung-up clients
    must read as [EPIPE], not kill the daemon).
    @raise Unix.Unix_error when binding fails (address in use, ...). *)

val address : t -> string
(** The bound address in {!Protocol.parse_address} syntax, with the
    actual port when TCP port 0 was requested. *)

val active_sessions : t -> int
(** Connections currently open (served or awaiting a worker). *)

val stop : t -> unit
(** Stop accepting, wait for in-flight connections to finish, join all
    domains, close and (for Unix sockets) unlink. Clients must
    disconnect for [stop] to return. Idempotent. *)
