module Json = Tqwm_obs.Json

let max_line_bytes = 1 lsl 20

(* ---- addresses ---- *)

type address = Unix_sock of string | Tcp of Unix.inet_addr * int

let parse_address spec =
  let fail () =
    invalid_arg
      (Printf.sprintf "bad address %S: expected unix:PATH or HOST:PORT" spec)
  in
  match String.index_opt spec ':' with
  | None -> fail ()
  | Some _ when String.length spec > 5 && String.sub spec 0 5 = "unix:" ->
    let path = String.sub spec 5 (String.length spec - 5) in
    if path = "" then fail ();
    Unix_sock path
  | Some _ ->
    (* split on the last colon so numeric hosts keep their dots *)
    let i = String.rindex spec ':' in
    let host = String.sub spec 0 i in
    let port = String.sub spec (i + 1) (String.length spec - i - 1) in
    (match int_of_string_opt port with
    | None -> fail ()
    | Some port when port < 0 || port > 0xffff -> fail ()
    | Some port ->
      let addr =
        if host = "" then Unix.inet_addr_loopback
        else
          match Unix.inet_addr_of_string host with
          | a -> a
          | exception Failure _ -> (
            match Unix.gethostbyname host with
            | { Unix.h_addr_list = [||]; _ } -> fail ()
            | { Unix.h_addr_list; _ } -> h_addr_list.(0)
            | exception Not_found -> fail ())
      in
      Tcp (addr, port))

let sockaddr_of_address = function
  | Unix_sock path -> Unix.ADDR_UNIX path
  | Tcp (addr, port) -> Unix.ADDR_INET (addr, port)

let string_of_sockaddr = function
  | Unix.ADDR_UNIX path -> "unix:" ^ path
  | Unix.ADDR_INET (addr, port) ->
    Printf.sprintf "%s:%d" (Unix.string_of_inet_addr addr) port

(* ---- buffered line reader ---- *)

type reader = { fd : Unix.file_descr; buf : Buffer.t; chunk : Bytes.t }

let reader fd = { fd; buf = Buffer.create 4096; chunk = Bytes.create 65536 }

type frame = Line of string | Oversized | Eof

let rec refill r =
  match Unix.read r.fd r.chunk 0 (Bytes.length r.chunk) with
  | 0 -> 0
  | n -> n
  | exception Unix.Unix_error (EINTR, _, _) -> refill r
  | exception Unix.Unix_error ((ECONNRESET | EPIPE), _, _) -> 0

(* the line is gone; eat bytes until its newline so the next frame starts
   clean *)
let rec drain r =
  match refill r with
  | 0 -> Eof
  | n -> (
    match Bytes.index_from_opt r.chunk 0 '\n' with
    | Some i when i < n ->
      Buffer.add_subbytes r.buf r.chunk (i + 1) (n - i - 1);
      Oversized
    | Some _ | None -> drain r)

let rec read_frame r =
  let s = Buffer.contents r.buf in
  match String.index_opt s '\n' with
  | Some i ->
    let line = String.sub s 0 i in
    Buffer.clear r.buf;
    Buffer.add_substring r.buf s (i + 1) (String.length s - i - 1);
    if i > max_line_bytes then Oversized else Line line
  | None ->
    if Buffer.length r.buf > max_line_bytes then begin
      Buffer.clear r.buf;
      drain r
    end
    else begin
      match refill r with
      | 0 -> Eof
      | n ->
        Buffer.add_subbytes r.buf r.chunk 0 n;
        read_frame r
    end

let write_line fd json =
  let s = Json.to_string json ^ "\n" in
  let b = Bytes.unsafe_of_string s in
  let len = Bytes.length b in
  let rec loop off =
    if off < len then begin
      match Unix.write fd b off (len - off) with
      | n -> loop (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> loop off
    end
  in
  loop 0;
  len

(* ---- requests and responses ---- *)

type request = { id : Json.t; verb : string; body : Json.t }

let request_of_line line =
  match Json.of_string line with
  | exception Json.Parse_error msg -> Error ("invalid JSON: " ^ msg)
  | Json.Obj _ as body -> (
    let id = Option.value (Json.member "id" body) ~default:Json.Null in
    match Json.member "verb" body with
    | Some (Json.String verb) when verb <> "" -> Ok { id; verb; body }
    | Some _ -> Error "\"verb\" must be a non-empty string"
    | None -> Error "request object has no \"verb\" member")
  | _ -> Error "request must be a JSON object"

let arg req name = Json.member name req.body

let ok ~id result =
  Json.Obj [ ("id", id); ("ok", Json.Bool true); ("result", result) ]

let error ~id ~code message =
  Json.Obj
    [
      ("id", id);
      ("ok", Json.Bool false);
      ( "error",
        Json.Obj [ ("code", Json.String code); ("message", Json.String message) ] );
    ]
