(** Client side of the {!Protocol}: connect, exchange one-line JSON
    requests, and replay whole [--incr] scripts — the shared engine of
    the [qwm_client] tool, the protocol tests and the server bench. *)

module Json = Tqwm_obs.Json

type t

exception Server_error of { code : string; message : string }
(** A structured [{"ok": false}] response ({!Protocol.error} codes). *)

exception Protocol_failure of string
(** The transport broke: connection closed mid-response, or the server
    answered something that is not a response. *)

val connect : string -> t
(** Dial ["unix:PATH"] or ["HOST:PORT"].
    @raise Invalid_argument on a malformed address.
    @raise Unix.Unix_error when connecting fails. *)

val close : t -> unit
(** Best-effort [close] verb, then close the socket. Idempotent. *)

val request : t -> string -> (string * Json.t) list -> Json.t
(** [request t verb args] sends one request (with a fresh integer [id])
    and blocks for its response, returning the [result] member.
    @raise Server_error on an [ok: false] response.
    @raise Protocol_failure on transport or framing trouble. *)

val request_raw : t -> Json.t -> Json.t option
(** Ship an arbitrary JSON value as the request line and return the raw
    response object ([None] on EOF) — no id bookkeeping, no error
    decoding. The protocol robustness tests' escape hatch. *)

val send_line : t -> string -> unit
(** Ship raw bytes plus a newline — for exercising the server's
    malformed-input handling. *)

val recv_response : t -> Json.t option
(** Read one response line ([None] on EOF). *)

val health : t -> Json.t
(** The [health] verb's result object. *)

val stats : ?window_s:float -> t -> Json.t
(** The [stats] verb's result object over the given trailing window
    (server default: 60 s). *)

type replayed = {
  output : string;  (** concatenated [output] text of every command *)
  document : Json.t;  (** the final [tqwm-incr-report/1] document *)
  timing : Json.t option;
      (** the [tqwm-report/1] document under the script's clock —
          present when the script set one (or [k] was forced) *)
}

val replay : ?k:int -> t -> string -> replayed
(** Run a whole [--incr] script text through a fresh empty session:
    [load {"graph": ""}], one [script] request per line, then
    [document] — and [timing] (with [k], default 1) when the script set
    a clock. Byte-for-byte the documents an offline
    [qwm_sim --incr --json --timing-json] run of the same script
    produces.
    @raise Server_error with the failing line's message, as the offline
    run would report it. *)
