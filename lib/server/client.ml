module Json = Tqwm_obs.Json

type t = {
  fd : Unix.file_descr;
  reader : Protocol.reader;
  mutable next_id : int;
  mutable closed : bool;
}

exception Server_error of { code : string; message : string }
exception Protocol_failure of string

let connect spec =
  let address = Protocol.parse_address spec in
  let domain =
    match address with Protocol.Unix_sock _ -> Unix.PF_UNIX | Protocol.Tcp _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (try Unix.connect fd (Protocol.sockaddr_of_address address)
   with e ->
     (try Unix.close fd with Unix.Unix_error _ -> ());
     raise e);
  { fd; reader = Protocol.reader fd; next_id = 0; closed = false }

let send_line t line =
  let b = Bytes.unsafe_of_string (line ^ "\n") in
  let len = Bytes.length b in
  let rec loop off =
    if off < len then begin
      match Unix.write t.fd b off (len - off) with
      | n -> loop (off + n)
      | exception Unix.Unix_error (EINTR, _, _) -> loop off
    end
  in
  loop 0

let recv_response t =
  match Protocol.read_frame t.reader with
  | Protocol.Eof -> None
  | Protocol.Oversized -> raise (Protocol_failure "oversized response line")
  | Protocol.Line line -> (
    match Json.of_string line with
    | j -> Some j
    | exception Json.Parse_error m ->
      raise (Protocol_failure ("unparseable response: " ^ m)))

let request_raw t json =
  ignore (Protocol.write_line t.fd json);
  recv_response t

let request t verb args =
  let id = t.next_id in
  t.next_id <- id + 1;
  let response =
    match
      request_raw t
        (Json.Obj (("id", Json.Int id) :: ("verb", Json.String verb) :: args))
    with
    | Some r -> r
    | None -> raise (Protocol_failure "connection closed before response")
  in
  (match Json.member "id" response with
  | Some (Json.Int got) when got = id -> ()
  | _ -> raise (Protocol_failure "response id does not match request"));
  match Json.member "ok" response with
  | Some (Json.Bool true) ->
    Option.value (Json.member "result" response) ~default:Json.Null
  | Some (Json.Bool false) ->
    let code, message =
      match Json.member "error" response with
      | Some err ->
        ( (match Json.member "code" err with Some (Json.String c) -> c | _ -> "unknown"),
          match Json.member "message" err with Some (Json.String m) -> m | _ -> "" )
      | None -> ("unknown", "")
    in
    raise (Server_error { code; message })
  | _ -> raise (Protocol_failure "response has no boolean \"ok\" member")

let close t =
  if not t.closed then begin
    t.closed <- true;
    (try ignore (request t "close" []) with
    | Server_error _ | Protocol_failure _ | Unix.Unix_error _ -> ());
    try Unix.close t.fd with Unix.Unix_error _ -> ()
  end

let health t = request t "health" []

let stats ?window_s t =
  let args =
    match window_s with
    | None -> []
    | Some w -> [ ("window_s", Json.Float w) ]
  in
  request t "stats" args

type replayed = { output : string; document : Json.t; timing : Json.t option }

let replay ?(k = 1) t text =
  ignore (request t "load" [ ("graph", Json.String "") ]);
  let out = Buffer.create 1024 in
  let take result =
    match Json.member "output" result with
    | Some (Json.String s) -> Buffer.add_string out s
    | Some _ | None -> ()
  in
  List.iter
    (fun line -> take (request t "script" [ ("line", Json.String line) ]))
    (String.split_on_char '\n' text);
  let document = request t "document" [] in
  (* scripts that set a clock get the timing document, mirroring the
     offline run's [--timing-json] output *)
  let timing =
    match Json.member "timing" document with
    | Some _ -> Some (request t "timing" [ ("k", Json.Int k) ])
    | None -> None
  in
  { output = Buffer.contents out; document; timing }
