open Tqwm_circuit
module Vec = Tqwm_num.Vec
module Mat = Tqwm_num.Mat
module Lu = Tqwm_num.Lu
module Waveform = Tqwm_wave.Waveform
module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Json = Tqwm_obs.Json

(* Global reference-engine telemetry; bulk counters are settled once per
   simulate call, only the per-step histogram updates inside the loop. *)
let c_transients = Metrics.counter "spice.transients"
let c_steps = Metrics.counter "spice.steps"
let c_rejected = Metrics.counter "spice.rejected_steps"
let c_newton = Metrics.counter "spice.newton_iterations"
let c_stalled = Metrics.counter "spice.newton_stalled"

let h_newton_per_step =
  Metrics.histogram "spice.newton_per_step"
    ~bounds:[| 1.0; 2.0; 3.0; 5.0; 8.0; 13.0; 21.0; 34.0 |]

type solver = Newton_raphson | Successive_chord

type integration = Backward_euler | Trapezoidal

type step_control =
  | Fixed
  | Adaptive of { lte_tolerance : float; dt_min : float; dt_max : float }

type config = {
  dt : float;
  solver : solver;
  integration : integration;
  step_control : step_control;
  max_iterations : int;
  tolerance : float;
  voltage_dependent_caps : bool;
  record_currents : bool;
}

let default_config =
  {
    dt = 1e-12;
    solver = Newton_raphson;
    integration = Backward_euler;
    step_control = Fixed;
    max_iterations = 50;
    tolerance = 1e-9;
    voltage_dependent_caps = false;
    record_currents = false;
  }

let adaptive_config ?(lte_tolerance = 2e-3) () =
  {
    default_config with
    dt = 0.5e-12;
    step_control = Adaptive { lte_tolerance; dt_min = 0.05e-12; dt_max = 20e-12 };
  }

type stats = {
  steps : int;
  rejected_steps : int;
  nonlinear_iterations : int;
  max_step_iterations : int;
  stalled_steps : int;
  converged : bool;
}

type result = {
  times : float array;
  voltages : float array array;
  currents : float array array option;
  stats : stats;
}

(* Chord conductances for the successive-chord solver (TETA keeps one
   constant admittance matrix for the whole transient). Following the
   successive-chord convergence condition, each edge's chord is the
   largest small-signal conductance it exhibits over the operating range,
   found by sampling the bias grid with settled inputs. *)
let chord_matrix ctx ~dt caps =
  let scenario = ctx.Mna.scenario in
  let stage = scenario.Scenario.stage in
  let model = ctx.Mna.model in
  let vdd = scenario.Scenario.tech.Tqwm_device.Tech.vdd in
  let time = scenario.Scenario.t_end in
  let n = Mna.dimension ctx.Mna.index in
  let j = Mat.create n n in
  let biases = [ 0.0; 0.25 *. vdd; 0.5 *. vdd; 0.75 *. vdd; vdd ] in
  Array.iter
    (fun (e : Tqwm_circuit.Stage.edge) ->
      let input =
        match e.gate with
        | None -> 0.0
        | Some g -> Tqwm_circuit.Scenario.gate_value scenario g time
      in
      let g_max = ref 1e-12 in
      List.iter
        (fun src ->
          List.iter
            (fun snk ->
              let tv = { Tqwm_device.Device_model.input; src; snk } in
              let dsrc, dsnk = model.Tqwm_device.Device_model.iv_derivatives e.device tv in
              g_max := Float.max !g_max (Float.max (Float.abs dsrc) (Float.abs dsnk)))
            biases)
        biases;
      let g = !g_max in
      let src_u = ctx.Mna.index.of_node.(e.src)
      and snk_u = ctx.Mna.index.of_node.(e.snk) in
      if src_u >= 0 then Mat.add_to j src_u src_u g;
      if snk_u >= 0 then Mat.add_to j snk_u snk_u g;
      if src_u >= 0 && snk_u >= 0 then begin
        Mat.add_to j src_u snk_u (-.g);
        Mat.add_to j snk_u src_u (-.g)
      end)
    stage.Tqwm_circuit.Stage.edges;
  for i = 0 to n - 1 do
    Mat.add_to j i i (caps.{i} /. dt)
  done;
  j

(* one implicit step from (t_prev, x_prev) to t_prev + dt *)
let implicit_step ctx ~config ~caps ~chord ~t_prev ~dt x_prev =
  let n = Vec.dim x_prev in
  let t = t_prev +. dt in
  let f_prev =
    match config.integration with
    | Trapezoidal -> Mna.out_currents ctx ~time:t_prev x_prev
    | Backward_euler -> Vec.create 0
  in
  let residual xv =
    let f = Mna.out_currents ctx ~time:t xv in
    Vec.init n (fun i ->
        let dyn = caps.{i} *. (xv.{i} -. x_prev.{i}) /. dt in
        match config.integration with
        | Backward_euler -> dyn +. f.{i}
        | Trapezoidal -> dyn +. (0.5 *. (f.{i} +. f_prev.{i})))
  in
  let jacobian xv =
    let g = Mna.conductance ctx ~time:t xv in
    let scale =
      match config.integration with Backward_euler -> 1.0 | Trapezoidal -> 0.5
    in
    let j = Mat.scale scale g in
    for i = 0 to n - 1 do
      Mat.add_to j i i (caps.{i} /. dt)
    done;
    j
  in
  let solve_linearized =
    match chord with
    | Some factor -> fun _ f -> Lu.solve_factored factor f
    | None -> fun xv f -> Lu.solve (jacobian xv) f
  in
  let newton_config =
    {
      Tqwm_num.Newton.default_config with
      max_iterations = config.max_iterations;
      residual_tolerance = config.tolerance;
    }
  in
  Tqwm_num.Newton.solve ~config:newton_config
    { Tqwm_num.Newton.residual; solve_linearized }
    x_prev

let simulate ~model ~config (scenario : Scenario.t) =
  if config.dt <= 0.0 then invalid_arg "Transient.simulate: dt <= 0";
  let ctx = Mna.make_context ~model scenario in
  let n = Mna.dimension ctx.Mna.index in
  let stage = scenario.stage in
  let base_caps = Mna.capacitances ctx in
  let times = ref [] and voltages = ref [] and currents = ref [] in
  let record t xv =
    times := t :: !times;
    let full = Mna.full_voltages ctx xv in
    voltages := full :: !voltages;
    if config.record_currents then
      currents :=
        Array.map (fun e -> Mna.edge_current ctx ~time:t full e) stage.Stage.edges
        :: !currents
  in
  let total_iters = ref 0
  and max_iters = ref 0
  and accepted = ref 0
  and rejected = ref 0
  and stalled = ref 0
  and all_converged = ref true in
  let account (outcome : Tqwm_num.Newton.outcome) =
    total_iters := !total_iters + outcome.Tqwm_num.Newton.iterations;
    max_iters := max !max_iters outcome.Tqwm_num.Newton.iterations;
    if outcome.Tqwm_num.Newton.stalled then incr stalled;
    Metrics.observe h_newton_per_step (float_of_int outcome.Tqwm_num.Newton.iterations)
  in
  let chord_cache = ref None in
  let chord_for dt =
    match config.solver with
    | Newton_raphson -> None
    | Successive_chord ->
      (match !chord_cache with
      | Some (cached_dt, factor) when cached_dt = dt -> Some factor
      | Some _ | None ->
        let factor = Lu.factorize (chord_matrix ctx ~dt base_caps) in
        chord_cache := Some (dt, factor);
        Some factor)
  in
  let caps_at x_prev =
    if config.voltage_dependent_caps then begin
      let full_prev = Mna.full_voltages ctx x_prev in
      Mna.capacitances ~at:(fun node -> full_prev.(node)) ctx
    end
    else base_caps
  in
  let x0 = Vec.init n (fun i -> scenario.initial.(ctx.Mna.index.unknowns.(i))) in
  record 0.0 x0;
  (match config.step_control with
  | Fixed ->
    let steps = int_of_float (Float.ceil (scenario.t_end /. config.dt)) in
    let x = ref x0 in
    for step = 1 to steps do
      let t_prev = float_of_int (step - 1) *. config.dt in
      let caps = caps_at !x in
      let outcome =
        implicit_step ctx ~config ~caps ~chord:(chord_for config.dt) ~t_prev
          ~dt:config.dt !x
      in
      account outcome;
      if not outcome.Tqwm_num.Newton.converged then all_converged := false;
      incr accepted;
      x := outcome.Tqwm_num.Newton.x;
      record (float_of_int step *. config.dt) !x
    done
  | Adaptive { lte_tolerance; dt_min; dt_max } ->
    (* accept/reject on the difference between the implicit solution and
       a forward-Euler predictor: a first-order local-error estimate *)
    let rec advance t x dt =
      if t < scenario.t_end -. 1e-18 then begin
        let dt = Float.min dt (scenario.t_end -. t) in
        let caps = caps_at x in
        let outcome = implicit_step ctx ~config ~caps ~chord:(chord_for dt) ~t_prev:t ~dt x in
        account outcome;
        let x_new = outcome.Tqwm_num.Newton.x in
        let f_prev = Mna.out_currents ctx ~time:t x in
        let err = ref 0.0 in
        for i = 0 to n - 1 do
          let predictor = x.{i} -. (dt *. f_prev.{i} /. caps.{i}) in
          err := Float.max !err (Float.abs (x_new.{i} -. predictor) /. 2.0)
        done;
        if (!err > lte_tolerance || not outcome.Tqwm_num.Newton.converged)
           && dt > dt_min *. 1.0001
        then begin
          incr rejected;
          advance t x (Float.max (dt /. 2.0) dt_min)
        end
        else begin
          if not outcome.Tqwm_num.Newton.converged then all_converged := false;
          incr accepted;
          record (t +. dt) x_new;
          let dt' =
            if !err < lte_tolerance /. 4.0 then Float.min (dt *. 1.5) dt_max else dt
          in
          advance (t +. dt) x_new dt'
        end
      end
    in
    advance 0.0 x0 config.dt);
  Metrics.incr c_transients;
  Metrics.add c_steps !accepted;
  Metrics.add c_rejected !rejected;
  Metrics.add c_newton !total_iters;
  Metrics.add c_stalled !stalled;
  {
    times = Array.of_list (List.rev !times);
    voltages = Array.of_list (List.rev !voltages);
    currents =
      (if config.record_currents then Some (Array.of_list (List.rev !currents)) else None);
    stats =
      {
        steps = !accepted;
        rejected_steps = !rejected;
        nonlinear_iterations = !total_iters;
        max_step_iterations = !max_iters;
        stalled_steps = !stalled;
        converged = !all_converged;
      };
  }

let node_waveform result node =
  Waveform.of_samples
    (Array.mapi (fun i t -> (t, result.voltages.(i).(node))) result.times)

let edge_current_waveform result edge =
  match result.currents with
  | None -> invalid_arg "Transient.edge_current_waveform: currents not recorded"
  | Some cur ->
    Waveform.of_samples (Array.mapi (fun i t -> (t, cur.(i).(edge))) result.times)
