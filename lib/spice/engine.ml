open Tqwm_circuit
open Tqwm_wave

type report = {
  scenario : Scenario.t;
  result : Transient.result;
  output : Waveform.t;
  delay : float option;
  slew : float option;
  runtime_seconds : float;
}

let run ~model ?(config = Transient.default_config) (scenario : Scenario.t) =
  let t0 = Unix.gettimeofday () in
  let result =
    Tqwm_obs.Trace.with_span ~name:("spice:" ^ scenario.Scenario.name) ~cat:"spice"
      (fun () -> Transient.simulate ~model ~config scenario)
  in
  let runtime_seconds = Unix.gettimeofday () -. t0 in
  let output = Transient.node_waveform result scenario.Scenario.output in
  let vdd = scenario.Scenario.tech.Tqwm_device.Tech.vdd in
  let delay =
    Measure.delay_from ~t0:0.0 ~vdd ~output ~output_edge:scenario.Scenario.output_edge
  in
  let slew = Measure.slew ~vdd output scenario.Scenario.output_edge in
  { scenario; result; output; delay; slew; runtime_seconds }

let node_waveforms report =
  let stage = report.scenario.Scenario.stage in
  Stage.internal_nodes stage
  |> List.map (fun n -> (Stage.node_name stage n, Transient.node_waveform report.result n))
