(** Time-domain transient simulation — the "SPICE-like" reference engine
    the paper benchmarks QWM against: numerical integration with a
    Newton–Raphson (or TETA-style successive-chord) solve at every time
    step. Fixed-step (the paper's 1 ps / 10 ps setting) or adaptive
    stepping with a local-truncation-error controller (the
    "adaptively controlled" fast-SPICE methodology of Devgan & Rohrer,
    cited as related work). *)

open Tqwm_circuit

type solver = Newton_raphson | Successive_chord

type integration = Backward_euler | Trapezoidal

type step_control =
  | Fixed
  | Adaptive of {
      lte_tolerance : float;  (** volts of estimated local error per step *)
      dt_min : float;
      dt_max : float;
    }

type config = {
  dt : float;  (** fixed step size, or the adaptive controller's initial step *)
  solver : solver;
  integration : integration;
  step_control : step_control;
  max_iterations : int;  (** per-step nonlinear iteration cap *)
  tolerance : float;  (** per-step residual tolerance, amps *)
  voltage_dependent_caps : bool;
      (** re-evaluate junction capacitances at each step's starting
          voltages instead of freezing them at the initial bias *)
  record_currents : bool;  (** keep per-edge current traces (Fig. 7) *)
}

val default_config : config
(** 1 ps fixed-step backward-Euler Newton–Raphson, constant caps. *)

val adaptive_config : ?lte_tolerance:float -> unit -> config
(** Adaptive stepping between 0.05 ps and 20 ps with a 2 mV default LTE
    target. *)

type stats = {
  steps : int;  (** accepted steps *)
  rejected_steps : int;  (** adaptive retries *)
  nonlinear_iterations : int;  (** summed over all attempts *)
  max_step_iterations : int;
  stalled_steps : int;
      (** steps whose Newton solve took the step-stall exit (see
          {!Tqwm_num.Newton.outcome}); accepted at loosened tolerance *)
  converged : bool;  (** false if any accepted step hit the iteration cap *)
}

type result = {
  times : float array;
  voltages : float array array;  (** [voltages.(step).(stage_node)] *)
  currents : float array array option;  (** [currents.(step).(edge)] src->snk *)
  stats : stats;
}

val simulate :
  model:Tqwm_device.Device_model.t -> config:config -> Scenario.t -> result

val node_waveform : result -> Stage.node -> Tqwm_wave.Waveform.t

val edge_current_waveform : result -> int -> Tqwm_wave.Waveform.t
(** @raise Invalid_argument when currents were not recorded. *)
