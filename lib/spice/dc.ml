open Tqwm_circuit
module Vec = Tqwm_num.Vec
module Mat = Tqwm_num.Mat
module Lu = Tqwm_num.Lu
module Newton = Tqwm_num.Newton

type result = { voltages : float array; iterations : int; converged : bool }

let solve ~model ?time ?(gmin = 1e-12) (scenario : Scenario.t) =
  let ctx = Mna.make_context ~model scenario in
  let time = Option.value time ~default:scenario.t_end in
  let n = Mna.dimension ctx.Mna.index in
  let residual x =
    let f = Mna.out_currents ctx ~time x in
    Vec.init n (fun i -> f.{i} +. (gmin *. x.{i}))
  in
  let solve_linearized x f =
    let j = Mna.conductance ctx ~time x in
    for i = 0 to n - 1 do
      Mat.add_to j i i gmin
    done;
    Lu.solve j f
  in
  let config =
    { Newton.default_config with max_iterations = 200; damping = 0.7; max_step = Some 0.5 }
  in
  let x0 = Vec.init n (fun i -> scenario.initial.(ctx.Mna.index.unknowns.(i))) in
  let outcome = Newton.solve ~config { Newton.residual; solve_linearized } x0 in
  {
    voltages = Mna.full_voltages ctx outcome.Newton.x;
    iterations = outcome.Newton.iterations;
    converged = outcome.Newton.converged;
  }
