open Tqwm_circuit
module Vec = Tqwm_num.Vec
module Mat = Tqwm_num.Mat
module Device_model = Tqwm_device.Device_model

type index = { unknowns : Stage.node array; of_node : int array }

let index_of_stage (stage : Stage.t) =
  let unknowns = Array.of_list (Stage.internal_nodes stage) in
  let of_node = Array.make stage.Stage.num_nodes (-1) in
  Array.iteri (fun i n -> of_node.(n) <- i) unknowns;
  { unknowns; of_node }

let dimension index = Array.length index.unknowns

type context = {
  model : Device_model.t;
  scenario : Scenario.t;
  index : index;
}

let make_context ~model scenario = { model; scenario; index = index_of_stage scenario.Scenario.stage }

let full_voltages ctx x =
  let stage = ctx.scenario.Scenario.stage in
  Array.init stage.Stage.num_nodes (fun n ->
      let i = ctx.index.of_node.(n) in
      if i >= 0 then x.{i} else ctx.scenario.Scenario.initial.(n))

let terminal_voltages ctx ~time voltages (e : Stage.edge) =
  let input =
    match e.gate with
    | None -> 0.0
    | Some g -> Scenario.gate_value ctx.scenario g time
  in
  { Device_model.input; src = voltages.(e.src); snk = voltages.(e.snk) }

let edge_current ctx ~time voltages e =
  ctx.model.Device_model.iv e.Stage.device (terminal_voltages ctx ~time voltages e)

let out_currents ctx ~time x =
  let stage = ctx.scenario.Scenario.stage in
  let voltages = full_voltages ctx x in
  let f = Vec.create (dimension ctx.index) in
  Array.iter
    (fun (e : Stage.edge) ->
      let i = edge_current ctx ~time voltages e in
      let src_u = ctx.index.of_node.(e.src) and snk_u = ctx.index.of_node.(e.snk) in
      (* current src -> snk leaves src and enters snk *)
      if src_u >= 0 then f.{src_u} <- f.{src_u} +. i;
      if snk_u >= 0 then f.{snk_u} <- f.{snk_u} -. i)
    stage.Stage.edges;
  f

let conductance ctx ~time x =
  let stage = ctx.scenario.Scenario.stage in
  let voltages = full_voltages ctx x in
  let n = dimension ctx.index in
  let g = Mat.create n n in
  Array.iter
    (fun (e : Stage.edge) ->
      let tv = terminal_voltages ctx ~time voltages e in
      let dsrc, dsnk = ctx.model.Device_model.iv_derivatives e.Stage.device tv in
      let src_u = ctx.index.of_node.(e.src) and snk_u = ctx.index.of_node.(e.snk) in
      if src_u >= 0 then begin
        Mat.add_to g src_u src_u dsrc;
        if snk_u >= 0 then Mat.add_to g src_u snk_u dsnk
      end;
      if snk_u >= 0 then begin
        Mat.add_to g snk_u snk_u (-.dsnk);
        if src_u >= 0 then Mat.add_to g snk_u src_u (-.dsrc)
      end)
    stage.Stage.edges;
  g

let capacitances ?at ctx =
  let scenario = ctx.scenario in
  let bias =
    match at with
    | Some f -> f
    | None -> fun n -> scenario.Scenario.initial.(n)
  in
  Vec.init (Array.length ctx.index.unknowns) (fun i ->
      let n = ctx.index.unknowns.(i) in
      Stage.node_capacitance ctx.model scenario.Scenario.stage n ~v:(bias n))
