module Interp = Tqwm_num.Interp
module Polyfit = Tqwm_num.Polyfit

type fit = {
  s1 : float;
  s2 : float;
  t0 : float;
  t1 : float;
  t2 : float;
  vth : float;
  vdsat : float;
}

let zero_fit ~vth = { s1 = 0.0; s2 = 0.0; t0 = 0.0; t1 = 0.0; t2 = 0.0; vth; vdsat = 0.0 }

type t = {
  tech : Tech.t;
  polarity : Mosfet.polarity;
  vg_axis : Interp.axis;
  vs_axis : Interp.axis;
  fits : fit array array;  (** indexed [vg][vs] *)
  vth_by_vs : Tqwm_num.Vec.t;
}

let reference_w = 1.0e-6

let reference_l (tech : Tech.t) = tech.l_min

(* Evaluate one grid point's piecewise fit at a channel drop [x = vd - vs];
   the quadratic covers the triode region, the line the saturation region. *)
let[@inline] fit_eval fit x =
  if x <= fit.vdsat then fit.t0 +. (fit.t1 *. x) +. (fit.t2 *. x *. x)
  else (fit.s1 *. x) +. fit.s2

let[@inline] fit_eval_deriv fit x =
  if x <= fit.vdsat then fit.t1 +. (2.0 *. fit.t2 *. x) else fit.s1

let sample_range ~lo ~hi ~count f =
  Array.init count (fun i ->
      let x = lo +. ((hi -. lo) *. float_of_int i /. float_of_int (count - 1)) in
      (x, f x))

let characterize ?(grid_step = 0.1) ?(vd_samples = 9) (tech : Tech.t) ~polarity
    ~source ~threshold =
  if grid_step <= 0.0 then invalid_arg "Table_model.characterize: grid_step <= 0";
  if vd_samples < 3 then invalid_arg "Table_model.characterize: vd_samples < 3";
  let count = int_of_float (Float.ceil (tech.vdd /. grid_step)) + 1 in
  let vg_axis = Interp.axis ~start:0.0 ~stop:tech.vdd ~count in
  let vs_axis = vg_axis in
  let fit_point g s =
    let vth = threshold ~vs:s in
    let vdsat = Float.max (g -. s -. vth) 0.0 in
    let headroom = tech.vdd -. s in
    if vdsat <= 1e-9 || headroom <= 1e-9 then zero_fit ~vth
    else begin
      let current x = source ~vg:g ~vs:s ~vd:(s +. x) in
      let triode_end = Float.min vdsat headroom in
      let triode_pts = sample_range ~lo:0.0 ~hi:triode_end ~count:vd_samples current in
      let t0, t1, t2 = Polyfit.quadratic triode_pts in
      let s1, s2 =
        if vdsat < headroom -. 1e-9 then
          let sat_pts = sample_range ~lo:vdsat ~hi:headroom ~count:vd_samples current in
          Polyfit.linear sat_pts |> fun (intercept, slope) -> (slope, intercept)
        else begin
          (* no saturation headroom on the grid: continue with the triode tangent *)
          let slope = t1 +. (2.0 *. t2 *. triode_end) in
          let value = t0 +. (t1 *. triode_end) +. (t2 *. triode_end *. triode_end) in
          (slope, value -. (slope *. triode_end))
        end
      in
      { s1; s2; t0; t1; t2; vth; vdsat = triode_end }
    end
  in
  let fits =
    Array.init count (fun i ->
        Array.init count (fun j -> fit_point (Interp.knot vg_axis i) (Interp.knot vs_axis j)))
  in
  let vth_by_vs = Tqwm_num.Vec.init count (fun j -> fits.(0).(j).vth) in
  { tech; polarity; vg_axis; vs_axis; fits; vth_by_vs }

let of_analytic ?grid_step ?vd_samples (tech : Tech.t) polarity =
  let w = reference_w and l = reference_l tech in
  let source =
    match polarity with
    | Mosfet.N -> fun ~vg ~vs ~vd -> Mosfet.ids tech Mosfet.N ~w ~l ~vg ~vd ~vs
    | Mosfet.P ->
      (* pull-down-normalized coordinates: mirror about VDD *)
      fun ~vg ~vs ~vd ->
        Mosfet.ids tech Mosfet.P ~w ~l ~vg:(tech.vdd -. vg) ~vd:(tech.vdd -. vd)
          ~vs:(tech.vdd -. vs)
  in
  let threshold ~vs = Mosfet.threshold tech polarity ~vsb:vs in
  characterize ?grid_step ?vd_samples tech ~polarity ~source ~threshold

(* Bilinear interpolation between the four neighbouring grid fits; each
   corner's polynomial is evaluated at the query's own vd (paper §V-A). *)
let interp_corners t ~vg ~vs ~vd eval =
  let i, tx = Interp.locate t.vg_axis vg in
  let j, ty = Interp.locate t.vs_axis vs in
  let corner di dj =
    let fit = t.fits.(i + di).(j + dj) in
    let s_corner = Interp.knot t.vs_axis (j + dj) in
    eval fit (vd -. s_corner)
  in
  let f00 = corner 0 0 and f10 = corner 1 0 and f01 = corner 0 1 and f11 = corner 1 1 in
  ((1.0 -. tx) *. (1.0 -. ty) *. f00)
  +. (tx *. (1.0 -. ty) *. f10)
  +. ((1.0 -. tx) *. ty *. f01)
  +. (tx *. ty *. f11)

(* The hot lookups below are [interp_corners fit_eval] with every helper
   expanded in place: the closure, the [Interp.locate] tuples, and the
   float-returning calls to [Interp.locate_frac]/[Interp.knot]/[fit_eval]
   (this compiler boxes each such return, ~2 words per call, and does not
   reliably inline them away). The expansions copy the helpers'
   expressions verbatim — same corner order, same arithmetic — so results
   are bit-identical; only the allocations go. *)

(* [Interp.locate_index], verbatim *)
let[@inline] locate_index_x (ax : Interp.axis) x =
  let raw = (x -. ax.Interp.start) /. ax.Interp.step in
  let i = int_of_float (Float.floor raw) in
  if i < 0 then 0 else if i > ax.Interp.count - 2 then ax.Interp.count - 2 else i

let lookup t ~vg ~vs ~vd =
  let gax = t.vg_axis and sax = t.vs_axis in
  let i = locate_index_x gax vg in
  let tx = ((vg -. gax.Interp.start) /. gax.Interp.step) -. float_of_int i in
  let j = locate_index_x sax vs in
  let ty = ((vs -. sax.Interp.start) /. sax.Interp.step) -. float_of_int j in
  let x0 = vd -. (sax.Interp.start +. (float_of_int j *. sax.Interp.step)) in
  let x1 = vd -. (sax.Interp.start +. (float_of_int (j + 1) *. sax.Interp.step)) in
  let fi = t.fits.(i) and fi1 = t.fits.(i + 1) in
  let c00 = fi.(j) and c10 = fi1.(j) and c01 = fi.(j + 1) and c11 = fi1.(j + 1) in
  let f00 =
    if x0 <= c00.vdsat then c00.t0 +. (c00.t1 *. x0) +. (c00.t2 *. x0 *. x0)
    else (c00.s1 *. x0) +. c00.s2
  in
  let f10 =
    if x0 <= c10.vdsat then c10.t0 +. (c10.t1 *. x0) +. (c10.t2 *. x0 *. x0)
    else (c10.s1 *. x0) +. c10.s2
  in
  let f01 =
    if x1 <= c01.vdsat then c01.t0 +. (c01.t1 *. x1) +. (c01.t2 *. x1 *. x1)
    else (c01.s1 *. x1) +. c01.s2
  in
  let f11 =
    if x1 <= c11.vdsat then c11.t0 +. (c11.t1 *. x1) +. (c11.t2 *. x1 *. x1)
    else (c11.s1 *. x1) +. c11.s2
  in
  ((1.0 -. tx) *. (1.0 -. ty) *. f00)
  +. (tx *. (1.0 -. ty) *. f10)
  +. ((1.0 -. tx) *. ty *. f01)
  +. (tx *. ty *. f11)

let lookup_dvd t ~vg ~vs ~vd = interp_corners t ~vg ~vs ~vd fit_eval_deriv

(* One corner pass yielding the current and both fast derivatives (paper
   §V-A: "I/V queries ... dIds/dVd and dIds/dVs can be computed very
   fast"). dI/dVd interpolates the fitted-polynomial slopes; dI/dVs
   differentiates the interpolation weights (the corners' own [vds]
   arguments do not depend on the query's source voltage). *)
let lookup_with_derivs t ~vg ~vs ~vd =
  let i = Interp.locate_index t.vg_axis vg in
  let tx = Interp.locate_frac t.vg_axis vg i in
  let j = Interp.locate_index t.vs_axis vs in
  let ty = Interp.locate_frac t.vs_axis vs j in
  let x0 = vd -. Interp.knot t.vs_axis j in
  let x1 = vd -. Interp.knot t.vs_axis (j + 1) in
  let fi = t.fits.(i) and fi1 = t.fits.(i + 1) in
  let f00 = fit_eval fi.(j) x0 and f10 = fit_eval fi1.(j) x0 in
  let f01 = fit_eval fi.(j + 1) x1 and f11 = fit_eval fi1.(j + 1) x1 in
  let d00 = fit_eval_deriv fi.(j) x0 and d10 = fit_eval_deriv fi1.(j) x0 in
  let d01 = fit_eval_deriv fi.(j + 1) x1 and d11 = fit_eval_deriv fi1.(j + 1) x1 in
  let w00 = (1.0 -. tx) *. (1.0 -. ty)
  and w10 = tx *. (1.0 -. ty)
  and w01 = (1.0 -. tx) *. ty
  and w11 = tx *. ty in
  let value = (w00 *. f00) +. (w10 *. f10) +. (w01 *. f01) +. (w11 *. f11) in
  let dvd = (w00 *. d00) +. (w10 *. d10) +. (w01 *. d01) +. (w11 *. d11) in
  let dvs =
    (((1.0 -. tx) *. (f01 -. f00)) +. (tx *. (f11 -. f10))) /. t.vs_axis.Interp.step
  in
  (value, dvd, dvs)

(* Tuple-free core of [lookup_with_derivs] for hot callers that only need
   the derivative pair: the raw table-frame dI/dVd lands in [out.dsrc] and
   dI/dVs in [out.dsnk] (scratch semantics — the caller maps them onto
   terminals). Same corner order and arithmetic as [lookup_with_derivs],
   so the written values are bit-identical to the tuple's. *)
let lookup_derivs_into t ~vg ~vs ~vd (out : Device_model.derivs) =
  let gax = t.vg_axis and sax = t.vs_axis in
  let i = locate_index_x gax vg in
  let tx = ((vg -. gax.Interp.start) /. gax.Interp.step) -. float_of_int i in
  let j = locate_index_x sax vs in
  let ty = ((vs -. sax.Interp.start) /. sax.Interp.step) -. float_of_int j in
  let x0 = vd -. (sax.Interp.start +. (float_of_int j *. sax.Interp.step)) in
  let x1 = vd -. (sax.Interp.start +. (float_of_int (j + 1) *. sax.Interp.step)) in
  let fi = t.fits.(i) and fi1 = t.fits.(i + 1) in
  let c00 = fi.(j) and c10 = fi1.(j) and c01 = fi.(j + 1) and c11 = fi1.(j + 1) in
  let f00 =
    if x0 <= c00.vdsat then c00.t0 +. (c00.t1 *. x0) +. (c00.t2 *. x0 *. x0)
    else (c00.s1 *. x0) +. c00.s2
  in
  let f10 =
    if x0 <= c10.vdsat then c10.t0 +. (c10.t1 *. x0) +. (c10.t2 *. x0 *. x0)
    else (c10.s1 *. x0) +. c10.s2
  in
  let f01 =
    if x1 <= c01.vdsat then c01.t0 +. (c01.t1 *. x1) +. (c01.t2 *. x1 *. x1)
    else (c01.s1 *. x1) +. c01.s2
  in
  let f11 =
    if x1 <= c11.vdsat then c11.t0 +. (c11.t1 *. x1) +. (c11.t2 *. x1 *. x1)
    else (c11.s1 *. x1) +. c11.s2
  in
  let d00 = if x0 <= c00.vdsat then c00.t1 +. (2.0 *. c00.t2 *. x0) else c00.s1 in
  let d10 = if x0 <= c10.vdsat then c10.t1 +. (2.0 *. c10.t2 *. x0) else c10.s1 in
  let d01 = if x1 <= c01.vdsat then c01.t1 +. (2.0 *. c01.t2 *. x1) else c01.s1 in
  let d11 = if x1 <= c11.vdsat then c11.t1 +. (2.0 *. c11.t2 *. x1) else c11.s1 in
  let w00 = (1.0 -. tx) *. (1.0 -. ty)
  and w10 = tx *. (1.0 -. ty)
  and w01 = (1.0 -. tx) *. ty
  and w11 = tx *. ty in
  out.Device_model.dsrc <- (w00 *. d00) +. (w10 *. d10) +. (w01 *. d01) +. (w11 *. d11);
  out.Device_model.dsnk <-
    (((1.0 -. tx) *. (f01 -. f00)) +. (tx *. (f11 -. f10))) /. sax.Interp.step

let threshold t ~vs =
  Interp.linear t.vs_axis t.vth_by_vs vs

let vdsat t ~vg ~vs = interp_corners t ~vg ~vs ~vd:vs (fun fit _ -> fit.vdsat)

let fit_at t i j = t.fits.(i).(j)

let format_version = 1

let to_string t =
  let buf = Buffer.create 4096 in
  Buffer.add_string buf (Printf.sprintf "tqwm-table %d\n" format_version);
  Buffer.add_string buf
    (Printf.sprintf "polarity %s\n"
       (match t.polarity with Mosfet.N -> "N" | Mosfet.P -> "P"));
  Buffer.add_string buf (Printf.sprintf "vdd %.17g\n" t.tech.Tech.vdd);
  Buffer.add_string buf
    (Printf.sprintf "grid %.17g %.17g %d\n" t.vg_axis.Interp.start t.vg_axis.Interp.step
       t.vg_axis.Interp.count);
  Array.iter
    (Array.iter (fun fit ->
         Buffer.add_string buf
           (Printf.sprintf "%.17g %.17g %.17g %.17g %.17g %.17g %.17g\n" fit.s1 fit.s2
              fit.t0 fit.t1 fit.t2 fit.vth fit.vdsat)))
    t.fits;
  Buffer.contents buf

let of_string (tech : Tech.t) text =
  let fail msg = failwith ("Table_model.of_string: " ^ msg) in
  let lines =
    String.split_on_char '\n' text |> List.map String.trim
    |> List.filter (fun l -> l <> "")
  in
  match lines with
  | magic :: polarity_line :: vdd_line :: grid_line :: fit_lines ->
    (match String.split_on_char ' ' magic with
    | [ "tqwm-table"; v ] when int_of_string_opt v = Some format_version -> ()
    | _ -> fail "bad magic or version");
    let polarity =
      match String.split_on_char ' ' polarity_line with
      | [ "polarity"; "N" ] -> Mosfet.N
      | [ "polarity"; "P" ] -> Mosfet.P
      | _ -> fail "bad polarity line"
    in
    let vdd =
      match String.split_on_char ' ' vdd_line with
      | [ "vdd"; v ] -> (try float_of_string v with Failure _ -> fail "bad vdd")
      | _ -> fail "bad vdd line"
    in
    if Float.abs (vdd -. tech.Tech.vdd) > 1e-9 then
      fail
        (Printf.sprintf "table characterized at vdd=%g but tech has %g" vdd tech.Tech.vdd);
    let start, step, count =
      match String.split_on_char ' ' grid_line with
      | [ "grid"; a; b; c ] ->
        (try (float_of_string a, float_of_string b, int_of_string c)
         with Failure _ -> fail "bad grid")
      | _ -> fail "bad grid line"
    in
    if count < 2 || step <= 0.0 then fail "bad grid parameters";
    let axis = { Interp.start; step; count } in
    let expected = count * count in
    if List.length fit_lines <> expected then
      fail
        (Printf.sprintf "expected %d fit lines, found %d" expected
           (List.length fit_lines));
    let parse_fit line =
      match String.split_on_char ' ' line |> List.filter (( <> ) "") with
      | [ s1; s2; t0; t1; t2; vth; vdsat ] ->
        (try
           {
             s1 = float_of_string s1;
             s2 = float_of_string s2;
             t0 = float_of_string t0;
             t1 = float_of_string t1;
             t2 = float_of_string t2;
             vth = float_of_string vth;
             vdsat = float_of_string vdsat;
           }
         with Failure _ -> fail "bad fit value")
      | _ -> fail "fit line needs 7 values"
    in
    let all = Array.of_list (List.map parse_fit fit_lines) in
    let fits = Array.init count (fun i -> Array.init count (fun j -> all.((i * count) + j))) in
    let vth_by_vs = Tqwm_num.Vec.init count (fun j -> fits.(0).(j).vth) in
    { tech; polarity; vg_axis = axis; vs_axis = axis; fits; vth_by_vs }
  | _ -> fail "truncated header"

let save t ~path =
  let oc = open_out path in
  output_string oc (to_string t);
  close_out oc

let load tech ~path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  of_string tech text

let grid t = (t.vg_axis, t.vs_axis)

let[@inline] geometry_scale t (device : Device.t) =
  device.w *. reference_l t.tech /. (device.l *. reference_w)

(* Current src -> snk for a transistor edge, resolving terminal symmetry
   and the PMOS mirror onto the normalized table. *)
let transistor_iv table (device : Device.t) (tv : Device_model.terminal_voltages) =
  let scale = geometry_scale table device in
  match table.polarity with
  | Mosfet.N ->
    if tv.src >= tv.snk then scale *. lookup table ~vg:tv.input ~vs:tv.snk ~vd:tv.src
    else -.(scale *. lookup table ~vg:tv.input ~vs:tv.src ~vd:tv.snk)
  | Mosfet.P ->
    let vdd = table.tech.vdd in
    let g = vdd -. tv.input and a = vdd -. tv.src and b = vdd -. tv.snk in
    if b >= a then scale *. lookup table ~vg:g ~vs:a ~vd:b
    else -.(scale *. lookup table ~vg:g ~vs:b ~vd:a)

let to_device_model ?(miller_factor = 1.0) (tech : Tech.t) ~nmos ~pmos =
  let analytic = Device_model.analytic ~miller_factor tech in
  let iv (device : Device.t) tv =
    match device.kind with
    | Device.Nmos -> transistor_iv nmos device tv
    | Device.Pmos -> transistor_iv pmos device tv
    | Device.Wire -> analytic.Device_model.iv device tv
  in
  (* (dI/dVsrc, dI/dVsnk) from the fast table derivatives, with the same
     terminal-symmetry and polarity normalization as [transistor_iv] *)
  let transistor_derivs table device (tv : Device_model.terminal_voltages) =
    let scale = geometry_scale table device in
    match table.polarity with
    | Mosfet.N ->
      if tv.src >= tv.snk then begin
        let _, dvd, dvs = lookup_with_derivs table ~vg:tv.input ~vs:tv.snk ~vd:tv.src in
        (scale *. dvd, scale *. dvs)
      end
      else begin
        let _, dvd, dvs = lookup_with_derivs table ~vg:tv.input ~vs:tv.src ~vd:tv.snk in
        (-.(scale *. dvs), -.(scale *. dvd))
      end
    | Mosfet.P ->
      let vdd = table.tech.vdd in
      let g = vdd -. tv.input and a = vdd -. tv.src and b = vdd -. tv.snk in
      if b >= a then begin
        let _, dvd, dvs = lookup_with_derivs table ~vg:g ~vs:a ~vd:b in
        (-.(scale *. dvs), -.(scale *. dvd))
      end
      else begin
        let _, dvd, dvs = lookup_with_derivs table ~vg:g ~vs:b ~vd:a in
        (scale *. dvd, scale *. dvs)
      end
  in
  let iv_derivatives (device : Device.t) tv =
    match device.kind with
    | Device.Nmos -> transistor_derivs nmos device tv
    | Device.Pmos -> transistor_derivs pmos device tv
    | Device.Wire -> analytic.Device_model.iv_derivatives device tv
  in
  (* [transistor_derivs] with the tuple chain cut: the raw (dvd, dvs)
     pair arrives in [out] (scratch), is rescaled/swapped in place with
     the same expressions, so the final values are bit-identical. *)
  let transistor_derivs_into table device (tv : Device_model.terminal_voltages)
      (out : Device_model.derivs) =
    let scale = geometry_scale table device in
    match table.polarity with
    | Mosfet.N ->
      if tv.src >= tv.snk then begin
        lookup_derivs_into table ~vg:tv.input ~vs:tv.snk ~vd:tv.src out;
        let dvd = out.Device_model.dsrc and dvs = out.Device_model.dsnk in
        out.Device_model.dsrc <- scale *. dvd;
        out.Device_model.dsnk <- scale *. dvs
      end
      else begin
        lookup_derivs_into table ~vg:tv.input ~vs:tv.src ~vd:tv.snk out;
        let dvd = out.Device_model.dsrc and dvs = out.Device_model.dsnk in
        out.Device_model.dsrc <- -.(scale *. dvs);
        out.Device_model.dsnk <- -.(scale *. dvd)
      end
    | Mosfet.P ->
      let vdd = table.tech.vdd in
      let g = vdd -. tv.input and a = vdd -. tv.src and b = vdd -. tv.snk in
      if b >= a then begin
        lookup_derivs_into table ~vg:g ~vs:a ~vd:b out;
        let dvd = out.Device_model.dsrc and dvs = out.Device_model.dsnk in
        out.Device_model.dsrc <- -.(scale *. dvs);
        out.Device_model.dsnk <- -.(scale *. dvd)
      end
      else begin
        lookup_derivs_into table ~vg:g ~vs:b ~vd:a out;
        let dvd = out.Device_model.dsrc and dvs = out.Device_model.dsnk in
        out.Device_model.dsrc <- scale *. dvd;
        out.Device_model.dsnk <- scale *. dvs
      end
  in
  let iv_derivatives_into (device : Device.t) tv out =
    match device.kind with
    | Device.Nmos -> transistor_derivs_into nmos device tv out
    | Device.Pmos -> transistor_derivs_into pmos device tv out
    | Device.Wire -> analytic.Device_model.iv_derivatives_into device tv out
  in
  let threshold_fn (device : Device.t) (tv : Device_model.terminal_voltages) =
    match device.kind with
    | Device.Nmos -> threshold nmos ~vs:tv.snk
    | Device.Pmos -> threshold pmos ~vs:(tech.vdd -. tv.src)
    | Device.Wire -> 0.0
  in
  {
    analytic with
    Device_model.name = "table";
    iv;
    iv_derivatives;
    iv_derivatives_into;
    threshold = threshold_fn;
  }
