(** Tabular device characterization (paper §V-A, Fig. 8).

    The transistor I/V relation is compressed by sweeping the gate and
    source voltages over a uniform grid and, for each (Vg, Vs) pair,
    curve-fitting the dependence of channel current on the drain voltage:
    a linear function [s1*vds + s2] in the saturation region and a
    quadratic [t2*vds^2 + t1*vds + t0] in the triode region. Together with
    the threshold and saturation voltages, 7 parameters are stored per
    grid point. Off-grid queries interpolate bilinearly between neighbour
    points; dIds/dVd comes directly from the fitted polynomials.

    Tables are built in "pull-down-normalized" coordinates (PMOS voltages
    mirrored about VDD), so one characterization path serves both
    polarities, and at reference geometry (current scales exactly with
    W/L in the underlying physics; see DESIGN.md). *)

type fit = {
  s1 : float;  (** saturation-region slope *)
  s2 : float;  (** saturation-region intercept *)
  t0 : float;
  t1 : float;
  t2 : float;  (** triode-region quadratic, lowest power first: t0,t1,t2 *)
  vth : float;  (** body-corrected threshold at this (Vg, Vs) *)
  vdsat : float;  (** saturation voltage at this (Vg, Vs) *)
}

type t

val characterize :
  ?grid_step:float ->
  ?vd_samples:int ->
  Tech.t ->
  polarity:Mosfet.polarity ->
  source:(vg:float -> vs:float -> vd:float -> float) ->
  threshold:(vs:float -> float) ->
  t
(** [characterize tech ~polarity ~source ~threshold] sweeps [source] (the
    golden simulator, in normalized pull-down coordinates, at reference
    geometry W = 1 um, L = l_min) over Vg, Vs in [0, VDD] with [grid_step]
    (default 0.1 V, the paper's setting) and [vd_samples] points per fit
    region (default 9). *)

val of_analytic : ?grid_step:float -> ?vd_samples:int -> Tech.t -> Mosfet.polarity -> t
(** Characterize directly from the analytic {!Mosfet} model, mirroring the
    paper's characterization from Hspice/BSIM3. *)

val lookup : t -> vg:float -> vs:float -> vd:float -> float
(** Interpolated channel current at reference geometry, normalized
    coordinates, drain above source ([vd >= vs]; callers handle terminal
    symmetry). *)

val lookup_dvd : t -> vg:float -> vs:float -> vd:float -> float
(** Interpolated dIds/dVd from the fitted polynomials. *)

val lookup_with_derivs : t -> vg:float -> vs:float -> vd:float -> float * float * float
(** [(ids, dIds/dVd, dIds/dVs)] in one corner pass — the paper's "fast
    derivative" benefit of the characterization (§V-A): the drain
    derivative comes from the fitted polynomial slopes, the source
    derivative from the interpolation weights. *)

val lookup_derivs_into :
  t -> vg:float -> vs:float -> vd:float -> Device_model.derivs -> unit
(** The derivative pair of {!lookup_with_derivs}, bit-identical, written
    into a caller-owned buffer instead of a tuple: dIds/dVd lands in
    [dsrc] and dIds/dVs in [dsnk] (table-frame scratch semantics — the
    caller maps them onto edge terminals). Allocation-free. *)

val threshold : t -> vs:float -> float
(** Interpolated threshold voltage from the stored table column. *)

val vdsat : t -> vg:float -> vs:float -> float

val fit_at : t -> int -> int -> fit
(** Raw fit at grid indices (for inspection and the Fig. 8 bench). *)

val grid : t -> Tqwm_num.Interp.axis * Tqwm_num.Interp.axis
(** The (Vg, Vs) axes. *)

(** {2 Persistence}

    Characterization is one-time work per process; production flows cache
    the table on disk. The text format is versioned and roundtrips
    exactly. *)

val to_string : t -> string

val of_string : Tech.t -> string -> t
(** @raise Failure on a malformed or version-incompatible payload, or
    when the stored supply range disagrees with [tech]. *)

val save : t -> path:string -> unit

val load : Tech.t -> path:string -> t
(** @raise Failure, [Sys_error]. *)

val to_device_model :
  ?miller_factor:float -> Tech.t -> nmos:t -> pmos:t -> Device_model.t
(** Package NMOS and PMOS tables as a {!Device_model.t}: transistor I/V
    queries hit the tables (with polarity normalization and terminal
    symmetry); wires, capacitances and thresholds use the same physics as
    the analytic model. *)
