(** The paper's [DeviceModel] interface (Definition 2).

    A device model maps geometry and a terminal-voltage configuration to
    the current flowing from the edge's [src] node to its [snk] node, and
    exposes the threshold and parasitic-capacitance relations the QWM and
    SPICE engines need. Two implementations exist: the analytic model
    below (the golden physics) and {!Table_model} (the compressed tabular
    fit QWM uses, mirroring the paper's Hspice characterization). *)

type terminal_voltages = {
  mutable input : float;  (** gate voltage; meaningless for wires *)
  mutable src : float;  (** voltage of the supply-side terminal of the edge *)
  mutable snk : float;  (** voltage of the ground-side terminal *)
}
(** Fields are mutable (and stored flat — all-float record) so hot
    callers can refill one scratch record per query instead of allocating;
    model implementations only read the fields during the call. *)

type derivs = { mutable dsrc : float; mutable dsnk : float }
(** Out-buffer for {!t.iv_derivatives_into}: an all-float record, stored
    flat, so a single caller-owned instance makes repeated derivative
    queries allocation-free (the tuple form boxes three blocks per call). *)

val derivs : unit -> derivs
(** A fresh zeroed out-buffer. *)

type t = {
  name : string;
  iv : Device.t -> terminal_voltages -> float;
      (** current src -> snk; positive when conducting "downhill" *)
  iv_derivatives : Device.t -> terminal_voltages -> float * float;
      (** [(dI/dVsrc, dI/dVsnk)] *)
  iv_derivatives_into : Device.t -> terminal_voltages -> derivs -> unit;
      (** [iv_derivatives] written into a caller-owned {!derivs} —
          bit-identical values, no per-call allocation. *)
  threshold : Device.t -> terminal_voltages -> float;
      (** turn-on threshold (positive magnitude, body-corrected): an NMOS
          conducts when [input - snk > threshold], a PMOS when
          [src - input > threshold], wires always (threshold 0) *)
  src_cap : Device.t -> v:float -> float;
      (** capacitance contribution of the src terminal at node bias [v] *)
  snk_cap : Device.t -> v:float -> float;
  input_cap : Device.t -> float;
}

val analytic : ?miller_factor:float -> Tech.t -> t
(** Model backed by {!Mosfet} physics and {!Capacitance}. NMOS and PMOS
    body terminals are tied to ground and VDD respectively. *)

val finite_difference_derivatives :
  (Device.t -> terminal_voltages -> float) -> Device.t -> terminal_voltages -> float * float
(** Central-difference [iv_derivatives] for models that lack analytic
    ones. *)
