type terminal_voltages = {
  mutable input : float;
  mutable src : float;
  mutable snk : float;
}

(* All-float record, so the fields are stored flat: writing them is a
   plain float store and reading them into locals never boxes. One such
   record, owned by the caller and reused across calls, makes the
   derivative query allocation-free where the tuple-returning
   [iv_derivatives] costs a block plus two boxed floats per call. *)
type derivs = { mutable dsrc : float; mutable dsnk : float }

let derivs () = { dsrc = 0.0; dsnk = 0.0 }

type t = {
  name : string;
  iv : Device.t -> terminal_voltages -> float;
  iv_derivatives : Device.t -> terminal_voltages -> float * float;
  iv_derivatives_into : Device.t -> terminal_voltages -> derivs -> unit;
  threshold : Device.t -> terminal_voltages -> float;
  src_cap : Device.t -> v:float -> float;
  snk_cap : Device.t -> v:float -> float;
  input_cap : Device.t -> float;
}

let finite_difference_derivatives iv device tv =
  let h = 1e-6 in
  let dsrc =
    (iv device { tv with src = tv.src +. h } -. iv device { tv with src = tv.src -. h })
    /. (2.0 *. h)
  in
  let dsnk =
    (iv device { tv with snk = tv.snk +. h } -. iv device { tv with snk = tv.snk -. h })
    /. (2.0 *. h)
  in
  (dsrc, dsnk)

let analytic ?(miller_factor = 1.0) (tech : Tech.t) =
  let iv (device : Device.t) tv =
    match device.kind with
    | Device.Nmos ->
      Mosfet.channel_current tech Mosfet.N ~w:device.w ~l:device.l ~vg:tv.input
        ~va:tv.src ~vb:tv.snk
    | Device.Pmos ->
      Mosfet.channel_current tech Mosfet.P ~w:device.w ~l:device.l ~vg:tv.input
        ~va:tv.src ~vb:tv.snk
    | Device.Wire ->
      (tv.src -. tv.snk) /. Capacitance.wire_resistance tech ~w:device.w ~l:device.l
  in
  let iv_derivatives (device : Device.t) tv =
    match device.kind with
    | Device.Nmos | Device.Pmos -> finite_difference_derivatives iv device tv
    | Device.Wire ->
      let g = 1.0 /. Capacitance.wire_resistance tech ~w:device.w ~l:device.l in
      (g, -.g)
  in
  let threshold (device : Device.t) tv =
    match device.kind with
    | Device.Nmos -> Mosfet.threshold tech Mosfet.N ~vsb:tv.snk
    | Device.Pmos -> Mosfet.threshold tech Mosfet.P ~vsb:(tech.vdd -. tv.src)
    | Device.Wire -> 0.0
  in
  let iv_derivatives_into (device : Device.t) tv (out : derivs) =
    match device.kind with
    | Device.Nmos | Device.Pmos ->
      let dsrc, dsnk = finite_difference_derivatives iv device tv in
      out.dsrc <- dsrc;
      out.dsnk <- dsnk
    | Device.Wire ->
      let g = 1.0 /. Capacitance.wire_resistance tech ~w:device.w ~l:device.l in
      out.dsrc <- g;
      out.dsnk <- -.g
  in
  let terminal_cap device ~v = Capacitance.terminal ~miller_factor tech device ~v in
  {
    name = "analytic";
    iv;
    iv_derivatives;
    iv_derivatives_into;
    threshold;
    src_cap = terminal_cap;
    snk_cap = terminal_cap;
    input_cap =
      (fun (device : Device.t) ->
        match device.kind with
        | Device.Nmos | Device.Pmos -> Capacitance.gate tech ~w:device.w ~l:device.l
        | Device.Wire -> 0.0);
  }
