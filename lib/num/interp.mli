(** Interpolation over uniform grids.

    Used by the tabular device model: queries with terminal voltages off
    the characterization grid are interpolated from neighbour points
    (paper §V-A). *)

type axis = {
  start : float;
  step : float;  (** > 0 *)
  count : int;  (** >= 2 *)
}

val axis : start:float -> stop:float -> count:int -> axis
(** Uniform axis of [count] knots spanning [start, stop].
    @raise Invalid_argument if [count < 2] or [stop <= start]. *)

val knot : axis -> int -> float

val locate : axis -> float -> int * float
(** [locate ax x] is [(i, t)] with [i] the cell index (clamped to the grid)
    and [t] in [0, 1] the position within the cell; values outside the grid
    clamp to the border cell and extrapolate linearly. *)

val locate_index : axis -> float -> int
(** Just the (clamped) cell index of {!locate} — allocation-free. *)

val locate_frac : axis -> float -> int -> float
(** [locate_frac ax x i] is the in-cell fraction of [x] relative to knot
    [i]; with [i = locate_index ax x] it matches {!locate}'s fraction
    bit-for-bit. Inlinable, so hot callers get it unboxed. *)

val linear : axis -> Vec.t -> float -> float
(** 1-D piecewise-linear interpolation of samples given at the knots. *)

val bilinear : axis -> axis -> Mat.t -> float -> float -> float
(** [bilinear ax ay table x y] with [table] of dims [ax.count] x [ay.count]. *)

(** {2 Non-uniform grids}

    Characterization tables (delay vs. input slew and load) use
    hand-picked breakpoints rather than uniform axes. *)

val locate_sorted : float array -> float -> int * float
(** [locate_sorted xs x] for strictly increasing [xs] (length >= 2):
    [(i, t)] with [xs.(i) <= x < xs.(i+1)] and [t] the cell fraction;
    clamps to the border cells (extrapolating [t] outside [0, 1]).
    @raise Invalid_argument on a short or non-increasing axis. *)

val piecewise_linear : xs:float array -> ys:float array -> float -> float
(** 1-D interpolation on a non-uniform axis. *)

val table_lookup : xs:float array -> ys:float array -> Mat.t -> float -> float -> float
(** Bilinear interpolation on non-uniform axes; [table] has dims
    [length xs] x [length ys]. *)
