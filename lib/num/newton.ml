type outcome = {
  x : Vec.t;
  iterations : int;
  residual_norm : float;
  converged : bool;
  stalled : bool;
}

type problem = {
  residual : Vec.t -> Vec.t;
  solve_linearized : Vec.t -> Vec.t -> Vec.t;
}

type config = {
  max_iterations : int;
  residual_tolerance : float;
  step_tolerance : float;
  damping : float;
  max_step : float option;
}

let default_config =
  {
    max_iterations = 60;
    residual_tolerance = 1e-9;
    step_tolerance = 1e-12;
    damping = 1.0;
    max_step = None;
  }

let clamp_step max_step dx =
  match max_step with
  | None -> dx
  | Some limit ->
    let mag = Vec.norm_inf dx in
    if mag > limit && mag > 0.0 then Vec.scale (limit /. mag) dx else dx

let solve ?(config = default_config) problem x0 =
  let rec loop x iter =
    let f = problem.residual x in
    let fnorm = Vec.norm_inf f in
    if fnorm <= config.residual_tolerance then
      { x; iterations = iter; residual_norm = fnorm; converged = true; stalled = false }
    else if iter >= config.max_iterations then
      { x; iterations = iter; residual_norm = fnorm; converged = false; stalled = false }
    else
      match problem.solve_linearized x f with
      | exception _ ->
        { x; iterations = iter; residual_norm = fnorm; converged = false; stalled = false }
      | dx ->
        let dx = clamp_step config.max_step dx in
        let step_norm = Vec.norm_inf dx in
        let x' =
          Vec.init (Vec.dim x) (fun i -> x.{i} -. (config.damping *. dx.{i}))
        in
        if step_norm <= config.step_tolerance then
          (* the iteration can no longer move: accept at a deliberately
             loosened tolerance, but flag the stall so callers (and
             telemetry) can tell this apart from a clean convergence *)
          let f' = problem.residual x' in
          let fnorm' = Vec.norm_inf f' in
          {
            x = x';
            iterations = iter + 1;
            residual_norm = fnorm';
            converged = fnorm' <= config.residual_tolerance *. 10.0;
            stalled = true;
          }
        else loop x' (iter + 1)
  in
  loop (Vec.copy x0) 0
