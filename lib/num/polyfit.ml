let fit ~degree pts =
  let m = degree + 1 in
  if Array.length pts < m then invalid_arg "Polyfit.fit: not enough points";
  (* normal equations: (X^T X) c = X^T y with X the Vandermonde matrix *)
  let a = Mat.create m m and b = Vec.create m in
  Array.iter
    (fun (x, y) ->
      let powers = Array.make (2 * m) 1.0 in
      for k = 1 to (2 * m) - 1 do
        powers.(k) <- powers.(k - 1) *. x
      done;
      for i = 0 to m - 1 do
        b.{i} <- b.{i} +. (powers.(i) *. y);
        for j = 0 to m - 1 do
          Mat.add_to a i j powers.(i + j)
        done
      done)
    pts;
  Vec.to_array (Lu.solve a b)

let eval c x =
  let acc = ref 0.0 in
  for i = Array.length c - 1 downto 0 do
    acc := (!acc *. x) +. c.(i)
  done;
  !acc

let eval_deriv c x =
  let acc = ref 0.0 in
  for i = Array.length c - 1 downto 1 do
    acc := (!acc *. x) +. (float_of_int i *. c.(i))
  done;
  !acc

let linear pts =
  match fit ~degree:1 pts with
  | [| c0; c1 |] -> (c0, c1)
  | _ -> assert false

let quadratic pts =
  match fit ~degree:2 pts with
  | [| c0; c1; c2 |] -> (c0, c1, c2)
  | _ -> assert false

let max_residual c pts =
  Array.fold_left
    (fun acc (x, y) -> Float.max acc (Float.abs (eval c x -. y)))
    0.0 pts
