(** Tridiagonal systems (Thomas algorithm, O(n)). *)

type t = {
  lower : Vec.t;  (** sub-diagonal, length n (entry 0 unused) *)
  diag : Vec.t;  (** main diagonal, length n *)
  upper : Vec.t;  (** super-diagonal, length n (entry n-1 unused) *)
}

exception Singular of int

val make : lower:Vec.t -> diag:Vec.t -> upper:Vec.t -> t
(** @raise Invalid_argument if the three bands differ in length. *)

val dim : t -> int

val of_mat : Mat.t -> t
(** Extract the three bands of a square matrix (off-band entries ignored). *)

val to_mat : t -> Mat.t

val solve : t -> Vec.t -> Vec.t
(** Thomas algorithm. @raise Singular on a zero pivot (no pivoting is
    performed; intended for diagonally-dominant timing systems). *)

val solve_into :
  n:int ->
  lower:Vec.t ->
  diag:Vec.t ->
  upper:Vec.t ->
  cp:Vec.t ->
  dp:Vec.t ->
  b:Vec.t ->
  x:Vec.t ->
  unit
(** Allocation-free Thomas kernel over the {e first [n] entries} of
    capacity-sized buffers — bit-identical to {!solve} on the same bands.
    [cp]/[dp] are scratch for the forward sweep's modified coefficients;
    the solution lands in [x]. Entries at index [>= n] of every array are
    neither read nor written, so buffers may be reused across systems of
    different sizes without clearing.
    @raise Singular on a zero pivot.
    @raise Invalid_argument if any buffer is shorter than [n]. *)

val mul_vec : t -> Vec.t -> Vec.t
