type t = { rows : int; cols : int; data : Vec.t }

let create rows cols =
  if rows < 0 || cols < 0 then invalid_arg "Mat.create: negative dimension";
  { rows; cols; data = Vec.create (rows * cols) }

let of_vec ~rows ~cols data =
  if rows < 0 || cols < 0 then invalid_arg "Mat.of_vec: negative dimension";
  if Vec.dim data <> rows * cols then
    invalid_arg "Mat.of_vec: data length mismatch";
  { rows; cols; data }

let init rows cols f =
  let m = create rows cols in
  for i = 0 to rows - 1 do
    for j = 0 to cols - 1 do
      m.data.{(i * cols) + j} <- f i j
    done
  done;
  m

let identity n = init n n (fun i j -> if i = j then 1.0 else 0.0)

let copy m = { m with data = Vec.copy m.data }

let get m i j = m.data.{(i * m.cols) + j}

let set m i j x = m.data.{(i * m.cols) + j} <- x

let add_to m i j x = m.data.{(i * m.cols) + j} <- m.data.{(i * m.cols) + j} +. x

let dims m = (m.rows, m.cols)

let of_rows rows =
  let r = Array.length rows in
  if r = 0 then create 0 0
  else begin
    let c = Array.length rows.(0) in
    Array.iter
      (fun row ->
        if Array.length row <> c then invalid_arg "Mat.of_rows: ragged rows")
      rows;
    init r c (fun i j -> rows.(i).(j))
  end

let to_rows m = Array.init m.rows (fun i -> Array.init m.cols (fun j -> get m i j))

let transpose m = init m.cols m.rows (fun i j -> get m j i)

let mul a b =
  if a.cols <> b.rows then invalid_arg "Mat.mul: dimension mismatch";
  let m = create a.rows b.cols in
  for i = 0 to a.rows - 1 do
    for k = 0 to a.cols - 1 do
      let aik = get a i k in
      if aik <> 0.0 then
        for j = 0 to b.cols - 1 do
          add_to m i j (aik *. get b k j)
        done
    done
  done;
  m

let mul_vec a x =
  if a.cols <> Vec.dim x then invalid_arg "Mat.mul_vec: dimension mismatch";
  Vec.init a.rows (fun i ->
      let s = ref 0.0 in
      for j = 0 to a.cols - 1 do
        s := !s +. (get a i j *. x.{j})
      done;
      !s)

let scale k m = { m with data = Vec.scale k m.data }

let binop name f a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg (Printf.sprintf "Mat.%s: dimension mismatch" name);
  { a with data = Vec.map2 f a.data b.data }

let add a b = binop "add" ( +. ) a b

let sub a b = binop "sub" ( -. ) a b

let max_abs_diff a b =
  if a.rows <> b.rows || a.cols <> b.cols then
    invalid_arg "Mat.max_abs_diff: dimension mismatch";
  Vec.max_abs_diff a.data b.data

let pp fmt m =
  for i = 0 to m.rows - 1 do
    Format.fprintf fmt "[ ";
    for j = 0 to m.cols - 1 do
      Format.fprintf fmt "%10.4g " (get m i j)
    done;
    Format.fprintf fmt "]@\n"
  done
