(** Dense floating-point vectors.

    Thin wrappers over [float array] used throughout the numeric kernels.
    All functions are total unless stated otherwise; dimension mismatches
    raise [Invalid_argument]. *)

type t = float array

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val init : int -> (int -> float) -> t

val copy : t -> t

val dim : t -> int

val of_list : float list -> t

val to_list : t -> float list

val fill : t -> float -> unit

val add : t -> t -> t
(** Elementwise sum. *)

val sub : t -> t -> t
(** Elementwise difference. *)

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a*x + y] in place. *)

val dot : t -> t -> float

val check_prefix1 : string -> int -> t -> unit
(** [check_prefix1 name n v] validates that [v] has at least [n] entries
    (and [n >= 0]); [name] labels the raised [Invalid_argument].
    Allocation-free — the in-place kernels call it once per operand. *)

val check_prefix : string -> int -> t list -> unit
(** List convenience over {!check_prefix1}; builds its argument list at
    the call site, so hot paths should prefer the single-buffer form. *)

val dot_n : int -> t -> t -> float
(** [dot_n n x y] is the dot product of the first [n] entries, accumulated
    in index order exactly as {!dot} — the prefix form the in-place solver
    kernels use so capacity-sized scratch buffers never enter the product.
    @raise Invalid_argument if either vector is shorter than [n]. *)

val blit_n : int -> t -> t -> unit
(** [blit_n n x y] copies the first [n] entries of [x] into [y]. *)

val fill_n : int -> t -> float -> unit
(** [fill_n n v x] sets the first [n] entries of [v] to [x]. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max absolute entry; 0 for the empty vector. *)

val max_abs_diff : t -> t -> float
(** [max_abs_diff x y] is [norm_inf (sub x y)]. *)

val map2 : (float -> float -> float) -> t -> t -> t

val pp : Format.formatter -> t -> unit
