(** Dense floating-point vectors.

    Bigarray-backed ([float64]/[c_layout]) so the numeric kernels run
    over unboxed, contiguous storage, and larger slabs can be carved
    into zero-copy {!view}s sharing one allocation. The type is kept
    transparent: consumers index with the [v.{i}] Bigarray syntax.
    All functions are total unless stated otherwise; dimension
    mismatches raise [Invalid_argument]. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

val create : int -> t
(** [create n] is a zero vector of length [n]. *)

val init : int -> (int -> float) -> t
(** [init n f] fills indices [0 .. n-1] in increasing order. *)

val copy : t -> t

external dim : t -> int = "%caml_ba_dim_1"

val of_array : float array -> t

val to_array : t -> float array

val of_list : float list -> t

val to_list : t -> float list

val fill : t -> float -> unit

val view : t -> pos:int -> len:int -> t
(** [view v ~pos ~len] is the zero-copy [Array1.sub] window
    [v.(pos .. pos+len-1)]; writes through the view are visible in [v].
    @raise Invalid_argument when the window exceeds [v]. *)

external get : t -> int -> float = "%caml_ba_ref_1"

external set : t -> int -> float -> unit = "%caml_ba_set_1"

external unsafe_get : t -> int -> float = "%caml_ba_unsafe_ref_1"
(** Unchecked access — only after {!check_prefix1} has validated the
    index range.

    The four accessors (and [dim]) are [external] compiler primitives
    rather than wrapper functions on purpose: dune's dev profile builds
    with [-opaque], which disables cross-module inlining, and a
    non-inlined float-returning accessor boxes its result on every call
    — the hot kernels would pay ~4 words per element access. A primitive
    declared in the interface specializes at every call site (the
    element kind and layout are statically known through {!t}), so reads
    and writes compile to direct unboxed memory accesses in all
    profiles. *)

external unsafe_set : t -> int -> float -> unit = "%caml_ba_unsafe_set_1"

val add : t -> t -> t
(** Elementwise sum. *)

val sub : t -> t -> t
(** Elementwise difference. *)

val scale : float -> t -> t

val axpy : float -> t -> t -> unit
(** [axpy a x y] updates [y <- a*x + y] in place. *)

val dot : t -> t -> float

val check_prefix1 : string -> int -> t -> unit
(** [check_prefix1 name n v] validates that [v] has at least [n] entries
    (and [n >= 0]); [name] labels the raised [Invalid_argument].
    Allocation-free — the in-place kernels call it once per operand and
    then index the first [n] entries unchecked. *)

val check_prefix : string -> int -> t list -> unit
(** List convenience over {!check_prefix1}; builds its argument list at
    the call site, so hot paths should prefer the single-buffer form. *)

val dot_n : int -> t -> t -> float
(** [dot_n n x y] is the dot product of the first [n] entries, accumulated
    in index order exactly as {!dot} — the prefix form the in-place solver
    kernels use so capacity-sized scratch buffers never enter the product.
    @raise Invalid_argument if either vector is shorter than [n]. *)

val blit_n : int -> t -> t -> unit
(** [blit_n n x y] copies the first [n] entries of [x] into [y]. *)

val fill_n : int -> t -> float -> unit
(** [fill_n n v x] sets the first [n] entries of [v] to [x]. *)

val norm2 : t -> float
(** Euclidean norm. *)

val norm_inf : t -> float
(** Max absolute entry; 0 for the empty vector. *)

val max_abs_diff : t -> t -> float
(** [max_abs_diff x y] is [norm_inf (sub x y)]. *)

val map2 : (float -> float -> float) -> t -> t -> t

val pp : Format.formatter -> t -> unit
