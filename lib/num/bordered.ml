exception Singular

type t = { core : Tridiag.t; last_col : Vec.t; last_row : Vec.t; corner : float }

let dim t = Tridiag.dim t.core + 1

let to_mat t =
  let n = Tridiag.dim t.core in
  let m = Mat.create (n + 1) (n + 1) in
  let core = Tridiag.to_mat t.core in
  for i = 0 to n - 1 do
    for j = 0 to n - 1 do
      Mat.set m i j (Mat.get core i j)
    done;
    Mat.set m i n t.last_col.{i};
    Mat.set m n i t.last_row.{i}
  done;
  Mat.set m n n t.corner;
  m

(* In-place block elimination over the first [n + 1] entries of
   capacity-sized buffers; the arithmetic of [solve], allocation-free.
   [cp]/[dp] are the Thomas scratch, [y]/[z] hold the two tridiagonal
   solves, the solution lands in [x.(0 .. n)]. *)
let solve_into ~n ~lower ~diag ~upper ~last_col ~last_row ~corner ~cp ~dp ~y ~z
    ~b ~x =
  Vec.check_prefix1 "Bordered.solve_into" n lower;
  Vec.check_prefix1 "Bordered.solve_into" n diag;
  Vec.check_prefix1 "Bordered.solve_into" n upper;
  Vec.check_prefix1 "Bordered.solve_into" n last_col;
  Vec.check_prefix1 "Bordered.solve_into" n last_row;
  Vec.check_prefix1 "Bordered.solve_into" (n + 1) cp;
  Vec.check_prefix1 "Bordered.solve_into" (n + 1) dp;
  Vec.check_prefix1 "Bordered.solve_into" (n + 1) y;
  Vec.check_prefix1 "Bordered.solve_into" (n + 1) z;
  Vec.check_prefix1 "Bordered.solve_into" (n + 1) b;
  Vec.check_prefix1 "Bordered.solve_into" (n + 1) x;
  if n = 0 then begin
    if Float.abs corner < 1e-300 then raise Singular;
    Vec.unsafe_set x 0 (Vec.unsafe_get b 0 /. corner)
  end
  else begin
    let g = Vec.unsafe_get b n in
    Tridiag.solve_into ~n ~lower ~diag ~upper ~cp ~dp ~b ~x:y;
    Tridiag.solve_into ~n ~lower ~diag ~upper ~cp ~dp ~b:last_col ~x:z;
    let schur = corner -. Vec.dot_n n last_row z in
    if Float.abs schur < 1e-300 then raise Singular;
    let xd = (g -. Vec.dot_n n last_row y) /. schur in
    for i = 0 to n - 1 do
      Vec.unsafe_set x i (Vec.unsafe_get y i -. (Vec.unsafe_get z i *. xd))
    done;
    Vec.unsafe_set x n xd
  end

let solve t b =
  let n = Tridiag.dim t.core in
  if Vec.dim b <> n + 1 then invalid_arg "Bordered.solve: dimension mismatch";
  if Vec.dim t.last_col <> n || Vec.dim t.last_row <> n then
    invalid_arg "Bordered.solve: border length mismatch";
  let cp = Vec.create (n + 1) and dp = Vec.create (n + 1) in
  let y = Vec.create (n + 1) and z = Vec.create (n + 1) in
  let x = Vec.create (n + 1) in
  solve_into ~n ~lower:t.core.Tridiag.lower ~diag:t.core.Tridiag.diag
    ~upper:t.core.Tridiag.upper ~last_col:t.last_col ~last_row:t.last_row
    ~corner:t.corner ~cp ~dp ~y ~z ~b ~x;
  x
