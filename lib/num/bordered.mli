(** Bordered tridiagonal systems.

    The per-region QWM Jacobian has the block shape

    {[ [ T  u ] [xa]   [f]
       [ vT d ] [xd] = [g] ]}

    with [T] tridiagonal (n x n), [u] the last column, [vT] the last row and
    [d] the corner scalar. Block elimination needs two tridiagonal solves:
    [xd = (g - vT T^-1 f) / (d - vT T^-1 u)], [xa = T^-1 (f - u xd)].
    Total cost O(n), the complexity the paper claims for its
    Sherman–Morrison formulation. *)

exception Singular

type t = {
  core : Tridiag.t;
  last_col : Vec.t;  (** u, length n *)
  last_row : Vec.t;  (** v, length n *)
  corner : float;  (** d *)
}

val dim : t -> int
(** Size of the full system, [n + 1]. *)

val to_mat : t -> Mat.t
(** Densify (for tests and the dense-LU ablation path). *)

val solve : t -> Vec.t -> Vec.t
(** [solve sys b] with [b] of length [n + 1].
    @raise Singular when the Schur complement vanishes.
    @raise Tridiag.Singular when the tridiagonal core does. *)

val solve_into :
  n:int ->
  lower:Vec.t ->
  diag:Vec.t ->
  upper:Vec.t ->
  last_col:Vec.t ->
  last_row:Vec.t ->
  corner:float ->
  cp:Vec.t ->
  dp:Vec.t ->
  y:Vec.t ->
  z:Vec.t ->
  b:Vec.t ->
  x:Vec.t ->
  unit
(** Allocation-free block elimination over the first [n + 1] entries of
    capacity-sized buffers — bit-identical to {!solve} on the same system.
    The bands and borders use their first [n] entries; [b], [x] and the
    scratch vectors [cp]/[dp] (Thomas coefficients) and [y]/[z] (the two
    tridiagonal solves) use their first [n + 1]. Nothing past those
    prefixes is read or written.
    @raise Singular / Tridiag.Singular as {!solve}.
    @raise Invalid_argument if any buffer is too short. *)
