(** LU decomposition with partial pivoting, and direct dense solves. *)

exception Singular of int
(** Raised when elimination meets a (near-)zero pivot; the payload is the
    offending column. *)

type factor
(** A factored matrix (P*A = L*U), reusable for multiple right-hand sides. *)

val factorize : Mat.t -> factor
(** @raise Singular if the matrix is numerically singular.
    @raise Invalid_argument on a non-square matrix. *)

val solve_factored : factor -> Vec.t -> Vec.t

val solve : Mat.t -> Vec.t -> Vec.t
(** [solve a b] solves [a x = b]. *)

val factorize_into : n:int -> Mat.t -> perm:int array -> unit
(** In-place LU factorization (partial pivoting) of the leading [n] x [n]
    block of the matrix — bit-identical pivot choices and elimination to
    {!factorize} on an [n] x [n] copy. The matrix's column count is the
    row stride, so one capacity-sized matrix hosts systems of any
    [n <= min rows cols]; the caller must (re)stamp the leading block
    before each call since the factors overwrite it. [perm.(0 .. n-1)]
    receives the row permutation.
    @raise Singular on a numerically singular block.
    @raise Invalid_argument if the block or [perm] is too small. *)

val solve_factored_into :
  n:int -> Mat.t -> perm:int array -> b:Vec.t -> x:Vec.t -> unit
(** Substitution on a {!factorize_into}-factored block: solves into
    [x.(0 .. n-1)] reading [b.(0 .. n-1)], allocation-free and
    bit-identical to {!solve_factored}. [b] and [x] must not alias.
    @raise Invalid_argument if a buffer is shorter than [n]. *)

val det : Mat.t -> float
(** Determinant via LU; 0 for singular matrices. *)

val inverse : Mat.t -> Mat.t
