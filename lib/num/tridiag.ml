type t = { lower : Vec.t; diag : Vec.t; upper : Vec.t }

exception Singular of int

let make ~lower ~diag ~upper =
  let n = Vec.dim diag in
  if Vec.dim lower <> n || Vec.dim upper <> n then
    invalid_arg "Tridiag.make: band length mismatch";
  { lower; diag; upper }

let dim t = Vec.dim t.diag

let of_mat m =
  let n, cols = Mat.dims m in
  if n <> cols then invalid_arg "Tridiag.of_mat: non-square matrix";
  let lower = Vec.create n and diag = Vec.create n and upper = Vec.create n in
  for i = 0 to n - 1 do
    if i > 0 then lower.{i} <- Mat.get m i (i - 1);
    diag.{i} <- Mat.get m i i;
    if i < n - 1 then upper.{i} <- Mat.get m i (i + 1)
  done;
  { lower; diag; upper }

let to_mat t =
  let n = dim t in
  Mat.init n n (fun i j ->
      if j = i - 1 then t.lower.{i}
      else if j = i then t.diag.{i}
      else if j = i + 1 then t.upper.{i}
      else 0.0)

(* In-place Thomas kernel over the first [n] entries of capacity-sized
   buffers: exactly the arithmetic of [solve], allocation-free. [cp]/[dp]
   hold the forward sweep's modified coefficients, [x] receives the
   solution; entries past [n] are never read or written. The prefix
   checks are hoisted here so the sweep loops index unchecked. *)
let solve_into ~n ~lower ~diag ~upper ~cp ~dp ~b ~x =
  Vec.check_prefix1 "Tridiag.solve_into" n lower;
  Vec.check_prefix1 "Tridiag.solve_into" n diag;
  Vec.check_prefix1 "Tridiag.solve_into" n upper;
  Vec.check_prefix1 "Tridiag.solve_into" n cp;
  Vec.check_prefix1 "Tridiag.solve_into" n dp;
  Vec.check_prefix1 "Tridiag.solve_into" n b;
  Vec.check_prefix1 "Tridiag.solve_into" n x;
  if n > 0 then begin
    let d0 = Vec.unsafe_get diag 0 in
    if Float.abs d0 < 1e-300 then raise (Singular 0);
    Vec.unsafe_set cp 0 (Vec.unsafe_get upper 0 /. d0);
    Vec.unsafe_set dp 0 (Vec.unsafe_get b 0 /. d0);
    for i = 1 to n - 1 do
      let li = Vec.unsafe_get lower i in
      let denom = Vec.unsafe_get diag i -. (li *. Vec.unsafe_get cp (i - 1)) in
      if Float.abs denom < 1e-300 then raise (Singular i);
      if i < n - 1 then Vec.unsafe_set cp i (Vec.unsafe_get upper i /. denom);
      Vec.unsafe_set dp i
        ((Vec.unsafe_get b i -. (li *. Vec.unsafe_get dp (i - 1))) /. denom)
    done;
    Vec.unsafe_set x (n - 1) (Vec.unsafe_get dp (n - 1));
    for i = n - 2 downto 0 do
      Vec.unsafe_set x i
        (Vec.unsafe_get dp i -. (Vec.unsafe_get cp i *. Vec.unsafe_get x (i + 1)))
    done
  end

let solve t b =
  let n = dim t in
  if Vec.dim b <> n then invalid_arg "Tridiag.solve: dimension mismatch";
  if n = 0 then Vec.create 0
  else begin
    let cp = Vec.create n and dp = Vec.create n in
    let x = Vec.create n in
    solve_into ~n ~lower:t.lower ~diag:t.diag ~upper:t.upper ~cp ~dp ~b ~x;
    x
  end

let mul_vec t x =
  let n = dim t in
  if Vec.dim x <> n then invalid_arg "Tridiag.mul_vec: dimension mismatch";
  Vec.init n (fun i ->
      let s = ref (t.diag.{i} *. x.{i}) in
      if i > 0 then s := !s +. (t.lower.{i} *. x.{i - 1});
      if i < n - 1 then s := !s +. (t.upper.{i} *. x.{i + 1});
      !s)
