exception Singular of int

type factor = { lu : Mat.t; perm : int array; sign : float }

let pivot_epsilon = 1e-300

(* Doolittle LU with partial pivoting; the combined L\U factors are stored in
   one matrix and [perm] records row exchanges. *)
let factorize a =
  let n, cols = Mat.dims a in
  if n <> cols then invalid_arg "Lu.factorize: non-square matrix";
  let lu = Mat.copy a in
  let perm = Array.init n (fun i -> i) in
  let sign = ref 1.0 in
  let swap_rows i j =
    if i <> j then begin
      for c = 0 to n - 1 do
        let t = Mat.get lu i c in
        Mat.set lu i c (Mat.get lu j c);
        Mat.set lu j c t
      done;
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t;
      sign := -. !sign
    end
  in
  for k = 0 to n - 1 do
    let best = ref k and best_mag = ref (Float.abs (Mat.get lu k k)) in
    for i = k + 1 to n - 1 do
      let mag = Float.abs (Mat.get lu i k) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if !best_mag < pivot_epsilon then raise (Singular k);
    swap_rows k !best;
    let pivot = Mat.get lu k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get lu i k /. pivot in
      Mat.set lu i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Mat.set lu i j (Mat.get lu i j -. (factor *. Mat.get lu k j))
        done
    done
  done;
  { lu; perm; sign = !sign }

let solve_factored { lu; perm; sign = _ } b =
  let n, _ = Mat.dims lu in
  if Vec.dim b <> n then invalid_arg "Lu.solve_factored: dimension mismatch";
  let x = Vec.init n (fun i -> b.{perm.(i)}) in
  for i = 1 to n - 1 do
    let s = ref x.{i} in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get lu i j *. x.{j})
    done;
    x.{i} <- !s
  done;
  for i = n - 1 downto 0 do
    let s = ref x.{i} in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get lu i j *. x.{j})
    done;
    x.{i} <- !s /. Mat.get lu i i
  done;
  x

(* In-place factorization of the leading [n] x [n] block of [m] (the
   matrix's column count is the row stride, so a capacity-sized matrix can
   host systems of any [n <= min rows cols]): the pivoting and elimination
   arithmetic of [factorize], allocation-free. [perm.(0 .. n-1)] receives
   the row permutation. Entries outside the leading block are untouched. *)
let factorize_into ~n m ~perm =
  let rows, cols = Mat.dims m in
  if n < 0 || n > rows || n > cols then
    invalid_arg "Lu.factorize_into: block exceeds matrix";
  if Array.length perm < n then invalid_arg "Lu.factorize_into: perm too short";
  for i = 0 to n - 1 do
    perm.(i) <- i
  done;
  let swap_rows i j =
    if i <> j then begin
      for c = 0 to n - 1 do
        let t = Mat.get m i c in
        Mat.set m i c (Mat.get m j c);
        Mat.set m j c t
      done;
      let t = perm.(i) in
      perm.(i) <- perm.(j);
      perm.(j) <- t
    end
  in
  for k = 0 to n - 1 do
    let best = ref k and best_mag = ref (Float.abs (Mat.get m k k)) in
    for i = k + 1 to n - 1 do
      let mag = Float.abs (Mat.get m i k) in
      if mag > !best_mag then begin
        best := i;
        best_mag := mag
      end
    done;
    if !best_mag < pivot_epsilon then raise (Singular k);
    swap_rows k !best;
    let pivot = Mat.get m k k in
    for i = k + 1 to n - 1 do
      let factor = Mat.get m i k /. pivot in
      Mat.set m i k factor;
      if factor <> 0.0 then
        for j = k + 1 to n - 1 do
          Mat.set m i j (Mat.get m i j -. (factor *. Mat.get m k j))
        done
    done
  done

(* Forward/back substitution on an [factorize_into]-factored block,
   writing the solution into [x.(0 .. n-1)]. [b] is only read. *)
let solve_factored_into ~n m ~perm ~b ~x =
  Vec.check_prefix1 "Lu.solve_factored_into" n b;
  Vec.check_prefix1 "Lu.solve_factored_into" n x;
  if Array.length perm < n then
    invalid_arg "Lu.solve_factored_into: perm too short";
  for i = 0 to n - 1 do
    Vec.unsafe_set x i (Vec.unsafe_get b perm.(i))
  done;
  for i = 1 to n - 1 do
    let s = ref (Vec.unsafe_get x i) in
    for j = 0 to i - 1 do
      s := !s -. (Mat.get m i j *. Vec.unsafe_get x j)
    done;
    Vec.unsafe_set x i !s
  done;
  for i = n - 1 downto 0 do
    let s = ref (Vec.unsafe_get x i) in
    for j = i + 1 to n - 1 do
      s := !s -. (Mat.get m i j *. Vec.unsafe_get x j)
    done;
    Vec.unsafe_set x i (!s /. Mat.get m i i)
  done

let solve a b = solve_factored (factorize a) b

let det a =
  match factorize a with
  | exception Singular _ -> 0.0
  | { lu; sign; _ } ->
    let n, _ = Mat.dims lu in
    let d = ref sign in
    for i = 0 to n - 1 do
      d := !d *. Mat.get lu i i
    done;
    !d

let inverse a =
  let f = factorize a in
  let n, _ = Mat.dims a in
  let inv = Mat.create n n in
  for j = 0 to n - 1 do
    let e = Vec.create n in
    e.{j} <- 1.0;
    let col = solve_factored f e in
    for i = 0 to n - 1 do
      Mat.set inv i j col.{i}
    done
  done;
  inv
