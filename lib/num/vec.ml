(* Bigarray-backed storage: float64/c_layout means the kernels index
   unboxed, contiguous memory, and larger slabs can be carved into
   zero-copy [Array1.sub] views (see [view]) that share that memory. *)

type t = (float, Bigarray.float64_elt, Bigarray.c_layout) Bigarray.Array1.t

let create n =
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  Bigarray.Array1.fill v 0.0;
  v

external dim : t -> int = "%caml_ba_dim_1"

external unsafe_get : t -> int -> float = "%caml_ba_unsafe_ref_1"

external unsafe_set : t -> int -> float -> unit = "%caml_ba_unsafe_set_1"

external get : t -> int -> float = "%caml_ba_ref_1"

external set : t -> int -> float -> unit = "%caml_ba_set_1"

let init n f =
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout n in
  for i = 0 to n - 1 do
    unsafe_set v i (f i)
  done;
  v

let copy x =
  let v = Bigarray.Array1.create Bigarray.float64 Bigarray.c_layout (dim x) in
  Bigarray.Array1.blit x v;
  v

let of_array a = Bigarray.Array1.of_array Bigarray.float64 Bigarray.c_layout a

let to_array x = Array.init (dim x) (fun i -> x.{i})

let of_list l = of_array (Array.of_list l)

let to_list x = Array.to_list (to_array x)

let fill v x = Bigarray.Array1.fill v x

let view v ~pos ~len = Bigarray.Array1.sub v pos len

let check_dims name x y =
  if dim x <> dim y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (dim x) (dim y))

let map2 f x y =
  check_dims "map2" x y;
  init (dim x) (fun i -> f x.{i} y.{i})

let add x y = map2 ( +. ) x y

let sub x y = map2 ( -. ) x y

let scale a x = init (dim x) (fun i -> a *. x.{i})

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to dim x - 1 do
    unsafe_set y i ((a *. unsafe_get x i) +. unsafe_get y i)
  done

let dot x y =
  check_dims "dot" x y;
  let s = ref 0.0 in
  for i = 0 to dim x - 1 do
    s := !s +. (unsafe_get x i *. unsafe_get y i)
  done;
  !s

(* Single-buffer form: the hot-path kernels call this once per operand so
   the check itself never allocates (the list-taking [check_prefix] builds
   its argument list at every call site). After it passes, indices below
   [n] are in bounds, so the kernels may use [unsafe_get]/[unsafe_set]. *)
let[@inline] check_prefix1 name n x =
  if n < 0 then invalid_arg (Printf.sprintf "%s: negative prefix %d" name n);
  if dim x < n then
    invalid_arg
      (Printf.sprintf "%s: prefix %d exceeds length %d" name n (dim x))

let check_prefix name n xs =
  if n < 0 then invalid_arg (Printf.sprintf "%s: negative prefix %d" name n);
  List.iter (fun x -> check_prefix1 name n x) xs

let dot_n n x y =
  check_prefix1 "Vec.dot_n" n x;
  check_prefix1 "Vec.dot_n" n y;
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (unsafe_get x i *. unsafe_get y i)
  done;
  !s

let blit_n n x y =
  check_prefix1 "Vec.blit_n" n x;
  check_prefix1 "Vec.blit_n" n y;
  for i = 0 to n - 1 do
    unsafe_set y i (unsafe_get x i)
  done

let fill_n n v x =
  check_prefix1 "Vec.fill_n" n v;
  for i = 0 to n - 1 do
    unsafe_set v i x
  done

let norm2 x = sqrt (dot x x)

let norm_inf x =
  let m = ref 0.0 in
  for i = 0 to dim x - 1 do
    m := Float.max !m (Float.abs (unsafe_get x i))
  done;
  !m

let max_abs_diff x y =
  check_dims "max_abs_diff" x y;
  let m = ref 0.0 in
  for i = 0 to dim x - 1 do
    m := Float.max !m (Float.abs (unsafe_get x i -. unsafe_get y i))
  done;
  !m

let pp fmt v =
  Format.fprintf fmt "[|";
  for i = 0 to dim v - 1 do
    if i > 0 then Format.fprintf fmt "; ";
    Format.fprintf fmt "%g" v.{i}
  done;
  Format.fprintf fmt "|]"
