type t = float array

let create n = Array.make n 0.0

let init = Array.init

let copy = Array.copy

let dim = Array.length

let of_list = Array.of_list

let to_list = Array.to_list

let fill v x = Array.fill v 0 (Array.length v) x

let check_dims name x y =
  if Array.length x <> Array.length y then
    invalid_arg (Printf.sprintf "Vec.%s: dimension mismatch (%d vs %d)" name
                   (Array.length x) (Array.length y))

let map2 f x y =
  check_dims "map2" x y;
  Array.init (Array.length x) (fun i -> f x.(i) y.(i))

let add x y = map2 ( +. ) x y

let sub x y = map2 ( -. ) x y

let scale a x = Array.map (fun v -> a *. v) x

let axpy a x y =
  check_dims "axpy" x y;
  for i = 0 to Array.length x - 1 do
    y.(i) <- (a *. x.(i)) +. y.(i)
  done

let dot x y =
  check_dims "dot" x y;
  let s = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

(* Single-buffer form: the hot-path kernels call this once per operand so
   the check itself never allocates (the list-taking [check_prefix] builds
   its argument list at every call site). *)
let[@inline] check_prefix1 name n x =
  if n < 0 then invalid_arg (Printf.sprintf "%s: negative prefix %d" name n);
  if Array.length x < n then
    invalid_arg
      (Printf.sprintf "%s: prefix %d exceeds length %d" name n (Array.length x))

let check_prefix name n xs =
  if n < 0 then invalid_arg (Printf.sprintf "%s: negative prefix %d" name n);
  List.iter (fun x -> check_prefix1 name n x) xs

let dot_n n x y =
  check_prefix1 "Vec.dot_n" n x;
  check_prefix1 "Vec.dot_n" n y;
  let s = ref 0.0 in
  for i = 0 to n - 1 do
    s := !s +. (x.(i) *. y.(i))
  done;
  !s

let blit_n n x y =
  check_prefix1 "Vec.blit_n" n x;
  check_prefix1 "Vec.blit_n" n y;
  Array.blit x 0 y 0 n

let fill_n n v x =
  check_prefix1 "Vec.fill_n" n v;
  Array.fill v 0 n x

let norm2 x = sqrt (dot x x)

let norm_inf x = Array.fold_left (fun acc v -> Float.max acc (Float.abs v)) 0.0 x

let max_abs_diff x y =
  check_dims "max_abs_diff" x y;
  let m = ref 0.0 in
  for i = 0 to Array.length x - 1 do
    m := Float.max !m (Float.abs (x.(i) -. y.(i)))
  done;
  !m

let pp fmt v =
  Format.fprintf fmt "[|";
  Array.iteri
    (fun i x ->
      if i > 0 then Format.fprintf fmt "; ";
      Format.fprintf fmt "%g" x)
    v;
  Format.fprintf fmt "|]"
