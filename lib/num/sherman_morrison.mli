(** Sherman–Morrison rank-1 update solves.

    The QWM Jacobian is a tridiagonal matrix plus a rank-1 correction
    [u vT] contributed by the region-length column (paper §IV-B). Given a
    fast solver for the base matrix [A], the update

    {[ (A + u vT)^-1 b = y - (vT y / (1 + vT z)) z ]}

    with [A y = b] and [A z = u] costs two base solves. *)

exception Singular
(** Raised when [1 + vT z] vanishes, i.e. the updated matrix is singular. *)

val solve : base_solve:(Vec.t -> Vec.t) -> u:Vec.t -> v:Vec.t -> Vec.t -> Vec.t
(** [solve ~base_solve ~u ~v b] solves [(A + u vT) x = b] where
    [base_solve] solves systems in [A]. *)

val solve_tridiag : Tridiag.t -> u:Vec.t -> v:Vec.t -> Vec.t -> Vec.t
(** Specialisation with a tridiagonal base matrix, the paper's exact use. *)

val solve_tridiag_into :
  n:int ->
  lower:Vec.t ->
  diag:Vec.t ->
  upper:Vec.t ->
  u:Vec.t ->
  v:Vec.t ->
  cp:Vec.t ->
  dp:Vec.t ->
  y:Vec.t ->
  z:Vec.t ->
  b:Vec.t ->
  x:Vec.t ->
  unit
(** Allocation-free {!solve_tridiag} over the first [n] entries of
    capacity-sized buffers — bit-identical on the same system. [cp]/[dp]
    are Thomas scratch, [y]/[z] the two base solves; the solution lands in
    [x.(0..n-1)]. Nothing past the prefixes is read or written.
    @raise Singular / Tridiag.Singular as the allocating form.
    @raise Invalid_argument if any buffer is shorter than [n]. *)
