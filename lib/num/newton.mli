(** Damped Newton–Raphson for small nonlinear systems F(x) = 0.

    The linear step is delegated to a caller-supplied solver so the same
    driver serves the dense-LU SPICE engine and the bordered-tridiagonal
    QWM engine. *)

type outcome = {
  x : Vec.t;  (** final iterate *)
  iterations : int;
  residual_norm : float;  (** inf-norm of F at the final iterate *)
  converged : bool;
  stalled : bool;
      (** The step-stall exit was taken: a Newton update fell below
          [step_tolerance] before the residual reached
          [residual_tolerance]. A stalled outcome reports
          [converged = true] only under a deliberately loosened
          acceptance of [residual_tolerance *. 10.0] — callers that care
          about full-tolerance convergence must check this flag. *)
}

type problem = {
  residual : Vec.t -> Vec.t;  (** F *)
  solve_linearized : Vec.t -> Vec.t -> Vec.t;
      (** [solve_linearized x f] returns the Newton update [dx] with
          [J(x) dx = f]; may raise to signal a singular Jacobian. *)
}

type config = {
  max_iterations : int;
  residual_tolerance : float;  (** stop when |F|_inf falls below *)
  step_tolerance : float;  (** stop when |dx|_inf falls below *)
  damping : float;  (** fraction of the Newton step taken, in (0, 1] *)
  max_step : float option;  (** clamp |dx|_inf per iteration if given *)
}

val default_config : config
(** 60 iterations, residual 1e-9, step 1e-12, full steps, no clamp. *)

val solve : ?config:config -> problem -> Vec.t -> outcome
(** [solve problem x0] iterates from [x0]. Linear-solver exceptions are
    caught and reported as [converged = false] at the last healthy
    iterate. *)
