exception Singular

let solve ~base_solve ~u ~v b =
  let y = base_solve b in
  let z = base_solve u in
  let denom = 1.0 +. Vec.dot v z in
  if Float.abs denom < 1e-300 then raise Singular;
  let coeff = Vec.dot v y /. denom in
  Vec.init (Vec.dim y) (fun i -> y.{i} -. (coeff *. z.{i}))

let solve_tridiag t ~u ~v b = solve ~base_solve:(Tridiag.solve t) ~u ~v b

(* In-place rank-1-update solve over the first [n] entries of
   capacity-sized buffers, with a tridiagonal base matrix: the arithmetic
   of [solve_tridiag], allocation-free. [cp]/[dp] are the Thomas scratch,
   [y]/[z] hold the two base solves, the solution lands in [x.(0..n-1)]. *)
let solve_tridiag_into ~n ~lower ~diag ~upper ~u ~v ~cp ~dp ~y ~z ~b ~x =
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n lower;
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n diag;
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n upper;
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n u;
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n v;
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n cp;
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n dp;
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n y;
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n z;
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n b;
  Vec.check_prefix1 "Sherman_morrison.solve_tridiag_into" n x;
  Tridiag.solve_into ~n ~lower ~diag ~upper ~cp ~dp ~b ~x:y;
  Tridiag.solve_into ~n ~lower ~diag ~upper ~cp ~dp ~b:u ~x:z;
  let denom = 1.0 +. Vec.dot_n n v z in
  if Float.abs denom < 1e-300 then raise Singular;
  let coeff = Vec.dot_n n v y /. denom in
  for i = 0 to n - 1 do
    Vec.unsafe_set x i (Vec.unsafe_get y i -. (coeff *. Vec.unsafe_get z i))
  done
