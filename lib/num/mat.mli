(** Dense row-major matrices over Bigarray-backed storage. *)

type t = {
  rows : int;
  cols : int;
  data : Vec.t;  (** row-major, length [rows * cols] *)
}

val create : int -> int -> t
(** [create r c] is the zero [r]x[c] matrix. *)

val of_vec : rows:int -> cols:int -> Vec.t -> t
(** [of_vec ~rows ~cols v] wraps [v] (length [rows * cols]) as a matrix
    without copying — [v] may be a {!Vec.view} into a larger slab, so
    workspace matrices share their storage with the owning arena. *)

val init : int -> int -> (int -> int -> float) -> t

val identity : int -> t

val copy : t -> t

val get : t -> int -> int -> float

val set : t -> int -> int -> float -> unit

val add_to : t -> int -> int -> float -> unit
(** [add_to m i j x] accumulates [x] into entry [(i, j)]; the basic
    operation of matrix stamping. *)

val dims : t -> int * int

val of_rows : float array array -> t

val to_rows : t -> float array array

val transpose : t -> t

val mul : t -> t -> t

val mul_vec : t -> Vec.t -> Vec.t

val scale : float -> t -> t

val add : t -> t -> t

val sub : t -> t -> t

val max_abs_diff : t -> t -> float

val pp : Format.formatter -> t -> unit
