type axis = { start : float; step : float; count : int }

let axis ~start ~stop ~count =
  if count < 2 then invalid_arg "Interp.axis: count < 2";
  if stop <= start then invalid_arg "Interp.axis: empty range";
  { start; step = (stop -. start) /. float_of_int (count - 1); count }

let knot ax i = ax.start +. (float_of_int i *. ax.step)

(* Allocation-free halves of [locate]: an immediate-int index and an
   inlinable unboxed fraction, for hot callers that must not build the
   tuple. [locate] is their composition, bit-for-bit. *)
let[@inline] locate_index ax x =
  let raw = (x -. ax.start) /. ax.step in
  let i = int_of_float (Float.floor raw) in
  if i < 0 then 0 else if i > ax.count - 2 then ax.count - 2 else i

let[@inline] locate_frac ax x i = ((x -. ax.start) /. ax.step) -. float_of_int i

let locate ax x =
  let i = locate_index ax x in
  (i, locate_frac ax x i)

let linear ax samples x =
  if Vec.dim samples <> ax.count then
    invalid_arg "Interp.linear: sample count mismatch";
  let i = locate_index ax x in
  let t = locate_frac ax x i in
  samples.{i} +. (t *. (samples.{i + 1} -. samples.{i}))

let check_sorted xs =
  let n = Array.length xs in
  if n < 2 then invalid_arg "Interp: axis needs at least 2 points";
  for i = 1 to n - 1 do
    if xs.(i) <= xs.(i - 1) then invalid_arg "Interp: axis must be strictly increasing"
  done

let locate_sorted xs x =
  check_sorted xs;
  let n = Array.length xs in
  let rec search lo hi =
    if hi - lo <= 1 then lo
    else begin
      let mid = (lo + hi) / 2 in
      if xs.(mid) <= x then search mid hi else search lo mid
    end
  in
  let i = if x < xs.(0) then 0 else min (search 0 (n - 1)) (n - 2) in
  (i, (x -. xs.(i)) /. (xs.(i + 1) -. xs.(i)))

let piecewise_linear ~xs ~ys x =
  if Array.length xs <> Array.length ys then
    invalid_arg "Interp.piecewise_linear: length mismatch";
  let i, t = locate_sorted xs x in
  ys.(i) +. (t *. (ys.(i + 1) -. ys.(i)))

let table_lookup ~xs ~ys table x y =
  let rows, cols = Mat.dims table in
  if rows <> Array.length xs || cols <> Array.length ys then
    invalid_arg "Interp.table_lookup: table dims mismatch";
  let i, tx = locate_sorted xs x in
  let j, ty = locate_sorted ys y in
  let f00 = Mat.get table i j
  and f10 = Mat.get table (i + 1) j
  and f01 = Mat.get table i (j + 1)
  and f11 = Mat.get table (i + 1) (j + 1) in
  ((1.0 -. tx) *. (1.0 -. ty) *. f00)
  +. (tx *. (1.0 -. ty) *. f10)
  +. ((1.0 -. tx) *. ty *. f01)
  +. (tx *. ty *. f11)

let bilinear ax ay table x y =
  let rows, cols = Mat.dims table in
  if rows <> ax.count || cols <> ay.count then
    invalid_arg "Interp.bilinear: table dims mismatch";
  let i, tx = locate ax x in
  let j, ty = locate ay y in
  let f00 = Mat.get table i j
  and f10 = Mat.get table (i + 1) j
  and f01 = Mat.get table i (j + 1)
  and f11 = Mat.get table (i + 1) (j + 1) in
  ((1.0 -. tx) *. (1.0 -. ty) *. f00)
  +. (tx *. (1.0 -. ty) *. f10)
  +. ((1.0 -. tx) *. ty *. f01)
  +. (tx *. ty *. f11)
