(** Per-propagation structure-of-arrays timing and waveform storage.

    One propagation over a frozen graph stores every stage's timing
    scalars in four contiguous float64 columns (plus an int column for
    the critical fanin) instead of an array of boxed option records, and
    collects each stage's output waveform so that, once a run completes,
    {!seal} packs every topological level's piecewise-quadratic
    coefficients and sample grids into one contiguous slab per level.
    Adjacent stages of a level — the unit a work-stealing chunk operates
    on — then occupy one contiguous byte range, which {!range_digest}
    hashes directly without walking boxed piece records.

    Writes go to disjoint per-stage slots, so stages of one level may be
    stored concurrently from different domains without coordination; the
    level barrier of the scheduler orders every read of a fanin slot
    after its write, exactly as for the boxed timing array it replaces. *)

type t

val create : Timing_graph.frozen -> t
(** Empty arena sized for the frozen graph (no stage stored). *)

val length : t -> int
(** Number of stage slots. *)

(** {2 Timing columns} *)

val store :
  t ->
  Timing_graph.stage_id ->
  arrival_in:float ->
  delay:float ->
  slew:float ->
  arrival_out:float ->
  critical_fanin:int ->
  unit
(** Record one stage's timing; [critical_fanin] is [-1] for a primary
    input. Overwrites any previous value for the slot. *)

val has : t -> Timing_graph.stage_id -> bool

val arrival_in : t -> Timing_graph.stage_id -> float
val delay : t -> Timing_graph.stage_id -> float
val slew : t -> Timing_graph.stage_id -> float
val arrival_out : t -> Timing_graph.stage_id -> float

val critical_fanin : t -> Timing_graph.stage_id -> int
(** [-1] when the stage is a primary input. *)

(** {2 Waveform arena} *)

val put_output : t -> Timing_graph.stage_id -> Tqwm_wave.Waveform.quadratic -> unit
(** Stash the stage's output waveform for level packing. *)

val seal : t -> unit
(** Pack every level's stashed outputs into one contiguous slab per
    level (stages in level order, each as a {!Tqwm_wave.Waveform}
    packed block). Idempotent; stages without a stashed output occupy an
    empty range. *)

val output : t -> Timing_graph.stage_id -> Tqwm_wave.Waveform.quadratic option
(** After {!seal}: the packed zero-copy view of the stage's output;
    before {!seal}: the stashed waveform as given to {!put_output}. *)

val level_digest : t -> int -> string
(** After {!seal}: content hash of level [k]'s whole slab (raw float64
    bits). Equal timing results hash equally across schedulers, domain
    counts and chunk sizes.
    @raise Invalid_argument before {!seal} or on an unknown level. *)

val range_digest : t -> Timing_graph.chunk -> string
(** After {!seal}: content hash of the slab range covered by one
    schedule chunk (the waveforms of its adjacent stages).
    @raise Invalid_argument before {!seal} or on an out-of-range chunk. *)
