module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Json = Tqwm_obs.Json
module Alloc = Tqwm_obs.Alloc

let c_propagations = Metrics.counter "sta.parallel_propagations"
let c_wait_ns = Metrics.counter "sta.ready_wait_ns"
let c_steals = Metrics.counter "sta.steals"
let c_chunks = Metrics.counter "sta.chunks"

(* stages-per-domain balance: each worker contributes one observation *)
let h_worker_stages =
  Metrics.histogram "sta.stages_per_worker"
    ~bounds:[| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0 |]

let h_wait_us =
  Metrics.histogram "sta.ready_wait_us_per_worker"
    ~bounds:[| 1.0; 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0; 1_000_000.0 |]

let h_chunks_per_worker =
  Metrics.histogram "sta.chunks_per_worker"
    ~bounds:[| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0 |]

let h_steals_per_worker =
  Metrics.histogram "sta.steals_per_worker"
    ~bounds:[| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0 |]

(* per-domain occupancy: percentage of a worker's wall-clock spent inside
   stage evaluations (the rest is distribution, stealing and barriers) *)
let h_occupancy =
  Metrics.histogram "sta.worker_occupancy_pct"
    ~bounds:[| 10.0; 25.0; 50.0; 75.0; 90.0; 95.0; 99.0 |]

let default_domains () = Domain.recommended_domain_count ()

type scheduler = Ready_queue | Work_stealing

let scheduler_name = function
  | Ready_queue -> "ready"
  | Work_stealing -> "steal"

let scheduler_of_string = function
  | "ready" -> Some Ready_queue
  | "steal" -> Some Work_stealing
  | _ -> None

(* Default chunk size: aim for a handful of chunks per domain on the
   widest level, so load imbalance can be stolen away while the per-chunk
   scheduling cost is amortized over several solves. *)
let auto_chunk ~domains ~width = max 1 (min 32 (width / (4 * domains)))

(* ------------------------------------------------------------------ *)
(* Legacy ready-queue scheduler (kept for A/B comparison via
   [~scheduler:Ready_queue]): per-stage fanin counters feed a shared
   mutex-protected queue. Synchronization is paid per stage, which is
   why it loses once individual solves are cheap. *)

(* Shared scheduler state. [remaining], [ready], [pending] and [failed]
   are only touched under [mutex]; per-stage timing slots are written by
   exactly one worker and only read by workers that popped a dependent
   stage from the queue afterwards, so the mutex orders every cross-domain
   read after its write. *)
type shared = {
  mutex : Mutex.t;
  cond : Condition.t;
  ready : Timing_graph.stage_id Queue.t;
  remaining : int array;  (** un-timed fanin stages per stage *)
  mutable pending : int;  (** stages not yet timed *)
  mutable failed : exn option;
}

let worker ~eval (frozen : Timing_graph.frozen)
    (timings : Arrival.stage_timing option array) s =
  let t_start = Trace.now () in
  let stages_done = ref 0 in
  let wait_seconds = ref 0.0 in
  let rec take () =
    (* called with the mutex held *)
    if s.failed <> None || s.pending = 0 then None
    else if Queue.is_empty s.ready then begin
      let t0 = Trace.now () in
      Condition.wait s.cond s.mutex;
      wait_seconds := !wait_seconds +. (Trace.now () -. t0);
      take ()
    end
    else Some (Queue.pop s.ready)
  in
  let retire () =
    Alloc.flush_domain ();
    Metrics.observe h_worker_stages (float_of_int !stages_done);
    Metrics.observe h_wait_us (!wait_seconds *. 1e6);
    Metrics.add c_wait_ns (int_of_float (!wait_seconds *. 1e9));
    Trace.complete ~name:"sta.worker" ~cat:"sta" ~ts:t_start
      ~dur:(Trace.now () -. t_start)
      ~args:
        [
          ("scheduler", Json.String "ready");
          ("stages", Json.Int !stages_done);
          ("ready_wait_ms", Json.Float (!wait_seconds *. 1e3));
        ]
      ()
  in
  let rec loop () =
    Mutex.lock s.mutex;
    match take () with
    | None ->
      Condition.broadcast s.cond;
      Mutex.unlock s.mutex;
      retire ()
    | Some id ->
      Mutex.unlock s.mutex;
      incr stages_done;
      (match eval id with
      | exception e ->
        Mutex.lock s.mutex;
        if s.failed = None then s.failed <- Some e;
        Condition.broadcast s.cond;
        Mutex.unlock s.mutex;
        retire ()
      | t ->
        timings.(id) <- Some t;
        Mutex.lock s.mutex;
        s.pending <- s.pending - 1;
        let released = ref 0 in
        Array.iter
          (fun (c : Timing_graph.connection) ->
            let j = c.Timing_graph.to_stage in
            s.remaining.(j) <- s.remaining.(j) - 1;
            if s.remaining.(j) = 0 then begin
              Queue.push j s.ready;
              incr released
            end)
          frozen.Timing_graph.fanout.(id);
        (* wake exactly as many sleepers as there is new work for; the
           final completion must wake everyone so the team can retire *)
        if s.pending = 0 then Condition.broadcast s.cond
        else for _ = 1 to !released do Condition.signal s.cond done;
        Mutex.unlock s.mutex;
        loop ())
  in
  loop ()

let propagate_ready ~eval frozen timings ~domains n =
  let s =
    {
      mutex = Mutex.create ();
      cond = Condition.create ();
      ready = Queue.create ();
      remaining = Array.init n (fun i -> Array.length frozen.Timing_graph.fanin.(i));
      pending = n;
      failed = None;
    }
  in
  Array.iter (fun i -> if s.remaining.(i) = 0 then Queue.push i s.ready)
    frozen.Timing_graph.order;
  (* hand the spawner's trace context (request/session ids) to each
     worker domain so stage spans stay attributable *)
  let ctx = Trace.current_context () in
  let team =
    Array.init (min (domains - 1) (max (n - 1) 0)) (fun _ ->
        Domain.spawn (fun () ->
            Trace.with_context ctx (fun () -> worker ~eval frozen timings s)))
  in
  worker ~eval frozen timings s;
  Array.iter Domain.join team;
  match s.failed with Some e -> raise e | None -> ()

(* ------------------------------------------------------------------ *)
(* Level-batched work-stealing scheduler (the default).

   The frozen level schedule is partitioned into contiguous chunks of
   independent stages ({!Timing_graph.level_chunks}); per level, the
   chunks are dealt round-robin into one fixed-capacity Chase-Lev-style
   deque per domain. The owning domain pops at the bottom (LIFO, hot in
   cache); idle domains steal from the top of a victim's deque with a
   single compare-and-set (FIFO, taking the largest remaining run of an
   imbalanced owner). No push ever happens while a level is running, so
   deques only shrink and the classic resize hazards of Chase-Lev do not
   arise; OCaml 5 atomics are sequentially consistent, which makes the
   claim protocol below sound without fences.

   Synchronization is paid per *chunk* — amortized over [chunk_size]
   region solves — instead of per stage, and blocking is reserved for
   the inter-level barrier (bounded spin, then a condition variable, so
   oversubscribed runs yield the core instead of burning it).

   Determinism: chunk boundaries depend only on the frozen schedule and
   the chunk size; a stage's timing depends only on fanin timings, all
   of which live in strictly earlier levels and are published before the
   level barrier opens (happens-before via the [epoch] atomic). So the
   results are bit-identical to sequential propagation regardless of
   which domain ran which chunk or how steals interleaved. *)

type deque = {
  buf : int array;  (** chunk indices; written only during distribution *)
  mutable len : int;  (** valid prefix of [buf] while distributing *)
  top : int Atomic.t;  (** steal end *)
  bottom : int Atomic.t;  (** owner end *)
}

(* owner end: LIFO pop, racing thieves only for the last element *)
let deque_take d =
  let b = Atomic.get d.bottom - 1 in
  Atomic.set d.bottom b;
  let t = Atomic.get d.top in
  if b > t then Some d.buf.(b)
  else if b = t then begin
    (* last element: decide the race with any thief via [top] *)
    let won = Atomic.compare_and_set d.top t (t + 1) in
    Atomic.set d.bottom (t + 1);
    if won then Some d.buf.(b) else None
  end
  else begin
    Atomic.set d.bottom t;
    None
  end

(* thief end: FIFO steal, one CAS claims the element *)
let deque_steal d =
  let t = Atomic.get d.top in
  let b = Atomic.get d.bottom in
  if t >= b then None
  else
    let x = d.buf.(t) in
    if Atomic.compare_and_set d.top t (t + 1) then Some x else None

let deque_is_empty d = Atomic.get d.top >= Atomic.get d.bottom

type steal_shared = {
  chunks : Timing_graph.chunk array array;  (** chunking of the level schedule *)
  deques : deque array;  (** one per worker, refilled per level *)
  epoch : int Atomic.t;  (** highest distributed level; -1 before the first *)
  arrived : int Atomic.t;  (** monotone barrier: level k complete when
                               [arrived = (k+1) * teams] *)
  abort : bool Atomic.t;
  mutable steal_failed : exn option;  (** protected by [gate] *)
  gate : Mutex.t;
  gate_cond : Condition.t;
}

let spin_limit = 200

let wait_until s pred =
  let spins = ref 0 in
  while not (pred ()) do
    if !spins < spin_limit then begin
      incr spins;
      Domain.cpu_relax ()
    end
    else begin
      Mutex.lock s.gate;
      if not (pred ()) then Condition.wait s.gate_cond s.gate;
      Mutex.unlock s.gate
    end
  done

let wake s =
  Mutex.lock s.gate;
  Condition.broadcast s.gate_cond;
  Mutex.unlock s.gate

let fail s e =
  Mutex.lock s.gate;
  if s.steal_failed = None then s.steal_failed <- Some e;
  Mutex.unlock s.gate;
  Atomic.set s.abort true;
  wake s

(* deal level [k]'s chunks round-robin into the deques, then open the
   level; the [epoch] store publishes every buffer write that precedes it *)
let distribute s k =
  let teams = Array.length s.deques in
  Array.iter (fun d -> d.len <- 0) s.deques;
  Array.iteri
    (fun ci (_ : Timing_graph.chunk) ->
      let d = s.deques.(ci mod teams) in
      d.buf.(d.len) <- ci;
      d.len <- d.len + 1)
    s.chunks.(k);
  Array.iter
    (fun d ->
      Atomic.set d.top 0;
      Atomic.set d.bottom d.len)
    s.deques;
  Atomic.set s.epoch k;
  wake s

let steal_worker ~exec_chunk s w =
  let teams = Array.length s.deques in
  let t_start = Trace.now () in
  let stages = ref 0 and chunks = ref 0 and steals = ref 0 in
  let busy = ref 0.0 in
  let num_levels = Array.length s.chunks in
  let should_abort () = Atomic.get s.abort in
  let run_chunk k ci ~stolen =
    let c = s.chunks.(k).(ci) in
    let t0 = Trace.now () in
    (try exec_chunk ~level:k ~chunk:c ~should_abort with e -> fail s e);
    busy := !busy +. (Trace.now () -. t0);
    stages := !stages + c.Timing_graph.length;
    incr chunks;
    if stolen then incr steals
  in
  let rec pull k =
    if not (Atomic.get s.abort) then
      match deque_take s.deques.(w) with
      | Some ci ->
        run_chunk k ci ~stolen:false;
        pull k
      | None -> scan k 1
  and scan k v =
    if v >= teams then begin
      (* a failed CAS race can hide a non-empty victim: deques only
         shrink, so re-scan until every deque is provably empty *)
      if not (Array.for_all deque_is_empty s.deques) then begin
        Domain.cpu_relax ();
        pull k
      end
    end
    else
      match deque_steal s.deques.((w + v) mod teams) with
      | Some ci ->
        run_chunk k ci ~stolen:true;
        pull k
      | None -> scan k (v + 1)
  in
  let k = ref 0 in
  while !k < num_levels && not (Atomic.get s.abort) do
    if w = 0 then distribute s !k
    else wait_until s (fun () -> Atomic.get s.epoch >= !k || Atomic.get s.abort);
    if not (Atomic.get s.abort) then pull !k;
    (* monotone arrival barrier: nobody may touch the deques (and worker 0
       may not refill them) until every worker has left this level's pull
       loop — the target for level k is (k+1)*teams arrivals in total *)
    let target = (!k + 1) * teams in
    if Atomic.fetch_and_add s.arrived 1 + 1 = target then wake s
    else wait_until s (fun () -> Atomic.get s.arrived >= target || Atomic.get s.abort);
    incr k
  done;
  let wall = Trace.now () -. t_start in
  let occupancy = if wall > 0.0 then 100.0 *. !busy /. wall else 0.0 in
  (* worker domains die at the join; fold their domain-local GC growth
     into the process-wide alloc counters before that *)
  Alloc.flush_domain ();
  Metrics.observe h_worker_stages (float_of_int !stages);
  Metrics.observe h_chunks_per_worker (float_of_int !chunks);
  Metrics.observe h_steals_per_worker (float_of_int !steals);
  Metrics.observe h_occupancy occupancy;
  Metrics.add c_chunks !chunks;
  Metrics.add c_steals !steals;
  Trace.complete ~name:"sta.worker" ~cat:"sta" ~ts:t_start ~dur:wall
    ~args:
      [
        ("scheduler", Json.String "steal");
        ("stages", Json.Int !stages);
        ("chunks", Json.Int !chunks);
        ("steals", Json.Int !steals);
        ("occupancy_pct", Json.Float occupancy);
      ]
    ()

(* Run [exec_chunk] over every chunk of the level schedule, level-batched,
   on [domains] domains (the calling one included); re-raises the first
   worker exception after the team is joined. The chunk callback IS the
   batched kernel: it receives a whole run of adjacent stages and loops
   them itself (checking [should_abort] between stages), so the per-stage
   work fuses in the caller with no per-item scheduler round-trip. *)
let run_stealing ~domains ~exec_chunk ~chunks =
  let max_chunks =
    Array.fold_left (fun m c -> max m (Array.length c)) 0 chunks
  in
  let teams = max 1 (min domains max_chunks) in
  let s =
    {
      chunks;
      deques =
        Array.init teams (fun _ ->
            {
              buf = Array.make (max 1 max_chunks) 0;
              len = 0;
              top = Atomic.make 0;
              bottom = Atomic.make 0;
            });
      epoch = Atomic.make (-1);
      arrived = Atomic.make 0;
      abort = Atomic.make false;
      steal_failed = None;
      gate = Mutex.create ();
      gate_cond = Condition.create ();
    }
  in
  let ctx = Trace.current_context () in
  let team =
    Array.init (teams - 1) (fun i ->
        Domain.spawn (fun () ->
            Trace.with_context ctx (fun () -> steal_worker ~exec_chunk s (i + 1))))
  in
  steal_worker ~exec_chunk s 0;
  Array.iter Domain.join team;
  match s.steal_failed with Some e -> raise e | None -> ()

(* Evaluate mutually independent stages concurrently: one synthetic level
   run through the work-stealing scheduler, so unequal stage costs are
   balanced by steals instead of hoping a static stripe lands evenly.
   Used by the incremental engine on wide dirty levels, whose stages
   arrive pre-scheduled (every fanin already timed). *)
let evaluate_stages ~domains ?chunk ~eval ids =
  let n = Array.length ids in
  let domains = max domains 1 in
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Parallel.evaluate_stages: chunk < 1"
  | Some _ | None -> ());
  if domains = 1 || n <= 1 then Array.map eval ids
  else begin
    let chunk_size =
      match chunk with Some c -> c | None -> auto_chunk ~domains ~width:n
    in
    let results = Array.make n None in
    let exec_chunk ~level:_ ~chunk:(c : Timing_graph.chunk) ~should_abort =
      for i = c.Timing_graph.start to c.Timing_graph.start + c.Timing_graph.length - 1 do
        if not (should_abort ()) then results.(i) <- Some (eval ids.(i))
      done
    in
    let nchunks = (n + chunk_size - 1) / chunk_size in
    let chunks =
      [|
        Array.init nchunks (fun i ->
            let start = i * chunk_size in
            {
              Timing_graph.level = 0;
              start;
              length = min chunk_size (n - start);
            });
      |]
    in
    run_stealing ~domains ~exec_chunk ~chunks;
    Array.map Option.get results
  end

let propagate_arena ~model ?(config = Tqwm_core.Config.default)
    ?(default_slew = 20e-12) ?cache ?pi ?domains ?(scheduler = Work_stealing) ?chunk
    graph =
  if default_slew <= 0.0 then invalid_arg "Parallel.propagate: default_slew <= 0";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Parallel.propagate: chunk < 1"
  | Some _ | None -> ());
  let domains =
    match domains with Some d -> max d 1 | None -> default_domains ()
  in
  if domains = 1 then
    Arrival.propagate_arena ~model ~config ~default_slew ?cache ?pi graph
  else begin
    let frozen = Timing_graph.freeze graph in
    let n = Array.length frozen.Timing_graph.scenarios in
    Metrics.incr c_propagations;
    let chunk_size =
      match chunk with
      | Some c -> c
      | None ->
        auto_chunk ~domains ~width:(Timing_graph.max_level_width frozen)
    in
    Trace.with_span ~name:"sta.propagate" ~cat:"sta"
      ~args:
        [
          ("scheduler", Json.String (scheduler_name scheduler));
          ("domains", Json.Int domains);
          ("stages", Json.Int n);
          ("chunk", Json.Int chunk_size);
        ]
      (fun () ->
        let arena = Timing_arena.create frozen in
        (match scheduler with
        | Ready_queue ->
          (* legacy engine: per-stage handoff. Evaluation goes through
             the arena (columns + waveform stash) so its sealed slabs
             digest-match the stealing engine's; the boxed option array
             only drives the engine's readiness bookkeeping. A fanin's
             arena slot is published before its timing enters the boxed
             array under the queue mutex, so readiness implies the arena
             read is safe. *)
          let timings = Array.make n None in
          let eval id =
            Arrival.evaluate_stage_arena ~model ~config ~default_slew ?cache ?pi
              frozen arena id;
            Arrival.timing_of_arena arena id
          in
          propagate_ready ~eval frozen timings ~domains n
        | Work_stealing ->
          (* the batched chunk kernel: one callback per chunk runs the
             fused loop over its adjacent stages, reading fanins from and
             storing results into the arena's contiguous columns *)
          let chunks = Timing_graph.level_chunks frozen ~chunk_size in
          let exec_chunk ~level ~chunk:(c : Timing_graph.chunk) ~should_abort =
            let items = frozen.Timing_graph.levels.(level) in
            for i = c.Timing_graph.start to c.Timing_graph.start + c.Timing_graph.length - 1
            do
              if not (should_abort ()) then
                Arrival.evaluate_stage_arena ~model ~config ~default_slew ?cache ?pi
                  frozen arena items.(i)
            done
          in
          run_stealing ~domains ~exec_chunk ~chunks);
        Timing_arena.seal arena;
        (Arrival.analysis_of_arena arena, arena))
  end

let propagate ~model ?config ?default_slew ?cache ?pi ?domains ?scheduler ?chunk graph =
  fst
    (propagate_arena ~model ?config ?default_slew ?cache ?pi ?domains ?scheduler ?chunk
       graph)
