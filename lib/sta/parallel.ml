module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Json = Tqwm_obs.Json

let c_propagations = Metrics.counter "sta.parallel_propagations"
let c_wait_ns = Metrics.counter "sta.ready_wait_ns"

(* stages-per-domain balance: each worker contributes one observation *)
let h_worker_stages =
  Metrics.histogram "sta.stages_per_worker"
    ~bounds:[| 1.0; 2.0; 5.0; 10.0; 20.0; 50.0; 100.0; 200.0; 500.0; 1000.0 |]

let h_wait_us =
  Metrics.histogram "sta.ready_wait_us_per_worker"
    ~bounds:[| 1.0; 10.0; 100.0; 1_000.0; 10_000.0; 100_000.0; 1_000_000.0 |]

let default_domains () = Domain.recommended_domain_count ()

(* Shared scheduler state. [remaining], [ready], [pending] and [failed]
   are only touched under [mutex]; per-stage timing slots are written by
   exactly one worker and only read by workers that popped a dependent
   stage from the queue afterwards, so the mutex orders every cross-domain
   read after its write. *)
type shared = {
  mutex : Mutex.t;
  cond : Condition.t;
  ready : Timing_graph.stage_id Queue.t;
  remaining : int array;  (** un-timed fanin stages per stage *)
  mutable pending : int;  (** stages not yet timed *)
  mutable failed : exn option;
}

let worker ~eval (frozen : Timing_graph.frozen)
    (timings : Arrival.stage_timing option array) s =
  let t_start = Trace.now () in
  let stages_done = ref 0 in
  let wait_seconds = ref 0.0 in
  let rec take () =
    (* called with the mutex held *)
    if s.failed <> None || s.pending = 0 then None
    else if Queue.is_empty s.ready then begin
      let t0 = Trace.now () in
      Condition.wait s.cond s.mutex;
      wait_seconds := !wait_seconds +. (Trace.now () -. t0);
      take ()
    end
    else Some (Queue.pop s.ready)
  in
  let retire () =
    Metrics.observe h_worker_stages (float_of_int !stages_done);
    Metrics.observe h_wait_us (!wait_seconds *. 1e6);
    Metrics.add c_wait_ns (int_of_float (!wait_seconds *. 1e9));
    Trace.complete ~name:"sta.worker" ~cat:"sta" ~ts:t_start
      ~dur:(Trace.now () -. t_start)
      ~args:
        [
          ("stages", Json.Int !stages_done);
          ("ready_wait_ms", Json.Float (!wait_seconds *. 1e3));
        ]
      ()
  in
  let rec loop () =
    Mutex.lock s.mutex;
    match take () with
    | None ->
      Condition.broadcast s.cond;
      Mutex.unlock s.mutex;
      retire ()
    | Some id ->
      Mutex.unlock s.mutex;
      incr stages_done;
      (match eval id with
      | exception e ->
        Mutex.lock s.mutex;
        if s.failed = None then s.failed <- Some e;
        Condition.broadcast s.cond;
        Mutex.unlock s.mutex;
        retire ()
      | t ->
        timings.(id) <- Some t;
        Mutex.lock s.mutex;
        s.pending <- s.pending - 1;
        let released = ref 0 in
        Array.iter
          (fun (c : Timing_graph.connection) ->
            let j = c.Timing_graph.to_stage in
            s.remaining.(j) <- s.remaining.(j) - 1;
            if s.remaining.(j) = 0 then begin
              Queue.push j s.ready;
              incr released
            end)
          frozen.Timing_graph.fanout.(id);
        (* wake exactly as many sleepers as there is new work for; the
           final completion must wake everyone so the team can retire *)
        if s.pending = 0 then Condition.broadcast s.cond
        else for _ = 1 to !released do Condition.signal s.cond done;
        Mutex.unlock s.mutex;
        loop ())
  in
  loop ()

(* Evaluate mutually independent stages concurrently by static striping:
   worker [k] takes indices [k, k + teams, k + 2*teams, ...]. Used by the
   incremental engine on wide dirty levels, where readiness bookkeeping
   would cost more than it buys (every stage handed in is already known
   ready). The first worker exception is re-raised after the join. *)
let evaluate_stages ~domains ~eval ids =
  let n = Array.length ids in
  let domains = max domains 1 in
  if domains = 1 || n <= 1 then Array.map eval ids
  else begin
    let teams = min domains n in
    let results = Array.make n None in
    let failures = Array.make teams None in
    let stripe k () =
      try
        let i = ref k in
        while !i < n do
          results.(!i) <- Some (eval ids.(!i));
          i := !i + teams
        done
      with e -> failures.(k) <- Some e
    in
    let team = Array.init (teams - 1) (fun k -> Domain.spawn (stripe (k + 1))) in
    stripe 0 ();
    Array.iter Domain.join team;
    Array.iter (function Some e -> raise e | None -> ()) failures;
    Array.map Option.get results
  end

let propagate ~model ?(config = Tqwm_core.Config.default) ?(default_slew = 20e-12)
    ?cache ?pi ?domains graph =
  if default_slew <= 0.0 then invalid_arg "Parallel.propagate: default_slew <= 0";
  let domains =
    match domains with Some d -> max d 1 | None -> default_domains ()
  in
  if domains = 1 then Arrival.propagate ~model ~config ~default_slew ?cache ?pi graph
  else begin
    let frozen = Timing_graph.freeze graph in
    let n = Array.length frozen.Timing_graph.scenarios in
    let timings = Array.make n None in
    let eval id =
      Arrival.evaluate_stage ~model ~config ~default_slew ?cache ?pi frozen timings id
    in
    let s =
      {
        mutex = Mutex.create ();
        cond = Condition.create ();
        ready = Queue.create ();
        remaining = Array.init n (fun i -> Array.length frozen.Timing_graph.fanin.(i));
        pending = n;
        failed = None;
      }
    in
    Array.iter (fun i -> if s.remaining.(i) = 0 then Queue.push i s.ready)
      frozen.Timing_graph.order;
    Metrics.incr c_propagations;
    Trace.with_span ~name:"sta.propagate" ~cat:"sta"
      ~args:[ ("domains", Json.Int domains); ("stages", Json.Int n) ]
      (fun () ->
        (* one worker team for the whole propagation — domains are spawned
           once, not per level; readiness is tracked per stage, so a long
           solve in one branch never stalls independent work elsewhere *)
        let team =
          Array.init (min (domains - 1) (max (n - 1) 0)) (fun _ ->
              Domain.spawn (fun () -> worker ~eval frozen timings s))
        in
        worker ~eval frozen timings s;
        Array.iter Domain.join team;
        (match s.failed with Some e -> raise e | None -> ());
        Arrival.analysis_of_timings (Array.map Option.get timings))
  end
