(** Memoization of per-stage QWM solves.

    Large timing graphs repeat gates: a decoder fan-out tree instantiates
    the same stage (same topology, device sizes, load) hundreds of times,
    and after slew bucketing their switching inputs coincide too. The
    cache keys each {!Tqwm_core.Qwm.run} on a canonical fingerprint of
    the full scenario — stage topology, device geometry, external loads,
    initial node biases and input source shapes — so every repeated gate
    is solved exactly once.

    Thread-safety: the table is mutex-protected and the counters are
    atomic, so one cache may be shared by all domains of the
    {!Parallel} engine. Lookups are single-flight: the first domain to
    request a key solves it while concurrent requesters for the same key
    block until the report lands, so a stage is never solved twice and
    the miss count is deterministic — a parallel run reports exactly the
    misses (one per distinct stage) of the sequential run. This holds
    under both {!Parallel} schedulers: a work-stealing worker that
    blocks on an in-flight key simply sleeps inside its current chunk
    while the level's other chunks remain stealable by the rest of the
    team. Cached reports are immutable and safe to share across
    domains.

    Telemetry: hits and misses are additionally accumulated across all
    cache instances in the global {!Tqwm_obs.Metrics} registry as
    [stage_cache.hits] / [stage_cache.misses], so metrics snapshots
    ([qwm_sim --metrics]) carry cache effectiveness without a handle on
    the cache value itself. *)

type t

type stats = {
  hits : int;
  misses : int;  (** actual QWM solves performed through the cache *)
  entries : int;
}

val create : ?slew_bucket:float -> unit -> t
(** [slew_bucket] (default 1 ps, must be positive) quantizes input slews
    before they are used as cache keys — see {!bucket_slew}. *)

val fork : ?copy_uses:bool -> t -> t
(** A new cache handle sharing this cache's solve table — and its
    single-flight coordination — so solves memoized through any fork are
    hits for every other fork, while {!uses} provenance and {!stats}
    restart at zero for the fork. With [copy_uses] (default false) the
    fork starts from a snapshot of the parent's per-key request counts
    instead, as if it had submitted the parent's work itself — the mode
    for forking a session whose baseline analysis already ran, keeping
    path-explain attribution identical to a from-scratch session.
    {!clear} on any fork clears the shared table but only the calling
    fork's own counts. *)

val slew_bucket : t -> float

val bucket_slew : t -> float -> float
(** Round a positive slew to the nearest bucket multiple (at least one
    bucket); non-positive slews pass through. Arrival propagation buckets
    the driving slew {e before} shaping a stage's input ramp, so the
    cached solve and the waveform actually used agree exactly and results
    are deterministic regardless of hit order. The default 1 ps bucket
    perturbs delays well below the QWM-vs-reference model error. *)

val fingerprint :
  model:Tqwm_device.Device_model.t ->
  config:Tqwm_core.Config.t ->
  Tqwm_circuit.Scenario.t ->
  string
(** Canonical digest of (model name, config, scenario). Device models
    are identified by name only — do not share one cache between models
    that answer differently under the same name. *)

val run :
  t ->
  model:Tqwm_device.Device_model.t ->
  config:Tqwm_core.Config.t ->
  Tqwm_circuit.Scenario.t ->
  Tqwm_core.Qwm.report
(** [Qwm.run] through the cache. On a hit the stored report is returned
    (its [runtime_seconds] is the original solve's). *)

val peek :
  t ->
  model:Tqwm_device.Device_model.t ->
  config:Tqwm_core.Config.t ->
  Tqwm_circuit.Scenario.t ->
  Tqwm_core.Qwm.report option
(** The stored report for this scenario's key, if its solve already
    landed — never solves, never blocks on an in-flight entry, and does
    not count as a hit, miss or use. The read-only lookup path-explain
    replays through. *)

val uses :
  t ->
  model:Tqwm_device.Device_model.t ->
  config:Tqwm_core.Config.t ->
  Tqwm_circuit.Scenario.t ->
  int
(** How many {!run} calls requested this scenario's key (hits and misses
    alike; 0 = never requested). The count reflects the work submitted,
    not the scheduling, so it is identical across domain counts and
    schedulers; {!peek} and [uses] itself leave it untouched. *)

val stats : t -> stats

val hit_rate : t -> float
(** [hits / (hits + misses)]; 0 when the cache is unused. *)

val clear : t -> unit
