type stage_id = int

type connection = { from_stage : stage_id; to_stage : stage_id; input : string }

type frozen = {
  scenarios : Tqwm_circuit.Scenario.t array;
  fanin : connection array array;
  fanout : connection array array;
  order : stage_id array;
  levels : stage_id array array;
}

type t = {
  mutable stages : Tqwm_circuit.Scenario.t option array;  (** backing store, length >= count *)
  mutable count : int;
  (* per-stage adjacency, newest edge first; kept incrementally so fan
     queries and cycle checks never scan the whole edge set *)
  mutable fanin_rev : connection list array;
  mutable fanout_rev : connection list array;
  mutable num_connections : int;
  mutable cache : frozen option;  (** invalidated by any mutation *)
}

let create () =
  {
    stages = [||];
    count = 0;
    fanin_rev = [||];
    fanout_rev = [||];
    num_connections = 0;
    cache = None;
  }

let invalidate t = t.cache <- None

(* Copy-on-write fork: fresh mutable containers over shared immutable
   content. Scenario values and adjacency lists are never mutated in
   place (edits replace whole cells), so sharing them is safe; sharing
   the frozen snapshot means a fork's first [freeze] is free and each
   side re-freezes privately only after its own first mutation. *)
let copy t =
  {
    stages = Array.copy t.stages;
    count = t.count;
    fanin_rev = Array.copy t.fanin_rev;
    fanout_rev = Array.copy t.fanout_rev;
    num_connections = t.num_connections;
    cache = t.cache;
  }

let ensure_capacity t =
  let cap = Array.length t.stages in
  if t.count >= cap then begin
    let cap' = max 8 (2 * cap) in
    let grow a empty =
      let a' = Array.make cap' empty in
      Array.blit a 0 a' 0 cap;
      a'
    in
    t.stages <- grow t.stages None;
    t.fanin_rev <- grow t.fanin_rev [];
    t.fanout_rev <- grow t.fanout_rev []
  end

let add_stage t scenario =
  ensure_capacity t;
  let id = t.count in
  t.stages.(id) <- Some scenario;
  t.count <- id + 1;
  invalidate t;
  id

let num_stages t = t.count

let num_connections t = t.num_connections

let scenario t id =
  if id < 0 || id >= t.count then invalid_arg "Timing_graph.scenario: unknown stage";
  Option.get t.stages.(id)

let fanin t id = if id < 0 || id >= t.count then [] else List.rev t.fanin_rev.(id)

let fanout t id = if id < 0 || id >= t.count then [] else List.rev t.fanout_rev.(id)

(* would [dst] be reachable from [src] through existing fanout edges? *)
let reaches t ~src ~dst =
  let seen = Array.make t.count false in
  let rec go id =
    if id = dst then true
    else if seen.(id) then false
    else begin
      seen.(id) <- true;
      List.exists (fun c -> go c.to_stage) t.fanout_rev.(id)
    end
  in
  go src

let connect t ~from_stage ~to_stage ~input =
  if from_stage < 0 || from_stage >= t.count || to_stage < 0 || to_stage >= t.count then
    invalid_arg "Timing_graph.connect: unknown stage";
  let target = scenario t to_stage in
  if not (List.mem_assoc input target.Tqwm_circuit.Scenario.sources) then
    invalid_arg "Timing_graph.connect: unknown input";
  let edge = { from_stage; to_stage; input } in
  (* an exact duplicate would double-count the target's fanin (the same
     driver racing itself for the critical slot) and is always a caller
     bug, so it is rejected rather than silently kept *)
  if List.mem edge t.fanin_rev.(to_stage) then
    invalid_arg "Timing_graph.connect: duplicate edge";
  (* the new edge closes a cycle iff [from_stage] is already reachable from
     [to_stage]; checking before insertion means no rollback is needed *)
  if reaches t ~src:to_stage ~dst:from_stage then
    invalid_arg "Timing_graph.connect: cycle detected";
  t.fanout_rev.(from_stage) <- edge :: t.fanout_rev.(from_stage);
  t.fanin_rev.(to_stage) <- edge :: t.fanin_rev.(to_stage);
  t.num_connections <- t.num_connections + 1;
  invalidate t

let disconnect t ~from_stage ~to_stage ~input =
  if from_stage < 0 || from_stage >= t.count || to_stage < 0 || to_stage >= t.count then
    invalid_arg "Timing_graph.disconnect: unknown stage";
  let edge = { from_stage; to_stage; input } in
  if not (List.mem edge t.fanin_rev.(to_stage)) then
    invalid_arg "Timing_graph.disconnect: no such edge";
  let drop = List.filter (fun e -> e <> edge) in
  t.fanin_rev.(to_stage) <- drop t.fanin_rev.(to_stage);
  t.fanout_rev.(from_stage) <- drop t.fanout_rev.(from_stage);
  t.num_connections <- t.num_connections - 1;
  invalidate t

let set_scenario t id scenario' =
  if id < 0 || id >= t.count then invalid_arg "Timing_graph.set_scenario: unknown stage";
  List.iter
    (fun e ->
      if not (List.mem_assoc e.input scenario'.Tqwm_circuit.Scenario.sources) then
        invalid_arg
          (Printf.sprintf
             "Timing_graph.set_scenario: replacement lacks connected input %S" e.input))
    t.fanin_rev.(id);
  t.stages.(id) <- Some scenario';
  invalidate t

let freeze t =
  match t.cache with
  | Some f -> f
  | None ->
    let n = t.count in
    let scenarios = Array.init n (fun i -> Option.get t.stages.(i)) in
    let fanin = Array.init n (fun i -> Array.of_list (List.rev t.fanin_rev.(i))) in
    let fanout = Array.init n (fun i -> Array.of_list (List.rev t.fanout_rev.(i))) in
    (* Kahn's algorithm by waves: each wave is one topological level whose
       stages depend only on earlier waves and are mutually independent.
       Ids within a wave ascend, making the schedule deterministic. *)
    let indegree = Array.init n (fun i -> Array.length fanin.(i)) in
    let wave = ref [] in
    for i = n - 1 downto 0 do
      if indegree.(i) = 0 then wave := i :: !wave
    done;
    let levels_rev = ref [] in
    let scheduled = ref 0 in
    while !wave <> [] do
      let level = Array.of_list !wave in
      levels_rev := level :: !levels_rev;
      scheduled := !scheduled + Array.length level;
      let next = ref [] in
      Array.iter
        (fun id ->
          Array.iter
            (fun c ->
              let d = indegree.(c.to_stage) - 1 in
              indegree.(c.to_stage) <- d;
              if d = 0 then next := c.to_stage :: !next)
            fanout.(id))
        level;
      wave := List.sort compare !next
    done;
    if !scheduled <> n then
      (* unreachable as long as [connect] rejects cycles *)
      invalid_arg "Timing_graph.freeze: cycle detected";
    let levels = Array.of_list (List.rev !levels_rev) in
    let order = Array.concat (Array.to_list levels) in
    let f = { scenarios; fanin; fanout; order; levels } in
    t.cache <- Some f;
    f

let topological_order t = Array.to_list (freeze t).order

let levels t = (freeze t).levels

type chunk = { level : int; start : int; length : int }

let max_level_width (f : frozen) =
  Array.fold_left (fun w level -> max w (Array.length level)) 0 f.levels

(* Contiguous partition of every level into runs of at most [chunk_size]
   stages. The split is a pure function of the frozen schedule and the
   chunk size — no randomness, no dependence on domain count — so every
   scheduler consuming the same chunking sees the same work units, which
   keeps parallel evaluation trivially deterministic. *)
let level_chunks (f : frozen) ~chunk_size =
  if chunk_size < 1 then invalid_arg "Timing_graph.level_chunks: chunk_size < 1";
  Array.mapi
    (fun k level ->
      let width = Array.length level in
      let n = (width + chunk_size - 1) / chunk_size in
      Array.init n (fun i ->
          let start = i * chunk_size in
          { level = k; start; length = min chunk_size (width - start) }))
    f.levels
