module Vec = Tqwm_num.Vec
module Waveform = Tqwm_wave.Waveform

(* One sealed level: every stage's output waveform as a packed block in
   one slab, [bounds.(i) .. bounds.(i+1)] the float range of the level's
   i-th stage (5 floats per piece). *)
type pack = { slab : Vec.t; bounds : int array }

type t = {
  levels : Timing_graph.stage_id array array;
  (* timing scalars, one slot per stage; the four float columns are
     views into a single slab *)
  arrival_in : Vec.t;
  delay : Vec.t;
  slew : Vec.t;
  arrival_out : Vec.t;
  critical_fanin : int array;
  present : Bytes.t;
  (* per-stage stashed outputs (disjoint slots, written by the solving
     domain only), packed into per-level slabs by [seal] *)
  outputs : Waveform.quadratic option array;
  mutable packs : pack array option;
}

let create (frozen : Timing_graph.frozen) =
  let n = Array.length frozen.Timing_graph.scenarios in
  let cols = Vec.create (4 * n) in
  {
    levels = frozen.Timing_graph.levels;
    arrival_in = Vec.view cols ~pos:0 ~len:n;
    delay = Vec.view cols ~pos:n ~len:n;
    slew = Vec.view cols ~pos:(2 * n) ~len:n;
    arrival_out = Vec.view cols ~pos:(3 * n) ~len:n;
    critical_fanin = Array.make n (-1);
    present = Bytes.make n '\000';
    outputs = Array.make n None;
    packs = None;
  }

let length t = Array.length t.critical_fanin

let store t id ~arrival_in ~delay ~slew ~arrival_out ~critical_fanin =
  t.arrival_in.{id} <- arrival_in;
  t.delay.{id} <- delay;
  t.slew.{id} <- slew;
  t.arrival_out.{id} <- arrival_out;
  t.critical_fanin.(id) <- critical_fanin;
  Bytes.set t.present id '\001'

let has t id = Bytes.get t.present id <> '\000'
let arrival_in t id = t.arrival_in.{id}
let delay t id = t.delay.{id}
let slew t id = t.slew.{id}
let arrival_out t id = t.arrival_out.{id}
let critical_fanin t id = t.critical_fanin.(id)

let put_output t id q = t.outputs.(id) <- Some q

let seal t =
  match t.packs with
  | Some _ -> ()
  | None ->
    let pack_level stages =
      let w = Array.length stages in
      let bounds = Array.make (w + 1) 0 in
      for i = 0 to w - 1 do
        let sz =
          match t.outputs.(stages.(i)) with
          | Some q -> Waveform.packed_size q
          | None -> 0
        in
        bounds.(i + 1) <- bounds.(i) + sz
      done;
      let slab = Vec.create bounds.(w) in
      Array.iteri
        (fun i id ->
          match t.outputs.(id) with
          | Some q -> Waveform.blit_packed q slab ~pos:bounds.(i)
          | None -> ())
        stages;
      (* repoint each stage at its packed zero-copy view, so later reads
         touch the contiguous level slab instead of scattered report
         slabs *)
      Array.iteri
        (fun i id ->
          let len = (bounds.(i + 1) - bounds.(i)) / 5 in
          if len > 0 then
            t.outputs.(id) <- Some (Waveform.of_packed slab ~pos:bounds.(i) ~len))
        stages;
      { slab; bounds }
    in
    t.packs <- Some (Array.map pack_level t.levels)

let output t id = t.outputs.(id)

let packs_exn t =
  match t.packs with
  | Some p -> p
  | None -> invalid_arg "Timing_arena: not sealed"

let digest_range slab ~lo ~hi =
  let n = hi - lo in
  let b = Bytes.create (n * 8) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le b (i * 8) (Int64.bits_of_float slab.{lo + i})
  done;
  Digest.bytes b

let level_digest t k =
  let packs = packs_exn t in
  if k < 0 || k >= Array.length packs then
    invalid_arg "Timing_arena.level_digest: unknown level";
  let p = packs.(k) in
  digest_range p.slab ~lo:0 ~hi:(Array.length p.bounds - 1 |> fun w -> p.bounds.(w))

let range_digest t (c : Timing_graph.chunk) =
  let packs = packs_exn t in
  if c.Timing_graph.level < 0 || c.Timing_graph.level >= Array.length packs then
    invalid_arg "Timing_arena.range_digest: unknown level";
  let p = packs.(c.Timing_graph.level) in
  let w = Array.length p.bounds - 1 in
  if c.Timing_graph.start < 0 || c.Timing_graph.length < 0
     || c.Timing_graph.start + c.Timing_graph.length > w
  then invalid_arg "Timing_arena.range_digest: chunk out of range";
  digest_range p.slab ~lo:p.bounds.(c.Timing_graph.start)
    ~hi:p.bounds.(c.Timing_graph.start + c.Timing_graph.length)
