open Tqwm_circuit

let switching_input (scenario : Scenario.t) =
  match
    List.find_opt
      (fun (_, s) -> Tqwm_wave.Source.transition_time s <> None)
      scenario.Scenario.sources
  with
  | Some (name, _) -> name
  | None -> invalid_arg "Workloads.switching_input: scenario has no switching source"

let fanout_tree ~fanout ~depth scenario =
  if fanout < 1 then invalid_arg "Workloads.fanout_tree: fanout < 1";
  if depth < 0 then invalid_arg "Workloads.fanout_tree: depth < 0";
  let graph = Timing_graph.create () in
  let input = switching_input scenario in
  let root = Timing_graph.add_stage graph scenario in
  let rec expand parent level =
    if level < depth then
      for _ = 1 to fanout do
        let child = Timing_graph.add_stage graph scenario in
        Timing_graph.connect graph ~from_stage:parent ~to_stage:child ~input;
        expand child (level + 1)
      done
  in
  expand root 0;
  graph

let decoder_tree ?(fanout = 4) ?(depth = 3) ?(levels = 2) tech =
  fanout_tree ~fanout ~depth (Scenario.decoder ~levels tech)

let chain ~n ?(load = 8e-15) tech =
  if n < 1 then invalid_arg "Workloads.chain: n < 1";
  let graph = Timing_graph.create () in
  let prev = ref (Timing_graph.add_stage graph (Scenario.inverter_falling ~load tech)) in
  for _ = 2 to n do
    let next = Timing_graph.add_stage graph (Scenario.inverter_falling ~load tech) in
    Timing_graph.connect graph ~from_stage:!prev ~to_stage:next ~input:"a1";
    prev := next
  done;
  graph

let diamond tech =
  let graph = Timing_graph.create () in
  let src = Timing_graph.add_stage graph (Scenario.inverter_falling ~load:6e-15 tech) in
  let fast = Timing_graph.add_stage graph (Scenario.nand_falling ~n:2 ~load:8e-15 tech) in
  let slow = Timing_graph.add_stage graph (Scenario.nand_falling ~n:4 ~load:30e-15 tech) in
  let sink = Timing_graph.add_stage graph (Scenario.nand_falling ~n:2 ~load:10e-15 tech) in
  Timing_graph.connect graph ~from_stage:src ~to_stage:fast ~input:"a1";
  Timing_graph.connect graph ~from_stage:src ~to_stage:slow ~input:"a1";
  Timing_graph.connect graph ~from_stage:fast ~to_stage:sink ~input:"a1";
  Timing_graph.connect graph ~from_stage:slow ~to_stage:sink ~input:"a2";
  graph

let random_stacks ?(width = 8) ?(depth = 4) ?(seed = 0) tech =
  if width < 1 then invalid_arg "Workloads.random_stacks: width < 1";
  if depth < 1 then invalid_arg "Workloads.random_stacks: depth < 1";
  let graph = Timing_graph.create () in
  let layer d =
    Array.init width (fun i ->
        let k = seed + (d * width) + i in
        let len = 5 + (k mod 6) in
        Timing_graph.add_stage graph (Random_circuits.stack_scenario tech ~len ~seed:k))
  in
  let prev = ref (layer 0) in
  for d = 1 to depth - 1 do
    let current = layer d in
    Array.iteri
      (fun i id ->
        (* rotate drivers layer to layer so the graph is not a set of
           disjoint chains *)
        let driver = !prev.((i + d) mod width) in
        Timing_graph.connect graph ~from_stage:driver ~to_stage:id ~input:"g1")
      current;
    prev := current
  done;
  graph
