module Qwm = Tqwm_core.Qwm

type stats = { hits : int; misses : int; entries : int }

type t = {
  slew_bucket : float;
  table : (string, Qwm.report) Hashtbl.t;
  lock : Mutex.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(slew_bucket = 1e-12) () =
  if slew_bucket <= 0.0 then invalid_arg "Stage_cache.create: slew_bucket <= 0";
  {
    slew_bucket;
    table = Hashtbl.create 256;
    lock = Mutex.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let slew_bucket t = t.slew_bucket

let bucket_slew t s =
  if s <= 0.0 then s
  else Float.max t.slew_bucket (Float.round (s /. t.slew_bucket) *. t.slew_bucket)

(* A scenario is pure data (stage arrays, source shapes, floats), as is a
   config, so marshalling yields a canonical byte string covering stage
   topology, device sizes, loads, initial biases and (pre-bucketed) input
   source shapes. Device models contain closures and cannot be marshalled;
   only the model name enters the key, so a cache must not be shared
   between models that answer differently under the same name. *)
let fingerprint ~model ~config scenario =
  Digest.string
    (Marshal.to_string (model.Tqwm_device.Device_model.name, config, scenario) [])

let run t ~model ~config scenario =
  let key = fingerprint ~model ~config scenario in
  let cached = Mutex.protect t.lock (fun () -> Hashtbl.find_opt t.table key) in
  match cached with
  | Some report ->
    Atomic.incr t.hits;
    report
  | None ->
    let report = Qwm.run ~model ~config scenario in
    Atomic.incr t.misses;
    Mutex.protect t.lock (fun () ->
        match Hashtbl.find_opt t.table key with
        | Some first ->
          (* another domain solved the same stage concurrently; keep the
             first stored report so every caller shares one value *)
          first
        | None ->
          Hashtbl.add t.table key report;
          report)

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    entries = Mutex.protect t.lock (fun () -> Hashtbl.length t.table);
  }

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear t =
  Mutex.protect t.lock (fun () -> Hashtbl.reset t.table);
  Atomic.set t.hits 0;
  Atomic.set t.misses 0
