module Qwm = Tqwm_core.Qwm
module Metrics = Tqwm_obs.Metrics

(* Process-wide totals across every cache instance, exported through the
   metrics registry; the per-instance atomics below remain for
   instance-scoped [stats]. *)
let c_hits = Metrics.counter "stage_cache.hits"
let c_misses = Metrics.counter "stage_cache.misses"

type stats = { hits : int; misses : int; entries : int }

(* Single-flight slots: the first domain to request a key claims it and
   solves; later requesters block on [cond] until the report lands. This
   keeps the miss count deterministic (one miss per distinct stage, the
   same number a sequential run reports) and never burns two domains on
   the same solve. *)
type slot = Ready of Qwm.report | In_flight

type t = {
  slew_bucket : float;
  table : (string, slot) Hashtbl.t;
  (* per-key request counts: how many [run] calls asked for each key,
     hits and misses alike. The total per key is a property of the work
     submitted, not of scheduling, so it is deterministic across domain
     counts and schedulers — the provenance path-explain reports lean on. *)
  uses : (string, int) Hashtbl.t;
  lock : Mutex.t;
  cond : Condition.t;
  hits : int Atomic.t;
  misses : int Atomic.t;
}

let create ?(slew_bucket = 1e-12) () =
  if slew_bucket <= 0.0 then invalid_arg "Stage_cache.create: slew_bucket <= 0";
  {
    slew_bucket;
    table = Hashtbl.create 256;
    uses = Hashtbl.create 256;
    lock = Mutex.create ();
    cond = Condition.create ();
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

(* Fork: share the solve table (and its single-flight lock/condition) so
   every fork benefits from — and contributes to — the same memoized
   solves, while [uses] provenance and hit/miss stats restart
   per-fork. With [copy_uses] the fork inherits the parent's current
   per-key request counts, as if it had submitted the parent's work
   itself — the mode a server uses when handing a client a baseline
   session whose full propagation already happened. *)
let fork ?(copy_uses = false) t =
  Mutex.lock t.lock;
  let uses = if copy_uses then Hashtbl.copy t.uses else Hashtbl.create 256 in
  Mutex.unlock t.lock;
  {
    slew_bucket = t.slew_bucket;
    table = t.table;
    uses;
    lock = t.lock;
    cond = t.cond;
    hits = Atomic.make 0;
    misses = Atomic.make 0;
  }

let slew_bucket t = t.slew_bucket

let bucket_slew t s =
  if s <= 0.0 then s
  else Float.max t.slew_bucket (Float.round (s /. t.slew_bucket) *. t.slew_bucket)

(* A scenario is pure data (stage arrays, source shapes, floats), as is a
   config, so marshalling yields a canonical byte string covering stage
   topology, device sizes, loads and (pre-bucketed) input source shapes.
   Device models contain closures and cannot be marshalled; only the
   model name enters the key, so a cache must not be shared between
   models that answer differently under the same name. The initial-bias
   vector is the one bulk-numeric field: it is hashed as its raw float64
   bits directly (the same flat encoding the timing arena digests use)
   instead of having Marshal walk a boxed float array, and spliced into
   the digest alongside the structural remainder. *)
let fingerprint ~model ~config scenario =
  let initial = scenario.Tqwm_circuit.Scenario.initial in
  let n = Array.length initial in
  let bits = Bytes.create (n * 8) in
  for i = 0 to n - 1 do
    Bytes.set_int64_le bits (i * 8) (Int64.bits_of_float initial.(i))
  done;
  let structural =
    Marshal.to_string
      ( model.Tqwm_device.Device_model.name,
        config,
        { scenario with Tqwm_circuit.Scenario.initial = [||] } )
      []
  in
  Digest.string (structural ^ Bytes.unsafe_to_string bits)

let run t ~model ~config scenario =
  let key = fingerprint ~model ~config scenario in
  Mutex.lock t.lock;
  Hashtbl.replace t.uses key
    (1 + Option.value (Hashtbl.find_opt t.uses key) ~default:0);
  let rec claim () =
    match Hashtbl.find_opt t.table key with
    | Some (Ready report) -> `Hit report
    | Some In_flight ->
      (* another domain is already solving this stage: wait for its
         report rather than duplicating the solve *)
      Condition.wait t.cond t.lock;
      claim ()
    | None ->
      Hashtbl.replace t.table key In_flight;
      `Solve
  in
  let claimed = claim () in
  Mutex.unlock t.lock;
  match claimed with
  | `Hit report ->
    Atomic.incr t.hits;
    Metrics.incr c_hits;
    report
  | `Solve ->
    (* each STA worker runs on its own domain, so the per-domain default
       workspace hands every single-flight solver its own preallocated
       scratch with no coordination; passing it explicitly documents that
       the cache never shares one workspace across domains *)
    let workspace = Tqwm_core.Qwm_solver.Workspace.for_current_domain () in
    (match Qwm.run ~model ~config ~workspace scenario with
    | exception e ->
      (* release the claim so waiters retry instead of hanging *)
      Mutex.lock t.lock;
      Hashtbl.remove t.table key;
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      raise e
    | report ->
      Atomic.incr t.misses;
      Metrics.incr c_misses;
      Mutex.lock t.lock;
      Hashtbl.replace t.table key (Ready report);
      Condition.broadcast t.cond;
      Mutex.unlock t.lock;
      report)

let peek t ~model ~config scenario =
  let key = fingerprint ~model ~config scenario in
  Mutex.protect t.lock (fun () ->
      match Hashtbl.find_opt t.table key with
      | Some (Ready report) -> Some report
      | Some In_flight | None -> None)

let uses t ~model ~config scenario =
  let key = fingerprint ~model ~config scenario in
  Mutex.protect t.lock (fun () ->
      Option.value (Hashtbl.find_opt t.uses key) ~default:0)

let stats t =
  {
    hits = Atomic.get t.hits;
    misses = Atomic.get t.misses;
    entries =
      Mutex.protect t.lock (fun () ->
          Hashtbl.fold
            (fun _ slot n -> match slot with Ready _ -> n + 1 | In_flight -> n)
            t.table 0);
  }

let hit_rate t =
  let s = stats t in
  let total = s.hits + s.misses in
  if total = 0 then 0.0 else float_of_int s.hits /. float_of_int total

let clear t =
  Mutex.protect t.lock (fun () ->
      Hashtbl.reset t.table;
      Hashtbl.reset t.uses;
      (* any domain waiting on an in-flight slot re-claims and solves *)
      Condition.broadcast t.cond);
  Atomic.set t.hits 0;
  Atomic.set t.misses 0
