(** Stage-level timing graphs.

    Vertices are switching scenarios (a logic stage with its worst-case
    input configuration); a directed edge records that the source stage's
    output drives one named input of the target stage. Static timing
    analysis propagates arrival times and slews topologically through
    this graph, evaluating each stage with QWM.

    The graph is built incrementally ({!add_stage} / {!connect}) and then
    {!freeze}-dried into an indexed form — scenario array, fanin/fanout
    adjacency arrays and a topological level schedule — that propagation
    engines (sequential {!Arrival} and multi-domain {!Parallel}) consume
    without any list scans. Freezing is memoized: the frozen view is
    rebuilt only after a mutation. *)

type stage_id = int

type connection = {
  from_stage : stage_id;
  to_stage : stage_id;
  input : string;  (** which input of [to_stage] the source output drives *)
}

(** Immutable indexed snapshot of a graph. All arrays are indexed by
    [stage_id]; a frozen value is never mutated and is safe to share
    across domains. *)
type frozen = {
  scenarios : Tqwm_circuit.Scenario.t array;
  fanin : connection array array;  (** edges into each stage, insertion order *)
  fanout : connection array array;  (** edges out of each stage, insertion order *)
  order : stage_id array;  (** topological order, primary-input stages first *)
  levels : stage_id array array;
      (** topological level schedule: [levels.(k)] holds the stages whose
          longest fanin path has exactly [k] edges. Stages within a level
          are mutually independent — the unit of parallelism — and ids
          within a level ascend. [order] is the concatenation of the
          levels. *)
}

type t

val create : unit -> t

val copy : t -> t
(** Copy-on-write fork: an independent graph with the same stages and
    edges. The copy shares the (immutable) scenario values, adjacency
    lists and — until either side mutates — the memoized frozen
    snapshot, so forking is O(stages) and a fork's first {!freeze} costs
    nothing. Mutating one side never affects the other; this is the
    session-isolation primitive the what-if server forks client overlays
    from. *)

val add_stage : t -> Tqwm_circuit.Scenario.t -> stage_id

val connect : t -> from_stage:stage_id -> to_stage:stage_id -> input:string -> unit
(** @raise Invalid_argument on unknown stages, an unknown input name, an
    exact duplicate of an existing edge (same [from_stage], [to_stage]
    and [input] — a duplicate would double-count the target's fanin), or
    when the edge would create a combinational cycle. A rejected edge
    leaves the graph untouched. *)

val disconnect : t -> from_stage:stage_id -> to_stage:stage_id -> input:string -> unit
(** Remove the edge with exactly these endpoints and input name.
    @raise Invalid_argument when no such edge exists. *)

val set_scenario : t -> stage_id -> Tqwm_circuit.Scenario.t -> unit
(** Replace a stage's scenario in place (ECO-style edit: resized devices,
    a changed load, a different worst-case configuration). Invalidates
    the frozen snapshot.
    @raise Invalid_argument on an unknown stage or when the replacement
    scenario lacks an input that existing fanin edges drive. *)

val num_stages : t -> int

val num_connections : t -> int

val scenario : t -> stage_id -> Tqwm_circuit.Scenario.t
(** O(1). @raise Invalid_argument on an unknown stage. *)

val fanin : t -> stage_id -> connection list
(** Edges into a stage, in insertion order; O(fanin degree). *)

val fanout : t -> stage_id -> connection list
(** Edges out of a stage, in insertion order; O(fanout degree). *)

val freeze : t -> frozen
(** Indexed snapshot of the current graph. Memoized until the next
    mutation; amortized O(V + E) overall. *)

val topological_order : t -> stage_id list
(** Primary-input stages first (the frozen [order]). *)

val levels : t -> stage_id array array
(** The frozen level schedule. *)

type chunk = { level : int; start : int; length : int }
(** A contiguous run of stages inside one topological level:
    [levels.(level).(start .. start + length - 1)]. Chunks are the unit
    of work handed to the work-stealing scheduler — every stage of a
    chunk is mutually independent of every other stage in its level, so
    a chunk can be solved by any domain without ordering. *)

val level_chunks : frozen -> chunk_size:int -> chunk array array
(** [level_chunks f ~chunk_size] partitions each level of the frozen
    schedule into contiguous chunks of at most [chunk_size] stages
    (the last chunk of a level may be shorter). The partition depends
    only on the schedule and [chunk_size] — not on domain count or
    runtime behaviour — so the work units seen by a parallel run are
    deterministic. @raise Invalid_argument when [chunk_size < 1]. *)

val max_level_width : frozen -> int
(** Widest level of the schedule (0 for an empty graph) — the upper
    bound on intra-level parallelism. *)
