(** Synthetic timing-graph workloads shared by the benchmark harness,
    the CLI and the test suite. *)

val switching_input : Tqwm_circuit.Scenario.t -> string
(** Name of the scenario's switching (non-constant) source — the input a
    driving stage connects to.
    @raise Invalid_argument if every source is constant. *)

val fanout_tree :
  fanout:int -> depth:int -> Tqwm_circuit.Scenario.t -> Timing_graph.t
(** Balanced tree of identical stages: one root plus [fanout^1 + ... +
    fanout^depth] copies, each driven on the scenario's switching input.
    Level [k] holds [fanout^k] mutually independent stages — wide
    parallelism — and, the stages being identical, a shared
    {!Stage_cache} collapses each level to at most one solve. *)

val decoder_tree :
  ?fanout:int -> ?depth:int -> ?levels:int -> Tqwm_device.Tech.t -> Timing_graph.t
(** The paper's Fig. 10 stage replicated as a fan-out tree (defaults:
    fanout 4, depth 3, decoder [levels] 2) — the repeated-gate workload
    used by the bench harness. *)

val chain : n:int -> ?load:float -> Tqwm_device.Tech.t -> Timing_graph.t
(** [n] identical inverters in series: one stage per topological level
    (no parallelism — the sequential-floor baseline). *)

val diamond : Tqwm_device.Tech.t -> Timing_graph.t
(** Four stages, two independent middle branches of different speed
    re-converging on one sink: the smallest graph whose parallel
    schedule differs from the sequential one and whose sink has a
    non-trivial critical-fanin choice. Stage ids are 0 (source), 1
    (fast branch), 2 (slow branch), 3 (sink). *)

val random_stacks :
  ?width:int -> ?depth:int -> ?seed:int -> Tqwm_device.Tech.t -> Timing_graph.t
(** [depth] layers of [width] randomly generated transistor stacks
    (Table II population, lengths 5-10, seeded and reproducible), each
    layer driven by a rotation of the previous one — a deep graph of
    distinct stages, so cache hits come only from genuine repeats. *)
