open Tqwm_circuit
module Source = Tqwm_wave.Source
module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Json = Tqwm_obs.Json

let c_stages_timed = Metrics.counter "sta.stages_timed"

(* Last-computed design health, in picoseconds: gauges because WNS/TNS
   are levels of the current analysis, not accumulating totals. *)
let g_wns = Metrics.gauge "sta.wns"
let g_tns = Metrics.gauge "sta.tns"

let h_endpoint_slack =
  Metrics.histogram "sta.endpoint_slack_ps"
    ~bounds:[| -1000.0; -100.0; -10.0; 0.0; 10.0; 100.0; 1000.0; 10000.0 |]

exception Analysis_failure of string

type stage_timing = {
  id : Timing_graph.stage_id;
  arrival_in : float;
  delay : float;
  slew : float;
  arrival_out : float;
  critical_fanin : Timing_graph.stage_id option;
}

type analysis = {
  timings : stage_timing array;
  critical_path : Timing_graph.stage_id list;
  worst_arrival : float;
}

type pi_timing = { pi_arrival : float; pi_slew : float }

(* reshape a switching source as a ramp with the driver's slew, keeping
   its logical direction; constant sources are left alone *)
let ramp_of ~slew source =
  match Source.transition_time source with
  | None -> source
  | Some _ ->
    let low = Source.value source (-1.0) in
    let high = Source.value source 1e3 in
    if low = high then source else Source.ramp ~t0:0.0 ~low ~high ~rise_time:slew ()

let settled source = Source.constant (Source.value source 1e3)

type slack_report = {
  required : float array;
  slack : float array;
  worst_slack : float;
}

type required_report = {
  clock_period : float;
  req : float array;
  req_slack : float array;
  endpoints : Timing_graph.stage_id array;
  req_worst_slack : float;
  wns : float;
  tns : float;
}

let required graph analysis ~clock_period =
  if not (Float.is_finite clock_period) || clock_period <= 0.0 then
    invalid_arg "Arrival.required: clock_period must be finite and > 0";
  let frozen = Timing_graph.freeze graph in
  let n = Array.length analysis.timings in
  if n <> Array.length frozen.Timing_graph.scenarios then
    invalid_arg "Arrival.required: analysis does not match this graph";
  (* the sink set is explicit: a stage with no fanout is a timing
     endpoint and must settle by [clock_period]; every other stage
     inherits the tightest budget of its fanouts (each of which is
     processed first — reverse topological order) *)
  let endpoints =
    Array.of_seq
      (Seq.filter
         (fun id -> Array.length frozen.Timing_graph.fanout.(id) = 0)
         (Seq.init n Fun.id))
  in
  let req = Array.make n clock_period in
  for i = Array.length frozen.Timing_graph.order - 1 downto 0 do
    let id = frozen.Timing_graph.order.(i) in
    Array.iter
      (fun (c : Timing_graph.connection) ->
        let downstream = c.Timing_graph.to_stage in
        let budget = req.(downstream) -. analysis.timings.(downstream).delay in
        if budget < req.(id) then req.(id) <- budget)
      frozen.Timing_graph.fanout.(id)
  done;
  let req_slack = Array.mapi (fun i r -> r -. analysis.timings.(i).arrival_out) req in
  (* finite even on empty graphs: a design with nothing to time meets the
     clock with full margin rather than an infinite fold identity *)
  let req_worst_slack =
    if n = 0 then clock_period else Array.fold_left Float.min infinity req_slack
  in
  let wns =
    if Array.length endpoints = 0 then clock_period
    else
      Array.fold_left (fun acc id -> Float.min acc req_slack.(id)) infinity endpoints
  in
  let tns =
    Array.fold_left
      (fun acc id -> if req_slack.(id) < 0.0 then acc +. req_slack.(id) else acc)
      0.0 endpoints
  in
  let ps = 1e12 in
  Metrics.set g_wns (wns *. ps);
  Metrics.set g_tns (tns *. ps);
  Array.iter (fun id -> Metrics.observe h_endpoint_slack (req_slack.(id) *. ps)) endpoints;
  { clock_period; req; req_slack; endpoints; req_worst_slack; wns; tns }

let slacks graph analysis ~clock_period =
  let r = required graph analysis ~clock_period in
  { required = r.req; slack = r.req_slack; worst_slack = r.req_worst_slack }

(* Shape one stage's input sources from its fanin timings: the critical
   (latest-arriving) driver's input becomes a ramp of that driver's
   bucketed slew, other driven inputs settle, everything else is left
   alone. Pure with respect to [timings] and deterministic, so the very
   same shaped scenario (and hence cache fingerprint) is reproducible
   after the fact — the contract [replay_stage] builds on. *)
let shaped_inputs_via ~arrival_out_of ~slew_of ~default_slew ?cache ?pi
    (frozen : Timing_graph.frozen) id =
  let scenario = frozen.Timing_graph.scenarios.(id) in
  let fanin = frozen.Timing_graph.fanin.(id) in
  (* the latest-arriving driver defines the switching input *)
  let critical =
    Array.fold_left
      (fun acc (c : Timing_graph.connection) ->
        let ao = arrival_out_of c.Timing_graph.from_stage in
        match acc with
        | Some (_, best_ao) when best_ao >= ao -> acc
        | Some _ | None -> Some (c, ao))
      None fanin
  in
  let arrival_in, input_slew, critical_fanin, sources =
    match critical with
    | None ->
      (* primary input: a retiming override moves its arrival and shapes
         every switching source as a ramp of the given slew *)
      let override =
        match pi with
        | Some arr when id < Array.length arr -> arr.(id)
        | Some _ | None -> None
      in
      (match override with
      | None -> (0.0, None, None, scenario.Scenario.sources)
      | Some p when p.pi_slew <= 0.0 ->
        (p.pi_arrival, None, None, scenario.Scenario.sources)
      | Some p ->
        let slew =
          match cache with None -> p.pi_slew | Some c -> Stage_cache.bucket_slew c p.pi_slew
        in
        ( p.pi_arrival,
          Some slew,
          None,
          List.map (fun (name, s) -> (name, ramp_of ~slew s)) scenario.Scenario.sources ))
    | Some (c, driver_arrival_out) ->
      let driver_slew = slew_of c.Timing_graph.from_stage in
      let slew = if driver_slew > 0.0 then driver_slew else default_slew in
      (* bucket before shaping the ramp so the cached solve and the
         waveform actually used agree exactly *)
      let slew =
        match cache with None -> slew | Some c -> Stage_cache.bucket_slew c slew
      in
      let reshape (name, source) =
        if String.equal name c.Timing_graph.input then (name, ramp_of ~slew source)
        else if
          Array.exists
            (fun (c' : Timing_graph.connection) ->
              String.equal c'.Timing_graph.input name)
            fanin
        then (name, settled source)
        else (name, source)
      in
      ( driver_arrival_out,
        Some slew,
        Some c.Timing_graph.from_stage,
        List.map reshape scenario.Scenario.sources )
  in
  (arrival_in, input_slew, critical_fanin, { scenario with Scenario.sources })

let shaped_inputs ~default_slew ?cache ?pi (frozen : Timing_graph.frozen) timings id =
  let timing_exn id =
    match timings.(id) with
    | Some t -> t
    | None -> raise (Analysis_failure "fanin stage not yet timed")
  in
  shaped_inputs_via
    ~arrival_out_of:(fun i -> (timing_exn i).arrival_out)
    ~slew_of:(fun i -> (timing_exn i).slew)
    ~default_slew ?cache ?pi frozen id

(* Turn a stage's QWM solve into its timing record. *)
let timing_of_solve ~arrival_in ~input_slew ~critical_fanin scenario id
    (report : Tqwm_core.Qwm.report) =
  let out_crossing =
    match report.Tqwm_core.Qwm.delay with
    | Some d -> d
    | None ->
      raise
        (Analysis_failure
           (Printf.sprintf "stage %s: output never crosses 50%%"
              scenario.Scenario.name))
  in
  (* the stage delay is measured from the input's own 50 % crossing *)
  let input_mid = match input_slew with None -> 0.0 | Some s -> s /. 2.0 in
  let delay = Float.max (out_crossing -. input_mid) 0.0 in
  let slew = Option.value report.Tqwm_core.Qwm.slew ~default:0.0 in
  {
    id;
    arrival_in;
    delay;
    slew;
    arrival_out = arrival_in +. delay;
    critical_fanin;
  }

let evaluate_stage_inner ~model ~config ~default_slew ?cache ?pi
    (frozen : Timing_graph.frozen) timings id =
  let arrival_in, input_slew, critical_fanin, scenario =
    shaped_inputs ~default_slew ?cache ?pi frozen timings id
  in
  let report =
    match cache with
    | None -> Tqwm_core.Qwm.run ~model ~config scenario
    | Some c -> Stage_cache.run c ~model ~config scenario
  in
  timing_of_solve ~arrival_in ~input_slew ~critical_fanin scenario id report

(* Re-derive a completed stage's solve without disturbing the cache:
   shaping is deterministic, so the shaped scenario fingerprints to the
   key the original evaluation used and [Stage_cache.peek] returns the
   very report that produced the timing (a fresh solve only when the
   stage was never evaluated through [cache], e.g. cache-less runs). *)
let replay_stage ~model ~config ~default_slew ?cache ?pi
    (frozen : Timing_graph.frozen) timings id =
  let arrival_in, input_slew, critical_fanin, scenario =
    shaped_inputs ~default_slew ?cache ?pi frozen timings id
  in
  let report =
    match Option.bind cache (fun c -> Stage_cache.peek c ~model ~config scenario) with
    | Some report -> report
    | None -> Tqwm_core.Qwm.run ~model ~config scenario
  in
  (timing_of_solve ~arrival_in ~input_slew ~critical_fanin scenario id report, report, scenario)

(* Per-stage delay/slew spans: one trace slice per stage evaluation,
   labelled with the stage's scenario name and carrying the timing it
   produced. The counter feeds the sequential-vs-parallel equality check
   in the telemetry tests. *)
let evaluate_stage ~model ~config ~default_slew ?cache ?pi
    (frozen : Timing_graph.frozen) timings id =
  Metrics.incr c_stages_timed;
  if not (Trace.enabled ()) then
    evaluate_stage_inner ~model ~config ~default_slew ?cache ?pi frozen timings id
  else begin
    let t0 = Trace.now () in
    let t = evaluate_stage_inner ~model ~config ~default_slew ?cache ?pi frozen timings id in
    Trace.complete
      ~name:frozen.Timing_graph.scenarios.(id).Scenario.name ~cat:"sta.stage" ~ts:t0
      ~dur:(Trace.now () -. t0)
      ~args:
        [
          ("stage", Json.Int id);
          ("arrival_in_ps", Json.Float (t.arrival_in *. 1e12));
          ("delay_ps", Json.Float (t.delay *. 1e12));
          ("slew_ps", Json.Float (t.slew *. 1e12));
          ("arrival_out_ps", Json.Float (t.arrival_out *. 1e12));
        ]
      ();
    t
  end

(* Arena-backed evaluation: fanin timings are read from, and the result
   stored into, a {!Timing_arena} — no per-stage option/record boxing on
   the propagation hot path. The arithmetic is exactly
   [evaluate_stage]'s, so values are bit-identical to the boxed path. *)
let evaluate_stage_arena ~model ~config ~default_slew ?cache ?pi
    (frozen : Timing_graph.frozen) arena id =
  Metrics.incr c_stages_timed;
  let fanin_exn i =
    if Timing_arena.has arena i then i
    else raise (Analysis_failure "fanin stage not yet timed")
  in
  let inner () =
    let arrival_in, input_slew, critical_fanin, scenario =
      shaped_inputs_via
        ~arrival_out_of:(fun i -> Timing_arena.arrival_out arena (fanin_exn i))
        ~slew_of:(fun i -> Timing_arena.slew arena (fanin_exn i))
        ~default_slew ?cache ?pi frozen id
    in
    let report =
      match cache with
      | None -> Tqwm_core.Qwm.run ~model ~config scenario
      | Some c -> Stage_cache.run c ~model ~config scenario
    in
    let t = timing_of_solve ~arrival_in ~input_slew ~critical_fanin scenario id report in
    Timing_arena.store arena id ~arrival_in:t.arrival_in ~delay:t.delay ~slew:t.slew
      ~arrival_out:t.arrival_out
      ~critical_fanin:(match critical_fanin with None -> -1 | Some s -> s);
    Timing_arena.put_output arena id report.Tqwm_core.Qwm.output;
    t
  in
  if not (Trace.enabled ()) then ignore (inner ())
  else begin
    let t0 = Trace.now () in
    let t = inner () in
    Trace.complete
      ~name:frozen.Timing_graph.scenarios.(id).Scenario.name ~cat:"sta.stage" ~ts:t0
      ~dur:(Trace.now () -. t0)
      ~args:
        [
          ("stage", Json.Int id);
          ("arrival_in_ps", Json.Float (t.arrival_in *. 1e12));
          ("delay_ps", Json.Float (t.delay *. 1e12));
          ("slew_ps", Json.Float (t.slew *. 1e12));
          ("arrival_out_ps", Json.Float (t.arrival_out *. 1e12));
        ]
      ()
  end

let timing_of_arena arena id =
  {
    id;
    arrival_in = Timing_arena.arrival_in arena id;
    delay = Timing_arena.delay arena id;
    slew = Timing_arena.slew arena id;
    arrival_out = Timing_arena.arrival_out arena id;
    critical_fanin =
      (match Timing_arena.critical_fanin arena id with
      | -1 -> None
      | s -> Some s);
  }

let analysis_of_timings timings =
  let worst =
    Array.fold_left
      (fun acc t ->
        match acc with
        | Some best when best.arrival_out >= t.arrival_out -> acc
        | Some _ | None -> Some t)
      None timings
  in
  match worst with
  | None -> { timings; critical_path = []; worst_arrival = 0.0 }
  | Some sink ->
    let rec walk t acc =
      match t.critical_fanin with
      | None -> t.id :: acc
      | Some prev -> walk timings.(prev) (t.id :: acc)
    in
    { timings; critical_path = walk sink []; worst_arrival = sink.arrival_out }

let analysis_of_arena arena =
  analysis_of_timings
    (Array.init (Timing_arena.length arena) (fun id -> timing_of_arena arena id))

let propagate_arena ~model ?(config = Tqwm_core.Config.default)
    ?(default_slew = 20e-12) ?cache ?pi graph =
  if default_slew <= 0.0 then invalid_arg "Arrival.propagate: default_slew <= 0";
  let frozen = Timing_graph.freeze graph in
  let arena = Timing_arena.create frozen in
  Array.iter
    (fun id -> evaluate_stage_arena ~model ~config ~default_slew ?cache ?pi frozen arena id)
    frozen.Timing_graph.order;
  Timing_arena.seal arena;
  (analysis_of_arena arena, arena)

let propagate ~model ?config ?default_slew ?cache ?pi graph =
  fst (propagate_arena ~model ?config ?default_slew ?cache ?pi graph)
