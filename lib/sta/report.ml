open Tqwm_circuit

let ps x = x *. 1e12

let print fmt graph analysis =
  Format.fprintf fmt "%-16s %12s %12s %12s %12s@\n" "stage" "arrival_in" "delay" "slew"
    "arrival_out";
  Array.iter
    (fun (t : Arrival.stage_timing) ->
      let name = (Timing_graph.scenario graph t.Arrival.id).Scenario.name in
      Format.fprintf fmt "%-16s %10.2fps %10.2fps %10.2fps %10.2fps@\n" name
        (ps t.Arrival.arrival_in) (ps t.Arrival.delay) (ps t.Arrival.slew)
        (ps t.Arrival.arrival_out))
    analysis.Arrival.timings;
  Format.fprintf fmt "critical path: %s@\n"
    (String.concat " -> "
       (List.map
          (fun id -> (Timing_graph.scenario graph id).Scenario.name)
          analysis.Arrival.critical_path));
  Format.fprintf fmt "worst arrival: %.2f ps@\n" (ps analysis.Arrival.worst_arrival)

let critical_path_string graph analysis =
  String.concat " -> "
    (List.map
       (fun id -> (Timing_graph.scenario graph id).Scenario.name)
       analysis.Arrival.critical_path)

let path_string graph (path : Path_enum.path) =
  String.concat " -> "
    (List.map
       (fun id -> (Timing_graph.scenario graph id).Scenario.name)
       path.Path_enum.stages)

let print_slack fmt graph (analysis : Arrival.analysis)
    (required : Arrival.required_report) =
  Format.fprintf fmt "%-16s %12s %12s %12s@\n" "stage" "arrival" "required" "slack";
  Array.iteri
    (fun id (t : Arrival.stage_timing) ->
      let name = (Timing_graph.scenario graph id).Scenario.name in
      Format.fprintf fmt "%-16s %10.2fps %10.2fps %10.2fps@\n" name
        (ps t.Arrival.arrival_out)
        (ps required.Arrival.req.(id))
        (ps required.Arrival.req_slack.(id)))
    analysis.Arrival.timings;
  Format.fprintf fmt "endpoints:@\n";
  Array.iter
    (fun id ->
      let name = (Timing_graph.scenario graph id).Scenario.name in
      Format.fprintf fmt "  %-16s arrival %10.2fps  slack %10.2fps%s@\n" name
        (ps analysis.Arrival.timings.(id).Arrival.arrival_out)
        (ps required.Arrival.req_slack.(id))
        (if required.Arrival.req_slack.(id) < 0.0 then "  VIOLATED" else ""))
    required.Arrival.endpoints;
  Format.fprintf fmt "clock period: %.2f ps@\n" (ps required.Arrival.clock_period);
  Format.fprintf fmt "WNS: %.2f ps  TNS: %.2f ps@\n" (ps required.Arrival.wns)
    (ps required.Arrival.tns)

let print_timing fmt graph (required : Arrival.required_report)
    (paths : Path_enum.explained list) =
  Format.fprintf fmt "clock period: %.2f ps  WNS: %.2f ps  TNS: %.2f ps@\n"
    (ps required.Arrival.clock_period)
    (ps required.Arrival.wns) (ps required.Arrival.tns);
  Format.fprintf fmt "%d worst path(s):@\n" (List.length paths);
  List.iteri
    (fun rank (e : Path_enum.explained) ->
      let p = e.Path_enum.path in
      let endpoint =
        match List.rev p.Path_enum.stages with id :: _ -> id | [] -> -1
      in
      Format.fprintf fmt
        "@\npath #%d  endpoint %d  arrival %.2f ps  slack %.2f ps%s@\n"
        (rank + 1) endpoint (ps p.Path_enum.arrival) (ps p.Path_enum.slack)
        (if p.Path_enum.slack < 0.0 then "  VIOLATED" else "");
      Format.fprintf fmt "  %s@\n" (path_string graph p);
      Format.fprintf fmt "  %-16s %10s %10s %10s %10s %8s %8s %7s@\n" "stage"
        "arr_in" "delay" "slew" "arr_out" "regions" "newton" "shared";
      List.iter
        (fun (s : Path_enum.stage_attribution) ->
          let t = s.Path_enum.timing in
          Format.fprintf fmt
            "  %-16s %8.2fps %8.2fps %8.2fps %8.2fps %8d %8d %7s@\n"
            s.Path_enum.name (ps t.Arrival.arrival_in) (ps t.Arrival.delay)
            (ps t.Arrival.slew)
            (ps t.Arrival.arrival_out)
            s.Path_enum.regions s.Path_enum.newton_iterations
            (match s.Path_enum.cache_uses with
            | 0 -> "-"  (* solved outside any cache *)
            | 1 -> "no"
            | n -> Printf.sprintf "x%d" n))
        e.Path_enum.through)
    paths

let to_json graph analysis =
  let module Json = Tqwm_obs.Json in
  let stage_json (t : Arrival.stage_timing) =
    Json.Obj
      [
        ("id", Json.Int t.Arrival.id);
        ("name", Json.String (Timing_graph.scenario graph t.Arrival.id).Scenario.name);
        ("arrival_in_ps", Json.Float (ps t.Arrival.arrival_in));
        ("delay_ps", Json.Float (ps t.Arrival.delay));
        ("slew_ps", Json.Float (ps t.Arrival.slew));
        ("arrival_out_ps", Json.Float (ps t.Arrival.arrival_out));
        ( "critical_fanin",
          match t.Arrival.critical_fanin with
          | None -> Json.Null
          | Some id -> Json.Int id );
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "tqwm-sta-report/1");
      ( "stages",
        Json.List (Array.to_list (Array.map stage_json analysis.Arrival.timings)) );
      ( "critical_path",
        Json.List
          (List.map
             (fun id ->
               Json.String (Timing_graph.scenario graph id).Scenario.name)
             analysis.Arrival.critical_path) );
      ("worst_arrival_ps", Json.Float (ps analysis.Arrival.worst_arrival));
    ]

(* The timing-report document is a pure function of the analysis and the
   enumerated paths — deliberately no runtime/GC block, so two runs that
   agree on the timing agree on the bytes: the bit-identity contract the
   CI report smoke and the seq-vs-parallel bench gate diff against. *)
let timing_to_json graph (analysis : Arrival.analysis)
    (required : Arrival.required_report) (paths : Path_enum.explained list) =
  let module Json = Tqwm_obs.Json in
  let name id = (Timing_graph.scenario graph id).Scenario.name in
  let endpoint_json id =
    Json.Obj
      [
        ("id", Json.Int id);
        ("name", Json.String (name id));
        ("arrival_ps", Json.Float (ps analysis.Arrival.timings.(id).Arrival.arrival_out));
        ("required_ps", Json.Float (ps required.Arrival.req.(id)));
        ("slack_ps", Json.Float (ps required.Arrival.req_slack.(id)));
      ]
  in
  let stage_json id (t : Arrival.stage_timing) =
    Json.Obj
      [
        ("id", Json.Int id);
        ("name", Json.String (name id));
        ("arrival_in_ps", Json.Float (ps t.Arrival.arrival_in));
        ("delay_ps", Json.Float (ps t.Arrival.delay));
        ("slew_ps", Json.Float (ps t.Arrival.slew));
        ("arrival_out_ps", Json.Float (ps t.Arrival.arrival_out));
        ("required_ps", Json.Float (ps required.Arrival.req.(id)));
        ("slack_ps", Json.Float (ps required.Arrival.req_slack.(id)));
        ( "critical_fanin",
          match t.Arrival.critical_fanin with
          | None -> Json.Null
          | Some id -> Json.Int id );
      ]
  in
  let attribution_json (s : Path_enum.stage_attribution) =
    let t = s.Path_enum.timing in
    Json.Obj
      [
        ("id", Json.Int t.Arrival.id);
        ("name", Json.String s.Path_enum.name);
        ("arrival_in_ps", Json.Float (ps t.Arrival.arrival_in));
        ("delay_ps", Json.Float (ps t.Arrival.delay));
        ("slew_ps", Json.Float (ps t.Arrival.slew));
        ("arrival_out_ps", Json.Float (ps t.Arrival.arrival_out));
        ("regions", Json.Int s.Path_enum.regions);
        ("newton_iterations", Json.Int s.Path_enum.newton_iterations);
        ("cache_uses", Json.Int s.Path_enum.cache_uses);
      ]
  in
  let path_json rank (e : Path_enum.explained) =
    let p = e.Path_enum.path in
    Json.Obj
      [
        ("rank", Json.Int (rank + 1));
        ("arrival_ps", Json.Float (ps p.Path_enum.arrival));
        ("slack_ps", Json.Float (ps p.Path_enum.slack));
        ( "stages",
          Json.List (List.map attribution_json e.Path_enum.through) );
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "tqwm-report/1");
      ("clock_period_ps", Json.Float (ps required.Arrival.clock_period));
      ("wns_ps", Json.Float (ps required.Arrival.wns));
      ("tns_ps", Json.Float (ps required.Arrival.tns));
      ("worst_slack_ps", Json.Float (ps required.Arrival.req_worst_slack));
      ("worst_arrival_ps", Json.Float (ps analysis.Arrival.worst_arrival));
      ( "endpoints",
        Json.List
          (Array.to_list (Array.map endpoint_json required.Arrival.endpoints)) );
      ( "stages",
        Json.List
          (Array.to_list (Array.mapi stage_json analysis.Arrival.timings)) );
      ("paths", Json.List (List.mapi path_json paths));
    ]
