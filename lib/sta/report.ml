open Tqwm_circuit

let ps x = x *. 1e12

let print fmt graph analysis =
  Format.fprintf fmt "%-16s %12s %12s %12s %12s@\n" "stage" "arrival_in" "delay" "slew"
    "arrival_out";
  Array.iter
    (fun (t : Arrival.stage_timing) ->
      let name = (Timing_graph.scenario graph t.Arrival.id).Scenario.name in
      Format.fprintf fmt "%-16s %10.2fps %10.2fps %10.2fps %10.2fps@\n" name
        (ps t.Arrival.arrival_in) (ps t.Arrival.delay) (ps t.Arrival.slew)
        (ps t.Arrival.arrival_out))
    analysis.Arrival.timings;
  Format.fprintf fmt "critical path: %s@\n"
    (String.concat " -> "
       (List.map
          (fun id -> (Timing_graph.scenario graph id).Scenario.name)
          analysis.Arrival.critical_path));
  Format.fprintf fmt "worst arrival: %.2f ps@\n" (ps analysis.Arrival.worst_arrival)

let critical_path_string graph analysis =
  String.concat " -> "
    (List.map
       (fun id -> (Timing_graph.scenario graph id).Scenario.name)
       analysis.Arrival.critical_path)

let to_json graph analysis =
  let module Json = Tqwm_obs.Json in
  let stage_json (t : Arrival.stage_timing) =
    Json.Obj
      [
        ("id", Json.Int t.Arrival.id);
        ("name", Json.String (Timing_graph.scenario graph t.Arrival.id).Scenario.name);
        ("arrival_in_ps", Json.Float (ps t.Arrival.arrival_in));
        ("delay_ps", Json.Float (ps t.Arrival.delay));
        ("slew_ps", Json.Float (ps t.Arrival.slew));
        ("arrival_out_ps", Json.Float (ps t.Arrival.arrival_out));
        ( "critical_fanin",
          match t.Arrival.critical_fanin with
          | None -> Json.Null
          | Some id -> Json.Int id );
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "tqwm-sta-report/1");
      ( "stages",
        Json.List (Array.to_list (Array.map stage_json analysis.Arrival.timings)) );
      ( "critical_path",
        Json.List
          (List.map
             (fun id ->
               Json.String (Timing_graph.scenario graph id).Scenario.name)
             analysis.Arrival.critical_path) );
      ("worst_arrival_ps", Json.Float (ps analysis.Arrival.worst_arrival));
    ]
