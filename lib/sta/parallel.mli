(** Multi-domain arrival propagation.

    Stages with no path between them need no ordering, so their QWM
    solves are independent — the same coarse-grain parallelism
    transistor-level simulators exploit when partitioning a design into
    channel-connected sub-structures. One team of OCaml 5 domains is
    spawned per propagation and scheduled by one of two engines:

    {ul
    {- {!Work_stealing} (the default): the frozen level schedule is cut
       into contiguous chunks of independent stages
       ({!Timing_graph.level_chunks}); per level the chunks are dealt
       round-robin into one Chase-Lev-style deque per domain — the owner
       pops LIFO at the bottom, idle domains steal FIFO at the top with
       a single compare-and-set. Synchronization cost is paid per chunk
       (amortized over [chunk] solves) instead of per stage, and levels
       are separated by a bounded-spin barrier that falls back to a
       condition variable, so oversubscribed machines yield instead of
       burning the core.}
    {- {!Ready_queue} (legacy, kept for A/B measurement): a shared
       mutex-protected queue driven by per-stage fanin counters; a stage
       becomes ready the moment its last fanin is timed. Handoff cost is
       paid per stage, which dominates once individual solves are
       cheap.}}

    Determinism: a stage's timing depends only on its fanin timings (see
    {!Arrival.evaluate_stage}), all of which belong to strictly earlier
    levels and are published before the level barrier opens, so results
    are bit-identical to sequential {!Arrival.propagate} for every
    domain count, scheduler, and chunk size, with or without a shared
    {!Stage_cache} — asserted in [test/test_parallel.ml] (including a
    QCheck property randomizing stage costs to force steals) and
    system-wide by the accuracy-audit drift gate.

    Telemetry: the stealing engine feeds [sta.steals] / [sta.chunks]
    counters plus per-domain [sta.chunks_per_worker],
    [sta.steals_per_worker] and [sta.worker_occupancy_pct] histograms;
    the legacy engine keeps the [sta.ready_wait_*] story. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

type scheduler =
  | Ready_queue  (** per-stage shared ready queue (legacy, for A/B) *)
  | Work_stealing  (** level-batched chunk deques with stealing (default) *)

val scheduler_name : scheduler -> string
(** ["ready"] / ["steal"] — the names used by [qwm_sim --scheduler] and
    recorded in [tqwm-bench-parallel/2] ledger records. *)

val scheduler_of_string : string -> scheduler option
(** Inverse of {!scheduler_name}. *)

val propagate :
  model:Tqwm_device.Device_model.t ->
  ?config:Tqwm_core.Config.t ->
  ?default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:Arrival.pi_timing option array ->
  ?domains:int ->
  ?scheduler:scheduler ->
  ?chunk:int ->
  Timing_graph.t ->
  Arrival.analysis
(** Like {!Arrival.propagate}, evaluated concurrently by [domains]
    domains in total, the calling one included (default
    {!default_domains}; values [<= 1] fall back to the sequential path).
    [scheduler] picks the engine (default {!Work_stealing}); [chunk] is
    the stealing engine's stages-per-chunk batch size (default: sized so
    the widest level yields a few chunks per domain; values larger than
    a level's width leave that level as one chunk). A given [cache] is
    shared by the whole team. The first exception raised by any worker
    is re-raised after the team is joined.
    @raise Invalid_argument when [default_slew <= 0] or [chunk < 1]. *)

val propagate_arena :
  model:Tqwm_device.Device_model.t ->
  ?config:Tqwm_core.Config.t ->
  ?default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:Arrival.pi_timing option array ->
  ?domains:int ->
  ?scheduler:scheduler ->
  ?chunk:int ->
  Timing_graph.t ->
  Arrival.analysis * Timing_arena.t
(** {!propagate}, additionally returning the sealed {!Timing_arena}.
    With {!Work_stealing} each chunk runs as one batched kernel: its
    adjacent stages are evaluated in a fused loop reading fanins from and
    storing into the arena's contiguous columns, and [seal] packs every
    level's output waveforms into one slab whose
    {!Timing_arena.level_digest} is equal across schedulers, domain
    counts and chunk sizes. *)

val evaluate_stages :
  domains:int ->
  ?chunk:int ->
  eval:(Timing_graph.stage_id -> Arrival.stage_timing) ->
  Timing_graph.stage_id array ->
  Arrival.stage_timing array
(** Evaluate stages that are already known mutually independent (one
    topological level, every fanin timed) on up to [domains] domains,
    returning timings in input order. The input is treated as a single
    synthetic level of the work-stealing scheduler, so unequal stage
    costs are balanced by steals instead of hoping a static split lands
    evenly. [eval] must be safe to call from any domain
    ({!Arrival.evaluate_stage} over a frozen graph is). Results are
    identical to [Array.map eval] — evaluation order within a level is
    immaterial. The first worker exception is re-raised after the team
    is joined. Used by incremental re-propagation, whose dirty levels
    arrive pre-scheduled; fresh full runs should prefer {!propagate}.
    @raise Invalid_argument when [chunk < 1]. *)
