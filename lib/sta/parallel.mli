(** Multi-domain arrival propagation.

    Stages with no path between them need no ordering, so their QWM
    solves are independent — the same coarse-grain parallelism
    transistor-level simulators exploit when partitioning a design into
    channel-connected sub-structures. One team of OCaml 5 domains is
    spawned per propagation and fed from a shared ready queue driven by
    per-stage fanin counters: a stage becomes ready the moment its last
    fanin is timed, so the schedule is at least as parallel as the
    topological level schedule and load-balances unequal stage costs
    without per-level barriers or repeated domain spawns.

    Determinism: a stage's timing depends only on its fanin timings (see
    {!Arrival.evaluate_stage}), so results are bit-identical to
    sequential {!Arrival.propagate} for every domain count, with or
    without a shared {!Stage_cache}. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val propagate :
  model:Tqwm_device.Device_model.t ->
  ?config:Tqwm_core.Config.t ->
  ?default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:Arrival.pi_timing option array ->
  ?domains:int ->
  Timing_graph.t ->
  Arrival.analysis
(** Like {!Arrival.propagate}, evaluated concurrently by [domains]
    domains in total, the calling one included (default
    {!default_domains}; values [<= 1] fall back to the sequential path).
    A given [cache] is shared by the whole team. The first exception
    raised by any worker is re-raised after the team is joined.
    @raise Invalid_argument when [default_slew <= 0]. *)

val evaluate_stages :
  domains:int ->
  eval:(Timing_graph.stage_id -> Arrival.stage_timing) ->
  Timing_graph.stage_id array ->
  Arrival.stage_timing array
(** Evaluate stages that are already known mutually independent (one
    topological level, every fanin timed) on up to [domains] domains by
    static striping, returning timings in input order. [eval] must be
    safe to call from any domain ({!Arrival.evaluate_stage} over a
    frozen graph is). Results are identical to [Array.map eval] —
    evaluation order within a level is immaterial. The first worker
    exception is re-raised after the team is joined. Used by
    incremental re-propagation, whose dirty levels arrive pre-scheduled;
    fresh full runs should prefer {!propagate}'s ready-queue. *)
