(** Multi-domain arrival propagation.

    Stages with no path between them need no ordering, so their QWM
    solves are independent — the same coarse-grain parallelism
    transistor-level simulators exploit when partitioning a design into
    channel-connected sub-structures. One team of OCaml 5 domains is
    spawned per propagation and fed from a shared ready queue driven by
    per-stage fanin counters: a stage becomes ready the moment its last
    fanin is timed, so the schedule is at least as parallel as the
    topological level schedule and load-balances unequal stage costs
    without per-level barriers or repeated domain spawns.

    Determinism: a stage's timing depends only on its fanin timings (see
    {!Arrival.evaluate_stage}), so results are bit-identical to
    sequential {!Arrival.propagate} for every domain count, with or
    without a shared {!Stage_cache}. *)

val default_domains : unit -> int
(** [Domain.recommended_domain_count ()]. *)

val propagate :
  model:Tqwm_device.Device_model.t ->
  ?config:Tqwm_core.Config.t ->
  ?default_slew:float ->
  ?cache:Stage_cache.t ->
  ?domains:int ->
  Timing_graph.t ->
  Arrival.analysis
(** Like {!Arrival.propagate}, evaluated concurrently by [domains]
    domains in total, the calling one included (default
    {!default_domains}; values [<= 1] fall back to the sequential path).
    A given [cache] is shared by the whole team. The first exception
    raised by any worker is re-raised after the team is joined. *)
