module Scenario = Tqwm_circuit.Scenario

type path = {
  stages : Timing_graph.stage_id list;
  arrival : float;
  slack : float;
}

let endpoints (frozen : Timing_graph.frozen) =
  let n = Array.length frozen.Timing_graph.scenarios in
  Array.of_seq
    (Seq.filter
       (fun id -> Array.length frozen.Timing_graph.fanout.(id) = 0)
       (Seq.init n Fun.id))

(* A partial path, grown backward from an endpoint. [est] is an exact
   bound on the arrival of any completion: the forward pass already
   maximized arrivals over every prefix, so [arrival_out front] is the
   true best way to reach [front] and [est = arrival_out front + rest]
   (rest = delays already peeled downstream of [front]) is the arrival
   the partial path's best completion achieves. Best-first expansion on
   an exact bound emits completed paths in worst-first order. *)
module Cand = struct
  type t = {
    est : float;
    rest : float;  (** sum of delays of [stages] except the front's own *)
    front : Timing_graph.stage_id;
    stages : Timing_graph.stage_id list;  (** front .. endpoint *)
    key : int list;
        (** endpoint id, then the fanin index chosen at each backward
            step: the lexicographic tie-break. Lowest endpoint id and
            first-in-insertion-order fanin win, matching the argmax
            folds of [Arrival.analysis_of_timings], so the first path
            out is the critical walk itself. *)
  }

  (* total: distinct candidates always differ in [key] *)
  let compare a b =
    match Float.compare b.est a.est with
    | 0 -> List.compare Int.compare a.key b.key
    | c -> c
end

module Frontier = Set.Make (Cand)

let k_worst ?clock_period ~k graph (analysis : Arrival.analysis) =
  if k < 1 then invalid_arg "Path_enum.k_worst: k must be >= 1";
  (match clock_period with
  | Some cp when (not (Float.is_finite cp)) || cp <= 0.0 ->
    invalid_arg "Path_enum.k_worst: clock_period must be finite and > 0"
  | Some _ | None -> ());
  let frozen = Timing_graph.freeze graph in
  let timings = analysis.Arrival.timings in
  let n = Array.length timings in
  if n <> Array.length frozen.Timing_graph.scenarios then
    invalid_arg "Path_enum.k_worst: analysis does not match this graph";
  let cp =
    match clock_period with Some cp -> cp | None -> analysis.Arrival.worst_arrival
  in
  (* the path's own arrival, re-accumulated forward exactly as the
     propagation did (arrival_in + delay per stage), so the critical
     path reproduces [worst_arrival] bit for bit *)
  let arrival_of stages =
    match stages with
    | [] -> 0.0
    | src :: _ ->
      List.fold_left
        (fun t id -> t +. timings.(id).Arrival.delay)
        timings.(src).Arrival.arrival_in stages
  in
  let frontier =
    ref
      (Array.fold_left
         (fun acc id ->
           Frontier.add
             {
               Cand.est = timings.(id).Arrival.arrival_out;
               rest = 0.0;
               front = id;
               stages = [ id ];
               key = [ id ];
             }
             acc)
         Frontier.empty (endpoints frozen))
  in
  let found = ref [] in
  let nfound = ref 0 in
  while !nfound < k && not (Frontier.is_empty !frontier) do
    let c = Frontier.min_elt !frontier in
    frontier := Frontier.remove c !frontier;
    let fanin = frozen.Timing_graph.fanin.(c.Cand.front) in
    if Array.length fanin = 0 then begin
      (* complete source-to-endpoint path. Parallel edges (same stage
         pair, different inputs) peel to identical stage sequences;
         keep only the first *)
      if not (List.exists (fun p -> p.stages = c.Cand.stages) !found) then begin
        let arrival = arrival_of c.Cand.stages in
        found := { stages = c.Cand.stages; arrival; slack = cp -. arrival } :: !found;
        incr nfound
      end
    end
    else begin
      let rest = c.Cand.rest +. timings.(c.Cand.front).Arrival.delay in
      Array.iteri
        (fun i (conn : Timing_graph.connection) ->
          let u = conn.Timing_graph.from_stage in
          frontier :=
            Frontier.add
              {
                Cand.est = timings.(u).Arrival.arrival_out +. rest;
                rest;
                front = u;
                stages = u :: c.Cand.stages;
                key = c.Cand.key @ [ i ];
              }
              !frontier)
        fanin
    end
  done;
  (* emission order is already worst-first on the exact bound; the
     stable sort on the re-accumulated arrivals only reasserts the
     contract (ties keep emission order) *)
  List.stable_sort
    (fun a b -> Float.compare b.arrival a.arrival)
    (List.rev !found)

type stage_attribution = {
  timing : Arrival.stage_timing;
  name : string;
  regions : int;
  newton_iterations : int;
  cache_uses : int;
}

type explained = { path : path; through : stage_attribution list }

let explain ~model ?(config = Tqwm_core.Config.default) ?(default_slew = 20e-12)
    ?cache ?pi graph (analysis : Arrival.analysis) path =
  let frozen = Timing_graph.freeze graph in
  let n = Array.length analysis.Arrival.timings in
  if n <> Array.length frozen.Timing_graph.scenarios then
    invalid_arg "Path_enum.explain: analysis does not match this graph";
  List.iter
    (fun id ->
      if id < 0 || id >= n then
        invalid_arg (Printf.sprintf "Path_enum.explain: stage %d not in graph" id))
    path.stages;
  (* replay against the completed analysis: every fanin is timed *)
  let timings = Array.map Option.some analysis.Arrival.timings in
  let through =
    List.map
      (fun id ->
        let _, report, shaped =
          Arrival.replay_stage ~model ~config ~default_slew ?cache ?pi frozen
            timings id
        in
        let stats = report.Tqwm_core.Qwm.stats in
        {
          timing = analysis.Arrival.timings.(id);
          name = frozen.Timing_graph.scenarios.(id).Scenario.name;
          regions = stats.Tqwm_core.Qwm_solver.regions;
          newton_iterations = stats.Tqwm_core.Qwm_solver.newton_iterations;
          cache_uses =
            (match cache with
            | None -> 0
            | Some c -> Stage_cache.uses c ~model ~config shaped);
        })
      path.stages
  in
  { path; through }
