(** Human-readable timing reports. *)

val print : Format.formatter -> Timing_graph.t -> Arrival.analysis -> unit
(** Per-stage table (arrival, delay, slew) followed by the critical path
    and the worst arrival time. *)

val critical_path_string : Timing_graph.t -> Arrival.analysis -> string
(** "stageA -> stageB -> ..." *)

val to_json : Timing_graph.t -> Arrival.analysis -> Tqwm_obs.Json.t
(** Machine-readable analysis: per-stage timings (picoseconds), the
    critical path as stage names, and the worst arrival — the document
    written by [qwm_sim --sta ... --json FILE]. *)
