(** Human-readable timing reports. *)

val print : Format.formatter -> Timing_graph.t -> Arrival.analysis -> unit
(** Per-stage table (arrival, delay, slew) followed by the critical path
    and the worst arrival time. *)

val critical_path_string : Timing_graph.t -> Arrival.analysis -> string
(** "stageA -> stageB -> ..." *)

val to_json : Timing_graph.t -> Arrival.analysis -> Tqwm_obs.Json.t
(** Machine-readable analysis: per-stage timings (picoseconds), the
    critical path as stage names, and the worst arrival — the document
    written by [qwm_sim --sta ... --json FILE]. *)

(** {2 Slack and k-worst-path views} *)

val path_string : Timing_graph.t -> Path_enum.path -> string
(** "stageA -> stageB -> ..." for an enumerated path; on the worst path
    this equals {!critical_path_string} exactly. *)

val print_slack :
  Format.formatter ->
  Timing_graph.t ->
  Arrival.analysis ->
  Arrival.required_report ->
  unit
(** Per-stage arrival/required/slack table, the endpoint table (violated
    endpoints flagged), and the clock/WNS/TNS summary. *)

val print_timing :
  Format.formatter ->
  Timing_graph.t ->
  Arrival.required_report ->
  Path_enum.explained list ->
  unit
(** The k-worst-path report: the WNS/TNS header, then one block per
    enumerated path attributing every stage (arrival, delay, slew, QWM
    region and Newton counts, and whether the solve was shared through
    the stage cache — "x3" means three stages reused it, "-" means no
    cache was in play). *)

val timing_to_json :
  Timing_graph.t ->
  Arrival.analysis ->
  Arrival.required_report ->
  Path_enum.explained list ->
  Tqwm_obs.Json.t
(** The versioned [tqwm-report/1] document: clock period, WNS/TNS/worst
    slack, the endpoint table, per-stage timings with required/slack, and
    the enumerated paths with per-stage attribution. A pure function of
    its arguments (no GC/runtime block), so it is bit-identical across
    schedulers, domain counts and chunk sizes — the contract the CI
    report smoke diffs against. Written by [qwm_sim --report-timing
    --json FILE]. *)
