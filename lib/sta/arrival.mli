(** Arrival-time propagation: waveform-based static timing analysis with
    QWM as the per-stage evaluation engine.

    Each stage is evaluated with its switching input shaped as a ramp
    matching the driving stage's output slew (waveform information the
    paper argues plain delay/slope STA loses); arrival times accumulate
    along the worst path. Propagation runs over the graph's frozen
    indexed form; {!Parallel.propagate} evaluates topological levels
    concurrently and produces identical results. *)

exception Analysis_failure of string

type stage_timing = {
  id : Timing_graph.stage_id;
  arrival_in : float;  (** 50 % crossing time of the switching input *)
  delay : float;  (** stage 50 %-to-50 % delay *)
  slew : float;  (** output 10-90 % transition time *)
  arrival_out : float;
  critical_fanin : Timing_graph.stage_id option;
      (** driver that set [arrival_in]; [None] at primary inputs *)
}

type analysis = {
  timings : stage_timing array;  (** indexed by stage id *)
  critical_path : Timing_graph.stage_id list;  (** source to sink *)
  worst_arrival : float;
}

type pi_timing = {
  pi_arrival : float;  (** 50 % crossing time of the primary input *)
  pi_slew : float;
      (** transition time used to shape the stage's switching sources as
          ramps; values [<= 0] keep the scenario's own source shapes and
          only move the arrival *)
}
(** Retiming override for a primary-input stage (a stage with no fanin).
    Overrides are indexed by stage id; entries for stages that have
    fanin are ignored — a driver always wins. *)

val propagate :
  model:Tqwm_device.Device_model.t ->
  ?config:Tqwm_core.Config.t ->
  ?default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:pi_timing option array ->
  Timing_graph.t ->
  analysis
(** @raise Analysis_failure when a stage's output never crosses 50 %.
    @raise Invalid_argument when [default_slew <= 0] (a non-positive
    slew would shape degenerate ramps — the same positivity contract as
    {!Stage_cache.create}).
    [default_slew] (default 20 ps) shapes inputs whose driver reports no
    slew. When [cache] is given, per-stage QWM solves are memoized and
    driving slews (including {!pi_timing} slews) are quantized to the
    cache's bucket (see {!Stage_cache.bucket_slew}), so repeated gates
    are solved once. [pi] retimes primary-input stages. *)

(** {2 Building blocks shared with the parallel and incremental engines} *)

val evaluate_stage :
  model:Tqwm_device.Device_model.t ->
  config:Tqwm_core.Config.t ->
  default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:pi_timing option array ->
  Timing_graph.frozen ->
  stage_timing option array ->
  Timing_graph.stage_id ->
  stage_timing
(** Time one stage of a frozen graph given the (already computed) timings
    of its fanin stages. Pure with respect to [timings] — it only reads
    fanin entries — so stages of one topological level may be evaluated
    concurrently in any order with identical results. A stage's timing
    depends on its fanins only through their [arrival_out] and [slew]
    (the early-cutoff invariant {!Tqwm_incr.Session} relies on).
    @raise Analysis_failure if a fanin stage has no timing yet. *)

val analysis_of_timings : stage_timing array -> analysis
(** Worst arrival and critical-path walk over completed per-stage
    timings (indexed by stage id). *)

(** {2 Required times and slack} *)

type slack_report = {
  required : float array;
      (** latest allowed output arrival per stage (backward-propagated
          from [clock_period] at the sinks) *)
  slack : float array;  (** [required - arrival_out]; negative = violation *)
  worst_slack : float;
}

val slacks : Timing_graph.t -> analysis -> clock_period:float -> slack_report
(** Standard required-time/slack computation over an existing forward
    analysis: sinks must settle by [clock_period]; upstream required
    times subtract the downstream stage delays along each fanout. *)
