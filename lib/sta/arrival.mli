(** Arrival-time propagation: waveform-based static timing analysis with
    QWM as the per-stage evaluation engine.

    Each stage is evaluated with its switching input shaped as a ramp
    matching the driving stage's output slew (waveform information the
    paper argues plain delay/slope STA loses); arrival times accumulate
    along the worst path. Propagation runs over the graph's frozen
    indexed form; {!Parallel.propagate} evaluates topological levels
    concurrently and produces identical results. *)

exception Analysis_failure of string

type stage_timing = {
  id : Timing_graph.stage_id;
  arrival_in : float;  (** 50 % crossing time of the switching input *)
  delay : float;  (** stage 50 %-to-50 % delay *)
  slew : float;  (** output 10-90 % transition time *)
  arrival_out : float;
  critical_fanin : Timing_graph.stage_id option;
      (** driver that set [arrival_in]; [None] at primary inputs *)
}

type analysis = {
  timings : stage_timing array;  (** indexed by stage id *)
  critical_path : Timing_graph.stage_id list;  (** source to sink *)
  worst_arrival : float;
}

type pi_timing = {
  pi_arrival : float;  (** 50 % crossing time of the primary input *)
  pi_slew : float;
      (** transition time used to shape the stage's switching sources as
          ramps; values [<= 0] keep the scenario's own source shapes and
          only move the arrival *)
}
(** Retiming override for a primary-input stage (a stage with no fanin).
    Overrides are indexed by stage id; entries for stages that have
    fanin are ignored — a driver always wins. *)

val propagate :
  model:Tqwm_device.Device_model.t ->
  ?config:Tqwm_core.Config.t ->
  ?default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:pi_timing option array ->
  Timing_graph.t ->
  analysis
(** @raise Analysis_failure when a stage's output never crosses 50 %.
    @raise Invalid_argument when [default_slew <= 0] (a non-positive
    slew would shape degenerate ramps — the same positivity contract as
    {!Stage_cache.create}).
    [default_slew] (default 20 ps) shapes inputs whose driver reports no
    slew. When [cache] is given, per-stage QWM solves are memoized and
    driving slews (including {!pi_timing} slews) are quantized to the
    cache's bucket (see {!Stage_cache.bucket_slew}), so repeated gates
    are solved once. [pi] retimes primary-input stages. *)

(** {2 Building blocks shared with the parallel and incremental engines} *)

val evaluate_stage :
  model:Tqwm_device.Device_model.t ->
  config:Tqwm_core.Config.t ->
  default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:pi_timing option array ->
  Timing_graph.frozen ->
  stage_timing option array ->
  Timing_graph.stage_id ->
  stage_timing
(** Time one stage of a frozen graph given the (already computed) timings
    of its fanin stages. Pure with respect to [timings] — it only reads
    fanin entries — so stages of one topological level may be evaluated
    concurrently in any order with identical results. A stage's timing
    depends on its fanins only through their [arrival_out] and [slew]
    (the early-cutoff invariant {!Tqwm_incr.Session} relies on).
    @raise Analysis_failure if a fanin stage has no timing yet. *)

val analysis_of_timings : stage_timing array -> analysis
(** Worst arrival and critical-path walk over completed per-stage
    timings (indexed by stage id). *)

(** {2 Arena-backed propagation}

    The engines' hot path: fanin timings are read from, and results
    stored into, a {!Timing_arena}'s contiguous columns — no per-stage
    boxed records until the final analysis is materialized. Values are
    bit-identical to the boxed building blocks above. *)

val evaluate_stage_arena :
  model:Tqwm_device.Device_model.t ->
  config:Tqwm_core.Config.t ->
  default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:pi_timing option array ->
  Timing_graph.frozen ->
  Timing_arena.t ->
  Timing_graph.stage_id ->
  unit
(** {!evaluate_stage} reading fanins from and storing into the arena
    (timing columns and output waveform stash).
    @raise Analysis_failure if a fanin stage has no timing yet. *)

val timing_of_arena : Timing_arena.t -> Timing_graph.stage_id -> stage_timing
(** Materialize one stage's boxed timing record from the arena columns. *)

val analysis_of_arena : Timing_arena.t -> analysis
(** {!analysis_of_timings} over every arena slot (all must be stored). *)

val propagate_arena :
  model:Tqwm_device.Device_model.t ->
  ?config:Tqwm_core.Config.t ->
  ?default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:pi_timing option array ->
  Timing_graph.t ->
  analysis * Timing_arena.t
(** {!propagate}, additionally returning the sealed arena (packed
    per-level waveform slabs, see {!Timing_arena.level_digest}). *)

val replay_stage :
  model:Tqwm_device.Device_model.t ->
  config:Tqwm_core.Config.t ->
  default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:pi_timing option array ->
  Timing_graph.frozen ->
  stage_timing option array ->
  Timing_graph.stage_id ->
  stage_timing * Tqwm_core.Qwm.report * Tqwm_circuit.Scenario.t
(** Re-derive one stage's solve after an analysis, for attribution:
    returns the stage timing, the full QWM report behind it (region /
    Newton counts) and the {e shaped} scenario that was actually solved
    (ramped critical input, settled side inputs — the value whose
    {!Stage_cache.fingerprint} keyed the solve). Input shaping is
    deterministic in [timings], so with the same [cache] the analysis
    ran with this is a {!Stage_cache.peek} of the original report — no
    new solve, no hit/miss/use accounting; without a cache the stage is
    solved afresh (bit-identical, the solver being deterministic).
    [timings] must hold the timings of [id]'s fanins. *)

(** {2 Required times and slack} *)

type slack_report = {
  required : float array;
      (** latest allowed output arrival per stage (backward-propagated
          from [clock_period] at the sinks) *)
  slack : float array;  (** [required - arrival_out]; negative = violation *)
  worst_slack : float;
}

type required_report = {
  clock_period : float;
  req : float array;
      (** latest allowed output arrival per stage (backward-propagated
          from [clock_period] at the endpoints) *)
  req_slack : float array;  (** [req - arrival_out]; negative = violation *)
  endpoints : Timing_graph.stage_id array;
      (** the explicit sink set: stages with no fanout, ids ascending *)
  req_worst_slack : float;  (** minimum slack over {e all} stages *)
  wns : float;
      (** worst (endpoint) slack — the design's single health number;
          positive when every endpoint meets the clock *)
  tns : float;
      (** total negative slack: sum of negative endpoint slacks (0 when
          the design meets timing) *)
}
(** On an empty graph every aggregate is [clock_period] (full margin)
    rather than an infinite fold identity, so consumers always see
    finite numbers. *)

val required : Timing_graph.t -> analysis -> clock_period:float -> required_report
(** The backward required-time pass: endpoints must settle by
    [clock_period]; upstream required times subtract the downstream
    stage delays along each fanout, taking the tightest budget.
    Also publishes the [sta.wns] / [sta.tns] gauges (picoseconds) and
    the [sta.endpoint_slack_ps] histogram to {!Tqwm_obs.Metrics}.
    @raise Invalid_argument when [clock_period] is non-positive or not
    finite, or when [analysis] has a different stage count than [graph]. *)

val slacks : Timing_graph.t -> analysis -> clock_period:float -> slack_report
(** {!required} restricted to its classic per-stage view (kept for
    existing callers). Same validation, same numbers. *)
