(** K-worst critical-path enumeration and stage-by-stage path
    attribution over a completed arrival analysis.

    A {e path} is a source-to-endpoint stage sequence (a stage with no
    fanin down to a stage with no fanout); its arrival is the sum of the
    current per-stage delays on top of the source's arrival, exactly the
    quantity the forward pass maximizes. Each stage's delay was computed
    under its actual critical driver, so off the critical path these are
    what-if estimates (the same caveat as {!Tqwm_incr.Session.query}),
    while the worst path's arrival is bit-identical to
    {!Arrival.analysis.worst_arrival}.

    Enumeration is a best-first peel of the path tree walked backward
    from the endpoints. The bound for a partial path ending at stage [v]
    is [arrival_out v + (delays already peeled)] — [arrival_out] {e is}
    the exact best completion, because the forward pass already
    maximized over every prefix — so the first [k] completed paths are
    the [k] worst. Ties are broken lexicographically (lowest endpoint
    id, then fanin insertion order), matching the critical-path walk of
    {!Arrival.analysis_of_timings}, so [k_worst ~k:1] reproduces
    {!Report.critical_path_string} exactly. The enumeration consumes
    only the analysis (itself bit-identical across schedulers, domain
    counts and chunk sizes), so reports built on it are deterministic
    and bit-identical across all of those axes. *)

type path = {
  stages : Timing_graph.stage_id list;  (** source to endpoint *)
  arrival : float;
      (** endpoint arrival along this path, accumulated forward (the
          worst path's value equals [worst_arrival] bit-exactly) *)
  slack : float;  (** [clock_period - arrival] *)
}

val endpoints : Timing_graph.frozen -> Timing_graph.stage_id array
(** Stages with no fanout, ids ascending — the sink set required-time
    propagation starts from and path enumeration ends at. *)

val k_worst :
  ?clock_period:float ->
  k:int ->
  Timing_graph.t ->
  Arrival.analysis ->
  path list
(** The [k] worst (latest-arriving) distinct source-to-endpoint paths,
    sorted worst slack first; fewer when the graph holds fewer distinct
    paths. Two parallel edges between the same pair of stages (different
    inputs) collapse to one path — sequences are distinct. [clock_period]
    defaults to the analysis' worst arrival, making the critical path
    zero-slack and every other path's slack its margin to critical.
    @raise Invalid_argument when [k < 1], [clock_period] is non-positive
    or not finite, or the analysis does not match the graph. *)

type stage_attribution = {
  timing : Arrival.stage_timing;  (** the analysis' record for this stage *)
  name : string;  (** scenario name *)
  regions : int;  (** QWM regions solved for this stage's waveform *)
  newton_iterations : int;
  cache_uses : int;
      (** how many stage evaluations shared this stage's cache key during
          the analysis (1 = solved only for this stage, >1 = the solve
          was reused; 0 = run without a cache). Deterministic across
          schedulers and domain counts — see {!Stage_cache.uses}. *)
}

type explained = {
  path : path;
  through : stage_attribution list;  (** one per stage, source first *)
}

val explain :
  model:Tqwm_device.Device_model.t ->
  ?config:Tqwm_core.Config.t ->
  ?default_slew:float ->
  ?cache:Stage_cache.t ->
  ?pi:Arrival.pi_timing option array ->
  Timing_graph.t ->
  Arrival.analysis ->
  path ->
  explained
(** Attribute a path stage by stage: delay/slew from the analysis, QWM
    region and Newton counts from the solve that produced them, and
    cache provenance. Pass the very [model]/[config]/[default_slew]/
    [cache]/[pi] the analysis ran with: each stage is then a read-only
    {!Stage_cache.peek} replay ({!Arrival.replay_stage}) and costs no
    new solves. *)
