(** Voltage waveforms.

    Two representations: sampled piecewise-linear traces (what the SPICE
    engine emits) and analytic piecewise-quadratic traces (what QWM emits —
    each region contributes one quadratic piece; the paper plots QWM
    results as segments connecting the critical points). *)

type t
(** A sampled waveform: strictly increasing times with linear
    interpolation between samples and constant extension outside. *)

val of_samples : (float * float) array -> t
(** @raise Invalid_argument on empty input or non-increasing times. *)

val samples : t -> (float * float) array

val start_time : t -> float

val end_time : t -> float

val value_at : t -> float -> float

val map_values : (float -> float) -> t -> t

val crossings : t -> level:float -> (float * [ `Rising | `Falling ]) list
(** All level crossings in time order (linear interpolation inside
    segments); samples exactly on the level resolve by the segment
    direction. *)

val first_crossing :
  t -> level:float -> direction:[ `Rising | `Falling | `Any ] -> float option

(** {2 Piecewise-quadratic waveforms} *)

type piece = {
  t0 : float;  (** piece start time *)
  dt : float;  (** piece duration, > 0 *)
  v0 : float;  (** value at [t0] *)
  dv : float;  (** first derivative at [t0] *)
  ddv : float;  (** constant second derivative over the piece *)
}
(** On [t0, t0+dt]: [v(t) = v0 + dv*(t-t0) + ddv/2*(t-t0)^2]. *)

type quadratic
(** Contiguous sequence of quadratic pieces, stored as five parallel
    float64 columns (structure-of-arrays), usually zero-copy views into
    one contiguous slab. *)

val quadratic_of_pieces : piece list -> quadratic
(** Packs the pieces into a fresh contiguous slab.
    @raise Invalid_argument if pieces are empty, non-contiguous (ends and
    starts differing by more than 1e-15 s) or have non-positive
    durations. *)

val of_columns :
  t0:Tqwm_num.Vec.t ->
  dt:Tqwm_num.Vec.t ->
  v0:Tqwm_num.Vec.t ->
  dv:Tqwm_num.Vec.t ->
  ddv:Tqwm_num.Vec.t ->
  quadratic
(** Zero-copy constructor over caller-owned column views (e.g. slices of
    a solver arena slab).  The columns are adopted, not copied: they must
    not be mutated afterwards.  Validation matches
    [quadratic_of_pieces]. *)

val quadratic_pieces : quadratic -> piece list

val quadratic_length : quadratic -> int
(** Number of pieces. *)

val quadratic_digest : quadratic -> string
(** Stable content hash over the raw float64 bits of all columns; equal
    waveforms (bit-identical pieces) hash equally regardless of which
    slab backs them. *)

(** {3 Packed-block form}

    One waveform as [5 * length] consecutive floats of a shared slab
    (columns in t0/dt/v0/dv/ddv order), so many waveforms packed
    back-to-back form one contiguous range that can be blitted or hashed
    without touching boxed structure. *)

val packed_size : quadratic -> int
(** Floats the packed form occupies: [5 * quadratic_length]. *)

val blit_packed : quadratic -> Tqwm_num.Vec.t -> pos:int -> unit
(** Copy the five columns into [dst] starting at [pos] in packed order. *)

val of_packed : Tqwm_num.Vec.t -> pos:int -> len:int -> quadratic
(** Zero-copy view of a packed block of [len] pieces at [pos]; validation
    matches {!quadratic_of_pieces}. *)

val quadratic_value_at : quadratic -> float -> float
(** Constant extension outside the covered span. *)

val quadratic_end_value : quadratic -> float

val quadratic_first_crossing :
  quadratic -> level:float -> direction:[ `Rising | `Falling | `Any ] -> float option
(** Analytic crossing search using the quadratic roots of each piece. *)

val sample_quadratic : quadratic -> dt:float -> t
(** Densify for plotting/comparison; includes the final instant.
    @raise Invalid_argument if [dt <= 0]. *)
