(** Waveform and delay accuracy metrics (paper §V-C reports per-circuit
    delay error percentages and an average "accuracy" of ~99 %). *)

type report = {
  rms_error : float;  (** RMS voltage difference over the overlap window *)
  max_error : float;  (** max absolute voltage difference *)
  rms_percent_of_swing : float;
}

val waveforms : ?samples:int -> reference:Waveform.t -> Waveform.t -> report
(** Compare over the intersection of the two time spans, resampling both
    on [samples] uniform points (default 200; at least 2).
    @raise Invalid_argument if [samples < 2] or if the intersection of
    the spans is empty — including the degenerate case where either
    waveform has zero length (a single sample). *)

val delay_error_percent : reference:float -> float -> float
(** [100 * |d - reference| / reference].
    @raise Invalid_argument on a non-positive reference delay. *)

val accuracy_percent : reference:float -> float -> float
(** The paper's headline metric: [100 - delay_error_percent]. *)
