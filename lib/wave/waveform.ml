module Quad = Tqwm_num.Quad
module Vec = Tqwm_num.Vec

type t = { times : float array; values : float array }

let of_samples pts =
  let n = Array.length pts in
  if n = 0 then invalid_arg "Waveform.of_samples: empty";
  let times = Array.map fst pts and values = Array.map snd pts in
  for i = 1 to n - 1 do
    if times.(i) <= times.(i - 1) then
      invalid_arg "Waveform.of_samples: times must be strictly increasing"
  done;
  { times; values }

let samples w = Array.map2 (fun t v -> (t, v)) w.times w.values

let start_time w = w.times.(0)

let end_time w = w.times.(Array.length w.times - 1)

(* index of the last sample with time <= t, or -1 *)
let locate w t =
  let n = Array.length w.times in
  if t < w.times.(0) then -1
  else begin
    let lo = ref 0 and hi = ref (n - 1) in
    while !hi - !lo > 1 do
      let mid = (!lo + !hi) / 2 in
      if w.times.(mid) <= t then lo := mid else hi := mid
    done;
    if w.times.(!hi) <= t then !hi else !lo
  end

let value_at w t =
  let n = Array.length w.times in
  let i = locate w t in
  if i < 0 then w.values.(0)
  else if i >= n - 1 then w.values.(n - 1)
  else begin
    let t0 = w.times.(i) and t1 = w.times.(i + 1) in
    let frac = (t -. t0) /. (t1 -. t0) in
    w.values.(i) +. (frac *. (w.values.(i + 1) -. w.values.(i)))
  end

let map_values f w = { w with values = Array.map f w.values }

let crossings w ~level =
  let acc = ref [] in
  for i = 0 to Array.length w.times - 2 do
    let v0 = w.values.(i) -. level and v1 = w.values.(i + 1) -. level in
    if (v0 < 0.0 && v1 >= 0.0) || (v0 >= 0.0 && v1 < 0.0) then begin
      let frac = if v1 = v0 then 0.0 else -.v0 /. (v1 -. v0) in
      let t = w.times.(i) +. (frac *. (w.times.(i + 1) -. w.times.(i))) in
      let dir = if v1 > v0 then `Rising else `Falling in
      acc := (t, dir) :: !acc
    end
  done;
  List.rev !acc

let first_crossing w ~level ~direction =
  let matches (_, dir) =
    match direction with
    | `Any -> true
    | (`Rising | `Falling) as d -> d = dir
  in
  crossings w ~level |> List.find_opt matches |> Option.map fst

type piece = { t0 : float; dt : float; v0 : float; dv : float; ddv : float }

(* Structure-of-arrays storage: five parallel float64 columns, usually
   zero-copy views into one contiguous slab packed by the producer.  Piece
   [i] lives at index [i] of every column; all evaluators below read the
   columns directly so no piece record is materialised on the hot path. *)
type quadratic = {
  len : int;
  t0c : Vec.t;
  dtc : Vec.t;
  v0c : Vec.t;
  dvc : Vec.t;
  ddvc : Vec.t;
}

let quadratic_length q = q.len

(* value of piece [i] at absolute time [t]: v0 + dv*x + ddv/2*x^2 *)
let[@inline] col_value q i t =
  let x = t -. q.t0c.{i} in
  q.v0c.{i} +. (q.dvc.{i} *. x) +. (0.5 *. q.ddvc.{i} *. x *. x)

let validate ctx q =
  for i = 0 to q.len - 1 do
    if q.dtc.{i} <= 0.0 then invalid_arg (ctx ^ ": non-positive dt");
    if i > 0 then begin
      if Float.abs (q.t0c.{i - 1} +. q.dtc.{i - 1} -. q.t0c.{i}) > 1e-15 then
        invalid_arg (ctx ^ ": non-contiguous pieces")
    end
  done

let of_columns ~t0 ~dt ~v0 ~dv ~ddv =
  let len = Vec.dim t0 in
  if len = 0 then invalid_arg "Waveform.quadratic_of_pieces: empty";
  if Vec.dim dt <> len || Vec.dim v0 <> len || Vec.dim dv <> len
     || Vec.dim ddv <> len
  then invalid_arg "Waveform.of_columns: column length mismatch";
  let q = { len; t0c = t0; dtc = dt; v0c = v0; dvc = dv; ddvc = ddv } in
  validate "Waveform.quadratic_of_pieces" q;
  q

let quadratic_of_pieces pieces =
  if pieces = [] then invalid_arg "Waveform.quadratic_of_pieces: empty";
  let len = List.length pieces in
  let slab = Vec.create (len * 5) in
  List.iteri
    (fun i p ->
      slab.{i} <- p.t0;
      slab.{len + i} <- p.dt;
      slab.{(2 * len) + i} <- p.v0;
      slab.{(3 * len) + i} <- p.dv;
      slab.{(4 * len) + i} <- p.ddv)
    pieces;
  of_columns
    ~t0:(Vec.view slab ~pos:0 ~len)
    ~dt:(Vec.view slab ~pos:len ~len)
    ~v0:(Vec.view slab ~pos:(2 * len) ~len)
    ~dv:(Vec.view slab ~pos:(3 * len) ~len)
    ~ddv:(Vec.view slab ~pos:(4 * len) ~len)

let quadratic_pieces q =
  List.init q.len (fun i ->
      {
        t0 = q.t0c.{i};
        dt = q.dtc.{i};
        v0 = q.v0c.{i};
        dv = q.dvc.{i};
        ddv = q.ddvc.{i};
      })

let quadratic_value_at q t =
  let n = q.len in
  if t <= q.t0c.{0} then q.v0c.{0}
  else begin
    let last_end = q.t0c.{n - 1} +. q.dtc.{n - 1} in
    if t >= last_end then col_value q (n - 1) last_end
    else begin
      (* pieces are few (one per region); linear scan is fine *)
      let rec find i =
        if t <= q.t0c.{i} +. q.dtc.{i} || i = n - 1 then col_value q i t
        else find (i + 1)
      in
      find 0
    end
  end

let quadratic_end_value q =
  let n = q.len in
  col_value q (n - 1) (q.t0c.{n - 1} +. q.dtc.{n - 1})

let quadratic_first_crossing q ~level ~direction =
  let piece_crossing i =
    (* roots of v0 + dv x + ddv/2 x^2 = level within [0, dt] *)
    let t0 = q.t0c.{i} and dt = q.dtc.{i} and dv = q.dvc.{i} and ddv = q.ddvc.{i} in
    let roots = Quad.roots ~a:(0.5 *. ddv) ~b:dv ~c:(q.v0c.{i} -. level) in
    let ok x =
      if x < -1e-18 || x > dt +. 1e-18 then None
      else begin
        let slope = dv +. (ddv *. x) in
        let dir_ok =
          match direction with
          | `Any -> true
          | `Rising -> slope > 0.0
          | `Falling -> slope < 0.0
        in
        if dir_ok then Some (t0 +. Float.max x 0.0) else None
      end
    in
    List.filter_map ok roots |> function [] -> None | t :: _ -> Some t
  in
  let rec scan i =
    if i >= q.len then None
    else match piece_crossing i with Some t -> Some t | None -> scan (i + 1)
  in
  scan 0

let sample_quadratic q ~dt =
  if dt <= 0.0 then invalid_arg "Waveform.sample_quadratic: dt <= 0";
  let t_start = q.t0c.{0} in
  let t_end = q.t0c.{q.len - 1} +. q.dtc.{q.len - 1} in
  let steps = int_of_float (Float.ceil ((t_end -. t_start) /. dt)) in
  let pts =
    Array.init (steps + 1) (fun i ->
        let t = Float.min (t_start +. (float_of_int i *. dt)) t_end in
        (t, quadratic_value_at q t))
  in
  (* guard against a duplicated final sample when the span divides evenly *)
  let n = Array.length pts in
  let pts =
    if n >= 2 && fst pts.(n - 1) <= fst pts.(n - 2) then Array.sub pts 0 (n - 1) else pts
  in
  of_samples pts

(* Packed-block form: one waveform occupies [5 * len] consecutive floats
   of a shared slab, columns in t0/dt/v0/dv/ddv order.  The STA waveform
   arena packs every stage of a topological level this way, so a chunk of
   adjacent stages is one contiguous byte range. *)
let packed_size q = 5 * q.len

let blit_packed q dst ~pos =
  let n = q.len in
  for i = 0 to n - 1 do
    dst.{pos + i} <- q.t0c.{i};
    dst.{pos + n + i} <- q.dtc.{i};
    dst.{pos + (2 * n) + i} <- q.v0c.{i};
    dst.{pos + (3 * n) + i} <- q.dvc.{i};
    dst.{pos + (4 * n) + i} <- q.ddvc.{i}
  done

let of_packed slab ~pos ~len =
  of_columns
    ~t0:(Vec.view slab ~pos ~len)
    ~dt:(Vec.view slab ~pos:(pos + len) ~len)
    ~v0:(Vec.view slab ~pos:(pos + (2 * len)) ~len)
    ~dv:(Vec.view slab ~pos:(pos + (3 * len)) ~len)
    ~ddv:(Vec.view slab ~pos:(pos + (4 * len)) ~len)

(* Stable content hash over the raw float64 bit patterns of all five
   columns, in column-major piece order.  Used by the STA stage cache to
   fingerprint slab ranges without walking boxed piece records. *)
let quadratic_digest q =
  let b = Bytes.create (q.len * 5 * 8) in
  let put k x = Bytes.set_int64_le b (k * 8) (Int64.bits_of_float x) in
  for i = 0 to q.len - 1 do
    put i q.t0c.{i};
    put (q.len + i) q.dtc.{i};
    put ((2 * q.len) + i) q.v0c.{i};
    put ((3 * q.len) + i) q.dvc.{i};
    put ((4 * q.len) + i) q.ddvc.{i}
  done;
  Digest.bytes b
