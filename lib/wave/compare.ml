type report = {
  rms_error : float;
  max_error : float;
  rms_percent_of_swing : float;
}

let waveforms ?(samples = 200) ~reference w =
  if samples < 2 then invalid_arg "Compare.waveforms: samples < 2";
  let t0 = Float.max (Waveform.start_time reference) (Waveform.start_time w) in
  let t1 = Float.min (Waveform.end_time reference) (Waveform.end_time w) in
  (* covers both genuinely disjoint spans and zero-length (single-sample)
     waveforms, whose span degenerates to a point *)
  if t1 <= t0 then invalid_arg "Compare.waveforms: disjoint spans";
  let lo, hi =
    Array.fold_left
      (fun (lo, hi) (_, v) -> (Float.min lo v, Float.max hi v))
      (infinity, neg_infinity)
      (Waveform.samples reference)
  in
  let swing = Float.max (hi -. lo) 1e-12 in
  let sum_sq = ref 0.0 and max_err = ref 0.0 in
  for i = 0 to samples - 1 do
    let t = t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (samples - 1)) in
    let err = Float.abs (Waveform.value_at reference t -. Waveform.value_at w t) in
    sum_sq := !sum_sq +. (err *. err);
    max_err := Float.max !max_err err
  done;
  let rms = sqrt (!sum_sq /. float_of_int samples) in
  { rms_error = rms; max_error = !max_err; rms_percent_of_swing = 100.0 *. rms /. swing }

let delay_error_percent ~reference d =
  if reference <= 0.0 then invalid_arg "Compare.delay_error_percent: bad reference";
  100.0 *. Float.abs (d -. reference) /. reference

let accuracy_percent ~reference d = 100.0 -. delay_error_percent ~reference d
