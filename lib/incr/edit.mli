(** ECO-style edit operations over a timing graph.

    Each constructor is one atomic netlist or environment change a
    {!Session} can apply and re-time incrementally: device sizing, load
    perturbation, scenario swap, topology surgery and primary-input
    retiming. Time-valued fields are in seconds. *)

module Timing_graph = Tqwm_sta.Timing_graph

type t =
  | Resize_device of { stage : Timing_graph.stage_id; edge : int; scale : float }
      (** Multiply the width of one stage edge's device by [scale]. *)
  | Set_load of { stage : Timing_graph.stage_id; load : float }
      (** Set the external load at the stage's observed output, farads. *)
  | Swap_scenario of { stage : Timing_graph.stage_id; scenario : Tqwm_circuit.Scenario.t }
      (** Replace a stage's scenario wholesale (must keep every input
          name that fanin edges drive). *)
  | Add_stage of Tqwm_circuit.Scenario.t
      (** Append a new stage; {!Session.apply} returns its id. *)
  | Remove_stage of Timing_graph.stage_id
      (** Detach the stage: every incident connection is removed. Stage
          ids are stable, so the slot itself survives as an isolated
          primary-input stage (it keeps being timed, but no longer
          influences — or is influenced by — the rest of the graph). *)
  | Connect of {
      from_stage : Timing_graph.stage_id;
      to_stage : Timing_graph.stage_id;
      input : string;
    }
  | Disconnect of {
      from_stage : Timing_graph.stage_id;
      to_stage : Timing_graph.stage_id;
      input : string;
    }
  | Retime_input of { stage : Timing_graph.stage_id; arrival : float; slew : float }
      (** Override a primary input's arrival time and transition time
          (see {!Tqwm_sta.Arrival.pi_timing}; [slew <= 0] keeps the
          scenario's own source shapes). *)

(** {2 Scenario rewriting} *)

val resize_device : edge:int -> scale:float -> Tqwm_circuit.Scenario.t -> Tqwm_circuit.Scenario.t
(** Functional form of {!Resize_device} on a scenario.
    @raise Invalid_argument on a non-positive scale or unknown edge. *)

val set_output_load : load:float -> Tqwm_circuit.Scenario.t -> Tqwm_circuit.Scenario.t
(** Functional form of {!Set_load} on a scenario.
    @raise Invalid_argument on a negative load. *)

val describe : t -> string
(** One-line human description (times printed in picoseconds). *)
