module Timing_graph = Tqwm_sta.Timing_graph
module Arrival = Tqwm_sta.Arrival
module Parallel = Tqwm_sta.Parallel
module Path_enum = Tqwm_sta.Path_enum
module Stage_cache = Tqwm_sta.Stage_cache
module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Json = Tqwm_obs.Json

let c_edits = Metrics.counter "incr.edits"
let c_reeval = Metrics.counter "incr.stages_reeval"
let c_cutoff = Metrics.counter "incr.cutoff_hits"
let c_recomputes = Metrics.counter "incr.recomputes"

type stats = {
  edits : int;
  recomputes : int;
  stages_reeval : int;
  cutoff_hits : int;
  last_reeval : int;
}

type t = {
  graph : Timing_graph.t;
  model : Tqwm_device.Device_model.t;
  config : Tqwm_core.Config.t;
  default_slew : float;
  cache : Stage_cache.t option;
  domains : int;
  parallel_threshold : int;
  chunk : int option;
  epsilon : float;
  mutable pi : Arrival.pi_timing option array;
  mutable timings : Arrival.stage_timing option array;
  mutable dirty : bool array;
  mutable num_dirty : int;
  mutable clean : Arrival.analysis option;  (** memoized while [num_dirty = 0] *)
  mutable s_edits : int;
  mutable s_recomputes : int;
  mutable s_reeval : int;
  mutable s_cutoff : int;
  mutable s_last : int;
}

(* keep the id-indexed session arrays exactly as long as the graph,
   marking stages that appeared since the last sync as dirty *)
let sync t =
  let n = Timing_graph.num_stages t.graph in
  let old = Array.length t.timings in
  if n > old then begin
    let grow a fill = Array.init n (fun i -> if i < old then a.(i) else fill) in
    t.pi <- grow t.pi None;
    t.timings <- grow t.timings None;
    t.dirty <- grow t.dirty true;
    t.num_dirty <- t.num_dirty + (n - old);
    t.clean <- None
  end

let create ~model ?(config = Tqwm_core.Config.default) ?(default_slew = 20e-12) ?cache
    ?(domains = 1) ?(parallel_threshold = 4) ?chunk ?(epsilon = 0.0) graph =
  if default_slew <= 0.0 then invalid_arg "Session.create: default_slew <= 0";
  if not (Float.is_finite epsilon) || epsilon < 0.0 then
    invalid_arg "Session.create: epsilon must be finite and >= 0";
  (match chunk with
  | Some c when c < 1 -> invalid_arg "Session.create: chunk < 1"
  | Some _ | None -> ());
  let t =
    {
      graph;
      model;
      config;
      default_slew;
      cache;
      domains = max domains 1;
      parallel_threshold = max parallel_threshold 2;
      chunk;
      epsilon;
      pi = [||];
      timings = [||];
      dirty = [||];
      num_dirty = 0;
      clean = None;
      s_edits = 0;
      s_recomputes = 0;
      s_reeval = 0;
      s_cutoff = 0;
      s_last = 0;
    }
  in
  sync t;
  t

(* Snapshot fork: an isolated what-if overlay over the same baseline.
   The graph forks copy-on-write (shared scenarios, adjacency and frozen
   schedule until either side mutates), the timing/dirty/override arrays
   are copied so the fork starts exactly where the parent stands — no
   re-propagation — and lifetime stats restart at zero. The fork's cache
   defaults to a [copy_uses] fork of the parent's, so a clean parent's
   provenance (cache_uses in path attributions) reads in the fork as if
   the fork had run the baseline analysis itself. *)
let fork ?cache ?domains ?epsilon t =
  let cache =
    match cache with
    | Some _ as c -> c
    | None -> Option.map (Stage_cache.fork ~copy_uses:true) t.cache
  in
  {
    t with
    graph = Timing_graph.copy t.graph;
    cache;
    domains = (match domains with Some d -> max d 1 | None -> t.domains);
    epsilon =
      (match epsilon with
      | Some e when Float.is_finite e && e >= 0.0 -> e
      | Some _ -> invalid_arg "Session.fork: epsilon must be finite and >= 0"
      | None -> t.epsilon);
    pi = Array.copy t.pi;
    timings = Array.copy t.timings;
    dirty = Array.copy t.dirty;
    s_edits = 0;
    s_recomputes = 0;
    s_reeval = 0;
    s_cutoff = 0;
    s_last = 0;
  }

let graph t = t.graph

let epsilon t = t.epsilon

let mark_dirty t id =
  if not t.dirty.(id) then begin
    t.dirty.(id) <- true;
    t.num_dirty <- t.num_dirty + 1
  end;
  t.clean <- None

let check_stage t id ctx =
  if id < 0 || id >= Timing_graph.num_stages t.graph then
    invalid_arg (Printf.sprintf "Session.%s: unknown stage %d" ctx id)

let apply t edit =
  sync t;
  let added = ref None in
  (match (edit : Edit.t) with
  | Edit.Resize_device { stage; edge; scale } ->
    let scenario = Timing_graph.scenario t.graph stage in
    Timing_graph.set_scenario t.graph stage (Edit.resize_device ~edge ~scale scenario);
    mark_dirty t stage
  | Edit.Set_load { stage; load } ->
    let scenario = Timing_graph.scenario t.graph stage in
    Timing_graph.set_scenario t.graph stage (Edit.set_output_load ~load scenario);
    mark_dirty t stage
  | Edit.Swap_scenario { stage; scenario } ->
    Timing_graph.set_scenario t.graph stage scenario;
    mark_dirty t stage
  | Edit.Add_stage scenario ->
    let id = Timing_graph.add_stage t.graph scenario in
    sync t;
    added := Some id
  | Edit.Remove_stage stage ->
    check_stage t stage "apply (Remove_stage)";
    List.iter
      (fun (c : Timing_graph.connection) ->
        Timing_graph.disconnect t.graph ~from_stage:c.Timing_graph.from_stage
          ~to_stage:c.Timing_graph.to_stage ~input:c.Timing_graph.input)
      (Timing_graph.fanin t.graph stage);
    List.iter
      (fun (c : Timing_graph.connection) ->
        Timing_graph.disconnect t.graph ~from_stage:c.Timing_graph.from_stage
          ~to_stage:c.Timing_graph.to_stage ~input:c.Timing_graph.input;
        mark_dirty t c.Timing_graph.to_stage)
      (Timing_graph.fanout t.graph stage);
    t.pi.(stage) <- None;
    mark_dirty t stage
  | Edit.Connect { from_stage; to_stage; input } ->
    Timing_graph.connect t.graph ~from_stage ~to_stage ~input;
    mark_dirty t to_stage
  | Edit.Disconnect { from_stage; to_stage; input } ->
    Timing_graph.disconnect t.graph ~from_stage ~to_stage ~input;
    mark_dirty t to_stage
  | Edit.Retime_input { stage; arrival; slew } ->
    check_stage t stage "apply (Retime_input)";
    if not (Float.is_finite arrival && Float.is_finite slew) then
      invalid_arg "Session.apply: non-finite retiming";
    t.pi.(stage) <- Some { Arrival.pi_arrival = arrival; pi_slew = slew };
    mark_dirty t stage);
  t.s_edits <- t.s_edits + 1;
  Metrics.incr c_edits;
  !added

let add_stage t scenario =
  match apply t (Edit.Add_stage scenario) with
  | Some id -> id
  | None -> assert false

(* Re-propagate only dirty stages, level by level over the frozen
   schedule. Fanins of a dirty stage are always either clean (their last
   timing still holds) or scheduled in an earlier level, so by the time a
   level runs, every value [evaluate_stage] reads is final — the same
   invariant full propagation maintains, which is why the recomputed
   records are bit-identical to a from-scratch run (at [epsilon = 0]).
   A stage whose recomputed [arrival_out] and [slew] land within
   [epsilon] of the previous analysis does not dirty its fanout: the
   edit's influence is cut off there. *)
let recompute t =
  sync t;
  if t.num_dirty = 0 then 0
  else begin
    let frozen = Timing_graph.freeze t.graph in
    let seed = t.num_dirty in
    let t0 = Trace.now () in
    let reeval = ref 0 and cutoff = ref 0 in
    let eval id =
      Arrival.evaluate_stage ~model:t.model ~config:t.config
        ~default_slew:t.default_slew ?cache:t.cache ~pi:t.pi frozen t.timings id
    in
    Array.iter
      (fun level ->
        let dirty_ids =
          Array.of_seq (Seq.filter (fun id -> t.dirty.(id)) (Array.to_seq level))
        in
        if Array.length dirty_ids > 0 then begin
          let results =
            if t.domains > 1 && Array.length dirty_ids >= t.parallel_threshold then
              Parallel.evaluate_stages ~domains:t.domains ?chunk:t.chunk ~eval
                dirty_ids
            else Array.map eval dirty_ids
          in
          Array.iteri
            (fun k id ->
              let fresh = results.(k) in
              incr reeval;
              let unchanged =
                match t.timings.(id) with
                | None -> false
                | Some old ->
                  Float.abs (old.Arrival.arrival_out -. fresh.Arrival.arrival_out)
                  <= t.epsilon
                  && Float.abs (old.Arrival.slew -. fresh.Arrival.slew) <= t.epsilon
              in
              t.timings.(id) <- Some fresh;
              t.dirty.(id) <- false;
              t.num_dirty <- t.num_dirty - 1;
              if unchanged then incr cutoff
              else
                Array.iter
                  (fun (c : Timing_graph.connection) ->
                    mark_dirty t c.Timing_graph.to_stage)
                  frozen.Timing_graph.fanout.(id))
            dirty_ids
        end)
      frozen.Timing_graph.levels;
    t.clean <- None;
    t.s_recomputes <- t.s_recomputes + 1;
    t.s_reeval <- t.s_reeval + !reeval;
    t.s_cutoff <- t.s_cutoff + !cutoff;
    t.s_last <- !reeval;
    Metrics.incr c_recomputes;
    Metrics.add c_reeval !reeval;
    Metrics.add c_cutoff !cutoff;
    Trace.complete ~name:"incr.recompute" ~cat:"incr" ~ts:t0 ~dur:(Trace.now () -. t0)
      ~args:
        [
          ("dirty_seed", Json.Int seed);
          ("stages_reeval", Json.Int !reeval);
          ("cutoff_hits", Json.Int !cutoff);
          ("stages", Json.Int (Array.length frozen.Timing_graph.scenarios));
        ]
      ();
    !reeval
  end

let analysis t =
  let (_ : int) = recompute t in
  match t.clean with
  | Some a -> a
  | None ->
    let a =
      Arrival.analysis_of_timings
        (Array.map
           (function
             | Some timing -> timing
             | None -> raise (Arrival.Analysis_failure "stage never timed"))
           t.timings)
    in
    t.clean <- Some a;
    a

let scratch_analysis ?cache t =
  sync t;
  let cache =
    match cache with
    | Some _ as c -> c
    | None ->
      Option.map
        (fun c -> Stage_cache.create ~slew_bucket:(Stage_cache.slew_bucket c) ())
        t.cache
  in
  Arrival.propagate ~model:t.model ~config:t.config ~default_slew:t.default_slew
    ?cache ~pi:t.pi t.graph

let stats t =
  {
    edits = t.s_edits;
    recomputes = t.s_recomputes;
    stages_reeval = t.s_reeval;
    cutoff_hits = t.s_cutoff;
    last_reeval = t.s_last;
  }

(* Timing-observability views over the incrementally maintained
   analysis: the cheap part (recompute) is shared through [analysis],
   the backward pass and path peel run on whatever that returns. *)
let required t ~clock_period =
  Arrival.required t.graph (analysis t) ~clock_period

let k_worst ?clock_period t ~k = Path_enum.k_worst ?clock_period ~k t.graph (analysis t)

let explain t path =
  Path_enum.explain ~model:t.model ~config:t.config ~default_slew:t.default_slew
    ?cache:t.cache ~pi:t.pi t.graph (analysis t) path

type path_query = { stages : Timing_graph.stage_id list; arrival : float }

let query t ~from_stage ~to_stage =
  let (_ : int) = recompute t in
  check_stage t from_stage "query";
  check_stage t to_stage "query";
  let frozen = Timing_graph.freeze t.graph in
  let timing id = Option.get t.timings.(id) in
  let n = Array.length frozen.Timing_graph.scenarios in
  let via = Array.make n neg_infinity in
  let pred = Array.make n (-1) in
  via.(from_stage) <- (timing from_stage).Arrival.arrival_out;
  Array.iter
    (fun id ->
      if id <> from_stage then
        Array.iter
          (fun (c : Timing_graph.connection) ->
            let u = c.Timing_graph.from_stage in
            if via.(u) > neg_infinity then begin
              let candidate = via.(u) +. (timing id).Arrival.delay in
              if candidate > via.(id) then begin
                via.(id) <- candidate;
                pred.(id) <- u
              end
            end)
          frozen.Timing_graph.fanin.(id))
    frozen.Timing_graph.order;
  if via.(to_stage) = neg_infinity then None
  else begin
    let rec walk id acc = if id = from_stage then id :: acc else walk pred.(id) (id :: acc) in
    Some { stages = walk to_stage []; arrival = via.(to_stage) }
  end
