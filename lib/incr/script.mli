(** The [qwm_sim --incr] command language: a line-oriented script of
    graph edits, reports and what-if path queries driving a {!Session}.

    One command per line; blank lines are skipped and [#] starts a
    comment. Commands:

    {v
    graph chain N | diamond | decoder FANOUT DEPTH [LEVELS]
          | stacks WIDTH DEPTH [SEED]    seed the graph (first command only)
    stage NAME                           add a catalog stage (prints its id)
    connect FROM TO INPUT                drive TO's INPUT from FROM's output
    disconnect FROM TO INPUT             remove that connection
    remove ID                            detach a stage (id becomes isolated)
    resize ID EDGE SCALE                 scale a device width
    load ID FARADS                       set the output node's load
    swap ID NAME                         replace a stage's scenario
    retime ID ARRIVAL_PS SLEW_PS         override a primary input's timing
    report                               re-time and print the analysis
    clock PERIOD_PS                      set the clock; reports now show
                                         WNS/TNS and per-report deltas
    timing [K]                           k-worst paths (default 1) with
                                         stage-by-stage attribution
    query FROM TO                        worst path FROM -> TO by current delays
    v}

    After [clock], every [report] appends a slack line — WNS/TNS plus
    the delta against the previous report, so an edit script reads as a
    sequence of timing moves — and the final JSON document gains a
    [timing] member (clock period, WNS, TNS, worst slack). Scripts that
    never set a clock produce byte-identical documents to before slack
    reporting existed. [timing] always works over the session's
    incremental analysis, so its attributions replay the solves this
    session actually cached. *)

exception Script_error of { line : int; message : string }
(** A command failed: syntax error, unknown name, or an edit the graph
    rejected. [line] is 1-based. *)

type mode =
  | Incremental  (** reports come from {!Session.analysis} *)
  | Scratch  (** reports come from {!Session.scratch_analysis} — the oracle *)

type outcome = {
  session : Session.t;  (** final state, for stats or further queries *)
  clock_period : float option;
      (** seconds; the last [clock] command's period, if any *)
  json : Tqwm_obs.Json.t;
      (** ["tqwm-incr-report/1"] document: mode, final analysis
          ({!Tqwm_sta.Report.to_json}), session stats, and — when the
          script set a clock — the [timing] aggregates. Identical
          [analysis] members across the two modes is the CI equivalence
          check. *)
}

val graph_of_spec : tech:Tqwm_device.Tech.t -> string -> Tqwm_sta.Timing_graph.t
(** Build a workload graph from a [graph] command's argument text (e.g.
    ["decoder 3 2"], ["chain 16"]) — the grammar the first script line
    accepts, reused by [qwm_sim --serve --graph].
    @raise Invalid_argument on an unknown or malformed spec. *)

val timing_json :
  ?clock_period:float -> ?k:int -> Session.t -> Tqwm_obs.Json.t
(** The ["tqwm-report/1"] timing document of the session's current state
    — exactly what the [timing] script command prints, as JSON: [k]
    (default 1) worst paths with stage-by-stage attribution replayed
    through the session's own cache, plus the per-endpoint required
    times under [clock_period] (default: the worst arrival, i.e.
    zero-slack normalization; 1 ns on degenerate graphs). Byte-identical
    across session transports — the offline/server CI equivalence
    check.
    @raise Invalid_argument when [k < 1] or the graph has no stages. *)

(** One live interpreter: the per-connection server object. {!Interp.feed}
    runs exactly one script line through the same code path {!run} uses,
    so a server session that replays a script line-by-line produces
    byte-identical output and documents to an offline [qwm_sim --incr]
    run of the same script. *)
module Interp : sig
  type t

  val create :
    tech:Tqwm_device.Tech.t ->
    model:Tqwm_device.Device_model.t ->
    ?cache:Tqwm_sta.Stage_cache.t ->
    ?use_cache:bool ->
    ?domains:int ->
    ?epsilon:float ->
    ?mode:mode ->
    ?out:Format.formatter ->
    ?session:Session.t ->
    unit ->
    t
  (** [cache] overrides the cache the interpreter's session is created
      with (a server passes a {!Tqwm_sta.Stage_cache.fork} of its shared
      cache); otherwise [use_cache] (default true) creates a fresh one.
      [session] seeds the interpreter with an existing session — e.g. a
      {!Session.fork} of a server's baseline — in which case [graph] is
      rejected as a non-first command and edits apply to the fork.
      [out] (default stdout) receives the progress lines; servers pass a
      buffer formatter and ship the text back to the client. *)

  val feed : t -> ?line:int -> string -> unit
  (** Run one script line (comments/blank lines allowed). [line] is the
      1-based number used in {!Script_error} (default: the count of lines
      fed so far).
      @raise Script_error as {!run} does. *)

  val has_session : t -> bool
  (** Whether a session exists yet ([graph] ran, a seed was passed, or an
      edit forced an empty-graph session). *)

  val session : t -> Session.t
  (** The interpreter's session, creating the empty-graph one on demand. *)

  val clock_period : t -> float option
  (** Seconds; the last [clock] command's period, if any. *)

  val document : t -> Tqwm_obs.Json.t
  (** The ["tqwm-incr-report/1"] document of the current state — what
      {!run} returns as [json], available at any point mid-script. *)
end

val run :
  tech:Tqwm_device.Tech.t ->
  model:Tqwm_device.Device_model.t ->
  ?use_cache:bool ->
  ?domains:int ->
  ?epsilon:float ->
  ?mode:mode ->
  ?out:Format.formatter ->
  string ->
  outcome
(** Interpret a script given as text. [use_cache] (default true) shares
    one {!Tqwm_sta.Stage_cache} across the whole run; [domains]
    (default 1) and [epsilon] (seconds, default 0) are passed to
    {!Session.create}; progress lines go to [out] (default stdout).
    @raise Script_error on the first failing line. *)

val run_file :
  tech:Tqwm_device.Tech.t ->
  model:Tqwm_device.Device_model.t ->
  ?use_cache:bool ->
  ?domains:int ->
  ?epsilon:float ->
  ?mode:mode ->
  ?out:Format.formatter ->
  string ->
  outcome
(** {!run} on a file's contents. *)
