(** The [qwm_sim --incr] command language: a line-oriented script of
    graph edits, reports and what-if path queries driving a {!Session}.

    One command per line; blank lines are skipped and [#] starts a
    comment. Commands:

    {v
    graph chain N | diamond | decoder FANOUT DEPTH [LEVELS]
          | stacks WIDTH DEPTH [SEED]    seed the graph (first command only)
    stage NAME                           add a catalog stage (prints its id)
    connect FROM TO INPUT                drive TO's INPUT from FROM's output
    disconnect FROM TO INPUT             remove that connection
    remove ID                            detach a stage (id becomes isolated)
    resize ID EDGE SCALE                 scale a device width
    load ID FARADS                       set the output node's load
    swap ID NAME                         replace a stage's scenario
    retime ID ARRIVAL_PS SLEW_PS         override a primary input's timing
    report                               re-time and print the analysis
    clock PERIOD_PS                      set the clock; reports now show
                                         WNS/TNS and per-report deltas
    timing [K]                           k-worst paths (default 1) with
                                         stage-by-stage attribution
    query FROM TO                        worst path FROM -> TO by current delays
    v}

    After [clock], every [report] appends a slack line — WNS/TNS plus
    the delta against the previous report, so an edit script reads as a
    sequence of timing moves — and the final JSON document gains a
    [timing] member (clock period, WNS, TNS, worst slack). Scripts that
    never set a clock produce byte-identical documents to before slack
    reporting existed. [timing] always works over the session's
    incremental analysis, so its attributions replay the solves this
    session actually cached. *)

exception Script_error of { line : int; message : string }
(** A command failed: syntax error, unknown name, or an edit the graph
    rejected. [line] is 1-based. *)

type mode =
  | Incremental  (** reports come from {!Session.analysis} *)
  | Scratch  (** reports come from {!Session.scratch_analysis} — the oracle *)

type outcome = {
  session : Session.t;  (** final state, for stats or further queries *)
  json : Tqwm_obs.Json.t;
      (** ["tqwm-incr-report/1"] document: mode, final analysis
          ({!Tqwm_sta.Report.to_json}), session stats, and — when the
          script set a clock — the [timing] aggregates. Identical
          [analysis] members across the two modes is the CI equivalence
          check. *)
}

val run :
  tech:Tqwm_device.Tech.t ->
  model:Tqwm_device.Device_model.t ->
  ?use_cache:bool ->
  ?domains:int ->
  ?epsilon:float ->
  ?mode:mode ->
  ?out:Format.formatter ->
  string ->
  outcome
(** Interpret a script given as text. [use_cache] (default true) shares
    one {!Tqwm_sta.Stage_cache} across the whole run; [domains]
    (default 1) and [epsilon] (seconds, default 0) are passed to
    {!Session.create}; progress lines go to [out] (default stdout).
    @raise Script_error on the first failing line. *)

val run_file :
  tech:Tqwm_device.Tech.t ->
  model:Tqwm_device.Device_model.t ->
  ?use_cache:bool ->
  ?domains:int ->
  ?epsilon:float ->
  ?mode:mode ->
  ?out:Format.formatter ->
  string ->
  outcome
(** {!run} on a file's contents. *)
