open Tqwm_circuit
module Timing_graph = Tqwm_sta.Timing_graph
module Arrival = Tqwm_sta.Arrival
module Stage_cache = Tqwm_sta.Stage_cache
module Workloads = Tqwm_sta.Workloads
module Path_enum = Tqwm_sta.Path_enum
module Report = Tqwm_sta.Report
module Json = Tqwm_obs.Json
module Trace = Tqwm_obs.Trace

exception Script_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Script_error { line; message })) fmt

type mode = Incremental | Scratch

let ps = 1e12

let int_arg line what token =
  match int_of_string_opt token with
  | Some v -> v
  | None -> fail line "%s: expected an integer, got %S" what token

let float_arg line what token =
  match float_of_string_opt token with
  | Some v -> v
  | None -> fail line "%s: expected a number, got %S" what token

let catalog_scenario tech line name =
  match Catalog.scenario tech name with
  | scenario -> scenario
  | exception Not_found ->
    fail line "unknown circuit %S; examples: %s" name (String.concat ", " Catalog.examples)

let build_graph tech line = function
  | [ "chain"; n ] -> Workloads.chain ~n:(int_arg line "chain" n) tech
  | [ "diamond" ] -> Workloads.diamond tech
  | [ "decoder"; fanout; depth ] | [ "decoder"; fanout; depth; _ ] as args ->
    let levels =
      match args with [ _; _; _; l ] -> int_arg line "decoder levels" l | _ -> 2
    in
    Workloads.decoder_tree
      ~fanout:(int_arg line "decoder fanout" fanout)
      ~depth:(int_arg line "decoder depth" depth)
      ~levels tech
  | [ "stacks"; width; depth ] | [ "stacks"; width; depth; _ ] as args ->
    let seed = match args with [ _; _; _; s ] -> int_arg line "stacks seed" s | _ -> 0 in
    Workloads.random_stacks
      ~width:(int_arg line "stacks width" width)
      ~depth:(int_arg line "stacks depth" depth)
      ~seed tech
  | args ->
    fail line
      "graph: expected chain N | diamond | decoder FANOUT DEPTH [LEVELS] | stacks WIDTH \
       DEPTH [SEED], got %S"
      (String.concat " " args)

let tokenize raw =
  let raw =
    match String.index_opt raw '#' with
    | Some i -> String.sub raw 0 i
    | None -> raw
  in
  String.split_on_char ' ' (String.trim raw)
  |> List.concat_map (String.split_on_char '\t')
  |> List.filter (fun t -> t <> "")

let graph_of_spec ~tech spec =
  match build_graph tech 0 (tokenize spec) with
  | g -> g
  | exception Script_error { message; _ } -> invalid_arg message

(* The timing document of a session's current state: the same
   [tqwm-report/1] JSON [qwm_sim --report-timing --json] writes, built
   from the session's own analysis, cache and retimings so the per-stage
   attributions replay the solves the session actually performed. With
   no [clock_period], the critical path sets the clock (zero-slack
   normalization; degenerate graphs fall back to 1 ns) — the same rule
   the [timing] script command applies. *)
let timing_json ?clock_period ?(k = 1) session =
  if k < 1 then invalid_arg "Script.timing_json: k must be >= 1";
  let paths = Session.k_worst ?clock_period session ~k in
  let explained = List.map (Session.explain session) paths in
  let cp =
    match clock_period with
    | Some cp -> cp
    | None ->
      let wa = (Session.analysis session).Arrival.worst_arrival in
      if wa > 0.0 then wa else 1e-9
  in
  let required = Session.required session ~clock_period:cp in
  Report.timing_to_json (Session.graph session)
    (Session.analysis session)
    required explained

(* One interpreter = one session plus the report bookkeeping ([clock],
   WNS/TNS deltas, report counter) that makes an edit script read as a
   sequence of timing moves. [run] feeds a whole script through one
   interpreter; a server session feeds one line per request through a
   long-lived one — the same code path, so the documents agree byte for
   byte. *)
module Interp = struct
  type t = {
    tech : Tqwm_device.Tech.t;
    model : Tqwm_device.Device_model.t;
    cache : Stage_cache.t option;
    domains : int;
    epsilon : float;
    mode : mode;
    out : Format.formatter;
    mutable session : Session.t option;
    mutable reports : int;
    (* set by the [clock] command; while set, every report also prints
       WNS/TNS and their deltas against the previous report *)
    mutable clock : float option;
    mutable last_health : (float * float) option;
    mutable fed : int;  (** lines fed so far, for default line numbering *)
  }

  let create ~tech ~model ?cache ?(use_cache = true) ?(domains = 1) ?(epsilon = 0.0)
      ?(mode = Incremental) ?(out = Format.std_formatter) ?session () =
    let cache =
      match cache with
      | Some _ as c -> c
      | None -> if use_cache then Some (Stage_cache.create ()) else None
    in
    {
      tech;
      model;
      cache;
      domains;
      epsilon;
      mode;
      out;
      session;
      reports = 0;
      clock = None;
      last_health = None;
      fed = 0;
    }

  let has_session t = t.session <> None

  (* the session is created by the first command: [graph] seeds it with a
     workload, anything else starts from an empty graph *)
  let session t =
    match t.session with
    | Some s -> s
    | None ->
      let s =
        Session.create ~model:t.model ?cache:t.cache ~domains:t.domains
          ~epsilon:t.epsilon (Timing_graph.create ())
      in
      t.session <- Some s;
      s

  let clock_period t = t.clock

  let current_analysis t s =
    match t.mode with
    | Incremental -> Session.analysis s
    | Scratch -> Session.scratch_analysis s

  let edit t line s e =
    match Session.apply s e with
    | added ->
      (match added with
      | Some id -> Format.fprintf t.out "stage %d: %s@." id (Edit.describe e)
      | None -> Format.fprintf t.out "edit: %s@." (Edit.describe e))
    | exception Invalid_argument message -> fail line "%s" message

  let command t line tokens =
    let out = t.out in
    match tokens with
    | [] -> ()
    | "graph" :: spec ->
      if t.session <> None then fail line "graph must be the first command";
      let graph = build_graph t.tech line spec in
      t.session <-
        Some
          (Session.create ~model:t.model ?cache:t.cache ~domains:t.domains
             ~epsilon:t.epsilon graph);
      Format.fprintf out "graph: %d stages, %d connections@."
        (Timing_graph.num_stages graph)
        (Timing_graph.num_connections graph)
    | [ "stage"; name ] ->
      let s = session t in
      edit t line s (Edit.Add_stage (catalog_scenario t.tech line name))
    | [ "connect"; f; tt; input ] ->
      edit t line (session t)
        (Edit.Connect
           {
             from_stage = int_arg line "connect" f;
             to_stage = int_arg line "connect" tt;
             input;
           })
    | [ "disconnect"; f; tt; input ] ->
      edit t line (session t)
        (Edit.Disconnect
           {
             from_stage = int_arg line "disconnect" f;
             to_stage = int_arg line "disconnect" tt;
             input;
           })
    | [ "remove"; id ] ->
      edit t line (session t) (Edit.Remove_stage (int_arg line "remove" id))
    | [ "resize"; id; e; scale ] ->
      edit t line (session t)
        (Edit.Resize_device
           {
             stage = int_arg line "resize" id;
             edge = int_arg line "resize" e;
             scale = float_arg line "resize" scale;
           })
    | [ "load"; id; farads ] ->
      edit t line (session t)
        (Edit.Set_load
           { stage = int_arg line "load" id; load = float_arg line "load" farads })
    | [ "swap"; id; name ] ->
      edit t line (session t)
        (Edit.Swap_scenario
           {
             stage = int_arg line "swap" id;
             scenario = catalog_scenario t.tech line name;
           })
    | [ "retime"; id; arrival_ps; slew_ps ] ->
      edit t line (session t)
        (Edit.Retime_input
           {
             stage = int_arg line "retime" id;
             arrival = float_arg line "retime" arrival_ps *. 1e-12;
             slew = float_arg line "retime" slew_ps *. 1e-12;
           })
    | [ "report" ] ->
      let s = session t in
      let analysis = current_analysis t s in
      t.reports <- t.reports + 1;
      let stats = Session.stats s in
      if Array.length analysis.Arrival.timings <= 16 then
        Report.print out (Session.graph s) analysis;
      Format.fprintf out
        "report %d: worst arrival %.2f ps (%d stages; re-evaluated %d, cumulative %d \
         reeval / %d cutoff over %d edits)@."
        t.reports
        (analysis.Arrival.worst_arrival *. ps)
        (Array.length analysis.Arrival.timings)
        stats.Session.last_reeval stats.Session.stages_reeval stats.Session.cutoff_hits
        stats.Session.edits;
      (match t.clock with
      | None -> ()
      | Some cp ->
        let r =
          match Arrival.required (Session.graph s) analysis ~clock_period:cp with
          | r -> r
          | exception Invalid_argument message -> fail line "%s" message
        in
        (match t.last_health with
        | None ->
          Format.fprintf out "  slack: WNS %.2f ps  TNS %.2f ps@."
            (r.Arrival.wns *. ps) (r.Arrival.tns *. ps)
        | Some (wns, tns) ->
          Format.fprintf out
            "  slack: WNS %.2f ps (%+.2f)  TNS %.2f ps (%+.2f)@."
            (r.Arrival.wns *. ps)
            ((r.Arrival.wns -. wns) *. ps)
            (r.Arrival.tns *. ps)
            ((r.Arrival.tns -. tns) *. ps));
        t.last_health <- Some (r.Arrival.wns, r.Arrival.tns))
    | [ "clock"; period_ps ] ->
      let cp = float_arg line "clock" period_ps *. 1e-12 in
      if not (Float.is_finite cp) || cp <= 0.0 then
        fail line "clock: period must be finite and > 0";
      t.clock <- Some cp;
      t.last_health <- None;
      Format.fprintf out "clock: period %.2f ps@." (cp *. ps)
    | [ "timing" ] | [ "timing"; _ ] ->
      let k =
        match tokens with [ _; k ] -> int_arg line "timing" k | _ -> 1
      in
      if k < 1 then fail line "timing: K must be >= 1";
      let s = session t in
      (* always over the session's incremental analysis: the explain
         replay then peeks the solves this session actually cached *)
      let cp = t.clock in
      (match Session.k_worst ?clock_period:cp s ~k with
      | exception Invalid_argument message -> fail line "%s" message
      | paths ->
        let explained = List.map (Session.explain s) paths in
        let required =
          Session.required s
            ~clock_period:
              (match cp with
              | Some cp -> cp
              | None ->
                (* zero-slack normalization; degenerate (empty /
                   zero-arrival) graphs fall back to 1 ns *)
                let wa = (Session.analysis s).Arrival.worst_arrival in
                if wa > 0.0 then wa else 1e-9)
        in
        Report.print_timing out (Session.graph s) required explained)
    | [ "query"; f; tt ] ->
      let s = session t in
      let from_stage = int_arg line "query" f and to_stage = int_arg line "query" tt in
      (match Session.query s ~from_stage ~to_stage with
      | exception Invalid_argument message -> fail line "%s" message
      | None -> Format.fprintf out "query %d -> %d: no path@." from_stage to_stage
      | Some q ->
        Format.fprintf out "query %d -> %d: arrival %.2f ps via %s@." from_stage to_stage
          (q.Session.arrival *. ps)
          (String.concat " -> " (List.map string_of_int q.Session.stages)))
    | token :: _ -> fail line "unknown command %S" token

  let feed t ?line raw =
    t.fed <- t.fed + 1;
    let line = match line with Some l -> l | None -> t.fed in
    let tokens = tokenize raw in
    if not (Trace.enabled ()) then command t line tokens
    else
      let verb = match tokens with [] -> "" | v :: _ -> v in
      Trace.with_span ~name:"script.command" ~cat:"script"
        ~args:[ ("command", Json.String verb); ("line", Json.Int line) ]
        (fun () -> command t line tokens)

  let document t =
    let s = session t in
    let analysis = current_analysis t s in
    let stats = Session.stats s in
    (* only scripts that set a clock get the timing block, so documents of
       clock-less scripts (the CI equivalence corpus) are byte-identical to
       what they were before slack reporting existed *)
    let timing_fields =
      match t.clock with
      | None -> []
      | Some cp ->
        let r = Arrival.required (Session.graph s) analysis ~clock_period:cp in
        [
          ( "timing",
            Json.Obj
              [
                ("clock_period_ps", Json.Float (cp *. ps));
                ("wns_ps", Json.Float (r.Arrival.wns *. ps));
                ("tns_ps", Json.Float (r.Arrival.tns *. ps));
                ("worst_slack_ps", Json.Float (r.Arrival.req_worst_slack *. ps));
              ] );
        ]
    in
    Json.Obj
      ([
         ("schema", Json.String "tqwm-incr-report/1");
         ("mode", Json.String (match t.mode with Incremental -> "incremental" | Scratch -> "scratch"));
         ("analysis", Report.to_json (Session.graph s) analysis);
       ]
      @ timing_fields
      @ [
          ( "stats",
            Json.Obj
              [
                ("edits", Json.Int stats.Session.edits);
                ("recomputes", Json.Int stats.Session.recomputes);
                ("stages_reeval", Json.Int stats.Session.stages_reeval);
                ("cutoff_hits", Json.Int stats.Session.cutoff_hits);
              ] );
        ])
end

type outcome = { session : Session.t; clock_period : float option; json : Json.t }

let run ~tech ~model ?use_cache ?(domains = 1) ?(epsilon = 0.0)
    ?(mode = Incremental) ?(out = Format.std_formatter) text =
  let interp = Interp.create ~tech ~model ?use_cache ~domains ~epsilon ~mode ~out () in
  List.iteri
    (fun idx raw -> Interp.feed interp ~line:(idx + 1) raw)
    (String.split_on_char '\n' text);
  let json = Interp.document interp in
  {
    session = Interp.session interp;
    clock_period = Interp.clock_period interp;
    json;
  }

let run_file ~tech ~model ?use_cache ?domains ?epsilon ?mode ?out path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  run ~tech ~model ?use_cache ?domains ?epsilon ?mode ?out text
