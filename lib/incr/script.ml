open Tqwm_circuit
module Timing_graph = Tqwm_sta.Timing_graph
module Arrival = Tqwm_sta.Arrival
module Stage_cache = Tqwm_sta.Stage_cache
module Workloads = Tqwm_sta.Workloads
module Path_enum = Tqwm_sta.Path_enum
module Report = Tqwm_sta.Report
module Json = Tqwm_obs.Json

exception Script_error of { line : int; message : string }

let fail line fmt = Printf.ksprintf (fun message -> raise (Script_error { line; message })) fmt

type mode = Incremental | Scratch

type outcome = { session : Session.t; json : Json.t }

let ps = 1e12

let int_arg line what token =
  match int_of_string_opt token with
  | Some v -> v
  | None -> fail line "%s: expected an integer, got %S" what token

let float_arg line what token =
  match float_of_string_opt token with
  | Some v -> v
  | None -> fail line "%s: expected a number, got %S" what token

let catalog_scenario tech line name =
  match Catalog.scenario tech name with
  | scenario -> scenario
  | exception Not_found ->
    fail line "unknown circuit %S; examples: %s" name (String.concat ", " Catalog.examples)

let build_graph tech line = function
  | [ "chain"; n ] -> Workloads.chain ~n:(int_arg line "chain" n) tech
  | [ "diamond" ] -> Workloads.diamond tech
  | [ "decoder"; fanout; depth ] | [ "decoder"; fanout; depth; _ ] as args ->
    let levels =
      match args with [ _; _; _; l ] -> int_arg line "decoder levels" l | _ -> 2
    in
    Workloads.decoder_tree
      ~fanout:(int_arg line "decoder fanout" fanout)
      ~depth:(int_arg line "decoder depth" depth)
      ~levels tech
  | [ "stacks"; width; depth ] | [ "stacks"; width; depth; _ ] as args ->
    let seed = match args with [ _; _; _; s ] -> int_arg line "stacks seed" s | _ -> 0 in
    Workloads.random_stacks
      ~width:(int_arg line "stacks width" width)
      ~depth:(int_arg line "stacks depth" depth)
      ~seed tech
  | args ->
    fail line
      "graph: expected chain N | diamond | decoder FANOUT DEPTH [LEVELS] | stacks WIDTH \
       DEPTH [SEED], got %S"
      (String.concat " " args)

let run ~tech ~model ?(use_cache = true) ?(domains = 1) ?(epsilon = 0.0)
    ?(mode = Incremental) ?(out = Format.std_formatter) text =
  let cache = if use_cache then Some (Stage_cache.create ()) else None in
  let session = ref None in
  let reports = ref 0 in
  (* set by the [clock] command; while set, every report also prints
     WNS/TNS and their deltas against the previous report, so an edit
     script reads as a sequence of timing moves *)
  let clock = ref None in
  let last_health = ref None in
  (* the session is created by the first command: [graph] seeds it with a
     workload, anything else starts from an empty graph *)
  let the_session line =
    match !session with
    | Some s -> s
    | None ->
      let s =
        Session.create ~model ?cache ~domains ~epsilon (Timing_graph.create ())
      in
      ignore line;
      session := Some s;
      s
  in
  let current_analysis s =
    match mode with
    | Incremental -> Session.analysis s
    | Scratch -> Session.scratch_analysis s
  in
  let edit line s e =
    match Session.apply s e with
    | added ->
      (match added with
      | Some id -> Format.fprintf out "stage %d: %s@." id (Edit.describe e)
      | None -> Format.fprintf out "edit: %s@." (Edit.describe e))
    | exception Invalid_argument message -> fail line "%s" message
  in
  let command line tokens =
    match tokens with
    | [] -> ()
    | "graph" :: spec ->
      if !session <> None then fail line "graph must be the first command";
      let graph = build_graph tech line spec in
      session :=
        Some (Session.create ~model ?cache ~domains ~epsilon graph);
      Format.fprintf out "graph: %d stages, %d connections@."
        (Timing_graph.num_stages graph)
        (Timing_graph.num_connections graph)
    | [ "stage"; name ] ->
      let s = the_session line in
      edit line s (Edit.Add_stage (catalog_scenario tech line name))
    | [ "connect"; f; t; input ] ->
      edit line (the_session line)
        (Edit.Connect
           {
             from_stage = int_arg line "connect" f;
             to_stage = int_arg line "connect" t;
             input;
           })
    | [ "disconnect"; f; t; input ] ->
      edit line (the_session line)
        (Edit.Disconnect
           {
             from_stage = int_arg line "disconnect" f;
             to_stage = int_arg line "disconnect" t;
             input;
           })
    | [ "remove"; id ] ->
      edit line (the_session line) (Edit.Remove_stage (int_arg line "remove" id))
    | [ "resize"; id; e; scale ] ->
      edit line (the_session line)
        (Edit.Resize_device
           {
             stage = int_arg line "resize" id;
             edge = int_arg line "resize" e;
             scale = float_arg line "resize" scale;
           })
    | [ "load"; id; farads ] ->
      edit line (the_session line)
        (Edit.Set_load
           { stage = int_arg line "load" id; load = float_arg line "load" farads })
    | [ "swap"; id; name ] ->
      edit line (the_session line)
        (Edit.Swap_scenario
           {
             stage = int_arg line "swap" id;
             scenario = catalog_scenario tech line name;
           })
    | [ "retime"; id; arrival_ps; slew_ps ] ->
      edit line (the_session line)
        (Edit.Retime_input
           {
             stage = int_arg line "retime" id;
             arrival = float_arg line "retime" arrival_ps *. 1e-12;
             slew = float_arg line "retime" slew_ps *. 1e-12;
           })
    | [ "report" ] ->
      let s = the_session line in
      let analysis = current_analysis s in
      incr reports;
      let stats = Session.stats s in
      if Array.length analysis.Arrival.timings <= 16 then
        Report.print out (Session.graph s) analysis;
      Format.fprintf out
        "report %d: worst arrival %.2f ps (%d stages; re-evaluated %d, cumulative %d \
         reeval / %d cutoff over %d edits)@."
        !reports
        (analysis.Arrival.worst_arrival *. ps)
        (Array.length analysis.Arrival.timings)
        stats.Session.last_reeval stats.Session.stages_reeval stats.Session.cutoff_hits
        stats.Session.edits;
      (match !clock with
      | None -> ()
      | Some cp ->
        let r =
          match Arrival.required (Session.graph s) analysis ~clock_period:cp with
          | r -> r
          | exception Invalid_argument message -> fail line "%s" message
        in
        (match !last_health with
        | None ->
          Format.fprintf out "  slack: WNS %.2f ps  TNS %.2f ps@."
            (r.Arrival.wns *. ps) (r.Arrival.tns *. ps)
        | Some (wns, tns) ->
          Format.fprintf out
            "  slack: WNS %.2f ps (%+.2f)  TNS %.2f ps (%+.2f)@."
            (r.Arrival.wns *. ps)
            ((r.Arrival.wns -. wns) *. ps)
            (r.Arrival.tns *. ps)
            ((r.Arrival.tns -. tns) *. ps));
        last_health := Some (r.Arrival.wns, r.Arrival.tns))
    | [ "clock"; period_ps ] ->
      let cp = float_arg line "clock" period_ps *. 1e-12 in
      if not (Float.is_finite cp) || cp <= 0.0 then
        fail line "clock: period must be finite and > 0";
      clock := Some cp;
      last_health := None;
      Format.fprintf out "clock: period %.2f ps@." (cp *. ps)
    | [ "timing" ] | [ "timing"; _ ] ->
      let k =
        match tokens with [ _; k ] -> int_arg line "timing" k | _ -> 1
      in
      if k < 1 then fail line "timing: K must be >= 1";
      let s = the_session line in
      (* always over the session's incremental analysis: the explain
         replay then peeks the solves this session actually cached *)
      let cp = !clock in
      (match Session.k_worst ?clock_period:cp s ~k with
      | exception Invalid_argument message -> fail line "%s" message
      | paths ->
        let explained = List.map (Session.explain s) paths in
        let required =
          Session.required s
            ~clock_period:
              (match cp with
              | Some cp -> cp
              | None ->
                (* zero-slack normalization; degenerate (empty /
                   zero-arrival) graphs fall back to 1 ns *)
                let wa = (Session.analysis s).Arrival.worst_arrival in
                if wa > 0.0 then wa else 1e-9)
        in
        Report.print_timing out (Session.graph s) required explained)
    | [ "query"; f; t ] ->
      let s = the_session line in
      let from_stage = int_arg line "query" f and to_stage = int_arg line "query" t in
      (match Session.query s ~from_stage ~to_stage with
      | exception Invalid_argument message -> fail line "%s" message
      | None -> Format.fprintf out "query %d -> %d: no path@." from_stage to_stage
      | Some q ->
        Format.fprintf out "query %d -> %d: arrival %.2f ps via %s@." from_stage to_stage
          (q.Session.arrival *. ps)
          (String.concat " -> " (List.map string_of_int q.Session.stages)))
    | token :: _ -> fail line "unknown command %S" token
  in
  List.iteri
    (fun idx raw ->
      let raw =
        match String.index_opt raw '#' with
        | Some i -> String.sub raw 0 i
        | None -> raw
      in
      let tokens =
        String.split_on_char ' ' (String.trim raw)
        |> List.concat_map (String.split_on_char '\t')
        |> List.filter (fun t -> t <> "")
      in
      command (idx + 1) tokens)
    (String.split_on_char '\n' text);
  let s = the_session 0 in
  let analysis = current_analysis s in
  let stats = Session.stats s in
  (* only scripts that set a clock get the timing block, so documents of
     clock-less scripts (the CI equivalence corpus) are byte-identical to
     what they were before slack reporting existed *)
  let timing_fields =
    match !clock with
    | None -> []
    | Some cp ->
      let r = Arrival.required (Session.graph s) analysis ~clock_period:cp in
      [
        ( "timing",
          Json.Obj
            [
              ("clock_period_ps", Json.Float (cp *. ps));
              ("wns_ps", Json.Float (r.Arrival.wns *. ps));
              ("tns_ps", Json.Float (r.Arrival.tns *. ps));
              ("worst_slack_ps", Json.Float (r.Arrival.req_worst_slack *. ps));
            ] );
      ]
  in
  let json =
    Json.Obj
      ([
         ("schema", Json.String "tqwm-incr-report/1");
         ("mode", Json.String (match mode with Incremental -> "incremental" | Scratch -> "scratch"));
         ("analysis", Report.to_json (Session.graph s) analysis);
       ]
      @ timing_fields
      @ [
          ( "stats",
          Json.Obj
            [
              ("edits", Json.Int stats.Session.edits);
              ("recomputes", Json.Int stats.Session.recomputes);
              ("stages_reeval", Json.Int stats.Session.stages_reeval);
              ("cutoff_hits", Json.Int stats.Session.cutoff_hits);
            ] );
        ])
  in
  { session = s; json }

let run_file ~tech ~model ?use_cache ?domains ?epsilon ?mode ?out path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  run ~tech ~model ?use_cache ?domains ?epsilon ?mode ?out text
