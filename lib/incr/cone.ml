module Timing_graph = Tqwm_sta.Timing_graph

let fanout_cone (frozen : Timing_graph.frozen) seeds =
  let n = Array.length frozen.Timing_graph.scenarios in
  let mark = Array.make n false in
  let rec go id =
    if not mark.(id) then begin
      mark.(id) <- true;
      Array.iter
        (fun (c : Timing_graph.connection) -> go c.Timing_graph.to_stage)
        frozen.Timing_graph.fanout.(id)
    end
  in
  List.iter
    (fun id ->
      if id < 0 || id >= n then invalid_arg "Cone.fanout_cone: unknown stage";
      go id)
    seeds;
  mark

let size mark = Array.fold_left (fun acc b -> if b then acc + 1 else acc) 0 mark

let level_of (frozen : Timing_graph.frozen) =
  let n = Array.length frozen.Timing_graph.scenarios in
  let level = Array.make n 0 in
  Array.iteri
    (fun k ids -> Array.iter (fun id -> level.(id) <- k) ids)
    frozen.Timing_graph.levels;
  level
