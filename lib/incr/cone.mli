(** Dirty-cone analysis over a frozen timing graph.

    An edit to a set of stages can only change timings inside the edited
    stages' transitive fanout — the {e dirty cone}. The cone is an upper
    bound on incremental work: {!Session} additionally prunes it by
    early cutoff wherever a recomputed stage's outputs come back
    unchanged. *)

module Timing_graph = Tqwm_sta.Timing_graph

val fanout_cone : Timing_graph.frozen -> Timing_graph.stage_id list -> bool array
(** [fanout_cone frozen seeds] marks every stage reachable from [seeds]
    through fanout edges, the seeds included; indexed by stage id.
    @raise Invalid_argument on an out-of-range seed. *)

val size : bool array -> int
(** Number of marked stages. *)

val level_of : Timing_graph.frozen -> int array
(** Topological level index per stage (position of the stage's level in
    [frozen.levels]). *)
