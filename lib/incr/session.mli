(** Incremental static timing analysis.

    A session wraps a {!Tqwm_sta.Timing_graph.t} together with the last
    per-stage timings and re-times {e only} what an edit can have
    changed. Applying an {!Edit.t} marks the touched stages dirty;
    {!recompute} walks the frozen level schedule, re-evaluates dirty
    stages with the very same {!Tqwm_sta.Arrival.evaluate_stage} the
    full engines use, and propagates dirtiness along fanout edges —
    stopping early wherever a recomputed stage's [arrival_out] and
    [slew] come back within [epsilon] of the previous analysis (the
    edit's influence is {e cut off} there, so a local edit costs
    O(affected cone), not O(graph)).

    Equivalence: with [epsilon = 0] (the default), {!analysis} is
    bit-identical to a from-scratch {!Tqwm_sta.Arrival.propagate} of the
    current graph after {e any} edit sequence — a stage's timing depends
    on its fanins only through their [arrival_out] and [slew], so a
    stage whose recomputed outputs are unchanged cannot change anything
    downstream. With [epsilon > 0] the analysis is approximate: each
    surviving stale timing is within the accumulated cutoff tolerance.

    Wide dirty levels (at least [parallel_threshold] stages) are
    evaluated concurrently through {!Tqwm_sta.Parallel.evaluate_stages}
    — the work-stealing chunk scheduler over one synthetic level — when
    the session was created with [domains > 1]; results do not depend on
    the domain count, the chunk size, or steal interleaving. *)

module Timing_graph = Tqwm_sta.Timing_graph
module Arrival = Tqwm_sta.Arrival

type t

val create :
  model:Tqwm_device.Device_model.t ->
  ?config:Tqwm_core.Config.t ->
  ?default_slew:float ->
  ?cache:Tqwm_sta.Stage_cache.t ->
  ?domains:int ->
  ?parallel_threshold:int ->
  ?chunk:int ->
  ?epsilon:float ->
  Timing_graph.t ->
  t
(** Take ownership of [graph] (edit it only through the session from
    here on). Every stage starts dirty, so the first {!analysis} is a
    full propagation through the incremental path. [epsilon] (seconds,
    default [0.] = exact) is the early-cutoff tolerance on
    [arrival_out] and [slew]; [domains] (default 1) and
    [parallel_threshold] (default 4) govern parallel level evaluation,
    and [chunk] is the stages-per-chunk batch size handed to
    {!Tqwm_sta.Parallel.evaluate_stages} (default: auto-sized);
    [cache], [config] and [default_slew] are as in
    {!Tqwm_sta.Arrival.propagate}.
    @raise Invalid_argument when [default_slew <= 0] or [epsilon] is
    negative or not finite. *)

val fork : ?cache:Tqwm_sta.Stage_cache.t -> ?domains:int -> ?epsilon:float -> t -> t
(** Snapshot fork: a fully isolated what-if session starting exactly
    where this one stands — same graph (copied copy-on-write through
    {!Timing_graph.copy}), same computed timings and primary-input
    overrides, no re-propagation needed. Edits on either side never
    affect the other; the immutable frozen schedule and scenario values
    stay shared until a side mutates. [cache] defaults to
    [Stage_cache.fork ~copy_uses:true] of this session's cache (shared
    solve table, provenance as if the fork ran the baseline itself);
    [domains]/[epsilon] default to the parent's. Lifetime {!stats}
    restart at zero. This is the per-client overlay the timing server
    hands each connection over one shared baseline.
    @raise Invalid_argument when [epsilon] is negative or not finite. *)

val graph : t -> Timing_graph.t

val epsilon : t -> float

val apply : t -> Edit.t -> Timing_graph.stage_id option
(** Apply one edit, marking its dirty seed stages; no re-timing happens
    until {!recompute}/{!analysis}/{!query}. Returns the new stage id
    for {!Edit.Add_stage}, [None] otherwise. Edits that the underlying
    graph rejects ({!Invalid_argument}: unknown stage/edge, duplicate or
    cycle-creating connection, scenario missing a connected input)
    propagate the exception and leave the session unchanged. *)

val add_stage : t -> Tqwm_circuit.Scenario.t -> Timing_graph.stage_id
(** [apply t (Add_stage s)], returning the id directly. *)

val recompute : t -> int
(** Re-time every dirty stage (and whatever their changes reach).
    Returns the number of stages re-evaluated — 0 when the session is
    already clean. Emits an [incr.recompute] trace span and bumps the
    [incr.stages_reeval] / [incr.cutoff_hits] counters. *)

val analysis : t -> Arrival.analysis
(** Current analysis, recomputing first if dirty. Memoized while clean. *)

val scratch_analysis : ?cache:Tqwm_sta.Stage_cache.t -> t -> Arrival.analysis
(** From-scratch {!Tqwm_sta.Arrival.propagate} over the session's
    current graph and primary-input overrides — the oracle incremental
    results are checked against. Uses [cache] if given; otherwise a
    fresh cache with the session cache's slew bucket (no cache if the
    session has none), so slew quantization matches the incremental
    path and the comparison is bit-exact. *)

type stats = {
  edits : int;  (** edits applied over the session's lifetime *)
  recomputes : int;
  stages_reeval : int;  (** cumulative stages re-evaluated *)
  cutoff_hits : int;  (** re-evaluations whose outputs were unchanged *)
  last_reeval : int;  (** stages re-evaluated by the latest recompute *)
}

val stats : t -> stats

(** {2 Timing observability} *)

val required : t -> clock_period:float -> Arrival.required_report
(** {!Tqwm_sta.Arrival.required} over the current analysis (recomputing
    first if dirty): per-stage required times and slacks, the endpoint
    set, and the WNS/TNS aggregates — also refreshing the [sta.wns] /
    [sta.tns] gauges. The per-edit slack-delta reporting of
    {!Script.run} is this, called after every recompute. *)

val k_worst :
  ?clock_period:float -> t -> k:int -> Tqwm_sta.Path_enum.path list
(** {!Tqwm_sta.Path_enum.k_worst} over the current analysis (recomputing
    first if dirty). *)

val explain : t -> Tqwm_sta.Path_enum.path -> Tqwm_sta.Path_enum.explained
(** {!Tqwm_sta.Path_enum.explain} with the session's own model, config,
    slew default, cache and retimings — stage attributions are read-only
    replays of the solves the session actually performed. *)

(** {2 What-if path queries} *)

type path_query = {
  stages : Timing_graph.stage_id list;  (** [from_stage] to [to_stage] inclusive *)
  arrival : float;
      (** latest arrival at [to_stage] over paths through [from_stage],
          accumulating the {e current} per-stage delays *)
}

val query : t -> from_stage:Timing_graph.stage_id -> to_stage:Timing_graph.stage_id -> path_query option
(** Worst path from [from_stage] to [to_stage] by current stage delays
    (recomputing first if dirty); [None] when no path exists. Each
    stage's delay was computed under its actual critical driver, so off
    the critical path this is a what-if estimate, not a re-solve. *)
