open Tqwm_circuit
module Timing_graph = Tqwm_sta.Timing_graph

type t =
  | Resize_device of { stage : Timing_graph.stage_id; edge : int; scale : float }
  | Set_load of { stage : Timing_graph.stage_id; load : float }
  | Swap_scenario of { stage : Timing_graph.stage_id; scenario : Scenario.t }
  | Add_stage of Scenario.t
  | Remove_stage of Timing_graph.stage_id
  | Connect of {
      from_stage : Timing_graph.stage_id;
      to_stage : Timing_graph.stage_id;
      input : string;
    }
  | Disconnect of {
      from_stage : Timing_graph.stage_id;
      to_stage : Timing_graph.stage_id;
      input : string;
    }
  | Retime_input of { stage : Timing_graph.stage_id; arrival : float; slew : float }

let resize_device ~edge ~scale (scenario : Scenario.t) =
  if not (Float.is_finite scale) || scale <= 0.0 then
    invalid_arg "Edit.resize_device: scale must be positive";
  let stage = scenario.Scenario.stage in
  if edge < 0 || edge >= Array.length stage.Tqwm_circuit.Stage.edges then
    invalid_arg "Edit.resize_device: unknown edge";
  let device = stage.Tqwm_circuit.Stage.edges.(edge).Tqwm_circuit.Stage.device in
  let device = { device with Tqwm_device.Device.w = device.Tqwm_device.Device.w *. scale } in
  { scenario with Scenario.stage = Stage.with_device stage edge device }

let set_output_load ~load (scenario : Scenario.t) =
  { scenario with
    Scenario.stage = Stage.with_load scenario.Scenario.stage scenario.Scenario.output load
  }

let describe = function
  | Resize_device { stage; edge; scale } ->
    Printf.sprintf "resize stage %d edge %d by %gx" stage edge scale
  | Set_load { stage; load } ->
    Printf.sprintf "load stage %d = %g fF" stage (load *. 1e15)
  | Swap_scenario { stage; scenario } ->
    Printf.sprintf "swap stage %d -> %s" stage scenario.Scenario.name
  | Add_stage scenario -> Printf.sprintf "add stage %s" scenario.Scenario.name
  | Remove_stage stage -> Printf.sprintf "remove stage %d" stage
  | Connect { from_stage; to_stage; input } ->
    Printf.sprintf "connect %d -> %d.%s" from_stage to_stage input
  | Disconnect { from_stage; to_stage; input } ->
    Printf.sprintf "disconnect %d -> %d.%s" from_stage to_stage input
  | Retime_input { stage; arrival; slew } ->
    Printf.sprintf "retime stage %d arrival %.2f ps slew %.2f ps" stage (arrival *. 1e12)
      (slew *. 1e12)
