module Device = Tqwm_device.Device

exception Parse_error of { line : int; message : string }

let fail line message = raise (Parse_error { line; message })

let si_value line token =
  let token = String.lowercase_ascii token in
  let n = String.length token in
  if n = 0 then fail line "empty number";
  let scale, digits =
    match token.[n - 1] with
    | 'f' -> (1e-15, String.sub token 0 (n - 1))
    | 'p' -> (1e-12, String.sub token 0 (n - 1))
    | 'n' -> (1e-9, String.sub token 0 (n - 1))
    | 'u' -> (1e-6, String.sub token 0 (n - 1))
    | 'm' -> (1e-3, String.sub token 0 (n - 1))
    | 'k' -> (1e3, String.sub token 0 (n - 1))
    | '0' .. '9' | '.' -> (1.0, token)
    | c -> fail line (Printf.sprintf "unknown magnitude suffix %c" c)
  in
  match float_of_string_opt digits with
  | Some v -> v *. scale
  | None -> fail line (Printf.sprintf "bad number %S" token)

(* split "W=2u" style assignments out of a token list *)
let parse_params line tokens =
  List.filter_map
    (fun token ->
      match String.index_opt token '=' with
      | None -> fail line (Printf.sprintf "expected key=value, got %S" token)
      | Some i ->
        let key = String.uppercase_ascii (String.sub token 0 i) in
        let value = si_value line (String.sub token (i + 1) (String.length token - i - 1)) in
        Some (key, value))
    tokens

let parse_string (tech : Tqwm_device.Tech.t) text =
  let b = Netlist.create () in
  let nodes = Hashtbl.create 32 in
  let node line name =
    match String.lowercase_ascii name with
    | "vdd" | "vdd!" -> Netlist.supply b
    | "gnd" | "vss" | "0" -> Netlist.ground b
    | "" -> fail line "empty node name"
    | key ->
      (match Hashtbl.find_opt nodes key with
      | Some n -> n
      | None ->
        let n = Netlist.add_node b name in
        Hashtbl.add nodes key n;
        n)
  in
  let geometry line params ~default_w =
    let w = Option.value (List.assoc_opt "W" params) ~default:default_w in
    let l = Option.value (List.assoc_opt "L" params) ~default:tech.Tqwm_device.Tech.l_min in
    if w <= 0.0 || l <= 0.0 then fail line "non-positive geometry";
    (w, l)
  in
  let transistor line = function
    | drain :: gate :: source :: kind :: params ->
      let drain = node line drain and gate = node line gate and source = node line source in
      let params = parse_params line params in
      (match String.lowercase_ascii kind with
      | "nmos" ->
        let w, l = geometry line params ~default_w:tech.Tqwm_device.Tech.w_min in
        (* drain is the supply-side terminal of an NMOS pull-down *)
        Netlist.add_transistor b (Device.nmos ~l ~w tech) ~gate ~src:drain ~snk:source
      | "pmos" ->
        let w, l = geometry line params ~default_w:(2.0 *. tech.Tqwm_device.Tech.w_min) in
        (* source is the supply-side terminal of a PMOS pull-up *)
        Netlist.add_transistor b (Device.pmos ~l ~w tech) ~gate ~src:drain ~snk:source
      | other -> fail line (Printf.sprintf "unknown transistor type %S" other))
    | _ -> fail line "transistor card needs: drain gate source nmos|pmos [W=..] [L=..]"
  in
  let wire line = function
    | a :: b_name :: params ->
      let na = node line a and nb = node line b_name in
      let params = parse_params line params in
      let w = Option.value (List.assoc_opt "W" params) ~default:0.6e-6 in
      let l =
        match List.assoc_opt "L" params with
        | Some l -> l
        | None -> fail line "wire card needs L=<length>"
      in
      Netlist.add_wire b (Device.wire ~w ~l) ~src:na ~snk:nb
    | _ -> fail line "wire card needs: a b [W=..] L=.."
  in
  let load line = function
    | [ n; value ] -> Netlist.add_load b (node line n) (si_value line value)
    | _ -> fail line "capacitor card needs: node value"
  in
  (* ports named only by a directive and never touched by an element are
     dangling — report them at the directive's line once parsing is done *)
  let ports = ref [] in
  let port line name n = ports := (line, name, n) :: !ports in
  let directive line keyword args =
    match (keyword, args) with
    | ".input", _ :: _ ->
      List.iter
        (fun name ->
          let n = node line name in
          port line name n;
          Netlist.mark_primary_input b n)
        args
    | ".output", _ :: _ ->
      List.iter
        (fun name ->
          let n = node line name in
          port line name n;
          Netlist.mark_primary_output b n)
        args
    | ".end", _ -> ()
    | (".input" | ".output"), [] -> fail line (keyword ^ " needs at least one node")
    | _, _ -> fail line (Printf.sprintf "unknown directive %S" keyword)
  in
  let handle_line idx raw =
    let line = idx + 1 in
    let text =
      match String.index_opt raw '*' with
      | Some 0 -> ""
      | Some _ | None -> raw
    in
    let tokens =
      String.split_on_char ' ' (String.trim text)
      |> List.concat_map (String.split_on_char '\t')
      |> List.filter (fun t -> t <> "")
    in
    match tokens with
    | [] -> ()
    | card :: rest ->
      let lower = String.lowercase_ascii card in
      if String.length lower > 0 && lower.[0] = '.' then directive line lower rest
      else begin
        match lower.[0] with
        | 'm' -> transistor line rest
        | 'w' | 'r' -> wire line rest
        | 'c' -> load line rest
        | _ -> fail line (Printf.sprintf "unknown card %S" card)
      end
  in
  String.split_on_char '\n' text |> List.iteri handle_line;
  let net = Netlist.finish b in
  List.iter
    (fun (line, name, n) ->
      let touched =
        Array.exists
          (fun (e : Netlist.element) ->
            e.Netlist.gate = Some n || e.Netlist.src = n || e.Netlist.snk = n)
          net.Netlist.elements
      in
      if not touched then
        fail line (Printf.sprintf "dangling port node %S: not connected to any element" name))
    (List.rev !ports);
  net

let parse_file tech path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  parse_string tech text
