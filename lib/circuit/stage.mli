(** CMOS logic stages (paper Definition 1).

    A logic stage is a polar directed graph: vertices are circuit nodes,
    edges are circuit elements (NMOS, PMOS, wire segments). The graph's
    source is the power supply, its sink the ground. Edges are oriented
    from the supply side ([src]) toward the ground side ([snk]).
    Transistor edges carry a named gate input. *)

type node = int

type edge = {
  device : Tqwm_device.Device.t;
  src : node;  (** supply-side terminal *)
  snk : node;  (** ground-side terminal *)
  gate : string option;  (** input name; [None] for wires *)
}

type t = private {
  num_nodes : int;
  supply : node;
  ground : node;
  edges : edge array;
  outputs : node list;
  loads : float array;  (** extra (external) load capacitance per node *)
  node_names : string array;
}

(** {2 Construction} *)

type builder

val create : ?name:string -> unit -> builder

val supply : builder -> node

val ground : builder -> node

val add_node : builder -> string -> node

val add_edge : builder -> ?gate:string -> Tqwm_device.Device.t -> src:node -> snk:node -> unit
(** @raise Invalid_argument when a transistor edge lacks a gate or a wire
    edge has one. *)

val add_load : builder -> node -> float -> unit
(** Accumulate external load capacitance on a node. *)

val mark_output : builder -> node -> unit

val finish : builder -> t
(** @raise Invalid_argument on dangling node references. *)

(** {2 Functional updates}

    ECO-style edits: a stage is immutable once built, so in-place tuning
    (device sizing loops, load perturbations, incremental timing) goes
    through copying updates that leave the original untouched. *)

val with_device : t -> int -> Tqwm_device.Device.t -> t
(** [with_device t i d] is [t] with edge [i]'s device replaced by [d]
    (terminals and gate input kept).
    @raise Invalid_argument on an unknown edge index or when the
    replacement changes the edge's class (transistor vs wire). *)

val with_load : t -> node -> float -> t
(** [with_load t n c] is [t] with the external load at node [n] {e set}
    (not accumulated) to [c] farads.
    @raise Invalid_argument on an unknown node or a negative value. *)

(** {2 Queries} *)

val inputs : t -> string list
(** Distinct gate-input names, in first-use order. *)

val incident : t -> node -> edge list

val node_name : t -> node -> string

val node_capacitance :
  Tqwm_device.Device_model.t -> t -> node -> v:float -> float
(** Paper Eq. (1): the node's capacitance to ground — terminal-capacitance
    contributions of every incident element (at node bias [v]) plus the
    external load. Supply/ground report 0. *)

val internal_nodes : t -> node list
(** All nodes except supply and ground. *)

val pp : Format.formatter -> t -> unit
