(** Parser for a SPICE-flavoured flat-netlist format.

    Grammar (one card per line; ['*'] starts a comment; case-insensitive
    keywords; SI magnitude suffixes [f p n u m k] on numbers):

    {v
    * transistor: M<name> <drain> <gate> <source> nmos|pmos [W=2u] [L=0.35u]
    M1 out a gnd nmos W=0.8u
    M2 vdd a out pmos W=1.6u
    * wire segment: W<name> <a> <b> [W=0.6u] L=100u
    Wbus n1 n2 W=0.6u L=120u
    * external load: C<name> <node> <value>
    Cload out 10f
    * port declarations
    .input a
    .output out
    .end
    v}

    Node names [vdd]/[vdd!] map to the supply, [gnd]/[vss]/[0] to ground;
    every other token names an internal node, created on first use.
    Transistor cards follow SPICE's D-G-S terminal order; the supply-side
    [src] terminal of the stage edge is chosen automatically (the drain
    for NMOS pull-downs, the source for PMOS pull-ups — i.e. whichever
    terminal is listed first). *)

exception Parse_error of { line : int; message : string }

val parse_string : Tqwm_device.Tech.t -> string -> Netlist.t
(** @raise Parse_error on malformed input — a card with the wrong shape,
    an unknown card or transistor type, a bad number, or a [.input] /
    [.output] port node no element touches (dangling), reported at the
    declaring directive's line. *)

val parse_file : Tqwm_device.Tech.t -> string -> Netlist.t
(** @raise Parse_error, [Sys_error]. *)
