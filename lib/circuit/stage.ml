module Device = Tqwm_device.Device
module Device_model = Tqwm_device.Device_model

type node = int

type edge = { device : Device.t; src : node; snk : node; gate : string option }

type t = {
  num_nodes : int;
  supply : node;
  ground : node;
  edges : edge array;
  outputs : node list;
  loads : float array;
  node_names : string array;
}

type builder = {
  mutable names : string list;  (** reversed *)
  mutable count : int;
  mutable b_edges : edge list;  (** reversed *)
  mutable b_outputs : node list;
  mutable b_loads : (node * float) list;
  b_supply : node;
  b_ground : node;
}

let add_node b name =
  let id = b.count in
  b.count <- id + 1;
  b.names <- name :: b.names;
  id

let create ?name:_ () =
  let b =
    {
      names = [];
      count = 0;
      b_edges = [];
      b_outputs = [];
      b_loads = [];
      b_supply = 0;
      b_ground = 1;
    }
  in
  let (_ : node) = add_node b "vdd" in
  let (_ : node) = add_node b "gnd" in
  b

let supply b = b.b_supply

let ground b = b.b_ground

let add_edge b ?gate device ~src ~snk =
  (match (device.Device.kind, gate) with
  | (Device.Nmos | Device.Pmos), None ->
    invalid_arg "Stage.add_edge: transistor without a gate input"
  | Device.Wire, Some _ -> invalid_arg "Stage.add_edge: wire with a gate input"
  | (Device.Nmos | Device.Pmos), Some _ | Device.Wire, None -> ());
  if src < 0 || src >= b.count || snk < 0 || snk >= b.count then
    invalid_arg "Stage.add_edge: unknown node";
  if src = snk then invalid_arg "Stage.add_edge: self-loop";
  b.b_edges <- { device; src; snk; gate } :: b.b_edges

let add_load b node c =
  if node < 0 || node >= b.count then invalid_arg "Stage.add_load: unknown node";
  if c < 0.0 then invalid_arg "Stage.add_load: negative capacitance";
  b.b_loads <- (node, c) :: b.b_loads

let mark_output b node =
  if node < 0 || node >= b.count then invalid_arg "Stage.mark_output: unknown node";
  if not (List.mem node b.b_outputs) then b.b_outputs <- node :: b.b_outputs

let finish b =
  let loads = Array.make b.count 0.0 in
  List.iter (fun (n, c) -> loads.(n) <- loads.(n) +. c) b.b_loads;
  {
    num_nodes = b.count;
    supply = b.b_supply;
    ground = b.b_ground;
    edges = Array.of_list (List.rev b.b_edges);
    outputs = List.rev b.b_outputs;
    loads;
    node_names = Array.of_list (List.rev b.names);
  }

let with_device t i device =
  if i < 0 || i >= Array.length t.edges then
    invalid_arg "Stage.with_device: unknown edge";
  let edge = t.edges.(i) in
  (match (device.Device.kind, edge.gate) with
  | (Device.Nmos | Device.Pmos), None ->
    invalid_arg "Stage.with_device: transistor device on a wire edge"
  | Device.Wire, Some _ -> invalid_arg "Stage.with_device: wire device on a gated edge"
  | (Device.Nmos | Device.Pmos), Some _ | Device.Wire, None -> ());
  let edges = Array.copy t.edges in
  edges.(i) <- { edge with device };
  { t with edges }

let with_load t node c =
  if node < 0 || node >= t.num_nodes then invalid_arg "Stage.with_load: unknown node";
  if c < 0.0 then invalid_arg "Stage.with_load: negative capacitance";
  let loads = Array.copy t.loads in
  loads.(node) <- c;
  { t with loads }

let inputs t =
  let seen = Hashtbl.create 8 in
  Array.fold_left
    (fun acc e ->
      match e.gate with
      | Some g when not (Hashtbl.mem seen g) ->
        Hashtbl.add seen g ();
        g :: acc
      | Some _ | None -> acc)
    [] t.edges
  |> List.rev

let incident t node =
  Array.fold_left
    (fun acc e -> if e.src = node || e.snk = node then e :: acc else acc)
    [] t.edges
  |> List.rev

let node_name t node = t.node_names.(node)

let node_capacitance (model : Device_model.t) t node ~v =
  if node = t.supply || node = t.ground then 0.0
  else
    List.fold_left
      (fun acc e ->
        let c =
          if e.src = node then model.Device_model.src_cap e.device ~v
          else model.Device_model.snk_cap e.device ~v
        in
        acc +. c)
      t.loads.(node) (incident t node)

let internal_nodes t =
  List.init t.num_nodes Fun.id
  |> List.filter (fun n -> n <> t.supply && n <> t.ground)

let pp fmt t =
  Format.fprintf fmt "stage: %d nodes, %d edges@\n" t.num_nodes (Array.length t.edges);
  Array.iter
    (fun e ->
      Format.fprintf fmt "  %a  %s -> %s%s@\n" Device.pp e.device
        t.node_names.(e.src) t.node_names.(e.snk)
        (match e.gate with Some g -> " gate=" ^ g | None -> ""))
    t.edges
