(** Prometheus text-format exposition of the global {!Metrics} registry.

    [render] produces exposition format 0.0.4: counters and gauges as
    single samples, histograms as cumulative [_bucket{le="..."}] series
    (the registry's per-bucket counts summed left to right) closed by
    the mandatory [+Inf] bucket plus [_sum]/[_count]. Dotted registry
    names are sanitized to Prometheus' charset ([server.requests] →
    [server_requests]).

    [serve] starts a deliberately tiny HTTP/1.1 listener on its own
    domain that answers [GET /metrics] (and [GET /]) with a fresh
    render and closes the connection — enough for a stock Prometheus
    scrape config or [curl]; anything else gets 404/405. One request
    per connection, no keep-alive, no TLS. *)

val render : unit -> string
(** The full exposition document for the current registry contents. *)

val sanitize : string -> string
(** Map a registry name to a legal Prometheus metric name. *)

type server

val serve : ?render:(unit -> string) -> Unix.sockaddr -> server
(** Bind the address (TCP or Unix-domain; an existing socket file is
    replaced, port 0 picks an ephemeral port — see {!bound}) and serve
    scrapes on a dedicated acceptor domain until {!stop}.
    @raise Unix.Unix_error if the address cannot be bound. *)

val bound : server -> Unix.sockaddr
(** The actual bound address — useful with an ephemeral port. *)

val stop : server -> unit
(** Stop accepting, join the acceptor domain, close and unlink the
    socket. Idempotent. *)
