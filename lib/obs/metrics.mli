(** Global telemetry instruments: atomic counters and fixed-bucket
    histograms, registered by name in one process-wide registry that
    snapshots to a JSON document.

    Instruments are declared once (typically in a top-level [let] of the
    instrumented module) and shared by every engine instance and every
    domain; updates are single atomic operations, cheap enough to leave
    enabled unconditionally on hot paths. Because the registry is
    global, a sequential and a parallel run of the same workload bump
    the same cells and their totals can be compared directly (see
    [test/test_obs.ml]). *)

type counter

type histogram

type gauge

val counter : string -> counter
(** Get or create the counter registered under this name.
    @raise Invalid_argument if the name is registered as another kind. *)

val histogram : string -> bounds:float array -> histogram
(** Get or create a histogram with the given strictly increasing upper
    bounds. Bucket [i] counts observations [v] with
    [bounds.(i-1) < v <= bounds.(i)]; one extra overflow bucket counts
    [v > bounds.(last)]. An existing histogram is returned as-is (its
    bounds are not checked against [bounds]).
    @raise Invalid_argument on empty or non-increasing bounds, or if the
    name is registered as a counter. *)

val gauge : string -> gauge
(** Get or create a gauge — a last-value instrument for quantities that
    are {e levels} rather than totals (worst slack, queue depth): [set]
    overwrites, nothing accumulates. Starts at [0.0].
    @raise Invalid_argument if the name is registered as another kind. *)

val set : gauge -> float -> unit

val gauge_value : gauge -> float

val incr : counter -> unit

val add : counter -> int -> unit

val value : counter -> int

val observe : histogram -> float -> unit

val histogram_counts : histogram -> int array
(** Per-bucket counts, overflow bucket last. *)

val histogram_total : histogram -> int

val counters_alist : unit -> (string * int) list
(** All registered counters with their current values, sorted by name. *)

val find_counter : string -> int option
(** Current value of a counter by name; [None] if not registered. *)

val find_gauge : string -> float option
(** Current value of a gauge by name; [None] if not registered. *)

type exported =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of { bounds : float array; counts : int array; sum : float }
      (** [counts] has one entry per bound plus the trailing overflow
          bucket, mirroring {!histogram_counts}. *)

val export : unit -> (string * exported) list
(** Typed point-in-time view of every registered instrument, sorted by
    name. Each histogram's arrays are fresh copies. This is the feed for
    the Prometheus renderer ({!Prometheus.render}) and for rolling
    {!Series} samples. *)

val snapshot : unit -> Json.t
(** [{"counters": {...}, "gauges": {...}, "histograms": {name: {bounds,
    counts, total, sum}}}] — the metrics document written by
    [qwm_sim --metrics]. *)

val write_file : string -> unit
(** Write [snapshot ()] to a file. *)

val reset : unit -> unit
(** Zero every registered instrument. Registrations are kept, and so are
    all previously handed-out handles: a counter or histogram obtained
    before [reset] still points at its (now zeroed) registered cell, and
    re-registering the same name returns that very cell — old and new
    handles stay interchangeable, and updates through either are visible
    in the next [snapshot]. [reset] never invalidates a handle. Intended
    for tests and for delta measurements around a workload. *)
