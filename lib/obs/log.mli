(** Structured JSONL logging: one compact JSON object per line,
    appended and flushed under a lock so concurrent writers from any
    domain produce whole lines (never interleaved) and a tail-reader
    sees each record as soon as the request that produced it finishes.

    The daemon uses this for its access log; the record schema is
    checked by [tools/check_ledgers.py]. *)

type t

val open_file : string -> t
(** Open (or create, mode 0o644) for appending. *)

val path : t -> string

val write : t -> (string * Json.t) list -> unit
(** Append one record as a single line and flush. *)

val close : t -> unit
