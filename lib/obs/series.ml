type hist = { bounds : float array; counts : int array; sum : float }

type sample = {
  t : float;
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
}

type t = {
  lock : Mutex.t;
  ring : sample option array;
  mutable next : int;  (** slot the next sample goes into *)
  mutable len : int;
}

let create ?(capacity = 120) () =
  if capacity <= 0 then invalid_arg "Series.create: capacity must be positive";
  { lock = Mutex.create (); ring = Array.make capacity None; next = 0; len = 0 }

let capacity t = Array.length t.ring

let length t = Mutex.protect t.lock (fun () -> t.len)

let record t sample =
  Mutex.protect t.lock (fun () ->
      t.ring.(t.next) <- Some sample;
      t.next <- (t.next + 1) mod Array.length t.ring;
      t.len <- min (t.len + 1) (Array.length t.ring))

let capture ?(extra_counters = []) ?(extra_gauges = []) ~now () =
  let counters = ref extra_counters and gauges = ref extra_gauges in
  let histograms = ref [] in
  List.iter
    (fun (name, m) ->
      match m with
      | Metrics.Counter_value v -> counters := (name, v) :: !counters
      | Metrics.Gauge_value v -> gauges := (name, v) :: !gauges
      | Metrics.Histogram_value { bounds; counts; sum } ->
        histograms := (name, { bounds; counts; sum }) :: !histograms)
    (Metrics.export ());
  { t = now; counters = !counters; gauges = !gauges; histograms = !histograms }

(* oldest → newest *)
let all t =
  Mutex.protect t.lock (fun () ->
      let cap = Array.length t.ring in
      let first = (t.next - t.len + cap) mod cap in
      List.init t.len (fun i ->
          match t.ring.((first + i) mod cap) with
          | Some s -> s
          | None -> assert false))

let latest t =
  match all t with [] -> None | l -> Some (List.nth l (List.length l - 1))

(* Samples whose timestamp falls within [seconds] of the NEWEST sample's
   timestamp — windows are anchored to recorded data, not the wall
   clock, so readers and tests see deterministic cuts. *)
let window t ~seconds =
  match all t with
  | [] -> []
  | samples ->
      let newest = (List.nth samples (List.length samples - 1)).t in
      List.filter (fun s -> newest -. s.t <= seconds) samples

(* endpoints for a delta: the oldest and newest window samples that
   actually carry the instrument — mixed samplers (e.g. GC extras only
   recorded by the dedicated sampler domain) stay comparable *)
let bracket t ~seconds ~mem =
  match List.filter mem (window t ~seconds) with
  | [] | [ _ ] -> None
  | first :: rest ->
      let last = List.nth rest (List.length rest - 1) in
      if last.t > first.t then Some (first, last) else None

let counter_rate t ~seconds name =
  match bracket t ~seconds ~mem:(fun s -> List.mem_assoc name s.counters) with
  | None -> None
  | Some (a, b) -> (
      match (List.assoc_opt name a.counters, List.assoc_opt name b.counters) with
      | Some va, Some vb -> Some (float_of_int (vb - va) /. (b.t -. a.t))
      | _ -> None)

let gauge_rate t ~seconds name =
  match bracket t ~seconds ~mem:(fun s -> List.mem_assoc name s.gauges) with
  | None -> None
  | Some (a, b) -> (
      match (List.assoc_opt name a.gauges, List.assoc_opt name b.gauges) with
      | Some va, Some vb -> Some ((vb -. va) /. (b.t -. a.t))
      | _ -> None)

let histogram_delta t ~seconds name =
  match
    bracket t ~seconds ~mem:(fun s -> List.mem_assoc name s.histograms)
  with
  | None -> None
  | Some (a, b) -> (
      match
        (List.assoc_opt name a.histograms, List.assoc_opt name b.histograms)
      with
      | Some ha, Some hb when Array.length ha.counts = Array.length hb.counts ->
          Some
            {
              bounds = hb.bounds;
              counts = Array.mapi (fun i c -> c - ha.counts.(i)) hb.counts;
              sum = hb.sum -. ha.sum;
            }
      | _ -> None)

(* Prometheus-style quantile estimation from cumulative bucket counts:
   find the bucket holding rank q*total, then interpolate linearly
   inside it. Observations in the overflow bucket report the last
   finite bound (we cannot do better without the raw values). *)
let quantile ~bounds ~counts q =
  if q < 0.0 || q > 1.0 then invalid_arg "Series.quantile: q outside [0,1]";
  let n = Array.length bounds in
  if Array.length counts <> n + 1 then
    invalid_arg "Series.quantile: counts/bounds length mismatch";
  let total = Array.fold_left ( + ) 0 counts in
  if total <= 0 then None
  else begin
    let rank = Float.max 1.0 (q *. float_of_int total) in
    let rec find i cum =
      if i >= n then Some bounds.(n - 1)
      else
        let cum' = cum + counts.(i) in
        if float_of_int cum' >= rank && counts.(i) > 0 then begin
          let lo = if i = 0 then Float.min 0.0 bounds.(0) else bounds.(i - 1) in
          let hi = bounds.(i) in
          let within = (rank -. float_of_int cum) /. float_of_int counts.(i) in
          Some (lo +. ((hi -. lo) *. within))
        end
        else find (i + 1) cum'
    in
    find 0 0
  end
