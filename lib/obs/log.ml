type t = { path : string; oc : out_channel; lock : Mutex.t }

let open_file path =
  let oc =
    open_out_gen [ Open_wronly; Open_creat; Open_append ] 0o644 path
  in
  { path; oc; lock = Mutex.create () }

let path t = t.path

let write t fields =
  Mutex.protect t.lock (fun () ->
      Json.to_channel t.oc (Json.Obj fields);
      output_char t.oc '\n';
      flush t.oc)

let close t = Mutex.protect t.lock (fun () -> close_out t.oc)
