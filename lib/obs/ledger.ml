let timestamp () =
  let tm = Unix.gmtime (Unix.gettimeofday ()) in
  Printf.sprintf "%04d-%02d-%02dT%02d:%02d:%02dZ" (tm.Unix.tm_year + 1900)
    (tm.Unix.tm_mon + 1) tm.Unix.tm_mday tm.Unix.tm_hour tm.Unix.tm_min
    tm.Unix.tm_sec

let stamp = function
  | Json.Obj fields ->
    let fields =
      List.filter (fun (k, _) -> k <> "date" && k <> "commit") fields
    in
    Json.Obj
      (("date", Json.String (timestamp ()))
      :: ("commit", Json.String (Vcs.commit ()))
      :: fields)
  | other -> other

let read path =
  if not (Sys.file_exists path) then []
  else
    let ic = open_in path in
    let text = really_input_string ic (in_channel_length ic) in
    close_in ic;
    match Json.of_string text with
    | Json.List records -> records
    | single -> [ single ]
    | exception Json.Parse_error _ ->
      Printf.eprintf "ledger: %s is not JSON; starting a fresh history\n" path;
      []

let last path =
  match List.rev (read path) with [] -> None | newest :: _ -> Some newest

(* Every ledger consumer dispatches on the record's "schema" field
   (tools/check_ledgers.py, the CI gates, Baseline.load); a record
   without one is unidentifiable forever, so it is rejected at the
   source instead of poisoning the committed history. *)
let has_schema = function
  | Json.Obj fields ->
    (match List.assoc_opt "schema" fields with
    | Some (Json.String _) -> true
    | Some _ | None -> false)
  | _ -> false

let append ~path record =
  if not (has_schema record) then
    invalid_arg "Ledger.append: record lacks a \"schema\" string field";
  let history = read path @ [ stamp record ] in
  Json.write_file path (Json.List history);
  List.length history
