type counter = { name : string; value : int Atomic.t }

type histogram = {
  hname : string;
  bounds : float array;  (** strictly increasing upper bounds *)
  counts : int Atomic.t array;  (** length = Array.length bounds + 1 (overflow) *)
  sum : float Atomic.t;
}

type gauge = { gname : string; gvalue : float Atomic.t }

type metric = Counter of counter | Histogram of histogram | Gauge of gauge

(* The registry is global: instruments are declared once at module
   initialization and shared by every engine instance, so sequential and
   parallel runs of the same work bump the same cells and their totals
   can be compared directly. *)
let registry : (string, metric) Hashtbl.t = Hashtbl.create 64

let registry_lock = Mutex.create ()

let kind = function
  | Counter _ -> "a counter"
  | Histogram _ -> "a histogram"
  | Gauge _ -> "a gauge"

let counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> c
      | Some ((Histogram _ | Gauge _) as m) ->
        invalid_arg (Printf.sprintf "Metrics.counter: %s is %s" name (kind m))
      | None ->
        let c = { name; value = Atomic.make 0 } in
        Hashtbl.add registry name (Counter c);
        c)

let histogram name ~bounds =
  if Array.length bounds = 0 then invalid_arg "Metrics.histogram: empty bounds";
  Array.iteri
    (fun i b ->
      if i > 0 && bounds.(i - 1) >= b then
        invalid_arg "Metrics.histogram: bounds not strictly increasing")
    bounds;
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Histogram h) -> h
      | Some ((Counter _ | Gauge _) as m) ->
        invalid_arg (Printf.sprintf "Metrics.histogram: %s is %s" name (kind m))
      | None ->
        let h =
          {
            hname = name;
            bounds = Array.copy bounds;
            counts = Array.init (Array.length bounds + 1) (fun _ -> Atomic.make 0);
            sum = Atomic.make 0.0;
          }
        in
        Hashtbl.add registry name (Histogram h);
        h)

let gauge name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Gauge g) -> g
      | Some ((Counter _ | Histogram _) as m) ->
        invalid_arg (Printf.sprintf "Metrics.gauge: %s is %s" name (kind m))
      | None ->
        let g = { gname = name; gvalue = Atomic.make 0.0 } in
        Hashtbl.add registry name (Gauge g);
        g)

let set g v = Atomic.set g.gvalue v

let gauge_value g = Atomic.get g.gvalue

let add c n = if n <> 0 then ignore (Atomic.fetch_and_add c.value n)

let incr c = ignore (Atomic.fetch_and_add c.value 1)

let value c = Atomic.get c.value

let rec atomic_add_float a x =
  let old = Atomic.get a in
  if not (Atomic.compare_and_set a old (old +. x)) then atomic_add_float a x

(* bucket i counts observations v with bounds.(i-1) < v <= bounds.(i);
   the final bucket counts v > bounds.(last) *)
let bucket_index h v =
  let n = Array.length h.bounds in
  let rec find i = if i >= n || v <= h.bounds.(i) then i else find (i + 1) in
  find 0

let observe h v =
  ignore (Atomic.fetch_and_add h.counts.(bucket_index h v) 1);
  atomic_add_float h.sum v

let histogram_counts h = Array.map Atomic.get h.counts

let histogram_total h =
  Array.fold_left (fun acc c -> acc + Atomic.get c) 0 h.counts

let sorted_metrics () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.fold (fun name m acc -> (name, m) :: acc) registry [])
  |> List.sort (fun (a, _) (b, _) -> String.compare a b)

let counters_alist () =
  List.filter_map
    (function name, Counter c -> Some (name, value c) | _, (Histogram _ | Gauge _) -> None)
    (sorted_metrics ())

let find_counter name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Counter c) -> Some (value c)
      | Some (Histogram _ | Gauge _) | None -> None)

let find_gauge name =
  Mutex.protect registry_lock (fun () ->
      match Hashtbl.find_opt registry name with
      | Some (Gauge g) -> Some (gauge_value g)
      | Some (Counter _ | Histogram _) | None -> None)

type exported =
  | Counter_value of int
  | Gauge_value of float
  | Histogram_value of { bounds : float array; counts : int array; sum : float }

let export () =
  List.map
    (fun (name, m) ->
      match m with
      | Counter c -> (name, Counter_value (value c))
      | Gauge g -> (name, Gauge_value (gauge_value g))
      | Histogram h ->
        ( name,
          Histogram_value
            {
              bounds = Array.copy h.bounds;
              counts = histogram_counts h;
              sum = Atomic.get h.sum;
            } ))
    (sorted_metrics ())

let snapshot () =
  let metrics = sorted_metrics () in
  let counters =
    List.filter_map
      (function
        | name, Counter c -> Some (name, Json.Int (value c))
        | _, (Histogram _ | Gauge _) -> None)
      metrics
  in
  let gauges =
    List.filter_map
      (function
        | name, Gauge g -> Some (name, Json.Float (gauge_value g))
        | _, (Counter _ | Histogram _) -> None)
      metrics
  in
  let histograms =
    List.filter_map
      (function
        | _, (Counter _ | Gauge _) -> None
        | name, Histogram h ->
          Some
            ( name,
              Json.Obj
                [
                  ("bounds", Json.List (Array.to_list (Array.map (fun b -> Json.Float b) h.bounds)));
                  ( "counts",
                    Json.List
                      (Array.to_list
                         (Array.map (fun c -> Json.Int (Atomic.get c)) h.counts)) );
                  ("total", Json.Int (histogram_total h));
                  ("sum", Json.Float (Atomic.get h.sum));
                ] ))
      metrics
  in
  Json.Obj
    [
      ("counters", Json.Obj counters);
      ("gauges", Json.Obj gauges);
      ("histograms", Json.Obj histograms);
    ]

let write_file path = Json.write_file path (snapshot ())

let reset () =
  Mutex.protect registry_lock (fun () ->
      Hashtbl.iter
        (fun _ m ->
          match m with
          | Counter c -> Atomic.set c.value 0
          | Gauge g -> Atomic.set g.gvalue 0.0
          | Histogram h ->
            Array.iter (fun c -> Atomic.set c 0) h.counts;
            Atomic.set h.sum 0.0)
        registry)
