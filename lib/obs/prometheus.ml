(* Prometheus text exposition format 0.0.4 over the global Metrics
   registry, plus a minimal single-purpose HTTP listener so a stock
   Prometheus server (or curl) can scrape the daemon. *)

let scrapes = Metrics.counter "prom.scrapes"

let fmt_float v =
  if Float.is_integer v && Float.abs v < 1e15 then
    Printf.sprintf "%.0f" v
  else Printf.sprintf "%.12g" v

(* Metric names must match [a-zA-Z_:][a-zA-Z0-9_:]*; the registry uses
   dotted names, so map every other character to '_'. Distinct dotted
   names can collide after sanitization ("a.b" vs "a_b") — the registry
   naming convention avoids this. *)
let sanitize name =
  let ok i c =
    match c with
    | 'a' .. 'z' | 'A' .. 'Z' | '_' | ':' -> true
    | '0' .. '9' -> i > 0
    | _ -> false
  in
  String.mapi (fun i c -> if ok i c then c else '_') name

let render () =
  let b = Buffer.create 4096 in
  List.iter
    (fun (name, m) ->
      let p = sanitize name in
      match m with
      | Metrics.Counter_value v ->
          Printf.bprintf b "# TYPE %s counter\n%s %d\n" p p v
      | Metrics.Gauge_value v ->
          Printf.bprintf b "# TYPE %s gauge\n%s %s\n" p p (fmt_float v)
      | Metrics.Histogram_value { bounds; counts; sum } ->
          Printf.bprintf b "# TYPE %s histogram\n" p;
          let cum = ref 0 in
          Array.iteri
            (fun i bound ->
              cum := !cum + counts.(i);
              Printf.bprintf b "%s_bucket{le=\"%s\"} %d\n" p (fmt_float bound)
                !cum)
            bounds;
          let total = !cum + counts.(Array.length bounds) in
          Printf.bprintf b "%s_bucket{le=\"+Inf\"} %d\n" p total;
          Printf.bprintf b "%s_sum %s\n" p (fmt_float sum);
          Printf.bprintf b "%s_count %d\n" p total)
    (Metrics.export ());
  Buffer.contents b

type server = {
  fd : Unix.file_descr;
  bound : Unix.sockaddr;
  stopping : bool Atomic.t;
  mutable acceptor : unit Domain.t option;
}

let http_response ~status ~body =
  let content_type = "text/plain; version=0.0.4; charset=utf-8" in
  Printf.sprintf
    "HTTP/1.1 %s\r\nContent-Type: %s\r\nContent-Length: %d\r\nConnection: close\r\n\r\n%s"
    status content_type (String.length body) body

let write_all fd s =
  let n = String.length s in
  let rec go off =
    if off < n then
      let w = Unix.write_substring fd s off (n - off) in
      go (off + w)
  in
  go 0

(* Read until the end of the request head (or 8 KiB); we only need the
   request line. Scrapers send tiny requests, so one read typically
   suffices. *)
let read_head fd =
  let buf = Buffer.create 512 in
  let chunk = Bytes.create 1024 in
  let rec go () =
    if Buffer.length buf < 8192 then begin
      let n = try Unix.read fd chunk 0 (Bytes.length chunk) with _ -> 0 in
      if n > 0 then begin
        Buffer.add_subbytes buf chunk 0 n;
        let s = Buffer.contents buf in
        let have_head =
          (* a bare request line is enough once we've seen its newline *)
          String.contains s '\n'
        in
        if not have_head then go ()
      end
    end
  in
  go ();
  Buffer.contents buf

let handle_conn render fd =
  Fun.protect
    ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
    (fun () ->
      (try Unix.setsockopt_float fd Unix.SO_RCVTIMEO 5.0
       with Unix.Unix_error _ -> ());
      let head = read_head fd in
      let request_line =
        match String.index_opt head '\n' with
        | Some i -> String.trim (String.sub head 0 i)
        | None -> String.trim head
      in
      let response =
        match String.split_on_char ' ' request_line with
        | meth :: path :: _ when String.uppercase_ascii meth = "GET" ->
            let path =
              match String.index_opt path '?' with
              | Some i -> String.sub path 0 i
              | None -> path
            in
            if path = "/metrics" || path = "/" then begin
              Metrics.incr scrapes;
              http_response ~status:"200 OK" ~body:(render ())
            end
            else http_response ~status:"404 Not Found" ~body:"not found\n"
        | _ ->
            http_response ~status:"405 Method Not Allowed"
              ~body:"only GET is supported\n"
      in
      try write_all fd response with Unix.Unix_error _ -> ())

(* Poll with a timeout instead of blocking in accept(2): on Linux,
   closing the listening fd does not wake a blocked sibling accept, so
   [stop] relies on the acceptor noticing [stopping] between polls
   (same scheme as Tqwm_server.Server). *)
let accept_loop t render =
  while not (Atomic.get t.stopping) do
    match Unix.select [ t.fd ] [] [] 0.05 with
    | [], _, _ -> ()
    | _ :: _, _, _ -> (
        match Unix.accept ~cloexec:true t.fd with
        | fd, _ -> handle_conn render fd
        | exception Unix.Unix_error _ -> ())
    | exception Unix.Unix_error (Unix.EINTR, _, _) -> ()
  done

let serve ?(render = render) addr =
  let domain =
    match addr with
    | Unix.ADDR_UNIX _ -> Unix.PF_UNIX
    | Unix.ADDR_INET _ -> Unix.PF_INET
  in
  let fd = Unix.socket ~cloexec:true domain Unix.SOCK_STREAM 0 in
  (match addr with
  | Unix.ADDR_INET _ -> Unix.setsockopt fd Unix.SO_REUSEADDR true
  | Unix.ADDR_UNIX path -> ( try Unix.unlink path with Unix.Unix_error _ -> ()));
  (try Unix.bind fd addr
   with e ->
     Unix.close fd;
     raise e);
  Unix.listen fd 16;
  let bound = Unix.getsockname fd in
  let t = { fd; bound; stopping = Atomic.make false; acceptor = None } in
  t.acceptor <- Some (Domain.spawn (fun () -> accept_loop t render));
  t

let bound t = t.bound

let stop t =
  if not (Atomic.exchange t.stopping true) then begin
    Option.iter Domain.join t.acceptor;
    (try Unix.close t.fd with Unix.Unix_error _ -> ());
    match t.bound with
    | Unix.ADDR_UNIX path when path <> "" -> (
        try Unix.unlink path with Unix.Unix_error _ -> ())
    | _ -> ()
  end
