let lookup () =
  match
    let ic = Unix.open_process_in "git rev-parse --short HEAD 2>/dev/null" in
    let line = try String.trim (input_line ic) with End_of_file -> "" in
    match Unix.close_process_in ic with
    | Unix.WEXITED 0 when line <> "" -> Some line
    | Unix.WEXITED _ | Unix.WSIGNALED _ | Unix.WSTOPPED _ -> None
  with
  | exception (Unix.Unix_error _ | Sys_error _) -> None
  | hash -> hash

let cached = lazy (Option.value (lookup ()) ~default:"unknown")

let commit () = Lazy.force cached
