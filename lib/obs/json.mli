(** A minimal JSON document: just enough to emit metrics snapshots,
    Chrome trace files and machine-readable timing reports, and to parse
    them back for validation — no external dependency. *)

type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

val to_string : t -> string
(** Compact (single-line) serialization. Non-finite floats are emitted
    as [null] so the output is always valid JSON. *)

val to_buffer : Buffer.t -> t -> unit

val to_channel : out_channel -> t -> unit

val write_file : string -> t -> unit
(** Serialize to a file, with a trailing newline. *)

val of_string : string -> t
(** Strict parser for the subset this module emits (all of standard
    JSON except surrogate-pair [\u] escapes).
    @raise Parse_error on malformed input. *)

val member : string -> t -> t option
(** [member key (Obj ...)] looks a field up; [None] on non-objects. *)

val to_list_opt : t -> t list option
