(* GC allocation accounting built on [Gc.quick_stat]: cheap (no heap
   traversal), monotone counters, safe to sample from any domain. Word
   counts are per-domain in OCaml 5, which is exactly what a per-solve
   delta wants: the sampling domain is the solving domain. *)

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let sample () =
  let s = Gc.quick_stat () in
  {
    (* [quick_stat]'s own minor_words only refreshes at minor
       collections (OCaml 5 samples the counters lazily), which would
       round any delta smaller than the young generation down to zero;
       [Gc.minor_words] reads the allocation pointer and is precise. *)
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
  }

let since s0 =
  let s1 = sample () in
  {
    minor_words = s1.minor_words -. s0.minor_words;
    promoted_words = s1.promoted_words -. s0.promoted_words;
    major_words = s1.major_words -. s0.major_words;
    minor_collections = s1.minor_collections - s0.minor_collections;
    major_collections = s1.major_collections - s0.major_collections;
  }

let to_json s =
  Json.Obj
    [
      ("minor_words", Json.Float s.minor_words);
      ("promoted_words", Json.Float s.promoted_words);
      ("major_words", Json.Float s.major_words);
      ("minor_collections", Json.Int s.minor_collections);
      ("major_collections", Json.Int s.major_collections);
    ]

let quick_stat_json () =
  let s = Gc.quick_stat () in
  Json.Obj
    [
      ("minor_words", Json.Float (Gc.minor_words ()));
      ("promoted_words", Json.Float s.Gc.promoted_words);
      ("major_words", Json.Float s.Gc.major_words);
      ("minor_collections", Json.Int s.Gc.minor_collections);
      ("major_collections", Json.Int s.Gc.major_collections);
      ("compactions", Json.Int s.Gc.compactions);
      ("heap_words", Json.Int s.Gc.heap_words);
      ("top_heap_words", Json.Int s.Gc.top_heap_words);
    ]
