(* GC allocation accounting built on [Gc.quick_stat]: cheap (no heap
   traversal), monotone counters, safe to sample from any domain. Word
   counts are per-domain in OCaml 5, which is exactly what a per-solve
   delta wants: the sampling domain is the solving domain. *)

type sample = {
  minor_words : float;
  promoted_words : float;
  major_words : float;
  minor_collections : int;
  major_collections : int;
}

let sample () =
  let s = Gc.quick_stat () in
  {
    (* [quick_stat]'s own minor_words only refreshes at minor
       collections (OCaml 5 samples the counters lazily), which would
       round any delta smaller than the young generation down to zero;
       [Gc.minor_words] reads the allocation pointer and is precise. *)
    minor_words = Gc.minor_words ();
    promoted_words = s.Gc.promoted_words;
    major_words = s.Gc.major_words;
    minor_collections = s.Gc.minor_collections;
    major_collections = s.Gc.major_collections;
  }

let since s0 =
  let s1 = sample () in
  {
    minor_words = s1.minor_words -. s0.minor_words;
    promoted_words = s1.promoted_words -. s0.promoted_words;
    major_words = s1.major_words -. s0.major_words;
    minor_collections = s1.minor_collections - s0.minor_collections;
    major_collections = s1.major_collections - s0.major_collections;
  }

(* ---- cross-domain aggregation ----

   GC counters are domain-local in OCaml 5, so any single-point sampler
   (the daemon's stats domain, a CLI epilogue) under-reports by whatever
   the other domains allocated. Instead of trying to read foreign
   domains' counters (impossible), each domain folds its own growth into
   these process-wide registry counters; a flush is two [Gc] reads plus
   five atomic adds, cheap enough for per-request / per-worker use. *)

let c_minor = Metrics.counter "qwm.alloc.domains_minor_words"
let c_promoted = Metrics.counter "qwm.alloc.domains_promoted_words"
let c_major = Metrics.counter "qwm.alloc.domains_major_words"
let c_minor_gcs = Metrics.counter "qwm.alloc.domains_minor_collections"
let c_major_gcs = Metrics.counter "qwm.alloc.domains_major_collections"

let zero =
  {
    minor_words = 0.0;
    promoted_words = 0.0;
    major_words = 0.0;
    minor_collections = 0;
    major_collections = 0;
  }

(* last flushed cumulative sample of the calling domain; fresh domains
   start their GC counters at zero, so the zero baseline charges a
   domain's whole life to its first flush *)
let flushed : sample ref Domain.DLS.key = Domain.DLS.new_key (fun () -> ref zero)

let flush_domain () =
  let last = Domain.DLS.get flushed in
  let now = sample () in
  Metrics.add c_minor (int_of_float (now.minor_words -. !last.minor_words));
  Metrics.add c_promoted
    (int_of_float (now.promoted_words -. !last.promoted_words));
  Metrics.add c_major (int_of_float (now.major_words -. !last.major_words));
  Metrics.add c_minor_gcs (now.minor_collections - !last.minor_collections);
  Metrics.add c_major_gcs (now.major_collections - !last.major_collections);
  last := now

let to_json s =
  Json.Obj
    [
      ("minor_words", Json.Float s.minor_words);
      ("promoted_words", Json.Float s.promoted_words);
      ("major_words", Json.Float s.major_words);
      ("minor_collections", Json.Int s.minor_collections);
      ("major_collections", Json.Int s.major_collections);
    ]

let quick_stat_json () =
  let s = Gc.quick_stat () in
  Json.Obj
    [
      ("minor_words", Json.Float (Gc.minor_words ()));
      ("promoted_words", Json.Float s.Gc.promoted_words);
      ("major_words", Json.Float s.Gc.major_words);
      ("minor_collections", Json.Int s.Gc.minor_collections);
      ("major_collections", Json.Int s.Gc.major_collections);
      ("compactions", Json.Int s.Gc.compactions);
      ("heap_words", Json.Int s.Gc.heap_words);
      ("top_heap_words", Json.Int s.Gc.top_heap_words);
    ]
