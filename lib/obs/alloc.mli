(** Allocation accounting on top of [Gc.quick_stat] and [Gc.minor_words].

    Both read domain-local counters without walking the heap, so sampling
    is cheap enough for per-solve deltas. Minor words come from
    [Gc.minor_words] (precise — reads the allocation pointer) rather than
    [quick_stat], whose counters only refresh at minor collections and
    would round any delta smaller than the young generation down to
    zero. Counters are per-domain in OCaml 5: a [sample]/[since] pair
    taken on the solving domain measures exactly that domain's
    allocation. *)

type sample = {
  minor_words : float;  (** words allocated in the minor heap *)
  promoted_words : float;  (** minor words that survived into the major heap *)
  major_words : float;  (** words allocated in the major heap, incl. promotions *)
  minor_collections : int;
  major_collections : int;
}

val sample : unit -> sample
(** Current cumulative counters for the calling domain. *)

val since : sample -> sample
(** [since s0] is the counter delta from [s0] to now. The delta includes
    the few words [quick_stat] itself allocates — noise of ~10 words,
    irrelevant at per-solve granularity. *)

val flush_domain : unit -> unit
(** Fold the calling domain's GC counter growth since its previous flush
    (or since the domain was born) into the process-wide
    [qwm.alloc.domains_*] registry counters ([minor_words],
    [promoted_words], [major_words], [minor_collections],
    [major_collections]). GC counters are domain-local in OCaml 5, so a
    single-point sampler only sees its own domain; every worker domain
    flushing on completion — and the sampler flushing before it reads —
    makes the exported counters cover the whole process. Two [Gc] reads
    plus five atomic adds; safe from any domain, idempotent between
    allocations. *)

val to_json : sample -> Json.t

val quick_stat_json : unit -> Json.t
(** The full current [Gc.quick_stat] as JSON (cumulative process view,
    plus heap-size fields) — for CLI [--metrics] / [--json] reports. *)
