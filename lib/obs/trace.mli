(** Timed spans and instant events in Chrome trace-event form.

    Instrumented code emits through a process-global sink. The default
    sink is null: [enabled] is a single mutable-bool load, [with_span]
    calls its thunk directly and no clock is read, so instrumented hot
    paths cost nothing when tracing is off. With the memory sink
    enabled, events accumulate (mutex-guarded, safe from any domain)
    and [write_file] produces a JSON document loadable by
    [chrome://tracing] or {{:https://ui.perfetto.dev}Perfetto}. The
    stderr sink prints each event as a JSON line immediately — the
    replacement for the old [Qwm_solver.debug] stderr dump.

    Timestamps are microseconds relative to module initialization; the
    thread id is the emitting domain's id, so parallel STA traces show
    one lane per domain. *)

val enabled : unit -> bool

val enable : unit -> unit
(** Install the in-memory sink (empty). *)

val enable_stderr : unit -> unit
(** Install the line-per-event stderr sink. *)

val disable : unit -> unit

val clear : unit -> unit
(** Drop buffered events (memory sink only). *)

val now : unit -> float
(** Wall-clock seconds; pair with {!complete} for hand-rolled spans
    whose args are only known after the timed work ran. *)

val complete :
  ?args:(string * Json.t) list ->
  name:string ->
  cat:string ->
  ts:float ->
  dur:float ->
  unit ->
  unit
(** A completed span: [ts] in seconds as returned by {!now}, [dur] in
    seconds. No-op when disabled. *)

val instant : ?args:(string * Json.t) list -> name:string -> cat:string -> unit -> unit
(** A point-in-time event. No-op when disabled. *)

val with_span : ?args:(string * Json.t) list -> name:string -> cat:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span is emitted even if the thunk
    raises. When disabled, the thunk runs with zero overhead. *)

val to_json : unit -> Json.t
(** [{"traceEvents": [...], ...}] from the memory sink's buffer (empty
    for other sinks). *)

val write_file : string -> unit
