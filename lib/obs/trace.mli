(** Timed spans and instant events in Chrome trace-event form.

    Instrumented code emits through a process-global sink. The default
    sink is null: [enabled] is a single mutable-bool load, [with_span]
    calls its thunk directly and no clock is read, so instrumented hot
    paths cost nothing when tracing is off. With the memory sink
    enabled, events accumulate in per-domain sharded buffers (each
    emitting domain locks only its own shard, so concurrent emission
    from worker domains never contends on a global mutex) and
    [write_file] merges the shards into one time-sorted JSON document
    loadable by [chrome://tracing] or {{:https://ui.perfetto.dev}
    Perfetto}. The stderr sink prints each event as a JSON line
    immediately — the replacement for the old [Qwm_solver.debug] stderr
    dump.

    Domain safety: emission, export, [clear], and sink swaps may race
    freely across domains. Export snapshots each shard under its lock,
    so no event is ever lost or torn by concurrent emission; an emitter
    racing a sink swap may at worst drop that one event. Timestamps are
    microseconds relative to module initialization; the thread id is
    the emitting domain's id, so parallel STA traces show one lane per
    domain. *)

val enabled : unit -> bool

val enable : ?cap:int -> unit -> unit
(** Install the in-memory sink (empty). [cap] bounds the total number
    of retained events (approximately: it is split evenly across the
    internal shards); once a shard is full, further events on that
    shard are dropped and counted in the [trace.dropped_events]
    counter. Default: unbounded — long-lived daemons should pass a cap. *)

val enable_stderr : unit -> unit
(** Install the line-per-event stderr sink. *)

val disable : unit -> unit

val clear : unit -> unit
(** Drop buffered events (memory sink only). *)

val now : unit -> float
(** Wall-clock seconds; pair with {!complete} for hand-rolled spans
    whose args are only known after the timed work ran. *)

val with_context : (string * Json.t) list -> (unit -> 'a) -> 'a
(** [with_context ctx f] runs [f] with [ctx] appended to the ambient
    span context of the calling domain: every event emitted within the
    dynamic extent of [f] (on this domain) carries [ctx] merged into
    its args. Scopes nest — inner contexts append to outer ones — and
    the previous context is restored even if [f] raises. The context is
    domain-local; see {!current_context} for crossing a [Domain.spawn].
    An empty [ctx] is free. *)

val current_context : unit -> (string * Json.t) list
(** The calling domain's ambient context, outermost bindings first.
    Capture it before [Domain.spawn] and reinstall with {!with_context}
    inside the child so request-scoped args follow work onto worker
    domains. *)

val complete :
  ?args:(string * Json.t) list ->
  name:string ->
  cat:string ->
  ts:float ->
  dur:float ->
  unit ->
  unit
(** A completed span: [ts] in seconds as returned by {!now}, [dur] in
    seconds. No-op when disabled. *)

val instant : ?args:(string * Json.t) list -> name:string -> cat:string -> unit -> unit
(** A point-in-time event. No-op when disabled. *)

val with_span : ?args:(string * Json.t) list -> name:string -> cat:string -> (unit -> 'a) -> 'a
(** Run the thunk inside a span; the span is emitted even if the thunk
    raises. When disabled, the thunk runs with zero overhead. *)

val to_json : unit -> Json.t
(** [{"traceEvents": [...], ...}] — all shards merged and sorted by
    timestamp (empty for non-memory sinks). *)

val write_file : string -> unit
