type event = {
  name : string;
  cat : string;
  ph : char;
  ts_us : float;
  dur_us : float;  (** only meaningful for ph = 'X' *)
  tid : int;
  args : (string * Json.t) list;
}

(* The memory sink is sharded so concurrent domains never contend on a
   single mutex: each emitting domain locks only the shard picked by its
   domain id. Export takes every shard lock in turn, so a snapshot taken
   while other domains emit sees each event exactly once or not at all —
   never torn. *)
let shard_bits = 6

let num_shards = 1 lsl shard_bits

type shard = {
  slock : Mutex.t;
  mutable buf : event list;  (** reversed: newest first *)
  mutable count : int;
  cap : int;  (** max events retained in this shard; [max_int] = unbounded *)
}

type sink =
  | Null
  | Memory of shard array
  | Stderr  (** one JSON object per line, for interactive diagnostics *)

(* guards sink swaps and Stderr writes; Memory emission only touches
   per-shard locks *)
let lock = Mutex.create ()

let sink = ref Null

(* mirrors [sink <> Null]; a single mutable bool keeps the disabled
   check on hot paths to one load + branch. Swapping the sink while
   other domains emit is benign: a racing emitter may append to the
   outgoing shard array (the event is dropped with it) or skip one
   event right after enable. *)
let on = ref false

let enabled () = !on

let epoch = Unix.gettimeofday ()

let now () = Unix.gettimeofday ()

let set s =
  Mutex.protect lock (fun () ->
      sink := s;
      on := s <> Null)

let dropped = Metrics.counter "trace.dropped_events"

let make_shards cap =
  let per_shard =
    match cap with
    | None -> max_int
    | Some n -> max 1 (n / num_shards)
  in
  Array.init num_shards (fun _ ->
      { slock = Mutex.create (); buf = []; count = 0; cap = per_shard })

let enable ?cap () = set (Memory (make_shards cap))

let enable_stderr () = set Stderr

let disable () = set Null

let clear () =
  Mutex.protect lock (fun () ->
      match !sink with
      | Memory shards ->
          Array.iter
            (fun s ->
              Mutex.protect s.slock (fun () ->
                  s.buf <- [];
                  s.count <- 0))
            shards
      | Null | Stderr -> ())

(* Ambient per-domain span context: key/value args appended to every
   event emitted while a [with_context] scope is active on the emitting
   domain. Stored in domain-local state, so scopes on different domains
   never interfere; [current_context] lets a spawner hand its scope to
   child domains. *)
let context_key : (string * Json.t) list Domain.DLS.key =
  Domain.DLS.new_key (fun () -> [])

let current_context () = Domain.DLS.get context_key

let with_context ctx f =
  if ctx = [] then f ()
  else begin
    let old = Domain.DLS.get context_key in
    Domain.DLS.set context_key (old @ ctx);
    Fun.protect ~finally:(fun () -> Domain.DLS.set context_key old) f
  end

let with_args args =
  match Domain.DLS.get context_key with [] -> args | ctx -> args @ ctx

let json_of_event e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("ph", Json.String (String.make 1 e.ph));
      ("ts", Json.Float e.ts_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
    ]
  in
  let base = if e.ph = 'X' then base @ [ ("dur", Json.Float e.dur_us) ] else base in
  let base = if e.args = [] then base else base @ [ ("args", Json.Obj e.args) ] in
  Json.Obj base

let emit e =
  match !sink with
  | Null -> ()
  | Memory shards ->
      let s = shards.(e.tid land (num_shards - 1)) in
      Mutex.protect s.slock (fun () ->
          if s.count < s.cap then begin
            s.buf <- e :: s.buf;
            s.count <- s.count + 1
          end
          else Metrics.incr dropped)
  | Stderr ->
      Mutex.protect lock (fun () ->
          Printf.eprintf "%s\n%!" (Json.to_string (json_of_event e)))

let us_of_seconds t = (t -. epoch) *. 1e6

let tid () = (Domain.self () :> int)

let complete ?(args = []) ~name ~cat ~ts ~dur () =
  if !on then
    emit
      {
        name;
        cat;
        ph = 'X';
        ts_us = us_of_seconds ts;
        dur_us = dur *. 1e6;
        tid = tid ();
        args = with_args args;
      }

let instant ?(args = []) ~name ~cat () =
  if !on then
    emit
      {
        name;
        cat;
        ph = 'i';
        ts_us = us_of_seconds (now ());
        dur_us = 0.0;
        tid = tid ();
        args = with_args args;
      }

let with_span ?(args = []) ~name ~cat f =
  if not !on then f ()
  else begin
    let t0 = now () in
    Fun.protect
      ~finally:(fun () -> complete ~args ~name ~cat ~ts:t0 ~dur:(now () -. t0) ())
      f
  end

let events () =
  match !sink with
  | Memory shards ->
      let per_shard =
        Array.to_list shards
        |> List.map (fun s -> Mutex.protect s.slock (fun () -> List.rev s.buf))
      in
      List.concat per_shard
      |> List.stable_sort (fun a b -> Float.compare a.ts_us b.ts_us)
  | Null | Stderr -> []

let to_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event (events ())));
      ("displayTimeUnit", Json.String "ns");
    ]

let write_file path = Json.write_file path (to_json ())
