type event = {
  name : string;
  cat : string;
  ph : char;
  ts_us : float;
  dur_us : float;  (** only meaningful for ph = 'X' *)
  tid : int;
  args : (string * Json.t) list;
}

type sink =
  | Null
  | Memory of event list ref  (** reversed; guarded by [lock] *)
  | Stderr  (** one JSON object per line, for interactive diagnostics *)

let lock = Mutex.create ()

let sink = ref Null

(* mirrors [sink <> Null]; a single mutable bool keeps the disabled
   check on hot paths to one load + branch *)
let on = ref false

let enabled () = !on

let epoch = Unix.gettimeofday ()

let now () = Unix.gettimeofday ()

let set s =
  Mutex.protect lock (fun () ->
      sink := s;
      on := s <> Null)

let enable () = set (Memory (ref []))

let enable_stderr () = set Stderr

let disable () = set Null

let clear () =
  Mutex.protect lock (fun () ->
      match !sink with Memory events -> events := [] | Null | Stderr -> ())

let json_of_event e =
  let base =
    [
      ("name", Json.String e.name);
      ("cat", Json.String e.cat);
      ("ph", Json.String (String.make 1 e.ph));
      ("ts", Json.Float e.ts_us);
      ("pid", Json.Int 1);
      ("tid", Json.Int e.tid);
    ]
  in
  let base = if e.ph = 'X' then base @ [ ("dur", Json.Float e.dur_us) ] else base in
  let base = if e.args = [] then base else base @ [ ("args", Json.Obj e.args) ] in
  Json.Obj base

let emit e =
  Mutex.protect lock (fun () ->
      match !sink with
      | Null -> ()
      | Memory events -> events := e :: !events
      | Stderr -> Printf.eprintf "%s\n%!" (Json.to_string (json_of_event e)))

let us_of_seconds t = (t -. epoch) *. 1e6

let tid () = (Domain.self () :> int)

let complete ?(args = []) ~name ~cat ~ts ~dur () =
  if !on then
    emit
      {
        name;
        cat;
        ph = 'X';
        ts_us = us_of_seconds ts;
        dur_us = dur *. 1e6;
        tid = tid ();
        args;
      }

let instant ?(args = []) ~name ~cat () =
  if !on then
    emit
      {
        name;
        cat;
        ph = 'i';
        ts_us = us_of_seconds (now ());
        dur_us = 0.0;
        tid = tid ();
        args;
      }

let with_span ?(args = []) ~name ~cat f =
  if not !on then f ()
  else begin
    let t0 = now () in
    Fun.protect
      ~finally:(fun () -> complete ~args ~name ~cat ~ts:t0 ~dur:(now () -. t0) ())
      f
  end

let events () =
  Mutex.protect lock (fun () ->
      match !sink with Memory events -> List.rev !events | Null | Stderr -> [])

let to_json () =
  Json.Obj
    [
      ("traceEvents", Json.List (List.map json_of_event (events ())));
      ("displayTimeUnit", Json.String "ns");
    ]

let write_file path = Json.write_file path (to_json ())
