type t =
  | Null
  | Bool of bool
  | Int of int
  | Float of float
  | String of string
  | List of t list
  | Obj of (string * t) list

exception Parse_error of string

(* ---------- printing ---------- *)

let escape buf s =
  Buffer.add_char buf '"';
  String.iter
    (fun c ->
      match c with
      | '"' -> Buffer.add_string buf "\\\""
      | '\\' -> Buffer.add_string buf "\\\\"
      | '\n' -> Buffer.add_string buf "\\n"
      | '\r' -> Buffer.add_string buf "\\r"
      | '\t' -> Buffer.add_string buf "\\t"
      | c when Char.code c < 0x20 ->
        Buffer.add_string buf (Printf.sprintf "\\u%04x" (Char.code c))
      | c -> Buffer.add_char buf c)
    s;
  Buffer.add_char buf '"'

let float_repr x =
  if not (Float.is_finite x) then "null"
  else begin
    (* shortest representation that still round-trips *)
    let s = Printf.sprintf "%.12g" x in
    if float_of_string s = x then s else Printf.sprintf "%.17g" x
  end

let rec to_buffer buf = function
  | Null -> Buffer.add_string buf "null"
  | Bool b -> Buffer.add_string buf (if b then "true" else "false")
  | Int i -> Buffer.add_string buf (string_of_int i)
  | Float x -> Buffer.add_string buf (float_repr x)
  | String s -> escape buf s
  | List xs ->
    Buffer.add_char buf '[';
    List.iteri
      (fun i x ->
        if i > 0 then Buffer.add_char buf ',';
        to_buffer buf x)
      xs;
    Buffer.add_char buf ']'
  | Obj fields ->
    Buffer.add_char buf '{';
    List.iteri
      (fun i (k, v) ->
        if i > 0 then Buffer.add_char buf ',';
        escape buf k;
        Buffer.add_char buf ':';
        to_buffer buf v)
      fields;
    Buffer.add_char buf '}'

let to_string j =
  let buf = Buffer.create 256 in
  to_buffer buf j;
  Buffer.contents buf

let to_channel oc j = output_string oc (to_string j)

let write_file path j =
  let oc = open_out path in
  Fun.protect
    ~finally:(fun () -> close_out oc)
    (fun () ->
      to_channel oc j;
      output_char oc '\n')

(* ---------- parsing (strict subset, enough to validate our output) ---------- *)

type cursor = { src : string; mutable pos : int }

let fail c msg = raise (Parse_error (Printf.sprintf "at offset %d: %s" c.pos msg))

let peek c = if c.pos < String.length c.src then Some c.src.[c.pos] else None

let advance c = c.pos <- c.pos + 1

let rec skip_ws c =
  match peek c with
  | Some (' ' | '\t' | '\n' | '\r') ->
    advance c;
    skip_ws c
  | Some _ | None -> ()

let expect c ch =
  match peek c with
  | Some x when x = ch -> advance c
  | Some x -> fail c (Printf.sprintf "expected %c, found %c" ch x)
  | None -> fail c (Printf.sprintf "expected %c, found end of input" ch)

let literal c word value =
  let n = String.length word in
  if c.pos + n <= String.length c.src && String.sub c.src c.pos n = word then begin
    c.pos <- c.pos + n;
    value
  end
  else fail c (Printf.sprintf "expected %s" word)

let parse_string c =
  expect c '"';
  let buf = Buffer.create 16 in
  let rec loop () =
    match peek c with
    | None -> fail c "unterminated string"
    | Some '"' -> advance c
    | Some '\\' ->
      advance c;
      (match peek c with
      | None -> fail c "unterminated escape"
      | Some e ->
        advance c;
        (match e with
        | '"' -> Buffer.add_char buf '"'
        | '\\' -> Buffer.add_char buf '\\'
        | '/' -> Buffer.add_char buf '/'
        | 'b' -> Buffer.add_char buf '\b'
        | 'f' -> Buffer.add_char buf '\012'
        | 'n' -> Buffer.add_char buf '\n'
        | 'r' -> Buffer.add_char buf '\r'
        | 't' -> Buffer.add_char buf '\t'
        | 'u' ->
          if c.pos + 4 > String.length c.src then fail c "bad \\u escape";
          let hex = String.sub c.src c.pos 4 in
          let code =
            try int_of_string ("0x" ^ hex) with _ -> fail c "bad \\u escape"
          in
          c.pos <- c.pos + 4;
          (* non-ASCII code points are preserved as UTF-8 *)
          if code < 0x80 then Buffer.add_char buf (Char.chr code)
          else if code < 0x800 then begin
            Buffer.add_char buf (Char.chr (0xC0 lor (code lsr 6)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
          else begin
            Buffer.add_char buf (Char.chr (0xE0 lor (code lsr 12)));
            Buffer.add_char buf (Char.chr (0x80 lor ((code lsr 6) land 0x3F)));
            Buffer.add_char buf (Char.chr (0x80 lor (code land 0x3F)))
          end
        | _ -> fail c "unknown escape");
        loop ())
    | Some ch ->
      advance c;
      Buffer.add_char buf ch;
      loop ()
  in
  loop ();
  Buffer.contents buf

let parse_number c =
  let start = c.pos in
  let is_number_char = function
    | '0' .. '9' | '-' | '+' | '.' | 'e' | 'E' -> true
    | _ -> false
  in
  while (match peek c with Some ch -> is_number_char ch | None -> false) do
    advance c
  done;
  let s = String.sub c.src start (c.pos - start) in
  match int_of_string_opt s with
  | Some i -> Int i
  | None ->
    (match float_of_string_opt s with
    | Some x -> Float x
    | None -> fail c (Printf.sprintf "bad number %S" s))

let rec parse_value c =
  skip_ws c;
  match peek c with
  | None -> fail c "unexpected end of input"
  | Some '"' -> String (parse_string c)
  | Some '{' ->
    advance c;
    skip_ws c;
    if peek c = Some '}' then begin
      advance c;
      Obj []
    end
    else begin
      let rec fields acc =
        skip_ws c;
        let k = parse_string c in
        skip_ws c;
        expect c ':';
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          fields ((k, v) :: acc)
        | Some '}' ->
          advance c;
          List.rev ((k, v) :: acc)
        | _ -> fail c "expected , or } in object"
      in
      Obj (fields [])
    end
  | Some '[' ->
    advance c;
    skip_ws c;
    if peek c = Some ']' then begin
      advance c;
      List []
    end
    else begin
      let rec elements acc =
        let v = parse_value c in
        skip_ws c;
        match peek c with
        | Some ',' ->
          advance c;
          elements (v :: acc)
        | Some ']' ->
          advance c;
          List.rev (v :: acc)
        | _ -> fail c "expected , or ] in array"
      in
      List (elements [])
    end
  | Some 't' -> literal c "true" (Bool true)
  | Some 'f' -> literal c "false" (Bool false)
  | Some 'n' -> literal c "null" Null
  | Some ('-' | '0' .. '9') -> parse_number c
  | Some ch -> fail c (Printf.sprintf "unexpected character %c" ch)

let of_string s =
  let c = { src = s; pos = 0 } in
  let v = parse_value c in
  skip_ws c;
  if c.pos <> String.length s then fail c "trailing garbage";
  v

(* ---------- accessors ---------- *)

let member key = function
  | Obj fields -> List.assoc_opt key fields
  | _ -> None

let to_list_opt = function List xs -> Some xs | _ -> None
