(** Rolling time-series window over {!Metrics} snapshots.

    A [Series.t] is a fixed-size ring of periodic samples (each a
    point-in-time copy of every counter, gauge, and histogram); once
    full, new samples evict the oldest. A sampler records into it at a
    fixed period while readers compute rates and quantile estimates
    over the trailing window — this is what backs the daemon's [stats]
    verb (qps, per-verb latency quantiles, GC rates).

    All operations are domain-safe: recording and reading take an
    internal lock, so a dedicated sampler domain can feed the ring
    while server workers answer [stats] requests. Windows are anchored
    to the newest {e recorded} sample's timestamp rather than the wall
    clock, so results are deterministic given the samples. *)

type hist = { bounds : float array; counts : int array; sum : float }

type sample = {
  t : float;  (** wall-clock seconds at capture time *)
  counters : (string * int) list;
  gauges : (string * float) list;
  histograms : (string * hist) list;
}

type t

val create : ?capacity:int -> unit -> t
(** Ring of at most [capacity] samples (default 120 — two minutes at a
    one-second period).
    @raise Invalid_argument if [capacity <= 0]. *)

val capacity : t -> int

val length : t -> int
(** Samples currently held, at most [capacity]. *)

val record : t -> sample -> unit

val capture :
  ?extra_counters:(string * int) list ->
  ?extra_gauges:(string * float) list ->
  now:float ->
  unit ->
  sample
(** Snapshot every registered instrument (via {!Metrics.export}) into a
    sample stamped [now]. [extra_counters] / [extra_gauges] prepend
    values not held in the registry — e.g. cumulative GC statistics. *)

val latest : t -> sample option

val window : t -> seconds:float -> sample list
(** Samples within [seconds] of the newest sample, oldest first. *)

val counter_rate : t -> seconds:float -> string -> float option
(** Per-second increase of a counter between the oldest and newest
    window samples {e that carry it} — samples without the counter are
    skipped, so instruments recorded by only one producer (e.g.
    per-domain GC statistics attached by a dedicated sampler domain)
    still yield consistent rates when other producers record samples
    in between. [None] when fewer than two window samples carry the
    counter. *)

val gauge_rate : t -> seconds:float -> string -> float option
(** Like {!counter_rate} for a (monotone) gauge — used for cumulative
    float quantities such as [Gc.minor_words]. *)

val histogram_delta : t -> seconds:float -> string -> hist option
(** Bucket-wise difference newest − oldest across the window samples
    that carry the histogram: the observation counts that landed
    {e during} the window. *)

val quantile : bounds:float array -> counts:int array -> float -> float option
(** [quantile ~bounds ~counts q] estimates the [q]-quantile from
    per-bucket counts ([counts] = one per bound plus overflow, as in
    {!Metrics.histogram_counts}), interpolating linearly within the
    selected bucket exactly like Prometheus' [histogram_quantile].
    Observations beyond the last bound clamp to it. [None] when all
    counts are zero.
    @raise Invalid_argument on [q] outside [0,1] or mismatched array
    lengths. *)
