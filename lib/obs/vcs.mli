(** Version-control attribution for persisted telemetry records. *)

val commit : unit -> string
(** Short hash of the current git HEAD (["git rev-parse --short HEAD"]),
    or ["unknown"] when the process does not run inside a repository or
    git is unavailable. The first lookup forks a process; the result is
    cached for the lifetime of the process. *)
