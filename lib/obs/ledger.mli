(** Append-style JSON trajectory files.

    A ledger is a file holding a JSON array of run records — one element
    per invocation, so repeated runs accumulate instead of overwriting
    (the format of [BENCH_parallel.json] and [AUDIT_accuracy.json]).
    Every appended record is stamped with the UTC date and the current
    git commit ({!Vcs.commit}), making each point of the trajectory
    attributable. *)

val stamp : Json.t -> Json.t
(** Prepend ["date"] (UTC, ISO-8601) and ["commit"] fields to an object,
    replacing any already present; non-objects pass through unchanged. *)

val read : string -> Json.t list
(** All records of a ledger file: [[]] when the file does not exist or
    is not JSON (a warning is printed on stderr in the latter case); a
    pre-existing single-object file (the old overwrite format) becomes a
    one-element history. *)

val last : string -> Json.t option
(** The most recent record, if any. *)

val append : path:string -> Json.t -> int
(** Stamp the record and append it to the ledger at [path], creating the
    file if needed. Returns the new record count.
    @raise Invalid_argument when the record is not a JSON object with a
    ["schema"] string field — every ledger consumer dispatches on the
    schema version, so an unversioned record would be unidentifiable. *)
