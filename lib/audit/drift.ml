module Json = Tqwm_obs.Json
module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace

let c_unchanged = Metrics.counter "audit.unchanged"
let c_improved = Metrics.counter "audit.improved"
let c_regressed = Metrics.counter "audit.regressed"

type report = {
  deltas : Baseline.delta list;
  regressed : Baseline.delta list;
  improved : Baseline.delta list;
  unchanged : int;
  unmatched : int;
  regressions_by_workload : (string * int) list;
}

let excursion (d : Baseline.delta) = d.Baseline.current -. d.Baseline.baseline

let check ?tol ~baseline current =
  let deltas = Baseline.compare_audits ?tol ~baseline current in
  let regressed =
    List.filter (fun d -> d.Baseline.classification = Baseline.Regressed) deltas
    |> List.sort (fun a b -> Float.compare (excursion b) (excursion a))
  in
  let improved =
    List.filter (fun d -> d.Baseline.classification = Baseline.Improved) deltas
  in
  let unchanged =
    List.length deltas - List.length regressed - List.length improved
  in
  let unmatched =
    let base_keys =
      List.concat_map
        (fun ((_ : Audit.summary), rs) ->
          List.map (fun (r : Audit.stage_record) -> (r.Audit.workload, r.Audit.stage)) rs)
        baseline.Audit.workloads
    in
    List.concat_map
      (fun ((_ : Audit.summary), rs) ->
        List.filter
          (fun (r : Audit.stage_record) ->
            not (List.mem (r.Audit.workload, r.Audit.stage) base_keys))
          rs)
      current.Audit.workloads
    |> List.length
  in
  let regressions_by_workload =
    List.fold_left
      (fun acc (d : Baseline.delta) ->
        let n = Option.value (List.assoc_opt d.Baseline.workload acc) ~default:0 in
        (d.Baseline.workload, n + 1) :: List.remove_assoc d.Baseline.workload acc)
      [] regressed
    |> List.sort (fun (_, a) (_, b) -> compare b a)
  in
  Metrics.add c_unchanged unchanged;
  Metrics.add c_improved (List.length improved);
  Metrics.add c_regressed (List.length regressed);
  List.iter
    (fun (d : Baseline.delta) ->
      Trace.instant ~name:"audit.drift" ~cat:"audit"
        ~args:
          [
            ("metric", Json.String d.Baseline.metric);
            ("workload", Json.String d.Baseline.workload);
            ( "stage",
              match d.Baseline.stage with
              | Some s -> Json.String s
              | None -> Json.Null );
            ("baseline", Json.Float d.Baseline.baseline);
            ("current", Json.Float d.Baseline.current);
          ]
        ())
    regressed;
  { deltas; regressed; improved; unchanged; unmatched; regressions_by_workload }

let has_regressions r = r.regressed <> []

let worst r = match r.regressed with [] -> None | w :: _ -> Some w

let target (d : Baseline.delta) =
  match d.Baseline.stage with
  | Some s -> Printf.sprintf "%s/%s" d.Baseline.workload s
  | None -> d.Baseline.workload

let pp fmt r =
  List.iter
    (fun (d : Baseline.delta) ->
      Format.fprintf fmt "REGRESSED %-20s %-24s %.3f -> %.3f (+%.3f)@."
        d.Baseline.metric (target d) d.Baseline.baseline d.Baseline.current
        (excursion d))
    r.regressed;
  List.iter
    (fun (d : Baseline.delta) ->
      Format.fprintf fmt "improved  %-20s %-24s %.3f -> %.3f@." d.Baseline.metric
        (target d) d.Baseline.baseline d.Baseline.current)
    r.improved;
  (match r.regressions_by_workload with
  | [] -> ()
  | by ->
    Format.fprintf fmt "regressions by workload: %s@."
      (String.concat ", "
         (List.map (fun (w, n) -> Printf.sprintf "%s=%d" w n) by)));
  Format.fprintf fmt
    "drift: %d regressed, %d improved, %d unchanged, %d unmatched stage%s@."
    (List.length r.regressed) (List.length r.improved) r.unchanged r.unmatched
    (if r.unmatched = 1 then "" else "s")

let delta_to_json (d : Baseline.delta) =
  Json.Obj
    [
      ("metric", Json.String d.Baseline.metric);
      ("workload", Json.String d.Baseline.workload);
      ( "stage",
        match d.Baseline.stage with Some s -> Json.String s | None -> Json.Null );
      ("baseline", Json.Float d.Baseline.baseline);
      ("current", Json.Float d.Baseline.current);
      ( "classification",
        Json.String (Baseline.classification_to_string d.Baseline.classification) );
    ]

let to_json r =
  Json.Obj
    [
      ("regressed", Json.List (List.map delta_to_json r.regressed));
      ("improved", Json.List (List.map delta_to_json r.improved));
      ("unchanged", Json.Int r.unchanged);
      ("unmatched", Json.Int r.unmatched);
      ( "regressions_by_workload",
        Json.Obj
          (List.map (fun (w, n) -> (w, Json.Int n)) r.regressions_by_workload) );
    ]
