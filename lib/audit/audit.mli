(** The accuracy observatory: QWM and the in-house golden (SPICE-like)
    engine run side-by-side over a catalog of workload stages, and the
    comparison becomes structured, persisted, diffable telemetry.

    The paper's headline claim is twofold — a ~31.6x speed-up {e at}
    ~99 % average delay accuracy vs. Hspice (§V-C reports per-circuit
    delay error percentages). The repo's benchmarks track the first
    half; this module makes the second half a first-class observable,
    so solver, cache, parallel and incremental changes can never
    silently degrade QWM-vs-golden fidelity. An audit is deterministic
    up to wall-clock fields: two runs with the same catalog, config and
    step produce identical measurements (see {!equal_measurements}),
    which is what lets a persisted baseline gate regressions.

    Telemetry: every audited stage bumps the [audit.stages_audited]
    counter and feeds the [audit.delay_error_pct] and [audit.rms]
    histograms in the global {!Tqwm_obs.Metrics} registry; each workload
    is wrapped in an [audit] trace span, so [--trace] captures where
    audit time goes. *)

type stage_record = {
  workload : string;  (** catalog family the stage belongs to *)
  stage : string;  (** scenario name, unique within its workload *)
  golden_delay : float;  (** seconds, the reference *)
  qwm_delay : float;  (** seconds *)
  delay_error_pct : float;  (** [100 * |qwm - golden| / golden] *)
  accuracy_pct : float;  (** the paper's metric: [100 - delay_error_pct] *)
  golden_slew : float option;
  qwm_slew : float option;
  slew_error_pct : float option;  (** [None] unless both slews exist *)
  rms_pct_of_swing : float;  (** waveform RMS via {!Tqwm_wave.Compare} *)
  regions : int;  (** QWM quadratic regions solved *)
  newton_iterations : int;  (** QWM Newton iterations *)
  golden_seconds : float;  (** wall clock — excluded from equality *)
  qwm_seconds : float;  (** wall clock — excluded from equality *)
}

type summary = {
  name : string;  (** workload name, or ["overall"] *)
  stages : int;
  avg_accuracy_pct : float;
  worst_accuracy_pct : float;
  avg_delay_error_pct : float;
  max_delay_error_pct : float;
  avg_rms_pct : float;
  max_rms_pct : float;
  golden_seconds : float;
  qwm_seconds : float;
  runtime_ratio : float;
      (** golden/QWM wall clock — the audit's speed-up axis, so each run
          reproduces the paper's speed-accuracy trade-off point *)
}

type t = {
  workloads : (summary * stage_record list) list;
  overall : summary;
}

val catalog :
  ?smoke:bool -> Tqwm_device.Tech.t -> (string * Tqwm_circuit.Scenario.t list) list
(** The audited workload families, mirroring the paper's evaluation:
    ["chain"] (Table I inverter/NAND gates), ["random-stacks"] (Table II
    stacks), ["decoder-tree"] (Fig. 10 decoders) and ["awe-wires"]
    (stages whose wire runs are reduced to AWE/O'Brien-Savarino pi
    macromodels). [~smoke:true] selects a small deterministic subset for
    bounded CI and test runs. Stage names are unique within each
    workload — they key baseline comparisons. *)

val run :
  ?config:Tqwm_core.Config.t ->
  ?dt:float ->
  ?domains:int ->
  ?workloads:(string * Tqwm_circuit.Scenario.t list) list ->
  Tqwm_device.Tech.t ->
  t
(** Run the audit: for every catalog stage, one golden transient (step
    [dt], default 1 ps) and one QWM solve under [config], compared into
    a {!stage_record}. [domains > 1] audits stages concurrently on that
    many OCaml domains; measurements are identical to the sequential
    run (both engines are deterministic — only the wall-clock fields
    differ). [workloads] overrides the default {!catalog}.
    @raise Failure if an engine reports no output crossing. *)

val equal_measurements : t -> t -> bool
(** Structural equality of everything except wall-clock fields
    ([golden_seconds], [qwm_seconds], [runtime_ratio]) — the relation
    under which audits are reproducible. *)

val to_json : t -> Tqwm_obs.Json.t
(** [{"schema": "tqwm-audit/1", "workloads": [...], "overall": {...}}] —
    the record appended to the [AUDIT_accuracy.json] ledger. *)

val of_json : Tqwm_obs.Json.t -> t
(** Inverse of {!to_json}; unknown fields (ledger [date]/[commit]
    stamps) are ignored.
    @raise Failure on a document that is not a [tqwm-audit/1] record. *)

val pp : Format.formatter -> t -> unit
(** Human-readable report: one table row per stage, one summary line per
    workload, and the overall accuracy/speed-up line. *)
