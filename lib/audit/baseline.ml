module Json = Tqwm_obs.Json
module Ledger = Tqwm_obs.Ledger

type tolerances = { abs_pp : float; rel : float }

let default_tolerances = { abs_pp = 0.25; rel = 0.05 }

type classification = Unchanged | Improved | Regressed

let classification_to_string = function
  | Unchanged -> "unchanged"
  | Improved -> "improved"
  | Regressed -> "regressed"

let classify tol ~baseline ~current =
  let margin = tol.abs_pp +. (tol.rel *. Float.abs baseline) in
  if current -. baseline > margin then Regressed
  else if baseline -. current > margin then Improved
  else Unchanged

type delta = {
  metric : string;
  workload : string;
  stage : string option;
  baseline : float;
  current : float;
  classification : classification;
}

let delta tol ~metric ~workload ?stage ~baseline ~current () =
  {
    metric;
    workload;
    stage;
    baseline;
    current;
    classification = classify tol ~baseline ~current;
  }

let record_deltas tol (base : Audit.stage_record) (cur : Audit.stage_record) =
  let d metric baseline current =
    delta tol ~metric ~workload:cur.Audit.workload ~stage:cur.Audit.stage
      ~baseline ~current ()
  in
  let slew =
    match (base.Audit.slew_error_pct, cur.Audit.slew_error_pct) with
    | Some b, Some c -> [ d "slew_error_pct" b c ]
    | (Some _ | None), _ -> []
  in
  d "delay_error_pct" base.Audit.delay_error_pct cur.Audit.delay_error_pct
  :: d "rms_pct_of_swing" base.Audit.rms_pct_of_swing cur.Audit.rms_pct_of_swing
  :: slew

let summary_deltas tol (base : Audit.summary) (cur : Audit.summary) =
  let d metric baseline current =
    delta tol ~metric ~workload:cur.Audit.name ~baseline ~current ()
  in
  [
    d "avg_delay_error_pct" base.Audit.avg_delay_error_pct cur.Audit.avg_delay_error_pct;
    d "max_delay_error_pct" base.Audit.max_delay_error_pct cur.Audit.max_delay_error_pct;
    d "avg_rms_pct" base.Audit.avg_rms_pct cur.Audit.avg_rms_pct;
  ]

let compare_audits ?(tol = default_tolerances) ~baseline current =
  let base_records =
    List.concat_map
      (fun ((_ : Audit.summary), rs) ->
        List.map (fun (r : Audit.stage_record) -> ((r.Audit.workload, r.Audit.stage), r)) rs)
      baseline.Audit.workloads
  in
  let stage_deltas =
    List.concat_map
      (fun ((_ : Audit.summary), rs) ->
        List.concat_map
          (fun (cur : Audit.stage_record) ->
            match List.assoc_opt (cur.Audit.workload, cur.Audit.stage) base_records with
            | Some base -> record_deltas tol base cur
            | None -> [])
          rs)
      current.Audit.workloads
  in
  let base_summaries =
    List.map (fun ((s : Audit.summary), _) -> (s.Audit.name, s)) baseline.Audit.workloads
  in
  let workload_deltas =
    List.concat_map
      (fun ((cur : Audit.summary), _) ->
        match List.assoc_opt cur.Audit.name base_summaries with
        | Some base -> summary_deltas tol base cur
        | None -> [])
      current.Audit.workloads
  in
  stage_deltas @ workload_deltas
  @ summary_deltas tol baseline.Audit.overall current.Audit.overall

let load path =
  Option.map Audit.of_json (Ledger.last path)

let save ~path audit = Ledger.append ~path (Audit.to_json audit)
