open Tqwm_circuit
module Models = Tqwm_device.Models
module Qwm = Tqwm_core.Qwm
module Engine = Tqwm_spice.Engine
module Transient = Tqwm_spice.Transient
module Compare = Tqwm_wave.Compare
module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Json = Tqwm_obs.Json

let c_stages_audited = Metrics.counter "audit.stages_audited"

let h_delay_error =
  Metrics.histogram "audit.delay_error_pct"
    ~bounds:[| 0.1; 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0 |]

let h_rms =
  Metrics.histogram "audit.rms"
    ~bounds:[| 0.25; 0.5; 1.0; 2.0; 4.0; 8.0; 16.0; 32.0 |]

type stage_record = {
  workload : string;
  stage : string;
  golden_delay : float;
  qwm_delay : float;
  delay_error_pct : float;
  accuracy_pct : float;
  golden_slew : float option;
  qwm_slew : float option;
  slew_error_pct : float option;
  rms_pct_of_swing : float;
  regions : int;
  newton_iterations : int;
  golden_seconds : float;
  qwm_seconds : float;
}

type summary = {
  name : string;
  stages : int;
  avg_accuracy_pct : float;
  worst_accuracy_pct : float;
  avg_delay_error_pct : float;
  max_delay_error_pct : float;
  avg_rms_pct : float;
  max_rms_pct : float;
  golden_seconds : float;
  qwm_seconds : float;
  runtime_ratio : float;
}

type t = {
  workloads : (summary * stage_record list) list;
  overall : summary;
}

(* ---------- workload catalog ---------- *)

let catalog ?(smoke = false) tech =
  let stack len seed = Random_circuits.stack_scenario tech ~len ~seed in
  if smoke then
    [
      ("chain", [ Scenario.inverter_falling tech; Scenario.nand_falling ~n:2 tech ]);
      ("random-stacks", [ stack 5 0; stack 6 1 ]);
      ("decoder-tree", [ Scenario.decoder ~levels:1 tech ]);
      ("awe-wires", [ Scenario.nand_pass_falling ~n:2 tech ]);
    ]
  else
    [
      ( "chain",
        [
          Scenario.inverter_falling tech;
          Scenario.nand_falling ~n:2 tech;
          Scenario.nand_falling ~n:3 tech;
          Scenario.nand_falling ~n:4 tech;
        ] );
      ("random-stacks", [ stack 5 0; stack 6 1; stack 8 2; stack 10 3 ]);
      ( "decoder-tree",
        [
          Scenario.decoder ~levels:1 tech;
          Scenario.decoder ~levels:2 tech;
          Scenario.decoder ~levels:3 tech;
        ] );
      ( "awe-wires",
        [
          Scenario.nand_pass_falling ~n:2 tech;
          Scenario.nand_pass_falling ~n:3 tech;
          Scenario.manchester ~bits:5 tech;
        ] );
    ]

(* ---------- one stage: golden vs QWM ---------- *)

let audit_stage ~golden ~table ~config ~dt ~workload scenario =
  let name = scenario.Scenario.name in
  let fail fmt =
    Printf.ksprintf (fun m -> failwith (Printf.sprintf "Audit: %s/%s: %s" workload name m)) fmt
  in
  let sp =
    Engine.run ~model:golden ~config:{ Transient.default_config with Transient.dt }
      scenario
  in
  let qw = Qwm.run ~model:table ~config scenario in
  let golden_delay =
    match sp.Engine.delay with
    | Some d when d > 0.0 -> d
    | Some _ | None -> fail "golden engine reports no positive delay"
  in
  let qwm_delay =
    match qw.Qwm.delay with
    | Some d -> d
    | None -> fail "QWM reports no output crossing"
  in
  let delay_error_pct = Compare.delay_error_percent ~reference:golden_delay qwm_delay in
  let slew_error_pct =
    match (sp.Engine.slew, qw.Qwm.slew) with
    | Some a, Some b when a > 0.0 -> Some (100.0 *. Float.abs (b -. a) /. a)
    | (Some _ | None), _ -> None
  in
  let cmp =
    Compare.waveforms ~reference:sp.Engine.output
      (Qwm.output_waveform qw ~dt:(Float.min dt 1e-12))
  in
  Metrics.incr c_stages_audited;
  Metrics.observe h_delay_error delay_error_pct;
  Metrics.observe h_rms cmp.Compare.rms_percent_of_swing;
  {
    workload;
    stage = name;
    golden_delay;
    qwm_delay;
    delay_error_pct;
    accuracy_pct = Compare.accuracy_percent ~reference:golden_delay qwm_delay;
    golden_slew = sp.Engine.slew;
    qwm_slew = qw.Qwm.slew;
    slew_error_pct;
    rms_pct_of_swing = cmp.Compare.rms_percent_of_swing;
    regions = qw.Qwm.stats.Tqwm_core.Qwm_solver.regions;
    newton_iterations = qw.Qwm.stats.Tqwm_core.Qwm_solver.newton_iterations;
    golden_seconds = sp.Engine.runtime_seconds;
    qwm_seconds = qw.Qwm.runtime_seconds;
  }

(* Evaluate [f] over the array on up to [domains] domains fed from a
   shared index; results land in input order, so the output is
   independent of the schedule. The first worker exception is re-raised
   after the team is joined. *)
let parallel_map ~domains f input =
  let n = Array.length input in
  let domains = max 1 (min domains n) in
  if domains <= 1 then Array.map f input
  else begin
    let results = Array.make n None in
    let next = Atomic.make 0 in
    let worker () =
      let rec loop () =
        let i = Atomic.fetch_and_add next 1 in
        if i < n then begin
          results.(i) <- Some (f input.(i));
          loop ()
        end
      in
      loop ()
    in
    let team = Array.init (domains - 1) (fun _ -> Domain.spawn worker) in
    let first_error =
      match worker () with
      | () -> None
      | exception e -> Some e
    in
    let first_error =
      Array.fold_left
        (fun err d ->
          match Domain.join d with
          | () -> err
          | exception e -> (match err with None -> Some e | Some _ -> err))
        first_error team
    in
    (match first_error with Some e -> raise e | None -> ());
    Array.map Option.get results
  end

(* ---------- aggregation ---------- *)

let summarize name (records : stage_record list) =
  let n = List.length records in
  let fn = float_of_int (max n 1) in
  let sum f = List.fold_left (fun acc r -> acc +. f r) 0.0 records in
  let maxi f = List.fold_left (fun acc r -> Float.max acc (f r)) neg_infinity records in
  let golden_seconds = sum (fun r -> r.golden_seconds) in
  let qwm_seconds = sum (fun r -> r.qwm_seconds) in
  {
    name;
    stages = n;
    avg_accuracy_pct = sum (fun r -> r.accuracy_pct) /. fn;
    worst_accuracy_pct =
      List.fold_left (fun acc r -> Float.min acc r.accuracy_pct) infinity records;
    avg_delay_error_pct = sum (fun r -> r.delay_error_pct) /. fn;
    max_delay_error_pct = maxi (fun r -> r.delay_error_pct);
    avg_rms_pct = sum (fun r -> r.rms_pct_of_swing) /. fn;
    max_rms_pct = maxi (fun r -> r.rms_pct_of_swing);
    golden_seconds;
    qwm_seconds;
    runtime_ratio = (if qwm_seconds > 0.0 then golden_seconds /. qwm_seconds else 0.0);
  }

let of_records ~workload_order records =
  let workloads =
    List.map
      (fun w ->
        let rs = List.filter (fun r -> String.equal r.workload w) records in
        (summarize w rs, rs))
      workload_order
  in
  { workloads; overall = summarize "overall" records }

let run ?(config = Tqwm_core.Config.default) ?(dt = 1e-12) ?(domains = 1)
    ?workloads tech =
  let workloads = match workloads with Some w -> w | None -> catalog tech in
  List.iter
    (fun (w, scenarios) ->
      let seen = Hashtbl.create 8 in
      List.iter
        (fun (s : Scenario.t) ->
          if Hashtbl.mem seen s.Scenario.name then
            invalid_arg
              (Printf.sprintf "Audit.run: duplicate stage %s in workload %s"
                 s.Scenario.name w);
          Hashtbl.add seen s.Scenario.name ())
        scenarios)
    workloads;
  let golden = Models.golden tech in
  let table = Models.table tech in
  let flat =
    Array.of_list
      (List.concat_map (fun (w, ss) -> List.map (fun s -> (w, s)) ss) workloads)
  in
  let records =
    Trace.with_span ~name:"audit" ~cat:"audit" (fun () ->
        parallel_map ~domains
          (fun (workload, scenario) ->
            Trace.with_span ~name:("audit:" ^ workload ^ "/" ^ scenario.Scenario.name)
              ~cat:"audit" (fun () ->
                audit_stage ~golden ~table ~config ~dt ~workload scenario))
          flat)
  in
  of_records ~workload_order:(List.map fst workloads) (Array.to_list records)

(* ---------- reproducibility equality ---------- *)

let strip_record (r : stage_record) =
  { r with golden_seconds = 0.0; qwm_seconds = 0.0 }

let strip_summary s =
  { s with golden_seconds = 0.0; qwm_seconds = 0.0; runtime_ratio = 0.0 }

let equal_measurements a b =
  let strip t =
    ( List.map
        (fun (s, rs) -> (strip_summary s, List.map strip_record rs))
        t.workloads,
      strip_summary t.overall )
  in
  strip a = strip b

(* ---------- JSON ---------- *)

let opt_float = function None -> Json.Null | Some x -> Json.Float x

(* delays and slews are stored in raw seconds so records round-trip
   bit-exactly through the ledger (the text report prints picoseconds) *)
let record_to_json r =
  Json.Obj
    [
      ("stage", Json.String r.stage);
      ("golden_delay", Json.Float r.golden_delay);
      ("qwm_delay", Json.Float r.qwm_delay);
      ("delay_error_pct", Json.Float r.delay_error_pct);
      ("accuracy_pct", Json.Float r.accuracy_pct);
      ("golden_slew", opt_float r.golden_slew);
      ("qwm_slew", opt_float r.qwm_slew);
      ("slew_error_pct", opt_float r.slew_error_pct);
      ("rms_pct_of_swing", Json.Float r.rms_pct_of_swing);
      ("regions", Json.Int r.regions);
      ("newton_iterations", Json.Int r.newton_iterations);
      ("golden_seconds", Json.Float r.golden_seconds);
      ("qwm_seconds", Json.Float r.qwm_seconds);
    ]

let summary_to_json s =
  Json.Obj
    [
      ("stages", Json.Int s.stages);
      ("avg_accuracy_pct", Json.Float s.avg_accuracy_pct);
      ("worst_accuracy_pct", Json.Float s.worst_accuracy_pct);
      ("avg_delay_error_pct", Json.Float s.avg_delay_error_pct);
      ("max_delay_error_pct", Json.Float s.max_delay_error_pct);
      ("avg_rms_pct", Json.Float s.avg_rms_pct);
      ("max_rms_pct", Json.Float s.max_rms_pct);
      ("golden_seconds", Json.Float s.golden_seconds);
      ("qwm_seconds", Json.Float s.qwm_seconds);
      ("runtime_ratio", Json.Float s.runtime_ratio);
    ]

let to_json t =
  Json.Obj
    [
      ("schema", Json.String "tqwm-audit/1");
      ( "workloads",
        Json.List
          (List.map
             (fun (s, rs) ->
               match summary_to_json s with
               | Json.Obj fields ->
                 Json.Obj
                   (("name", Json.String s.name)
                   :: (fields @ [ ("records", Json.List (List.map record_to_json rs)) ]))
               | _ -> assert false)
             t.workloads) );
      ("overall", summary_to_json t.overall);
    ]

let parse_fail fmt = Printf.ksprintf (fun m -> failwith ("Audit.of_json: " ^ m)) fmt

let number field = function
  | Some (Json.Int i) -> float_of_int i
  | Some (Json.Float f) -> f
  | Some _ | None -> parse_fail "missing number %s" field

let integer field = function
  | Some (Json.Int i) -> i
  | Some _ | None -> parse_fail "missing integer %s" field

let string_field field = function
  | Some (Json.String s) -> s
  | Some _ | None -> parse_fail "missing string %s" field

let opt_number = function
  | Some (Json.Int i) -> Some (float_of_int i)
  | Some (Json.Float f) -> Some f
  | Some Json.Null | None -> None
  | Some _ -> parse_fail "non-numeric optional field"

let record_of_json ~workload j =
  let m f = Json.member f j in
  {
    workload;
    stage = string_field "stage" (m "stage");
    golden_delay = number "golden_delay" (m "golden_delay");
    qwm_delay = number "qwm_delay" (m "qwm_delay");
    delay_error_pct = number "delay_error_pct" (m "delay_error_pct");
    accuracy_pct = number "accuracy_pct" (m "accuracy_pct");
    golden_slew = opt_number (m "golden_slew");
    qwm_slew = opt_number (m "qwm_slew");
    slew_error_pct = opt_number (m "slew_error_pct");
    rms_pct_of_swing = number "rms_pct_of_swing" (m "rms_pct_of_swing");
    regions = integer "regions" (m "regions");
    newton_iterations = integer "newton_iterations" (m "newton_iterations");
    golden_seconds = number "golden_seconds" (m "golden_seconds");
    qwm_seconds = number "qwm_seconds" (m "qwm_seconds");
  }

let summary_of_json ~name j =
  let m f = Json.member f j in
  {
    name;
    stages = integer "stages" (m "stages");
    avg_accuracy_pct = number "avg_accuracy_pct" (m "avg_accuracy_pct");
    worst_accuracy_pct = number "worst_accuracy_pct" (m "worst_accuracy_pct");
    avg_delay_error_pct = number "avg_delay_error_pct" (m "avg_delay_error_pct");
    max_delay_error_pct = number "max_delay_error_pct" (m "max_delay_error_pct");
    avg_rms_pct = number "avg_rms_pct" (m "avg_rms_pct");
    max_rms_pct = number "max_rms_pct" (m "max_rms_pct");
    golden_seconds = number "golden_seconds" (m "golden_seconds");
    qwm_seconds = number "qwm_seconds" (m "qwm_seconds");
    runtime_ratio = number "runtime_ratio" (m "runtime_ratio");
  }

let of_json j =
  (match Json.member "schema" j with
  | Some (Json.String "tqwm-audit/1") -> ()
  | Some (Json.String other) -> parse_fail "unsupported schema %s" other
  | Some _ | None -> parse_fail "not a tqwm-audit record");
  let workloads =
    match Json.member "workloads" j with
    | Some (Json.List ws) ->
      List.map
        (fun w ->
          let name = string_field "name" (Json.member "name" w) in
          let records =
            match Json.member "records" w with
            | Some (Json.List rs) -> List.map (record_of_json ~workload:name) rs
            | Some _ | None -> parse_fail "workload %s has no records" name
          in
          (summary_of_json ~name w, records))
        ws
    | Some _ | None -> parse_fail "missing workloads"
  in
  let overall =
    match Json.member "overall" j with
    | Some o -> summary_of_json ~name:"overall" o
    | None -> parse_fail "missing overall"
  in
  { workloads; overall }

(* ---------- text report ---------- *)

let pp fmt t =
  let ps = 1e12 in
  Format.fprintf fmt "%-12s %-14s %10s %10s %7s %7s %6s %4s %6s@."
    "workload" "stage" "golden(ps)" "qwm(ps)" "err%" "acc%" "rms%" "reg" "NR";
  List.iter
    (fun (_, records) ->
      List.iter
        (fun r ->
          Format.fprintf fmt "%-12s %-14s %10.2f %10.2f %7.2f %7.2f %6.2f %4d %6d@."
            r.workload r.stage (r.golden_delay *. ps) (r.qwm_delay *. ps)
            r.delay_error_pct r.accuracy_pct r.rms_pct_of_swing r.regions
            r.newton_iterations)
        records)
    t.workloads;
  List.iter
    (fun (s, _) ->
      Format.fprintf fmt
        "%-12s %d stages: accuracy avg %.2f%% worst %.2f%%, rms avg %.2f%%, \
         golden/qwm runtime %.1fx@."
        s.name s.stages s.avg_accuracy_pct s.worst_accuracy_pct s.avg_rms_pct
        s.runtime_ratio)
    t.workloads;
  let o = t.overall in
  Format.fprintf fmt
    "overall: %d stages, avg accuracy %.2f%% (worst %.2f%%), avg delay error \
     %.2f%%, avg rms %.2f%%, golden/qwm runtime %.1fx@."
    o.stages o.avg_accuracy_pct o.worst_accuracy_pct o.avg_delay_error_pct
    o.avg_rms_pct o.runtime_ratio
