(** Drift detection over baseline comparisons: pinpoint {e which} stage
    and which workload family moved, classify the run as a whole, and
    feed the outcome into the global telemetry registry (counters
    [audit.unchanged] / [audit.improved] / [audit.regressed] and an
    [audit.drift] trace instant per regression). *)

type report = {
  deltas : Baseline.delta list;  (** every compared metric *)
  regressed : Baseline.delta list;  (** worst first *)
  improved : Baseline.delta list;
  unchanged : int;
  unmatched : int;
      (** current stages with no baseline counterpart (new workloads or
          renamed stages) — compared against nothing, so flagged *)
  regressions_by_workload : (string * int) list;
      (** regression count per workload family, zero-count entries
          omitted, worst family first *)
}

val check : ?tol:Baseline.tolerances -> baseline:Audit.t -> Audit.t -> report
(** Compare and classify. Each call bumps the [audit.*] drift counters
    by this report's classification counts. *)

val has_regressions : report -> bool

val worst : report -> Baseline.delta option
(** The regression with the largest excursion beyond its baseline. *)

val pp : Format.formatter -> report -> unit
(** Per-regression lines (metric, stage, baseline -> current), then the
    improved/unchanged/unmatched tallies. *)

val to_json : report -> Tqwm_obs.Json.t
(** [{"regressed": [...], "improved": [...], "unchanged": n,
    "unmatched": n, "regressions_by_workload": {...}}] — the drift
    section of the [--audit --json] document the CI gate consumes. *)
