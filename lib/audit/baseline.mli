(** Persisted accuracy baselines and metric classification.

    A baseline is simply the newest {!Audit.t} record of the
    [AUDIT_accuracy.json] ledger (see {!Tqwm_obs.Ledger}). Comparing a
    fresh audit against it classifies every error metric — per-stage
    delay error, waveform RMS and slew error, per-workload and overall
    averages/maxima — as unchanged, improved or regressed under a
    configurable absolute + relative tolerance. All compared metrics are
    error metrics, so {e lower is better}: a value that moved up beyond
    the tolerance regressed, one that moved down improved. *)

type tolerances = {
  abs_pp : float;
      (** absolute slack, in percentage points of the error metric *)
  rel : float;  (** relative slack, as a fraction of the baseline value *)
}

val default_tolerances : tolerances
(** 0.25 percentage points + 5 % of the baseline value — wide enough to
    absorb float noise from re-characterized device tables, tight enough
    that a real solver degradation (a lost half-point of accuracy)
    trips it. *)

type classification = Unchanged | Improved | Regressed

val classification_to_string : classification -> string

val classify : tolerances -> baseline:float -> current:float -> classification
(** A metric moved iff [|current - baseline| > abs_pp + rel * |baseline|];
    direction decides {!Improved} (down) vs {!Regressed} (up). *)

type delta = {
  metric : string;  (** e.g. ["delay_error_pct"], ["avg_delay_error_pct"] *)
  workload : string;  (** workload name, or ["overall"] *)
  stage : string option;  (** [None] for workload/overall summaries *)
  baseline : float;
  current : float;
  classification : classification;
}

val compare_audits : ?tol:tolerances -> baseline:Audit.t -> Audit.t -> delta list
(** One {!delta} per comparable metric, pairing current stages and
    workloads with their baseline counterparts by name; entries present
    on only one side are skipped (see {!Drift.check}, which counts
    them). *)

val load : string -> Audit.t option
(** Newest audit record of the ledger at the given path; [None] when
    the file is missing or empty.
    @raise Failure if the newest record is not a [tqwm-audit/1]
    document. *)

val save : path:string -> Audit.t -> int
(** Append the audit to the ledger (date- and commit-stamped), returning
    the new record count. *)
