open Tqwm_circuit
module Device_model = Tqwm_device.Device_model
module Source = Tqwm_wave.Source
module Waveform = Tqwm_wave.Waveform
module Vec = Tqwm_num.Vec
module Tridiag = Tqwm_num.Tridiag
module Bordered = Tqwm_num.Bordered
module Sherman_morrison = Tqwm_num.Sherman_morrison
module Lu = Tqwm_num.Lu
module Mat = Tqwm_num.Mat
module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Json = Tqwm_obs.Json
module Alloc = Tqwm_obs.Alloc

(* Global solver telemetry; one atomic add per counter per solve. *)
let c_solves = Metrics.counter "qwm.solves"
let c_regions = Metrics.counter "qwm.regions"
let c_turn_ons = Metrics.counter "qwm.turn_ons"
let c_newton = Metrics.counter "qwm.newton_iterations"
let c_linear_solves = Metrics.counter "qwm.linear_solves"
let c_bisections = Metrics.counter "qwm.bisections"
let c_failures = Metrics.counter "qwm.failures"
let c_alloc_minor = Metrics.counter "qwm.alloc.minor_words"
let c_alloc_promoted = Metrics.counter "qwm.alloc.promoted_words"

let h_regions_per_solve =
  Metrics.histogram "qwm.regions_per_solve"
    ~bounds:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]

let h_newton_per_region =
  Metrics.histogram "qwm.newton_per_region"
    ~bounds:[| 1.0; 2.0; 3.0; 5.0; 8.0; 13.0; 21.0; 34.0 |]

let h_alloc_per_region =
  Metrics.histogram "qwm.alloc.words_per_region"
    ~bounds:
      [| 128.0; 256.0; 512.0; 1024.0; 2048.0; 4096.0; 8192.0; 16384.0; 32768.0; 65536.0 |]

module Workspace = struct
  (* One flat bundle of scratch buffers sized for chains of up to [cap]
     nodes. Every float buffer is a zero-copy [Vec.view] carved out of a
     single contiguous Bigarray slab, so the whole region-solve working
     set lives in unboxed storage that the GC never scans or moves. The
     buffers are reused across regions and solves, and every kernel
     operates on an explicit prefix of them, so slots beyond the live
     prefix may hold stale values from an earlier (larger) system and
     must never be read. The few slots a computation relies on being
     zero are re-zeroed at each use site, keeping results bit-identical
     to the old allocate-fresh-zeroed-arrays code. *)
  type buffers = {
    cap : int;  (** chain-node capacity [K] *)
    slab : Vec.t;  (** the backing slab all views below are carved from *)
    (* region-end projection of the current Newton candidate *)
    v_end : Vec.t;  (* K+1 *)
    i_end : Vec.t;  (* K+1 *)
    (* residuals: the accepted iterate's and the line-search trial's *)
    f : Vec.t;  (* K+1 *)
    f_trial : Vec.t;  (* K+1 *)
    j : Vec.t;  (* K+2: edge currents; j.(m+1) re-zeroed per use *)
    (* Jacobian blocks *)
    h : Vec.t;  (* K *)
    w : Vec.t;  (* K+1; w.(0) re-zeroed per use *)
    lower : Vec.t;  (* K; lower.(0) re-zeroed per use *)
    diag : Vec.t;  (* K *)
    upper : Vec.t;  (* K; upper.(m-1) re-zeroed per use *)
    last_col : Vec.t;  (* K *)
    last_row : Vec.t;  (* K *)
    (* SoA edge-current derivatives, replacing the arrays of tuples *)
    d_below : Vec.t;  (* K *)
    d_above : Vec.t;  (* K *)
    d_t : Vec.t;  (* K *)
    mutable last_row_m : float;
    mutable corner : float;
    (* linear-solver scratch *)
    dx : Vec.t;  (* K+1: the Newton step *)
    cp : Vec.t;  (* K+1: Thomas coefficients *)
    dp : Vec.t;  (* K+1 *)
    y : Vec.t;  (* K+1: first base solve *)
    z : Vec.t;  (* K+1: second base solve *)
    sm_lower : Vec.t;  (* K+1: Sherman–Morrison extended bands *)
    sm_diag : Vec.t;  (* K+1 *)
    sm_upper : Vec.t;  (* K+1 *)
    sm_u : Vec.t;  (* K+1 *)
    sm_v : Vec.t;  (* K+1 *)
    mat : Mat.t;  (* (K+1) x (K+1) view into the slab, dense-LU mode only *)
    perm : int array;  (* K+1 *)
    (* Newton candidates and the warm start *)
    alpha_a : Vec.t;  (* K: primary attempt / fixed-delta fallback *)
    alpha_b : Vec.t;  (* K: explicit-Euler retry *)
    trial_alpha : Vec.t;  (* K: line-search trial *)
    seed : Vec.t;  (* K: estimate_region output *)
    last_alpha : Vec.t;  (* K: previous region's curvature *)
    (* explicit-Euler estimator state *)
    est_v : Vec.t;  (* K+1 *)
    est_i : Vec.t;  (* K+1 *)
    (* solver state vectors: normalized node voltages / currents; views
       into the slab so a solve allocates nothing for its state either *)
    st_v : Vec.t;  (* K+1 *)
    st_i : Vec.t;  (* K+1 *)
    (* Piece arena: the committed waveform, SoA. Piece [r] spans
       [piece_t0.(r), piece_t0.(r)+piece_dt.(r)] (one shared time grid —
       every commit appends one piece to every chain node) and node [k]'s
       coefficients live at column offset [r*piece_stride + (k-1)]. Grown
       on demand, preserving the live prefix, and overwritten from index
       0 by the next solve. *)
    piece_stride : int;  (** node stride of the coefficient columns = cap *)
    mutable piece_cap : int;
    mutable piece_t0 : Vec.t;  (* piece_cap *)
    mutable piece_dt : Vec.t;  (* piece_cap *)
    mutable piece_v0 : Vec.t;  (* piece_cap * piece_stride *)
    mutable piece_dv : Vec.t;  (* piece_cap * piece_stride *)
    mutable piece_ddv : Vec.t;  (* piece_cap * piece_stride *)
    (* device-query scratch: one terminal-voltage record refilled per
       query and one derivative out-buffer, so the model calls that fire
       several times per Newton iteration never allocate *)
    tvs : Device_model.terminal_voltages;
    dv : Device_model.derivs;
  }

  let alloc cap =
    let k1 = cap + 1 in
    let total = (19 * k1) + (cap + 2) + (14 * cap) + (k1 * k1) in
    let slab = Vec.create total in
    let pos = ref 0 in
    let take n =
      let v = Vec.view slab ~pos:!pos ~len:n in
      pos := !pos + n;
      v
    in
    let v_end = take k1 in
    let i_end = take k1 in
    let f = take k1 in
    let f_trial = take k1 in
    let j = take (cap + 2) in
    let h = take cap in
    let w = take k1 in
    let lower = take cap in
    let diag = take cap in
    let upper = take cap in
    let last_col = take cap in
    let last_row = take cap in
    let d_below = take cap in
    let d_above = take cap in
    let d_t = take cap in
    let dx = take k1 in
    let cp = take k1 in
    let dp = take k1 in
    let y = take k1 in
    let z = take k1 in
    let sm_lower = take k1 in
    let sm_diag = take k1 in
    let sm_upper = take k1 in
    let sm_u = take k1 in
    let sm_v = take k1 in
    let mat = Mat.of_vec ~rows:k1 ~cols:k1 (take (k1 * k1)) in
    let alpha_a = take cap in
    let alpha_b = take cap in
    let trial_alpha = take cap in
    let seed = take cap in
    let last_alpha = take cap in
    let est_v = take k1 in
    let est_i = take k1 in
    let st_v = take k1 in
    let st_i = take k1 in
    assert (!pos = total);
    let piece_cap = 64 in
    {
      cap;
      slab;
      v_end;
      i_end;
      f;
      f_trial;
      j;
      h;
      w;
      lower;
      diag;
      upper;
      last_col;
      last_row;
      d_below;
      d_above;
      d_t;
      last_row_m = 0.0;
      corner = 0.0;
      dx;
      cp;
      dp;
      y;
      z;
      sm_lower;
      sm_diag;
      sm_upper;
      sm_u;
      sm_v;
      mat;
      perm = Array.make k1 0;
      alpha_a;
      alpha_b;
      trial_alpha;
      seed;
      last_alpha;
      est_v;
      est_i;
      st_v;
      st_i;
      piece_stride = cap;
      piece_cap;
      piece_t0 = Vec.create piece_cap;
      piece_dt = Vec.create piece_cap;
      piece_v0 = Vec.create (piece_cap * cap);
      piece_dv = Vec.create (piece_cap * cap);
      piece_ddv = Vec.create (piece_cap * cap);
      tvs = { Device_model.input = 0.0; src = 0.0; snk = 0.0 };
      dv = Device_model.derivs ();
    }

  (* grow the piece arena to hold [needed] pieces, preserving the [live]
     committed prefix (a solve may outgrow the arena mid-flight) *)
  let ensure_pieces b ~live needed =
    if needed > b.piece_cap then begin
      let cap' = max needed (2 * b.piece_cap) in
      let grow1 src len' n_live =
        let dst = Vec.create len' in
        Vec.blit_n n_live src dst;
        dst
      in
      b.piece_t0 <- grow1 b.piece_t0 cap' live;
      b.piece_dt <- grow1 b.piece_dt cap' live;
      let coef_live = live * b.piece_stride in
      b.piece_v0 <- grow1 b.piece_v0 (cap' * b.piece_stride) coef_live;
      b.piece_dv <- grow1 b.piece_dv (cap' * b.piece_stride) coef_live;
      b.piece_ddv <- grow1 b.piece_ddv (cap' * b.piece_stride) coef_live;
      b.piece_cap <- cap'
    end

  type t = { mutable bufs : buffers }

  let create ?(capacity = 8) () = { bufs = alloc (max capacity 1) }

  (* Grow-only: replacing the bundle wholesale keeps every buffer's
     capacity invariant trivially true. *)
  let ensure t k = if k > t.bufs.cap then t.bufs <- alloc (max k (2 * t.bufs.cap))

  (* Per-domain default workspace: parallel STA workers each live on their
     own domain, so the single-flight stage cache hands every worker its
     own scratch without coordination. *)
  let key = Domain.DLS.new_key (fun () -> create ())
  let for_current_domain () = Domain.DLS.get key
end

type stats = {
  regions : int;
  turn_ons : int;
  newton_iterations : int;
  linear_solves : int;
  bisections : int;
  failures : int;
}

type result = {
  node_quadratics : Waveform.quadratic array;
  critical_times : float list;
  t_solved : float;
  stats : stats;
}

(* All internal voltages are in "pull-down-normalized" coordinates: the rail
   is 0 V and nodes discharge toward it. Pull-up chains are mirrored about
   VDD on the way in and back on the way out. *)
type problem = {
  model : Device_model.t;
  vdd : float;
  rail : Chain.rail;
  edges : Chain.edge array;  (** edge k at index k-1 *)
  gates : Source.t option array;
  caps : float array;  (** node k capacitance at index k-1 *)
  t_end : float;
  cfg : Config.t;
  ws : Workspace.buffers;
}

type state = {
  mutable t : float;
  v : Vec.t;  (** normalized voltages, index 0..K; v.(0) = 0 rail *)
  i : Vec.t;  (** normalized node currents C dv/dt, index 0..K *)
  mutable active : int;  (** nodes 1..active evolve; the rest are frozen *)
  mutable n_pieces : int;  (** committed pieces in the workspace arena *)
  mutable crits : float list;  (** reversed *)
  mutable n_regions : int;
  mutable n_turn_ons : int;
  mutable n_newton : int;
  mutable n_solves : int;
  mutable n_bisect : int;
  mutable n_fail : int;
  mutable last_alpha_len : int;
      (** live prefix of [ws.last_alpha] (warm start); -1 before the
          first committed region *)
}

let chain_length p = Array.length p.edges

let real_of_norm p x =
  match p.rail with Chain.Pull_down -> x | Chain.Pull_up -> p.vdd -. x

let gate_real p k t =
  match p.gates.(k - 1) with Some s -> Source.value s t | None -> 0.0

let gate_real_slope p k t =
  match p.gates.(k - 1) with Some s -> Source.derivative s t | None -> 0.0

let gate_norm p k t = real_of_norm p (gate_real p k t)

let gate_norm_slope p k t =
  match p.rail with
  | Chain.Pull_down -> gate_real_slope p k t
  | Chain.Pull_up -> -.gate_real_slope p k t

(* terminal voltages of edge k for normalized below/above node voltages,
   refilled into the workspace scratch record (the model only reads it
   during the call, so one record serves every query) *)
let terminal_voltages p k ~t ~vb ~va =
  let tv = p.ws.Workspace.tvs in
  (match p.rail with
  | Chain.Pull_down ->
    tv.Device_model.input <- gate_real p k t;
    tv.Device_model.src <- va;
    tv.Device_model.snk <- vb
  | Chain.Pull_up ->
    tv.Device_model.input <- gate_real p k t;
    tv.Device_model.src <- p.vdd -. vb;
    tv.Device_model.snk <- p.vdd -. va);
  tv

(* J'_k: normalized current flowing from node k to node k-1 *)
let edge_current p k ~t ~vb ~va =
  p.model.Device_model.iv p.edges.(k - 1).Chain.device (terminal_voltages p k ~t ~vb ~va)

(* (dJ'_k/dv'_below, dJ'_k/dv'_above), left in [p.ws.dv] with the below
   derivative in [dsrc] and the above derivative in [dsnk] (the record is
   repurposed as the rail-mapped pair — same expressions as the old
   tuple-returning form, so the values are bit-identical) *)
let edge_current_derivs_into p k ~t ~vb ~va =
  let tv = terminal_voltages p k ~t ~vb ~va in
  let d = p.ws.Workspace.dv in
  p.model.Device_model.iv_derivatives_into p.edges.(k - 1).Chain.device tv d;
  match p.rail with
  | Chain.Pull_down ->
    let dsrc = d.Device_model.dsrc in
    d.Device_model.dsrc <- d.Device_model.dsnk;
    d.Device_model.dsnk <- dsrc
  | Chain.Pull_up ->
    d.Device_model.dsrc <- -.d.Device_model.dsrc;
    d.Device_model.dsnk <- -.d.Device_model.dsnk

(* explicit time derivative of J'_k through a moving gate drive *)
let edge_current_dt p k ~t ~vb ~va =
  let slope = gate_real_slope p k t in
  if slope = 0.0 then 0.0
  else begin
    let tv = terminal_voltages p k ~t ~vb ~va in
    let h = 1e-5 in
    let device = p.edges.(k - 1).Chain.device in
    let g0 = tv.Device_model.input in
    tv.Device_model.input <- g0 +. h;
    let up = p.model.Device_model.iv device tv in
    tv.Device_model.input <- g0 -. h;
    let dn = p.model.Device_model.iv device tv in
    (up -. dn) /. (2.0 *. h) *. slope
  end

(* body-corrected threshold of edge k seen from its below node *)
let threshold p k ~t ~vb =
  let real_b = real_of_norm p vb in
  let tv = p.ws.Workspace.tvs in
  tv.Device_model.input <- gate_real p k t;
  tv.Device_model.src <- real_b;
  tv.Device_model.snk <- real_b;
  p.model.Device_model.threshold p.edges.(k - 1).Chain.device tv

let threshold_slope p k ~t ~vb =
  let h = 1e-5 in
  (threshold p k ~t ~vb:(vb +. h) -. threshold p k ~t ~vb:(vb -. h)) /. (2.0 *. h)

(* gate drive in excess of threshold; the transistor conducts when >= 0 *)
let drive p k ~t ~vb = gate_norm p k t -. vb -. threshold p k ~t ~vb

(* nodes connected to the front through wire edges activate together *)
let rec extend_front p a =
  if a >= chain_length p then a
  else if Chain.is_transistor p.edges.(a) then a
  else extend_front p (a + 1)

type target =
  | Turn_on of int  (** edge index whose turn-on ends the region *)
  | Level of { node : int; value : float }

let is_linear p = p.cfg.Config.waveform_model = Config.Linear

(* Region-end node voltages and currents for a candidate (x, delta),
   written into [ws.v_end] / [ws.i_end].
   Quadratic model (the paper's): x_k is the current slope [alpha_k], so
   [v] gains i*d + alpha*d^2/2 over the region and [i] gains alpha*d.
   Linear model: x_k is the region's (constant) current itself, so [v]
   gains x*d and the end current is x. *)
let project p st (x : Vec.t) delta =
  let ws = p.ws in
  let k_total = chain_length p in
  let linear = is_linear p in
  let v_end = ws.v_end and i_end = ws.i_end in
  v_end.{0} <- 0.0;
  for k = 1 to k_total do
    if k <= st.active then begin
      let c = p.caps.(k - 1) in
      if linear then begin
        v_end.{k} <- st.v.{k} +. (x.{k - 1} *. delta /. c);
        i_end.{k} <- x.{k - 1}
      end
      else begin
        v_end.{k} <-
          st.v.{k} +. (((st.i.{k} *. delta) +. (0.5 *. x.{k - 1} *. delta *. delta)) /. c);
        i_end.{k} <- st.i.{k} +. (x.{k - 1} *. delta)
      end
    end
    else v_end.{k} <- st.v.{k}
  done

(* Residual of the region system at (alpha, delta), written into the first
   [m+1] slots of [f]. Also leaves [ws.v_end]/[ws.i_end] holding the
   candidate's projection — [region_jacobian] relies on this. *)
let region_residual p st target alpha delta ~(f : Vec.t) =
  let ws = p.ws in
  let m = st.active in
  let t' = st.t +. delta in
  project p st alpha delta;
  let v_end = ws.v_end and i_end = ws.i_end and j = ws.j in
  (* j.(m+1) is 0: the edge above the front is an off transistor *)
  j.{m + 1} <- 0.0;
  for k = 1 to m do
    j.{k} <- edge_current p k ~t:t' ~vb:v_end.{k - 1} ~va:v_end.{k}
  done;
  for k = 1 to m do
    f.{k - 1} <- i_end.{k} -. (j.{k + 1} -. j.{k})
  done;
  match target with
  | Turn_on k0 -> f.{m} <- drive p k0 ~t:t' ~vb:v_end.{m}
  | Level { node; value } -> f.{m} <- v_end.{node} -. value

(* Jacobian of the region system, written as its structural components:
   the alpha-block tridiagonal and dense last (d/d delta) column into the
   workspace band buffers, the single non-zero of the last row (at
   alpha_m) into [ws.last_row_m] and the corner into [ws.corner].

   Precondition: [ws.v_end]/[ws.i_end] already hold the projection of
   (alpha, delta) — always true because the accepted candidate's residual
   is the last one evaluated. This removes the duplicate [project] the
   old code performed once per Newton iteration. *)
let region_jacobian p st target (alpha : Vec.t) delta =
  let ws = p.ws in
  let m = st.active in
  let linear = is_linear p in
  let t' = st.t +. delta in
  let v_end = ws.v_end and i_end = ws.i_end in
  (* dv_end/dx per node, and di_end/dx (shared by all nodes) *)
  let h = ws.h in
  for k = 0 to m - 1 do
    h.{k} <- (if linear then delta /. p.caps.(k) else 0.5 *. delta *. delta /. p.caps.(k))
  done;
  let di_dx = if linear then 1.0 else delta in
  let w = ws.w in
  w.{0} <- 0.0;
  for k = 1 to m do
    w.{k} <- i_end.{k} /. p.caps.(k - 1)
  done;
  let lower = ws.lower and diag = ws.diag and upper = ws.upper and last_col = ws.last_col in
  (* the loop below leaves these two slots untouched; zero the stale values *)
  lower.{0} <- 0.0;
  upper.{m - 1} <- 0.0;
  (* each edge's derivatives are shared by the rows of both its nodes *)
  let d_below = ws.d_below and d_above = ws.d_above and d_t = ws.d_t in
  for idx = 0 to m - 1 do
    let k = idx + 1 in
    edge_current_derivs_into p k ~t:t' ~vb:v_end.{k - 1} ~va:v_end.{k};
    d_below.{idx} <- ws.dv.Device_model.dsrc;
    d_above.{idx} <- ws.dv.Device_model.dsnk;
    d_t.{idx} <- edge_current_dt p k ~t:t' ~vb:v_end.{k - 1} ~va:v_end.{k}
  done;
  for k = 1 to m do
    let r = k - 1 in
    let djk_b = d_below.{r} and djk_a = d_above.{r} in
    let djk_t = d_t.{r} in
    let djk1_b = if k < m then d_below.{r + 1} else 0.0 in
    let djk1_a = if k < m then d_above.{r + 1} else 0.0 in
    let djk1_t = if k < m then d_t.{r + 1} else 0.0 in
    diag.{r} <- di_dx +. ((djk_a -. djk1_b) *. h.{r});
    if k < m then upper.{r} <- -.djk1_a *. h.{r + 1};
    if k > 1 then lower.{r} <- djk_b *. h.{r - 2 + 1};
    let dj_dt_total =
      (* d/d delta of -(J_{k+1} - J_k) through voltages and gate motion *)
      -.((djk1_b *. w.{k}) +. (djk1_a *. (if k < m then w.{k + 1} else 0.0)) +. djk1_t)
      +. (djk_b *. w.{k - 1})
      +. (djk_a *. w.{k})
      +. djk_t
    in
    (* di_end/d delta: alpha for the quadratic model, 0 for the linear *)
    last_col.{r} <- (if linear then 0.0 else alpha.{r}) +. dj_dt_total
  done;
  match target with
  | Turn_on k0 ->
    let vth' = threshold_slope p k0 ~t:t' ~vb:v_end.{m} in
    ws.last_row_m <- (-1.0 -. vth') *. h.{m - 1};
    ws.corner <- gate_norm_slope p k0 t' -. ((1.0 +. vth') *. w.{m})
  | Level _ ->
    ws.last_row_m <- h.{m - 1};
    ws.corner <- w.{m}

(* Solve the bordered system held in the workspace band buffers for the
   Newton step, reading the residual from [f] and writing the step into
   [ws.dx.(0..m)]. All three solver modes run allocation-free on the
   in-place kernels, bit-identical to the old allocating forms. *)
let solve_linear p m ~f =
  let ws = p.ws in
  match p.cfg.Config.linear_solver with
  | Config.Dense_lu ->
    let a = ws.mat in
    for r = 0 to m do
      for c = 0 to m do
        Mat.set a r c 0.0
      done
    done;
    for r = 0 to m - 1 do
      Mat.set a r r ws.diag.{r};
      if r > 0 then Mat.set a r (r - 1) ws.lower.{r};
      if r < m - 1 then Mat.set a r (r + 1) ws.upper.{r};
      Mat.set a r m ws.last_col.{r}
    done;
    Mat.set a m (m - 1) ws.last_row_m;
    Mat.set a m m ws.corner;
    Lu.factorize_into ~n:(m + 1) a ~perm:ws.perm;
    Lu.solve_factored_into ~n:(m + 1) a ~perm:ws.perm ~b:f ~x:ws.dx
  | Config.Bordered ->
    let last_row = ws.last_row in
    Vec.fill_n m last_row 0.0;
    last_row.{m - 1} <- ws.last_row_m;
    Bordered.solve_into ~n:m ~lower:ws.lower ~diag:ws.diag ~upper:ws.upper
      ~last_col:ws.last_col ~last_row ~corner:ws.corner ~cp:ws.cp ~dp:ws.dp ~y:ws.y
      ~z:ws.z ~b:f ~x:ws.dx
  | Config.Sherman_morrison ->
    (* the paper's form: an (m+1) tridiagonal matrix (the last row's only
       non-zero is adjacent to the corner, and the last column's entry in
       row m-1 fits the super-diagonal) plus a rank-1 update carrying the
       remaining last-column entries *)
    Vec.blit_n m ws.lower ws.sm_lower;
    Vec.blit_n m ws.diag ws.sm_diag;
    Vec.blit_n m ws.upper ws.sm_upper;
    ws.sm_upper.{m - 1} <- ws.last_col.{m - 1};
    ws.sm_lower.{m} <- ws.last_row_m;
    ws.sm_diag.{m} <- ws.corner;
    let u = ws.sm_u and v = ws.sm_v in
    Vec.fill_n (m + 1) u 0.0;
    for r = 0 to m - 2 do
      u.{r} <- ws.last_col.{r}
    done;
    Vec.fill_n (m + 1) v 0.0;
    v.{m} <- 1.0;
    Sherman_morrison.solve_tridiag_into ~n:(m + 1) ~lower:ws.sm_lower ~diag:ws.sm_diag
      ~upper:ws.sm_upper ~u ~v ~cp:ws.cp ~dp:ws.dp ~y:ws.y ~z:ws.z ~b:f ~x:ws.dx

let converged p (f : Vec.t) m =
  let ok = ref (Float.abs f.{m} <= p.cfg.Config.voltage_tolerance) in
  for k = 0 to m - 1 do
    if Float.abs f.{k} > p.cfg.Config.current_tolerance then ok := false
  done;
  !ok

(* first-order guess of the region length from the target node's slope *)
let initial_delta p st target =
  let fallback = 5e-12 in
  let guess =
    match target with
    | Level { node; value } ->
      let rate = -.st.i.{node} /. p.caps.(node - 1) in
      if rate > 1e3 then (st.v.{node} -. value) /. rate else fallback
    | Turn_on k0 ->
      let m = st.active in
      let target_v = gate_norm p k0 st.t -. threshold p k0 ~t:st.t ~vb:st.v.{m} in
      let rate = -.st.i.{m} /. p.caps.(m - 1) in
      if rate > 1e3 then (st.v.{m} -. target_v) /. rate else fallback
  in
  Float.min (Float.max guess 1e-14) (Float.max (p.t_end *. 2.0) 1e-12)

type region_solution = { alpha : Vec.t; delta : float; ok : bool; iters : int }

(* Scale-free residual magnitude: current matches in units of the current
   tolerance, the end condition in units of the voltage tolerance. *)
let merit p (f : Vec.t) m =
  let acc = ref (Float.abs f.{m} /. p.cfg.Config.voltage_tolerance) in
  for k = 0 to m - 1 do
    acc := Float.max !acc (Float.abs f.{k} /. p.cfg.Config.current_tolerance)
  done;
  !acc

(* Newton iteration working in place on [alpha], a workspace-owned buffer
   already holding the start point (used directly by [solve_region], and
   with the explicit estimator's seed after a cheap-start failure). The
   returned solution aliases [alpha]; it stays valid until the buffer's
   next attempt. *)
let solve_region_from ?cap p st target (alpha : Vec.t) delta0 =
  let ws = p.ws in
  let m = st.active in
  let cfg = p.cfg in
  let max_iterations = Option.value cap ~default:cfg.Config.max_iterations in
  let delta = ref (Float.max delta0 1e-15) in
  let apply_step step =
    let dx = ws.dx and trial_alpha = ws.trial_alpha in
    for r = 0 to m - 1 do
      trial_alpha.{r} <- alpha.{r} -. (step *. dx.{r})
    done;
    let prev = !delta in
    let next = prev -. (step *. dx.{m}) in
    if next <= 0.0 then prev *. 0.3
    else if next > prev *. 10.0 then prev *. 10.0
    else Float.max next 1e-16
  in
  (* invariant: [ws.f] holds the residual at (alpha, !delta), and
     [ws.v_end]/[ws.i_end] that candidate's projection *)
  let rec iterate n =
    st.n_newton <- st.n_newton + 1;
    if converged p ws.f m then { alpha; delta = !delta; ok = true; iters = n }
    else if n >= max_iterations then { alpha; delta = !delta; ok = false; iters = n }
    else begin
      region_jacobian p st target alpha !delta;
      match solve_linear p m ~f:ws.f with
      | exception _ -> { alpha; delta = !delta; ok = false; iters = n }
      | () ->
        st.n_solves <- st.n_solves + 1;
        let m0 = merit p ws.f m in
        let rec backtrack step tries =
          let trial_delta = apply_step step in
          region_residual p st target ws.trial_alpha trial_delta ~f:ws.f_trial;
          let mt = merit p ws.f_trial m in
          if tries = 0 then trial_delta
          else if Float.is_nan mt || mt >= m0 then backtrack (step /. 2.0) (tries - 1)
          else trial_delta
        in
        let trial_delta = backtrack cfg.Config.damping 10 in
        let mt = merit p ws.f_trial m in
        if Float.is_nan mt then { alpha; delta = !delta; ok = false; iters = n }
        else begin
          Vec.blit_n m ws.trial_alpha alpha;
          delta := trial_delta;
          Vec.blit_n (m + 1) ws.f_trial ws.f;
          iterate (n + 1)
        end
    end
  in
  region_residual p st target alpha !delta ~f:ws.f;
  if Float.is_nan (merit p ws.f m) then { alpha; delta = !delta; ok = false; iters = 0 }
  else iterate 0

let solve_region ?cap p st target =
  let ws = p.ws in
  let m = st.active in
  let x0 = ws.alpha_a in
  if is_linear p then
    for r = 0 to m - 1 do
      x0.{r} <- st.i.{r + 1}
    done
  else if st.last_alpha_len = m then Vec.blit_n m ws.last_alpha x0
  else Vec.fill_n m x0 0.0;
  solve_region_from ?cap p st target x0 (initial_delta p st target)

(* Coarse explicit-Euler integration of the active nodes up to the target
   condition: a robust initial guess when the plain Newton start fails
   (e.g. a turn-on region whose condition node has only just activated and
   carries no current yet). The curvature seed lands in [ws.seed]. *)
let estimate_region p st target =
  let ws = p.ws in
  let m = st.active in
  let v = ws.est_v and i = ws.est_i in
  Vec.blit_n (m + 1) st.v v;
  Vec.fill_n (m + 1) i 0.0;
  let remaining = Float.max (p.t_end -. st.t) 1e-12 in
  let reached t_rel =
    match target with
    | Turn_on k0 -> drive p k0 ~t:(st.t +. t_rel) ~vb:v.{m} >= 0.0
    | Level { node; value } -> v.{node} <= value
  in
  let compute_currents t_rel =
    let j = ws.j in
    j.{m + 1} <- 0.0;
    for k = 1 to m do
      j.{k} <- edge_current p k ~t:(st.t +. t_rel) ~vb:v.{k - 1} ~va:v.{k}
    done;
    for k = 1 to m do
      i.{k} <- j.{k + 1} -. j.{k}
    done
  in
  let rec step t_rel n =
    if reached t_rel && t_rel > 0.0 then Some t_rel
    else if n = 0 || t_rel > remaining *. 4.0 then None
    else begin
      compute_currents t_rel;
      (* limit the per-step voltage change for stability *)
      let dt = ref (remaining /. 50.0) in
      for k = 1 to m do
        let rate = Float.abs i.{k} /. p.caps.(k - 1) in
        if rate > 0.0 then dt := Float.min !dt (0.08 /. rate)
      done;
      let dt = Float.max !dt 1e-16 in
      for k = 1 to m do
        v.{k} <- v.{k} +. (i.{k} /. p.caps.(k - 1) *. dt)
      done;
      step (t_rel +. dt) (n - 1)
    end
  in
  match step 0.0 600 with
  | None -> None
  | Some delta ->
    compute_currents delta;
    (if is_linear p then
       for r = 0 to m - 1 do
         ws.seed.{r} <- i.{r + 1}
       done
     else
       for r = 0 to m - 1 do
         ws.seed.{r} <- (i.{r + 1} -. st.i.{r + 1}) /. delta
       done);
    Some delta

(* Reject solutions that leave the physical operating range: committing
   them would poison every later region. Also reject regions whose
   quadratic pieces swing far outside the rails {e between} the matching
   points (the end states match but the waveform is garbage); bisecting
   the target then yields shorter, well-behaved pieces. *)
let plausible p st sol =
  let ws = p.ws in
  project p st sol.alpha sol.delta;
  let k_total = chain_length p in
  let lo = -0.3 and hi = p.vdd +. 0.3 in
  let ok = ref (Float.is_finite sol.delta && sol.delta > 0.0) in
  for k = 0 to k_total do
    let v = ws.v_end.{k} in
    if not (Float.is_finite v) || v < lo -. 0.7 || v > hi +. 0.7 then ok := false
  done;
  for k = 1 to (if is_linear p then 0 else st.active) do
    (* interior extremum of the quadratic piece, if any *)
    let a = sol.alpha.{k - 1} in
    if a <> 0.0 then begin
      let t_ext = -.st.i.{k} /. a in
      if t_ext > 0.0 && t_ext < sol.delta then begin
        let c = p.caps.(k - 1) in
        let v_ext = st.v.{k} +. (((st.i.{k} *. t_ext) +. (0.5 *. a *. t_ext *. t_ext)) /. c) in
        if v_ext < lo || v_ext > hi then ok := false
      end
    end
  done;
  !ok

(* Fixed-length fallback region: with the region length pinned, only the
   current-match equations remain and the Jacobian is purely tridiagonal.
   Always commits; guarantees forward progress. Works in [ws.alpha_a]
   (the primary attempt's buffer — dead by the time the fallback runs). *)
let solve_fixed p st delta =
  let ws = p.ws in
  let m = st.active in
  let cfg = p.cfg in
  let alpha = ws.alpha_a in
  if is_linear p then
    for r = 0 to m - 1 do
      alpha.{r} <- st.i.{r + 1}
    done
  else Vec.fill_n m alpha 0.0;
  let residual (a : Vec.t) ~(f : Vec.t) =
    let t' = st.t +. delta in
    project p st a delta;
    let j = ws.j in
    j.{m + 1} <- 0.0;
    for k = 1 to m do
      j.{k} <- edge_current p k ~t:t' ~vb:ws.v_end.{k - 1} ~va:ws.v_end.{k}
    done;
    for r = 0 to m - 1 do
      f.{r} <- ws.i_end.{r + 1} -. (j.{r + 2} -. j.{r + 1})
    done
  in
  let fixed_merit (f : Vec.t) =
    let acc = ref 0.0 in
    for r = 0 to m - 1 do
      acc := Float.max !acc (Float.abs f.{r} /. cfg.Config.current_tolerance)
    done;
    !acc
  in
  (* invariant: [ws.f] holds the residual at [alpha], and
     [ws.v_end]/[ws.i_end] the candidate's projection *)
  let rec iterate n =
    st.n_newton <- st.n_newton + 1;
    if fixed_merit ws.f <= 1.0 || n >= cfg.Config.max_iterations then ()
    else begin
      region_jacobian p st (Level { node = m; value = 0.0 }) alpha delta;
      match
        Tridiag.solve_into ~n:m ~lower:ws.lower ~diag:ws.diag ~upper:ws.upper ~cp:ws.cp
          ~dp:ws.dp ~b:ws.f ~x:ws.dx
      with
      | exception _ -> ()
      | () ->
        st.n_solves <- st.n_solves + 1;
        let m0 = fixed_merit ws.f in
        let rec backtrack step tries =
          for r = 0 to m - 1 do
            ws.trial_alpha.{r} <- alpha.{r} -. (step *. ws.dx.{r})
          done;
          residual ws.trial_alpha ~f:ws.f_trial;
          let mt = fixed_merit ws.f_trial in
          if tries = 0 then mt
          else if Float.is_nan mt || mt >= m0 then backtrack (step /. 2.0) (tries - 1)
          else mt
        in
        let mt = backtrack 1.0 8 in
        if Float.is_nan mt then ()
        else begin
          Vec.blit_n m ws.trial_alpha alpha;
          Vec.blit_n m ws.f_trial ws.f;
          iterate (n + 1)
        end
    end
  in
  residual alpha ~f:ws.f;
  iterate 0;
  { alpha; delta; ok = true; iters = 0 }

(* Step size for the fallback region: move the fastest node by ~0.1 V. *)
let fallback_delta p st =
  let m = st.active in
  let dt = ref ((p.t_end -. st.t) /. 20.0) in
  for k = 1 to m do
    let rate = Float.abs st.i.{k} /. p.caps.(k - 1) in
    if rate > 0.0 then dt := Float.min !dt (0.1 /. rate)
  done;
  Float.max !dt 1e-14

(* Append one piece (shared time span, per-node coefficients) to the
   workspace piece arena. The coefficient expressions are exactly the
   ones the old boxed [Waveform.piece] construction used, so the stored
   columns are bit-identical to the former record fields. *)
let append_piece p st ~delta ~(alpha : Vec.t option) =
  let ws = p.ws in
  let k_total = chain_length p in
  let r = st.n_pieces in
  Workspace.ensure_pieces ws ~live:r (r + 1);
  let stride = ws.Workspace.piece_stride in
  let t0c = ws.Workspace.piece_t0
  and dtc = ws.Workspace.piece_dt
  and v0c = ws.Workspace.piece_v0
  and dvc = ws.Workspace.piece_dv
  and ddvc = ws.Workspace.piece_ddv in
  t0c.{r} <- st.t;
  dtc.{r} <- delta;
  let linear = is_linear p in
  for k = 1 to k_total do
    let o = (r * stride) + (k - 1) in
    v0c.{o} <- st.v.{k};
    match alpha with
    | Some a when k <= st.active ->
      if linear then begin
        dvc.{o} <- a.{k - 1} /. p.caps.(k - 1);
        ddvc.{o} <- 0.0
      end
      else begin
        dvc.{o} <- st.i.{k} /. p.caps.(k - 1);
        ddvc.{o} <- a.{k - 1} /. p.caps.(k - 1)
      end
    | Some _ | None ->
      dvc.{o} <- 0.0;
      ddvc.{o} <- 0.0
  done;
  st.n_pieces <- r + 1

(* append this region's quadratic pieces and advance the state *)
let commit p st { alpha; delta; ok; iters = _ } =
  let ws = p.ws in
  let k_total = chain_length p in
  let delta = Float.max delta 1e-16 in
  project p st alpha delta;
  append_piece p st ~delta ~alpha:(Some alpha);
  for k = 1 to k_total do
    st.v.{k} <- ws.v_end.{k};
    if k <= st.active then st.i.{k} <- ws.i_end.{k}
  done;
  st.t <- st.t +. delta;
  st.n_regions <- st.n_regions + 1;
  Vec.blit_n st.active alpha ws.last_alpha;
  st.last_alpha_len <- st.active;
  if not ok then st.n_fail <- st.n_fail + 1

let debug = ref false

let target_label = function
  | Turn_on k -> Printf.sprintf "turnon%d" k
  | Level { node; value } -> Printf.sprintf "level(%d,%.3f)" node value

(* Structured per-region diagnostics, replacing the old stderr printf:
   an instant trace event carrying the state the printf used to dump.
   The deprecated [debug] flag routes events to the stderr line sink
   when no other sink is installed, so old invocations keep a per-region
   stderr trace (now as JSON). *)
let trace_region p st target sol =
  if !debug && not (Trace.enabled ()) then Trace.enable_stderr ();
  if Trace.enabled () then begin
    let m = st.active in
    region_residual p st target sol.alpha sol.delta ~f:p.ws.f_trial;
    let floats (xs : Vec.t) =
      Json.List (List.init (Vec.dim xs) (fun r -> Json.Float xs.{r}))
    in
    let floats_prefix n (xs : Vec.t) = Json.List (List.init n (fun r -> Json.Float xs.{r})) in
    Trace.instant ~name:"qwm.region" ~cat:"qwm"
      ~args:
        [
          ("t_ps", Json.Float (st.t *. 1e12));
          ("active", Json.Int st.active);
          ("target", Json.String (target_label target));
          ("ok", Json.Bool sol.ok);
          ("iters", Json.Int sol.iters);
          ("delta_ps", Json.Float (sol.delta *. 1e12));
          ("merit", Json.Float (merit p p.ws.f_trial m));
          ("v", floats st.v);
          ("i", floats st.i);
          ("alpha", floats_prefix m sol.alpha);
        ]
      ()
  end

(* Attempt a region. Escalation ladder on Newton failure: retry from an
   explicit-Euler warm start; bisect the target voltage; finally take a
   short fixed-length current-matching step so the state always advances
   physically. The primary attempt works in [ws.alpha_a] and the retry in
   [ws.alpha_b], so a failed retry can still fall back to the primary's
   solution. *)
let rec advance p st target depth =
  let ws = p.ws in
  let sol =
    (* a cheap capped attempt first; the explicit-Euler warm start earns
       the full iteration budget only when the cheap start fails *)
    let first = solve_region ~cap:(p.cfg.Config.max_iterations / 4) p st target in
    if first.ok then first
    else
      match estimate_region p st target with
      | Some delta0 ->
        Vec.blit_n st.active ws.seed ws.alpha_b;
        let retry = solve_region_from p st target ws.alpha_b delta0 in
        if retry.ok then retry else first
      | None -> first
  in
  if !debug || Trace.enabled () then trace_region p st target sol;
  Metrics.observe h_newton_per_region (float_of_int sol.iters);
  if sol.ok && plausible p st sol then commit p st sol
  else begin
    let node, goal =
      match target with
      | Level { node; value } -> (node, value)
      | Turn_on k0 ->
        let m = st.active in
        (m, gate_norm p k0 st.t -. threshold p k0 ~t:st.t ~vb:st.v.{m})
    in
    let mid = (st.v.{node} +. goal) /. 2.0 in
    if depth > 0 && Float.abs (mid -. st.v.{node}) >= 1e-4 then begin
      st.n_bisect <- st.n_bisect + 1;
      advance p st (Level { node; value = mid }) (depth - 1);
      advance p st target (depth - 1)
    end
    else begin
      (* last resort: a short fixed-length step that only matches currents *)
      st.n_fail <- st.n_fail + 1;
      commit p st (solve_fixed p st (fallback_delta p st))
    end
  end

let refresh_currents p st =
  let ws = p.ws in
  let m = st.active in
  let j = ws.j in
  j.{m + 1} <- 0.0;
  for k = 1 to m do
    j.{k} <- edge_current p k ~t:st.t ~vb:st.v.{k - 1} ~va:st.v.{k}
  done;
  for k = 1 to m do
    st.i.{k} <- j.{k + 1} -. j.{k}
  done

(* first instant the (inactive-chain) bottom transistor's gate drive
   reaches threshold, by sampling + bisection; None if never *)
let find_gate_turn_on p k0 ~t_from =
  let f t = drive p k0 ~t ~vb:0.0 in
  if f t_from >= 0.0 then Some t_from
  else begin
    let samples = 512 in
    let dt = (p.t_end -. t_from) /. float_of_int samples in
    let rec scan i =
      if i > samples then None
      else begin
        let t = t_from +. (float_of_int i *. dt) in
        if f t >= 0.0 then begin
          let rec bisect lo hi n =
            if n = 0 then Some hi
            else begin
              let mid = (lo +. hi) /. 2.0 in
              if f mid >= 0.0 then bisect lo mid (n - 1) else bisect mid hi (n - 1)
            end
          in
          bisect (t -. dt) t 60
        end
        else scan (i + 1)
      end
    in
    scan 1
  end

let finalize p st alloc0 =
  Metrics.incr c_solves;
  Metrics.add c_regions st.n_regions;
  Metrics.add c_turn_ons st.n_turn_ons;
  Metrics.add c_newton st.n_newton;
  Metrics.add c_linear_solves st.n_solves;
  Metrics.add c_bisections st.n_bisect;
  Metrics.add c_failures st.n_fail;
  Metrics.observe h_regions_per_solve (float_of_int st.n_regions);
  (* allocation accounting for the solve loop proper (waveform assembly
     below is inherent output, not hot path) *)
  let d = Alloc.since alloc0 in
  Metrics.add c_alloc_minor (int_of_float d.Alloc.minor_words);
  Metrics.add c_alloc_promoted (int_of_float d.Alloc.promoted_words);
  if st.n_regions > 0 then
    Metrics.observe h_alloc_per_region
      (d.Alloc.minor_words /. float_of_int st.n_regions);
  let ws = p.ws in
  let k_total = chain_length p in
  let t_solved = Float.max st.t (p.t_end *. 1e-3) in
  let n = st.n_pieces in
  let quads =
    if n = 0 then
      (* no pieces ever committed: one flat hold per node, mirrored back
         to real coordinates exactly as the old piece-list path did *)
      Array.init k_total (fun idx ->
          let piece =
            { Waveform.t0 = 0.0; dt = t_solved; v0 = st.v.{idx + 1}; dv = 0.0; ddv = 0.0 }
          in
          let piece =
            match p.rail with
            | Chain.Pull_down -> piece
            | Chain.Pull_up ->
              {
                piece with
                Waveform.v0 = p.vdd -. piece.Waveform.v0;
                dv = -.piece.Waveform.dv;
                ddv = -.piece.Waveform.ddv;
              }
          in
          Waveform.quadratic_of_pieces [ piece ])
    else begin
      (* Pack the arena into one fresh per-report slab: [k_total * n * 5]
         floats, node [idx]'s five columns contiguous at [idx * n * 5].
         Reports are cached and shared immutably across domains forever,
         so they get their own storage rather than recycled arena memory;
         the pull-up mirror is applied during the pack (same expressions
         as the old per-piece [unnorm]). *)
      let stride = ws.Workspace.piece_stride in
      let t0c = ws.Workspace.piece_t0
      and dtc = ws.Workspace.piece_dt
      and v0c = ws.Workspace.piece_v0
      and dvc = ws.Workspace.piece_dv
      and ddvc = ws.Workspace.piece_ddv in
      let slab = Vec.create (k_total * n * 5) in
      Array.init k_total (fun idx ->
          let base = idx * n * 5 in
          let t0v = Vec.view slab ~pos:base ~len:n in
          let dtv = Vec.view slab ~pos:(base + n) ~len:n in
          let v0v = Vec.view slab ~pos:(base + (2 * n)) ~len:n in
          let dvv = Vec.view slab ~pos:(base + (3 * n)) ~len:n in
          let ddvv = Vec.view slab ~pos:(base + (4 * n)) ~len:n in
          (match p.rail with
          | Chain.Pull_down ->
            for r = 0 to n - 1 do
              let o = (r * stride) + idx in
              t0v.{r} <- t0c.{r};
              dtv.{r} <- dtc.{r};
              v0v.{r} <- v0c.{o};
              dvv.{r} <- dvc.{o};
              ddvv.{r} <- ddvc.{o}
            done
          | Chain.Pull_up ->
            for r = 0 to n - 1 do
              let o = (r * stride) + idx in
              t0v.{r} <- t0c.{r};
              dtv.{r} <- dtc.{r};
              v0v.{r} <- p.vdd -. v0c.{o};
              dvv.{r} <- -.dvc.{o};
              ddvv.{r} <- -.ddvc.{o}
            done);
          Waveform.of_columns ~t0:t0v ~dt:dtv ~v0:v0v ~dv:dvv ~ddv:ddvv)
    end
  in
  {
    node_quadratics = quads;
    critical_times = List.rev st.crits;
    t_solved = st.t;
    stats =
      {
        regions = st.n_regions;
        turn_ons = st.n_turn_ons;
        newton_iterations = st.n_newton;
        linear_solves = st.n_solves;
        bisections = st.n_bisect;
        failures = st.n_fail;
      };
  }

(* every other argument is labeled, so [?workspace] could only be erased
   by an unlabeled application that never happens; the mli fixes the type *)
let[@warning "-16"] solve ?workspace ~model ~config ~scenario ~chain ~initial =
  let alloc0 = Alloc.sample () in
  let k_total = Chain.length chain in
  if Array.length initial <> k_total then
    invalid_arg "Qwm_solver.solve: initial voltage count mismatch";
  let wsp =
    match workspace with Some w -> w | None -> Workspace.for_current_domain ()
  in
  Workspace.ensure wsp k_total;
  let bufs = wsp.Workspace.bufs in
  let tech = scenario.Scenario.tech in
  let gates =
    Array.map
      (fun (e : Chain.edge) ->
        Option.map (fun g -> Scenario.source scenario g) e.Chain.gate)
      chain.Chain.edges
  in
  let p =
    {
      model;
      vdd = tech.Tqwm_device.Tech.vdd;
      rail = chain.Chain.rail;
      edges = chain.Chain.edges;
      gates;
      caps = chain.Chain.caps;
      t_end = scenario.Scenario.t_end;
      cfg = config;
      ws = bufs;
    }
  in
  let norm v = match p.rail with Chain.Pull_down -> v | Chain.Pull_up -> p.vdd -. v in
  let st =
    let v = Vec.view bufs.Workspace.st_v ~pos:0 ~len:(k_total + 1) in
    let i = Vec.view bufs.Workspace.st_i ~pos:0 ~len:(k_total + 1) in
    for k = 0 to k_total do
      v.{k} <- (if k = 0 then 0.0 else norm initial.(k - 1))
    done;
    Vec.fill_n (k_total + 1) i 0.0;
    {
      t = 0.0;
      v;
      i;
      active = 0;
      n_pieces = 0;
      crits = [];
      n_regions = 0;
      n_turn_ons = 0;
      n_newton = 0;
      n_solves = 0;
      n_bisect = 0;
      n_fail = 0;
      last_alpha_len = -1;
    }
  in
  let remaining_levels = ref (List.map (fun frac -> frac *. p.vdd) config.Config.levels) in
  let end_level = config.Config.end_fraction *. p.vdd in
  let rec loop () =
    if st.t >= p.t_end || st.n_regions >= config.Config.max_regions then ()
    else if st.active = 0 then begin
      (* waiting for the bottom transistor's gate to reach threshold *)
      match find_gate_turn_on p 1 ~t_from:st.t with
      | None ->
        (* never conducts: hold everything flat until the window ends *)
        append_piece p st ~delta:(p.t_end -. st.t) ~alpha:None;
        st.t <- p.t_end
      | Some t_on ->
        if t_on > st.t +. 1e-16 then begin
          append_piece p st ~delta:(t_on -. st.t) ~alpha:None;
          st.t <- t_on
        end;
        st.crits <- st.t :: st.crits;
        st.n_turn_ons <- st.n_turn_ons + 1;
        st.active <- extend_front p 1;
        refresh_currents p st;
        loop ()
    end
    else if st.active < k_total then begin
      let k0 = st.active + 1 in
      (* fire within tolerance: a just-solved turn-on region leaves the
         drive within the Newton voltage tolerance of zero *)
      let fire_margin = -10.0 *. config.Config.voltage_tolerance in
      if drive p k0 ~t:st.t ~vb:st.v.{st.active} >= fire_margin then begin
        (* already past threshold: fire the critical point immediately *)
        st.crits <- st.t :: st.crits;
        st.n_turn_ons <- st.n_turn_ons + 1;
        st.active <- extend_front p k0;
        refresh_currents p st;
        loop ()
      end
      else begin
        advance p st (Turn_on k0) config.Config.bisect_depth;
        loop ()
      end
    end
    else begin
      (* all transistors on: follow the output down the level ladder *)
      let v_out = st.v.{k_total} in
      if v_out <= end_level then ()
      else begin
        let rec pick () =
          match !remaining_levels with
          | [] -> None
          | l :: rest ->
            if l < v_out -. 1e-6 then Some l
            else begin
              remaining_levels := rest;
              pick ()
            end
        in
        match pick () with
        | None -> ()
        | Some level ->
          remaining_levels := List.tl !remaining_levels;
          advance p st (Level { node = k_total; value = level }) config.Config.bisect_depth;
          loop ()
      end
    end
  in
  loop ();
  finalize p st alloc0
