open Tqwm_circuit
module Device_model = Tqwm_device.Device_model
module Source = Tqwm_wave.Source
module Waveform = Tqwm_wave.Waveform
module Tridiag = Tqwm_num.Tridiag
module Bordered = Tqwm_num.Bordered
module Sherman_morrison = Tqwm_num.Sherman_morrison
module Lu = Tqwm_num.Lu
module Mat = Tqwm_num.Mat
module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Json = Tqwm_obs.Json

(* Global solver telemetry; one atomic add per counter per solve. *)
let c_solves = Metrics.counter "qwm.solves"
let c_regions = Metrics.counter "qwm.regions"
let c_turn_ons = Metrics.counter "qwm.turn_ons"
let c_newton = Metrics.counter "qwm.newton_iterations"
let c_linear_solves = Metrics.counter "qwm.linear_solves"
let c_bisections = Metrics.counter "qwm.bisections"
let c_failures = Metrics.counter "qwm.failures"

let h_regions_per_solve =
  Metrics.histogram "qwm.regions_per_solve"
    ~bounds:[| 1.0; 2.0; 4.0; 8.0; 16.0; 32.0; 64.0; 128.0 |]

let h_newton_per_region =
  Metrics.histogram "qwm.newton_per_region"
    ~bounds:[| 1.0; 2.0; 3.0; 5.0; 8.0; 13.0; 21.0; 34.0 |]

type stats = {
  regions : int;
  turn_ons : int;
  newton_iterations : int;
  linear_solves : int;
  bisections : int;
  failures : int;
}

type result = {
  node_quadratics : Waveform.quadratic array;
  critical_times : float list;
  t_solved : float;
  stats : stats;
}

(* All internal voltages are in "pull-down-normalized" coordinates: the rail
   is 0 V and nodes discharge toward it. Pull-up chains are mirrored about
   VDD on the way in and back on the way out. *)
type problem = {
  model : Device_model.t;
  vdd : float;
  rail : Chain.rail;
  edges : Chain.edge array;  (** edge k at index k-1 *)
  gates : Source.t option array;
  caps : float array;  (** node k capacitance at index k-1 *)
  t_end : float;
  cfg : Config.t;
}

type state = {
  mutable t : float;
  v : float array;  (** normalized voltages, index 0..K; v.(0) = 0 rail *)
  i : float array;  (** normalized node currents C dv/dt, index 0..K *)
  mutable active : int;  (** nodes 1..active evolve; the rest are frozen *)
  pieces : Waveform.piece list array;  (** reversed, per node 1..K *)
  mutable crits : float list;  (** reversed *)
  mutable n_regions : int;
  mutable n_turn_ons : int;
  mutable n_newton : int;
  mutable n_solves : int;
  mutable n_bisect : int;
  mutable n_fail : int;
  mutable last_alpha : float array;  (** warm start: previous region's curvature *)
}

let chain_length p = Array.length p.edges

let real_of_norm p x =
  match p.rail with Chain.Pull_down -> x | Chain.Pull_up -> p.vdd -. x

let gate_real p k t =
  match p.gates.(k - 1) with Some s -> Source.value s t | None -> 0.0

let gate_real_slope p k t =
  match p.gates.(k - 1) with Some s -> Source.derivative s t | None -> 0.0

let gate_norm p k t = real_of_norm p (gate_real p k t)

let gate_norm_slope p k t =
  match p.rail with
  | Chain.Pull_down -> gate_real_slope p k t
  | Chain.Pull_up -> -.gate_real_slope p k t

(* terminal voltages of edge k for normalized below/above node voltages *)
let terminal_voltages p k ~t ~vb ~va =
  match p.rail with
  | Chain.Pull_down -> { Device_model.input = gate_real p k t; src = va; snk = vb }
  | Chain.Pull_up ->
    { Device_model.input = gate_real p k t; src = p.vdd -. vb; snk = p.vdd -. va }

(* J'_k: normalized current flowing from node k to node k-1 *)
let edge_current p k ~t ~vb ~va =
  p.model.Device_model.iv p.edges.(k - 1).Chain.device (terminal_voltages p k ~t ~vb ~va)

(* (dJ'_k/dv'_below, dJ'_k/dv'_above) *)
let edge_current_derivs p k ~t ~vb ~va =
  let tv = terminal_voltages p k ~t ~vb ~va in
  let dsrc, dsnk = p.model.Device_model.iv_derivatives p.edges.(k - 1).Chain.device tv in
  match p.rail with
  | Chain.Pull_down -> (dsnk, dsrc)
  | Chain.Pull_up -> (-.dsrc, -.dsnk)

(* explicit time derivative of J'_k through a moving gate drive *)
let edge_current_dt p k ~t ~vb ~va =
  let slope = gate_real_slope p k t in
  if slope = 0.0 then 0.0
  else begin
    let tv = terminal_voltages p k ~t ~vb ~va in
    let h = 1e-5 in
    let device = p.edges.(k - 1).Chain.device in
    let up = p.model.Device_model.iv device { tv with input = tv.input +. h } in
    let dn = p.model.Device_model.iv device { tv with input = tv.input -. h } in
    (up -. dn) /. (2.0 *. h) *. slope
  end

(* body-corrected threshold of edge k seen from its below node *)
let threshold p k ~t ~vb =
  let real_b = real_of_norm p vb in
  let tv = { Device_model.input = gate_real p k t; src = real_b; snk = real_b } in
  p.model.Device_model.threshold p.edges.(k - 1).Chain.device tv

let threshold_slope p k ~t ~vb =
  let h = 1e-5 in
  (threshold p k ~t ~vb:(vb +. h) -. threshold p k ~t ~vb:(vb -. h)) /. (2.0 *. h)

(* gate drive in excess of threshold; the transistor conducts when >= 0 *)
let drive p k ~t ~vb = gate_norm p k t -. vb -. threshold p k ~t ~vb

(* nodes connected to the front through wire edges activate together *)
let rec extend_front p a =
  if a >= chain_length p then a
  else if Chain.is_transistor p.edges.(a) then a
  else extend_front p (a + 1)

type target =
  | Turn_on of int  (** edge index whose turn-on ends the region *)
  | Level of { node : int; value : float }

let is_linear p = p.cfg.Config.waveform_model = Config.Linear

(* Region-end node voltages and currents for a candidate (x, delta).
   Quadratic model (the paper's): x_k is the current slope [alpha_k], so
   [v] gains i*d + alpha*d^2/2 over the region and [i] gains alpha*d.
   Linear model: x_k is the region's (constant) current itself, so [v]
   gains x*d and the end current is x. *)
let project p st x delta =
  let k_total = chain_length p in
  let v_end = Array.make (k_total + 1) 0.0 and i_end = Array.make (k_total + 1) 0.0 in
  let linear = is_linear p in
  for k = 1 to k_total do
    if k <= st.active then begin
      let c = p.caps.(k - 1) in
      if linear then begin
        v_end.(k) <- st.v.(k) +. (x.(k - 1) *. delta /. c);
        i_end.(k) <- x.(k - 1)
      end
      else begin
        v_end.(k) <-
          st.v.(k) +. (((st.i.(k) *. delta) +. (0.5 *. x.(k - 1) *. delta *. delta)) /. c);
        i_end.(k) <- st.i.(k) +. (x.(k - 1) *. delta)
      end
    end
    else v_end.(k) <- st.v.(k)
  done;
  (v_end, i_end)

let region_residual p st target alpha delta =
  let m = st.active in
  let t' = st.t +. delta in
  let v_end, i_end = project p st alpha delta in
  let j = Array.make (m + 2) 0.0 in
  for k = 1 to m do
    j.(k) <- edge_current p k ~t:t' ~vb:v_end.(k - 1) ~va:v_end.(k)
  done;
  (* j.(m+1) stays 0: the edge above the front is an off transistor *)
  let f = Array.make (m + 1) 0.0 in
  for k = 1 to m do
    f.(k - 1) <- i_end.(k) -. (j.(k + 1) -. j.(k))
  done;
  (match target with
  | Turn_on k0 -> f.(m) <- drive p k0 ~t:t' ~vb:v_end.(m)
  | Level { node; value } -> f.(m) <- v_end.(node) -. value);
  (f, v_end, i_end)

(* Jacobian of the region system, returned as its structural components:
   the alpha-block tridiagonal, the dense last (d/d delta) column, the
   single non-zero of the last row (at alpha_m) and the corner. *)
let region_jacobian p st target alpha delta =
  let m = st.active in
  let linear = is_linear p in
  let t' = st.t +. delta in
  let v_end, i_end = project p st alpha delta in
  (* dv_end/dx per node, and di_end/dx (shared by all nodes) *)
  let h =
    Array.init m (fun k ->
        if linear then delta /. p.caps.(k) else 0.5 *. delta *. delta /. p.caps.(k))
  in
  let di_dx = if linear then 1.0 else delta in
  let w = Array.make (m + 1) 0.0 in
  for k = 1 to m do
    w.(k) <- i_end.(k) /. p.caps.(k - 1)
  done;
  let lower = Array.make m 0.0
  and diag = Array.make m 0.0
  and upper = Array.make m 0.0
  and last_col = Array.make m 0.0 in
  (* each edge's derivatives are shared by the rows of both its nodes *)
  let derivs =
    Array.init m (fun idx ->
        let k = idx + 1 in
        edge_current_derivs p k ~t:t' ~vb:v_end.(k - 1) ~va:v_end.(k))
  in
  let deriv_ts =
    Array.init m (fun idx ->
        let k = idx + 1 in
        edge_current_dt p k ~t:t' ~vb:v_end.(k - 1) ~va:v_end.(k))
  in
  for k = 1 to m do
    let r = k - 1 in
    let djk_b, djk_a = derivs.(r) in
    let djk_t = deriv_ts.(r) in
    let djk1_b, djk1_a, djk1_t =
      if k < m then begin
        let b, a = derivs.(r + 1) in
        (b, a, deriv_ts.(r + 1))
      end
      else (0.0, 0.0, 0.0)
    in
    diag.(r) <- di_dx +. ((djk_a -. djk1_b) *. h.(r));
    if k < m then upper.(r) <- -.djk1_a *. h.(r + 1);
    if k > 1 then lower.(r) <- djk_b *. h.(r - 2 + 1);
    let dj_dt_total =
      (* d/d delta of -(J_{k+1} - J_k) through voltages and gate motion *)
      -.((djk1_b *. w.(k)) +. (djk1_a *. (if k < m then w.(k + 1) else 0.0)) +. djk1_t)
      +. (djk_b *. w.(k - 1))
      +. (djk_a *. w.(k))
      +. djk_t
    in
    (* di_end/d delta: alpha for the quadratic model, 0 for the linear *)
    last_col.(r) <- (if linear then 0.0 else alpha.(r)) +. dj_dt_total
  done;
  let last_row_m, corner =
    match target with
    | Turn_on k0 ->
      let vth' = threshold_slope p k0 ~t:t' ~vb:v_end.(m) in
      let d_alpha = (-1.0 -. vth') *. h.(m - 1) in
      let d_delta = gate_norm_slope p k0 t' -. ((1.0 +. vth') *. w.(m)) in
      (d_alpha, d_delta)
    | Level _ -> (h.(m - 1), w.(m))
  in
  (lower, diag, upper, last_col, last_row_m, corner)

let solve_linear p (lower, diag, upper, last_col, last_row_m, corner) f =
  let m = Array.length diag in
  match p.cfg.Config.linear_solver with
  | Config.Dense_lu ->
    let a = Mat.create (m + 1) (m + 1) in
    for r = 0 to m - 1 do
      Mat.set a r r diag.(r);
      if r > 0 then Mat.set a r (r - 1) lower.(r);
      if r < m - 1 then Mat.set a r (r + 1) upper.(r);
      Mat.set a r m last_col.(r)
    done;
    Mat.set a m (m - 1) last_row_m;
    Mat.set a m m corner;
    Lu.solve a f
  | Config.Bordered ->
    let core = Tridiag.make ~lower ~diag ~upper in
    let last_row = Array.make m 0.0 in
    last_row.(m - 1) <- last_row_m;
    Bordered.solve { Bordered.core; last_col; last_row; corner } f
  | Config.Sherman_morrison ->
    (* the paper's form: an (m+1) tridiagonal matrix (the last row's only
       non-zero is adjacent to the corner, and the last column's entry in
       row m-1 fits the super-diagonal) plus a rank-1 update carrying the
       remaining last-column entries *)
    let lower' = Array.make (m + 1) 0.0
    and diag' = Array.make (m + 1) 0.0
    and upper' = Array.make (m + 1) 0.0 in
    Array.blit lower 0 lower' 0 m;
    Array.blit diag 0 diag' 0 m;
    Array.blit upper 0 upper' 0 m;
    upper'.(m - 1) <- last_col.(m - 1);
    lower'.(m) <- last_row_m;
    diag'.(m) <- corner;
    let u = Array.make (m + 1) 0.0 in
    for r = 0 to m - 2 do
      u.(r) <- last_col.(r)
    done;
    let v = Array.make (m + 1) 0.0 in
    v.(m) <- 1.0;
    let core = Tridiag.make ~lower:lower' ~diag:diag' ~upper:upper' in
    Sherman_morrison.solve_tridiag core ~u ~v f

let converged p f =
  let m = Array.length f - 1 in
  let ok = ref (Float.abs f.(m) <= p.cfg.Config.voltage_tolerance) in
  for k = 0 to m - 1 do
    if Float.abs f.(k) > p.cfg.Config.current_tolerance then ok := false
  done;
  !ok

(* first-order guess of the region length from the target node's slope *)
let initial_delta p st target =
  let fallback = 5e-12 in
  let guess =
    match target with
    | Level { node; value } ->
      let rate = -.st.i.(node) /. p.caps.(node - 1) in
      if rate > 1e3 then (st.v.(node) -. value) /. rate else fallback
    | Turn_on k0 ->
      let m = st.active in
      let target_v = gate_norm p k0 st.t -. threshold p k0 ~t:st.t ~vb:st.v.(m) in
      let rate = -.st.i.(m) /. p.caps.(m - 1) in
      if rate > 1e3 then (st.v.(m) -. target_v) /. rate else fallback
  in
  Float.min (Float.max guess 1e-14) (Float.max (p.t_end *. 2.0) 1e-12)

type region_solution = { alpha : float array; delta : float; ok : bool; iters : int }

(* Scale-free residual magnitude: current matches in units of the current
   tolerance, the end condition in units of the voltage tolerance. *)
let merit p f =
  let m = Array.length f - 1 in
  let acc = ref (Float.abs f.(m) /. p.cfg.Config.voltage_tolerance) in
  for k = 0 to m - 1 do
    acc := Float.max !acc (Float.abs f.(k) /. p.cfg.Config.current_tolerance)
  done;
  !acc

(* Newton warm start from a given candidate (used after the explicit
   estimator has produced a good guess). *)
let solve_region_from ?cap p st target alpha0 delta0 =
  let m = st.active in
  let cfg = p.cfg in
  let max_iterations = Option.value cap ~default:cfg.Config.max_iterations in
  let alpha = Array.copy alpha0 in
  let delta = ref (Float.max delta0 1e-15) in
  let apply_step step dx =
    let trial_alpha = Array.init m (fun r -> alpha.(r) -. (step *. dx.(r))) in
    let prev = !delta in
    let next = prev -. (step *. dx.(m)) in
    let trial_delta =
      if next <= 0.0 then prev *. 0.3
      else if next > prev *. 10.0 then prev *. 10.0
      else Float.max next 1e-16
    in
    (trial_alpha, trial_delta)
  in
  let rec iterate n f0 =
    st.n_newton <- st.n_newton + 1;
    if converged p f0 then { alpha; delta = !delta; ok = true; iters = n }
    else if n >= max_iterations then { alpha; delta = !delta; ok = false; iters = n }
    else begin
      let jac = region_jacobian p st target alpha !delta in
      match solve_linear p jac f0 with
      | exception _ -> { alpha; delta = !delta; ok = false; iters = n }
      | dx ->
        st.n_solves <- st.n_solves + 1;
        let m0 = merit p f0 in
        let rec backtrack step tries =
          let trial_alpha, trial_delta = apply_step step dx in
          let f, _, _ = region_residual p st target trial_alpha trial_delta in
          let mt = merit p f in
          if tries = 0 then (trial_alpha, trial_delta, f, mt)
          else if Float.is_nan mt || mt >= m0 then backtrack (step /. 2.0) (tries - 1)
          else (trial_alpha, trial_delta, f, mt)
        in
        let trial_alpha, trial_delta, f, mt = backtrack cfg.Config.damping 10 in
        if Float.is_nan mt then { alpha; delta = !delta; ok = false; iters = n }
        else begin
          Array.blit trial_alpha 0 alpha 0 m;
          delta := trial_delta;
          iterate (n + 1) f
        end
    end
  in
  let f0, _, _ = region_residual p st target alpha !delta in
  if Float.is_nan (merit p f0) then { alpha; delta = !delta; ok = false; iters = 0 }
  else iterate 0 f0

let solve_region ?cap p st target =
  let m = st.active in
  let x0 =
    if is_linear p then Array.init m (fun r -> st.i.(r + 1))
    else if Array.length st.last_alpha = m then Array.copy st.last_alpha
    else Array.make m 0.0
  in
  solve_region_from ?cap p st target x0 (initial_delta p st target)

(* Coarse explicit-Euler integration of the active nodes up to the target
   condition: a robust initial guess when the plain Newton start fails
   (e.g. a turn-on region whose condition node has only just activated and
   carries no current yet). *)
let estimate_region p st target =
  let m = st.active in
  let v = Array.copy st.v in
  let i = Array.make (m + 1) 0.0 in
  let remaining = Float.max (p.t_end -. st.t) 1e-12 in
  let reached t_rel =
    match target with
    | Turn_on k0 -> drive p k0 ~t:(st.t +. t_rel) ~vb:v.(m) >= 0.0
    | Level { node; value } -> v.(node) <= value
  in
  let compute_currents t_rel =
    let j = Array.make (m + 2) 0.0 in
    for k = 1 to m do
      j.(k) <- edge_current p k ~t:(st.t +. t_rel) ~vb:v.(k - 1) ~va:v.(k)
    done;
    for k = 1 to m do
      i.(k) <- j.(k + 1) -. j.(k)
    done
  in
  let rec step t_rel n =
    if reached t_rel && t_rel > 0.0 then Some t_rel
    else if n = 0 || t_rel > remaining *. 4.0 then None
    else begin
      compute_currents t_rel;
      (* limit the per-step voltage change for stability *)
      let dt = ref (remaining /. 50.0) in
      for k = 1 to m do
        let rate = Float.abs i.(k) /. p.caps.(k - 1) in
        if rate > 0.0 then dt := Float.min !dt (0.08 /. rate)
      done;
      let dt = Float.max !dt 1e-16 in
      for k = 1 to m do
        v.(k) <- v.(k) +. (i.(k) /. p.caps.(k - 1) *. dt)
      done;
      step (t_rel +. dt) (n - 1)
    end
  in
  match step 0.0 600 with
  | None -> None
  | Some delta ->
    compute_currents delta;
    let seed =
      if is_linear p then Array.init m (fun r -> i.(r + 1))
      else Array.init m (fun r -> (i.(r + 1) -. st.i.(r + 1)) /. delta)
    in
    Some (seed, delta)

(* Reject solutions that leave the physical operating range: committing
   them would poison every later region. Also reject regions whose
   quadratic pieces swing far outside the rails {e between} the matching
   points (the end states match but the waveform is garbage); bisecting
   the target then yields shorter, well-behaved pieces. *)
let plausible p st sol =
  let v_end, _ = project p st sol.alpha sol.delta in
  let lo = -0.3 and hi = p.vdd +. 0.3 in
  let ok = ref (Float.is_finite sol.delta && sol.delta > 0.0) in
  Array.iter
    (fun v -> if not (Float.is_finite v) || v < lo -. 0.7 || v > hi +. 0.7 then ok := false)
    v_end;
  for k = 1 to (if is_linear p then 0 else st.active) do
    (* interior extremum of the quadratic piece, if any *)
    let a = sol.alpha.(k - 1) in
    if a <> 0.0 then begin
      let t_ext = -.st.i.(k) /. a in
      if t_ext > 0.0 && t_ext < sol.delta then begin
        let c = p.caps.(k - 1) in
        let v_ext = st.v.(k) +. (((st.i.(k) *. t_ext) +. (0.5 *. a *. t_ext *. t_ext)) /. c) in
        if v_ext < lo || v_ext > hi then ok := false
      end
    end
  done;
  !ok

(* Fixed-length fallback region: with the region length pinned, only the
   current-match equations remain and the Jacobian is purely tridiagonal.
   Always commits; guarantees forward progress. *)
let solve_fixed p st delta =
  let m = st.active in
  let cfg = p.cfg in
  let alpha =
    if is_linear p then Array.init m (fun r -> st.i.(r + 1)) else Array.make m 0.0
  in
  let residual a =
    let t' = st.t +. delta in
    let v_end, i_end = project p st a delta in
    let j = Array.make (m + 2) 0.0 in
    for k = 1 to m do
      j.(k) <- edge_current p k ~t:t' ~vb:v_end.(k - 1) ~va:v_end.(k)
    done;
    Array.init m (fun r -> i_end.(r + 1) -. (j.(r + 2) -. j.(r + 1)))
  in
  let fixed_merit f =
    Array.fold_left
      (fun acc x -> Float.max acc (Float.abs x /. cfg.Config.current_tolerance))
      0.0 f
  in
  let rec iterate n f0 =
    st.n_newton <- st.n_newton + 1;
    if fixed_merit f0 <= 1.0 || n >= cfg.Config.max_iterations then alpha
    else begin
      let lower, diag, upper, _, _, _ =
        region_jacobian p st (Level { node = m; value = 0.0 }) alpha delta
      in
      match Tridiag.solve (Tridiag.make ~lower ~diag ~upper) f0 with
      | exception _ -> alpha
      | dx ->
        st.n_solves <- st.n_solves + 1;
        let m0 = fixed_merit f0 in
        let rec backtrack step tries =
          let trial = Array.init m (fun r -> alpha.(r) -. (step *. dx.(r))) in
          let f = residual trial in
          let mt = fixed_merit f in
          if tries = 0 then (trial, f, mt)
          else if Float.is_nan mt || mt >= m0 then backtrack (step /. 2.0) (tries - 1)
          else (trial, f, mt)
        in
        let trial, f, mt = backtrack 1.0 8 in
        if Float.is_nan mt then alpha
        else begin
          Array.blit trial 0 alpha 0 m;
          iterate (n + 1) f
        end
    end
  in
  let alpha = iterate 0 (residual alpha) in
  { alpha; delta; ok = true; iters = 0 }

(* Step size for the fallback region: move the fastest node by ~0.1 V. *)
let fallback_delta p st =
  let m = st.active in
  let dt = ref ((p.t_end -. st.t) /. 20.0) in
  for k = 1 to m do
    let rate = Float.abs st.i.(k) /. p.caps.(k - 1) in
    if rate > 0.0 then dt := Float.min !dt (0.1 /. rate)
  done;
  Float.max !dt 1e-14

(* append this region's quadratic pieces and advance the state *)
let commit p st { alpha; delta; ok; iters = _ } =
  let k_total = chain_length p in
  let delta = Float.max delta 1e-16 in
  let v_end, i_end = project p st alpha delta in
  let linear = is_linear p in
  for k = 1 to k_total do
    let piece =
      if k <= st.active then begin
        if linear then
          {
            Waveform.t0 = st.t;
            dt = delta;
            v0 = st.v.(k);
            dv = alpha.(k - 1) /. p.caps.(k - 1);
            ddv = 0.0;
          }
        else
          {
            Waveform.t0 = st.t;
            dt = delta;
            v0 = st.v.(k);
            dv = st.i.(k) /. p.caps.(k - 1);
            ddv = alpha.(k - 1) /. p.caps.(k - 1);
          }
      end
      else { Waveform.t0 = st.t; dt = delta; v0 = st.v.(k); dv = 0.0; ddv = 0.0 }
    in
    st.pieces.(k - 1) <- piece :: st.pieces.(k - 1)
  done;
  for k = 1 to k_total do
    st.v.(k) <- v_end.(k);
    if k <= st.active then st.i.(k) <- i_end.(k)
  done;
  st.t <- st.t +. delta;
  st.n_regions <- st.n_regions + 1;
  st.last_alpha <- Array.copy alpha;
  if not ok then st.n_fail <- st.n_fail + 1

let debug = ref false

let target_label = function
  | Turn_on k -> Printf.sprintf "turnon%d" k
  | Level { node; value } -> Printf.sprintf "level(%d,%.3f)" node value

(* Structured per-region diagnostics, replacing the old stderr printf:
   an instant trace event carrying the state the printf used to dump.
   The deprecated [debug] flag routes events to the stderr line sink
   when no other sink is installed, so old invocations keep a per-region
   stderr trace (now as JSON). *)
let trace_region p st target sol =
  if !debug && not (Trace.enabled ()) then Trace.enable_stderr ();
  if Trace.enabled () then begin
    let f, _, _ = region_residual p st target sol.alpha sol.delta in
    let floats xs =
      Json.List (List.map (fun v -> Json.Float v) (Array.to_list xs))
    in
    Trace.instant ~name:"qwm.region" ~cat:"qwm"
      ~args:
        [
          ("t_ps", Json.Float (st.t *. 1e12));
          ("active", Json.Int st.active);
          ("target", Json.String (target_label target));
          ("ok", Json.Bool sol.ok);
          ("iters", Json.Int sol.iters);
          ("delta_ps", Json.Float (sol.delta *. 1e12));
          ("merit", Json.Float (merit p f));
          ("v", floats st.v);
          ("i", floats st.i);
          ("alpha", floats sol.alpha);
        ]
      ()
  end

(* Attempt a region. Escalation ladder on Newton failure: retry from an
   explicit-Euler warm start; bisect the target voltage; finally take a
   short fixed-length current-matching step so the state always advances
   physically. *)
let rec advance p st target depth =
  let sol =
    (* a cheap capped attempt first; the explicit-Euler warm start earns
       the full iteration budget only when the cheap start fails *)
    let first = solve_region ~cap:(p.cfg.Config.max_iterations / 4) p st target in
    if first.ok then first
    else
      match estimate_region p st target with
      | Some (alpha0, delta0) ->
        let retry = solve_region_from p st target alpha0 delta0 in
        if retry.ok then retry else first
      | None -> first
  in
  if !debug || Trace.enabled () then trace_region p st target sol;
  Metrics.observe h_newton_per_region (float_of_int sol.iters);
  if sol.ok && plausible p st sol then commit p st sol
  else begin
    let node, goal =
      match target with
      | Level { node; value } -> (node, value)
      | Turn_on k0 ->
        let m = st.active in
        (m, gate_norm p k0 st.t -. threshold p k0 ~t:st.t ~vb:st.v.(m))
    in
    let mid = (st.v.(node) +. goal) /. 2.0 in
    if depth > 0 && Float.abs (mid -. st.v.(node)) >= 1e-4 then begin
      st.n_bisect <- st.n_bisect + 1;
      advance p st (Level { node; value = mid }) (depth - 1);
      advance p st target (depth - 1)
    end
    else begin
      (* last resort: a short fixed-length step that only matches currents *)
      st.n_fail <- st.n_fail + 1;
      commit p st (solve_fixed p st (fallback_delta p st))
    end
  end

let refresh_currents p st =
  let m = st.active in
  let j = Array.make (m + 2) 0.0 in
  for k = 1 to m do
    j.(k) <- edge_current p k ~t:st.t ~vb:st.v.(k - 1) ~va:st.v.(k)
  done;
  for k = 1 to m do
    st.i.(k) <- j.(k + 1) -. j.(k)
  done

(* first instant the (inactive-chain) bottom transistor's gate drive
   reaches threshold, by sampling + bisection; None if never *)
let find_gate_turn_on p k0 ~t_from =
  let f t = drive p k0 ~t ~vb:0.0 in
  if f t_from >= 0.0 then Some t_from
  else begin
    let samples = 512 in
    let dt = (p.t_end -. t_from) /. float_of_int samples in
    let rec scan i =
      if i > samples then None
      else begin
        let t = t_from +. (float_of_int i *. dt) in
        if f t >= 0.0 then begin
          let rec bisect lo hi n =
            if n = 0 then Some hi
            else begin
              let mid = (lo +. hi) /. 2.0 in
              if f mid >= 0.0 then bisect lo mid (n - 1) else bisect mid hi (n - 1)
            end
          in
          bisect (t -. dt) t 60
        end
        else scan (i + 1)
      end
    in
    scan 1
  end

let finalize p st =
  Metrics.incr c_solves;
  Metrics.add c_regions st.n_regions;
  Metrics.add c_turn_ons st.n_turn_ons;
  Metrics.add c_newton st.n_newton;
  Metrics.add c_linear_solves st.n_solves;
  Metrics.add c_bisections st.n_bisect;
  Metrics.add c_failures st.n_fail;
  Metrics.observe h_regions_per_solve (float_of_int st.n_regions);
  let k_total = chain_length p in
  let t_solved = Float.max st.t (p.t_end *. 1e-3) in
  let quads =
    Array.init k_total (fun idx ->
        let pieces = List.rev st.pieces.(idx) in
        let pieces =
          if pieces = [] then
            [ { Waveform.t0 = 0.0; dt = t_solved; v0 = st.v.(idx + 1); dv = 0.0; ddv = 0.0 } ]
          else pieces
        in
        let unnorm piece =
          match p.rail with
          | Chain.Pull_down -> piece
          | Chain.Pull_up ->
            {
              piece with
              Waveform.v0 = p.vdd -. piece.Waveform.v0;
              dv = -.piece.Waveform.dv;
              ddv = -.piece.Waveform.ddv;
            }
        in
        Waveform.quadratic_of_pieces (List.map unnorm pieces))
  in
  {
    node_quadratics = quads;
    critical_times = List.rev st.crits;
    t_solved = st.t;
    stats =
      {
        regions = st.n_regions;
        turn_ons = st.n_turn_ons;
        newton_iterations = st.n_newton;
        linear_solves = st.n_solves;
        bisections = st.n_bisect;
        failures = st.n_fail;
      };
  }

let solve ~model ~config ~scenario ~chain ~initial =
  let k_total = Chain.length chain in
  if Array.length initial <> k_total then
    invalid_arg "Qwm_solver.solve: initial voltage count mismatch";
  let tech = scenario.Scenario.tech in
  let gates =
    Array.map
      (fun (e : Chain.edge) ->
        Option.map (fun g -> Scenario.source scenario g) e.Chain.gate)
      chain.Chain.edges
  in
  let p =
    {
      model;
      vdd = tech.Tqwm_device.Tech.vdd;
      rail = chain.Chain.rail;
      edges = chain.Chain.edges;
      gates;
      caps = chain.Chain.caps;
      t_end = scenario.Scenario.t_end;
      cfg = config;
    }
  in
  let norm v = match p.rail with Chain.Pull_down -> v | Chain.Pull_up -> p.vdd -. v in
  let st =
    {
      t = 0.0;
      v = Array.init (k_total + 1) (fun k -> if k = 0 then 0.0 else norm initial.(k - 1));
      i = Array.make (k_total + 1) 0.0;
      active = 0;
      pieces = Array.make k_total [];
      crits = [];
      n_regions = 0;
      n_turn_ons = 0;
      n_newton = 0;
      n_solves = 0;
      n_bisect = 0;
      n_fail = 0;
      last_alpha = [||];
    }
  in
  let remaining_levels = ref (List.map (fun frac -> frac *. p.vdd) config.Config.levels) in
  let end_level = config.Config.end_fraction *. p.vdd in
  let rec loop () =
    if st.t >= p.t_end || st.n_regions >= config.Config.max_regions then ()
    else if st.active = 0 then begin
      (* waiting for the bottom transistor's gate to reach threshold *)
      match find_gate_turn_on p 1 ~t_from:st.t with
      | None ->
        (* never conducts: hold everything flat until the window ends *)
        for k = 1 to k_total do
          st.pieces.(k - 1) <-
            { Waveform.t0 = st.t; dt = p.t_end -. st.t; v0 = st.v.(k); dv = 0.0; ddv = 0.0 }
            :: st.pieces.(k - 1)
        done;
        st.t <- p.t_end
      | Some t_on ->
        if t_on > st.t +. 1e-16 then begin
          for k = 1 to k_total do
            st.pieces.(k - 1) <-
              { Waveform.t0 = st.t; dt = t_on -. st.t; v0 = st.v.(k); dv = 0.0; ddv = 0.0 }
              :: st.pieces.(k - 1)
          done;
          st.t <- t_on
        end;
        st.crits <- st.t :: st.crits;
        st.n_turn_ons <- st.n_turn_ons + 1;
        st.active <- extend_front p 1;
        refresh_currents p st;
        loop ()
    end
    else if st.active < k_total then begin
      let k0 = st.active + 1 in
      (* fire within tolerance: a just-solved turn-on region leaves the
         drive within the Newton voltage tolerance of zero *)
      let fire_margin = -10.0 *. config.Config.voltage_tolerance in
      if drive p k0 ~t:st.t ~vb:st.v.(st.active) >= fire_margin then begin
        (* already past threshold: fire the critical point immediately *)
        st.crits <- st.t :: st.crits;
        st.n_turn_ons <- st.n_turn_ons + 1;
        st.active <- extend_front p k0;
        refresh_currents p st;
        loop ()
      end
      else begin
        advance p st (Turn_on k0) config.Config.bisect_depth;
        loop ()
      end
    end
    else begin
      (* all transistors on: follow the output down the level ladder *)
      let v_out = st.v.(k_total) in
      if v_out <= end_level then ()
      else begin
        let rec pick () =
          match !remaining_levels with
          | [] -> None
          | l :: rest ->
            if l < v_out -. 1e-6 then Some l
            else begin
              remaining_levels := rest;
              pick ()
            end
        in
        match pick () with
        | None -> ()
        | Some level ->
          remaining_levels := List.tl !remaining_levels;
          advance p st (Level { node = k_total; value = level }) config.Config.bisect_depth;
          loop ()
      end
    end
  in
  loop ();
  finalize p st
