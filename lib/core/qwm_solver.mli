(** The piecewise-quadratic waveform-matching engine (paper §IV).

    The transient of a charge/discharge chain is divided into regions
    separated by critical points — the instants successive transistors
    turn on — plus a descending ladder of output-level matching points
    once every transistor conducts. Within a region each active node's
    current is linear, [I_k(t) = I_k(tau) + alpha_k (t - tau)], so its
    voltage is quadratic; the [alpha_k] and the region length are found by
    one small Newton solve matching capacitor currents against the device
    I/V relation {e only at the region end point} (paper Eq. (7)).

    Internally the chain is normalized to "discharge toward a rail at 0 V"
    coordinates; pull-up (PMOS) chains are mirrored about VDD, solved
    identically and mirrored back. *)

open Tqwm_circuit

module Workspace : sig
  type t
  (** Preallocated scratch buffers for the region-solve hot path:
      projection endpoints, residuals, Jacobian bands, linear-solver
      scratch and Newton candidates, all sized for chains of up to a
      capacity number of nodes (grown on demand). With a workspace in
      hand, {!solve} runs its Newton iterations without per-iteration
      allocation. A workspace is {e not} thread-safe: use one per domain
      (the default) or one per solver. *)

  val create : ?capacity:int -> unit -> t
  (** A fresh workspace; [capacity] (default 8) is the initial chain-node
      capacity. Buffers grow automatically when a longer chain arrives. *)

  val for_current_domain : unit -> t
  (** The calling domain's lazily-created workspace ({!solve}'s default).
      Parallel STA workers each run on their own domain, so every worker
      gets its own scratch without coordination. *)
end

type stats = {
  regions : int;  (** quadratic regions solved *)
  turn_ons : int;  (** critical points fired *)
  newton_iterations : int;
  linear_solves : int;
  bisections : int;
  failures : int;  (** regions accepted without full convergence *)
}

type result = {
  node_quadratics : Tqwm_wave.Waveform.quadratic array;
      (** real (un-normalized) voltage waveform of chain node [k] at index
          [k-1] *)
  critical_times : float list;  (** turn-on instants, ascending *)
  t_solved : float;  (** last instant covered by the pieces *)
  stats : stats;
}

val solve :
  ?workspace:Workspace.t ->
  model:Tqwm_device.Device_model.t ->
  config:Config.t ->
  scenario:Scenario.t ->
  chain:Chain.t ->
  initial:float array ->
  result
(** [solve ~model ~config ~scenario ~chain ~initial] runs QWM on [chain];
    [initial.(k-1)] is the real initial voltage of chain node [k]. Gate
    drives come from the scenario's sources. [workspace] supplies the
    scratch buffers for the region solves (default: the calling domain's
    — see {!Workspace.for_current_domain}); results are bit-identical
    whatever workspace is passed.
    @raise Invalid_argument on malformed inputs. *)

val debug : bool ref
(** @deprecated Alias for enabling the per-region trace: when set and no
    {!Tqwm_obs.Trace} sink is installed, the stderr line sink is
    enabled, so existing [debug := true] invocations keep producing a
    per-region stderr trace — now as one [qwm.region] trace-event JSON
    object per line. New code should call {!Tqwm_obs.Trace.enable} (or
    [qwm_sim --trace FILE]) instead. *)
