(** The piecewise-quadratic waveform-matching engine (paper §IV).

    The transient of a charge/discharge chain is divided into regions
    separated by critical points — the instants successive transistors
    turn on — plus a descending ladder of output-level matching points
    once every transistor conducts. Within a region each active node's
    current is linear, [I_k(t) = I_k(tau) + alpha_k (t - tau)], so its
    voltage is quadratic; the [alpha_k] and the region length are found by
    one small Newton solve matching capacitor currents against the device
    I/V relation {e only at the region end point} (paper Eq. (7)).

    Internally the chain is normalized to "discharge toward a rail at 0 V"
    coordinates; pull-up (PMOS) chains are mirrored about VDD, solved
    identically and mirrored back. *)

open Tqwm_circuit

type stats = {
  regions : int;  (** quadratic regions solved *)
  turn_ons : int;  (** critical points fired *)
  newton_iterations : int;
  linear_solves : int;
  bisections : int;
  failures : int;  (** regions accepted without full convergence *)
}

type result = {
  node_quadratics : Tqwm_wave.Waveform.quadratic array;
      (** real (un-normalized) voltage waveform of chain node [k] at index
          [k-1] *)
  critical_times : float list;  (** turn-on instants, ascending *)
  t_solved : float;  (** last instant covered by the pieces *)
  stats : stats;
}

val solve :
  model:Tqwm_device.Device_model.t ->
  config:Config.t ->
  scenario:Scenario.t ->
  chain:Chain.t ->
  initial:float array ->
  result
(** [solve ~model ~config ~scenario ~chain ~initial] runs QWM on [chain];
    [initial.(k-1)] is the real initial voltage of chain node [k]. Gate
    drives come from the scenario's sources.
    @raise Invalid_argument on malformed inputs. *)

val debug : bool ref
(** @deprecated Alias for enabling the per-region trace: when set and no
    {!Tqwm_obs.Trace} sink is installed, the stderr line sink is
    enabled, so existing [debug := true] invocations keep producing a
    per-region stderr trace — now as one [qwm.region] trace-event JSON
    object per line. New code should call {!Tqwm_obs.Trace.enable} (or
    [qwm_sim --trace FILE]) instead. *)
