open Tqwm_circuit
open Tqwm_wave
module Device = Tqwm_device.Device
module Capacitance = Tqwm_device.Capacitance
module Pi_model = Tqwm_interconnect.Pi_model
module Rc_tree = Tqwm_interconnect.Rc_tree

(* Deeply immutable by construction (see the interface): reports are
   shared across domains by the STA stage cache, so no field — including
   anything reachable through [lowering] or [stats] — may be mutable. *)
type report = {
  scenario : Scenario.t;
  lowering : Path.lowering;
  output : Waveform.quadratic;
  node_quadratics : (string * Waveform.quadratic) list;
  delay : float option;
  slew : float option;
  critical_times : float list;
  runtime_seconds : float;
  stats : Qwm_solver.stats;
}

(* Collapse each maximal run of >= 2 consecutive wire edges into an
   O'Brien-Savarino pi macromodel: one equivalent resistor edge, with the
   near capacitance folded into the node below the run and the far
   capacitance into the node above it. *)
let collapse_wires (tech : Tqwm_device.Tech.t) (lowering : Path.lowering) =
  let chain = lowering.Path.chain in
  let edges = chain.Chain.edges and caps = chain.Chain.caps in
  let stage_nodes = lowering.Path.stage_nodes in
  let k = Array.length edges in
  let is_wire i = not (Chain.is_transistor edges.(i)) in
  let new_edges = ref [] and new_caps = ref [] and new_nodes = ref [] in
  let push e c n =
    new_edges := e :: !new_edges;
    new_caps := c :: !new_caps;
    new_nodes := n :: !new_nodes
  in
  let fold_into_previous c =
    match !new_caps with
    | [] -> ()  (* the run starts at the rail: near capacitance is grounded out *)
    | top :: rest -> new_caps := (top +. c) :: rest
  in
  let rec walk i =
    if i >= k then ()
    else if not (is_wire i) then begin
      push edges.(i) caps.(i) stage_nodes.(i);
      walk (i + 1)
    end
    else begin
      let rec extent j = if j < k && is_wire j then extent (j + 1) else j in
      let j = extent i in
      if j - i < 2 then begin
        push edges.(i) caps.(i) stage_nodes.(i);
        walk (i + 1)
      end
      else begin
        (* edges i..j-1 form the run; interior chain nodes i+1..j-1
           (1-based), i.e. cap indices i..j-2 *)
        let interior = j - 1 - i in
        let parent = Array.init (interior + 2) (fun n -> n - 1) in
        let resistance =
          Array.init (interior + 2) (fun n ->
              if n = 0 then 0.0
              else begin
                let d = edges.(i + n - 1).Chain.device in
                Capacitance.wire_resistance tech ~w:d.Device.w ~l:d.Device.l
              end)
        in
        let cap =
          Array.init (interior + 2) (fun n ->
              if n = 0 || n = interior + 1 then 0.0 else caps.(i + n - 1))
        in
        let pi = Pi_model.of_tree (Rc_tree.make ~parent ~resistance ~cap) in
        fold_into_previous pi.Pi_model.c_near;
        let w = edges.(i).Chain.device.Device.w in
        let equivalent_l = pi.Pi_model.r *. w /. tech.Tqwm_device.Tech.r_sheet_wire in
        let device = Device.wire ~w ~l:equivalent_l in
        push { Chain.device; gate = None } (caps.(j - 1) +. pi.Pi_model.c_far)
          stage_nodes.(j - 1);
        walk j
      end
    end
  in
  walk 0;
  {
    Path.chain =
      Chain.make ~rail:chain.Chain.rail ~edges:(List.rev !new_edges)
        ~caps:(List.rev !new_caps);
    stage_nodes = Array.of_list (List.rev !new_nodes);
  }

let lower_scenario ~model ~config scenario =
  let lowering = Scenario.lower ~model scenario in
  if config.Config.reduce_wires then
    collapse_wires scenario.Scenario.tech lowering
  else lowering

let quadratic_slew ~vdd q edge =
  let direction = match edge with
    | Tqwm_wave.Measure.Rising -> `Rising
    | Tqwm_wave.Measure.Falling -> `Falling
  in
  let lo = Waveform.quadratic_first_crossing q ~level:(0.1 *. vdd) ~direction in
  let hi = Waveform.quadratic_first_crossing q ~level:(0.9 *. vdd) ~direction in
  match (edge, lo, hi) with
  | Tqwm_wave.Measure.Rising, Some t1, Some t2 when t2 >= t1 -> Some (t2 -. t1)
  | Tqwm_wave.Measure.Falling, Some t1, Some t2 when t1 >= t2 -> Some (t1 -. t2)
  | (Tqwm_wave.Measure.Rising | Tqwm_wave.Measure.Falling), _, _ -> None

let run_on_lowering ~model ?(config = Config.default) ?workspace ~scenario lowering =
  let t_start = Unix.gettimeofday () in
  let chain = lowering.Path.chain in
  let initial =
    Array.map (fun n -> scenario.Scenario.initial.(n)) lowering.Path.stage_nodes
  in
  let solved = Qwm_solver.solve ?workspace ~model ~config ~scenario ~chain ~initial in
  let runtime_seconds = Unix.gettimeofday () -. t_start in
  let k = Chain.length chain in
  let output = solved.Qwm_solver.node_quadratics.(k - 1) in
  let vdd = scenario.Scenario.tech.Tqwm_device.Tech.vdd in
  let delay =
    Measure.quadratic_delay_from ~t0:0.0 ~vdd output
      ~output_edge:scenario.Scenario.output_edge
  in
  let slew = quadratic_slew ~vdd output scenario.Scenario.output_edge in
  let node_quadratics =
    Array.to_list
      (Array.mapi
         (fun idx q ->
           (Stage.node_name scenario.Scenario.stage lowering.Path.stage_nodes.(idx), q))
         solved.Qwm_solver.node_quadratics)
  in
  {
    scenario;
    lowering;
    output;
    node_quadratics;
    delay;
    slew;
    critical_times = solved.Qwm_solver.critical_times;
    runtime_seconds;
    stats = solved.Qwm_solver.stats;
  }

let run ~model ?(config = Config.default) ?workspace scenario =
  let lowering = lower_scenario ~model ~config scenario in
  Tqwm_obs.Trace.with_span ~name:("qwm:" ^ scenario.Scenario.name) ~cat:"qwm"
    (fun () -> run_on_lowering ~model ~config ?workspace ~scenario lowering)

let output_waveform report ~dt = Waveform.sample_quadratic report.output ~dt

let node_delay report name =
  match List.assoc_opt name report.node_quadratics with
  | None -> raise Not_found
  | Some q ->
    let vdd = report.scenario.Scenario.tech.Tqwm_device.Tech.vdd in
    let direction =
      match report.scenario.Scenario.output_edge with
      | Tqwm_wave.Measure.Rising -> `Rising
      | Tqwm_wave.Measure.Falling -> `Falling
    in
    Waveform.quadratic_first_crossing q ~level:(vdd /. 2.0) ~direction

let node_current report name ~dt =
  let rec index k = function
    | [] -> raise Not_found
    | (n, q) :: rest -> if String.equal n name then (k, q) else index (k + 1) rest
  in
  let k, q = index 0 report.node_quadratics in
  let c = report.lowering.Path.chain.Chain.caps.(k) in
  (* dv/dt of each quadratic piece is linear: sample it directly *)
  let pieces = Waveform.quadratic_pieces q in
  let slope t =
    let rec find = function
      | [] -> 0.0
      | (p : Waveform.piece) :: rest ->
        if t <= p.Waveform.t0 +. p.Waveform.dt || rest = [] then
          p.Waveform.dv +. (p.Waveform.ddv *. Float.max (t -. p.Waveform.t0) 0.0)
        else find rest
    in
    find pieces
  in
  let t_end =
    match List.rev pieces with
    | last :: _ -> last.Waveform.t0 +. last.Waveform.dt
    | [] -> 0.0
  in
  let steps = max (int_of_float (Float.ceil (t_end /. dt))) 1 in
  Waveform.of_samples
    (Array.init (steps + 1) (fun i ->
         let t = Float.min (float_of_int i *. dt) t_end in
         let t = if i = steps then t_end else t in
         (t, c *. slope t)))

let switching_energy report =
  let chain = report.lowering.Path.chain in
  let quads = List.map snd report.node_quadratics in
  List.fold_left
    (fun (acc, k) q ->
      let c = chain.Chain.caps.(k) in
      let v0 = Waveform.quadratic_value_at q 0.0 in
      let v1 = Waveform.quadratic_end_value q in
      (acc +. (0.5 *. c *. Float.abs ((v0 *. v0) -. (v1 *. v1))), k + 1))
    (0.0, 0) quads
  |> fst
