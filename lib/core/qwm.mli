(** Public QWM API: run a scenario through piecewise quadratic waveform
    matching and report waveforms, timing metrics and solver statistics. *)

open Tqwm_circuit
open Tqwm_wave

(** A report is deeply immutable — scenarios, lowerings, quadratics and
    solver stats are all plain data with no mutable fields — so one
    report may be shared freely across OCaml 5 domains. The STA layer's
    stage cache ([Tqwm_sta.Stage_cache]) hands the same report to every
    domain that hits; keep this invariant when extending the record. *)
type report = {
  scenario : Scenario.t;
  lowering : Path.lowering;  (** the chain actually solved *)
  output : Waveform.quadratic;  (** output-node waveform *)
  node_quadratics : (string * Waveform.quadratic) list;
      (** per chain node, keyed by the backing stage-node name *)
  delay : float option;  (** 50 % delay from the input switch at t = 0 *)
  slew : float option;  (** 10–90 % output transition time *)
  critical_times : float list;
  runtime_seconds : float;
  stats : Qwm_solver.stats;
}

val lower_scenario :
  model:Tqwm_device.Device_model.t -> config:Config.t -> Scenario.t -> Path.lowering
(** Extract the scenario's charge/discharge chain; when
    [config.reduce_wires] is set, runs of consecutive wire edges are
    collapsed into O'Brien–Savarino pi macromodels (single equivalent
    resistor edge, near/far capacitance folded into the adjacent nodes). *)

val run :
  model:Tqwm_device.Device_model.t ->
  ?config:Config.t ->
  ?workspace:Qwm_solver.Workspace.t ->
  Scenario.t ->
  report
(** [workspace] supplies the solver's scratch buffers (default: the
    calling domain's); the report is bit-identical either way. *)

val run_on_lowering :
  model:Tqwm_device.Device_model.t ->
  ?config:Config.t ->
  ?workspace:Qwm_solver.Workspace.t ->
  scenario:Scenario.t ->
  Path.lowering ->
  report
(** Run on a pre-lowered chain (lets benchmarks exclude lowering cost or
    supply custom chains). *)

val output_waveform : report -> dt:float -> Waveform.t
(** Densified output waveform for comparison against a SPICE trace. *)

val node_delay : report -> string -> float option
(** 50 % crossing time (from t = 0) of a named chain node — e.g. the
    per-bit carry arrivals of a Manchester chain, all from one solve. *)

val node_current : report -> string -> dt:float -> Waveform.t
(** Charge/discharge current of a named chain node, [I = C dv/dt],
    derived analytically from the quadratic pieces (piecewise linear by
    construction — paper Eq. (2) and Fig. 7). Sampled every [dt].
    @raise Not_found for an unknown node name. *)

val switching_energy : report -> float
(** Magnitude of the change in capacitively stored energy over the solved
    transition, [sum_k (C_k / 2) |v_start^2 - v_end^2|] over the chain
    nodes: the energy dissipated in the discharge devices for a falling
    transition, or the non-supply half of the charging energy for a
    rising one. A byproduct of waveform evaluation that plain delay/slope
    timing cannot provide. *)
