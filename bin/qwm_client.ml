(* qwm_client: talk to a qwm_sim --serve timing daemon — replay an
   --incr script against a live session, or fire a single verb — and
   optionally persist the returned report documents, byte-identical to
   the offline qwm_sim outputs. *)

module Client = Tqwm_server.Client
module Json = Tqwm_obs.Json

let read_file path =
  let ic = open_in path in
  let n = in_channel_length ic in
  let text = really_input_string ic n in
  close_in ic;
  text

let num_member name j =
  match Json.member name j with
  | Some (Json.Float f) -> f
  | Some (Json.Int i) -> float_of_int i
  | _ -> 0.0

let int_member name j =
  match Json.member name j with Some (Json.Int i) -> i | _ -> 0

let print_stats stats =
  Printf.printf
    "uptime %.0fs  sessions %d  qps %.2f  errors/s %.2f  (%d samples over %gs)\n"
    (num_member "uptime_s" stats) (int_member "sessions" stats)
    (num_member "qps" stats)
    (num_member "errors_per_s" stats)
    (int_member "samples" stats)
    (num_member "window_s" stats);
  (match Json.member "verbs" stats with
  | Some (Json.Obj ((_ :: _) as verbs)) ->
    Printf.printf "%-10s %8s %10s %10s\n" "verb" "count" "p50_ms" "p99_ms";
    List.iter
      (fun (v, s) ->
        let quantile name =
          match Json.member name s with
          | Some (Json.Float f) -> Printf.sprintf "%.3f" f
          | Some (Json.Int i) -> Printf.sprintf "%d" i
          | _ -> "-"
        in
        Printf.printf "%-10s %8d %10s %10s\n" v (int_member "count" s)
          (quantile "p50_ms") (quantile "p99_ms"))
      verbs
  | _ -> ());
  match Json.member "gc" stats with
  | Some (Json.Obj gc) ->
    Printf.printf "gc: %s\n"
      (String.concat "  "
         (List.map
            (fun (k, v) ->
              Printf.sprintf "%s %.4g" k
                (match v with
                | Json.Float f -> f
                | Json.Int i -> float_of_int i
                | _ -> 0.0))
            gc))
  | _ -> ()

(* one-line form for --watch *)
let print_stats_line i stats =
  Printf.printf "[%d] qps %.2f  err/s %.2f  sessions %d  uptime %.0fs\n%!" i
    (num_member "qps" stats)
    (num_member "errors_per_s" stats)
    (int_member "sessions" stats)
    (num_member "uptime_s" stats)

let run addr replay_file verb_opt k json_file timing_json_file quiet stats watch
    count =
  if k < 1 then (
    Printf.eprintf "qwm_client: --k must be >= 1 (got %d)\n" k;
    exit 2);
  (match watch with
  | Some p when p <= 0.0 || not (Float.is_finite p) ->
    Printf.eprintf "qwm_client: --watch must be finite and > 0 (got %g)\n" p;
    exit 2
  | Some _ | None -> ());
  if count < 0 then (
    Printf.eprintf "qwm_client: --count must be >= 0 (got %d)\n" count;
    exit 2);
  if replay_file = None && verb_opt = None && not stats && watch = None then (
    Printf.eprintf
      "qwm_client: nothing to do; pass --replay SCRIPT, --verb VERB, --stats \
       or --watch SECS\n";
    exit 2);
  let client =
    match Client.connect addr with
    | c -> c
    | exception Invalid_argument msg ->
      Printf.eprintf "qwm_client: %s\n" msg;
      exit 2
    | exception Unix.Unix_error (e, _, _) ->
      Printf.eprintf "qwm_client: cannot connect to %s: %s\n" addr
        (Unix.error_message e);
      exit 1
  in
  let finally () = Client.close client in
  Fun.protect ~finally @@ fun () ->
  match watch with
  | Some period ->
    (* poll until interrupted (or --count polls); the stats window is
       the polling period, so each line reports what happened since the
       previous one *)
    let i = ref 0 in
    let continue () = count = 0 || !i < count in
    while continue () do
      incr i;
      print_stats_line !i (Client.stats ~window_s:period client);
      if continue () then Unix.sleepf period
    done;
    0
  | None ->
  if stats then begin
    print_stats (Client.stats client);
    0
  end
  else
  match replay_file with
  | Some path ->
    let text = read_file path in
    let replayed = Client.replay ~k client text in
    if not quiet then print_string replayed.Client.output;
    (match json_file with
    | None -> ()
    | Some out ->
      Json.write_file out replayed.Client.document;
      if not quiet then Printf.printf "client: wrote session document to %s\n" out);
    (match (timing_json_file, replayed.Client.timing) with
    | None, _ -> ()
    | Some out, Some doc ->
      Json.write_file out doc;
      if not quiet then Printf.printf "client: wrote timing report to %s\n" out
    | Some _, None ->
      Printf.eprintf
        "qwm_client: --timing-json needs the script to set a clock (no timing \
         document)\n";
      exit 1);
    0
  | None -> (
    match verb_opt with
    | None -> 0
    | Some verb ->
      let result = Client.request client verb [] in
      print_endline (Json.to_string result);
      0)

let run addr replay_file verb_opt k json_file timing_json_file quiet stats watch
    count =
  match
    run addr replay_file verb_opt k json_file timing_json_file quiet stats watch
      count
  with
  | code -> code
  | exception Client.Server_error { code; message } ->
    Printf.eprintf "qwm_client: server error [%s]: %s\n" code message;
    1
  | exception Client.Protocol_failure msg ->
    Printf.eprintf "qwm_client: protocol failure: %s\n" msg;
    1
  | exception Unix.Unix_error (e, fn, _) ->
    Printf.eprintf "qwm_client: %s: %s\n" fn (Unix.error_message e);
    1
  | exception Sys_error msg ->
    Printf.eprintf "qwm_client: %s\n" msg;
    1

open Cmdliner

let addr =
  let doc = "Server address: unix:PATH or HOST:PORT." in
  Arg.(required & pos 0 (some string) None & info [] ~docv:"ADDR" ~doc)

let replay_file =
  let doc =
    "Replay the --incr script $(docv) through a fresh server session \
     (load, one script request per line, then the final documents)."
  in
  Arg.(value & opt (some file) None & info [ "replay" ] ~docv:"SCRIPT" ~doc)

let verb =
  let doc = "Send a single argument-less verb (metrics, document, report, ...) and print its result JSON." in
  Arg.(value & opt (some string) None & info [ "verb" ] ~docv:"VERB" ~doc)

let k =
  let doc = "Worst paths requested in the timing document (>= 1)." in
  Arg.(value & opt int 1 & info [ "k" ] ~docv:"N" ~doc)

let json_file =
  let doc = "Write the replayed session's tqwm-incr-report/1 document to $(docv)." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let timing_json_file =
  let doc = "Write the replayed session's tqwm-report/1 timing document to $(docv) (requires the script to set a clock)." in
  Arg.(value & opt (some string) None & info [ "timing-json" ] ~docv:"FILE" ~doc)

let quiet =
  let doc = "Suppress the replayed commands' progress output." in
  Arg.(value & flag & info [ "q"; "quiet" ] ~doc)

let stats =
  let doc =
    "Fetch the daemon's live telemetry (stats verb) once and pretty-print \
     it: qps, errors/s, per-verb request counts with p50/p99 latency, \
     session occupancy and GC rates over the server's rolling window."
  in
  Arg.(value & flag & info [ "stats" ] ~doc)

let watch =
  let doc =
    "Poll the stats verb every $(docv) seconds and print a one-line \
     summary per poll, with the window matched to the period. Runs until \
     interrupted, or for --count polls."
  in
  Arg.(value & opt (some float) None & info [ "watch" ] ~docv:"SECS" ~doc)

let count =
  let doc = "Stop --watch after $(docv) polls (0 = poll forever)." in
  Arg.(value & opt int 0 & info [ "count" ] ~docv:"N" ~doc)

let cmd =
  let doc = "client for the qwm_sim --serve timing daemon" in
  Cmd.v
    (Cmd.info "qwm_client" ~version:"1.0.0" ~doc)
    Term.(
      const run $ addr $ replay_file $ verb $ k $ json_file $ timing_json_file
      $ quiet $ stats $ watch $ count)

let () = exit (Cmd.eval' cmd)
