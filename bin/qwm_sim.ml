(* qwm_sim: simulate a logic stage with the QWM engine, the SPICE-like
   reference engine, or both, and report delay/slew/accuracy; or run a
   multi-stage STA propagation over a fan-out tree of the stage. *)

open Tqwm_device
open Tqwm_circuit
module Qwm = Tqwm_core.Qwm
module Engine = Tqwm_spice.Engine
module Transient = Tqwm_spice.Transient
module Measure = Tqwm_wave.Measure
module Waveform = Tqwm_wave.Waveform
module Timing_graph = Tqwm_sta.Timing_graph
module Parallel = Tqwm_sta.Parallel
module Stage_cache = Tqwm_sta.Stage_cache
module Workloads = Tqwm_sta.Workloads
module Path_enum = Tqwm_sta.Path_enum
module Report = Tqwm_sta.Report
module Arrival = Tqwm_sta.Arrival
module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Json = Tqwm_obs.Json
module Alloc = Tqwm_obs.Alloc

(* Attach the process's current [Gc.quick_stat] to a JSON document so the
   allocation counters land next to the data they explain. *)
let with_gc_stat doc =
  match doc with
  | Json.Obj fields -> Json.Obj (fields @ [ ("gc", Alloc.quick_stat_json ()) ])
  | other -> other
module Audit = Tqwm_audit.Audit
module Audit_baseline = Tqwm_audit.Baseline
module Drift = Tqwm_audit.Drift

let ps = 1e12

let fmt_delay = function
  | Some d -> Printf.sprintf "%.2f ps" (d *. ps)
  | None -> "none"

let print_waveform_samples name w ~count =
  let t0 = Waveform.start_time w and t1 = Waveform.end_time w in
  Printf.printf "# waveform %s (time_ps voltage)\n" name;
  for i = 0 to count - 1 do
    let t = t0 +. ((t1 -. t0) *. float_of_int i /. float_of_int (count - 1)) in
    Printf.printf "%.2f %.4f\n" (t *. ps) (Waveform.value_at w t)
  done

let run_spice ~model ~dt ~waveform scenario =
  let config = { Transient.default_config with Transient.dt } in
  let report = Engine.run ~model ~config scenario in
  Printf.printf "spice: delay=%s slew=%s steps=%d newton=%d runtime=%.4fs\n"
    (fmt_delay report.Engine.delay) (fmt_delay report.Engine.slew)
    report.Engine.result.Transient.stats.Transient.steps
    report.Engine.result.Transient.stats.Transient.nonlinear_iterations
    report.Engine.runtime_seconds;
  if waveform then print_waveform_samples "spice.out" report.Engine.output ~count:60;
  report

let run_qwm ~model ~waveform scenario =
  let report = Qwm.run ~model scenario in
  Printf.printf "qwm:   delay=%s slew=%s regions=%d newton=%d runtime=%.5fs\n"
    (fmt_delay report.Qwm.delay) (fmt_delay report.Qwm.slew)
    report.Qwm.stats.Tqwm_core.Qwm_solver.regions
    report.Qwm.stats.Tqwm_core.Qwm_solver.newton_iterations report.Qwm.runtime_seconds;
  Printf.printf "qwm:   critical points (ps): %s\n"
    (String.concat ", "
       (List.map (fun t -> Printf.sprintf "%.2f" (t *. ps)) report.Qwm.critical_times));
  if waveform then
    print_waveform_samples "qwm.out" (Qwm.output_waveform report ~dt:2e-12) ~count:60;
  report

(* --sta: propagate arrivals over a fan-out tree of the selected stage *)
let run_sta ~tech ~depth ~fanout ~domains ~scheduler ~chunk ~use_cache
    ~report_timing ~report_slack ~k_paths ~clock_period_ps ~json_file scenario =
  if fanout < 1 then (
    Printf.eprintf "qwm_sim: --fanout must be >= 1 (got %d)\n" fanout;
    exit 2);
  (match chunk with
  | Some c when c < 1 ->
    Printf.eprintf "qwm_sim: --chunk must be >= 1 (got %d)\n" c;
    exit 2
  | Some _ | None -> ());
  if k_paths < 1 then (
    Printf.eprintf "qwm_sim: --k-paths must be >= 1 (got %d)\n" k_paths;
    exit 2);
  (match clock_period_ps with
  | Some p when p <= 0.0 || not (Float.is_finite p) ->
    Printf.eprintf "qwm_sim: --clock-period must be finite and > 0 (got %g)\n" p;
    exit 2
  | Some _ | None -> ());
  let domains = max 1 domains in
  let model = Models.table tech in
  let graph = Workloads.fanout_tree ~fanout ~depth scenario in
  ignore (Timing_graph.freeze graph);
  let cache = if use_cache then Some (Stage_cache.create ()) else None in
  let t0 = Unix.gettimeofday () in
  let analysis = Parallel.propagate ~model ?cache ~domains ~scheduler ?chunk graph in
  let elapsed = Unix.gettimeofday () -. t0 in
  Printf.printf
    "sta: %d copies of %s (fan-out %d, depth %d), %d domain%s [%s%s]: %.3f ms\n"
    (Timing_graph.num_stages graph) scenario.Scenario.name fanout depth domains
    (if domains = 1 then "" else "s")
    (Parallel.scheduler_name scheduler)
    (match chunk with Some c -> Printf.sprintf ", chunk %d" c | None -> "")
    (elapsed *. 1e3);
  if Timing_graph.num_stages graph <= 16 then
    Report.print Format.std_formatter graph analysis
  else
    Printf.printf "worst arrival %.2f ps over a %d-stage critical path\n"
      (analysis.Tqwm_sta.Arrival.worst_arrival *. ps)
      (List.length analysis.Tqwm_sta.Arrival.critical_path);
  (match cache with
  | None -> ()
  | Some c ->
    let s = Stage_cache.stats c in
    Printf.printf "cache: %d solves, %d hits (%.0f%% hit rate)\n"
      s.Stage_cache.misses s.Stage_cache.hits (100.0 *. Stage_cache.hit_rate c));
  if report_timing || report_slack then begin
    let clock_period =
      match clock_period_ps with
      | Some p -> p *. 1e-12
      | None ->
        (* zero-slack normalization: the critical path sets the clock;
           degenerate (empty / zero-arrival) graphs fall back to 1 ns *)
        if analysis.Arrival.worst_arrival > 0.0 then analysis.Arrival.worst_arrival
        else 1e-9
    in
    let required = Arrival.required graph analysis ~clock_period in
    if report_slack then Report.print_slack Format.std_formatter graph analysis required;
    let explained =
      if report_timing || json_file <> None then
        List.map
          (Path_enum.explain ~model ?cache graph analysis)
          (Path_enum.k_worst ~clock_period ~k:k_paths graph analysis)
      else []
    in
    if report_timing then
      Report.print_timing Format.std_formatter graph required explained;
    match json_file with
    | None -> ()
    | Some path ->
      (* no gc block here: the timing report is bit-identical across
         runs, schedulers and domain counts, and CI diffs the bytes *)
      Json.write_file path (Report.timing_to_json graph analysis required explained);
      Printf.printf "sta: wrote timing report to %s\n" path
  end
  else begin
    match json_file with
    | None -> ()
    | Some path ->
      Json.write_file path (with_gc_stat (Report.to_json graph analysis));
      Printf.printf "sta: wrote JSON report to %s\n" path
  end;
  0

(* --serve: the timing daemon — load once, serve concurrent what-if
   sessions over the protocol in lib/server until SIGINT/SIGTERM *)
let run_serve ~tech ~addr ~graph_spec ~domains ~epsilon_ps ~max_sessions ~prom
    ~access_log ~slow_ms =
  let address =
    match Tqwm_server.Protocol.parse_address addr with
    | a -> a
    | exception Invalid_argument msg ->
      Printf.eprintf "qwm_sim: %s\n" msg;
      exit 2
  in
  if max_sessions < 1 then (
    Printf.eprintf "qwm_sim: --max-sessions must be >= 1 (got %d)\n" max_sessions;
    exit 2);
  if slow_ms < 0.0 || not (Float.is_finite slow_ms) then (
    Printf.eprintf "qwm_sim: --slow-ms must be finite and >= 0 (got %g)\n" slow_ms;
    exit 2);
  let prom_addr =
    match prom with
    | None -> None
    | Some spec -> (
      match Tqwm_server.Protocol.parse_address spec with
      | a -> Some (Tqwm_server.Protocol.sockaddr_of_address a)
      | exception Invalid_argument msg ->
        Printf.eprintf "qwm_sim: --prom: %s\n" msg;
        exit 2)
  in
  let graph =
    match graph_spec with
    | None -> None
    | Some spec -> (
      match Tqwm_incr.Script.graph_of_spec ~tech spec with
      | g -> Some g
      | exception Invalid_argument msg ->
        Printf.eprintf "qwm_sim: --graph: %s\n" msg;
        exit 2)
  in
  let workers = max 1 domains in
  let server =
    Tqwm_server.Server.start ~tech ?graph ~workers ~epsilon:(epsilon_ps *. 1e-12)
      ~max_sessions ?access_log ~slow_threshold:(slow_ms *. 1e-3) address
  in
  let prom_server = Option.map Tqwm_obs.Prometheus.serve prom_addr in
  Printf.printf "serve: listening on %s (%d worker%s%s, max %d sessions)\n%!"
    (Tqwm_server.Server.address server)
    workers
    (if workers = 1 then "" else "s")
    (match graph with
    | Some g ->
      Printf.sprintf ", baseline %d stages" (Timing_graph.num_stages g)
    | None -> "")
    max_sessions;
  Option.iter
    (fun p ->
      Printf.printf "serve: Prometheus metrics on http://%s/metrics\n%!"
        (match Tqwm_obs.Prometheus.bound p with
        | Unix.ADDR_INET (a, port) ->
          Printf.sprintf "%s:%d" (Unix.string_of_inet_addr a) port
        | Unix.ADDR_UNIX path -> path))
    prom_server;
  Option.iter
    (fun path -> Printf.printf "serve: access log at %s\n%!" path)
    access_log;
  let stop_requested = Atomic.make false in
  let handler = Sys.Signal_handle (fun _ -> Atomic.set stop_requested true) in
  Sys.set_signal Sys.sigint handler;
  Sys.set_signal Sys.sigterm handler;
  while not (Atomic.get stop_requested) do
    Unix.sleepf 0.1
  done;
  Printf.printf "serve: shutting down\n%!";
  Option.iter Tqwm_obs.Prometheus.stop prom_server;
  Tqwm_server.Server.stop server;
  0

(* --incr: drive an incremental session from an edit/query script *)
let run_incr ~tech ~domains ~use_cache ~scratch ~epsilon_ps ~json_file
    ~timing_json_file ~timing_k path =
  if timing_k < 1 then (
    Printf.eprintf "qwm_sim: --timing-k must be >= 1 (got %d)\n" timing_k;
    exit 2);
  let model = Models.table tech in
  let mode = if scratch then Tqwm_incr.Script.Scratch else Tqwm_incr.Script.Incremental in
  match
    Tqwm_incr.Script.run_file ~tech ~model ~use_cache ~domains
      ~epsilon:(epsilon_ps *. 1e-12) ~mode path
  with
  | exception Tqwm_incr.Script.Script_error { line; message } ->
    Printf.eprintf "%s:%d: %s\n" path line message;
    1
  | exception Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | outcome ->
    let stats = Tqwm_incr.Session.stats outcome.Tqwm_incr.Script.session in
    Printf.printf
      "incr: %d edits, %d recomputes, %d stages re-evaluated, %d cutoff hits\n"
      stats.Tqwm_incr.Session.edits stats.Tqwm_incr.Session.recomputes
      stats.Tqwm_incr.Session.stages_reeval stats.Tqwm_incr.Session.cutoff_hits;
    (match json_file with
    | None -> ()
    | Some out ->
      Json.write_file out outcome.Tqwm_incr.Script.json;
      Printf.printf "incr: wrote JSON report to %s\n" out);
    (match timing_json_file with
    | None -> ()
    | Some out ->
      (* the same tqwm-report/1 document a live server session answers
         to a [timing] request — the byte-identity oracle CI compares
         server replays against *)
      Json.write_file out
        (Tqwm_incr.Script.timing_json
           ?clock_period:outcome.Tqwm_incr.Script.clock_period ~k:timing_k
           outcome.Tqwm_incr.Script.session);
      Printf.printf "incr: wrote timing report to %s\n" out);
    0

(* --audit: golden-vs-QWM accuracy observatory over the workload catalog,
   with drift detection against the persisted AUDIT_accuracy.json ledger *)
let run_audit ~tech ~domains ~baseline_file ~update_baseline ~tol_pct ~json_file =
  let path = Option.value baseline_file ~default:"AUDIT_accuracy.json" in
  let tol =
    match tol_pct with
    | None -> Audit_baseline.default_tolerances
    | Some abs_pp when abs_pp >= 0.0 ->
      { Audit_baseline.default_tolerances with Audit_baseline.abs_pp }
    | Some bad ->
      Printf.eprintf "qwm_sim: --tol-pct must be >= 0 (got %g)\n" bad;
      exit 2
  in
  let t0 = Unix.gettimeofday () in
  let audit = Audit.run ~domains tech in
  let elapsed = Unix.gettimeofday () -. t0 in
  Audit.pp Format.std_formatter audit;
  Printf.printf "audit: %d stages on %d domain%s in %.2f s\n"
    audit.Audit.overall.Audit.stages domains
    (if domains = 1 then "" else "s")
    elapsed;
  let drift =
    match Audit_baseline.load path with
    | None ->
      Printf.printf
        "audit: no baseline at %s (run with --update-baseline to create one)\n"
        path;
      None
    | Some baseline ->
      let report = Drift.check ~tol ~baseline audit in
      Printf.printf "audit: drift vs %s (tolerance %.2fpp + %.0f%%):\n" path
        tol.Audit_baseline.abs_pp
        (100.0 *. tol.Audit_baseline.rel);
      Drift.pp Format.std_formatter report;
      Some report
    | exception Failure msg ->
      Printf.eprintf "qwm_sim: cannot read baseline %s: %s\n" path msg;
      exit 2
  in
  if update_baseline then begin
    let n = Audit_baseline.save ~path audit in
    Printf.printf "audit: appended baseline record to %s (%d record%s)\n" path n
      (if n = 1 then "" else "s")
  end;
  (match json_file with
  | None -> ()
  | Some out ->
    let doc =
      match Audit.to_json audit with
      | Json.Obj fields ->
        Json.Obj
          (fields
          @ [
              ("baseline", Json.String path);
              ( "drift",
                match drift with Some r -> Drift.to_json r | None -> Json.Null );
            ])
      | other -> other
    in
    Json.write_file out doc;
    Printf.printf "audit: wrote JSON report to %s\n" out);
  match drift with Some r when Drift.has_regressions r -> 1 | Some _ | None -> 0

(* --partition: parse a netlist deck and report its logic stages *)
let partition_netlist path =
  let tech = Tech.cmosp35 in
  match Netlist_parser.parse_file tech path with
  | exception Netlist_parser.Parse_error { line; message } ->
    Printf.eprintf "%s:%d: %s\n" path line message;
    1
  | exception Sys_error msg ->
    Printf.eprintf "%s\n" msg;
    1
  | net ->
    let gate_load (d : Device.t) = Capacitance.gate tech ~w:d.Device.w ~l:d.Device.l in
    let extraction = Ccc.extract ~gate_load net in
    Printf.printf "%s: %d nodes, %d elements -> %d logic stages\n" path
      net.Netlist.num_nodes
      (Array.length net.Netlist.elements)
      (Array.length extraction.Ccc.instances);
    Array.iter
      (fun inst ->
        let stage = inst.Ccc.stage in
        Printf.printf "stage %d: %d edges, inputs {%s}, outputs {%s}\n"
          inst.Ccc.component
          (Array.length stage.Stage.edges)
          (String.concat ", " (List.map fst inst.Ccc.input_nets))
          (String.concat ", "
             (List.map (Stage.node_name stage) stage.Stage.outputs));
        Format.printf "%a" Stage.pp stage)
      extraction.Ccc.instances;
    0

let run_main circuit engine dt_ps waveform ramp_ps partition incr_script scratch
    epsilon_ps sta_depth sta_fanout domains scheduler chunk no_cache report_timing
    report_slack k_paths clock_period_ps json_file audit baseline_file
    update_baseline tol_pct serve graph_spec max_sessions timing_json_file
    timing_k prom access_log slow_ms =
  match serve with
  | Some addr ->
    run_serve ~tech:Tech.cmosp35 ~addr ~graph_spec
      ~domains:(Option.value domains ~default:1)
      ~epsilon_ps ~max_sessions ~prom ~access_log ~slow_ms
  | None ->
  if audit then
    run_audit ~tech:Tech.cmosp35
      ~domains:(Option.value domains ~default:1)
      ~baseline_file ~update_baseline ~tol_pct ~json_file
  else
  match partition with
  | Some path -> partition_netlist path
  | None ->
  match incr_script with
  | Some path ->
    run_incr ~tech:Tech.cmosp35
      ~domains:(Option.value domains ~default:1)
      ~use_cache:(not no_cache) ~scratch ~epsilon_ps ~json_file
      ~timing_json_file ~timing_k path
  | None ->
  let tech = Tech.cmosp35 in
  match Catalog.scenario tech circuit with
  | exception Not_found ->
    Printf.eprintf "unknown circuit %S; examples: %s\n" circuit
      (String.concat ", " Catalog.examples);
    1
  | scenario ->
    let scenario =
      match ramp_ps with
      | None -> scenario
      | Some r -> Scenario.with_ramp_input ~rise_time:(r *. 1e-12) scenario
    in
    match sta_depth with
    | Some depth ->
      let domains = Option.value domains ~default:(Parallel.default_domains ()) in
      run_sta ~tech ~depth ~fanout:sta_fanout ~domains ~scheduler ~chunk
        ~use_cache:(not no_cache) ~report_timing ~report_slack ~k_paths
        ~clock_period_ps ~json_file scenario
    | None ->
    Printf.printf "circuit %s: %d nodes, %d edges, window %.0f ps\n"
      scenario.Scenario.name scenario.Scenario.stage.Stage.num_nodes
      (Array.length scenario.Scenario.stage.Stage.edges)
      (scenario.Scenario.t_end *. ps);
    let golden = Models.golden tech in
    let dt = dt_ps *. 1e-12 in
    (match engine with
    | `Spice -> ignore (run_spice ~model:golden ~dt ~waveform scenario)
    | `Qwm -> ignore (run_qwm ~model:(Models.table tech) ~waveform scenario)
    | `Both ->
      let sp = run_spice ~model:golden ~dt ~waveform scenario in
      let qw = run_qwm ~model:(Models.table tech) ~waveform scenario in
      (match (sp.Engine.delay, qw.Qwm.delay) with
      | Some a, Some b ->
        Printf.printf "delay error: %.2f%%  speed-up: %.1fx\n"
          (100.0 *. Float.abs (b -. a) /. a)
          (sp.Engine.runtime_seconds /. qw.Qwm.runtime_seconds)
      | (Some _ | None), _ -> ()));
    0

let main circuit engine dt_ps waveform ramp_ps partition incr_script scratch
    epsilon_ps sta_depth sta_fanout domains scheduler chunk no_cache report_timing
    report_slack k_paths clock_period_ps json_file audit baseline_file
    update_baseline tol_pct serve graph_spec max_sessions timing_json_file
    timing_k trace_file trace_out metrics_file prom access_log slow_ms =
  (* --trace-out is the serve-mode spelling; either flag records, the
     daemon gets a bounded buffer so a long run cannot grow without
     limit *)
  let trace_file =
    match (trace_file, trace_out) with Some f, _ -> Some f | None, o -> o
  in
  if trace_file <> None then
    if serve <> None then Trace.enable ~cap:262_144 () else Trace.enable ();
  let code =
    run_main circuit engine dt_ps waveform ramp_ps partition incr_script scratch
      epsilon_ps sta_depth sta_fanout domains scheduler chunk no_cache
      report_timing report_slack k_paths clock_period_ps json_file audit
      baseline_file update_baseline tol_pct serve graph_spec max_sessions
      timing_json_file timing_k prom access_log slow_ms
  in
  (match trace_file with
  | None -> ()
  | Some path ->
    Trace.write_file path;
    Printf.printf "trace: wrote Chrome trace events to %s (open in chrome://tracing or ui.perfetto.dev)\n"
      path);
  (match metrics_file with
  | None -> ()
  | Some path ->
    Json.write_file path (with_gc_stat (Metrics.snapshot ()));
    Printf.printf "metrics: wrote counters, histograms and gc stats to %s\n" path);
  code

open Cmdliner

let circuit =
  let doc = "Circuit to simulate (inv, nand<k>, nor<k>, stack<k>, manchester<bits>, decoder<levels>, ckt<len>_<seed>)." in
  Arg.(value & pos 0 string "nand3" & info [] ~docv:"CIRCUIT" ~doc)

let engine =
  let doc = "Engine: qwm, spice, or both." in
  Arg.(value
    & opt (enum [ ("qwm", `Qwm); ("spice", `Spice); ("both", `Both) ]) `Both
    & info [ "e"; "engine" ] ~docv:"ENGINE" ~doc)

let dt =
  let doc = "SPICE-engine step size in picoseconds." in
  Arg.(value & opt float 1.0 & info [ "dt" ] ~docv:"PS" ~doc)

let waveform =
  let doc = "Print output waveform samples." in
  Arg.(value & flag & info [ "w"; "waveform" ] ~doc)

let ramp =
  let doc = "Drive the switching input with a ramp of this rise time (ps) instead of a step." in
  Arg.(value & opt (some float) None & info [ "ramp" ] ~docv:"PS" ~doc)

let partition =
  let doc = "Parse a SPICE-flavoured netlist file and print its channel-connected logic stages instead of simulating." in
  Arg.(value & opt (some file) None & info [ "p"; "partition" ] ~docv:"FILE" ~doc)

let incr_script =
  let doc = "Run an incremental STA session from the edit/query command file $(docv) (commands: graph, stage, connect, disconnect, remove, resize, load, swap, retime, report, query). With --json, writes the final analysis and session stats." in
  Arg.(value & opt (some file) None & info [ "incr" ] ~docv:"SCRIPT" ~doc)

let scratch =
  let doc = "In --incr mode, compute every report from scratch instead of incrementally (the oracle the incremental engine is checked against)." in
  Arg.(value & flag & info [ "scratch" ] ~doc)

let epsilon_ps =
  let doc = "In --incr mode, early-cutoff tolerance in picoseconds on per-stage arrival and slew (0 = exact, bit-identical to from-scratch)." in
  Arg.(value & opt float 0.0 & info [ "epsilon" ] ~docv:"PS" ~doc)

let sta_depth =
  let doc = "Instead of a single solve, run static timing analysis over a fan-out tree of DEPTH levels of copies of the circuit." in
  Arg.(value & opt (some int) None & info [ "sta" ] ~docv:"DEPTH" ~doc)

let sta_fanout =
  let doc = "Fan-out per tree level in --sta mode." in
  Arg.(value & opt int 2 & info [ "fanout" ] ~docv:"K" ~doc)

let domains =
  let doc = "Domains used by --sta propagation (default: the recommended domain count of this machine)." in
  Arg.(value & opt (some int) None & info [ "domains" ] ~docv:"N" ~doc)

let scheduler =
  let doc =
    "Parallel scheduler used by --sta propagation: steal (level-batched \
     work-stealing chunk deques, the default) or ready (legacy per-stage \
     ready queue, kept for A/B comparison)."
  in
  Arg.(value
    & opt
        (enum
           [
             ("steal", Tqwm_sta.Parallel.Work_stealing);
             ("ready", Tqwm_sta.Parallel.Ready_queue);
           ])
        Tqwm_sta.Parallel.Work_stealing
    & info [ "scheduler" ] ~docv:"NAME" ~doc)

let chunk =
  let doc =
    "Stages per work-stealing chunk in --sta mode (>= 1); the scheduling \
     quantum each synchronization is amortized over. Default: auto-sized \
     from the widest level and the domain count."
  in
  Arg.(value & opt (some int) None & info [ "chunk" ] ~docv:"N" ~doc)

let no_cache =
  let doc = "Disable stage-result memoization in --sta mode." in
  Arg.(value & flag & info [ "no-cache" ] ~doc)

let report_timing =
  let doc =
    "In --sta mode, enumerate the --k-paths worst paths and print each \
     with stage-by-stage attribution (arrival, delay, slew, QWM \
     region/Newton counts, cache sharing) plus the WNS/TNS summary. With \
     --json, writes the versioned tqwm-report/1 document instead of the \
     legacy analysis dump."
  in
  Arg.(value & flag & info [ "report-timing" ] ~doc)

let report_slack =
  let doc =
    "In --sta mode, print the per-stage arrival/required/slack table, the \
     endpoint table and the WNS/TNS summary from the backward \
     required-time pass."
  in
  Arg.(value & flag & info [ "report-slack" ] ~doc)

let k_paths =
  let doc = "Number of worst paths enumerated by --report-timing (>= 1)." in
  Arg.(value & opt int 5 & info [ "k-paths" ] ~docv:"N" ~doc)

let clock_period_ps =
  let doc =
    "Clock period in picoseconds for slack/required-time reporting. \
     Default: the worst arrival (zero-slack normalization), so slacks \
     read as margin to the critical path."
  in
  Arg.(value & opt (some float) None & info [ "clock-period" ] ~docv:"PS" ~doc)

let json_file =
  let doc = "In --sta mode, write the machine-readable analysis (per-stage timings, critical path) to $(docv); in --audit mode, the tqwm-audit/1 accuracy report with its drift section." in
  Arg.(value & opt (some string) None & info [ "json" ] ~docv:"FILE" ~doc)

let audit =
  let doc = "Run the accuracy audit: QWM and the golden engine side-by-side over the workload catalog (chains, random stacks, decoder trees, AWE-reduced wires), reporting per-stage delay/slew/waveform errors and drift against the persisted baseline ledger. Exits 1 if any metric is classified as regressed." in
  Arg.(value & flag & info [ "audit" ] ~doc)

let baseline_file =
  let doc = "Baseline ledger the audit compares against and --update-baseline appends to (default AUDIT_accuracy.json)." in
  Arg.(value & opt (some string) None & info [ "baseline" ] ~docv:"FILE" ~doc)

let update_baseline =
  let doc = "Append this audit run to the baseline ledger (date- and commit-stamped)." in
  Arg.(value & flag & info [ "update-baseline" ] ~doc)

let tol_pct =
  let doc = "Drift tolerance in absolute percentage points on every audited error metric (the 5% relative component is kept); metrics moving beyond it are classified improved/regressed." in
  Arg.(value & opt (some float) None & info [ "tol-pct" ] ~docv:"X" ~doc)

let serve =
  let doc =
    "Run as a timing daemon on $(docv) (unix:PATH or HOST:PORT; TCP port \
     0 picks a free port): one shared frozen baseline graph, --domains \
     worker domains, each client connection an isolated what-if session \
     speaking newline-delimited JSON (verbs: load, edit, script, report, \
     query, timing, slack, explain, document, metrics, health, stats, \
     trace, close). Runs until SIGINT/SIGTERM."
  in
  Arg.(value & opt (some string) None & info [ "serve" ] ~docv:"ADDR" ~doc)

let graph_spec =
  let doc =
    "In --serve mode, the shared baseline graph as a workload spec (the \
     script [graph] grammar without the keyword: 'chain N', 'diamond', \
     'decoder FANOUT DEPTH [LEVELS]', 'stacks WIDTH DEPTH [SEED]'). Its \
     analysis runs once at startup; clients load copy-on-write forks of \
     it."
  in
  Arg.(value & opt (some string) None & info [ "graph" ] ~docv:"SPEC" ~doc)

let max_sessions =
  let doc = "In --serve mode, the concurrent-session cap; connections beyond it are answered with a server_full error." in
  Arg.(value & opt int 64 & info [ "max-sessions" ] ~docv:"N" ~doc)

let timing_json_file =
  let doc =
    "In --incr mode, also write the tqwm-report/1 timing document of the \
     final session state (k worst paths under the script's clock) to \
     $(docv) — byte-identical to a server session's [timing] response \
     after the same commands."
  in
  Arg.(value & opt (some string) None & info [ "timing-json" ] ~docv:"FILE" ~doc)

let timing_k =
  let doc = "Number of worst paths in the --timing-json document (>= 1)." in
  Arg.(value & opt int 1 & info [ "timing-k" ] ~docv:"N" ~doc)

let trace_file =
  let doc = "Record Chrome trace events (per-stage spans, per-domain workers, QWM regions) and write them to $(docv); load in chrome://tracing or ui.perfetto.dev." in
  Arg.(value & opt (some string) None & info [ "trace" ] ~docv:"FILE" ~doc)

let trace_out =
  let doc =
    "Synonym of --trace for --serve mode: record request-scoped Chrome \
     trace events (request and session ids on every span, merged across \
     worker domains) and write the single merged trace to $(docv) at \
     shutdown. The live buffer is also available over the wire via the \
     [trace] verb."
  in
  Arg.(value & opt (some string) None & info [ "trace-out" ] ~docv:"FILE" ~doc)

let prom =
  let doc =
    "In --serve mode, expose Prometheus text-format metrics over HTTP on \
     $(docv) (unix:PATH or HOST:PORT; port 0 picks a free port): GET \
     /metrics renders the live registry — counters, gauges and \
     histograms with cumulative buckets."
  in
  Arg.(value & opt (some string) None & info [ "prom" ] ~docv:"ADDR" ~doc)

let access_log =
  let doc =
    "In --serve mode, append one JSON line per request to $(docv): ts, \
     request id, session, verb, outcome (ok or the error code), bytes \
     in/out, latency in microseconds."
  in
  Arg.(value & opt (some string) None & info [ "access-log" ] ~docv:"FILE" ~doc)

let slow_ms =
  let doc =
    "In --serve mode, the slow-request threshold in milliseconds: \
     requests at or above it bump server.slow_requests and, with tracing \
     on, emit a server.slow_request trace instant."
  in
  Arg.(value & opt float 250.0 & info [ "slow-ms" ] ~docv:"MS" ~doc)

let metrics_file =
  let doc = "Write a JSON snapshot of telemetry counters and histograms (solver regions/iterations, cache hits, SPICE steps) to $(docv) on exit." in
  Arg.(value & opt (some string) None & info [ "metrics" ] ~docv:"FILE" ~doc)

let cmd =
  let doc = "transistor-level timing analysis by piecewise quadratic waveform matching" in
  Cmd.v
    (Cmd.info "qwm_sim" ~version:"1.0.0" ~doc)
    Term.(
      const main $ circuit $ engine $ dt $ waveform $ ramp $ partition
      $ incr_script $ scratch $ epsilon_ps $ sta_depth $ sta_fanout $ domains
      $ scheduler $ chunk $ no_cache $ report_timing $ report_slack $ k_paths
      $ clock_period_ps $ json_file $ audit $ baseline_file
      $ update_baseline $ tol_pct $ serve $ graph_spec $ max_sessions
      $ timing_json_file $ timing_k $ trace_file $ trace_out $ metrics_file
      $ prom $ access_log $ slow_ms)

let () = exit (Cmd.eval' cmd)
