* 2:1 pass-transistor mux driven by two inverters.
* Partition with:  dune exec bin/qwm_sim.exe -- -p examples/decks/mux_cell.sp
M1 na a gnd nmos W=0.8u
M2 vdd a na pmos W=1.6u
M3 nb b gnd nmos W=0.8u
M4 vdd b nb pmos W=1.6u
* pass gates share the output node: one channel-connected stage
M5 out s na nmos W=1.2u
M6 out sb nb nmos W=1.2u
Wout out far W=0.6u L=60u
Cfar far 15f
.input a b s sb
.output far
.end
