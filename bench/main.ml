(* Benchmark harness regenerating every table and figure of the paper's
   evaluation (Wang & Zhu, DATE 2003), plus the ablations called out in
   DESIGN.md. Run everything with

     dune exec bench/main.exe

   or select one experiment:

     dune exec bench/main.exe -- --table I
     dune exec bench/main.exe -- --table II
     dune exec bench/main.exe -- --table parallel [--domains N]
     dune exec bench/main.exe -- --table server [--smoke] [--domains N] [--clients C]
     dune exec bench/main.exe -- --table obs [--smoke] [--domains N] [--clients C]
     dune exec bench/main.exe -- --table incr [--smoke]
     dune exec bench/main.exe -- --table audit [--smoke]
     dune exec bench/main.exe -- --table alloc [--smoke]
     dune exec bench/main.exe -- --table report [--smoke]
     dune exec bench/main.exe -- --figure 5|7|8|9|10
     dune exec bench/main.exe -- --table ablation-linsolve
     dune exec bench/main.exe -- --table ablation-sc
     dune exec bench/main.exe -- --table ablation-grid
     dune exec bench/main.exe -- --bechamel
     dune exec bench/main.exe -- --smoke        # bounded CI smoke run

   Absolute runtimes differ from the paper (SUN Blade 1000 + Hspice/BSIM3
   there; this machine + our analytic golden engine here); the shape of
   each result is the reproduction target. See EXPERIMENTS.md. *)

open Tqwm_device
open Tqwm_circuit
module Qwm = Tqwm_core.Qwm
module Config = Tqwm_core.Config
module Qwm_solver = Tqwm_core.Qwm_solver
module Engine = Tqwm_spice.Engine
module Transient = Tqwm_spice.Transient
module Waveform = Tqwm_wave.Waveform
module Measure = Tqwm_wave.Measure

let tech = Tech.cmosp35

let golden = Models.golden tech

let table_model = lazy (Models.table tech)

let ps = 1e12

(* median-of-N wall-clock timing for a thunk *)
let time_median ?(repeat = 5) f =
  let times =
    List.init repeat (fun _ ->
        let t0 = Unix.gettimeofday () in
        let (_ : 'a) = f () in
        Unix.gettimeofday () -. t0)
    |> List.sort compare
  in
  List.nth times (repeat / 2)

let spice_config dt = { Transient.default_config with Transient.dt }

let run_spice ~dt scenario = Engine.run ~model:golden ~config:(spice_config dt) scenario

let run_qwm scenario = Qwm.run ~model:(Lazy.force table_model) scenario

type row = {
  name : string;
  spice_1ps : float;  (** seconds *)
  spice_10ps : float;
  qwm_time : float;
  speedup_1ps : float;
  speedup_10ps : float;
  error_percent : float;
}

let measure_row scenario =
  let t_1ps = time_median (fun () -> run_spice ~dt:1e-12 scenario) in
  let t_10ps = time_median (fun () -> run_spice ~dt:10e-12 scenario) in
  let t_qwm = time_median ~repeat:9 (fun () -> run_qwm scenario) in
  let reference = (run_spice ~dt:1e-12 scenario).Engine.delay in
  let qwm_delay = (run_qwm scenario).Qwm.delay in
  let error_percent =
    match (reference, qwm_delay) with
    | Some a, Some b -> 100.0 *. Float.abs (b -. a) /. a
    | (Some _ | None), _ -> nan
  in
  {
    name = scenario.Scenario.name;
    spice_1ps = t_1ps;
    spice_10ps = t_10ps;
    qwm_time = t_qwm;
    speedup_1ps = t_1ps /. t_qwm;
    speedup_10ps = t_10ps /. t_qwm;
    error_percent;
  }

let print_rows title rows =
  Printf.printf "\n=== %s ===\n" title;
  Printf.printf "%-12s %12s %9s %12s %9s %12s %8s\n" "Circuit" "Spice(1ps)" "Speed-up"
    "Spice(10ps)" "Speed-up" "QWM" "Error";
  List.iter
    (fun r ->
      Printf.printf "%-12s %10.2fms %8.1fx %10.2fms %8.1fx %10.3fms %7.2f%%\n" r.name
        (r.spice_1ps *. 1e3) r.speedup_1ps (r.spice_10ps *. 1e3) r.speedup_10ps
        (r.qwm_time *. 1e3) r.error_percent)
    rows;
  let errors = List.map (fun r -> r.error_percent) rows in
  let speedups1 = List.map (fun r -> r.speedup_1ps) rows in
  let speedups10 = List.map (fun r -> r.speedup_10ps) rows in
  let avg xs = List.fold_left ( +. ) 0.0 xs /. float_of_int (List.length xs) in
  Printf.printf
    "summary: avg speed-up %.1fx (1ps) / %.1fx (10ps); avg |error| %.2f%%, worst %.2f%%\n"
    (avg speedups1) (avg speedups10) (avg errors)
    (List.fold_left Float.max 0.0 errors)

(* ---------- Table I: QWM vs reference engine on logic gates ---------- *)

let table1 () =
  let scenarios =
    [
      Scenario.inverter_falling tech;
      Scenario.nand_falling ~n:2 tech;
      Scenario.nand_falling ~n:3 tech;
      Scenario.nand_falling ~n:4 tech;
    ]
  in
  print_rows "Table I: QWM vs SPICE-engine for logic gates (paper Table I)"
    (List.map measure_row scenarios)

(* ---------- Table II: random transistor stacks, lengths 5..10 ---------- *)

let table2 () =
  print_rows
    "Table II: QWM vs SPICE-engine for randomly generated logic stages (paper Table II)"
    (List.map measure_row (Random_circuits.table2_suite tech))

(* ---------- Figure 5: device-model I/V surface ---------- *)

let figure5 () =
  Printf.printf "\n=== Figure 5: NMOS I/V relationship Ids(Vd, Vs) at Vg = VDD ===\n";
  Printf.printf "%6s" "Vs\\Vd";
  let points = [ 0.0; 0.55; 1.1; 1.65; 2.2; 2.75; 3.3 ] in
  List.iter (fun vd -> Printf.printf " %8.2f" vd) points;
  print_newline ();
  List.iter
    (fun vs ->
      Printf.printf "%6.2f" vs;
      List.iter
        (fun vd ->
          let i =
            if vd < vs then 0.0
            else Mosfet.ids tech Mosfet.N ~w:1e-6 ~l:tech.Tech.l_min ~vg:tech.Tech.vdd ~vd ~vs
          in
          Printf.printf " %8.4f" (i *. 1e3))
        points;
      Printf.printf "  (mA)\n")
    points

(* ---------- Figure 7: discharge currents of a 6-NMOS stack ---------- *)

let figure7 () =
  Printf.printf
    "\n=== Figure 7: discharge current of a 6-NMOS transistor stack (mA) ===\n";
  let scenario = Scenario.stack_falling ~widths:(Array.make 6 1.6e-6) tech in
  let config = { (spice_config 1e-12) with Transient.record_currents = true } in
  let result = Transient.simulate ~model:golden ~config scenario in
  let stage = scenario.Scenario.stage in
  let n_edges = Array.length stage.Stage.edges in
  (* node k's discharge current = J_{k+1} - J_k (difference of neighbour
     channel currents, paper Eq. (4)) *)
  let node_current step node =
    match result.Transient.currents with
    | None -> 0.0
    | Some cur ->
      let j k = if k >= n_edges then 0.0 else cur.(step).(k) in
      j node -. j (node - 1) |> fun x -> -.x
  in
  ignore node_current;
  let times = List.init 13 (fun i -> float_of_int i *. 25e-12) in
  Printf.printf "%7s" "t(ps)";
  Array.iteri (fun e _ -> Printf.printf "   I%d" (e + 1)) stage.Stage.edges;
  Printf.printf "   (edge channel currents J_k)\n";
  List.iter
    (fun t ->
      let step = int_of_float (t /. 1e-12) in
      if step < Array.length result.Transient.times then begin
        Printf.printf "%7.0f" (t *. ps);
        (match result.Transient.currents with
        | Some cur -> Array.iter (fun i -> Printf.printf " %4.2f" (i *. 1e3)) cur.(step)
        | None -> ());
        print_newline ()
      end)
    times;
  (* single-peak observation + critical points *)
  let qwm = run_qwm scenario in
  Printf.printf "QWM critical points (ps): %s\n"
    (String.concat ", "
       (List.map (fun t -> Printf.sprintf "%.1f" (t *. ps)) qwm.Qwm.critical_times));
  (* peak instants of each edge current should track the critical points *)
  Array.iteri
    (fun e _ ->
      let w = Transient.edge_current_waveform result e in
      let peak_t, peak_v =
        Array.fold_left
          (fun (bt, bv) (t, v) -> if v > bv then (t, v) else (bt, bv))
          (0.0, neg_infinity) (Waveform.samples w)
      in
      Printf.printf "edge %d: peak %.2f mA at %.1f ps\n" (e + 1) (peak_v *. 1e3)
        (peak_t *. ps))
    stage.Stage.edges

(* ---------- Figure 8: I/V curve fitting ---------- *)

let figure8 () =
  Printf.printf "\n=== Figure 8: I/V curve fitting (linear saturation / quadratic triode) ===\n";
  let t = Table_model.of_analytic tech Mosfet.N in
  let vg_axis, vs_axis = Table_model.grid t in
  let gi = vg_axis.Tqwm_num.Interp.count - 1 in
  let fit = Table_model.fit_at t gi 0 in
  Printf.printf "at Vg = %.2f V, Vs = %.2f V (7 stored parameters):\n"
    (Tqwm_num.Interp.knot vg_axis gi)
    (Tqwm_num.Interp.knot vs_axis 0);
  Printf.printf "  saturation: Ids = s1*Vds + s2,          s1=%.4e s2=%.4e\n"
    fit.Table_model.s1 fit.Table_model.s2;
  Printf.printf "  triode:     Ids = t2*Vds^2 + t1*Vds + t0, t2=%.4e t1=%.4e t0=%.4e\n"
    fit.Table_model.t2 fit.Table_model.t1 fit.Table_model.t0;
  Printf.printf "  vth=%.4f V, vdsat=%.4f V\n" fit.Table_model.vth fit.Table_model.vdsat;
  Printf.printf "%8s %12s %12s %12s\n" "Vds(V)" "golden(mA)" "fitted(mA)" "error(uA)";
  let worst = ref 0.0 in
  List.iter
    (fun vds ->
      let exact =
        Mosfet.ids tech Mosfet.N ~w:1e-6 ~l:tech.Tech.l_min ~vg:tech.Tech.vdd ~vd:vds
          ~vs:0.0
      in
      let fitted = Table_model.lookup t ~vg:tech.Tech.vdd ~vs:0.0 ~vd:vds in
      worst := Float.max !worst (Float.abs (fitted -. exact));
      Printf.printf "%8.2f %12.4f %12.4f %12.3f\n" vds (exact *. 1e3) (fitted *. 1e3)
        ((fitted -. exact) *. 1e6))
    [ 0.0; 0.3; 0.8; 1.5; 2.2; 2.75; 3.0; 3.3 ];
  Printf.printf "max fit error %.3f uA\n" (!worst *. 1e6)

(* ---------- Figure 9: 6-NMOS stack waveforms, QWM vs SPICE ---------- *)

let figure9 () =
  Printf.printf
    "\n=== Figure 9: 6-NMOS stack simulation (Manchester carry chain longest path) ===\n";
  let scenario = Scenario.manchester ~bits:5 tech in
  let sp = run_spice ~dt:1e-12 scenario in
  let qw = run_qwm scenario in
  Printf.printf "%7s" "t(ps)";
  List.iter (fun (name, _) -> Printf.printf " %6s " name) qw.Qwm.node_quadratics;
  Printf.printf "| spice out\n";
  List.iter
    (fun t_ps ->
      let t = t_ps *. 1e-12 in
      Printf.printf "%7.0f" t_ps;
      List.iter
        (fun (_, q) -> Printf.printf " %6.3f " (Waveform.quadratic_value_at q t))
        qw.Qwm.node_quadratics;
      Printf.printf "| %6.3f\n" (Waveform.value_at sp.Engine.output t))
    [ 0.0; 15.0; 30.0; 50.0; 75.0; 100.0; 130.0; 170.0; 220.0; 300.0; 400.0 ];
  let cmp =
    Tqwm_wave.Compare.waveforms ~reference:sp.Engine.output
      (Qwm.output_waveform qw ~dt:1e-12)
  in
  (match (sp.Engine.delay, qw.Qwm.delay) with
  | Some a, Some b ->
    Printf.printf
      "delay: spice %.2f ps vs qwm %.2f ps -> accuracy %.2f%% (waveform RMS %.2f%% of swing)\n"
      (a *. ps) (b *. ps)
      (100.0 -. (100.0 *. Float.abs (b -. a) /. a))
      cmp.Tqwm_wave.Compare.rms_percent_of_swing
  | (Some _ | None), _ -> ())

(* ---------- Figure 10: decoder-tree simulation with pi-model wires ---------- *)

let figure10 () =
  Printf.printf "\n=== Figure 10: decoder tree simulation (wires as pi macromodels) ===\n";
  let scenario = Scenario.decoder ~levels:3 tech in
  let sp = run_spice ~dt:1e-12 scenario in
  let qw = run_qwm scenario in
  let chain = qw.Qwm.lowering.Path.chain in
  Printf.printf "stage: %d edges; QWM chain after O'Brien-Savarino reduction: %d edges\n"
    (Array.length scenario.Scenario.stage.Stage.edges)
    (Chain.length chain);
  (* waveform pairs across each wire (both terminals), as in the figure *)
  Printf.printf "%7s" "t(ps)";
  List.iter (fun (name, _) -> Printf.printf " %6s " name) qw.Qwm.node_quadratics;
  print_newline ();
  List.iter
    (fun t_ps ->
      Printf.printf "%7.0f" t_ps;
      List.iter
        (fun (_, q) ->
          Printf.printf " %6.3f " (Waveform.quadratic_value_at q (t_ps *. 1e-12)))
        qw.Qwm.node_quadratics;
      print_newline ())
    [ 0.0; 30.0; 60.0; 100.0; 150.0; 220.0; 300.0; 450.0 ];
  let t_spice = time_median (fun () -> run_spice ~dt:1e-12 scenario) in
  let t_qwm = time_median (fun () -> run_qwm scenario) in
  match (sp.Engine.delay, qw.Qwm.delay) with
  | Some a, Some b ->
    Printf.printf "speed-up over 1ps reference: %.1fx; accuracy %.2f%%\n"
      (t_spice /. t_qwm)
      (100.0 -. (100.0 *. Float.abs (b -. a) /. a))
  | (Some _ | None), _ -> ()

(* ---------- Ablation A: linear solvers inside the QWM Newton ---------- *)

let ablation_linsolve () =
  Printf.printf
    "\n=== Ablation: tridiagonal+Sherman-Morrison vs dense LU in the region solve ===\n";
  Printf.printf "(paper SIV-B: 'tridiagonal method gives almost twice speedup over LU')\n";
  let scenario = Random_circuits.stack_scenario tech ~len:10 ~seed:1 in
  let model = Lazy.force table_model in
  List.iter
    (fun (name, solver) ->
      let config = { Config.default with Config.linear_solver = solver } in
      let t = time_median ~repeat:9 (fun () -> Qwm.run ~model ~config scenario) in
      let report = Qwm.run ~model ~config scenario in
      Printf.printf "%-18s %8.3f ms  (%d linear solves, delay %s)\n" name (t *. 1e3)
        report.Qwm.stats.Qwm_solver.linear_solves
        (match report.Qwm.delay with
        | Some d -> Printf.sprintf "%.2f ps" (d *. ps)
        | None -> "none"))
    [
      ("bordered", Config.Bordered);
      ("sherman-morrison", Config.Sherman_morrison);
      ("dense-lu", Config.Dense_lu);
    ]

(* ---------- Ablation B: Newton-Raphson vs successive chords (TETA) ---------- *)

let ablation_sc () =
  Printf.printf "\n=== Ablation: Newton-Raphson vs successive-chord transient solver ===\n";
  let scenario = Scenario.nand_falling ~n:3 tech in
  List.iter
    (fun (name, solver, max_iterations) ->
      let config = { (spice_config 1e-12) with Transient.solver; max_iterations } in
      let t = time_median (fun () -> Engine.run ~model:golden ~config scenario) in
      let report = Engine.run ~model:golden ~config scenario in
      Printf.printf "%-18s %8.3f ms  (%d nonlinear iterations, delay %s)\n" name
        (t *. 1e3)
        report.Engine.result.Transient.stats.Transient.nonlinear_iterations
        (match report.Engine.delay with
        | Some d -> Printf.sprintf "%.2f ps" (d *. ps)
        | None -> "none"))
    [
      ("newton-raphson", Transient.Newton_raphson, 50);
      ("successive-chord", Transient.Successive_chord, 400);
    ]

(* ---------- Ablation C: table grid resolution vs QWM accuracy ---------- *)

let ablation_grid () =
  Printf.printf "\n=== Ablation: characterization grid step vs QWM delay accuracy ===\n";
  let scenario = Scenario.stack_falling ~widths:(Array.make 6 1.6e-6) tech in
  let reference =
    match (run_spice ~dt:1e-12 scenario).Engine.delay with
    | Some d -> d
    | None -> failwith "reference delay missing"
  in
  List.iter
    (fun grid_step ->
      let model = Models.table ~grid_step tech in
      let report = Qwm.run ~model scenario in
      match report.Qwm.delay with
      | Some d ->
        Printf.printf "grid %.2f V: delay %.2f ps, error %.2f%%\n" grid_step (d *. ps)
          (100.0 *. Float.abs (d -. reference) /. reference)
      | None -> Printf.printf "grid %.2f V: no delay\n" grid_step)
    [ 0.4; 0.2; 0.1; 0.05 ]

(* ---------- Ablation D: waveform model (quadratic vs linear) ---------- *)

let ablation_waveform () =
  Printf.printf
    "\n=== Ablation: waveform model — the paper's quadratic vs a linear alternative ===\n";
  Printf.printf "(the conclusion's future work: 'suitability of other waveforms')\n";
  let scenarios =
    [
      Scenario.inverter_falling tech;
      Scenario.nand_falling ~n:3 tech;
      Scenario.stack_falling ~widths:(Array.make 6 1.6e-6) tech;
    ]
  in
  let sparse = [ 0.5; 0.15 ] in
  let run scenario waveform_model levels =
    let config = { Config.default with Config.waveform_model; levels } in
    (Qwm.run ~model:(Lazy.force table_model) ~config scenario).Qwm.delay
  in
  Printf.printf "%-10s %16s %16s %16s %16s\n" "circuit" "quad (dense)" "linear (dense)"
    "quad (sparse)" "linear (sparse)";
  List.iter
    (fun scenario ->
      let reference =
        match (run_spice ~dt:1e-12 scenario).Engine.delay with
        | Some d -> d
        | None -> nan
      in
      let err = function
        | Some d -> Printf.sprintf "%8.2f%%" (100.0 *. Float.abs (d -. reference) /. reference)
        | None -> "    none"
      in
      Printf.printf "%-10s %16s %16s %16s %16s\n" scenario.Scenario.name
        (err (run scenario Config.Quadratic Config.default.Config.levels))
        (err (run scenario Config.Linear Config.default.Config.levels))
        (err (run scenario Config.Quadratic sparse))
        (err (run scenario Config.Linear sparse)))
    scenarios

(* ---------- Parallel STA: level-parallel propagation + stage cache ---------- *)

module Timing_graph = Tqwm_sta.Timing_graph
module Arrival = Tqwm_sta.Arrival
module Parallel = Tqwm_sta.Parallel
module Stage_cache = Tqwm_sta.Stage_cache
module Workloads = Tqwm_sta.Workloads
module Metrics = Tqwm_obs.Metrics
module Json = Tqwm_obs.Json

let same_analysis (a : Arrival.analysis) (b : Arrival.analysis) =
  a.Arrival.timings = b.Arrival.timings
  && a.Arrival.critical_path = b.Arrival.critical_path
  && a.Arrival.worst_arrival = b.Arrival.worst_arrival

let sta_parallel ?(smoke = false) ?(domains = 4) () =
  let model = Lazy.force table_model in
  let repeat = if smoke then 1 else 3 in
  let workloads =
    if smoke then
      [
        ("decoder-tree", Workloads.decoder_tree ~fanout:3 ~depth:2 tech);
        ("random-stacks", Workloads.random_stacks ~width:4 ~depth:2 tech);
      ]
    else
      [
        ("decoder-tree", Workloads.decoder_tree ~fanout:4 ~depth:3 tech);
        ("random-stacks", Workloads.random_stacks ~width:12 ~depth:4 tech);
      ]
  in
  Printf.printf
    "\n=== Parallel STA propagation: %d domains vs sequential, work-stealing vs \
     ready-queue, stage cache ===\n"
    domains;
  let cores = Parallel.default_domains () in
  (* honesty: oversubscribed runs (more domains than cores) cannot show a
     wall-clock speedup — flag them instead of reporting a silent 0.15x *)
  let degraded = cores < domains in
  Printf.printf "(machine reports %d available core%s%s)\n" cores
    (if cores = 1 then "" else "s")
    (if degraded then
       " — wall-clock speedup is bounded by the hardware, not the engine"
     else "");
  if degraded then
    Printf.eprintf
      "bench: WARNING: %d domains on %d available core%s — parallel timings are \
       oversubscribed; speedup figures below are degraded and not asserted\n"
      domains cores
      (if cores = 1 then "" else "s");
  Printf.printf "%-14s %7s %10s %10s %10s %8s %7s %7s %10s %8s %7s %10s\n" "workload"
    "stages" "seq" "steal" "ready" "speedup" "steals" "chunks" "identical" "hits"
    "solves" "warm";
  Metrics.reset ();
  let counter name = Option.value (Metrics.find_counter name) ~default:0 in
  let rows =
    List.map
      (fun (name, graph) ->
      (* freeze outside the timed region: measured time is propagation *)
      ignore (Timing_graph.freeze graph);
      let t_seq =
        time_median ~repeat (fun () -> Parallel.propagate ~model ~domains:1 graph)
      in
      let t_par =
        time_median ~repeat (fun () -> Parallel.propagate ~model ~domains graph)
      in
      (* A/B: the legacy per-stage ready queue on the same workload *)
      let t_ready =
        time_median ~repeat (fun () ->
            Parallel.propagate ~model ~domains ~scheduler:Parallel.Ready_queue graph)
      in
      (* steal telemetry of one representative work-stealing run *)
      let steals0 = counter "sta.steals" and chunks0 = counter "sta.chunks" in
      let (_ : Arrival.analysis) = Parallel.propagate ~model ~domains graph in
      let steals = counter "sta.steals" - steals0 in
      let chunks = counter "sta.chunks" - chunks0 in
      let identical =
        let seq = Parallel.propagate ~model ~domains:1 graph in
        let par = Parallel.propagate ~model ~domains graph in
        let ready = Parallel.propagate ~model ~domains ~scheduler:Parallel.Ready_queue graph in
        let cache_seq = Stage_cache.create () in
        let cseq = Parallel.propagate ~model ~cache:cache_seq ~domains:1 graph in
        let cache_par = Stage_cache.create () in
        let cpar = Parallel.propagate ~model ~cache:cache_par ~domains graph in
        same_analysis seq par && same_analysis seq ready && same_analysis cseq cpar
      in
      let cache = Stage_cache.create () in
      let (_ : Arrival.analysis) = Parallel.propagate ~model ~cache ~domains graph in
      (* snapshot before the warm-cache timing below inflates the counters *)
      let stats = Stage_cache.stats cache in
      let cold_hit_rate =
        let total = stats.Stage_cache.hits + stats.Stage_cache.misses in
        if total = 0 then 0.0
        else float_of_int stats.Stage_cache.hits /. float_of_int total
      in
      (* warm cache: every stage hits, leaving only scheduling overhead *)
      let t_warm =
        time_median ~repeat (fun () -> Parallel.propagate ~model ~cache ~domains graph)
      in
      (* with real cores behind every domain, parallel propagation must
         not lose to sequential; skipped when oversubscription makes the
         number meaningless *)
      if not degraded then assert (t_seq /. t_par > 0.5);
      Printf.printf
        "%-14s %7d %8.1fms %8.1fms %8.1fms %7.2fx %7d %7d %10s %7.0f%% %7d %8.2fms\n"
        name
        (Timing_graph.num_stages graph) (t_seq *. 1e3) (t_par *. 1e3)
        (t_ready *. 1e3) (t_seq /. t_par) steals chunks
        (if identical then "yes" else "NO")
        (100.0 *. cold_hit_rate)
        stats.Stage_cache.misses (t_warm *. 1e3);
      Json.Obj
        [
          ("name", Json.String name);
          ("stages", Json.Int (Timing_graph.num_stages graph));
          ("seq_ms", Json.Float (t_seq *. 1e3));
          ("par_ms", Json.Float (t_par *. 1e3));
          ("ready_ms", Json.Float (t_ready *. 1e3));
          ("speedup", Json.Float (t_seq /. t_par));
          ("speedup_ready", Json.Float (t_seq /. t_ready));
          ("steals", Json.Int steals);
          ("chunks", Json.Int chunks);
          (* stamped per row, not just top-level: a scenario record cut out
             of the ledger stays honest about oversubscription on its own *)
          ("degraded", Json.Bool degraded);
          ("identical", Json.Bool identical);
          ( "cache",
            Json.Obj
              [
                ("hits", Json.Int stats.Stage_cache.hits);
                ("misses", Json.Int stats.Stage_cache.misses);
                ("hit_rate", Json.Float cold_hit_rate);
              ] );
          ("warm_ms", Json.Float (t_warm *. 1e3));
        ])
      workloads
  in
  Printf.printf
    "(identical = steal, ready and cached timings bit-equal to sequential;\n\
    \ steal/ready = %d-domain wall clock under each scheduler; steals/chunks =\n\
    \ telemetry of one work-stealing run; solves = QWM runs through a cold shared\n\
    \ cache; warm = propagation with a fully warm cache, i.e. pure scheduling\n\
    \ overhead)\n"
    domains;
  Json.Obj
    [
      ("schema", Json.String "tqwm-bench-parallel/2");
      ("smoke", Json.Bool smoke);
      ("domains", Json.Int domains);
      ("scheduler", Json.String (Parallel.scheduler_name Parallel.Work_stealing));
      (* 0 = auto-sized from level width and domain count (Parallel.propagate
         default); a fixed positive value would be recorded verbatim *)
      ("chunk_size", Json.Int 0);
      ("available_cores", Json.Int cores);
      ("degraded", Json.Bool degraded);
      ("workloads", Json.List rows);
      (* cumulative solver/cache telemetry over every run above — the
         absolute values scale with [repeat], so compare like runs only *)
      ("metrics", Metrics.snapshot ());
    ]

(* ---------- Incremental STA: full re-propagation vs edit-driven refresh ---------- *)

module Edit = Tqwm_incr.Edit
module Session = Tqwm_incr.Session

let counter_value name =
  Option.value (List.assoc_opt name (Metrics.counters_alist ())) ~default:0

let sta_incr ?(smoke = false) () =
  let model = Lazy.force table_model in
  let fanout, depth = if smoke then (3, 2) else (4, 4) in
  let graph = Workloads.decoder_tree ~fanout ~depth tech in
  let n = Timing_graph.num_stages graph in
  let edits = if smoke then 8 else 30 in
  Printf.printf
    "\n=== Incremental STA: decoder tree (fan-out %d, depth %d, %d stages), %d random \
     single-stage edits ===\n"
    fanout depth n edits;
  let cache = Stage_cache.create () in
  let session = Session.create ~model ~cache graph in
  ignore (Session.analysis session);
  (* the oracle keeps its own equally-warm cache: after each edit both
     sides pay the same fresh solves for the affected cone, and the
     measured difference is the full propagation's visit to every other
     stage (cache lookups included) that the incremental engine skips *)
  let scratch_cache = Stage_cache.create () in
  ignore (Session.scratch_analysis ~cache:scratch_cache session);
  let rng = Random.State.make [| 2003 |] in
  let t_incr = ref 0.0 and t_full = ref 0.0 and reeval = ref 0 in
  let identical = ref true in
  for _ = 1 to edits do
    let stage = Random.State.int rng n in
    let scenario = Timing_graph.scenario graph stage in
    let edge = Random.State.int rng (Array.length scenario.Scenario.stage.Stage.edges) in
    let scale = 0.6 +. Random.State.float rng 1.2 in
    ignore (Session.apply session (Edit.Resize_device { stage; edge; scale }));
    let t0 = Unix.gettimeofday () in
    reeval := !reeval + Session.recompute session;
    let t1 = Unix.gettimeofday () in
    let scratch = Session.scratch_analysis ~cache:scratch_cache session in
    let t2 = Unix.gettimeofday () in
    t_incr := !t_incr +. (t1 -. t0);
    t_full := !t_full +. (t2 -. t1);
    if not (same_analysis (Session.analysis session) scratch) then identical := false
  done;
  let frac = float_of_int !reeval /. float_of_int (edits * n) in
  Printf.printf
    "full   %8.2f ms/edit   (every one of %d stages re-timed)\n"
    (!t_full /. float_of_int edits *. 1e3) n;
  Printf.printf
    "incr   %8.2f ms/edit   (avg %.1f stages re-timed = %.1f%% of the graph)\n"
    (!t_incr /. float_of_int edits *. 1e3)
    (float_of_int !reeval /. float_of_int edits)
    (100.0 *. frac);
  Printf.printf "speedup %7.1fx         identical to from-scratch: %s\n"
    (!t_full /. !t_incr)
    (if !identical then "yes" else "NO");
  (* a timing-neutral edit (scale 1.0) must die at the edited stage: one
     re-evaluation, one cutoff hit on the Tqwm_obs counter *)
  let cutoff0 = counter_value "incr.cutoff_hits" in
  ignore (Session.apply session (Edit.Resize_device { stage = 0; edge = 0; scale = 1.0 }));
  let neutral_reeval = Session.recompute session in
  let cutoff_delta = counter_value "incr.cutoff_hits" - cutoff0 in
  Printf.printf "cutoff: neutral edit re-timed %d stage (%d cutoff hit)\n" neutral_reeval
    cutoff_delta;
  assert (neutral_reeval = 1 && cutoff_delta = 1);
  assert (frac < 0.20);
  assert !identical;
  Json.Obj
    [
      ("schema", Json.String "tqwm-bench-incr/1");
      ("smoke", Json.Bool smoke);
      ( "workload",
        Json.Obj
          [
            ("name", Json.String "decoder-tree");
            ("fanout", Json.Int fanout);
            ("depth", Json.Int depth);
            ("stages", Json.Int n);
          ] );
      ("edits", Json.Int edits);
      ("full_ms_per_edit", Json.Float (!t_full /. float_of_int edits *. 1e3));
      ("incr_ms_per_edit", Json.Float (!t_incr /. float_of_int edits *. 1e3));
      ("speedup", Json.Float (!t_full /. !t_incr));
      ("stages_reeval_avg", Json.Float (float_of_int !reeval /. float_of_int edits));
      ("reeval_fraction", Json.Float frac);
      ("identical", Json.Bool !identical);
      ( "cutoff",
        Json.Obj
          [
            ("neutral_edit_reeval", Json.Int neutral_reeval);
            ("cutoff_hits", Json.Int cutoff_delta);
          ] );
    ]

(* ---------- Accuracy audit: golden-vs-QWM over the workload catalog ---------- *)

module Audit = Tqwm_audit.Audit

let sta_audit ?(smoke = false) () =
  Printf.printf
    "\n=== Accuracy audit: QWM vs golden engine over the workload catalog%s ===\n"
    (if smoke then " (smoke subset)" else "");
  let workloads = Audit.catalog ~smoke tech in
  let audit = Audit.run ~workloads tech in
  Audit.pp Format.std_formatter audit;
  (* the paper's trade-off point: accuracy and speed-up from the same run *)
  Printf.printf
    "trade-off: %.2f%% average accuracy at %.1fx golden/QWM runtime ratio\n"
    audit.Audit.overall.Audit.avg_accuracy_pct
    audit.Audit.overall.Audit.runtime_ratio;
  Audit.to_json audit

(* ---------- Allocation profile: the workspace-reuse hot path ---------- *)

(* Cold hands the solver a fresh [Qwm_solver.Workspace] every solve; warm
   reuses one across the loop (the production configuration: the stage
   cache reuses a per-domain workspace). Two allocation views per mode:
   the solver's own [qwm.alloc.minor_words] counter isolates the region
   solve loop — the metric the budget gate tracks — while the process
   delta around the loop includes scenario lowering, waveform assembly
   and (in cold mode) the workspace allocation itself. *)
let alloc_table ?(smoke = false) () =
  let model = Lazy.force table_model in
  let solves = if smoke then 200 else 1000 in
  let scenarios =
    if smoke then
      [ ("stack6", Scenario.stack_falling ~widths:(Array.make 6 1.6e-6) tech) ]
    else
      [
        ("nand3", Scenario.nand_falling ~n:3 tech);
        ("stack6", Scenario.stack_falling ~widths:(Array.make 6 1.6e-6) tech);
        ("stack10", Random_circuits.stack_scenario tech ~len:10 ~seed:1);
      ]
  in
  Printf.printf
    "\n=== Allocation profile: words per region solve, cold vs reused workspace ===\n";
  Printf.printf "(%d solves per mode; solver w/reg = qwm.alloc.minor_words per region,\n" solves;
  Printf.printf " process w/solve = whole-loop minor-word delta per solve)\n";
  Printf.printf "%-10s %8s %6s | %14s %14s | %16s %16s\n" "scenario" "mode" "reg/s"
    "solver w/reg" "proc w/solve" "solves/s" "ms/solve";
  let counter name = Option.value (Metrics.find_counter name) ~default:0 in
  let measure name scenario ~mode =
    let shared =
      match mode with `Warm -> Some (Qwm_solver.Workspace.create ()) | `Cold -> None
    in
    let run () =
      let workspace =
        match shared with Some ws -> ws | None -> Qwm_solver.Workspace.create ()
      in
      Qwm.run ~model ~workspace scenario
    in
    ignore (run ());  (* warm-up: tables, branch history, (warm) buffers *)
    Gc.full_major ();
    let solver_w0 = counter "qwm.alloc.minor_words" in
    let a0 = Tqwm_obs.Alloc.sample () in
    let t0 = Unix.gettimeofday () in
    let regions = ref 0 in
    for _ = 1 to solves do
      let r = run () in
      regions := !regions + r.Qwm.stats.Qwm_solver.regions
    done;
    let dt = Unix.gettimeofday () -. t0 in
    let d = Tqwm_obs.Alloc.since a0 in
    let solver_words = counter "qwm.alloc.minor_words" - solver_w0 in
    let solver_wpr = float_of_int solver_words /. float_of_int !regions in
    let proc_wps = d.Tqwm_obs.Alloc.minor_words /. float_of_int solves in
    let solves_per_s = float_of_int solves /. dt in
    Printf.printf "%-10s %8s %6d | %14.0f %14.0f | %16.1f %16.4f\n" name
      (match mode with `Cold -> "cold" | `Warm -> "warm")
      (!regions / solves) solver_wpr proc_wps solves_per_s
      (dt /. float_of_int solves *. 1e3);
    Json.Obj
      [
        ("mode", Json.String (match mode with `Cold -> "cold" | `Warm -> "warm"));
        ("regions_per_solve", Json.Int (!regions / solves));
        ("solver_words_per_region", Json.Float solver_wpr);
        ("process_words_per_solve", Json.Float proc_wps);
        ("solves_per_s", Json.Float solves_per_s);
        ("ms_per_solve", Json.Float (dt /. float_of_int solves *. 1e3));
      ]
  in
  let rows =
    List.map
      (fun (name, scenario) ->
        let cold = measure name scenario ~mode:`Cold in
        let warm = measure name scenario ~mode:`Warm in
        Json.Obj [ ("name", Json.String name); ("cold", cold); ("warm", warm) ])
      scenarios
  in
  (* Arena leg: one sequential propagation over a decoder tree through
     the SoA timing arena, reporting the packed per-level waveform
     footprint and the whole-propagation allocation per stage. *)
  let arena_json =
    let fanout, depth = if smoke then (3, 2) else (4, 3) in
    let graph = Workloads.decoder_tree ~fanout ~depth tech in
    let n = Timing_graph.num_stages graph in
    let levels = Array.length (Timing_graph.levels graph) in
    ignore (Arrival.propagate ~model graph);  (* warm-up *)
    Gc.full_major ();
    let a0 = Tqwm_obs.Alloc.sample () in
    let _, arena = Arrival.propagate_arena ~model graph in
    let d = Tqwm_obs.Alloc.since a0 in
    let packed = ref 0 in
    for id = 0 to Tqwm_sta.Timing_arena.length arena - 1 do
      match Tqwm_sta.Timing_arena.output arena id with
      | Some q -> packed := !packed + Tqwm_wave.Waveform.packed_size q
      | None -> ()
    done;
    let words_per_stage = d.Tqwm_obs.Alloc.minor_words /. float_of_int n in
    Printf.printf
      "arena: decoder-tree %d stages / %d levels, %d packed floats, %.0f minor \
       words/stage\n"
      n levels !packed words_per_stage;
    Json.Obj
      [
        ("workload", Json.String "decoder-tree");
        ("stages", Json.Int n);
        ("levels", Json.Int levels);
        ("packed_floats", Json.Int !packed);
        ("minor_words_per_stage", Json.Float words_per_stage);
      ]
  in
  Json.Obj
    [
      ("schema", Json.String "tqwm-bench-alloc/2");
      ("smoke", Json.Bool smoke);
      ("solves_per_mode", Json.Int solves);
      ("storage", Json.String "bigarray-float64");
      ("scenarios", Json.List rows);
      ("arena", arena_json);
    ]

(* ---------- Timing report: k-worst enumeration + seq-vs-parallel identity ---------- *)

module Path_enum = Tqwm_sta.Path_enum
module Sta_report = Tqwm_sta.Report

(* The observability gate: the full tqwm-report/1 document (backward
   required times, WNS/TNS, k worst paths with per-stage attribution)
   must come out byte-identical from a sequential and a 4-domain
   work-stealing run — path enumeration and slack aggregation consume
   only the (deterministic) analysis, so any divergence is a scheduling
   leak into the observability surface. *)
let sta_report ?(smoke = false) () =
  let model = Lazy.force table_model in
  let fanout, depth = if smoke then (3, 2) else (4, 4) in
  let k = if smoke then 5 else 10 in
  let domains = 4 in
  let graph = Workloads.decoder_tree ~fanout ~depth tech in
  let n = Timing_graph.num_stages graph in
  Printf.printf
    "\n=== Timing report: decoder tree (fan-out %d, depth %d, %d stages), %d worst \
     paths, sequential vs %d domains ===\n"
    fanout depth n k domains;
  let document ~domains =
    let cache = Stage_cache.create () in
    let t0 = Unix.gettimeofday () in
    let analysis =
      if domains = 1 then Arrival.propagate ~model ~cache graph
      else Parallel.propagate ~model ~cache ~domains graph
    in
    let clock_period =
      if analysis.Arrival.worst_arrival > 0.0 then analysis.Arrival.worst_arrival
      else 1e-9
    in
    let required = Arrival.required graph analysis ~clock_period in
    let paths = Path_enum.k_worst ~clock_period ~k graph analysis in
    let explained = List.map (Path_enum.explain ~model ~cache graph analysis) paths in
    let doc = Sta_report.timing_to_json graph analysis required explained in
    (Unix.gettimeofday () -. t0, required, paths, doc)
  in
  let t_seq, required, paths, doc_seq = document ~domains:1 in
  let t_par, _, _, doc_par = document ~domains in
  let identical = Json.to_string doc_seq = Json.to_string doc_par in
  Printf.printf "seq    %8.2f ms   par(%d) %8.2f ms   report identical: %s\n"
    (t_seq *. 1e3) domains (t_par *. 1e3)
    (if identical then "yes" else "NO");
  Printf.printf "clock %.2f ps  WNS %.2f ps  TNS %.2f ps  endpoints %d\n"
    (required.Arrival.clock_period *. ps)
    (required.Arrival.wns *. ps)
    (required.Arrival.tns *. ps)
    (Array.length required.Arrival.endpoints);
  List.iteri
    (fun i (p : Path_enum.path) ->
      Printf.printf "path %2d: %d stages, arrival %.2f ps, slack %.2f ps\n" (i + 1)
        (List.length p.Path_enum.stages)
        (p.Path_enum.arrival *. ps) (p.Path_enum.slack *. ps))
    paths;
  assert identical;
  assert (List.length paths = k);
  (* distinct stage sequences, worst first *)
  let sequences = List.map (fun (p : Path_enum.path) -> p.Path_enum.stages) paths in
  assert (List.length (List.sort_uniq compare sequences) = k);
  let rec sorted = function
    | (a : Path_enum.path) :: (b :: _ as rest) ->
      a.Path_enum.slack <= b.Path_enum.slack && sorted rest
    | [ _ ] | [] -> true
  in
  assert (sorted paths);
  Json.Obj
    [
      ("schema", Json.String "tqwm-bench-report/1");
      ("smoke", Json.Bool smoke);
      ( "workload",
        Json.Obj
          [
            ("name", Json.String "decoder-tree");
            ("fanout", Json.Int fanout);
            ("depth", Json.Int depth);
            ("stages", Json.Int n);
          ] );
      ("k", Json.Int k);
      ("domains", Json.Int domains);
      ("seq_ms", Json.Float (t_seq *. 1e3));
      ("par_ms", Json.Float (t_par *. 1e3));
      ("identical", Json.Bool identical);
      ("clock_period_ps", Json.Float (required.Arrival.clock_period *. ps));
      ("wns_ps", Json.Float (required.Arrival.wns *. ps));
      ("tns_ps", Json.Float (required.Arrival.tns *. ps));
      ("endpoints", Json.Int (Array.length required.Arrival.endpoints));
      ( "paths",
        Json.List
          (List.map
             (fun (p : Path_enum.path) ->
               Json.Obj
                 [
                   ("stages", Json.Int (List.length p.Path_enum.stages));
                   ("arrival_ps", Json.Float (p.Path_enum.arrival *. ps));
                   ("slack_ps", Json.Float (p.Path_enum.slack *. ps));
                 ])
             paths) );
    ]

(* ---------- Timing server: concurrent what-if sessions over one daemon ---------- *)

module Server = Tqwm_server.Server
module Server_client = Tqwm_server.Client
module Server_protocol = Tqwm_server.Protocol
module Script = Tqwm_incr.Script

let percentile sorted p =
  let n = Array.length sorted in
  if n = 0 then 0.0
  else sorted.(min (n - 1) (int_of_float ((p *. float_of_int (n - 1)) +. 0.5)))

(* Sustained request throughput and per-verb latency of the timing daemon:
   [clients] concurrent sessions, each a copy-on-write fork of one shared
   baseline decoder tree, each running [rounds] of edit/report/query/slack
   (plus a periodic timing document), with [workers] serving domains.
   Latencies are measured client-side, so a queued connection's first
   request honestly includes its wait for a worker. *)
let sta_server ?(smoke = false) ?(domains = 2) ?(clients = 4) () =
  let fanout, depth = if smoke then (3, 2) else (4, 3) in
  let rounds = if smoke then 5 else 25 in
  let workers = max 1 domains in
  if clients < 1 then invalid_arg "--clients must be >= 1";
  let graph = Workloads.decoder_tree ~fanout ~depth tech in
  let n_stages = Timing_graph.num_stages graph in
  let cores = Parallel.default_domains () in
  let degraded = cores < workers + clients + 1 in
  Printf.printf
    "\n=== Timing server: %d worker%s, %d concurrent sessions over a shared %d-stage \
     decoder tree, %d edit rounds each ===\n"
    workers
    (if workers = 1 then "" else "s")
    clients n_stages rounds;
  if degraded then
    Printf.printf
      "(machine reports %d available core%s — %d domains total; latencies are \
       oversubscribed)\n"
      cores
      (if cores = 1 then "" else "s")
      (workers + clients + 1);
  let sock =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tqwm-bench-%d.sock" (Unix.getpid ()))
  in
  (try Sys.remove sock with Sys_error _ -> ());
  let server =
    Server.start ~tech ~graph ~workers ~max_sessions:(clients + 4)
      (Server_protocol.Unix_sock sock)
  in
  let addr = Server.address server in
  let run_client idx =
    let c = Server_client.connect addr in
    let samples = ref [] in
    let timed verb args =
      let t0 = Unix.gettimeofday () in
      let (_ : Json.t) = Server_client.request c verb args in
      samples := (verb, (Unix.gettimeofday () -. t0) *. 1e3) :: !samples
    in
    timed "load" [];
    for round = 1 to rounds do
      (* per-client edit targets and scales so sessions genuinely diverge *)
      let stage = (idx + (3 * round)) mod n_stages in
      let scale = 0.8 +. (0.1 *. float_of_int ((idx + round) mod 8)) in
      timed "edit"
        [ ("line", Json.String (Printf.sprintf "resize %d 0 %.2f" stage scale)) ];
      timed "report" [];
      timed "query" [ ("from", Json.Int 0); ("to", Json.Int (n_stages - 1)) ];
      timed "slack" [ ("clock_period_ps", Json.Float 900.0) ];
      if round mod 5 = 0 then timed "timing" [ ("k", Json.Int 1) ]
    done;
    Server_client.close c;
    !samples
  in
  let t0 = Unix.gettimeofday () in
  let client_domains =
    List.init clients (fun i -> Domain.spawn (fun () -> run_client i))
  in
  let samples = List.concat_map Domain.join client_domains in
  let duration = Unix.gettimeofday () -. t0 in
  (* byte-identity gate: one more session replays a fixed edit script and
     both its documents must equal an in-process offline Script run *)
  let script_text =
    "graph decoder 3 2\nclock 700\nresize 0 0 1.5\nload 4 12e-15\nreport\ntiming 2\n"
  in
  let c = Server_client.connect addr in
  let replayed = Server_client.replay ~k:2 c script_text in
  Server_client.close c;
  let offline =
    let buf = Buffer.create 256 in
    Script.run ~tech
      ~model:(Lazy.force table_model)
      ~out:(Format.formatter_of_buffer buf) script_text
  in
  let identical =
    Json.to_string replayed.Server_client.document
    = Json.to_string offline.Script.json
    &&
    match replayed.Server_client.timing with
    | Some t ->
      Json.to_string t
      = Json.to_string
          (Script.timing_json ?clock_period:offline.Script.clock_period ~k:2
             offline.Script.session)
    | None -> false
  in
  Server.stop server;
  let requests = List.length samples + 2 (* identity session: load + close *) in
  let qps = float_of_int requests /. duration in
  let verb_rows =
    List.filter_map
      (fun verb ->
        let lat =
          List.filter_map (fun (v, ms) -> if v = verb then Some ms else None) samples
          |> Array.of_list
        in
        if Array.length lat = 0 then None
        else begin
          Array.sort compare lat;
          Some (verb, lat)
        end)
      [ "load"; "edit"; "report"; "query"; "slack"; "timing" ]
  in
  Printf.printf "%-8s %7s %10s %10s\n" "verb" "count" "p50" "p99";
  List.iter
    (fun (verb, lat) ->
      Printf.printf "%-8s %7d %8.2fms %8.2fms\n" verb (Array.length lat)
        (percentile lat 0.5) (percentile lat 0.99))
    verb_rows;
  Printf.printf
    "sustained %.0f requests/s over %.2f s (%d requests, %d sessions); replayed \
     documents identical to offline: %s\n"
    qps duration requests (clients + 1)
    (if identical then "yes" else "NO");
  assert identical;
  Json.Obj
    [
      ("schema", Json.String "tqwm-bench-server/1");
      ("smoke", Json.Bool smoke);
      ("workers", Json.Int workers);
      ("clients", Json.Int clients);
      ("sessions", Json.Int (clients + 1));
      ("rounds", Json.Int rounds);
      ("requests", Json.Int requests);
      ("duration_s", Json.Float duration);
      ("qps", Json.Float qps);
      ("available_cores", Json.Int cores);
      ("degraded", Json.Bool degraded);
      ( "graph",
        Json.Obj
          [
            ("name", Json.String "decoder-tree");
            ("fanout", Json.Int fanout);
            ("depth", Json.Int depth);
            ("stages", Json.Int n_stages);
          ] );
      ( "verbs",
        Json.Obj
          (List.map
             (fun (verb, lat) ->
               ( verb,
                 Json.Obj
                   [
                     ("count", Json.Int (Array.length lat));
                     ("p50_ms", Json.Float (percentile lat 0.5));
                     ("p99_ms", Json.Float (percentile lat 0.99));
                   ] ))
             verb_rows) );
      ("identical", Json.Bool identical);
    ]

module Trace = Tqwm_obs.Trace

(* Telemetry overhead of the serving stack: the same multi-client
   edit/report/slack workload run twice against fresh daemons — once
   with every observability feature off (the deployment default) and
   once with request-scoped tracing plus the JSONL access log on — and
   the throughput delta reported. The "off" pass is the one the < 3%
   regression gate in ISSUE 9 watches via the tqwm-bench-obs/1 ledger. *)
let sta_obs ?(smoke = false) ?(domains = 2) ?(clients = 2) () =
  let fanout, depth = if smoke then (3, 2) else (4, 3) in
  let rounds = if smoke then 5 else 25 in
  let workers = max 1 domains in
  if clients < 1 then invalid_arg "--clients must be >= 1";
  let graph = Workloads.decoder_tree ~fanout ~depth tech in
  let n_stages = Timing_graph.num_stages graph in
  Printf.printf
    "\n=== Telemetry overhead: %d worker%s, %d session%s, %d rounds each — serve \
     with tracing+access-log on vs off ===\n"
    workers
    (if workers = 1 then "" else "s")
    clients
    (if clients = 1 then "" else "s")
    rounds;
  let run_pass ~label ~access_log ~tracing =
    if tracing then Trace.enable ~cap:1_000_000 () else Trace.disable ();
    let sock =
      Filename.concat
        (Filename.get_temp_dir_name ())
        (Printf.sprintf "tqwm-bench-obs-%s-%d.sock" label (Unix.getpid ()))
    in
    (try Sys.remove sock with Sys_error _ -> ());
    let server =
      Server.start ~tech ~graph ~workers ~max_sessions:(clients + 4) ?access_log
        (Server_protocol.Unix_sock sock)
    in
    let addr = Server.address server in
    let run_client idx =
      let c = Server_client.connect addr in
      let n = ref 0 in
      let send verb args =
        let (_ : Json.t) = Server_client.request c verb args in
        incr n
      in
      send "load" [];
      for round = 1 to rounds do
        let stage = (idx + (3 * round)) mod n_stages in
        let scale = 0.8 +. (0.1 *. float_of_int ((idx + round) mod 8)) in
        send "edit"
          [ ("line", Json.String (Printf.sprintf "resize %d 0 %.2f" stage scale)) ];
        send "report" [];
        send "slack" [ ("clock_period_ps", Json.Float 900.0) ]
      done;
      Server_client.close c;
      !n
    in
    let t0 = Unix.gettimeofday () in
    let client_domains =
      List.init clients (fun i -> Domain.spawn (fun () -> run_client i))
    in
    let requests = List.fold_left ( + ) 0 (List.map Domain.join client_domains) in
    let duration = Unix.gettimeofday () -. t0 in
    let trace_events =
      if not tracing then 0
      else
        match Trace.to_json () with
        | Json.Obj fields -> (
          match List.assoc_opt "traceEvents" fields with
          | Some (Json.List events) -> List.length events
          | _ -> 0)
        | _ -> 0
    in
    Server.stop server;
    Trace.disable ();
    (requests, duration, float_of_int requests /. duration, trace_events)
  in
  (* untimed warmup: the first pass would otherwise pay the lazy model
     characterization and cold code paths, dragging the measured "off"
     qps down and making the telemetry overhead look negative *)
  let (_ : int * float * float * int) =
    run_pass ~label:"warmup" ~access_log:None ~tracing:false
  in
  let log_path =
    Filename.concat
      (Filename.get_temp_dir_name ())
      (Printf.sprintf "tqwm-bench-obs-%d.jsonl" (Unix.getpid ()))
  in
  (* every logged line must be whole, valid JSON with the closed schema's
     field count — torn concurrent writes would fail to parse here *)
  let validate_log () =
    let ic = open_in log_path in
    let n = ref 0 in
    (try
       while true do
         let line = input_line ic in
         if String.trim line <> "" then begin
           (match Json.of_string line with
           | Json.Obj fields when List.length fields = 8 -> ()
           | _ -> failwith ("bench obs: bad access-log line: " ^ line));
           incr n
         end
       done
     with End_of_file -> ());
    close_in ic;
    !n
  in
  (* alternate off/on passes and keep the best of each mode: a single
     pass on an oversubscribed runner measures the scheduler's mood,
     not the telemetry *)
  let passes = if smoke then 1 else 3 in
  let best a b =
    let (_, _, qa, _), _ = a and (_, _, qb, _), _ = b in
    if qb > qa then b else a
  in
  let measure () =
    let off = (run_pass ~label:"off" ~access_log:None ~tracing:false, 0) in
    (try Sys.remove log_path with Sys_error _ -> ());
    let on_run = run_pass ~label:"on" ~access_log:(Some log_path) ~tracing:true in
    let lines = validate_log () in
    (try Sys.remove log_path with Sys_error _ -> ());
    (off, (on_run, lines))
  in
  let first = measure () in
  let best_off, best_on =
    List.fold_left
      (fun (bo, bn) () ->
        let o, n = measure () in
        (best bo o, best bn n))
      first
      (List.init (passes - 1) (fun _ -> ()))
  in
  let (off_requests, off_duration, off_qps, _), _ = best_off in
  let (on_requests, on_duration, on_qps, trace_events), log_lines = best_on in
  let overhead_pct = 100.0 *. (off_qps -. on_qps) /. off_qps in
  Printf.printf "%-14s %10s %12s %10s\n" "telemetry" "requests" "duration" "qps";
  Printf.printf "%-14s %10d %10.2f s %10.0f\n" "off" off_requests off_duration off_qps;
  Printf.printf "%-14s %10d %10.2f s %10.0f\n" "on" on_requests on_duration on_qps;
  Printf.printf
    "overhead with tracing+log on: %.1f%% (%d trace events, %d access-log lines)\n"
    overhead_pct trace_events log_lines;
  if log_lines < on_requests then
    failwith
      (Printf.sprintf "bench obs: %d access-log lines for %d requests" log_lines
         on_requests);
  Json.Obj
    [
      ("schema", Json.String "tqwm-bench-obs/1");
      ("smoke", Json.Bool smoke);
      ("workers", Json.Int workers);
      ("clients", Json.Int clients);
      ("rounds", Json.Int rounds);
      ( "off",
        Json.Obj
          [
            ("requests", Json.Int off_requests);
            ("duration_s", Json.Float off_duration);
            ("qps", Json.Float off_qps);
          ] );
      ( "on",
        Json.Obj
          [
            ("requests", Json.Int on_requests);
            ("duration_s", Json.Float on_duration);
            ("qps", Json.Float on_qps);
            ("trace_events", Json.Int trace_events);
            ("log_lines", Json.Int log_lines);
          ] );
      ("overhead_pct", Json.Float overhead_pct);
    ]

let smoke () =
  (* bounded CI smoke: one cheap accuracy row + the small parallel experiment *)
  let scenario = Scenario.nand_falling ~n:2 tech in
  let reference = (run_spice ~dt:10e-12 scenario).Engine.delay in
  let qwm_delay = (run_qwm scenario).Qwm.delay in
  (match (reference, qwm_delay) with
  | Some a, Some b ->
    Printf.printf "smoke: nand2 delay qwm %.2f ps vs spice(10ps) %.2f ps (%.2f%% apart)\n"
      (b *. ps) (a *. ps)
      (100.0 *. Float.abs (b -. a) /. a)
  | (Some _ | None), _ -> failwith "smoke: missing delay");
  sta_parallel ~smoke:true ()

(* Append the JSON document produced by a machine-readable experiment to
   the trajectory file named by [--json FILE] — one date- and
   commit-stamped record per invocation (see Tqwm_obs.Ledger), so
   repeated runs accumulate instead of overwriting and every point is
   attributable to the revision that produced it. *)
let write_json json_path doc =
  match json_path with
  | None -> ()
  | Some path ->
    (match doc with
    | Some doc ->
      let n = Tqwm_obs.Ledger.append ~path doc in
      Printf.printf "bench: appended JSON results to %s (%d run record%s)\n" path n
        (if n = 1 then "" else "s")
    | None ->
      Printf.eprintf
        "bench: --json is only produced by --table parallel, --table server, \
         --table obs, --table incr, --table audit, --table alloc, --table \
         report and --smoke; ignoring\n")

(* ---------- Bechamel micro-benchmarks: one Test.make per table/figure ---------- *)

let bechamel () =
  let open Bechamel in
  let open Toolkit in
  let model = Lazy.force table_model in
  let stage name scenario = Test.make ~name (Staged.stage (fun () -> Qwm.run ~model scenario)) in
  let spice name dt scenario =
    Test.make ~name
      (Staged.stage (fun () -> Engine.run ~model:golden ~config:(spice_config dt) scenario))
  in
  let tests =
    Test.make_grouped ~name:"tqwm" ~fmt:"%s %s"
      [
        (* Table I kernels *)
        stage "tableI-qwm-nand3" (Scenario.nand_falling ~n:3 tech);
        spice "tableI-spice-nand3-10ps" 10e-12 (Scenario.nand_falling ~n:3 tech);
        (* Table II kernel *)
        stage "tableII-qwm-ckt8_2" (Random_circuits.stack_scenario tech ~len:8 ~seed:2);
        (* Figure 7/9 kernel *)
        stage "fig9-qwm-manchester5" (Scenario.manchester ~bits:5 tech);
        (* Figure 10 kernel *)
        stage "fig10-qwm-decoder3" (Scenario.decoder ~levels:3 tech);
        (* Figure 8 kernel: one characterization *)
        Test.make ~name:"fig8-characterize-nmos"
          (Staged.stage (fun () -> Table_model.of_analytic ~grid_step:0.2 tech Mosfet.N));
        (* Ablation A kernel *)
        Test.make ~name:"ablation-qwm-dense-lu"
          (Staged.stage (fun () ->
               Qwm.run ~model
                 ~config:{ Config.default with Config.linear_solver = Config.Dense_lu }
                 (Random_circuits.stack_scenario tech ~len:10 ~seed:1)));
      ]
  in
  let instances = Instance.[ monotonic_clock ] in
  let cfg = Benchmark.cfg ~limit:200 ~quota:(Time.second 0.5) ~stabilize:false () in
  let raw = Benchmark.all cfg instances tests in
  let ols =
    Analyze.ols ~bootstrap:0 ~r_square:false ~predictors:[| Measure.run |]
  in
  let results = Analyze.all ols (Instance.monotonic_clock :> Measure.witness) raw in
  Printf.printf "\n=== Bechamel micro-benchmarks (monotonic clock per run) ===\n";
  Hashtbl.iter
    (fun name result ->
      match Analyze.OLS.estimates result with
      | Some [ est ] -> Printf.printf "%-34s %12.1f ns/run\n" name est
      | Some _ | None -> Printf.printf "%-34s (no estimate)\n" name)
    results

(* ---------- driver ---------- *)

let all () =
  table1 ();
  table2 ();
  figure5 ();
  figure7 ();
  figure8 ();
  figure9 ();
  figure10 ();
  ablation_linsolve ();
  ablation_sc ();
  ablation_grid ();
  ablation_waveform ();
  ignore (sta_parallel ());
  ignore (sta_incr ());
  ignore (sta_audit ());
  bechamel ()

let () =
  (* peel "--json FILE" off anywhere in the command line before dispatch *)
  let rec strip_json = function
    | "--json" :: path :: rest ->
      let json, rest = strip_json rest in
      (Some (Option.value json ~default:path), rest)
    | arg :: rest ->
      let json, rest = strip_json rest in
      (json, arg :: rest)
    | [] -> (None, [])
  in
  (* peel "--NAME VALUE" off anywhere in the command line *)
  let strip_opt name argv =
    let rec go = function
      | arg :: value :: rest when arg = name ->
        let found, rest = go rest in
        (Some (Option.value found ~default:value), rest)
      | arg :: rest ->
        let found, rest = go rest in
        (found, arg :: rest)
      | [] -> (None, [])
    in
    go argv
  in
  let int_opt name v =
    Option.map
      (fun s ->
        match int_of_string_opt s with
        | Some v when v >= 1 -> v
        | Some _ | None ->
          Printf.eprintf "bench: %s expects an integer >= 1, got %S\n" name s;
          exit 1)
      v
  in
  let json_path, argv = strip_json (Array.to_list Sys.argv) in
  let domains_arg, argv = strip_opt "--domains" argv in
  let clients_arg, argv = strip_opt "--clients" argv in
  let domains = int_opt "--domains" domains_arg in
  let clients = int_opt "--clients" clients_arg in
  let doc =
    match argv with
    | _ :: "--table" :: "I" :: _ -> table1 (); None
    | _ :: "--table" :: "II" :: _ -> table2 (); None
    | _ :: "--table" :: "parallel" :: rest ->
      Some (sta_parallel ~smoke:(List.mem "--smoke" rest) ?domains ())
    | _ :: "--table" :: "server" :: rest ->
      Some (sta_server ~smoke:(List.mem "--smoke" rest) ?domains ?clients ())
    | _ :: "--table" :: "obs" :: rest ->
      Some (sta_obs ~smoke:(List.mem "--smoke" rest) ?domains ?clients ())
    | _ :: "--table" :: "incr" :: rest -> Some (sta_incr ~smoke:(List.mem "--smoke" rest) ())
    | _ :: "--table" :: "audit" :: rest -> Some (sta_audit ~smoke:(List.mem "--smoke" rest) ())
    | _ :: "--table" :: "alloc" :: rest -> Some (alloc_table ~smoke:(List.mem "--smoke" rest) ())
    | _ :: "--table" :: "report" :: rest -> Some (sta_report ~smoke:(List.mem "--smoke" rest) ())
    | _ :: "--smoke" :: _ -> Some (smoke ())
    | _ :: "--table" :: "ablation-linsolve" :: _ -> ablation_linsolve (); None
    | _ :: "--table" :: "ablation-sc" :: _ -> ablation_sc (); None
    | _ :: "--table" :: "ablation-grid" :: _ -> ablation_grid (); None
    | _ :: "--table" :: "ablation-waveform" :: _ -> ablation_waveform (); None
    | _ :: "--figure" :: "5" :: _ -> figure5 (); None
    | _ :: "--figure" :: "7" :: _ -> figure7 (); None
    | _ :: "--figure" :: "8" :: _ -> figure8 (); None
    | _ :: "--figure" :: "9" :: _ -> figure9 (); None
    | _ :: "--figure" :: "10" :: _ -> figure10 (); None
    | _ :: "--bechamel" :: _ -> bechamel (); None
    | [ _ ] -> all (); None
    | _ :: _ :: _ | [] ->
      prerr_endline
        "usage: main.exe [--table I|II|parallel|server|obs|incr|audit|alloc|report|ablation-linsolve|ablation-sc|ablation-grid] \
         [--figure 5|7|8|9|10] [--bechamel] [--smoke] [--json FILE] [--domains N] \
         [--clients C]";
      exit 1
  in
  write_json json_path doc
