(* Tests for the timing daemon: a server session must be byte-identical
   to an offline [qwm_sim --incr] replay of the same commands,
   concurrent sessions must be fully isolated from each other and from
   the shared baseline, and malformed input of every kind must produce a
   structured error without killing the daemon or leaking its slot. *)

open Tqwm_device
module Json = Tqwm_obs.Json
module Script = Tqwm_incr.Script
module Protocol = Tqwm_server.Protocol
module Server = Tqwm_server.Server
module Client = Tqwm_server.Client

let tech = Tech.cmosp35

let table = lazy (Models.table tech)

let with_server ?graph ?(workers = 2) ?max_sessions ?access_log ?slow_threshold
    f =
  let path = Filename.temp_file "tqwm-test-server" ".sock" in
  Sys.remove path;
  let server =
    Server.start ~tech ?graph ~workers ?max_sessions ?access_log
      ?slow_threshold (Protocol.Unix_sock path)
  in
  Fun.protect ~finally:(fun () -> Server.stop server) (fun () -> f server)

let check_json what expected actual =
  Alcotest.(check string) what (Json.to_string expected) (Json.to_string actual)

let error_code resp =
  match Json.member "error" resp with
  | Some err -> (
    match Json.member "code" err with
    | Some (Json.String code) -> code
    | _ -> Alcotest.failf "error without a code: %s" (Json.to_string resp))
  | None -> Alcotest.failf "expected an error response: %s" (Json.to_string resp)

(* the offline oracle: [Script.run] plus [Script.timing_json], exactly
   what [qwm_sim --incr SCRIPT --json --timing-json] writes *)
let offline_replay ?(k = 1) text =
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  let outcome = Script.run ~tech ~model:(Lazy.force table) ~out:fmt text in
  Format.pp_print_flush fmt ();
  let timing =
    match outcome.Script.clock_period with
    | None -> None
    | Some clock_period ->
      Some (Script.timing_json ~clock_period ~k outcome.Script.session)
  in
  (Buffer.contents buf, outcome.Script.json, timing)

let eco_script =
  "graph decoder 3 2\n\
   clock 700\n\
   report\n\
   resize 0 0 1.5\n\
   load 4 12e-15\n\
   report\n\
   retime 0 4 25\n\
   swap 7 decoder3\n\
   report\n\
   timing 2\n\
   query 0 12\n"

(* Replaying a script through a live daemon must produce the same
   progress text, the same [tqwm-incr-report/1] document and the same
   [tqwm-report/1] timing document as the offline run — byte for
   byte. *)
let test_replay_identity () =
  with_server (fun server ->
      let c = Client.connect (Server.address server) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let replayed = Client.replay ~k:2 c eco_script in
          let output, document, timing = offline_replay ~k:2 eco_script in
          Alcotest.(check string) "progress text" output replayed.Client.output;
          check_json "incr document" document replayed.Client.document;
          match (timing, replayed.Client.timing) with
          | Some offline, Some served ->
            check_json "timing document" offline served
          | None, _ | _, None ->
            Alcotest.fail "script sets a clock: both replays must emit timing"))

(* Two sessions forked from the same baseline apply conflicting edits to
   the same stage; each must see only its own edit — equal to its own
   single-session offline replay — and a third fork must still see the
   pristine baseline. *)
let test_session_isolation () =
  let graph = Script.graph_of_spec ~tech "decoder 3 2" in
  with_server ~graph (fun server ->
      let addr = Server.address server in
      let feed c line =
        ignore (Client.request c "script" [ ("line", Json.String line) ])
      in
      let timing c = Client.request c "timing" [ ("k", Json.Int 2) ] in
      (* the oracle replays the fork's life: a warm baseline (the
         [report] before the edits — server forks copy the baseline's
         computed analysis and cache attribution), then the edits *)
      let offline edits =
        let _, _, timing =
          offline_replay ~k:2
            ("graph decoder 3 2\nclock 800\nreport\n" ^ edits ^ "report\n")
        in
        Option.get timing
      in
      let c1 = Client.connect addr and c2 = Client.connect addr in
      let t1, t2 =
        Fun.protect
          ~finally:(fun () ->
            Client.close c1;
            Client.close c2)
          (fun () ->
            ignore (Client.request c1 "load" []);
            ignore (Client.request c2 "load" []);
            feed c1 "clock 800";
            feed c2 "clock 800";
            (* interleaved conflicting edits to stage 0 *)
            feed c1 "resize 0 0 1.5";
            feed c2 "resize 0 0 0.6";
            feed c1 "report";
            feed c2 "report";
            (timing c1, timing c2))
      in
      check_json "session 1 = its own offline replay"
        (offline "resize 0 0 1.5\n") t1;
      check_json "session 2 = its own offline replay"
        (offline "resize 0 0 0.6\n") t2;
      Alcotest.(check bool)
        "conflicting edits diverge" false
        (Json.to_string t1 = Json.to_string t2);
      (* the shared baseline is unmodified: a fresh fork times like an
         edit-free offline run *)
      let c3 = Client.connect addr in
      let t3 =
        Fun.protect
          ~finally:(fun () -> Client.close c3)
          (fun () ->
            ignore (Client.request c3 "load" []);
            feed c3 "clock 800";
            feed c3 "report";
            timing c3)
      in
      check_json "baseline fork untouched by other sessions" (offline "") t3)

let wait_drained server =
  let rec loop tries =
    if Server.active_sessions server = 0 then ()
    else if tries = 0 then
      Alcotest.failf "leaked session slots: %d still open"
        (Server.active_sessions server)
    else (
      Unix.sleepf 0.02;
      loop (tries - 1))
  in
  loop 250

(* Malformed JSON, unknown verbs, oversized lines, failing script
   commands and mid-request disconnects: each yields a structured error
   (or a clean teardown) and the daemon keeps serving with no leaked
   session slot. *)
let test_protocol_robustness () =
  with_server (fun server ->
      let addr = Server.address server in
      let c = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          Client.send_line c "this is not json";
          (match Client.recv_response c with
          | Some resp ->
            Alcotest.(check string) "malformed JSON" "parse_error"
              (error_code resp)
          | None -> Alcotest.fail "connection died on malformed JSON");
          (match
             Client.request_raw c
               (Json.Obj
                  [ ("id", Json.Int 1); ("verb", Json.String "frobnicate") ])
           with
          | Some resp ->
            Alcotest.(check string) "unknown verb" "unknown_verb"
              (error_code resp)
          | None -> Alcotest.fail "connection died on unknown verb");
          Client.send_line c (String.make (Protocol.max_line_bytes + 16) 'x');
          (match Client.recv_response c with
          | Some resp ->
            Alcotest.(check string) "oversized line" "oversized_line"
              (error_code resp)
          | None -> Alcotest.fail "connection died on oversized line");
          (* the same connection is still usable after all three *)
          ignore (Client.request c "load" [ ("graph", Json.String "chain 4") ]);
          (* a failing command errors but leaves the session alive *)
          (try
             ignore
               (Client.request c "script"
                  [ ("line", Json.String "resize 99 0 1.5") ]);
             Alcotest.fail "resize of a bogus stage must fail"
           with Client.Server_error { code; _ } ->
             Alcotest.(check string) "failing command" "script_error" code);
          ignore (Client.request c "report" []);
          (* missing arguments are a structured bad_request *)
          try
            ignore (Client.request c "query" []);
            Alcotest.fail "query without from/to must fail"
          with Client.Server_error { code; _ } ->
            Alcotest.(check string) "missing argument" "bad_request" code);
      (* mid-request disconnect: ship half a request, hang up *)
      let sockaddr = Protocol.sockaddr_of_address (Protocol.parse_address addr) in
      let fd = Unix.socket (Unix.domain_of_sockaddr sockaddr) Unix.SOCK_STREAM 0 in
      Unix.connect fd sockaddr;
      let partial = "{\"verb\":\"load\"" in
      ignore (Unix.write_substring fd partial 0 (String.length partial));
      Unix.close fd;
      (* the daemon shrugged it off and still serves new sessions *)
      let c2 = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c2)
        (fun () ->
          ignore (Client.request c2 "load" [ ("graph", Json.String "chain 2") ]);
          ignore (Client.request c2 "report" []));
      wait_drained server)

(* Beyond [max_sessions], a new connection is answered with a
   [server_full] error and closed — and the slot frees once an existing
   session disconnects. *)
let test_session_cap () =
  with_server ~workers:1 ~max_sessions:1 (fun server ->
      let addr = Server.address server in
      let c1 = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c1)
        (fun () ->
          ignore (Client.request c1 "load" [ ("graph", Json.String "chain 2") ]);
          let c2 = Client.connect addr in
          (match Client.recv_response c2 with
          | Some resp ->
            Alcotest.(check string) "over the cap" "server_full"
              (error_code resp)
          | None -> Alcotest.fail "no server_full response");
          Client.close c2);
      wait_drained server;
      (* the slot is free again *)
      let c3 = Client.connect addr in
      Fun.protect
        ~finally:(fun () -> Client.close c3)
        (fun () ->
          ignore (Client.request c3 "load" [ ("graph", Json.String "chain 2") ])))

(* ---------- observability: health / stats / trace / access log ---------- *)

module Trace = Tqwm_obs.Trace

let member_exn what name doc =
  match Json.member name doc with
  | Some v -> v
  | None -> Alcotest.failf "%s lacks %S: %s" what name (Json.to_string doc)

let as_number what = function
  | Json.Float f -> f
  | Json.Int i -> float_of_int i
  | j -> Alcotest.failf "%s is not a number: %s" what (Json.to_string j)

let test_health_verb () =
  with_server ~workers:2 (fun server ->
      let c = Client.connect (Server.address server) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          let h = Client.health c in
          Alcotest.(check bool) "ready" true
            (member_exn "health" "ready" h = Json.Bool true);
          Alcotest.(check bool) "own session counted" true
            (as_number "sessions" (member_exn "health" "sessions" h) >= 1.0);
          Alcotest.(check bool) "workers reported" true
            (member_exn "health" "workers" h = Json.Int 2);
          Alcotest.(check bool) "uptime non-negative" true
            (as_number "uptime_s" (member_exn "health" "uptime_s" h) >= 0.0);
          (* neither observability feature is on in this server *)
          Alcotest.(check bool) "tracing off" true
            (member_exn "health" "tracing" h = Json.Bool false);
          Alcotest.(check bool) "no access log" true
            (member_exn "health" "access_log" h = Json.Bool false)))

let test_stats_verb () =
  with_server (fun server ->
      let c = Client.connect (Server.address server) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ignore (Client.request c "load" [ ("graph", Json.String "chain 4") ]);
          for _ = 1 to 3 do
            ignore (Client.request c "report" [])
          done;
          let s = Client.stats ~window_s:60.0 c in
          Alcotest.(check bool) "window echoed" true
            (as_number "window_s" (member_exn "stats" "window_s" s) = 60.0);
          Alcotest.(check bool) "samples recorded" true
            (as_number "samples" (member_exn "stats" "samples" s) >= 1.0);
          Alcotest.(check bool) "qps positive after traffic" true
            (as_number "qps" (member_exn "stats" "qps" s) > 0.0);
          (let verbs = member_exn "stats" "verbs" s in
           let row = member_exn "stats.verbs" "report" verbs in
           Alcotest.(check bool) "report count" true
             (as_number "count" (member_exn "report row" "count" row) >= 3.0);
           Alcotest.(check bool) "report p50" true
             (as_number "p50_ms" (member_exn "report row" "p50_ms" row) >= 0.0));
          (match Json.member "gc" s with
          | Some (Json.Obj _) -> ()
          | _ -> Alcotest.fail "stats lacks a gc object");
          (* a bogus window is a structured bad_request, not a hang-up *)
          (try
             ignore
               (Client.request c "stats" [ ("window_s", Json.Float (-1.0)) ]);
             Alcotest.fail "negative window must fail"
           with Client.Server_error { code; _ } ->
             Alcotest.(check string) "bad window" "bad_request" code);
          ignore (Client.request c "report" [])))

(* The tentpole property end to end: with tracing on, a served edit +
   report recomputation emits [sta.stage] solve spans on worker domains,
   every one carrying the request and session ids of the triggering
   request. *)
let test_trace_verb_request_scoped () =
  Trace.enable ();
  Fun.protect ~finally:(fun () ->
      Trace.disable ();
      Trace.clear ())
  @@ fun () ->
  with_server (fun server ->
      let c = Client.connect (Server.address server) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ignore (Client.request c "load" [ ("graph", Json.String "decoder 3 2") ]);
          Trace.clear ();
          (* the edit dirties stage 0; the report forces the recompute *)
          ignore
            (Client.request c "script"
               [ ("line", Json.String "resize 0 0 1.5") ]);
          ignore (Client.request c "report" []);
          let doc = Client.request c "trace" [] in
          let events =
            match Json.member "traceEvents" doc with
            | Some (Json.List events) -> events
            | _ -> Alcotest.fail "trace verb returned no traceEvents"
          in
          let arg name e =
            Option.bind (Json.member "args" e) (Json.member name)
          in
          let stage_events =
            List.filter
              (fun e -> Json.member "cat" e = Some (Json.String "sta.stage"))
              events
          in
          if stage_events = [] then
            Alcotest.fail "recompute emitted no sta.stage spans";
          List.iter
            (fun e ->
              match (arg "request" e, arg "session" e) with
              | Some (Json.String rid), Some (Json.String sid) ->
                if not (String.starts_with ~prefix:(sid ^ ".r") rid) then
                  Alcotest.failf "request id %S not scoped to session %S" rid
                    sid
              | _ ->
                Alcotest.failf "untagged stage span: %s" (Json.to_string e))
            stage_events;
          (* distinct requests got distinct ids *)
          let rids =
            List.sort_uniq compare
              (List.filter_map (fun e ->
                   match arg "request" e with
                   | Some (Json.String rid) -> Some rid
                   | _ -> None)
                 (List.filter
                    (fun e ->
                      Json.member "name" e
                      = Some (Json.String "server.request"))
                    events))
          in
          (* the script and report requests (the trace request's own span
             only completes after the document was captured) *)
          Alcotest.(check bool)
            (Printf.sprintf "one id per request (got %d)" (List.length rids))
            true
            (List.length rids >= 2)))

let test_access_log () =
  let log_path = Filename.temp_file "tqwm-test-access" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove log_path with Sys_error _ -> ())
  @@ fun () ->
  with_server ~access_log:log_path ~slow_threshold:0.0 (fun server ->
      let c = Client.connect (Server.address server) in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ignore (Client.request c "load" [ ("graph", Json.String "chain 4") ]);
          ignore (Client.request c "report" []);
          (try
             ignore (Client.request c "frobnicate" [])
           with Client.Server_error _ -> ());
          Client.send_line c "not json";
          match Client.recv_response c with
          | Some _ -> ()
          | None -> Alcotest.fail "connection died on malformed JSON"));
  (* read back after Server.stop closed the log *)
  let fields_of_line line =
    match Json.of_string line with
    | Json.Obj fields -> fields
    | _ -> Alcotest.failf "access-log line is not an object: %s" line
  in
  let ic = open_in log_path in
  let records = ref [] in
  (try
     while true do
       let line = input_line ic in
       if String.trim line <> "" then records := fields_of_line line :: !records
     done
   with End_of_file -> close_in ic);
  let records = List.rev !records in
  if List.length records < 4 then
    Alcotest.failf "expected >= 4 access records, got %d" (List.length records);
  let expected_fields =
    [ "ts"; "request"; "session"; "verb"; "outcome"; "bytes_in"; "bytes_out";
      "latency_us" ]
  in
  List.iter
    (fun fields ->
      Alcotest.(check (list string))
        "closed record shape" expected_fields (List.map fst fields);
      match List.assoc "request" fields with
      | Json.String rid ->
        (match List.assoc "session" fields with
        | Json.String sid ->
          Alcotest.(check bool)
            (Printf.sprintf "request id %s scoped to session %s" rid sid)
            true
            (String.starts_with ~prefix:(sid ^ ".r") rid)
        | _ -> Alcotest.fail "session is not a string")
      | _ -> Alcotest.fail "request is not a string")
    records;
  let outcomes =
    List.filter_map
      (fun fields ->
        match List.assoc "outcome" fields with
        | Json.String o -> Some o
        | _ -> None)
      records
  in
  List.iter
    (fun o ->
      Alcotest.(check bool) (o ^ " logged") true (List.mem o outcomes))
    [ "ok"; "unknown_verb"; "parse_error" ];
  (* the parse error could not name a verb *)
  List.iter
    (fun fields ->
      if List.assoc "outcome" fields = Json.String "parse_error" then
        Alcotest.(check bool) "unparsed frame logs verb -" true
          (List.assoc "verb" fields = Json.String "-"))
    records

let quick name f = Alcotest.test_case name `Quick f

let () =
  Alcotest.run "server"
    [
      ("identity", [ quick "script replay" test_replay_identity ]);
      ("isolation", [ quick "concurrent sessions" test_session_isolation ]);
      ( "robustness",
        [
          quick "protocol errors" test_protocol_robustness;
          quick "session cap" test_session_cap;
        ] );
      ( "observability",
        [
          quick "health verb" test_health_verb;
          quick "stats verb" test_stats_verb;
          quick "trace verb is request-scoped" test_trace_verb_request_scoped;
          quick "access log" test_access_log;
        ] );
    ]
