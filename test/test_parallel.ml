(* Tests for the parallel propagation engine, the frozen graph form and
   the stage cache: multi-domain runs must be bit-identical to
   sequential propagation, with and without memoization. *)

open Tqwm_device
open Tqwm_circuit
module Timing_graph = Tqwm_sta.Timing_graph
module Arrival = Tqwm_sta.Arrival
module Parallel = Tqwm_sta.Parallel
module Stage_cache = Tqwm_sta.Stage_cache
module Workloads = Tqwm_sta.Workloads

let tech = Tech.cmosp35

let table = lazy (Models.table tech)

let check_identical what (a : Arrival.analysis) (b : Arrival.analysis) =
  Alcotest.(check int)
    (what ^ ": same stage count")
    (Array.length a.Arrival.timings)
    (Array.length b.Arrival.timings);
  Array.iteri
    (fun i (ta : Arrival.stage_timing) ->
      let tb = b.Arrival.timings.(i) in
      if ta <> tb then
        Alcotest.failf
          "%s: stage %d differs (arrival_out %.17g vs %.17g, delay %.17g vs %.17g)"
          what i ta.Arrival.arrival_out tb.Arrival.arrival_out ta.Arrival.delay
          tb.Arrival.delay)
    a.Arrival.timings;
  Alcotest.(check (list int))
    (what ^ ": critical path")
    a.Arrival.critical_path b.Arrival.critical_path;
  Alcotest.(check bool)
    (what ^ ": worst arrival bit-equal")
    true
    (a.Arrival.worst_arrival = b.Arrival.worst_arrival)

let propagate ?cache ~domains graph =
  Parallel.propagate ~model:(Lazy.force table) ?cache ~domains graph

(* ---------- frozen graph form ---------- *)

let test_freeze_levels () =
  let graph = Workloads.diamond tech in
  let frozen = Timing_graph.freeze graph in
  Alcotest.(check int) "level count" 3 (Array.length frozen.Timing_graph.levels);
  Alcotest.(check (array (array int)))
    "level schedule"
    [| [| 0 |]; [| 1; 2 |]; [| 3 |] |]
    frozen.Timing_graph.levels;
  Alcotest.(check (list int)) "order is level concatenation" [ 0; 1; 2; 3 ]
    (Timing_graph.topological_order graph);
  Alcotest.(check int) "fanin of sink" 2 (Array.length frozen.Timing_graph.fanin.(3));
  Alcotest.(check int) "fanout of source" 2
    (Array.length frozen.Timing_graph.fanout.(0));
  (* freezing is memoized until the graph mutates *)
  Alcotest.(check bool) "memoized" true (Timing_graph.freeze graph == frozen);
  let extra = Timing_graph.add_stage graph (Scenario.inverter_falling tech) in
  Timing_graph.connect graph ~from_stage:3 ~to_stage:extra ~input:"a1";
  Alcotest.(check bool) "invalidated by mutation" true
    (Timing_graph.freeze graph != frozen);
  Alcotest.(check int) "new level appears" 4
    (Array.length (Timing_graph.levels graph))

let test_connect_rejects_duplicates () =
  (* an exact duplicate edge (same endpoints, same input) is rejected,
     and neither it nor a rejected cycle-creating edge disturbs the
     edges already inserted *)
  let graph = Timing_graph.create () in
  let a = Timing_graph.add_stage graph (Scenario.inverter_falling tech) in
  let b = Timing_graph.add_stage graph (Scenario.nand_falling ~n:2 tech) in
  Timing_graph.connect graph ~from_stage:a ~to_stage:b ~input:"a1";
  Alcotest.check_raises "duplicate rejected"
    (Invalid_argument "Timing_graph.connect: duplicate edge") (fun () ->
      Timing_graph.connect graph ~from_stage:a ~to_stage:b ~input:"a1");
  (* same endpoints on a different input is a parallel edge, not a duplicate *)
  Timing_graph.connect graph ~from_stage:a ~to_stage:b ~input:"a2";
  Alcotest.check_raises "cycle rejected"
    (Invalid_argument "Timing_graph.connect: cycle detected") (fun () ->
      Timing_graph.connect graph ~from_stage:b ~to_stage:a ~input:"a1");
  Alcotest.(check int) "surviving fanin edges" 2
    (List.length (Timing_graph.fanin graph b));
  Alcotest.(check int) "connection count intact" 2 (Timing_graph.num_connections graph)

(* ---------- parallel vs sequential ---------- *)

let test_parallel_identical_diamond () =
  let graph = Workloads.diamond tech in
  let seq = propagate ~domains:1 graph in
  check_identical "diamond, 2 domains" seq (propagate ~domains:2 graph);
  check_identical "diamond, 4 domains" seq (propagate ~domains:4 graph);
  (* sanity: the slow branch must define the sink's arrival *)
  Alcotest.(check (option int)) "slow branch critical" (Some 2)
    seq.Arrival.timings.(3).Arrival.critical_fanin

let test_parallel_identical_decoder_tree () =
  let graph = Workloads.decoder_tree ~fanout:2 ~depth:2 ~levels:2 tech in
  Alcotest.(check int) "tree size" 7 (Timing_graph.num_stages graph);
  let seq = propagate ~domains:1 graph in
  check_identical "decoder tree, 2 domains" seq (propagate ~domains:2 graph);
  check_identical "decoder tree, 4 domains" seq (propagate ~domains:4 graph)

let test_parallel_identical_with_cache () =
  let graph = Workloads.fanout_tree ~fanout:2 ~depth:2 (Scenario.nand_falling ~n:3 tech) in
  (* fresh caches per run: hit patterns differ between domain counts but
     results may not *)
  let run domains =
    let cache = Stage_cache.create () in
    let analysis = propagate ~cache ~domains graph in
    (analysis, Stage_cache.stats cache)
  in
  let seq, seq_stats = run 1 in
  let par2, _ = run 2 in
  let par4, par4_stats = run 4 in
  check_identical "cached, 2 domains" seq par2;
  check_identical "cached, 4 domains" seq par4;
  Alcotest.(check bool) "repeated gates hit the cache" true
    (seq_stats.Stage_cache.hits > 0 && par4_stats.Stage_cache.hits > 0);
  Alcotest.(check bool) "fewer solves than stages" true
    (seq_stats.Stage_cache.misses < Timing_graph.num_stages graph);
  (* cached and uncached propagation agree to within the slew bucket's
     perturbation; with the bucket at 1 ps the delays stay within a few
     tenths of a picosecond *)
  let uncached = propagate ~domains:1 graph in
  Alcotest.(check bool) "bucketing perturbs arrivals by < 1 ps" true
    (Float.abs (uncached.Arrival.worst_arrival -. seq.Arrival.worst_arrival)
    < 1e-12)

let test_cache_bucketing () =
  let cache = Stage_cache.create ~slew_bucket:2e-12 () in
  Alcotest.(check (float 1e-18)) "rounds to bucket" 42e-12
    (Stage_cache.bucket_slew cache 41.3e-12);
  Alcotest.(check (float 1e-18)) "never below one bucket" 2e-12
    (Stage_cache.bucket_slew cache 0.4e-12);
  Alcotest.(check (float 0.0)) "non-positive passes through" 0.0
    (Stage_cache.bucket_slew cache 0.0);
  let model = Lazy.force table in
  let config = Tqwm_core.Config.default in
  let a = Stage_cache.fingerprint ~model ~config (Scenario.nand_falling ~n:2 tech) in
  let b =
    Stage_cache.fingerprint ~model ~config (Scenario.nand_falling ~n:2 ~load:9e-15 tech)
  in
  Alcotest.(check bool) "load changes the fingerprint" true (a <> b);
  Alcotest.(check bool) "fingerprint is deterministic" true
    (String.equal a
       (Stage_cache.fingerprint ~model ~config (Scenario.nand_falling ~n:2 tech)))

(* ---------- work-stealing chunk scheduler ---------- *)

module Metrics = Tqwm_obs.Metrics

let counter name = Option.value (Metrics.find_counter name) ~default:0

(* a synthetic stage timing whose fields are a pure function of the id,
   so any scheduling mistake (dropped, duplicated or misplaced stage)
   corrupts the result array detectably *)
let fabricated_timing id =
  {
    Arrival.id;
    arrival_in = 0.0;
    delay = float_of_int (id + 1) *. 1e-12;
    slew = 1e-12;
    arrival_out = float_of_int ((id * id) + 1) *. 1e-12;
    critical_fanin = (if id = 0 then None else Some (id - 1));
  }

let test_steal_identical_many_domains () =
  let graph = Workloads.decoder_tree ~fanout:3 ~depth:2 tech in
  let seq = propagate ~domains:1 graph in
  List.iter
    (fun domains ->
      check_identical
        (Printf.sprintf "steal, %d domains" domains)
        seq
        (Parallel.propagate ~model:(Lazy.force table) ~domains
           ~scheduler:Parallel.Work_stealing graph);
      check_identical
        (Printf.sprintf "ready, %d domains" domains)
        seq
        (Parallel.propagate ~model:(Lazy.force table) ~domains
           ~scheduler:Parallel.Ready_queue graph))
    [ 2; 4; 8 ]

let test_chunk_size_edges () =
  let graph = Workloads.decoder_tree ~fanout:3 ~depth:2 tech in
  let width = Timing_graph.max_level_width (Timing_graph.freeze graph) in
  Alcotest.(check bool) "tree has a wide level" true (width > 1);
  let seq = propagate ~domains:1 graph in
  (* chunk 1 maximizes scheduling traffic; chunk = width puts a whole
     level in one deque slot; chunk > width degenerates to one chunk per
     level — all three must still be bit-identical to sequential *)
  List.iter
    (fun chunk ->
      check_identical
        (Printf.sprintf "chunk %d" chunk)
        seq
        (Parallel.propagate ~model:(Lazy.force table) ~domains:4 ~chunk graph))
    [ 1; width; width + 7 ]

let test_chunk_validation () =
  let graph = Workloads.diamond tech in
  Alcotest.check_raises "chunk 0 rejected"
    (Invalid_argument "Parallel.propagate: chunk < 1") (fun () ->
      ignore (Parallel.propagate ~model:(Lazy.force table) ~domains:2 ~chunk:0 graph));
  Alcotest.check_raises "evaluate_stages chunk 0 rejected"
    (Invalid_argument "Parallel.evaluate_stages: chunk < 1") (fun () ->
      ignore
        (Parallel.evaluate_stages ~domains:2 ~chunk:0 ~eval:fabricated_timing
           [| 0; 1 |]))

let test_steals_on_imbalance () =
  (* chunk 1 deals ids round-robin, so deque w owns ids congruent to
     w mod 4; making deque 0's stages slow guarantees workers 1..3 run
     dry while work remains there — the steal counter must move *)
  let n = 32 in
  let eval id =
    if id mod 4 = 0 then Unix.sleepf 0.005;
    fabricated_timing id
  in
  let steals0 = counter "sta.steals" and chunks0 = counter "sta.chunks" in
  let results =
    Parallel.evaluate_stages ~domains:4 ~chunk:1 ~eval (Array.init n Fun.id)
  in
  let steals = counter "sta.steals" - steals0 in
  let chunks = counter "sta.chunks" - chunks0 in
  Array.iteri
    (fun i r ->
      if r <> fabricated_timing i then Alcotest.failf "stage %d result corrupted" i)
    results;
  Alcotest.(check int) "every chunk executed exactly once" n chunks;
  Alcotest.(check bool) "imbalance forced steals" true (steals > 0)

let prop_evaluate_stages_identical =
  QCheck2.Test.make ~name:"evaluate_stages bit-identical under random costs" ~count:20
    QCheck2.Gen.(
      triple
        (list_size (int_range 1 40) (int_range 0 3))
        (int_range 1 8) (int_range 1 6))
    (fun (costs, domains, chunk) ->
      let costs = Array.of_list costs in
      let n = Array.length costs in
      (* random per-stage costs skew the deques so steal interleavings
         vary run to run; the result may not *)
      let eval id =
        if costs.(id) > 0 then Unix.sleepf (float_of_int costs.(id) *. 2e-4);
        fabricated_timing id
      in
      let expected = Array.init n fabricated_timing in
      Parallel.evaluate_stages ~domains ~chunk ~eval (Array.init n Fun.id) = expected)

let test_scheduler_names () =
  Alcotest.(check string) "steal" "steal"
    (Parallel.scheduler_name Parallel.Work_stealing);
  Alcotest.(check string) "ready" "ready"
    (Parallel.scheduler_name Parallel.Ready_queue);
  Alcotest.(check bool) "round-trip" true
    (Parallel.scheduler_of_string "steal" = Some Parallel.Work_stealing
    && Parallel.scheduler_of_string "ready" = Some Parallel.Ready_queue
    && Parallel.scheduler_of_string "fifo" = None)

(* ---------- timing arena ---------- *)

module Timing_arena = Tqwm_sta.Timing_arena

let check_level_digests what graph (a : Timing_arena.t) (b : Timing_arena.t) =
  Array.iteri
    (fun k _ ->
      Alcotest.(check string)
        (Printf.sprintf "%s: level %d slab digest" what k)
        (Timing_arena.level_digest a k)
        (Timing_arena.level_digest b k))
    (Timing_graph.levels graph)

let test_arena_race_four_domains () =
  (* four domains store into disjoint slots of one shared arena; any
     torn or misplaced store corrupts a level slab, which the digest
     comparison against the sequential arena catches *)
  let graph = Workloads.decoder_tree ~fanout:3 ~depth:2 tech in
  let model = Lazy.force table in
  let seq, seq_arena = Arrival.propagate_arena ~model graph in
  List.iter
    (fun (scheduler, chunk) ->
      let par, par_arena =
        Parallel.propagate_arena ~model ~domains:4 ~scheduler ?chunk graph
      in
      let what =
        Printf.sprintf "4 domains, %s%s"
          (Parallel.scheduler_name scheduler)
          (match chunk with Some c -> Printf.sprintf ", chunk %d" c | None -> "")
      in
      check_identical what seq par;
      check_level_digests what graph seq_arena par_arena)
    [
      (Parallel.Work_stealing, None);
      (Parallel.Work_stealing, Some 1);
      (Parallel.Ready_queue, None);
    ]

let test_arena_reuse_and_seal_idempotent () =
  let graph = Workloads.diamond tech in
  let model = Lazy.force table in
  let frozen = Timing_graph.freeze graph in
  (* repeated propagations over one graph build fresh arenas with
     bit-identical slabs *)
  let _, a = Arrival.propagate_arena ~model graph in
  let _, b = Arrival.propagate_arena ~model graph in
  check_level_digests "repeated propagation" graph a b;
  (* sealing an already-sealed arena is a no-op: digests survive *)
  let d0 = Timing_arena.level_digest a 0 in
  Timing_arena.seal a;
  Alcotest.(check string) "re-seal keeps digests" d0 (Timing_arena.level_digest a 0);
  (* slot reuse: a re-stored slot keeps the last write, untouched slots
     stay empty *)
  let m = Timing_arena.create frozen in
  Alcotest.(check int) "sized for the graph" (Timing_graph.num_stages graph)
    (Timing_arena.length m);
  Timing_arena.store m 0 ~arrival_in:1.0 ~delay:2.0 ~slew:3.0 ~arrival_out:9.0
    ~critical_fanin:(-1);
  Timing_arena.store m 0 ~arrival_in:0.5 ~delay:1.5 ~slew:2.5 ~arrival_out:2.0
    ~critical_fanin:(-1);
  Alcotest.(check bool) "stored slot present" true (Timing_arena.has m 0);
  Alcotest.(check (float 0.0)) "overwrite wins" 2.0 (Timing_arena.arrival_out m 0);
  Alcotest.(check int) "PI critical fanin" (-1) (Timing_arena.critical_fanin m 0);
  Alcotest.(check bool) "untouched slot empty" false (Timing_arena.has m 1)

let prop_arena_digests_stable =
  QCheck2.Test.make
    ~name:"arena slab digests identical across domains, chunks and schedulers"
    ~count:8
    QCheck2.Gen.(triple (int_range 1 6) (int_range 1 6) bool)
    (fun (domains, chunk, steal) ->
      let graph = Workloads.decoder_tree ~fanout:2 ~depth:2 tech in
      let model = Lazy.force table in
      let scheduler =
        if steal then Parallel.Work_stealing else Parallel.Ready_queue
      in
      let _, ref_arena = Arrival.propagate_arena ~model graph in
      let _, arena =
        Parallel.propagate_arena ~model ~domains ~scheduler ~chunk graph
      in
      Array.for_all
        (fun k ->
          String.equal
            (Timing_arena.level_digest ref_arena k)
            (Timing_arena.level_digest arena k))
        (Array.init (Array.length (Timing_graph.levels graph)) Fun.id))

(* ---------- slack over a chain ---------- *)

let test_chain_slack_identity () =
  let graph = Workloads.chain ~n:3 tech in
  let analysis = propagate ~domains:2 graph in
  let clock_period = 1e-9 in
  let report = Arrival.slacks graph analysis ~clock_period in
  Alcotest.(check (float 1e-15)) "worst slack = clock_period - worst_arrival"
    (clock_period -. analysis.Arrival.worst_arrival)
    report.Arrival.worst_slack

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "tqwm_parallel"
    [
      ( "frozen graph",
        [
          quick "level schedule" test_freeze_levels;
          quick "duplicate edge rejected" test_connect_rejects_duplicates;
        ] );
      ( "parallel engine",
        [
          slow "diamond bit-identical" test_parallel_identical_diamond;
          slow "decoder tree bit-identical" test_parallel_identical_decoder_tree;
          slow "cached runs bit-identical" test_parallel_identical_with_cache;
        ] );
      ( "work stealing",
        [
          slow "bit-identical at 2/4/8 domains, both schedulers"
            test_steal_identical_many_domains;
          slow "chunk size edge cases" test_chunk_size_edges;
          quick "chunk validation" test_chunk_validation;
          quick "scheduler names" test_scheduler_names;
          slow "imbalance forces steals" test_steals_on_imbalance;
          QCheck_alcotest.to_alcotest prop_evaluate_stages_identical;
        ] );
      ( "stage cache",
        [ quick "bucketing and fingerprints" test_cache_bucketing ] );
      ( "timing arena",
        [
          slow "4-domain slab digests match sequential" test_arena_race_four_domains;
          quick "reuse, overwrite and idempotent seal"
            test_arena_reuse_and_seal_idempotent;
          QCheck_alcotest.to_alcotest prop_arena_digests_stable;
        ] );
      ("slack", [ slow "chain identity" test_chain_slack_identity ]);
    ]
