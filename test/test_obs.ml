(* Tests for the observability library (Tqwm_obs) and its wiring into
   the engines: exact histogram bucketing, JSON round-trips, trace
   document shape, the Newton [stalled] flag, and — the load-bearing
   property — solver counters identical between a sequential and a
   4-domain parallel STA run of the same workload. *)

open Tqwm_device
module Alloc = Tqwm_obs.Alloc
module Json = Tqwm_obs.Json
module Metrics = Tqwm_obs.Metrics
module Trace = Tqwm_obs.Trace
module Newton = Tqwm_num.Newton
module Parallel = Tqwm_sta.Parallel
module Stage_cache = Tqwm_sta.Stage_cache
module Timing_graph = Tqwm_sta.Timing_graph
module Workloads = Tqwm_sta.Workloads

let tech = Tech.cmosp35

let table = lazy (Models.table tech)

(* ---------- JSON ---------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("tiny", Json.Float 1.25e-12);
        ("string", Json.String "a\"b\\c\n\t\x01z");
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  Alcotest.(check bool)
    "round-trip" true
    (Json.of_string (Json.to_string doc) = doc);
  (* non-finite floats must degrade to null, keeping the document valid *)
  Alcotest.(check string)
    "nan -> null" "[null,null,null]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity; Json.Float neg_infinity ]));
  Alcotest.check_raises "trailing garbage rejected"
    (Json.Parse_error "at offset 2: trailing garbage") (fun () ->
      ignore (Json.of_string "{}x"))

(* ---------- metrics ---------- *)

let test_counter_registry () =
  let a = Metrics.counter "test_obs.counter" in
  let b = Metrics.counter "test_obs.counter" in
  Metrics.incr a;
  Metrics.add b 2;
  Alcotest.(check int) "same cell" 3 (Metrics.value a);
  Alcotest.(check (option int))
    "visible by name" (Some 3)
    (Metrics.find_counter "test_obs.counter");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics.histogram: test_obs.counter is a counter")
    (fun () -> ignore (Metrics.histogram "test_obs.counter" ~bounds:[| 1.0 |]))

let test_histogram_boundaries () =
  (* bucket i counts bounds.(i-1) < v <= bounds.(i); overflow last *)
  let h = Metrics.histogram "test_obs.hist" ~bounds:[| 1.0; 2.0; 5.0 |] in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 2.5; 5.0; 6.0 ];
  Alcotest.(check (array int))
    "boundary values land in the lower bucket" [| 2; 2; 2; 1 |]
    (Metrics.histogram_counts h);
  Alcotest.(check int) "total" 7 (Metrics.histogram_total h);
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Metrics.histogram: bounds not strictly increasing")
    (fun () -> ignore (Metrics.histogram "test_obs.bad" ~bounds:[| 1.0; 1.0 |]))

let test_metrics_snapshot_parses () =
  let c = Metrics.counter "test_obs.snap" in
  Metrics.incr c;
  let doc = Json.of_string (Json.to_string (Metrics.snapshot ())) in
  let counters = Option.get (Json.member "counters" doc) in
  Alcotest.(check bool)
    "snapshot JSON round-trips with the counter present" true
    (Json.member "test_obs.snap" counters = Some (Json.Int (Metrics.value c)));
  match Json.member "histograms" doc with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "snapshot has no histograms object"

let test_reset_keeps_handles () =
  (* the Metrics.reset contract: handles handed out before reset stay
     registered and interchangeable with post-reset re-registrations, and
     updates through either round-trip into the next snapshot *)
  let before = Metrics.counter "test_obs.reset" in
  let h_before = Metrics.histogram "test_obs.reset_hist" ~bounds:[| 1.0; 2.0 |] in
  Metrics.add before 5;
  Metrics.observe h_before 1.5;
  Metrics.reset ();
  Alcotest.(check int) "old handle sees the zeroed cell" 0 (Metrics.value before);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_total h_before);
  let after = Metrics.counter "test_obs.reset" in
  let h_after = Metrics.histogram "test_obs.reset_hist" ~bounds:[| 1.0; 2.0 |] in
  Metrics.incr after;
  Metrics.incr before;
  Metrics.observe h_after 0.5;
  Metrics.observe h_before 3.0;
  Alcotest.(check int) "old and new handles share one cell" 2 (Metrics.value after);
  Alcotest.(check (array int))
    "histogram updates via both handles" [| 1; 0; 1 |]
    (Metrics.histogram_counts h_after);
  let doc = Json.of_string (Json.to_string (Metrics.snapshot ())) in
  let counters = Option.get (Json.member "counters" doc) in
  Alcotest.(check bool)
    "post-reset increments round-trip through snapshot" true
    (Json.member "test_obs.reset" counters = Some (Json.Int 2))

let test_gauge_registry () =
  let g = Metrics.gauge "test_obs.gauge" in
  let g' = Metrics.gauge "test_obs.gauge" in
  Metrics.set g 1.5;
  Alcotest.(check (float 1e-12)) "same cell" 1.5 (Metrics.gauge_value g');
  Metrics.set g' (-2.25);
  Alcotest.(check (option (float 1e-12)))
    "last write wins, visible by name" (Some (-2.25))
    (Metrics.find_gauge "test_obs.gauge");
  Alcotest.check_raises "kind clash with a counter"
    (Invalid_argument "Metrics.counter: test_obs.gauge is a gauge")
    (fun () -> ignore (Metrics.counter "test_obs.gauge"));
  Alcotest.check_raises "gauge over an existing counter"
    (Invalid_argument "Metrics.gauge: test_obs.counter is a counter")
    (fun () ->
      ignore (Metrics.counter "test_obs.counter");
      ignore (Metrics.gauge "test_obs.counter"))

let test_gauge_snapshot_and_reset () =
  (* the reset contract extends to gauges: old handles stay registered,
     zeroed, and interchangeable with post-reset re-registrations *)
  let before = Metrics.gauge "test_obs.reset_gauge" in
  Metrics.set before 7.5;
  let doc = Json.of_string (Json.to_string (Metrics.snapshot ())) in
  let gauges = Option.get (Json.member "gauges" doc) in
  Alcotest.(check bool) "snapshot carries the gauge" true
    (Json.member "test_obs.reset_gauge" gauges = Some (Json.Float 7.5));
  Metrics.reset ();
  Alcotest.(check (float 1e-12)) "old handle sees the zeroed cell" 0.0
    (Metrics.gauge_value before);
  let after = Metrics.gauge "test_obs.reset_gauge" in
  Metrics.set after 3.0;
  Alcotest.(check (float 1e-12)) "old and new handles share one cell" 3.0
    (Metrics.gauge_value before);
  Metrics.set before 4.5;
  let doc = Json.of_string (Json.to_string (Metrics.snapshot ())) in
  let gauges = Option.get (Json.member "gauges" doc) in
  Alcotest.(check bool) "post-reset sets round-trip through snapshot" true
    (Json.member "test_obs.reset_gauge" gauges = Some (Json.Float 4.5))

(* ---------- trace sink ---------- *)

let test_trace_document () =
  Trace.enable ();
  Fun.protect ~finally:Trace.disable (fun () ->
      Trace.with_span ~name:"outer" ~cat:"test" (fun () ->
          Trace.instant ~name:"tick" ~cat:"test"
            ~args:[ ("k", Json.Int 7) ] ());
      let doc = Json.of_string (Json.to_string (Trace.to_json ())) in
      let events =
        Option.get (Json.to_list_opt (Option.get (Json.member "traceEvents" doc)))
      in
      Alcotest.(check int) "two events" 2 (List.length events);
      let phases =
        List.filter_map (fun e -> Json.member "ph" e) events |> List.sort compare
      in
      Alcotest.(check bool)
        "one complete span and one instant" true
        (phases = [ Json.String "X"; Json.String "i" ]);
      List.iter
        (fun e ->
          List.iter
            (fun field ->
              if Json.member field e = None then
                Alcotest.failf "event lacks %S" field)
            [ "name"; "cat"; "ts"; "pid"; "tid" ])
        events)

let test_trace_disabled_is_silent () =
  Trace.disable ();
  Trace.instant ~name:"dropped" ~cat:"test" ();
  let r = Trace.with_span ~name:"dropped" ~cat:"test" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk still runs" 42 r;
  Alcotest.(check bool)
    "no buffered events" true
    (Json.member "traceEvents" (Trace.to_json ()) = Some (Json.List []))

(* ---------- allocation accounting ---------- *)

let test_alloc_delta_tracks_allocation () =
  (* [since] must see a known allocation even when it is far smaller than
     the young generation — the reason Alloc reads [Gc.minor_words] (the
     allocation pointer) instead of [quick_stat]'s lazily-refreshed
     counter, which only updates at minor collections. *)
  (* many small arrays, not one big one: arrays past Max_young_wosize
     (256 words) are allocated directly on the major heap and would never
     touch the minor counter *)
  let rounds = 1_000 and len = 8 in
  let acc = ref 0.0 in
  let s0 = Alloc.sample () in
  for i = 1 to rounds do
    let a = Sys.opaque_identity (Array.make len (float_of_int i)) in
    acc := !acc +. a.(0)
  done;
  let d = Alloc.since s0 in
  ignore (Sys.opaque_identity !acc);
  (* at least (len + header) words per round; the loose ceiling still
     catches double counting *)
  let floor = float_of_int (rounds * (len + 1)) in
  if d.Alloc.minor_words < floor then
    Alcotest.failf "delta %.0f words missed %.0f words of minor allocation"
      d.Alloc.minor_words floor;
  if d.Alloc.minor_words > 6.0 *. floor then
    Alcotest.failf "delta %.0f words for %.0f words of minor allocation"
      d.Alloc.minor_words floor;
  Alcotest.(check bool) "counters monotone" true
    (d.Alloc.promoted_words >= 0.0 && d.Alloc.major_words >= 0.0
    && d.Alloc.minor_collections >= 0
    && d.Alloc.major_collections >= 0)

let test_alloc_json_shape () =
  let keys doc =
    match doc with
    | Json.Obj fields -> List.map fst fields
    | _ -> Alcotest.fail "expected an object"
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " in to_json") true
        (List.mem k (keys (Alloc.to_json (Alloc.sample ())))))
    [ "minor_words"; "promoted_words"; "major_words"; "minor_collections";
      "major_collections" ];
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " in quick_stat_json") true
        (List.mem k (keys (Alloc.quick_stat_json ()))))
    [ "minor_words"; "heap_words"; "top_heap_words"; "compactions" ]

(* ---------- Newton stalled flag ---------- *)

let test_newton_stalled () =
  (* residual pinned high while the proposed step is microscopic: the
     solver must take the step-stall exit and flag it *)
  let stuck =
    Newton.solve
      {
        Newton.residual = (fun _ -> [| 1.0 |]);
        solve_linearized = (fun _ _ -> [| 1e-20 |]);
      }
      [| 0.0 |]
  in
  Alcotest.(check bool) "stalled" true stuck.Newton.stalled;
  Alcotest.(check bool) "not converged" false stuck.Newton.converged;
  (* a healthy linear solve converges without the flag *)
  let ok =
    Newton.solve
      {
        Newton.residual = (fun x -> [| x.(0) -. 2.0 |]);
        solve_linearized = (fun x f -> [| f.(0) /. 1.0 |] |> fun d -> ignore x; d);
      }
      [| 0.0 |]
  in
  Alcotest.(check bool) "converged" true ok.Newton.converged;
  Alcotest.(check bool) "not stalled" false ok.Newton.stalled

(* ---------- sequential vs parallel counter equality ---------- *)

let solver_counters () =
  List.filter_map
    (fun name -> Option.map (fun v -> (name, v)) (Metrics.find_counter name))
    [
      "qwm.solves";
      "qwm.regions";
      "qwm.turn_ons";
      "qwm.newton_iterations";
      "qwm.linear_solves";
      "qwm.bisections";
      "qwm.failures";
      "sta.stages_timed";
      "stage_cache.hits";
      "stage_cache.misses";
    ]

let run_and_snapshot ~domains graph =
  Metrics.reset ();
  let cache = Stage_cache.create () in
  let (_ : Tqwm_sta.Arrival.analysis) =
    Parallel.propagate ~model:(Lazy.force table) ~cache ~domains graph
  in
  solver_counters ()

let test_counters_seq_eq_par () =
  let graph = Workloads.decoder_tree ~fanout:3 ~depth:2 tech in
  ignore (Timing_graph.freeze graph);
  let seq = run_and_snapshot ~domains:1 graph in
  let par = run_and_snapshot ~domains:4 graph in
  List.iter2
    (fun (name, s) (name', p) ->
      Alcotest.(check string) "same counter" name name';
      if s <> p then
        Alcotest.failf "%s: sequential %d vs 4-domain %d" name s p)
    seq par;
  (* the comparison must not be vacuous *)
  List.iter
    (fun name ->
      match List.assoc_opt name seq with
      | Some v when v > 0 -> ()
      | Some v -> Alcotest.failf "%s unexpectedly %d" name v
      | None -> Alcotest.failf "%s not registered" name)
    [ "qwm.regions"; "qwm.newton_iterations"; "sta.stages_timed"; "stage_cache.misses" ];
  (* single-flight cache: one miss per distinct stage in both modes *)
  Alcotest.(check (option int))
    "hits + misses = stages"
    (Some (Timing_graph.num_stages graph))
    (match (List.assoc_opt "stage_cache.hits" seq, List.assoc_opt "stage_cache.misses" seq) with
    | Some h, Some m -> Some (h + m)
    | _ -> None)

(* ---------- ledger ---------- *)

let test_ledger_rejects_schemaless () =
  let reject record =
    Alcotest.check_raises "schema-less record rejected"
      (Invalid_argument "Ledger.append: record lacks a \"schema\" string field")
      (fun () ->
        ignore (Tqwm_obs.Ledger.append ~path:"/nonexistent/never-written.json" record))
  in
  reject (Json.Obj [ ("speedup", Json.Float 2.0) ]);
  reject (Json.Obj [ ("schema", Json.Int 2) ]);
  reject (Json.List [ Json.String "tqwm-bench-parallel/2" ]);
  (* a versioned record is accepted and stamped *)
  let path = Filename.temp_file "tqwm-ledger" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let n =
        Tqwm_obs.Ledger.append ~path
          (Json.Obj [ ("schema", Json.String "tqwm-test/1") ])
      in
      Alcotest.(check int) "one record" 1 n;
      match Tqwm_obs.Ledger.last path with
      | Some (Json.Obj fields) ->
        Alcotest.(check bool) "stamped with date and commit" true
          (List.mem_assoc "date" fields && List.mem_assoc "commit" fields)
      | Some _ | None -> Alcotest.fail "record not readable back")

let () =
  Alcotest.run "tqwm_obs"
    [
      ( "json",
        [ Alcotest.test_case "round-trip and errors" `Quick test_json_roundtrip ] );
      ( "ledger",
        [
          Alcotest.test_case "append rejects schema-less records" `Quick
            test_ledger_rejects_schemaless;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter registry" `Quick test_counter_registry;
          Alcotest.test_case "histogram boundaries" `Quick test_histogram_boundaries;
          Alcotest.test_case "snapshot parses" `Quick test_metrics_snapshot_parses;
          Alcotest.test_case "reset keeps handles registered" `Quick
            test_reset_keeps_handles;
          Alcotest.test_case "gauge registry" `Quick test_gauge_registry;
          Alcotest.test_case "gauge snapshot and reset contract" `Quick
            test_gauge_snapshot_and_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "document shape" `Quick test_trace_document;
          Alcotest.test_case "disabled is silent" `Quick test_trace_disabled_is_silent;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "delta tracks a sub-minor-heap allocation" `Quick
            test_alloc_delta_tracks_allocation;
          Alcotest.test_case "json shape" `Quick test_alloc_json_shape;
        ] );
      ( "newton",
        [ Alcotest.test_case "stalled flag" `Quick test_newton_stalled ] );
      ( "end-to-end",
        [
          Alcotest.test_case "sequential vs parallel counters" `Slow
            test_counters_seq_eq_par;
        ] );
    ]
