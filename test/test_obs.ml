(* Tests for the observability library (Tqwm_obs) and its wiring into
   the engines: exact histogram bucketing, JSON round-trips, trace
   document shape, the Newton [stalled] flag, and — the load-bearing
   property — solver counters identical between a sequential and a
   4-domain parallel STA run of the same workload. *)

open Tqwm_device
module Alloc = Tqwm_obs.Alloc
module Json = Tqwm_obs.Json
module Log = Tqwm_obs.Log
module Metrics = Tqwm_obs.Metrics
module Prometheus = Tqwm_obs.Prometheus
module Series = Tqwm_obs.Series
module Trace = Tqwm_obs.Trace
module Newton = Tqwm_num.Newton
module Vec = Tqwm_num.Vec
module Parallel = Tqwm_sta.Parallel
module Stage_cache = Tqwm_sta.Stage_cache
module Timing_graph = Tqwm_sta.Timing_graph
module Workloads = Tqwm_sta.Workloads

let tech = Tech.cmosp35

let table = lazy (Models.table tech)

(* ---------- JSON ---------- *)

let test_json_roundtrip () =
  let doc =
    Json.Obj
      [
        ("null", Json.Null);
        ("bools", Json.List [ Json.Bool true; Json.Bool false ]);
        ("int", Json.Int (-42));
        ("float", Json.Float 1.5);
        ("tiny", Json.Float 1.25e-12);
        ("string", Json.String "a\"b\\c\n\t\x01z");
        ("empty_obj", Json.Obj []);
        ("empty_list", Json.List []);
      ]
  in
  Alcotest.(check bool)
    "round-trip" true
    (Json.of_string (Json.to_string doc) = doc);
  (* non-finite floats must degrade to null, keeping the document valid *)
  Alcotest.(check string)
    "nan -> null" "[null,null,null]"
    (Json.to_string (Json.List [ Json.Float nan; Json.Float infinity; Json.Float neg_infinity ]));
  Alcotest.check_raises "trailing garbage rejected"
    (Json.Parse_error "at offset 2: trailing garbage") (fun () ->
      ignore (Json.of_string "{}x"))

(* ---------- metrics ---------- *)

let test_counter_registry () =
  let a = Metrics.counter "test_obs.counter" in
  let b = Metrics.counter "test_obs.counter" in
  Metrics.incr a;
  Metrics.add b 2;
  Alcotest.(check int) "same cell" 3 (Metrics.value a);
  Alcotest.(check (option int))
    "visible by name" (Some 3)
    (Metrics.find_counter "test_obs.counter");
  Alcotest.check_raises "kind clash"
    (Invalid_argument "Metrics.histogram: test_obs.counter is a counter")
    (fun () -> ignore (Metrics.histogram "test_obs.counter" ~bounds:[| 1.0 |]))

let test_histogram_boundaries () =
  (* bucket i counts bounds.(i-1) < v <= bounds.(i); overflow last *)
  let h = Metrics.histogram "test_obs.hist" ~bounds:[| 1.0; 2.0; 5.0 |] in
  List.iter (Metrics.observe h) [ 0.5; 1.0; 1.5; 2.0; 2.5; 5.0; 6.0 ];
  Alcotest.(check (array int))
    "boundary values land in the lower bucket" [| 2; 2; 2; 1 |]
    (Metrics.histogram_counts h);
  Alcotest.(check int) "total" 7 (Metrics.histogram_total h);
  Alcotest.check_raises "non-increasing bounds"
    (Invalid_argument "Metrics.histogram: bounds not strictly increasing")
    (fun () -> ignore (Metrics.histogram "test_obs.bad" ~bounds:[| 1.0; 1.0 |]))

let test_metrics_snapshot_parses () =
  let c = Metrics.counter "test_obs.snap" in
  Metrics.incr c;
  let doc = Json.of_string (Json.to_string (Metrics.snapshot ())) in
  let counters = Option.get (Json.member "counters" doc) in
  Alcotest.(check bool)
    "snapshot JSON round-trips with the counter present" true
    (Json.member "test_obs.snap" counters = Some (Json.Int (Metrics.value c)));
  match Json.member "histograms" doc with
  | Some (Json.Obj _) -> ()
  | _ -> Alcotest.fail "snapshot has no histograms object"

let test_reset_keeps_handles () =
  (* the Metrics.reset contract: handles handed out before reset stay
     registered and interchangeable with post-reset re-registrations, and
     updates through either round-trip into the next snapshot *)
  let before = Metrics.counter "test_obs.reset" in
  let h_before = Metrics.histogram "test_obs.reset_hist" ~bounds:[| 1.0; 2.0 |] in
  Metrics.add before 5;
  Metrics.observe h_before 1.5;
  Metrics.reset ();
  Alcotest.(check int) "old handle sees the zeroed cell" 0 (Metrics.value before);
  Alcotest.(check int) "histogram zeroed" 0 (Metrics.histogram_total h_before);
  let after = Metrics.counter "test_obs.reset" in
  let h_after = Metrics.histogram "test_obs.reset_hist" ~bounds:[| 1.0; 2.0 |] in
  Metrics.incr after;
  Metrics.incr before;
  Metrics.observe h_after 0.5;
  Metrics.observe h_before 3.0;
  Alcotest.(check int) "old and new handles share one cell" 2 (Metrics.value after);
  Alcotest.(check (array int))
    "histogram updates via both handles" [| 1; 0; 1 |]
    (Metrics.histogram_counts h_after);
  let doc = Json.of_string (Json.to_string (Metrics.snapshot ())) in
  let counters = Option.get (Json.member "counters" doc) in
  Alcotest.(check bool)
    "post-reset increments round-trip through snapshot" true
    (Json.member "test_obs.reset" counters = Some (Json.Int 2))

let test_gauge_registry () =
  let g = Metrics.gauge "test_obs.gauge" in
  let g' = Metrics.gauge "test_obs.gauge" in
  Metrics.set g 1.5;
  Alcotest.(check (float 1e-12)) "same cell" 1.5 (Metrics.gauge_value g');
  Metrics.set g' (-2.25);
  Alcotest.(check (option (float 1e-12)))
    "last write wins, visible by name" (Some (-2.25))
    (Metrics.find_gauge "test_obs.gauge");
  Alcotest.check_raises "kind clash with a counter"
    (Invalid_argument "Metrics.counter: test_obs.gauge is a gauge")
    (fun () -> ignore (Metrics.counter "test_obs.gauge"));
  Alcotest.check_raises "gauge over an existing counter"
    (Invalid_argument "Metrics.gauge: test_obs.counter is a counter")
    (fun () ->
      ignore (Metrics.counter "test_obs.counter");
      ignore (Metrics.gauge "test_obs.counter"))

let test_gauge_snapshot_and_reset () =
  (* the reset contract extends to gauges: old handles stay registered,
     zeroed, and interchangeable with post-reset re-registrations *)
  let before = Metrics.gauge "test_obs.reset_gauge" in
  Metrics.set before 7.5;
  let doc = Json.of_string (Json.to_string (Metrics.snapshot ())) in
  let gauges = Option.get (Json.member "gauges" doc) in
  Alcotest.(check bool) "snapshot carries the gauge" true
    (Json.member "test_obs.reset_gauge" gauges = Some (Json.Float 7.5));
  Metrics.reset ();
  Alcotest.(check (float 1e-12)) "old handle sees the zeroed cell" 0.0
    (Metrics.gauge_value before);
  let after = Metrics.gauge "test_obs.reset_gauge" in
  Metrics.set after 3.0;
  Alcotest.(check (float 1e-12)) "old and new handles share one cell" 3.0
    (Metrics.gauge_value before);
  Metrics.set before 4.5;
  let doc = Json.of_string (Json.to_string (Metrics.snapshot ())) in
  let gauges = Option.get (Json.member "gauges" doc) in
  Alcotest.(check bool) "post-reset sets round-trip through snapshot" true
    (Json.member "test_obs.reset_gauge" gauges = Some (Json.Float 4.5))

(* ---------- trace sink ---------- *)

let test_trace_document () =
  Trace.enable ();
  Fun.protect ~finally:Trace.disable (fun () ->
      Trace.with_span ~name:"outer" ~cat:"test" (fun () ->
          Trace.instant ~name:"tick" ~cat:"test"
            ~args:[ ("k", Json.Int 7) ] ());
      let doc = Json.of_string (Json.to_string (Trace.to_json ())) in
      let events =
        Option.get (Json.to_list_opt (Option.get (Json.member "traceEvents" doc)))
      in
      Alcotest.(check int) "two events" 2 (List.length events);
      let phases =
        List.filter_map (fun e -> Json.member "ph" e) events |> List.sort compare
      in
      Alcotest.(check bool)
        "one complete span and one instant" true
        (phases = [ Json.String "X"; Json.String "i" ]);
      List.iter
        (fun e ->
          List.iter
            (fun field ->
              if Json.member field e = None then
                Alcotest.failf "event lacks %S" field)
            [ "name"; "cat"; "ts"; "pid"; "tid" ])
        events)

let test_trace_disabled_is_silent () =
  Trace.disable ();
  Trace.instant ~name:"dropped" ~cat:"test" ();
  let r = Trace.with_span ~name:"dropped" ~cat:"test" (fun () -> 41 + 1) in
  Alcotest.(check int) "thunk still runs" 42 r;
  Alcotest.(check bool)
    "no buffered events" true
    (Json.member "traceEvents" (Trace.to_json ()) = Some (Json.List []))

let trace_events () =
  match Json.member "traceEvents" (Trace.to_json ()) with
  | Some (Json.List events) -> events
  | _ -> Alcotest.fail "trace document lacks traceEvents"

let test_trace_concurrent_emission () =
  (* the domain-safety contract: four domains hammering the sink
     concurrently lose nothing and tear nothing — every event comes back
     whole, exactly once, in timestamp order *)
  let domains = 4 and per_domain = 2000 in
  (* the cap splits evenly across the 64 internal shards while only
     [domains] shards are active here, so size it per shard *)
  Trace.enable ~cap:(64 * 2 * per_domain) ();
  Fun.protect ~finally:Trace.disable (fun () ->
      let emit d =
        for i = 1 to per_domain do
          Trace.instant ~name:"stress" ~cat:"test"
            ~args:[ ("d", Json.Int d); ("i", Json.Int i) ]
            ()
        done
      in
      let spawned =
        List.init (domains - 1) (fun d -> Domain.spawn (fun () -> emit (d + 1)))
      in
      emit 0;
      List.iter Domain.join spawned;
      let events = trace_events () in
      Alcotest.(check int)
        "no event lost" (domains * per_domain)
        (List.length events);
      (* each (d, i) pair exactly once, and always whole: a torn event
         would surface as a missing or mismatched arg *)
      let seen = Hashtbl.create (domains * per_domain) in
      List.iter
        (fun e ->
          let args = Option.get (Json.member "args" e) in
          match (Json.member "d" args, Json.member "i" args) with
          | Some (Json.Int d), Some (Json.Int i) ->
            if Hashtbl.mem seen (d, i) then
              Alcotest.failf "event (%d,%d) duplicated" d i;
            Hashtbl.add seen (d, i) ()
          | _ -> Alcotest.fail "torn event: args incomplete")
        events;
      Alcotest.(check int)
        "every (domain, seq) pair present" (domains * per_domain)
        (Hashtbl.length seen);
      let ts e =
        match Json.member "ts" e with
        | Some (Json.Float t) -> t
        | Some (Json.Int t) -> float_of_int t
        | _ -> Alcotest.fail "event lacks ts"
      in
      let rec sorted = function
        | a :: (b :: _ as rest) -> ts a <= ts b && sorted rest
        | _ -> true
      in
      Alcotest.(check bool) "merged shards are time-sorted" true
        (sorted events))

let test_trace_cap_drops_and_counts () =
  (* a capped sink drops excess events instead of growing without bound,
     and owns up to it through the metrics registry *)
  Metrics.reset ();
  Trace.enable ~cap:64 ();
  Fun.protect ~finally:Trace.disable (fun () ->
      for i = 1 to 500 do
        Trace.instant ~name:"flood" ~cat:"test" ~args:[ ("i", Json.Int i) ] ()
      done;
      let kept = List.length (trace_events ()) in
      let dropped =
        Option.value (Metrics.find_counter "trace.dropped_events") ~default:0
      in
      Alcotest.(check bool)
        (Printf.sprintf "kept %d <= cap" kept)
        true (kept <= 64);
      Alcotest.(check int) "kept + dropped = emitted" 500 (kept + dropped))

let test_trace_context_scoping () =
  Trace.enable ();
  Fun.protect ~finally:Trace.disable (fun () ->
      Alcotest.(check bool) "ambient context starts empty" true
        (Trace.current_context () = []);
      let rid = ("request", Json.String "s1.r1") in
      let sid = ("session", Json.String "s1") in
      Trace.with_context [ sid ] (fun () ->
          Trace.with_context [ rid ] (fun () ->
              Alcotest.(check bool) "scopes nest, outermost first" true
                (Trace.current_context () = [ sid; rid ]);
              Trace.instant ~name:"tagged" ~cat:"test"
                ~args:[ ("own", Json.Int 1) ]
                ()));
      Alcotest.(check bool) "context restored" true
        (Trace.current_context () = []);
      (try
         Trace.with_context [ rid ] (fun () -> failwith "boom")
       with Failure _ -> ());
      Alcotest.(check bool) "restored after a raise" true
        (Trace.current_context () = []);
      Trace.instant ~name:"untagged" ~cat:"test" ();
      let find name =
        List.find
          (fun e -> Json.member "name" e = Some (Json.String name))
          (trace_events ())
      in
      let args = Option.get (Json.member "args" (find "tagged")) in
      Alcotest.(check bool) "event carries its own arg" true
        (Json.member "own" args = Some (Json.Int 1));
      Alcotest.(check bool) "event carries the session context" true
        (Json.member "session" args = Some (Json.String "s1"));
      Alcotest.(check bool) "event carries the request context" true
        (Json.member "request" args = Some (Json.String "s1.r1"));
      Alcotest.(check bool) "later event is untagged" true
        (Json.member "args" (find "untagged") = None))

let test_trace_context_crosses_domains () =
  (* the Server/Parallel idiom: capture before spawn, reinstall inside *)
  Trace.enable ();
  Fun.protect ~finally:Trace.disable (fun () ->
      Trace.with_context
        [ ("request", Json.String "s9.r9") ]
        (fun () ->
          let ctx = Trace.current_context () in
          Domain.join
            (Domain.spawn (fun () ->
                 Alcotest.(check bool) "child domain starts clean" true
                   (Trace.current_context () = []);
                 Trace.with_context ctx (fun () ->
                     Trace.instant ~name:"child" ~cat:"test" ()))));
      match trace_events () with
      | [ e ] ->
        let args = Option.get (Json.member "args" e) in
        Alcotest.(check bool) "child event carries the request id" true
          (Json.member "request" args = Some (Json.String "s9.r9"))
      | events -> Alcotest.failf "expected 1 event, got %d" (List.length events))

(* ---------- rolling series ---------- *)

let sample ?(counters = []) ?(gauges = []) ?(histograms = []) t =
  { Series.t; counters; gauges; histograms }

let test_series_ring_eviction () =
  let s = Series.create ~capacity:4 () in
  Alcotest.(check int) "capacity" 4 (Series.capacity s);
  for i = 1 to 6 do
    Series.record s (sample ~counters:[ ("n", i) ] (float_of_int i))
  done;
  Alcotest.(check int) "oldest evicted" 4 (Series.length s);
  (match Series.latest s with
  | Some { Series.counters = [ ("n", 6) ]; _ } -> ()
  | Some _ | None -> Alcotest.fail "latest is not the last recorded");
  (* the window is anchored to the newest sample's timestamp *)
  Alcotest.(check int) "window cuts by age" 3
    (List.length (Series.window s ~seconds:2.0));
  Alcotest.check_raises "zero capacity rejected"
    (Invalid_argument "Series.create: capacity must be positive") (fun () ->
      ignore (Series.create ~capacity:0 ()))

let test_series_rates_skip_foreign_samples () =
  (* instruments recorded by only one producer (the daemon's per-domain
     GC statistics) must yield rates from that producer's samples alone;
     interleaved samples lacking the key — recorded by other domains —
     must neither break the rate nor drag it negative *)
  let s = Series.create () in
  Series.record s
    (sample ~counters:[ ("requests", 10); ("gc", 100) ]
       ~gauges:[ ("words", 1000.0) ] 0.0);
  Series.record s (sample ~counters:[ ("requests", 30) ] 5.0);
  Series.record s
    (sample ~counters:[ ("requests", 50); ("gc", 140) ]
       ~gauges:[ ("words", 1800.0) ] 10.0);
  Series.record s (sample ~counters:[ ("requests", 60) ] 12.0);
  Alcotest.(check (option (float 1e-9)))
    "counter present everywhere uses the full window" (Some (50.0 /. 12.0))
    (Series.counter_rate s ~seconds:60.0 "requests");
  Alcotest.(check (option (float 1e-9)))
    "sparse counter uses only the samples that carry it" (Some 4.0)
    (Series.counter_rate s ~seconds:60.0 "gc");
  Alcotest.(check (option (float 1e-9)))
    "sparse gauge likewise" (Some 80.0)
    (Series.gauge_rate s ~seconds:60.0 "words");
  Alcotest.(check (option (float 1e-9)))
    "absent instrument" None
    (Series.counter_rate s ~seconds:60.0 "nonesuch");
  (* fewer than two carrying samples: no rate *)
  let s1 = Series.create () in
  Series.record s1 (sample ~counters:[ ("gc", 5) ] 0.0);
  Series.record s1 (sample 1.0);
  Alcotest.(check (option (float 1e-9)))
    "one carrying sample is not a rate" None
    (Series.counter_rate s1 ~seconds:60.0 "gc")

let test_series_histogram_delta () =
  let bounds = [| 1.0; 2.0 |] in
  let h counts sum = { Series.bounds; counts; sum } in
  let s = Series.create () in
  Series.record s (sample ~histograms:[ ("lat", h [| 1; 2; 0 |] 3.5) ] 0.0);
  Series.record s (sample 0.5);
  Series.record s (sample ~histograms:[ ("lat", h [| 4; 2; 1 |] 9.0) ] 1.0);
  match Series.histogram_delta s ~seconds:60.0 "lat" with
  | None -> Alcotest.fail "no delta"
  | Some d ->
    Alcotest.(check (array int)) "bucket-wise difference" [| 3; 0; 1 |]
      d.Series.counts;
    Alcotest.(check (float 1e-9)) "sum difference" 5.5 d.Series.sum

let test_series_quantile () =
  let bounds = [| 1.0; 2.0; 5.0 |] in
  let q counts p = Series.quantile ~bounds ~counts p in
  Alcotest.(check (option (float 1e-9)))
    "all-zero counts" None
    (q [| 0; 0; 0; 0 |] 0.5);
  (* 10 observations all in (1, 2]: the median interpolates inside that
     bucket — half way from bound 1.0 to bound 2.0 *)
  Alcotest.(check (option (float 1e-9)))
    "interpolates within the bucket" (Some 1.5)
    (q [| 0; 10; 0; 0 |] 0.5);
  (* the rank-1.0 clamp: a single observation reports its bucket's bound *)
  Alcotest.(check (option (float 1e-9)))
    "single observation hits the bound" (Some 2.0)
    (q [| 0; 1; 0; 0 |] 0.5);
  (* q = 1.0 on a full first bucket lands exactly on the bound *)
  Alcotest.(check (option (float 1e-9)))
    "on-bound" (Some 1.0)
    (q [| 4; 0; 0; 0 |] 1.0);
  (* overflow observations clamp to the last finite bound *)
  Alcotest.(check (option (float 1e-9)))
    "overflow clamps" (Some 5.0)
    (q [| 0; 0; 0; 3 |] 0.99);
  Alcotest.check_raises "q out of range"
    (Invalid_argument "Series.quantile: q outside [0,1]") (fun () ->
      ignore (q [| 1; 0; 0; 0 |] 1.5));
  Alcotest.check_raises "length mismatch"
    (Invalid_argument "Series.quantile: counts/bounds length mismatch")
    (fun () -> ignore (q [| 1; 0 |] 0.5))

let test_series_capture_merges_extras () =
  Metrics.reset ();
  let c = Metrics.counter "test_obs.series_capture" in
  Metrics.add c 3;
  let s =
    Series.capture
      ~extra_counters:[ ("gc.minor_collections", 7) ]
      ~extra_gauges:[ ("gc.minor_words", 123.0) ]
      ~now:42.0 ()
  in
  Alcotest.(check (float 1e-9)) "stamped" 42.0 s.Series.t;
  Alcotest.(check (option int)) "registry counter captured" (Some 3)
    (List.assoc_opt "test_obs.series_capture" s.Series.counters);
  Alcotest.(check (option int)) "extra counter merged" (Some 7)
    (List.assoc_opt "gc.minor_collections" s.Series.counters);
  Alcotest.(check (option (float 1e-9))) "extra gauge merged" (Some 123.0)
    (List.assoc_opt "gc.minor_words" s.Series.gauges)

(* ---------- Prometheus exposition ---------- *)

let test_prometheus_sanitize () =
  Alcotest.(check string) "dots to underscores" "server_latency_ms_load"
    (Prometheus.sanitize "server.latency_ms.load");
  Alcotest.(check string) "legal chars kept" "a_b:c_9"
    (Prometheus.sanitize "a_b:c_9");
  Alcotest.(check string) "leading digit illegal" "_lives"
    (Prometheus.sanitize "9lives")

let render_lines () =
  String.split_on_char '\n' (Prometheus.render ())

let assert_line expected =
  if not (List.mem expected (render_lines ())) then
    Alcotest.failf "render lacks the line %S" expected

let test_prometheus_render_histogram () =
  Metrics.reset ();
  let h = Metrics.histogram "test_prom.h" ~bounds:[| 1.0; 2.0; 5.0 |] in
  (* on-bound observations count into their own bucket (le is <=), and
     the overflow observation appears only in +Inf *)
  List.iter (Metrics.observe h) [ 1.0; 1.0; 2.0; 3.0; 99.0 ];
  assert_line "# TYPE test_prom_h histogram";
  assert_line "test_prom_h_bucket{le=\"1\"} 2";
  assert_line "test_prom_h_bucket{le=\"2\"} 3";
  assert_line "test_prom_h_bucket{le=\"5\"} 4";
  assert_line "test_prom_h_bucket{le=\"+Inf\"} 5";
  assert_line "test_prom_h_sum 106";
  assert_line "test_prom_h_count 5"

let test_prometheus_render_empty_histogram () =
  Metrics.reset ();
  let (_ : Metrics.histogram) =
    Metrics.histogram "test_prom.empty" ~bounds:[| 0.5 |]
  in
  assert_line "test_prom_empty_bucket{le=\"0.5\"} 0";
  assert_line "test_prom_empty_bucket{le=\"+Inf\"} 0";
  assert_line "test_prom_empty_sum 0";
  assert_line "test_prom_empty_count 0"

let test_prometheus_render_scalars () =
  Metrics.reset ();
  let c = Metrics.counter "test_prom.hits" in
  Metrics.add c 41;
  let g = Metrics.gauge "test_prom.temp" in
  Metrics.set g 1.25;
  assert_line "# TYPE test_prom_hits counter";
  assert_line "test_prom_hits 41";
  assert_line "# TYPE test_prom_temp gauge";
  assert_line "test_prom_temp 1.25"

let test_prometheus_scrape_http () =
  Metrics.reset ();
  let c = Metrics.counter "test_prom.scraped" in
  Metrics.incr c;
  let server =
    Prometheus.serve (Unix.ADDR_INET (Unix.inet_addr_loopback, 0))
  in
  Fun.protect
    ~finally:(fun () -> Prometheus.stop server)
    (fun () ->
      let fetch path =
        let fd = Unix.socket ~cloexec:true Unix.PF_INET Unix.SOCK_STREAM 0 in
        Fun.protect
          ~finally:(fun () -> try Unix.close fd with Unix.Unix_error _ -> ())
          (fun () ->
            Unix.connect fd (Prometheus.bound server);
            let req =
              Printf.sprintf "GET %s HTTP/1.1\r\nHost: t\r\n\r\n" path
            in
            ignore (Unix.write_substring fd req 0 (String.length req));
            let buf = Buffer.create 4096 in
            let chunk = Bytes.create 4096 in
            let rec drain () =
              let n = Unix.read fd chunk 0 (Bytes.length chunk) in
              if n > 0 then begin
                Buffer.add_subbytes buf chunk 0 n;
                drain ()
              end
            in
            drain ();
            Buffer.contents buf)
      in
      let body = fetch "/metrics" in
      Alcotest.(check bool) "200 on /metrics" true
        (String.starts_with ~prefix:"HTTP/1.1 200 OK" body);
      let contains needle haystack =
        let nl = String.length needle and hl = String.length haystack in
        let rec go i = i + nl <= hl
          && (String.sub haystack i nl = needle || go (i + 1)) in
        go 0
      in
      Alcotest.(check bool) "payload carries the counter" true
        (contains "test_prom_scraped 1" body);
      Alcotest.(check bool) "404 elsewhere" true
        (String.starts_with ~prefix:"HTTP/1.1 404" (fetch "/nope")))

(* ---------- structured JSONL log ---------- *)

let test_log_concurrent_lines_whole () =
  let path = Filename.temp_file "tqwm-log" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      let log = Log.open_file path in
      Alcotest.(check string) "path" path (Log.path log);
      let domains = 4 and per_domain = 250 in
      let write d =
        for i = 1 to per_domain do
          Log.write log
            [
              ("d", Json.Int d);
              ("i", Json.Int i);
              ("pad", Json.String (String.make 64 'x'));
            ]
        done
      in
      let spawned =
        List.init (domains - 1) (fun d ->
            Domain.spawn (fun () -> write (d + 1)))
      in
      write 0;
      List.iter Domain.join spawned;
      Log.close log;
      let ic = open_in path in
      let seen = Hashtbl.create (domains * per_domain) in
      (try
         while true do
           let line = input_line ic in
           match Json.of_string line with
           | Json.Obj fields ->
             (match
                (List.assoc_opt "d" fields, List.assoc_opt "i" fields)
              with
             | Some (Json.Int d), Some (Json.Int i) ->
               Hashtbl.add seen (d, i) ()
             | _ -> Alcotest.failf "malformed record: %s" line)
           | _ -> Alcotest.failf "line is not an object: %s" line
         done
       with End_of_file -> close_in ic);
      Alcotest.(check int)
        "every record present, none torn" (domains * per_domain)
        (Hashtbl.length seen))

(* ---------- allocation accounting ---------- *)

let test_alloc_delta_tracks_allocation () =
  (* [since] must see a known allocation even when it is far smaller than
     the young generation — the reason Alloc reads [Gc.minor_words] (the
     allocation pointer) instead of [quick_stat]'s lazily-refreshed
     counter, which only updates at minor collections. *)
  (* many small arrays, not one big one: arrays past Max_young_wosize
     (256 words) are allocated directly on the major heap and would never
     touch the minor counter *)
  let rounds = 1_000 and len = 8 in
  let acc = ref 0.0 in
  let s0 = Alloc.sample () in
  for i = 1 to rounds do
    let a = Sys.opaque_identity (Array.make len (float_of_int i)) in
    acc := !acc +. a.(0)
  done;
  let d = Alloc.since s0 in
  ignore (Sys.opaque_identity !acc);
  (* at least (len + header) words per round; the loose ceiling still
     catches double counting *)
  let floor = float_of_int (rounds * (len + 1)) in
  if d.Alloc.minor_words < floor then
    Alcotest.failf "delta %.0f words missed %.0f words of minor allocation"
      d.Alloc.minor_words floor;
  if d.Alloc.minor_words > 6.0 *. floor then
    Alcotest.failf "delta %.0f words for %.0f words of minor allocation"
      d.Alloc.minor_words floor;
  Alcotest.(check bool) "counters monotone" true
    (d.Alloc.promoted_words >= 0.0 && d.Alloc.major_words >= 0.0
    && d.Alloc.minor_collections >= 0
    && d.Alloc.major_collections >= 0)

let test_alloc_json_shape () =
  let keys doc =
    match doc with
    | Json.Obj fields -> List.map fst fields
    | _ -> Alcotest.fail "expected an object"
  in
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " in to_json") true
        (List.mem k (keys (Alloc.to_json (Alloc.sample ())))))
    [ "minor_words"; "promoted_words"; "major_words"; "minor_collections";
      "major_collections" ];
  List.iter
    (fun k ->
      Alcotest.(check bool) (k ^ " in quick_stat_json") true
        (List.mem k (keys (Alloc.quick_stat_json ()))))
    [ "minor_words"; "heap_words"; "top_heap_words"; "compactions" ]

(* ---------- Newton stalled flag ---------- *)

let test_newton_stalled () =
  (* residual pinned high while the proposed step is microscopic: the
     solver must take the step-stall exit and flag it *)
  let stuck =
    Newton.solve
      {
        Newton.residual = (fun _ -> Vec.of_list [ 1.0 ]);
        solve_linearized = (fun _ _ -> Vec.of_list [ 1e-20 ]);
      }
      (Vec.of_list [ 0.0 ])
  in
  Alcotest.(check bool) "stalled" true stuck.Newton.stalled;
  Alcotest.(check bool) "not converged" false stuck.Newton.converged;
  (* a healthy linear solve converges without the flag *)
  let ok =
    Newton.solve
      {
        Newton.residual = (fun x -> Vec.of_list [ x.{0} -. 2.0 ]);
        solve_linearized = (fun x f -> Vec.of_list [ f.{0} /. 1.0 ] |> fun d -> ignore x; d);
      }
      (Vec.of_list [ 0.0 ])
  in
  Alcotest.(check bool) "converged" true ok.Newton.converged;
  Alcotest.(check bool) "not stalled" false ok.Newton.stalled

(* ---------- sequential vs parallel counter equality ---------- *)

let solver_counters () =
  List.filter_map
    (fun name -> Option.map (fun v -> (name, v)) (Metrics.find_counter name))
    [
      "qwm.solves";
      "qwm.regions";
      "qwm.turn_ons";
      "qwm.newton_iterations";
      "qwm.linear_solves";
      "qwm.bisections";
      "qwm.failures";
      "sta.stages_timed";
      "stage_cache.hits";
      "stage_cache.misses";
    ]

let run_and_snapshot ~domains graph =
  Metrics.reset ();
  let cache = Stage_cache.create () in
  let (_ : Tqwm_sta.Arrival.analysis) =
    Parallel.propagate ~model:(Lazy.force table) ~cache ~domains graph
  in
  solver_counters ()

let test_counters_seq_eq_par () =
  let graph = Workloads.decoder_tree ~fanout:3 ~depth:2 tech in
  ignore (Timing_graph.freeze graph);
  let seq = run_and_snapshot ~domains:1 graph in
  let par = run_and_snapshot ~domains:4 graph in
  List.iter2
    (fun (name, s) (name', p) ->
      Alcotest.(check string) "same counter" name name';
      if s <> p then
        Alcotest.failf "%s: sequential %d vs 4-domain %d" name s p)
    seq par;
  (* the comparison must not be vacuous *)
  List.iter
    (fun name ->
      match List.assoc_opt name seq with
      | Some v when v > 0 -> ()
      | Some v -> Alcotest.failf "%s unexpectedly %d" name v
      | None -> Alcotest.failf "%s not registered" name)
    [ "qwm.regions"; "qwm.newton_iterations"; "sta.stages_timed"; "stage_cache.misses" ];
  (* single-flight cache: one miss per distinct stage in both modes *)
  Alcotest.(check (option int))
    "hits + misses = stages"
    (Some (Timing_graph.num_stages graph))
    (match (List.assoc_opt "stage_cache.hits" seq, List.assoc_opt "stage_cache.misses" seq) with
    | Some h, Some m -> Some (h + m)
    | _ -> None)

(* ---------- ledger ---------- *)

let test_ledger_rejects_schemaless () =
  let reject record =
    Alcotest.check_raises "schema-less record rejected"
      (Invalid_argument "Ledger.append: record lacks a \"schema\" string field")
      (fun () ->
        ignore (Tqwm_obs.Ledger.append ~path:"/nonexistent/never-written.json" record))
  in
  reject (Json.Obj [ ("speedup", Json.Float 2.0) ]);
  reject (Json.Obj [ ("schema", Json.Int 2) ]);
  reject (Json.List [ Json.String "tqwm-bench-parallel/2" ]);
  (* a versioned record is accepted and stamped *)
  let path = Filename.temp_file "tqwm-ledger" ".json" in
  Fun.protect
    ~finally:(fun () -> Sys.remove path)
    (fun () ->
      let n =
        Tqwm_obs.Ledger.append ~path
          (Json.Obj [ ("schema", Json.String "tqwm-test/1") ])
      in
      Alcotest.(check int) "one record" 1 n;
      match Tqwm_obs.Ledger.last path with
      | Some (Json.Obj fields) ->
        Alcotest.(check bool) "stamped with date and commit" true
          (List.mem_assoc "date" fields && List.mem_assoc "commit" fields)
      | Some _ | None -> Alcotest.fail "record not readable back")

let () =
  Alcotest.run "tqwm_obs"
    [
      ( "json",
        [ Alcotest.test_case "round-trip and errors" `Quick test_json_roundtrip ] );
      ( "ledger",
        [
          Alcotest.test_case "append rejects schema-less records" `Quick
            test_ledger_rejects_schemaless;
        ] );
      ( "metrics",
        [
          Alcotest.test_case "counter registry" `Quick test_counter_registry;
          Alcotest.test_case "histogram boundaries" `Quick test_histogram_boundaries;
          Alcotest.test_case "snapshot parses" `Quick test_metrics_snapshot_parses;
          Alcotest.test_case "reset keeps handles registered" `Quick
            test_reset_keeps_handles;
          Alcotest.test_case "gauge registry" `Quick test_gauge_registry;
          Alcotest.test_case "gauge snapshot and reset contract" `Quick
            test_gauge_snapshot_and_reset;
        ] );
      ( "trace",
        [
          Alcotest.test_case "document shape" `Quick test_trace_document;
          Alcotest.test_case "disabled is silent" `Quick test_trace_disabled_is_silent;
          Alcotest.test_case "concurrent emission loses nothing" `Quick
            test_trace_concurrent_emission;
          Alcotest.test_case "cap drops and counts" `Quick
            test_trace_cap_drops_and_counts;
          Alcotest.test_case "context scoping" `Quick test_trace_context_scoping;
          Alcotest.test_case "context crosses domains" `Quick
            test_trace_context_crosses_domains;
        ] );
      ( "series",
        [
          Alcotest.test_case "ring eviction" `Quick test_series_ring_eviction;
          Alcotest.test_case "rates skip foreign samples" `Quick
            test_series_rates_skip_foreign_samples;
          Alcotest.test_case "histogram delta" `Quick test_series_histogram_delta;
          Alcotest.test_case "quantile estimation" `Quick test_series_quantile;
          Alcotest.test_case "capture merges extras" `Quick
            test_series_capture_merges_extras;
        ] );
      ( "prometheus",
        [
          Alcotest.test_case "name sanitization" `Quick test_prometheus_sanitize;
          Alcotest.test_case "histogram exposition" `Quick
            test_prometheus_render_histogram;
          Alcotest.test_case "empty histogram exposition" `Quick
            test_prometheus_render_empty_histogram;
          Alcotest.test_case "counter and gauge exposition" `Quick
            test_prometheus_render_scalars;
          Alcotest.test_case "http scrape" `Quick test_prometheus_scrape_http;
        ] );
      ( "log",
        [
          Alcotest.test_case "concurrent lines stay whole" `Quick
            test_log_concurrent_lines_whole;
        ] );
      ( "alloc",
        [
          Alcotest.test_case "delta tracks a sub-minor-heap allocation" `Quick
            test_alloc_delta_tracks_allocation;
          Alcotest.test_case "json shape" `Quick test_alloc_json_shape;
        ] );
      ( "newton",
        [ Alcotest.test_case "stalled flag" `Quick test_newton_stalled ] );
      ( "end-to-end",
        [
          Alcotest.test_case "sequential vs parallel counters" `Slow
            test_counters_seq_eq_par;
        ] );
    ]
