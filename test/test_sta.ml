(* Tests for the static-timing-analysis layer. *)

open Tqwm_device
open Tqwm_circuit
module Timing_graph = Tqwm_sta.Timing_graph
module Arrival = Tqwm_sta.Arrival
module Parallel = Tqwm_sta.Parallel
module Path_enum = Tqwm_sta.Path_enum
module Stage_cache = Tqwm_sta.Stage_cache
module Workloads = Tqwm_sta.Workloads
module Report = Tqwm_sta.Report
module Json = Tqwm_obs.Json
module Metrics = Tqwm_obs.Metrics

let tech = Tech.cmosp35

let table = lazy (Models.table tech)

let inverter_pair () =
  let graph = Timing_graph.create () in
  let a = Timing_graph.add_stage graph (Scenario.inverter_falling ~load:8e-15 tech) in
  let b = Timing_graph.add_stage graph (Scenario.nor_rising ~n:2 ~load:8e-15 tech) in
  Timing_graph.connect graph ~from_stage:a ~to_stage:b ~input:"a1";
  (graph, a, b)

let test_topological_order () =
  let graph, a, b = inverter_pair () in
  Alcotest.(check (list int)) "driver first" [ a; b ] (Timing_graph.topological_order graph)

let test_connect_validation () =
  let graph = Timing_graph.create () in
  let a = Timing_graph.add_stage graph (Scenario.inverter_falling tech) in
  Alcotest.check_raises "unknown input"
    (Invalid_argument "Timing_graph.connect: unknown input") (fun () ->
      Timing_graph.connect graph ~from_stage:a ~to_stage:a ~input:"nope");
  Alcotest.check_raises "self cycle"
    (Invalid_argument "Timing_graph.connect: cycle detected") (fun () ->
      Timing_graph.connect graph ~from_stage:a ~to_stage:a ~input:"a1")

let test_cycle_rejected () =
  let graph, a, b = inverter_pair () in
  Alcotest.check_raises "cycle"
    (Invalid_argument "Timing_graph.connect: cycle detected") (fun () ->
      Timing_graph.connect graph ~from_stage:b ~to_stage:a ~input:"a1")

let test_fan_queries () =
  let graph, a, b = inverter_pair () in
  Alcotest.(check int) "fanout of a" 1 (List.length (Timing_graph.fanout graph a));
  Alcotest.(check int) "fanin of b" 1 (List.length (Timing_graph.fanin graph b));
  Alcotest.(check int) "fanin of a" 0 (List.length (Timing_graph.fanin graph a))

let test_propagate_accumulates () =
  let graph, a, b = inverter_pair () in
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let ta = analysis.Arrival.timings.(a) and tb = analysis.Arrival.timings.(b) in
  Alcotest.(check (float 1e-15)) "primary input arrival 0" 0.0 ta.Arrival.arrival_in;
  Alcotest.(check bool) "positive stage delays" true
    (ta.Arrival.delay > 0.0 && tb.Arrival.delay > 0.0);
  Alcotest.(check (float 1e-15)) "arrival chains" ta.Arrival.arrival_out
    tb.Arrival.arrival_in;
  Alcotest.(check (float 1e-15)) "worst = sink arrival" tb.Arrival.arrival_out
    analysis.Arrival.worst_arrival;
  Alcotest.(check (list int)) "critical path" [ a; b ] analysis.Arrival.critical_path

let test_critical_fanin_selection () =
  (* two drivers into one nand2: the slower one must define the arrival *)
  let graph = Timing_graph.create () in
  let fast = Timing_graph.add_stage graph (Scenario.inverter_falling ~load:4e-15 tech) in
  let slow = Timing_graph.add_stage graph (Scenario.nand_falling ~n:4 ~load:40e-15 tech) in
  let sink = Timing_graph.add_stage graph (Scenario.nand_falling ~n:2 ~load:10e-15 tech) in
  Timing_graph.connect graph ~from_stage:fast ~to_stage:sink ~input:"a2";
  Timing_graph.connect graph ~from_stage:slow ~to_stage:sink ~input:"a1";
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let t_sink = analysis.Arrival.timings.(sink) in
  Alcotest.(check (option int)) "slower driver wins" (Some slow)
    t_sink.Arrival.critical_fanin;
  Alcotest.(check (float 1e-15)) "arrival from slow driver"
    analysis.Arrival.timings.(slow).Arrival.arrival_out t_sink.Arrival.arrival_in

let test_slew_shapes_downstream_delay () =
  (* the same sink driven by a slow (large-load) driver must see a larger
     stage delay than when driven by a fast driver: slews propagate *)
  let run load =
    let graph = Timing_graph.create () in
    let drv = Timing_graph.add_stage graph (Scenario.inverter_falling ~load tech) in
    let sink = Timing_graph.add_stage graph (Scenario.nand_falling ~n:2 tech) in
    Timing_graph.connect graph ~from_stage:drv ~to_stage:sink ~input:"a1";
    let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
    analysis.Arrival.timings.(sink).Arrival.delay
  in
  let fast = run 4e-15 and slow = run 60e-15 in
  Alcotest.(check bool) "slower input slew -> larger stage delay" true (slow > fast)

let test_slack_computation () =
  let graph, a, b = inverter_pair () in
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let clock_period = 1e-9 in
  let report = Arrival.slacks graph analysis ~clock_period in
  (* sink: required = clock period *)
  Alcotest.(check (float 1e-18)) "sink required" clock_period report.Arrival.required.(b);
  (* driver: required shrinks by the sink's stage delay *)
  Alcotest.(check (float 1e-15)) "driver required"
    (clock_period -. analysis.Arrival.timings.(b).Arrival.delay)
    report.Arrival.required.(a);
  (* slack identity and consistency: both stages on one path share slack *)
  Alcotest.(check (float 1e-15)) "slack identity"
    (report.Arrival.required.(b) -. analysis.Arrival.timings.(b).Arrival.arrival_out)
    report.Arrival.slack.(b);
  Alcotest.(check (float 1e-12)) "single path: equal slacks"
    report.Arrival.slack.(a) report.Arrival.slack.(b);
  Alcotest.(check (float 1e-12)) "worst slack" report.Arrival.slack.(b)
    report.Arrival.worst_slack;
  (* a tight clock must go negative *)
  let tight = Arrival.slacks graph analysis ~clock_period:1e-12 in
  Alcotest.(check bool) "violation detected" true (tight.Arrival.worst_slack < 0.0)

(* ---------- backward required-time pass ---------- *)

let test_required_validation () =
  let graph, _, _ = inverter_pair () in
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let bad cp =
    match Arrival.required graph analysis ~clock_period:cp with
    | exception Invalid_argument _ -> ()
    | _ -> Alcotest.failf "clock_period %g accepted" cp
  in
  bad 0.0;
  bad (-1e-9);
  bad Float.nan;
  bad Float.infinity;
  (* an analysis from a different graph must be rejected *)
  let other = Timing_graph.create () in
  let _ = Timing_graph.add_stage other (Scenario.inverter_falling tech) in
  (match Arrival.required other analysis ~clock_period:1e-9 with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "mismatched analysis accepted")

let test_required_aggregates () =
  let graph, a, b = inverter_pair () in
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let r = Arrival.required graph analysis ~clock_period:1e-9 in
  Alcotest.(check (array int)) "endpoint set is the sink" [| b |] r.Arrival.endpoints;
  Alcotest.(check (float 1e-18)) "wns is the endpoint slack" r.Arrival.req_slack.(b)
    r.Arrival.wns;
  Alcotest.(check (float 1e-18)) "met timing: tns zero" 0.0 r.Arrival.tns;
  Alcotest.(check bool) "slacks agree with classic view" true
    (let s = Arrival.slacks graph analysis ~clock_period:1e-9 in
     s.Arrival.required = r.Arrival.req
     && s.Arrival.slack = r.Arrival.req_slack
     && s.Arrival.worst_slack = r.Arrival.req_worst_slack);
  ignore a;
  (* tight clock: single endpoint, so tns = wns < 0 *)
  let tight = Arrival.required graph analysis ~clock_period:1e-12 in
  Alcotest.(check bool) "violated" true (tight.Arrival.wns < 0.0);
  Alcotest.(check (float 1e-18)) "tns = wns with one endpoint" tight.Arrival.wns
    tight.Arrival.tns

let test_required_edge_graphs () =
  (* empty graph: every aggregate finite (= clock period) *)
  let empty = Timing_graph.create () in
  let analysis = Arrival.propagate ~model:(Lazy.force table) empty in
  let r = Arrival.required empty analysis ~clock_period:1e-9 in
  Alcotest.(check (float 1e-18)) "empty wns" 1e-9 r.Arrival.wns;
  Alcotest.(check (float 1e-18)) "empty tns" 0.0 r.Arrival.tns;
  Alcotest.(check (float 1e-18)) "empty worst slack" 1e-9 r.Arrival.req_worst_slack;
  Alcotest.(check int) "no endpoints" 0 (Array.length r.Arrival.endpoints);
  (* single stage: it is its own endpoint, finite everywhere *)
  let single = Timing_graph.create () in
  let s = Timing_graph.add_stage single (Scenario.inverter_falling tech) in
  let analysis = Arrival.propagate ~model:(Lazy.force table) single in
  let r = Arrival.required single analysis ~clock_period:1e-9 in
  Alcotest.(check (array int)) "single endpoint" [| s |] r.Arrival.endpoints;
  Alcotest.(check bool) "finite aggregates" true
    (Float.is_finite r.Arrival.wns
    && Float.is_finite r.Arrival.tns
    && Float.is_finite r.Arrival.req_worst_slack)

let test_required_publishes_gauges () =
  let graph, _, _ = inverter_pair () in
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let r = Arrival.required graph analysis ~clock_period:1e-9 in
  Alcotest.(check (option (float 1e-9))) "sta.wns gauge (ps)"
    (Some (r.Arrival.wns *. 1e12))
    (Metrics.find_gauge "sta.wns");
  Alcotest.(check (option (float 1e-9))) "sta.tns gauge (ps)"
    (Some (r.Arrival.tns *. 1e12))
    (Metrics.find_gauge "sta.tns")

(* ---------- k-worst path enumeration ---------- *)

let decoder_analysis =
  lazy
    (let graph = Workloads.decoder_tree ~fanout:3 ~depth:2 tech in
     let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
     (graph, analysis))

let test_k_worst_validation () =
  let graph, analysis = Lazy.force decoder_analysis in
  (match Path_enum.k_worst ~k:0 graph analysis with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "k = 0 accepted");
  match Path_enum.k_worst ~clock_period:0.0 ~k:1 graph analysis with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "clock_period = 0 accepted"

let test_k_worst_reproduces_critical_path () =
  let graph, analysis = Lazy.force decoder_analysis in
  match Path_enum.k_worst ~k:1 graph analysis with
  | [ p ] ->
    Alcotest.(check (list int)) "stages are the critical walk"
      analysis.Arrival.critical_path p.Path_enum.stages;
    (* bit-exact, not approximately equal *)
    Alcotest.(check bool) "arrival is worst_arrival bit-for-bit" true
      (Float.equal p.Path_enum.arrival analysis.Arrival.worst_arrival);
    Alcotest.(check string) "path string matches the report"
      (Report.critical_path_string graph analysis)
      (Report.path_string graph p)
  | paths -> Alcotest.failf "k = 1 returned %d paths" (List.length paths)

let test_k_worst_distinct_sorted_exhaustive () =
  let graph, analysis = Lazy.force decoder_analysis in
  (* a tree has exactly one source-to-leaf path per leaf: 9 leaves at
     fan-out 3, depth 2 — asking for more saturates at 9 *)
  let paths = Path_enum.k_worst ~k:100 graph analysis in
  Alcotest.(check int) "one path per leaf" 9 (List.length paths);
  let sequences = List.map (fun (p : Path_enum.path) -> p.Path_enum.stages) paths in
  Alcotest.(check int) "distinct stage sequences" 9
    (List.length (List.sort_uniq compare sequences));
  let rec sorted = function
    | (a : Path_enum.path) :: (b :: _ as rest) ->
      a.Path_enum.slack <= b.Path_enum.slack && sorted rest
    | [ _ ] | [] -> true
  in
  Alcotest.(check bool) "worst slack first" true (sorted paths);
  let exact = Path_enum.k_worst ~k:4 graph analysis in
  Alcotest.(check int) "k truncates" 4 (List.length exact);
  Alcotest.(check bool) "k-prefix of the full enumeration" true
    (exact = List.filteri (fun i _ -> i < 4) paths)

let test_explain_attribution () =
  let graph = Workloads.decoder_tree ~fanout:3 ~depth:2 tech in
  let model = Lazy.force table in
  let cache = Stage_cache.create () in
  let analysis = Arrival.propagate ~model ~cache graph in
  let p = List.hd (Path_enum.k_worst ~k:1 graph analysis) in
  let e = Path_enum.explain ~model ~cache graph analysis p in
  Alcotest.(check int) "one attribution per stage"
    (List.length p.Path_enum.stages)
    (List.length e.Path_enum.through);
  List.iter2
    (fun id (s : Path_enum.stage_attribution) ->
      Alcotest.(check bool) "timing is the analysis record" true
        (s.Path_enum.timing = analysis.Arrival.timings.(id));
      Alcotest.(check bool) "regions solved" true (s.Path_enum.regions > 0);
      Alcotest.(check bool) "newton iterations counted" true
        (s.Path_enum.newton_iterations > 0);
      Alcotest.(check bool) "cache provenance recorded" true
        (s.Path_enum.cache_uses >= 1))
    p.Path_enum.stages e.Path_enum.through;
  (* the replay is read-only: hit/miss/use counters untouched *)
  let before = Stage_cache.stats cache in
  let (_ : Path_enum.explained) = Path_enum.explain ~model ~cache graph analysis p in
  Alcotest.(check bool) "explain does not disturb the cache" true
    (Stage_cache.stats cache = before);
  (* cache-less attribution: solves afresh, reports no provenance *)
  let e0 = Path_enum.explain ~model graph analysis p in
  List.iter
    (fun (s : Path_enum.stage_attribution) ->
      Alcotest.(check int) "no cache: zero uses" 0 s.Path_enum.cache_uses)
    e0.Path_enum.through

let test_timing_report_bit_identical_seq_vs_parallel () =
  let model = Lazy.force table in
  let document ~domains =
    let graph = Workloads.decoder_tree ~fanout:3 ~depth:2 tech in
    let cache = Stage_cache.create () in
    let analysis =
      if domains = 1 then Arrival.propagate ~model ~cache graph
      else Parallel.propagate ~model ~cache ~domains graph
    in
    let clock_period = analysis.Arrival.worst_arrival in
    let required = Arrival.required graph analysis ~clock_period in
    let paths = Path_enum.k_worst ~clock_period ~k:5 graph analysis in
    let explained = List.map (Path_enum.explain ~model ~cache graph analysis) paths in
    Json.to_string (Report.timing_to_json graph analysis required explained)
  in
  Alcotest.(check string) "tqwm-report/1 identical across 1 vs 4 domains"
    (document ~domains:1) (document ~domains:4)

(* ---------- property tests ---------- *)

let prop_k1_matches_critical_path =
  QCheck2.Test.make ~name:"k_worst 1 reproduces critical_path_string" ~count:6
    QCheck2.Gen.(int_range 0 1000)
    (fun seed ->
      let graph = Workloads.random_stacks ~width:3 ~depth:2 ~seed tech in
      let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
      match Path_enum.k_worst ~k:1 graph analysis with
      | [ p ] ->
        String.equal
          (Report.critical_path_string graph analysis)
          (Report.path_string graph p)
        && Float.equal p.Path_enum.arrival analysis.Arrival.worst_arrival
      | _ -> false)

let prop_slack_monotone_in_clock =
  QCheck2.Test.make ~name:"slack monotone in clock period" ~count:30
    QCheck2.Gen.(pair (float_range 1e-12 2e-9) (float_range 1e-12 2e-9))
    (fun (cp1, cp2) ->
      let graph, analysis = Lazy.force decoder_analysis in
      let lo = Float.min cp1 cp2 and hi = Float.max cp1 cp2 in
      let r_lo = Arrival.required graph analysis ~clock_period:lo in
      let r_hi = Arrival.required graph analysis ~clock_period:hi in
      (* a longer clock can only relax: wns up, tns toward zero *)
      r_hi.Arrival.wns >= r_lo.Arrival.wns && r_hi.Arrival.tns >= r_lo.Arrival.tns)

let test_report_rendering () =
  let graph, _, _ = inverter_pair () in
  let analysis = Arrival.propagate ~model:(Lazy.force table) graph in
  let s = Report.critical_path_string graph analysis in
  Alcotest.(check bool) "mentions both stages" true
    (String.length s > 0
    && String.split_on_char '>' s |> List.length = 2);
  let buf = Buffer.create 256 in
  let fmt = Format.formatter_of_buffer buf in
  Report.print fmt graph analysis;
  Format.pp_print_flush fmt ();
  Alcotest.(check bool) "report mentions worst arrival" true
    (Buffer.contents buf
    |> String.split_on_char '\n'
    |> List.exists (fun line ->
           String.length line >= 13 && String.sub line 0 13 = "worst arrival"))

(* ---------- cell characterization ---------- *)

module Characterize = Tqwm_sta.Characterize

let nand2_table =
  lazy
    (Characterize.characterize ~model:(Lazy.force table)
       ~slews:[| 10e-12; 40e-12; 100e-12 |]
       ~loads:[| 4e-15; 12e-15; 30e-15 |]
       (fun ~load -> Scenario.nand_falling ~n:2 ~load tech))

let test_characterize_monotone_in_load () =
  let t = Lazy.force nand2_table in
  for i = 0 to Array.length t.Characterize.slews - 1 do
    for j = 1 to Array.length t.Characterize.loads - 1 do
      let prev = Tqwm_num.Mat.get t.Characterize.delay i (j - 1) in
      let here = Tqwm_num.Mat.get t.Characterize.delay i j in
      if here <= prev then
        Alcotest.failf "delay not increasing in load at (%d, %d)" i j
    done
  done

let test_characterize_grid_exact () =
  let t = Lazy.force nand2_table in
  (* querying exactly on a grid point returns the stored value *)
  let stored = Tqwm_num.Mat.get t.Characterize.delay 1 1 in
  Alcotest.(check (float 1e-18)) "grid point exact" stored
    (Characterize.delay_at t ~slew:40e-12 ~load:12e-15)

let test_characterize_interpolation_bounded () =
  let t = Lazy.force nand2_table in
  let d = Characterize.delay_at t ~slew:25e-12 ~load:8e-15 in
  let lo = Tqwm_num.Mat.get t.Characterize.delay 0 0 in
  let hi = Tqwm_num.Mat.get t.Characterize.delay 2 2 in
  Alcotest.(check bool) "between corner values" true (d > Float.min lo hi /. 2.0 && d < hi);
  let s = Characterize.slew_at t ~slew:25e-12 ~load:8e-15 in
  Alcotest.(check bool) "output slew positive" true (s > 0.0)

let test_characterize_validation () =
  match
    Characterize.characterize ~model:(Lazy.force table) ~slews:[| 1e-12 |]
      (fun ~load -> Scenario.nand_falling ~n:2 ~load tech)
  with
  | exception Invalid_argument _ -> ()
  | _ -> Alcotest.fail "expected Invalid_argument for 1-point axis"

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let slow name f = Alcotest.test_case name `Slow f in
  Alcotest.run "tqwm_sta"
    [
      ( "graph",
        [
          quick "topological order" test_topological_order;
          quick "connect validation" test_connect_validation;
          quick "cycle rejected" test_cycle_rejected;
          quick "fan queries" test_fan_queries;
        ] );
      ( "arrival",
        [
          slow "accumulates" test_propagate_accumulates;
          slow "critical fanin" test_critical_fanin_selection;
          slow "slew propagation" test_slew_shapes_downstream_delay;
          slow "slack computation" test_slack_computation;
        ] );
      ( "required",
        [
          slow "validation" test_required_validation;
          slow "aggregates" test_required_aggregates;
          slow "edge graphs" test_required_edge_graphs;
          slow "publishes gauges" test_required_publishes_gauges;
        ] );
      ( "path_enum",
        [
          slow "validation" test_k_worst_validation;
          slow "k=1 is the critical path" test_k_worst_reproduces_critical_path;
          slow "distinct, sorted, exhaustive" test_k_worst_distinct_sorted_exhaustive;
          slow "explain attribution" test_explain_attribution;
          slow "seq-vs-parallel bit identity"
            test_timing_report_bit_identical_seq_vs_parallel;
          QCheck_alcotest.to_alcotest prop_k1_matches_critical_path;
          QCheck_alcotest.to_alcotest prop_slack_monotone_in_clock;
        ] );
      ("report", [ slow "rendering" test_report_rendering ]);
      ( "characterize",
        [
          slow "monotone in load" test_characterize_monotone_in_load;
          slow "grid exact" test_characterize_grid_exact;
          slow "interpolation bounded" test_characterize_interpolation_bounded;
          quick "validation" test_characterize_validation;
        ] );
    ]
