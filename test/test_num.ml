(* Unit and property tests for the numeric kernels. *)

open Tqwm_num

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(eps = 1e-9) msg expected actual =
  if Float.abs (expected -. actual) > eps *. (1.0 +. Float.abs expected) then
    Alcotest.failf "%s: expected %.12g, got %.12g" msg expected actual

(* ---------- Vec ---------- *)

let test_vec_basic () =
  let v = Vec.of_list [ 1.0; 2.0; 3.0 ] in
  check_float "dot" 14.0 (Vec.dot v v);
  check_float "norm2" (sqrt 14.0) (Vec.norm2 v);
  check_float "norm_inf" 3.0 (Vec.norm_inf v);
  let w = Vec.sub (Vec.add v v) v in
  check_float "add/sub roundtrip" 0.0 (Vec.max_abs_diff v w);
  let y = Vec.copy v in
  Vec.axpy 2.0 v y;
  check_float "axpy" 9.0 y.{2}

let test_vec_errors () =
  Alcotest.check_raises "dim mismatch" (Invalid_argument "Vec.dot: dimension mismatch (2 vs 3)")
    (fun () ->
      ignore (Vec.dot (Vec.of_array [| 1.0; 2.0 |]) (Vec.of_array [| 1.0; 2.0; 3.0 |])))

(* ---------- Mat ---------- *)

let test_mat_mul () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 3.0; 4.0 |] |] in
  let i = Mat.identity 2 in
  check_float "a*i = a" 0.0 (Mat.max_abs_diff a (Mat.mul a i));
  let b = Mat.mul a a in
  check_float "mul(0,0)" 7.0 (Mat.get b 0 0);
  check_float "mul(1,1)" 22.0 (Mat.get b 1 1);
  let t = Mat.transpose a in
  check_float "transpose" 2.0 (Mat.get t 1 0)

let test_mat_vec () =
  let a = Mat.of_rows [| [| 2.0; 0.0 |]; [| 1.0; 3.0 |] |] in
  let y = Mat.mul_vec a (Vec.of_list [ 1.0; 2.0 ]) in
  check_float "mul_vec 0" 2.0 y.{0};
  check_float "mul_vec 1" 7.0 y.{1}

(* ---------- Lu ---------- *)

let test_lu_solve () =
  let a = Mat.of_rows [| [| 4.0; 1.0 |]; [| 1.0; 3.0 |] |] in
  let x = Lu.solve a (Vec.of_list [ 1.0; 2.0 ]) in
  check_close "x0" (1.0 /. 11.0) x.{0};
  check_close "x1" (7.0 /. 11.0) x.{1}

let test_lu_det_inverse () =
  let a = Mat.of_rows [| [| 2.0; 1.0 |]; [| 1.0; 2.0 |] |] in
  check_close "det" 3.0 (Lu.det a);
  let inv = Lu.inverse a in
  check_float "a * a^-1 = i" 0.0 (Mat.max_abs_diff (Mat.identity 2) (Mat.mul a inv))

let test_lu_singular () =
  let a = Mat.of_rows [| [| 1.0; 2.0 |]; [| 2.0; 4.0 |] |] in
  (match Lu.factorize a with
  | exception Lu.Singular _ -> ()
  | _ -> Alcotest.fail "expected Singular");
  check_float "det singular" 0.0 (Lu.det a)

let random_spd_system rng n =
  (* diagonally dominant => well-conditioned, solvable *)
  let a =
    Mat.init n n (fun i j ->
        let v = QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.float_range (-1.0) 1.0) in
        if i = j then 4.0 +. Float.abs v else v /. float_of_int n)
  in
  let x = Vec.init n (fun _ -> QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.float_range (-5.0) 5.0)) in
  (a, x)

let prop_lu_roundtrip =
  QCheck2.Test.make ~name:"lu solve recovers solution" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed |] in
      let a, x = random_spd_system rng n in
      let b = Mat.mul_vec a x in
      let x' = Lu.solve a b in
      Vec.max_abs_diff x x' < 1e-8)

(* ---------- Tridiag ---------- *)

let random_tridiag rng n =
  let gen = QCheck2.Gen.float_range (-1.0) 1.0 in
  let g () = QCheck2.Gen.generate1 ~rand:rng gen in
  Tridiag.make
    ~lower:(Vec.init n (fun i -> if i = 0 then 0.0 else g ()))
    ~diag:(Vec.init n (fun _ -> 4.0 +. Float.abs (g ())))
    ~upper:(Vec.init n (fun i -> if i = n - 1 then 0.0 else g ()))

let prop_tridiag_vs_lu =
  QCheck2.Test.make ~name:"tridiagonal solve matches dense LU" ~count:100
    QCheck2.Gen.(pair (int_range 1 15) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 17 |] in
      let t = random_tridiag rng n in
      let b = Vec.init n (fun _ -> QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.float_range (-3.0) 3.0)) in
      let x_t = Tridiag.solve t b in
      let x_d = Lu.solve (Tridiag.to_mat t) b in
      Vec.max_abs_diff x_t x_d < 1e-8)

let test_tridiag_mul_vec () =
  let t =
    Tridiag.make
      ~lower:(Vec.of_list [ 0.0; 1.0; 1.0 ])
      ~diag:(Vec.of_list [ 2.0; 2.0; 2.0 ])
      ~upper:(Vec.of_list [ 1.0; 1.0; 0.0 ])
  in
  let y = Tridiag.mul_vec t (Vec.of_list [ 1.0; 1.0; 1.0 ]) in
  check_float "row 0" 3.0 y.{0};
  check_float "row 1" 4.0 y.{1};
  check_float "row 2" 3.0 y.{2}

let test_tridiag_of_mat_roundtrip () =
  let t =
    Tridiag.make
      ~lower:(Vec.of_list [ 0.0; -1.0 ])
      ~diag:(Vec.of_list [ 3.0; 5.0 ])
      ~upper:(Vec.of_list [ 2.0; 0.0 ])
  in
  let t' = Tridiag.of_mat (Tridiag.to_mat t) in
  check_float "roundtrip" 0.0 (Mat.max_abs_diff (Tridiag.to_mat t) (Tridiag.to_mat t'))

(* ---------- Bordered and Sherman-Morrison ---------- *)

let random_bordered rng n =
  let gen = QCheck2.Gen.float_range (-1.0) 1.0 in
  let g () = QCheck2.Gen.generate1 ~rand:rng gen in
  {
    Bordered.core = random_tridiag rng n;
    last_col = Vec.init n (fun _ -> g ());
    last_row = Vec.init n (fun _ -> g ());
    corner = 5.0 +. Float.abs (g ());
  }

let prop_bordered_vs_lu =
  QCheck2.Test.make ~name:"bordered solve matches dense LU" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 23 |] in
      let sys = random_bordered rng n in
      let b =
        Vec.init (n + 1) (fun _ ->
            QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.float_range (-3.0) 3.0))
      in
      let x_b = Bordered.solve sys b in
      let x_d = Lu.solve (Bordered.to_mat sys) b in
      Vec.max_abs_diff x_b x_d < 1e-7)

let prop_sherman_morrison =
  QCheck2.Test.make ~name:"sherman-morrison matches dense rank-1 update" ~count:100
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 31 |] in
      let t = random_tridiag rng n in
      let gen = QCheck2.Gen.float_range (-0.3) 0.3 in
      let g () = QCheck2.Gen.generate1 ~rand:rng gen in
      let u = Vec.init n (fun _ -> g ()) and v = Vec.init n (fun _ -> g ()) in
      let b = Vec.init n (fun _ -> g ()) in
      let x_sm = Sherman_morrison.solve_tridiag t ~u ~v b in
      let dense =
        Mat.init n n (fun i j -> Mat.get (Tridiag.to_mat t) i j +. (u.{i} *. v.{j}))
      in
      let x_d = Lu.solve dense b in
      Vec.max_abs_diff x_sm x_d < 1e-7)

let test_bordered_dim_zero () =
  let sys =
    let empty () = Vec.create 0 in
    { Bordered.core = Tridiag.make ~lower:(empty ()) ~diag:(empty ()) ~upper:(empty ());
      last_col = empty (); last_row = empty (); corner = 2.0 }
  in
  let x = Bordered.solve sys (Vec.of_list [ 4.0 ]) in
  check_float "corner-only" 2.0 x.{0}

(* ---------- In-place prefix kernels vs their allocating forms ----------

   The QWM hot path runs every linear solve through the [_into] kernels on
   reused capacity-sized workspace buffers. Each kernel must produce
   bit-identical results over the live [n]-prefix of oversized buffers:
   slack and scratch slots are pre-poisoned with NaN, so if a kernel ever
   read past its prefix — or a stale slot it is contracted to re-zero —
   the poison would propagate into the solution and the exact-bits check
   would fail. *)

let nan_filled len = Vec.init len (fun _ -> Float.nan)

(* embed [src] in a NaN-poisoned buffer with random extra capacity *)
let with_slack rng src =
  let slack = QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.int_range 0 5) in
  let out = nan_filled (Vec.dim src + slack) in
  Vec.blit_n (Vec.dim src) src out;
  out

let bits_equal_prefix n (x : Vec.t) (y : Vec.t) =
  let ok = ref true in
  for i = 0 to n - 1 do
    if not (Int64.equal (Int64.bits_of_float x.{i}) (Int64.bits_of_float y.{i})) then
      ok := false
  done;
  !ok

let random_b rng n =
  Vec.init n (fun _ -> QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.float_range (-3.0) 3.0))

let prop_tridiag_solve_into =
  QCheck2.Test.make ~name:"solve_into on poisoned slack buffers is bit-identical" ~count:200
    QCheck2.Gen.(pair (int_range 1 15) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 41 |] in
      let t = random_tridiag rng n in
      let b = random_b rng n in
      let x_ref = Tridiag.solve t b in
      let scratch () = nan_filled (n + 3) in
      let x = scratch () in
      Tridiag.solve_into ~n ~lower:(with_slack rng t.Tridiag.lower)
        ~diag:(with_slack rng t.Tridiag.diag) ~upper:(with_slack rng t.Tridiag.upper)
        ~cp:(scratch ()) ~dp:(scratch ()) ~b:(with_slack rng b) ~x;
      bits_equal_prefix n x_ref x)

let prop_bordered_solve_into =
  QCheck2.Test.make ~name:"solve_into on poisoned slack buffers is bit-identical" ~count:200
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 43 |] in
      let sys = random_bordered rng n in
      let b = random_b rng (n + 1) in
      let x_ref = Bordered.solve sys b in
      let scratch () = nan_filled (n + 4) in
      let x = scratch () in
      Bordered.solve_into ~n ~lower:(with_slack rng sys.Bordered.core.Tridiag.lower)
        ~diag:(with_slack rng sys.Bordered.core.Tridiag.diag)
        ~upper:(with_slack rng sys.Bordered.core.Tridiag.upper)
        ~last_col:(with_slack rng sys.Bordered.last_col)
        ~last_row:(with_slack rng sys.Bordered.last_row) ~corner:sys.Bordered.corner
        ~cp:(scratch ()) ~dp:(scratch ()) ~y:(scratch ()) ~z:(scratch ())
        ~b:(with_slack rng b) ~x;
      bits_equal_prefix (n + 1) x_ref x)

let prop_sherman_morrison_solve_into =
  QCheck2.Test.make ~name:"solve_tridiag_into on poisoned slack buffers is bit-identical"
    ~count:200
    QCheck2.Gen.(pair (int_range 1 12) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 47 |] in
      let t = random_tridiag rng n in
      let gen = QCheck2.Gen.float_range (-0.3) 0.3 in
      let g () = QCheck2.Gen.generate1 ~rand:rng gen in
      let u = Vec.init n (fun _ -> g ()) and v = Vec.init n (fun _ -> g ()) in
      let b = random_b rng n in
      let x_ref = Sherman_morrison.solve_tridiag t ~u ~v b in
      let scratch () = nan_filled (n + 2) in
      let x = scratch () in
      Sherman_morrison.solve_tridiag_into ~n ~lower:(with_slack rng t.Tridiag.lower)
        ~diag:(with_slack rng t.Tridiag.diag) ~upper:(with_slack rng t.Tridiag.upper)
        ~u:(with_slack rng u) ~v:(with_slack rng v) ~cp:(scratch ()) ~dp:(scratch ())
        ~y:(scratch ()) ~z:(scratch ()) ~b:(with_slack rng b) ~x;
      bits_equal_prefix n x_ref x)

let prop_lu_factorize_into =
  QCheck2.Test.make
    ~name:"factorize_into/solve_factored_into in a poisoned capacity matrix is bit-identical"
    ~count:200
    QCheck2.Gen.(pair (int_range 1 10) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 53 |] in
      let a, x_exact = random_spd_system rng n in
      let b = Mat.mul_vec a x_exact in
      let x_ref = Lu.solve a b in
      (* capacity matrix: NaN everywhere, then the system stamped into the
         leading block (the factorization must never look past it) *)
      let slack = QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.int_range 0 4) in
      let cap = n + slack in
      let m = Mat.init cap cap (fun _ _ -> Float.nan) in
      for i = 0 to n - 1 do
        for j = 0 to n - 1 do
          Mat.set m i j (Mat.get a i j)
        done
      done;
      let perm = Array.make cap (-1) in
      Lu.factorize_into ~n m ~perm;
      let x = nan_filled cap in
      Lu.solve_factored_into ~n m ~perm ~b:(with_slack rng b) ~x;
      bits_equal_prefix n x_ref x)

let prop_tridiag_solve_into_views =
  QCheck2.Test.make
    ~name:"solve_into on disjoint sub views of one slab is bit-identical and zero-copy"
    ~count:200
    QCheck2.Gen.(pair (int_range 1 15) (int_bound 10000))
    (fun (n, seed) ->
      let rng = Random.State.make [| seed; 59 |] in
      let t = random_tridiag rng n in
      let b = random_b rng n in
      let x_ref = Tridiag.solve t b in
      (* the Workspace pattern: one NaN-poisoned slab, seven disjoint
         capacity-sized [Array1.sub] views carved out of it as the
         kernel's operands; aliasing one backing buffer must not change
         a single bit of the solution *)
      let cap = n + QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.int_range 0 4) in
      let slab = nan_filled (7 * cap) in
      let view k = Vec.view slab ~pos:(k * cap) ~len:cap in
      let fill k src = Vec.blit_n n src (view k) in
      fill 0 t.Tridiag.lower;
      fill 1 t.Tridiag.diag;
      fill 2 t.Tridiag.upper;
      fill 5 b;
      let x = view 6 in
      Tridiag.solve_into ~n ~lower:(view 0) ~diag:(view 1) ~upper:(view 2)
        ~cp:(view 3) ~dp:(view 4) ~b:(view 5) ~x;
      (* bit-identical over the live prefix, and the writes must show
         through a freshly-carved view of the parent slab — [Vec.view]
         aliases the slab's memory, it never copies *)
      bits_equal_prefix n x_ref x
      && bits_equal_prefix n x_ref (Vec.view slab ~pos:(6 * cap) ~len:cap))

(* ---------- Newton ---------- *)

let test_newton_scalar () =
  let problem =
    {
      Newton.residual = (fun x -> Vec.of_list [ (x.{0} *. x.{0}) -. 4.0 ]);
      solve_linearized = (fun x f -> Vec.of_list [ f.{0} /. (2.0 *. x.{0}) ]);
    }
  in
  let out = Newton.solve problem (Vec.of_list [ 1.0 ]) in
  Alcotest.(check bool) "converged" true out.Newton.converged;
  check_close "root" 2.0 out.Newton.x.{0}

let test_newton_2d () =
  (* x^2 + y^2 = 2, x = y -> (1, 1) *)
  let residual x =
    Vec.of_list [ (x.{0} *. x.{0}) +. (x.{1} *. x.{1}) -. 2.0; x.{0} -. x.{1} ]
  in
  let solve_linearized x f =
    let j = Mat.of_rows [| [| 2.0 *. x.{0}; 2.0 *. x.{1} |]; [| 1.0; -1.0 |] |] in
    Lu.solve j f
  in
  let out = Newton.solve { Newton.residual; solve_linearized } (Vec.of_list [ 2.0; 0.5 ]) in
  Alcotest.(check bool) "converged" true out.Newton.converged;
  check_close "x" 1.0 out.Newton.x.{0};
  check_close "y" 1.0 out.Newton.x.{1}

let test_newton_failure_reported () =
  (* no real root of x^2 + 1 *)
  let problem =
    {
      Newton.residual = (fun x -> Vec.of_list [ (x.{0} *. x.{0}) +. 1.0 ]);
      solve_linearized = (fun x f -> Vec.of_list [ f.{0} /. (2.0 *. x.{0} +. 1e-9) ]);
    }
  in
  let out =
    Newton.solve ~config:{ Newton.default_config with max_iterations = 25 } problem
      (Vec.of_list [ 3.0 ])
  in
  Alcotest.(check bool) "not converged" false out.Newton.converged

(* ---------- Polyfit ---------- *)

let prop_polyfit_recovers =
  QCheck2.Test.make ~name:"polyfit recovers exact polynomials" ~count:100
    QCheck2.Gen.(pair (int_range 0 3) (int_bound 10000))
    (fun (degree, seed) ->
      let rng = Random.State.make [| seed; 41 |] in
      let coeffs =
        Array.init (degree + 1) (fun _ ->
            QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.float_range (-2.0) 2.0))
      in
      let pts =
        Array.init (degree + 4) (fun i ->
            let x = float_of_int i /. 2.0 in
            (x, Polyfit.eval coeffs x))
      in
      let fitted = Polyfit.fit ~degree pts in
      Array.for_all2 (fun a b -> Float.abs (a -. b) < 1e-6) coeffs fitted)

let test_polyfit_wrappers () =
  let pts = [| (0.0, 1.0); (1.0, 3.0); (2.0, 5.0) |] in
  let intercept, slope = Polyfit.linear pts in
  check_close "intercept" 1.0 intercept;
  check_close "slope" 2.0 slope;
  let c0, c1, c2 = Polyfit.quadratic [| (0.0, 0.0); (1.0, 1.0); (2.0, 4.0); (3.0, 9.0) |] in
  check_close "c0" 0.0 ~eps:1e-7 c0;
  check_close "c1" 0.0 ~eps:1e-7 c1;
  check_close "c2" 1.0 c2;
  check_close "deriv" 4.0 (Polyfit.eval_deriv [| 0.0; 0.0; 1.0 |] 2.0)

let test_polyfit_errors () =
  Alcotest.check_raises "too few points"
    (Invalid_argument "Polyfit.fit: not enough points") (fun () ->
      ignore (Polyfit.fit ~degree:2 [| (0.0, 0.0) |]))

let test_polyfit_max_residual () =
  let pts = [| (0.0, 0.0); (1.0, 1.1) |] in
  let r = Polyfit.max_residual [| 0.0; 1.0 |] pts in
  check_close "residual" 0.1 r

(* ---------- Interp ---------- *)

let test_interp_linear () =
  let ax = Interp.axis ~start:0.0 ~stop:2.0 ~count:3 in
  let samples = Vec.of_list [ 0.0; 10.0; 40.0 ] in
  check_close "knot value" 10.0 (Interp.linear ax samples 1.0);
  check_close "between" 5.0 (Interp.linear ax samples 0.5);
  check_close "extrapolate" 55.0 (Interp.linear ax samples 2.5)

let test_interp_bilinear () =
  let ax = Interp.axis ~start:0.0 ~stop:1.0 ~count:2 in
  let table = Mat.of_rows [| [| 0.0; 1.0 |]; [| 2.0; 3.0 |] |] in
  check_close "corner" 3.0 (Interp.bilinear ax ax table 1.0 1.0);
  check_close "center" 1.5 (Interp.bilinear ax ax table 0.5 0.5)

let prop_interp_exact_at_knots =
  QCheck2.Test.make ~name:"interpolation exact at grid knots" ~count:50
    QCheck2.Gen.(int_bound 10000)
    (fun seed ->
      let rng = Random.State.make [| seed; 43 |] in
      let n = 5 in
      let ax = Interp.axis ~start:(-1.0) ~stop:1.0 ~count:n in
      let samples =
        Vec.init n (fun _ ->
            QCheck2.Gen.generate1 ~rand:rng (QCheck2.Gen.float_range (-4.0) 4.0))
      in
      let ok = ref true in
      for i = 0 to n - 1 do
        if Float.abs (Interp.linear ax samples (Interp.knot ax i) -. samples.{i}) > 1e-9
        then ok := false
      done;
      !ok)

let test_interp_errors () =
  Alcotest.check_raises "bad axis" (Invalid_argument "Interp.axis: count < 2") (fun () ->
      ignore (Interp.axis ~start:0.0 ~stop:1.0 ~count:1))

let test_interp_nonuniform () =
  let xs = [| 0.0; 1.0; 4.0; 10.0 |] in
  let ys = [| 0.0; 2.0; 8.0; 20.0 |] in
  check_close "at knot" 8.0 (Interp.piecewise_linear ~xs ~ys 4.0);
  check_close "between" 5.0 (Interp.piecewise_linear ~xs ~ys 2.5);
  check_close "extrapolates" 22.0 (Interp.piecewise_linear ~xs ~ys 11.0);
  Alcotest.check_raises "non-increasing"
    (Invalid_argument "Interp: axis must be strictly increasing") (fun () ->
      ignore (Interp.piecewise_linear ~xs:[| 0.0; 0.0 |] ~ys:[| 1.0; 2.0 |] 0.5))

let test_interp_table_lookup () =
  let xs = [| 0.0; 2.0 |] and ys = [| 0.0; 1.0; 10.0 |] in
  let table = Mat.of_rows [| [| 0.0; 1.0; 10.0 |]; [| 2.0; 3.0; 12.0 |] |] in
  check_close "corner" 12.0 (Interp.table_lookup ~xs ~ys table 2.0 10.0);
  check_close "center of first cell" 1.5 (Interp.table_lookup ~xs ~ys table 1.0 0.5);
  check_close "non-uniform cell" 5.5 (Interp.table_lookup ~xs ~ys table 0.0 5.5)

(* ---------- Quad ---------- *)

let test_quad_roots () =
  (match Quad.roots ~a:1.0 ~b:(-3.0) ~c:2.0 with
  | [ r1; r2 ] ->
    check_close "root 1" 1.0 r1;
    check_close "root 2" 2.0 r2
  | _ -> Alcotest.fail "expected two roots");
  (match Quad.roots ~a:0.0 ~b:2.0 ~c:(-4.0) with
  | [ r ] -> check_close "linear root" 2.0 r
  | _ -> Alcotest.fail "expected one root");
  Alcotest.(check (list (float 1e-9))) "no real roots" [] (Quad.roots ~a:1.0 ~b:0.0 ~c:1.0);
  Alcotest.(check (list (float 1e-9))) "degenerate" [] (Quad.roots ~a:0.0 ~b:0.0 ~c:1.0)

let prop_quad_roots_reconstruct =
  QCheck2.Test.make ~name:"quadratic roots satisfy the polynomial" ~count:200
    QCheck2.Gen.(triple (float_range (-5.0) 5.0) (float_range (-5.0) 5.0) (float_range (-5.0) 5.0))
    (fun (a, b, c) ->
      Quad.roots ~a ~b ~c
      |> List.for_all (fun r -> Float.abs (Quad.eval ~a ~b ~c r) < 1e-6))

let test_quad_smallest_positive () =
  (match Quad.smallest_positive_root ~a:1.0 ~b:0.0 ~c:(-4.0) with
  | Some r -> check_close "positive root" 2.0 r
  | None -> Alcotest.fail "expected a root");
  Alcotest.(check bool) "none positive" true
    (Quad.smallest_positive_root ~a:1.0 ~b:3.0 ~c:2.0 = None)

(* ---------- Ode ---------- *)

let test_rk4_exponential () =
  let f _ x = Vec.of_list [ -.x.{0} ] in
  let traj = Ode.rk4 ~f ~t0:0.0 ~x0:(Vec.of_list [ 1.0 ]) ~t1:1.0 ~steps:100 in
  let _, x_end = traj.(Array.length traj - 1) in
  check_close ~eps:1e-6 "e^-1" (exp (-1.0)) x_end.{0}

let test_rk4_errors () =
  Alcotest.check_raises "steps" (Invalid_argument "Ode.rk4: steps < 1") (fun () ->
      ignore (Ode.rk4 ~f:(fun _ x -> x) ~t0:0.0 ~x0:(Vec.of_list [ 1.0 ]) ~t1:1.0 ~steps:0))

(* ---------- Stats ---------- *)

let test_stats () =
  check_close "mean" 2.0 (Stats.mean [ 1.0; 2.0; 3.0 ]);
  check_close "geomean" 2.0 (Stats.geometric_mean [ 1.0; 4.0 ]);
  check_close "max_abs" 3.0 (Stats.max_abs [ -3.0; 2.0 ]);
  check_close "rms" (sqrt 2.5) (Stats.rms [ 1.0; 2.0 ]);
  check_close "rel err" 0.1 (Stats.relative_error ~reference:10.0 11.0);
  check_close "percent" 12.0 (Stats.percent 0.12)

let () =
  let quick name f = Alcotest.test_case name `Quick f in
  let prop p = QCheck_alcotest.to_alcotest p in
  Alcotest.run "tqwm_num"
    [
      ("vec", [ quick "basic ops" test_vec_basic; quick "errors" test_vec_errors ]);
      ("mat", [ quick "mul" test_mat_mul; quick "mul_vec" test_mat_vec ]);
      ( "lu",
        [
          quick "solve 2x2" test_lu_solve;
          quick "det and inverse" test_lu_det_inverse;
          quick "singular" test_lu_singular;
          prop prop_lu_roundtrip;
        ] );
      ( "tridiag",
        [
          prop prop_tridiag_vs_lu;
          quick "mul_vec" test_tridiag_mul_vec;
          quick "of_mat roundtrip" test_tridiag_of_mat_roundtrip;
        ] );
      ( "bordered",
        [
          prop prop_bordered_vs_lu;
          prop prop_sherman_morrison;
          quick "dim zero" test_bordered_dim_zero;
        ] );
      ( "prefix-kernels",
        [
          prop prop_tridiag_solve_into;
          prop prop_bordered_solve_into;
          prop prop_sherman_morrison_solve_into;
          prop prop_lu_factorize_into;
          prop prop_tridiag_solve_into_views;
        ] );
      ( "newton",
        [
          quick "scalar" test_newton_scalar;
          quick "2d" test_newton_2d;
          quick "failure" test_newton_failure_reported;
        ] );
      ( "polyfit",
        [
          prop prop_polyfit_recovers;
          quick "wrappers" test_polyfit_wrappers;
          quick "errors" test_polyfit_errors;
          quick "max_residual" test_polyfit_max_residual;
        ] );
      ( "interp",
        [
          quick "linear" test_interp_linear;
          quick "bilinear" test_interp_bilinear;
          prop prop_interp_exact_at_knots;
          quick "errors" test_interp_errors;
          quick "non-uniform 1d" test_interp_nonuniform;
          quick "non-uniform table" test_interp_table_lookup;
        ] );
      ( "quad",
        [
          quick "roots" test_quad_roots;
          prop prop_quad_roots_reconstruct;
          quick "smallest positive" test_quad_smallest_positive;
        ] );
      ("ode", [ quick "exponential" test_rk4_exponential; quick "errors" test_rk4_errors ]);
      ("stats", [ quick "all" test_stats ]);
    ]
